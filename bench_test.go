// Benchmarks regenerating every table and figure of the paper's
// evaluation section. Each benchmark runs one experiment configuration
// and reports the headline quantity via b.ReportMetric, so
//
//	go test -bench=. -benchmem
//
// prints the reproduction alongside timing. Benchmark sizes default to a
// scaled-down grid so the suite completes in minutes; set
//
//	PRICEBENCH_FULL=1 go test -bench=. -timeout 2h
//
// for the paper's full sizes (n up to 100/1024, T up to 10⁵, 74,111
// listings). cmd/pricebench runs the same configurations as a CLI and is
// what produced the numbers recorded in EXPERIMENTS.md.
package datamarket_test

import (
	"os"
	"strconv"
	"testing"

	"datamarket/internal/experiment"
	"datamarket/internal/linalg"
	"datamarket/internal/pricing"
	"datamarket/internal/randx"
)

// fullScale reports whether the paper's full experiment sizes were
// requested.
func fullScale() bool { return os.Getenv("PRICEBENCH_FULL") == "1" }

// scaledT returns the paper's horizon or a benchable fraction of it.
func scaledT(paperT int) int {
	if fullScale() {
		return paperT
	}
	t := paperT / 10
	if t < 1000 {
		t = paperT
	}
	return t
}

// BenchmarkFig4 regenerates the cumulative regret curves of Fig. 4:
// four mechanism versions × n ∈ {1, 20, 40, 60, 80, 100}.
func BenchmarkFig4(b *testing.B) {
	cells := []struct {
		n, paperT int
	}{
		{1, 100}, {20, 10000}, {40, 10000}, {60, 100000}, {80, 100000}, {100, 100000},
	}
	for _, cell := range cells {
		cell := cell
		b.Run(benchName("n", cell.n), func(b *testing.B) {
			T := scaledT(cell.paperT)
			owners := 4 * cell.n
			if owners < 100 {
				owners = 100
			}
			for i := 0; i < b.N; i++ {
				series, err := experiment.Fig4Cell(cell.n, T, owners, 0.01, 0, 42)
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					for _, s := range series {
						b.ReportMetric(s.FinalRegret, "regret:"+shortLabel(s.Label))
					}
				}
			}
		})
	}
}

// BenchmarkTable1 regenerates the per-round statistics of Table I for the
// version with reserve price.
func BenchmarkTable1(b *testing.B) {
	specs := []experiment.Table1Spec{
		{N: 1, T: 100}, {N: 20, T: 10000}, {N: 40, T: 10000},
		{N: 60, T: 100000}, {N: 80, T: 100000}, {N: 100, T: 100000},
	}
	for _, spec := range specs {
		spec := spec
		b.Run(benchName("n", spec.N), func(b *testing.B) {
			T := scaledT(spec.T)
			owners := 4 * spec.N
			if owners < 100 {
				owners = 100
			}
			for i := 0; i < b.N; i++ {
				row, err := experiment.Table1Row(spec.N, T, owners, 42)
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					b.ReportMetric(row.MarketValue.Mean, "value-mean")
					b.ReportMetric(row.Reserve.Mean, "reserve-mean")
					b.ReportMetric(row.Posted.Mean, "posted-mean")
					b.ReportMetric(row.Regret.Mean, "regret-mean")
				}
			}
		})
	}
}

// BenchmarkFig5a regenerates the regret-ratio comparison of Fig. 5(a):
// the four versions plus the risk-averse baseline at n = 100.
func BenchmarkFig5a(b *testing.B) {
	T := scaledT(100000)
	for i := 0; i < b.N; i++ {
		// ε = 0.2 is the tuned threshold recorded in EXPERIMENTS.md; the
		// Theorem 1 schedule is exercised by BenchmarkFig4.
		series, err := experiment.Fig5aCell(100, T, 400, 0.01, 0.2, 42)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, s := range series {
				b.ReportMetric(s.FinalRatio, "ratio:"+shortLabel(s.Label))
			}
		}
	}
}

// BenchmarkFig5b regenerates the accommodation rental regret ratios of
// Fig. 5(b): pure version and reserve ratios {0.4, 0.6, 0.8} with their
// risk-averse counterparts.
func BenchmarkFig5b(b *testing.B) {
	listings := 74111
	if !fullScale() {
		listings = 20000
	}
	for i := 0; i < b.N; i++ {
		results, err := experiment.Fig5bCells(listings, 42)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, r := range results {
				b.ReportMetric(r.FinalRatio, "ratio:"+shortLabel(r.Label))
			}
			b.ReportMetric(results[0].TestMSE, "ols-test-mse")
		}
	}
}

// BenchmarkFig5c regenerates the impression pricing regret ratios of
// Fig. 5(c): n ∈ {128, 1024} × {sparse, dense}.
func BenchmarkFig5c(b *testing.B) {
	T := scaledT(100000)
	if !fullScale() && T > 20000 {
		T = 20000
	}
	for i := 0; i < b.N; i++ {
		results, err := experiment.Fig5cCells(T, 42)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, r := range results {
				b.ReportMetric(r.FinalRatio, "ratio:"+shortLabel(r.Label))
				b.ReportMetric(float64(r.NonzeroWeights), "nnz:"+shortLabel(r.Label))
			}
		}
	}
}

// BenchmarkOverhead reproduces the §V-D latency measurements: per-round
// posted-price plus knowledge-update time at the paper's dimensions.
func BenchmarkOverhead(b *testing.B) {
	for _, n := range []int{20, 55, 100} {
		n := n
		b.Run(benchName("n", n), func(b *testing.B) {
			res, err := experiment.MeasureLinearOverhead(n, 2000, 1)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(res.LatencyPerRound.Nanoseconds())/1e6, "ms/round")
			b.ReportMetric(float64(res.MechanismBytes), "state-bytes")
			for i := 0; i < b.N; i++ {
				if _, err := experiment.MeasureLinearOverhead(n, 100, 1); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkLemma8 reproduces the appendix ablation: conservative-price
// cuts blow up phase-2 regret under the Lemma 8 adversary.
func BenchmarkLemma8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiment.RunLemma8(1200)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(res.AblationPhase2Regret, "ablation-regret")
			b.ReportMetric(res.DefaultPhase2Regret, "default-regret")
			b.ReportMetric(res.AblationWidthAtSwitch, "ablation-width")
		}
	}
}

// BenchmarkTheorem3 reproduces the 1-D O(log T) regret scaling.
func BenchmarkTheorem3(b *testing.B) {
	horizons := []int{1000, 10000, 100000}
	for i := 0; i < b.N; i++ {
		pts, err := experiment.RunTheorem3(horizons, 1)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, p := range pts {
				b.ReportMetric(p.CumRegret, benchName("regret-T", p.T))
			}
		}
	}
}

// BenchmarkFig1 regenerates the single-round regret curve of Fig. 1.
func BenchmarkFig1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts, err := experiment.RunFig1(10, 4, 101)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			// Report the cliff height (regret just above the value).
			b.ReportMetric(pts[len(pts)-1].Regret, "cliff-regret")
		}
	}
}

// BenchmarkThresholdSweep is the ε ablation: exploration volume vs
// conservative slack behind the tuned thresholds in EXPERIMENTS.md.
func BenchmarkThresholdSweep(b *testing.B) {
	T := scaledT(30000)
	for i := 0; i < b.N; i++ {
		pts, err := experiment.ThresholdSweep(40, T, 160, []float64{0.05, 0.2, 0.8}, 3)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, p := range pts {
				b.ReportMetric(p.FinalRatio, "ratio:eps="+trimFloat(p.Param))
			}
		}
	}
}

// BenchmarkUncertaintySweep is the δ ablation: the cost of robustness.
func BenchmarkUncertaintySweep(b *testing.B) {
	T := scaledT(30000)
	for i := 0; i < b.N; i++ {
		pts, err := experiment.UncertaintySweep(20, T, 100, []float64{0, 0.01, 0.05, 0.1}, 5)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, p := range pts {
				b.ReportMetric(p.FinalRatio, "ratio:delta="+trimFloat(p.Param))
			}
		}
	}
}

// BenchmarkSGDComparison pits the Amin et al. SGD baseline (§VI-B)
// against the ellipsoid mechanism on an identical stream.
func BenchmarkSGDComparison(b *testing.B) {
	T := scaledT(20000)
	for i := 0; i < b.N; i++ {
		sgd, ell, err := experiment.SGDComparison(10, T, 100, 7)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(sgd, "ratio:sgd")
			b.ReportMetric(ell, "ratio:ellipsoid")
		}
	}
}

func trimFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', 3, 64)
}

// BenchmarkPostPrice measures the §V-D micro-latency of a single pricing
// round (posted price + knowledge update) at the paper's dimensions.
func BenchmarkPostPrice(b *testing.B) {
	for _, n := range []int{20, 55, 100, 1024} {
		n := n
		b.Run(benchName("n", n), func(b *testing.B) {
			m, err := pricing.New(n, 10, pricing.WithReserve(), pricing.WithThreshold(0.05))
			if err != nil {
				b.Fatal(err)
			}
			r := randx.New(1)
			xs := make([]linalg.Vector, 256)
			for i := range xs {
				xs[i] = r.OnSphere(n)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				x := xs[i%len(xs)]
				q, err := m.PostPrice(x, 0.1)
				if err != nil {
					b.Fatal(err)
				}
				if q.Decision != pricing.DecisionSkip {
					if err := m.Observe(i%2 == 0); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

func benchName(prefix string, v int) string {
	return prefix + "=" + strconv.Itoa(v)
}

// shortLabel compresses series labels for metric names.
func shortLabel(label string) string {
	switch label {
	case "Pure Version":
		return "pure"
	case "With Uncertainty":
		return "unc"
	case "With Reserve Price":
		return "res"
	case "With Reserve Price and Uncertainty":
		return "res+unc"
	case "Risk-Averse Baseline":
		return "baseline"
	}
	out := make([]rune, 0, len(label))
	for _, c := range label {
		switch {
		case c >= 'a' && c <= 'z', c >= '0' && c <= '9', c == '.', c == '=':
			out = append(out, c)
		case c >= 'A' && c <= 'Z':
			out = append(out, c+32)
		}
	}
	return string(out)
}
