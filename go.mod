module datamarket

go 1.24
