package datamarket_test

import (
	"math"
	"testing"

	"datamarket"
	"datamarket/internal/privacy"
	"datamarket/internal/randx"
)

// TestFacadeEndToEnd exercises the public API the way the README's
// quickstart does: a mechanism with reserve pricing a synthetic stream.
func TestFacadeEndToEnd(t *testing.T) {
	const n, T = 8, 2000
	m, err := datamarket.NewMechanism(n, 2*math.Sqrt(n),
		datamarket.WithReserve(),
		datamarket.WithThreshold(datamarket.DefaultThreshold(n, T, 0)))
	if err != nil {
		t.Fatal(err)
	}
	r := randx.New(1)
	theta := r.NormalVector(n, 1)
	for i := range theta {
		theta[i] = math.Abs(theta[i])
	}
	theta.Normalize()
	theta.Scale(math.Sqrt(2 * n))
	tracker := datamarket.NewTracker(false)
	for i := 0; i < T; i++ {
		x := r.OnSphere(n)
		for j := range x {
			x[j] = math.Abs(x[j])
		}
		v := x.Dot(theta)
		reserve := 0.8 * v
		quote, err := m.PostPrice(x, reserve)
		if err != nil {
			t.Fatal(err)
		}
		if quote.Decision != datamarket.DecisionSkip {
			if err := m.Observe(datamarket.Sold(quote.Price, v)); err != nil {
				t.Fatal(err)
			}
		}
		tracker.Record(v, reserve, quote)
	}
	if tracker.RegretRatio() > 0.2 {
		t.Fatalf("facade mechanism regret ratio %v", tracker.RegretRatio())
	}
	if m.Counters().Rounds != T {
		t.Fatalf("rounds = %d", m.Counters().Rounds)
	}
}

func TestFacadeBrokerLoop(t *testing.T) {
	contract, err := privacy.NewTanhContract(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	owners := make([]datamarket.Owner, 30)
	r := randx.New(2)
	for i := range owners {
		owners[i] = datamarket.Owner{
			ID: i, Value: r.Uniform(1, 5), Range: 4.5, Contract: contract,
		}
	}
	mech, err := datamarket.NewMechanism(4, 4,
		datamarket.WithReserve(), datamarket.WithThreshold(0.05))
	if err != nil {
		t.Fatal(err)
	}
	broker, err := datamarket.NewBroker(datamarket.BrokerConfig{
		Owners: owners, Mechanism: mech, FeatureDim: 4, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		weights := r.NormalVector(30, 1)
		q, err := privacy.NewLinearQuery(weights, 1)
		if err != nil {
			t.Fatal(err)
		}
		ctx, err := broker.Prepare(q)
		if err != nil {
			t.Fatal(err)
		}
		tx, err := broker.Trade(datamarket.Query{Q: q, Valuation: ctx.Reserve * 1.3})
		if err != nil {
			t.Fatal(err)
		}
		if tx.Sold && tx.Profit < -1e-9 {
			t.Fatalf("negative profit %v", tx.Profit)
		}
	}
	if broker.TotalProfit() < 0 {
		t.Fatal("negative total profit")
	}
}

func TestFacadeNonlinearAndHelpers(t *testing.T) {
	nm, err := datamarket.NewNonlinearMechanism(datamarket.LogLinearModel(), 3, 2,
		datamarket.WithThreshold(0.01))
	if err != nil {
		t.Fatal(err)
	}
	q, err := nm.PostPrice(datamarket.Vector{1, 0, 0}, math.Inf(-1))
	if err != nil {
		t.Fatal(err)
	}
	if q.Price <= 0 {
		t.Fatalf("log-linear price must be positive, got %v", q.Price)
	}
	nm.Observe(true)

	iv, err := datamarket.NewIntervalMechanism(0, 2, datamarket.WithThreshold(0.01))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := iv.PostPrice(1, 0); err != nil {
		t.Fatal(err)
	}
	iv.Observe(false)

	if datamarket.SingleRoundRegret(5, 1, 6) != 5 {
		t.Fatal("regret helper wrong")
	}
	b := datamarket.NewRiskAverse()
	quote, err := b.PostPrice(datamarket.Vector{1}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if quote.Price != 2 {
		t.Fatalf("baseline price %v", quote.Price)
	}
	b.Observe(true)
	var _ datamarket.Poster = b
}

// TestFacadeFamilyAPI exercises the exported family factory and envelope
// round trip.
func TestFacadeFamilyAPI(t *testing.T) {
	if got := datamarket.Families(); len(got) != 3 {
		t.Fatalf("Families() = %v", got)
	}
	fp, err := datamarket.NewFamilyPoster(datamarket.FamilySpec{
		Family: datamarket.FamilySGD, Dim: 2, Reserve: true,
		Model: datamarket.ModelConfig{Eta0: 0.5, Margin: 1.0},
	})
	if err != nil {
		t.Fatal(err)
	}
	if fp.Family() != datamarket.FamilySGD {
		t.Fatalf("family = %q", fp.Family())
	}
	q, err := fp.PostPrice(datamarket.Vector{0.4, 0.6}, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if !fp.Pending() {
		t.Fatal("not pending after PostPrice")
	}
	if err := fp.Observe(datamarket.Sold(q.Price, 0.8)); err != nil {
		t.Fatal(err)
	}
	env, err := fp.SnapshotEnvelope()
	if err != nil {
		t.Fatal(err)
	}
	data, err := env.Encode()
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := datamarket.DecodeEnvelope(data)
	if err != nil {
		t.Fatal(err)
	}
	restored, err := datamarket.RestoreFamilyPoster(decoded)
	if err != nil {
		t.Fatal(err)
	}
	if restored.Counters() != fp.Counters() {
		t.Fatalf("counters %+v vs %+v", restored.Counters(), fp.Counters())
	}
	// A nonlinear model built from config matches the typed constructor.
	m, err := datamarket.BuildModel(datamarket.ModelConfig{Link: "exp"})
	if err != nil {
		t.Fatal(err)
	}
	if m.Link.Name() != datamarket.LogLinearModel().Link.Name() {
		t.Fatalf("link %q", m.Link.Name())
	}
}
