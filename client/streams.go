package client

import (
	"context"
	"net/http"

	"datamarket/api"
)

// Stream lifecycle, pricing, snapshot, and admin calls — one method per
// endpoint, speaking the api package's types verbatim.

// CreateStream registers a new pricing stream. (POST /v1/streams)
func (c *Client) CreateStream(ctx context.Context, req api.CreateStreamRequest) (api.StreamInfo, error) {
	var info api.StreamInfo
	err := c.do(ctx, http.MethodPost, "/v1/streams", req, &info, false)
	return info, err
}

// ListStreams enumerates the hosted streams. (GET /v1/streams)
func (c *Client) ListStreams(ctx context.Context) ([]api.StreamInfo, error) {
	var resp api.ListStreamsResponse
	err := c.do(ctx, http.MethodGet, "/v1/streams", nil, &resp, true)
	return resp.Streams, err
}

// Stream describes one hosted stream. (GET /v1/streams/{id})
func (c *Client) Stream(ctx context.Context, id string) (api.StreamInfo, error) {
	var info api.StreamInfo
	err := c.do(ctx, http.MethodGet, "/v1/streams/"+escape(id), nil, &info, true)
	return info, err
}

// DeleteStream removes a stream. With force, a pending two-phase round
// is discarded instead of answering 409. (DELETE /v1/streams/{id})
func (c *Client) DeleteStream(ctx context.Context, id string, force bool) error {
	path := "/v1/streams/" + escape(id)
	if force {
		path += "?force=true"
	}
	return c.do(ctx, http.MethodDelete, path, nil, nil, true)
}

// Price runs one full round atomically against the buyer valuation: the
// server posts a price, accepts iff price ≤ valuation, and feeds the
// outcome back to the mechanism. (POST /v1/streams/{id}/price)
//
// Pricing mutates mechanism state, so Price is never retried; use a
// Flusher to amortize HTTP overhead across concurrent calls.
func (c *Client) Price(ctx context.Context, id string, features []float64, reserve, valuation float64) (api.PriceResponse, error) {
	var resp api.PriceResponse
	err := c.doHot(ctx, http.MethodPost, "/v1/streams/"+escape(id)+"/price",
		&api.PriceRequest{Features: features, Reserve: reserve, Valuation: &valuation},
		&resp, false)
	return resp, err
}

// PriceBatch prices k rounds on one stream under a single stream-lock
// acquisition. Results align index-for-index with rounds.
// (POST /v1/streams/{id}/price/batch)
func (c *Client) PriceBatch(ctx context.Context, id string, rounds []api.BatchPriceRound) ([]api.BatchRoundResult, error) {
	var resp api.BatchPriceResponse
	err := c.doHot(ctx, http.MethodPost, "/v1/streams/"+escape(id)+"/price/batch",
		&api.BatchPriceRequest{Rounds: rounds}, &resp, false)
	return resp.Results, err
}

// PriceMulti prices rounds across many streams in one request; the
// Flusher is the usual caller. (POST /v1/price/batch)
func (c *Client) PriceMulti(ctx context.Context, rounds []api.MultiBatchRound) ([]api.BatchRoundResult, error) {
	var resp api.BatchPriceResponse
	err := c.doHot(ctx, http.MethodPost, "/v1/price/batch",
		&api.MultiBatchPriceRequest{Rounds: rounds}, &resp, false)
	return resp.Results, err
}

// Snapshot captures the stream's family-tagged state envelope.
// (GET /v1/streams/{id}/snapshot)
func (c *Client) Snapshot(ctx context.Context, id string) (*api.Envelope, error) {
	var env api.Envelope
	err := c.do(ctx, http.MethodGet, "/v1/streams/"+escape(id)+"/snapshot", nil, &env, true)
	if err != nil {
		return nil, err
	}
	return &env, nil
}

// Restore replays a snapshot envelope into the stream with the given ID,
// creating it if absent. Restoring to an absolute state is idempotent,
// so it retries like a read. (POST /v1/streams/{id}/restore)
func (c *Client) Restore(ctx context.Context, id string, env *api.Envelope) (api.StreamInfo, error) {
	var info api.StreamInfo
	err := c.do(ctx, http.MethodPost, "/v1/streams/"+escape(id)+"/restore", env, &info, true)
	return info, err
}

// Stats reports the stream's mechanism counters and regret bookkeeping.
// (GET /v1/streams/{id}/stats)
func (c *Client) Stats(ctx context.Context, id string) (api.StatsResponse, error) {
	var resp api.StatsResponse
	err := c.do(ctx, http.MethodGet, "/v1/streams/"+escape(id)+"/stats", nil, &resp, true)
	return resp, err
}

// Checkpoint runs a synchronous persistence checkpoint pass, optionally
// compacting the journal afterwards. (POST /v1/admin/checkpoint)
func (c *Client) Checkpoint(ctx context.Context, compact bool) (api.CheckpointResponse, error) {
	path := "/v1/admin/checkpoint"
	if compact {
		path += "?compact=true"
	}
	var resp api.CheckpointResponse
	err := c.do(ctx, http.MethodPost, path, nil, &resp, true)
	return resp, err
}

// StoreStatus reports the persistence subsystem's observable state.
// (GET /v1/admin/store)
func (c *Client) StoreStatus(ctx context.Context) (api.StoreStatusResponse, error) {
	var resp api.StoreStatusResponse
	err := c.do(ctx, http.MethodGet, "/v1/admin/store", nil, &resp, true)
	return resp, err
}

// Metrics reports the server's per-endpoint request counters and latency
// summaries. (GET /v1/admin/metrics)
func (c *Client) Metrics(ctx context.Context) (api.MetricsResponse, error) {
	var resp api.MetricsResponse
	err := c.do(ctx, http.MethodGet, "/v1/admin/metrics", nil, &resp, true)
	return resp, err
}
