package client

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"time"

	"datamarket/api"
)

// Two-phase round errors (client-side protocol enforcement).
var (
	// ErrRoundPending: Quote was called on a stream whose previous
	// QuoteSession from this client has not been observed yet. The
	// server would answer 409; the SDK refuses before the wire.
	ErrRoundPending = errors.New("client: stream has a quote pending feedback; observe it first")
	// ErrRoundClosed: Observe was called on a session that is already
	// resolved (observed, or skipped by the mechanism).
	ErrRoundClosed = errors.New("client: round already resolved")
)

// QuoteSession is one two-phase pricing round: phase one posted the
// price (Quote), phase two reports the buyer's decision (Observe). The
// mechanism — and this client — will not open another round on the same
// stream until the session is observed, the protocol the paper's
// Algorithm 1 requires: every posted price must receive its feedback
// before the next query is priced.
//
// A session is safe for concurrent use, though one goroutine observing
// it is the natural shape.
type QuoteSession struct {
	c      *Client
	stream string
	// Quote is the posted price for the round.
	Quote api.PriceResponse

	once sync.Once
	done chan struct{} // closed when the session resolves
}

// Quote opens a two-phase round on the stream: the price in the
// returned session is live until Observe reports the buyer's decision.
// (POST /v1/streams/{id}/quote)
//
// The one-pending-round rule is enforced client-side per stream: a
// second Quote before the first session's Observe fails immediately
// with ErrRoundPending, without a wire round trip. (Other clients of
// the same server can still race this client to the stream; the server
// remains the authority and answers 409 round_pending in that case.)
//
// A round the mechanism skipped (decision "skip") needs no feedback:
// the session is returned already resolved and only documents the skip.
//
// A transport failure is ambiguous — the server may or may not have
// opened the round. The SDK resolves it by sending a best-effort
// "rejected" observation: if the round had opened, an unanswered offer
// is a rejection; if not, the server answers no_round_pending. Either
// way the stream's state is known again and the original error is
// returned with a nil session. Only when that cleanup itself fails on
// transport does Quote return the still-pending session alongside the
// error: Observe it (any decision) once the server is reachable — or
// the next Quote on the stream fails with ErrRoundPending.
func (c *Client) Quote(ctx context.Context, id string, features []float64, reserve float64) (*QuoteSession, error) {
	s := &QuoteSession{c: c, stream: id, done: make(chan struct{})}
	c.pendingMu.Lock()
	if _, busy := c.pending[id]; busy {
		c.pendingMu.Unlock()
		return nil, fmt.Errorf("%w (stream %q)", ErrRoundPending, id)
	}
	c.pending[id] = s
	c.pendingMu.Unlock()

	err := c.do(ctx, http.MethodPost, "/v1/streams/"+escape(id)+"/quote",
		api.QuoteRequest{Features: features, Reserve: reserve}, &s.Quote, false)
	if err != nil {
		var ae *APIError
		if errors.As(err, &ae) || errors.Is(err, ErrIncompatibleAPI) {
			// Definitive: the server refused (or was never asked); no
			// round opened.
			c.release(s)
			return nil, err
		}
		// Ambiguous transport failure; try to close any half-opened
		// round. The caller's ctx may already be dead, so the cleanup
		// gets its own short deadline.
		cctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		cleanupErr := c.do(cctx, http.MethodPost, "/v1/streams/"+escape(id)+"/observe",
			api.ObserveRequest{Accepted: false}, nil, false)
		if cleanupErr == nil || errors.As(cleanupErr, &ae) {
			c.release(s)
			return nil, err
		}
		return s, fmt.Errorf("client: quote failed and the round may be open server-side (observe the returned session to recover): %w", err)
	}
	if s.Quote.Decision == "skip" {
		// No round is pending server-side; nothing to observe.
		c.release(s)
	}
	return s, nil
}

// Observe closes the round with the buyer's decision.
// (POST /v1/streams/{id}/observe)
//
// On success — and on any definitive server response — the session
// resolves and the stream accepts new quotes from this client. Only a
// transport failure (the server may or may not have seen the feedback)
// leaves the session open for a retry.
func (s *QuoteSession) Observe(ctx context.Context, accepted bool) error {
	select {
	case <-s.done:
		return fmt.Errorf("%w (stream %q)", ErrRoundClosed, s.stream)
	default:
	}
	err := s.c.do(ctx, http.MethodPost, "/v1/streams/"+escape(s.stream)+"/observe",
		api.ObserveRequest{Accepted: accepted}, nil, false)
	if err == nil {
		s.c.release(s)
		return nil
	}
	var ae *APIError
	if errors.As(err, &ae) {
		// The server answered: whatever it said, the round's fate is
		// decided (e.g. no_round_pending after a force-restore).
		s.c.release(s)
	}
	return err
}

// Pending reports whether the session still awaits Observe.
func (s *QuoteSession) Pending() bool {
	select {
	case <-s.done:
		return false
	default:
		return true
	}
}

// release resolves a session and frees its stream's pending slot, if
// this session still holds it. Idempotent: concurrent resolutions (two
// racing Observes) collapse into one.
func (c *Client) release(s *QuoteSession) {
	s.once.Do(func() {
		c.pendingMu.Lock()
		if c.pending[s.stream] == s {
			delete(c.pending, s.stream)
		}
		c.pendingMu.Unlock()
		close(s.done)
	})
}
