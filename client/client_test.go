package client

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"datamarket/api"
	"datamarket/internal/server"
)

// newBroker stands up a real brokerd edge and an SDK client over it.
func newBroker(t *testing.T, opts ...Option) (*server.Server, *Client) {
	t.Helper()
	srv := server.NewServer(nil)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	c, err := New(ts.URL, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return srv, c
}

// flaky wraps a handler, injecting failures: for each request key
// (method+path), the first `fail500` attempts answer 500 and the next
// `drop` attempts hard-close the TCP connection mid-response.
type flaky struct {
	inner   http.Handler
	fail500 int
	drop    int

	mu   sync.Mutex
	seen map[string]int
}

func (f *flaky) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	key := r.Method + " " + r.URL.Path
	f.mu.Lock()
	n := f.seen[key]
	f.seen[key] = n + 1
	f.mu.Unlock()
	switch {
	case n < f.fail500:
		w.WriteHeader(http.StatusInternalServerError)
		json.NewEncoder(w).Encode(api.ErrorResponse{Error: api.ErrorDetail{
			Code: api.CodeInternal, Message: "injected failure",
		}})
	case n < f.fail500+f.drop:
		hj, ok := w.(http.Hijacker)
		if !ok {
			panic("test server does not support hijacking")
		}
		conn, _, err := hj.Hijack()
		if err != nil {
			panic(err)
		}
		conn.Close() // dropped connection: the client sees a transport error
	default:
		f.inner.ServeHTTP(w, r)
	}
}

// newFlakyBroker serves brokerd behind failure injection.
func newFlakyBroker(t *testing.T, fail500, drop int, opts ...Option) (*server.Server, *Client, *flaky) {
	t.Helper()
	srv := server.NewServer(nil)
	f := &flaky{
		inner:   srv.Handler(),
		fail500: fail500,
		drop:    drop,
		seen:    make(map[string]int),
	}
	ts := httptest.NewServer(f)
	t.Cleanup(ts.Close)
	c, err := New(ts.URL, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return srv, c, f
}

// TestRetriesIdempotent drives every idempotent call class through
// injected 500s and dropped connections: with enough retries configured
// the calls succeed transparently. Streams are created registry-side —
// create is a POST and must not ride the retry loop.
func TestRetriesIdempotent(t *testing.T) {
	// Each unique method+path fails with one 500 and one dropped
	// connection before working — two retries needed.
	srv, c, _ := newFlakyBroker(t, 1, 1, WithRetries(2), WithBackoff(time.Millisecond, 8*time.Millisecond))
	if _, err := srv.Registry().Create(server.CreateStreamRequest{ID: "s", Dim: 2}); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	// The version probe itself rides the retry loop (GET, idempotent).
	if _, err := c.ListStreams(ctx); err != nil {
		t.Fatalf("list: %v", err)
	}
	if _, err := c.Stats(ctx, "s"); err != nil {
		t.Fatalf("stats: %v", err)
	}
	if _, err := c.Snapshot(ctx, "s"); err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	if _, err := c.Health(ctx); err != nil {
		t.Fatalf("health: %v", err)
	}
	if err := c.DeleteStream(ctx, "s", false); err != nil {
		t.Fatalf("delete: %v", err)
	}
}

// TestNonIdempotentNotRetried: pricing and create mutate server state,
// so a 5xx must surface on the first attempt, not be replayed.
func TestNonIdempotentNotRetried(t *testing.T) {
	_, c, f := newFlakyBroker(t, 1, 0, WithRetries(5), WithBackoff(time.Millisecond, 8*time.Millisecond))
	_, err := c.CreateStream(context.Background(), api.CreateStreamRequest{ID: "s", Dim: 2})
	var ae *APIError
	if !errors.As(err, &ae) || ae.Status != http.StatusInternalServerError {
		t.Fatalf("err = %v, want the injected 500 (non-idempotent calls never retry)", err)
	}
	f.mu.Lock()
	attempts := f.seen["POST /v1/streams"]
	f.mu.Unlock()
	if attempts != 1 {
		t.Fatalf("create attempted %d times, want exactly 1", attempts)
	}
}

// TestRetryBackoffSchedule asserts retries actually wait: three
// attempts with base 30ms take at least base + 2·base.
func TestRetryBackoffSchedule(t *testing.T) {
	_, c, _ := newFlakyBroker(t, 2, 0, WithRetries(2), WithBackoff(30*time.Millisecond, time.Second))
	start := time.Now()
	if _, err := c.Health(context.Background()); err != nil {
		t.Fatalf("health: %v", err)
	}
	// /healthz pays 2 retries; the version probe pays its own 2.
	if elapsed := time.Since(start); elapsed < 150*time.Millisecond {
		t.Fatalf("four backoff waits of 30/60ms finished in %v — backoff not applied", elapsed)
	}
}

// TestRetriesExhausted: more failures than retries surfaces the last
// error.
func TestRetriesExhausted(t *testing.T) {
	_, c, _ := newFlakyBroker(t, 5, 0, WithRetries(1), WithBackoff(time.Millisecond, time.Millisecond))
	_, err := c.Health(context.Background())
	var ae *APIError
	if !errors.As(err, &ae) || ae.Status != http.StatusInternalServerError {
		t.Fatalf("err = %v, want surviving 500", err)
	}
}

// TestRetryHonorsContext: cancellation mid-backoff aborts the loop.
func TestRetryHonorsContext(t *testing.T) {
	_, c, _ := newFlakyBroker(t, 100, 0, WithRetries(100), WithBackoff(50*time.Millisecond, time.Second))
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := c.Health(ctx)
	if err == nil {
		t.Fatal("expected failure")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
	if time.Since(start) > time.Second {
		t.Fatal("retry loop outlived its context")
	}
}

// TestVersionCheck pins the compatibility probe: one request on first
// use, a latched ErrIncompatibleAPI against a mismatched server.
func TestVersionCheck(t *testing.T) {
	var versionCalls, otherCalls atomic.Int32
	mismatched := func(api string) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.URL.Path == "/v1/version" {
				versionCalls.Add(1)
				json.NewEncoder(w).Encode(map[string]string{"api": api, "server": "t", "go_version": "t"})
				return
			}
			otherCalls.Add(1)
			w.Write([]byte("{}"))
		})
	}

	t.Run("compatible", func(t *testing.T) {
		versionCalls.Store(0)
		ts := httptest.NewServer(mismatched(api.APIVersion))
		defer ts.Close()
		c, err := New(ts.URL)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 3; i++ {
			if _, err := c.Health(context.Background()); err != nil {
				t.Fatal(err)
			}
		}
		if n := versionCalls.Load(); n != 1 {
			t.Fatalf("version probed %d times, want once", n)
		}
	})

	t.Run("mismatch latched", func(t *testing.T) {
		versionCalls.Store(0)
		otherCalls.Store(0)
		ts := httptest.NewServer(mismatched("v999"))
		defer ts.Close()
		c, err := New(ts.URL)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 3; i++ {
			_, err := c.Health(context.Background())
			if !errors.Is(err, ErrIncompatibleAPI) {
				t.Fatalf("err = %v, want ErrIncompatibleAPI", err)
			}
		}
		if n := versionCalls.Load(); n != 1 {
			t.Fatalf("version probed %d times, want once (mismatch latched)", n)
		}
		if n := otherCalls.Load(); n != 0 {
			t.Fatalf("%d API calls escaped to an incompatible server", n)
		}
	})

	t.Run("disabled", func(t *testing.T) {
		versionCalls.Store(0)
		ts := httptest.NewServer(mismatched("v999"))
		defer ts.Close()
		c, err := New(ts.URL, WithoutVersionCheck())
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.Health(context.Background()); err != nil {
			t.Fatal(err)
		}
		if n := versionCalls.Load(); n != 0 {
			t.Fatalf("version probed %d times with the check disabled", n)
		}
	})
}

// TestAPIErrorMapping pins the typed error surface: status, stable wire
// code, helpers.
func TestAPIErrorMapping(t *testing.T) {
	_, c := newBroker(t)
	ctx := context.Background()

	_, err := c.Stats(ctx, "missing")
	var ae *APIError
	if !errors.As(err, &ae) {
		t.Fatalf("err = %T, want *APIError", err)
	}
	if ae.Status != http.StatusNotFound || ae.Code != api.CodeStreamNotFound {
		t.Fatalf("got %d/%s, want 404/%s", ae.Status, ae.Code, api.CodeStreamNotFound)
	}
	if !IsNotFound(err) {
		t.Error("IsNotFound is false for a 404")
	}
	if ErrorCode(err) != api.CodeStreamNotFound {
		t.Errorf("ErrorCode = %q", ErrorCode(err))
	}

	if _, err := c.CreateStream(ctx, api.CreateStreamRequest{ID: "s", Dim: 2}); err != nil {
		t.Fatal(err)
	}
	_, err = c.CreateStream(ctx, api.CreateStreamRequest{ID: "s", Dim: 2})
	if ErrorCode(err) != api.CodeStreamExists {
		t.Fatalf("duplicate create: %v, want code %s", err, api.CodeStreamExists)
	}
	_, err = c.Market(ctx, "missing")
	if !IsNotFound(err) || ErrorCode(err) != api.CodeMarketNotFound {
		t.Fatalf("missing market: %v, want 404/%s", err, api.CodeMarketNotFound)
	}
}

// TestServerVersion surfaces the probed build info.
func TestServerVersion(t *testing.T) {
	_, c := newBroker(t)
	v, err := c.ServerVersion(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if v.API != api.APIVersion || v.Server != server.Version {
		t.Fatalf("version = %+v", v)
	}
}
