package client

import (
	"context"
	"fmt"
	"net/http"

	"datamarket/api"
)

// Hosted-market calls: the full owners → compensation → reserve →
// settlement loop of the paper, driven over HTTP.

// CreateMarket stands up a hosted market. (POST /v1/markets)
func (c *Client) CreateMarket(ctx context.Context, req api.CreateMarketRequest) (api.MarketInfo, error) {
	var info api.MarketInfo
	err := c.do(ctx, http.MethodPost, "/v1/markets", req, &info, false)
	return info, err
}

// ListMarkets enumerates the hosted markets. (GET /v1/markets)
func (c *Client) ListMarkets(ctx context.Context) ([]api.MarketInfo, error) {
	var resp api.ListMarketsResponse
	err := c.do(ctx, http.MethodGet, "/v1/markets", nil, &resp, true)
	return resp.Markets, err
}

// Market describes one hosted market. (GET /v1/markets/{id})
func (c *Client) Market(ctx context.Context, id string) (api.MarketInfo, error) {
	var info api.MarketInfo
	err := c.do(ctx, http.MethodGet, "/v1/markets/"+escape(id), nil, &info, true)
	return info, err
}

// DeleteMarket removes a market. (DELETE /v1/markets/{id})
func (c *Client) DeleteMarket(ctx context.Context, id string) error {
	return c.do(ctx, http.MethodDelete, "/v1/markets/"+escape(id), nil, nil, true)
}

// Trade settles one consumer query: the server derives the reserve from
// the owners' compensation contracts, prices the query, settles iff the
// posted price is at most the valuation, and records the ledger entry.
// (POST /v1/markets/{id}/trade)
func (c *Client) Trade(ctx context.Context, id string, trade api.TradeRequest) (api.TradeResult, error) {
	var resp api.TradeResponse
	err := c.do(ctx, http.MethodPost, "/v1/markets/"+escape(id)+"/trade", trade, &resp, false)
	return resp.TradeResult, err
}

// TradeBatch settles k trades in one request; results align
// index-for-index with trades. (POST /v1/markets/{id}/trade/batch)
func (c *Client) TradeBatch(ctx context.Context, id string, trades []api.TradeRequest) ([]api.TradeBatchResult, error) {
	var resp api.TradeBatchResponse
	err := c.doHot(ctx, http.MethodPost, "/v1/markets/"+escape(id)+"/trade/batch",
		&api.TradeBatchRequest{Trades: trades}, &resp, false)
	return resp.Results, err
}

// Ledger pages through the market's transaction ledger.
// (GET /v1/markets/{id}/ledger?offset=&limit=)
func (c *Client) Ledger(ctx context.Context, id string, offset, limit int) (api.LedgerResponse, error) {
	path := fmt.Sprintf("/v1/markets/%s/ledger?offset=%d&limit=%d", escape(id), offset, limit)
	var resp api.LedgerResponse
	err := c.do(ctx, http.MethodGet, path, nil, &resp, true)
	return resp, err
}

// Payouts reports cumulative privacy compensation per owner.
// (GET /v1/markets/{id}/payouts)
func (c *Client) Payouts(ctx context.Context, id string) (api.PayoutsResponse, error) {
	var resp api.PayoutsResponse
	err := c.do(ctx, http.MethodGet, "/v1/markets/"+escape(id)+"/payouts", nil, &resp, true)
	return resp, err
}

// MarketStats aggregates the market's books and its mechanism's
// bookkeeping. (GET /v1/markets/{id}/stats)
func (c *Client) MarketStats(ctx context.Context, id string) (api.MarketStatsResponse, error) {
	var resp api.MarketStatsResponse
	err := c.do(ctx, http.MethodGet, "/v1/markets/"+escape(id)+"/stats", nil, &resp, true)
	return resp, err
}
