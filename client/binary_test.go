package client

// Negotiation tests for WithBinary: the SDK must use the binary codec
// against a capable server, keep speaking JSON against a server that
// predates it, and leave binary-unaware clients untouched either way.

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"datamarket/api"
	"datamarket/api/binary"
	"datamarket/internal/server"
)

// contentTypeRecorder wraps a handler, recording the Content-Type of
// every request to a hot path.
type contentTypeRecorder struct {
	inner http.Handler

	mu   sync.Mutex
	seen []string
}

func (rec *contentTypeRecorder) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if strings.Contains(r.URL.Path, "price") || strings.Contains(r.URL.Path, "trade") {
		rec.mu.Lock()
		rec.seen = append(rec.seen, r.Header.Get("Content-Type"))
		rec.mu.Unlock()
	}
	rec.inner.ServeHTTP(w, r)
}

func (rec *contentTypeRecorder) hotContentTypes() []string {
	rec.mu.Lock()
	defer rec.mu.Unlock()
	return append([]string(nil), rec.seen...)
}

func newRecordedBroker(t *testing.T, opts ...Option) (*Client, *contentTypeRecorder) {
	t.Helper()
	rec := &contentTypeRecorder{inner: server.NewServer(nil).Handler()}
	ts := httptest.NewServer(rec)
	t.Cleanup(ts.Close)
	c, err := New(ts.URL, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return c, rec
}

// TestWithBinaryUsesCodec pins that, against a capable server, every hot
// call switches to the binary codec from the first call (the version
// probe's response already advertised support) and still returns the
// same answers a JSON client gets.
func TestWithBinaryUsesCodec(t *testing.T) {
	ctx := context.Background()
	c, rec := newRecordedBroker(t, WithBinary())
	if _, err := c.CreateStream(ctx, api.CreateStreamRequest{ID: "s", Dim: 2, Threshold: 0.05}); err != nil {
		t.Fatal(err)
	}
	resp, err := c.Price(ctx, "s", []float64{0.6, 0.8}, -1e9, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Decision == "" || resp.Accepted == nil {
		t.Fatalf("binary price returned %+v", resp)
	}
	rounds := make([]api.BatchPriceRound, 8)
	for i := range rounds {
		v := 0.5
		rounds[i] = api.BatchPriceRound{Features: []float64{0.1, 0.2}, Reserve: -1e9, Valuation: &v}
	}
	results, err := c.PriceBatch(ctx, "s", rounds)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(rounds) {
		t.Fatalf("got %d results for %d rounds", len(results), len(rounds))
	}
	for _, ct := range rec.hotContentTypes() {
		if ct != binary.ContentType {
			t.Errorf("hot call went out as %q, want %q", ct, binary.ContentType)
		}
	}
	if len(rec.hotContentTypes()) == 0 {
		t.Fatal("recorder saw no hot calls")
	}
}

// TestWithBinaryFallsBackOnOldServer stands up a fake pre-binary server
// — speaks the current API version but never sets X-Binary-Protocol —
// and pins that a WithBinary client keeps speaking JSON and succeeding.
func TestWithBinaryFallsBackOnOldServer(t *testing.T) {
	var hotCTs []string
	var mu sync.Mutex
	old := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch {
		case r.URL.Path == "/v1/version":
			json.NewEncoder(w).Encode(api.VersionResponse{API: api.APIVersion, Server: "0.4.0"})
		case strings.HasSuffix(r.URL.Path, "/price"):
			mu.Lock()
			hotCTs = append(hotCTs, r.Header.Get("Content-Type"))
			mu.Unlock()
			var req api.PriceRequest
			if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
				t.Errorf("old server got a non-JSON body: %v", err)
				w.WriteHeader(http.StatusBadRequest)
				return
			}
			json.NewEncoder(w).Encode(api.PriceResponse{Price: 1, Decision: "exploratory"})
		default:
			w.WriteHeader(http.StatusNotFound)
			json.NewEncoder(w).Encode(api.ErrorResponse{Error: api.ErrorDetail{Code: api.CodeNotFound}})
		}
	}))
	t.Cleanup(old.Close)

	c, err := New(old.URL, WithBinary())
	if err != nil {
		t.Fatal(err)
	}
	resp, err := c.Price(context.Background(), "s", []float64{1}, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Price != 1 {
		t.Fatalf("price = %+v", resp)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(hotCTs) != 1 || hotCTs[0] != "application/json" {
		t.Errorf("old server saw hot content types %v, want one JSON call", hotCTs)
	}
}

// TestBinaryUnawareClientAgainstNewServer pins the other compatibility
// leg: a default (JSON) client against a binary-capable server stays on
// JSON end to end.
func TestBinaryUnawareClientAgainstNewServer(t *testing.T) {
	ctx := context.Background()
	c, rec := newRecordedBroker(t) // no WithBinary
	if _, err := c.CreateStream(ctx, api.CreateStreamRequest{ID: "s", Dim: 2, Threshold: 0.05}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Price(ctx, "s", []float64{0.6, 0.8}, -1e9, 0.9); err != nil {
		t.Fatal(err)
	}
	for _, ct := range rec.hotContentTypes() {
		if ct != "application/json" {
			t.Errorf("binary-unaware client sent %q", ct)
		}
	}
}

// TestWithBinaryErrorPath pins that error handling is codec-independent:
// a binary client still gets typed APIErrors with stable codes.
func TestWithBinaryErrorPath(t *testing.T) {
	ctx := context.Background()
	c, _ := newRecordedBroker(t, WithBinary())
	_, err := c.Price(ctx, "missing", []float64{1, 2}, 0, 1)
	if got := ErrorCode(err); got != api.CodeStreamNotFound {
		t.Fatalf("error code %q (err %v), want %q", got, err, api.CodeStreamNotFound)
	}
	if !IsNotFound(err) {
		t.Fatalf("IsNotFound(%v) = false", err)
	}
}

// TestWithBinaryFlusher drives the auto-batching Flusher over the binary
// codec: coalesced multi-stream batches must ride the codec and fan
// results back correctly.
func TestWithBinaryFlusher(t *testing.T) {
	ctx := context.Background()
	c, rec := newRecordedBroker(t, WithBinary())
	for _, id := range []string{"fa", "fb"} {
		if _, err := c.CreateStream(ctx, api.CreateStreamRequest{ID: id, Dim: 2, Threshold: 0.05}); err != nil {
			t.Fatal(err)
		}
	}
	fl := NewFlusher(c, FlusherConfig{MaxBatch: 8})
	defer fl.Close()
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for i := 0; i < 16; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			id := []string{"fa", "fb"}[i%2]
			if _, err := fl.Price(ctx, id, []float64{0.1, 0.2}, -1e9, 0.5); err != nil {
				errs <- err
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	sawBinary := false
	for _, ct := range rec.hotContentTypes() {
		if ct == binary.ContentType {
			sawBinary = true
		}
	}
	if !sawBinary {
		t.Error("flusher batches never used the binary codec")
	}
}
