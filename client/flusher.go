package client

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"datamarket/api"
)

// Flusher defaults.
const (
	DefaultFlusherMaxBatch = 256
	DefaultFlusherMaxDelay = 2 * time.Millisecond
	DefaultFlushTimeout    = 30 * time.Second
)

// ErrFlusherClosed: Price was called after Close.
var ErrFlusherClosed = errors.New("client: flusher is closed")

// FlusherConfig tunes the coalescing window.
type FlusherConfig struct {
	// MaxBatch flushes as soon as this many rounds are buffered
	// (default 256). Values above api.MaxBatchRounds are clamped to it —
	// the server rejects larger batches whole, which would fail every
	// coalesced caller at once.
	MaxBatch int
	// MaxDelay bounds how long the first round of a batch waits for
	// company before the batch flushes anyway (default 2ms) — the
	// latency cost a caller pays for batching under low concurrency.
	MaxDelay time.Duration
	// FlushTimeout bounds one flush's HTTP exchange (default 30s). A
	// batch aggregates many callers, so it cannot ride any single
	// caller's context.
	FlushTimeout time.Duration
}

// Flusher coalesces concurrent Price calls into multi-stream batch
// requests. Callers use it exactly like Client.Price — one call, one
// result — while the wire sees /v1/price/batch requests carrying up to
// MaxBatch rounds: the per-request JSON/dispatch overhead that
// dominates per-round HTTP serving is amortized transparently.
//
// A batch flushes when it reaches MaxBatch rounds or when its oldest
// round has waited MaxDelay, whichever comes first. Rounds for the same
// stream keep their submission order within a batch (the server prices
// a stream's rounds in request order).
type Flusher struct {
	c   *Client
	cfg FlusherConfig

	mu     sync.Mutex
	buf    []*flushCall
	timer  *time.Timer
	closed bool
}

// flushCall is one caller's round: its wire form plus the channel the
// caller blocks on.
type flushCall struct {
	round api.MultiBatchRound
	done  chan struct{}
	res   api.BatchRoundResult
	err   error
}

// NewFlusher builds a Flusher over the client. Close it when done to
// flush stragglers.
func NewFlusher(c *Client, cfg FlusherConfig) *Flusher {
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = DefaultFlusherMaxBatch
	}
	if cfg.MaxBatch > api.MaxBatchRounds {
		cfg.MaxBatch = api.MaxBatchRounds
	}
	if cfg.MaxDelay <= 0 {
		cfg.MaxDelay = DefaultFlusherMaxDelay
	}
	if cfg.FlushTimeout <= 0 {
		cfg.FlushTimeout = DefaultFlushTimeout
	}
	return &Flusher{c: c, cfg: cfg}
}

// Price prices one full round on the stream, riding whatever batch is
// forming. It blocks until the round's batch has flushed (at most
// MaxDelay of coalescing plus one HTTP exchange) or ctx is done.
//
// A ctx expiry abandons only the wait: the round is already committed
// to its batch and will still price on the server — like any pricing
// call that times out mid-flight, the mechanism may consume the round.
func (f *Flusher) Price(ctx context.Context, streamID string, features []float64, reserve, valuation float64) (api.PriceResponse, error) {
	call := &flushCall{
		round: api.MultiBatchRound{
			StreamID:  streamID,
			Features:  features,
			Reserve:   reserve,
			Valuation: &valuation,
		},
		done: make(chan struct{}),
	}
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return api.PriceResponse{}, ErrFlusherClosed
	}
	f.buf = append(f.buf, call)
	var batch []*flushCall
	switch {
	case len(f.buf) >= f.cfg.MaxBatch:
		batch = f.take()
	case len(f.buf) == 1:
		f.timer = time.AfterFunc(f.cfg.MaxDelay, f.flushExpired)
	}
	f.mu.Unlock()

	if batch != nil {
		f.flush(batch)
	}
	select {
	case <-call.done:
	case <-ctx.Done():
		return api.PriceResponse{}, ctx.Err()
	}
	if call.err != nil {
		return api.PriceResponse{}, call.err
	}
	if call.res.Error != "" {
		return api.PriceResponse{}, fmt.Errorf("client: round failed: %s", call.res.Error)
	}
	return call.res.PriceResponse, nil
}

// take detaches the current buffer and disarms the delay timer. Callers
// hold f.mu.
func (f *Flusher) take() []*flushCall {
	batch := f.buf
	f.buf = nil
	if f.timer != nil {
		f.timer.Stop()
		f.timer = nil
	}
	return batch
}

// flushExpired is the MaxDelay timer's path: flush whatever has
// accumulated.
func (f *Flusher) flushExpired() {
	f.mu.Lock()
	batch := f.take()
	f.mu.Unlock()
	if len(batch) > 0 {
		f.flush(batch)
	}
}

// flush sends one batch and routes each result (or the batch-wide
// error) to its caller.
func (f *Flusher) flush(batch []*flushCall) {
	ctx, cancel := context.WithTimeout(context.Background(), f.cfg.FlushTimeout)
	defer cancel()
	rounds := make([]api.MultiBatchRound, len(batch))
	for i, call := range batch {
		rounds[i] = call.round
	}
	results, err := f.c.PriceMulti(ctx, rounds)
	for i, call := range batch {
		switch {
		case err != nil:
			call.err = err
		case i < len(results):
			call.res = results[i]
		default:
			call.err = fmt.Errorf("client: batch response has %d results for %d rounds",
				len(results), len(batch))
		}
		close(call.done)
	}
}

// Close flushes any buffered rounds and rejects future Price calls.
// In-flight callers still receive their results.
func (f *Flusher) Close() {
	f.mu.Lock()
	f.closed = true
	batch := f.take()
	f.mu.Unlock()
	if len(batch) > 0 {
		f.flush(batch)
	}
}
