package client

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"datamarket/api"
	"datamarket/internal/server"
)

// TestQuoteSessionProtocol drives the two-phase loop through the SDK
// and asserts the one-pending-round rule is enforced client-side, before
// any wire traffic.
func TestQuoteSessionProtocol(t *testing.T) {
	_, c := newBroker(t)
	ctx := context.Background()
	if _, err := c.CreateStream(ctx, api.CreateStreamRequest{ID: "s", Dim: 2}); err != nil {
		t.Fatal(err)
	}

	s1, err := c.Quote(ctx, "s", []float64{0.3, 0.4}, -100)
	if err != nil {
		t.Fatal(err)
	}
	if !s1.Pending() {
		t.Fatal("fresh session not pending")
	}
	if s1.Quote.Decision == "skip" {
		t.Fatalf("unexpected skip: %+v", s1.Quote)
	}

	// A second quote on the same stream fails fast, client-side.
	if _, err := c.Quote(ctx, "s", []float64{0.1, 0.2}, -100); !errors.Is(err, ErrRoundPending) {
		t.Fatalf("second quote: %v, want ErrRoundPending", err)
	}
	// Another stream is unaffected.
	if _, err := c.CreateStream(ctx, api.CreateStreamRequest{ID: "other", Dim: 2}); err != nil {
		t.Fatal(err)
	}
	s2, err := c.Quote(ctx, "other", []float64{0.3, 0.4}, -100)
	if err != nil {
		t.Fatalf("quote on independent stream: %v", err)
	}
	if err := s2.Observe(ctx, false); err != nil {
		t.Fatal(err)
	}

	if err := s1.Observe(ctx, true); err != nil {
		t.Fatal(err)
	}
	if s1.Pending() {
		t.Fatal("observed session still pending")
	}
	// Observing twice is a client-side error.
	if err := s1.Observe(ctx, true); !errors.Is(err, ErrRoundClosed) {
		t.Fatalf("double observe: %v, want ErrRoundClosed", err)
	}
	// The stream accepts a new round now.
	s3, err := c.Quote(ctx, "s", []float64{0.5, 0.1}, -100)
	if err != nil {
		t.Fatalf("quote after observe: %v", err)
	}
	if err := s3.Observe(ctx, false); err != nil {
		t.Fatal(err)
	}
}

// TestQuoteSessionSkip: a skipped round needs no feedback and frees the
// stream immediately.
func TestQuoteSessionSkip(t *testing.T) {
	_, c := newBroker(t)
	ctx := context.Background()
	if _, err := c.CreateStream(ctx, api.CreateStreamRequest{ID: "s", Dim: 2, Reserve: true}); err != nil {
		t.Fatal(err)
	}
	// An absurd reserve forces the certain-no-deal skip path.
	s, err := c.Quote(ctx, "s", []float64{0.3, 0.4}, 1e9)
	if err != nil {
		t.Fatal(err)
	}
	if s.Quote.Decision != "skip" {
		t.Fatalf("decision %q, want skip", s.Quote.Decision)
	}
	if s.Pending() {
		t.Fatal("skipped session reports pending")
	}
	if err := s.Observe(ctx, false); !errors.Is(err, ErrRoundClosed) {
		t.Fatalf("observe on skip: %v, want ErrRoundClosed", err)
	}
	// The stream is free for the next round.
	if _, err := c.Quote(ctx, "s", []float64{0.3, 0.4}, -100); err != nil {
		t.Fatalf("quote after skip: %v", err)
	}
}

// countingHandler wraps a handler and counts requests per path.
type countingHandler struct {
	inner http.Handler
	mu    sync.Mutex
	paths map[string]int
}

func (h *countingHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	h.mu.Lock()
	h.paths[r.URL.Path]++
	h.mu.Unlock()
	h.inner.ServeHTTP(w, r)
}

func (h *countingHandler) count(path string) int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.paths[path]
}

// TestFlusherCoalesces: N concurrent Price calls whose batch threshold
// is N must land as exactly one /v1/price/batch request, with each
// caller receiving its own round's result.
func TestFlusherCoalesces(t *testing.T) {
	const n = 16
	// Deterministic stub: price = sum(features); accepted = valuation ≥ price.
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/version", func(w http.ResponseWriter, _ *http.Request) {
		json.NewEncoder(w).Encode(api.VersionResponse{API: api.APIVersion, Server: "stub", GoVersion: "stub"})
	})
	mux.HandleFunc("POST /v1/price/batch", func(w http.ResponseWriter, r *http.Request) {
		var req api.MultiBatchPriceRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			t.Error(err)
		}
		resp := api.BatchPriceResponse{Results: make([]api.BatchRoundResult, len(req.Rounds))}
		for i, rd := range req.Rounds {
			var price float64
			for _, f := range rd.Features {
				price += f
			}
			acc := *rd.Valuation >= price
			resp.Results[i] = api.BatchRoundResult{PriceResponse: api.PriceResponse{
				Price: price, Decision: "exploratory", Accepted: &acc,
			}}
		}
		json.NewEncoder(w).Encode(resp)
	})
	counter := &countingHandler{inner: mux, paths: make(map[string]int)}
	ts := httptest.NewServer(counter)
	defer ts.Close()
	c, err := New(ts.URL)
	if err != nil {
		t.Fatal(err)
	}

	// MaxDelay is far beyond the test's runtime: only the MaxBatch
	// trigger can flush, so all n calls must share one request.
	f := NewFlusher(c, FlusherConfig{MaxBatch: n, MaxDelay: time.Hour})
	defer f.Close()

	var wg sync.WaitGroup
	var failures atomic.Int32
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			want := float64(i) + 0.5
			resp, err := f.Price(context.Background(), "s", []float64{float64(i), 0.5}, 0, 1e9)
			if err != nil || resp.Price != want || resp.Accepted == nil || !*resp.Accepted {
				t.Errorf("call %d: resp %+v err %v, want price %g", i, resp, err, want)
				failures.Add(1)
			}
		}()
	}
	wg.Wait()
	if failures.Load() > 0 {
		t.FailNow()
	}
	if got := counter.count("/v1/price/batch"); got != 1 {
		t.Fatalf("%d batch requests for %d coalesced calls, want 1", got, n)
	}
}

// TestFlusherTimerFlush: under low concurrency the MaxDelay timer
// flushes a partial batch; nobody hangs waiting for company.
func TestFlusherTimerFlush(t *testing.T) {
	_, c := newBroker(t)
	ctx := context.Background()
	if _, err := c.CreateStream(ctx, api.CreateStreamRequest{ID: "s", Dim: 2}); err != nil {
		t.Fatal(err)
	}
	f := NewFlusher(c, FlusherConfig{MaxBatch: 1024, MaxDelay: 5 * time.Millisecond})
	defer f.Close()
	done := make(chan struct{})
	go func() {
		defer close(done)
		if _, err := f.Price(ctx, "s", []float64{0.3, 0.4}, -100, 1e9); err != nil {
			t.Error(err)
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("single flusher call never flushed")
	}
}

// TestFlusherAgainstBroker prices a real workload through the Flusher
// against brokerd and checks every round landed: the stream's counters
// account for all calls.
func TestFlusherAgainstBroker(t *testing.T) {
	const calls = 96
	_, c := newBroker(t)
	ctx := context.Background()
	if _, err := c.CreateStream(ctx, api.CreateStreamRequest{ID: "s", Dim: 2, Horizon: calls}); err != nil {
		t.Fatal(err)
	}
	f := NewFlusher(c, FlusherConfig{MaxBatch: 16, MaxDelay: time.Millisecond})
	var wg sync.WaitGroup
	for i := 0; i < calls; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			x := []float64{0.1 + float64(i%7)/10, 0.2 + float64(i%5)/10}
			if _, err := f.Price(ctx, "s", x, -100, 1e9); err != nil {
				t.Errorf("call %d: %v", i, err)
			}
		}()
	}
	wg.Wait()
	f.Close()
	stats, err := c.Stats(ctx, "s")
	if err != nil {
		t.Fatal(err)
	}
	if stats.Counters.Rounds != calls {
		t.Fatalf("mechanism saw %d rounds, want %d", stats.Counters.Rounds, calls)
	}
	if stats.Regret.Rounds != calls {
		t.Fatalf("tracker saw %d rounds, want %d", stats.Regret.Rounds, calls)
	}
}

// TestQuoteTransportRecovery: when the quote response is lost after the
// server opened the round, the SDK's cleanup observation closes the
// half-open round, so the stream stays usable instead of wedging on 409
// round_pending forever.
func TestQuoteTransportRecovery(t *testing.T) {
	srv := server.NewServer(nil)
	inner := srv.Handler()
	var dropNext atomic.Bool
	proxy := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if dropNext.CompareAndSwap(true, false) {
			// Let the server process the quote, then lose the response.
			rec := httptest.NewRecorder()
			inner.ServeHTTP(rec, r)
			if rec.Code != http.StatusOK {
				t.Errorf("inner quote status %d", rec.Code)
			}
			hj, _ := w.(http.Hijacker)
			conn, _, err := hj.Hijack()
			if err != nil {
				t.Error(err)
				return
			}
			conn.Close()
			return
		}
		inner.ServeHTTP(w, r)
	})
	ts := httptest.NewServer(proxy)
	defer ts.Close()
	c, err := New(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := c.CreateStream(ctx, api.CreateStreamRequest{ID: "s", Dim: 2}); err != nil {
		t.Fatal(err)
	}

	dropNext.Store(true)
	s, err := c.Quote(ctx, "s", []float64{0.3, 0.4}, -100)
	if err == nil {
		t.Fatal("quote with dropped response reported success")
	}
	if s != nil {
		t.Fatalf("cleanup reached the server, session should be nil (err %v)", err)
	}
	// The round the server opened was closed by the cleanup observation;
	// the stream accepts a fresh quote from this client.
	s2, err := c.Quote(ctx, "s", []float64{0.5, 0.1}, -100)
	if err != nil {
		t.Fatalf("stream wedged after transport failure: %v", err)
	}
	if err := s2.Observe(ctx, true); err != nil {
		t.Fatal(err)
	}
}

// TestFlusherClampsMaxBatch: a MaxBatch beyond the server's wire limit
// is clamped instead of dooming every coalesced caller to a 400.
func TestFlusherClampsMaxBatch(t *testing.T) {
	_, c := newBroker(t)
	f := NewFlusher(c, FlusherConfig{MaxBatch: api.MaxBatchRounds * 2})
	defer f.Close()
	if f.cfg.MaxBatch != api.MaxBatchRounds {
		t.Fatalf("MaxBatch %d, want clamped to %d", f.cfg.MaxBatch, api.MaxBatchRounds)
	}
}

// TestFlusherClosed: Price after Close fails fast.
func TestFlusherClosed(t *testing.T) {
	_, c := newBroker(t)
	f := NewFlusher(c, FlusherConfig{})
	f.Close()
	if _, err := f.Price(context.Background(), "s", []float64{1}, 0, 1); !errors.Is(err, ErrFlusherClosed) {
		t.Fatalf("err = %v, want ErrFlusherClosed", err)
	}
}
