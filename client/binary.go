package client

import (
	"context"
	"sync"

	"datamarket/api/binary"
)

// WithBinary switches the hot pricing calls — Price, PriceBatch,
// PriceMulti (and therefore the Flusher), and TradeBatch — to the
// compact binary wire codec (api/binary) once the server has advertised
// support via the X-Binary-Protocol response header. Until that header
// has been seen (the version probe's response carries it), and against
// servers that predate the codec entirely, the calls keep speaking JSON;
// enabling the option is always safe. Error responses stay the JSON
// envelope either way, so error handling is unaffected.
func WithBinary() Option { return func(c *Client) { c.useBinary = true } }

// binaryActive reports whether hot calls should encode with the binary
// codec: the option is on and the server has advertised support.
func (c *Client) binaryActive() bool {
	return c.useBinary && c.binarySeen.Load()
}

// framePool holds encode scratch for outgoing binary frames, so a
// steady stream of hot calls reuses one grown buffer per goroutine
// instead of allocating a frame per request.
var framePool = sync.Pool{New: func() any {
	b := make([]byte, 0, 4096)
	return &b
}}

// doHot is do for the hot pricing endpoints: when the binary codec is
// active it frames the request with api/binary and asks for a binary
// response, falling back to JSON for the rare message the codec cannot
// carry (ragged batches, oversized stream IDs — the server then applies
// its per-round validation). in must be a pointer to a codec wire type.
func (c *Client) doHot(ctx context.Context, method, path string, in, out any, idempotent bool) error {
	if err := c.ensureCompatible(ctx); err != nil {
		return err
	}
	if !c.binaryActive() {
		return c.roundTrip(ctx, method, path, in, out, idempotent)
	}
	scratch := framePool.Get().(*[]byte)
	frame, err := binary.Append((*scratch)[:0], in)
	if err != nil {
		framePool.Put(scratch)
		return c.roundTrip(ctx, method, path, in, out, idempotent)
	}
	*scratch = frame
	err = c.roundTripBytes(ctx, method, path, frame, binary.ContentType, out, idempotent)
	framePool.Put(scratch)
	return err
}
