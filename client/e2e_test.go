package client

import (
	"context"
	"math"
	"sync"
	"testing"

	"datamarket/api"
	"datamarket/internal/randx"
)

// TestHostedMarketEndToEnd drives the paper's full market scenario over
// HTTP through the SDK alone: create a market of data owners with tanh
// compensation contracts, settle batches of noisy linear queries from
// concurrent consumers, then audit the ledger, the per-owner payouts,
// and the market stats against each other. Run under -race in CI.
func TestHostedMarketEndToEnd(t *testing.T) {
	const (
		owners    = 60
		consumers = 4
		batches   = 3
		batchSize = 32
	)
	_, c := newBroker(t)
	ctx := context.Background()

	ownerSpecs := make([]api.OwnerSpec, owners)
	vals := randx.New(21).UniformVector(owners, 1, 5)
	for i := range ownerSpecs {
		ownerSpecs[i] = api.OwnerSpec{
			Value: vals[i], Range: 4,
			Contract: api.ContractSpec{Type: "tanh", Rho: 1, Eta: 10},
		}
	}
	info, err := c.CreateMarket(ctx, api.CreateMarketRequest{
		ID: "movielens", Owners: ownerSpecs, Seed: 1,
		Horizon: consumers * batches * batchSize,
	})
	if err != nil {
		t.Fatal(err)
	}
	if info.Owners != owners || info.FeatureDim != 10 {
		t.Fatalf("market info %+v", info)
	}

	// Concurrent consumers, each settling batches of random queries.
	var wg sync.WaitGroup
	for w := 0; w < consumers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			r := randx.NewStream(33, uint64(w))
			for b := 0; b < batches; b++ {
				trades := make([]api.TradeRequest, batchSize)
				for i := range trades {
					weights := make([]float64, owners)
					for j := range weights {
						if r.Float64() < 0.3 {
							weights[j] = r.Float64()
						}
					}
					weights[w] = 0.5 // never the all-zero query
					trades[i] = api.TradeRequest{
						Weights:       weights,
						NoiseVariance: 1 + r.Float64(),
						Valuation:     3 + 2*r.Float64(),
					}
				}
				results, err := c.TradeBatch(ctx, "movielens", trades)
				if err != nil {
					t.Errorf("consumer %d batch %d: %v", w, b, err)
					return
				}
				if len(results) != batchSize {
					t.Errorf("consumer %d: %d results", w, len(results))
					return
				}
				for i, res := range results {
					if res.Error != "" {
						t.Errorf("consumer %d trade %d: %s", w, i, res.Error)
					}
				}
			}
		}()
	}
	wg.Wait()

	// Audit: page the whole ledger through the SDK.
	total := consumers * batches * batchSize
	var entries []api.TradeResult
	for offset := 0; ; {
		page, err := c.Ledger(ctx, "movielens", offset, 50)
		if err != nil {
			t.Fatal(err)
		}
		if page.Total != total {
			t.Fatalf("ledger total %d, want %d", page.Total, total)
		}
		entries = append(entries, page.Entries...)
		offset += len(page.Entries)
		if offset >= page.Total {
			break
		}
	}
	if len(entries) != total {
		t.Fatalf("paged %d entries, want %d", len(entries), total)
	}

	var sold int
	var revenue, comp float64
	seen := make(map[int]bool, total)
	for _, tx := range entries {
		if seen[tx.Round] {
			t.Fatalf("round %d appears twice in the ledger", tx.Round)
		}
		seen[tx.Round] = true
		if tx.Sold {
			sold++
			revenue += tx.Revenue
			comp += tx.Compensation
			if tx.Profit < -1e-12 {
				t.Fatalf("round %d sold at a loss: %+v", tx.Round, tx)
			}
		}
	}
	if sold == 0 {
		t.Fatal("no trade settled")
	}

	stats, err := c.MarketStats(ctx, "movielens")
	if err != nil {
		t.Fatal(err)
	}
	if stats.Rounds != total || stats.Sold != sold {
		t.Fatalf("stats %d/%d, ledger %d/%d", stats.Rounds, stats.Sold, total, sold)
	}
	if math.Abs(stats.Revenue-revenue) > 1e-6 || math.Abs(stats.Compensation-comp) > 1e-6 {
		t.Fatalf("stats revenue/comp %g/%g, ledger %g/%g", stats.Revenue, stats.Compensation, revenue, comp)
	}
	if stats.Profit < -1e-9 {
		t.Fatalf("market profit %g < 0 despite reserve constraint", stats.Profit)
	}

	payouts, err := c.Payouts(ctx, "movielens")
	if err != nil {
		t.Fatal(err)
	}
	if len(payouts.Payouts) != owners {
		t.Fatalf("%d payout rows, want %d", len(payouts.Payouts), owners)
	}
	if math.Abs(payouts.Total-comp) > 1e-6 {
		t.Fatalf("owners received %g, broker collected compensation %g", payouts.Total, comp)
	}
	for i, p := range payouts.Payouts {
		if p < 0 {
			t.Fatalf("owner %d has negative payout %g", i, p)
		}
	}

	// Streams and markets coexist behind one health surface.
	if _, err := c.CreateStream(ctx, api.CreateStreamRequest{ID: "side", Dim: 3}); err != nil {
		t.Fatal(err)
	}
	health, err := c.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if health.Streams != 1 || health.Markets != 1 {
		t.Fatalf("health %+v, want 1 stream / 1 market", health)
	}
	if err := c.DeleteMarket(ctx, "movielens"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Market(ctx, "movielens"); !IsNotFound(err) {
		t.Fatalf("deleted market still resolves: %v", err)
	}
}

// TestStreamLifecycleViaSDK exercises the stream surface end to end
// through the SDK: create, batch price, snapshot, restore under a new
// ID, and agreement of the two streams on the next quote.
func TestStreamLifecycleViaSDK(t *testing.T) {
	_, c := newBroker(t)
	ctx := context.Background()
	r := randx.New(4)

	if _, err := c.CreateStream(ctx, api.CreateStreamRequest{
		ID: "seg", Dim: 3, Reserve: true, Horizon: 512,
	}); err != nil {
		t.Fatal(err)
	}
	theta := r.OnSphere(3)
	rounds := make([]api.BatchPriceRound, 256)
	for i := range rounds {
		x := r.OnSphere(3)
		v := math.Abs(x.Dot(theta))
		rounds[i] = api.BatchPriceRound{Features: x, Reserve: 0.25 * v, Valuation: &v}
	}
	results, err := c.PriceBatch(ctx, "seg", rounds)
	if err != nil {
		t.Fatal(err)
	}
	for i, res := range results {
		if res.Error != "" {
			t.Fatalf("round %d: %s", i, res.Error)
		}
	}

	env, err := c.Snapshot(ctx, "seg")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Restore(ctx, "seg2", env); err != nil {
		t.Fatal(err)
	}
	probe := r.OnSphere(3)
	v := math.Abs(probe.Dot(theta))
	qa, err := c.Price(ctx, "seg", probe, 0.25*v, v)
	if err != nil {
		t.Fatal(err)
	}
	qb, err := c.Price(ctx, "seg2", probe, 0.25*v, v)
	if err != nil {
		t.Fatal(err)
	}
	if qa.Price != qb.Price || qa.Decision != qb.Decision {
		t.Fatalf("restored stream disagrees: %+v vs %+v", qa, qb)
	}
	// The restored stream carried the regret aggregates too.
	sa, err := c.Stats(ctx, "seg")
	if err != nil {
		t.Fatal(err)
	}
	sb, err := c.Stats(ctx, "seg2")
	if err != nil {
		t.Fatal(err)
	}
	if sa.Regret != sb.Regret {
		t.Fatalf("regret stats diverge: %+v vs %+v", sa.Regret, sb.Regret)
	}
}
