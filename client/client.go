// Package client is the official Go SDK for brokerd, the posted-price
// data-market broker. It speaks the public wire contract of package
// datamarket/api over HTTP with a pooled transport, verifies API
// compatibility against the server on first use, retries idempotent
// calls with exponential backoff, and layers two protocol helpers on
// top of the raw endpoints:
//
//   - Flusher coalesces concurrent Price calls into multi-stream batch
//     requests (/v1/price/batch), turning per-round HTTP overhead into
//     per-batch overhead transparently;
//   - QuoteSession drives the two-phase quote → observe protocol and
//     enforces its one-pending-round-per-stream rule client-side, so a
//     protocol violation fails fast in the caller instead of as a 409
//     on the wire.
//
// A minimal pricing loop:
//
//	c, _ := client.New("http://localhost:8080")
//	c.CreateStream(ctx, api.CreateStreamRequest{ID: "segment-a", Dim: 5, Reserve: true})
//	resp, _ := c.Price(ctx, "segment-a", features, reserve, valuation)
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"datamarket/api"
	"datamarket/api/binary"
)

// Default retry/backoff configuration.
const (
	DefaultRetries     = 2
	DefaultBackoffBase = 50 * time.Millisecond
	DefaultBackoffMax  = 2 * time.Second
)

// ErrIncompatibleAPI reports that the server speaks a different wire
// contract version than this SDK. Every call fails with it until the
// server (or the SDK) is upgraded.
var ErrIncompatibleAPI = errors.New("client: server API version is incompatible")

// APIError is a non-2xx server response: the HTTP status plus the
// machine-readable code and message from the error envelope. Branch on
// Code (stable), not Message (informational).
type APIError struct {
	Status  int
	Code    api.ErrorCode
	Message string
}

// Error renders the status, code, and message.
func (e *APIError) Error() string {
	return fmt.Sprintf("client: server returned %d (%s): %s", e.Status, e.Code, e.Message)
}

// ErrorCode extracts the stable wire code from an error returned by this
// package ("" when err is not an APIError).
func ErrorCode(err error) api.ErrorCode {
	var ae *APIError
	if errors.As(err, &ae) {
		return ae.Code
	}
	return ""
}

// IsNotFound reports whether err is a 404 from the server (stream or
// market not found).
func IsNotFound(err error) bool {
	var ae *APIError
	return errors.As(err, &ae) && ae.Status == http.StatusNotFound
}

// Client is a brokerd API client. It is safe for concurrent use; one
// Client per server is the intended shape (it owns the connection pool
// and the client-side two-phase round bookkeeping).
type Client struct {
	base      string
	http      *http.Client
	retries   int
	backoff   time.Duration
	backoffUp time.Duration
	userAgent string
	skipCheck bool

	// useBinary is set by WithBinary; binarySeen latches once any
	// response carried the X-Binary-Protocol capability header. Both
	// must hold before a hot call switches off JSON, which is what makes
	// the codec safe against servers that predate it.
	useBinary  bool
	binarySeen atomic.Bool

	// verMu guards the one-time compatibility probe. A transient probe
	// failure is not latched — the next call retries it; success and a
	// definitive version mismatch are.
	verMu      sync.Mutex
	verDone    bool
	verErr     error
	serverInfo api.VersionResponse

	// pendingMu guards the per-stream open QuoteSession table.
	pendingMu sync.Mutex
	pending   map[string]*QuoteSession
}

// Option configures a Client.
type Option func(*Client)

// WithHTTPClient replaces the default pooled HTTP client (e.g. to set a
// global timeout or a custom transport).
func WithHTTPClient(h *http.Client) Option { return func(c *Client) { c.http = h } }

// WithRetries sets how many times an idempotent call is retried after a
// transport error or a 5xx (0 disables retries).
func WithRetries(n int) Option { return func(c *Client) { c.retries = n } }

// WithBackoff sets the exponential backoff schedule between retries:
// the first retry waits base, each further retry doubles it, capped at
// max.
func WithBackoff(base, max time.Duration) Option {
	return func(c *Client) { c.backoff, c.backoffUp = base, max }
}

// WithUserAgent overrides the User-Agent header.
func WithUserAgent(ua string) Option { return func(c *Client) { c.userAgent = ua } }

// WithoutVersionCheck disables the automatic compatibility probe before
// the first request (useful against servers that predate /v1/version).
func WithoutVersionCheck() Option { return func(c *Client) { c.skipCheck = true } }

// New builds a client for the server at baseURL (scheme + host, e.g.
// "http://localhost:8080").
func New(baseURL string, opts ...Option) (*Client, error) {
	u, err := url.Parse(baseURL)
	if err != nil {
		return nil, fmt.Errorf("client: parsing base URL: %w", err)
	}
	if u.Scheme == "" || u.Host == "" {
		return nil, fmt.Errorf("client: base URL %q needs a scheme and host", baseURL)
	}
	c := &Client{
		base:      strings.TrimRight(baseURL, "/"),
		retries:   DefaultRetries,
		backoff:   DefaultBackoffBase,
		backoffUp: DefaultBackoffMax,
		userAgent: "datamarket-client/" + api.APIVersion,
		pending:   make(map[string]*QuoteSession),
	}
	for _, opt := range opts {
		opt(c)
	}
	if c.http == nil {
		// A dedicated pooled transport: brokerd clients are typically
		// high-request-rate against one host, so allow a deep idle pool
		// to that host instead of net/http's default of 2.
		c.http = &http.Client{
			Transport: &http.Transport{
				MaxIdleConns:        64,
				MaxIdleConnsPerHost: 64,
				IdleConnTimeout:     90 * time.Second,
			},
		}
	}
	return c, nil
}

// ServerVersion returns the server build reported by the compatibility
// probe, running the probe now if it has not happened yet.
func (c *Client) ServerVersion(ctx context.Context) (api.VersionResponse, error) {
	if err := c.ensureCompatible(ctx); err != nil && !c.skipCheck {
		return api.VersionResponse{}, err
	}
	if c.skipCheck {
		var resp api.VersionResponse
		err := c.roundTrip(ctx, http.MethodGet, "/v1/version", nil, &resp, true)
		return resp, err
	}
	c.verMu.Lock()
	defer c.verMu.Unlock()
	return c.serverInfo, nil
}

// Health probes liveness. (GET /healthz)
func (c *Client) Health(ctx context.Context) (api.HealthResponse, error) {
	var resp api.HealthResponse
	err := c.do(ctx, http.MethodGet, "/healthz", nil, &resp, true)
	return resp, err
}

// ensureCompatible runs the one-time version probe: the first call on
// this client fetches /v1/version and verifies the server speaks this
// SDK's api.APIVersion. A mismatch is latched — every subsequent call
// fails fast with ErrIncompatibleAPI; transient probe failures are not.
func (c *Client) ensureCompatible(ctx context.Context) error {
	if c.skipCheck {
		return nil
	}
	c.verMu.Lock()
	defer c.verMu.Unlock()
	if c.verDone {
		return c.verErr
	}
	var resp api.VersionResponse
	if err := c.roundTrip(ctx, http.MethodGet, "/v1/version", nil, &resp, true); err != nil {
		return fmt.Errorf("client: probing server version: %w", err)
	}
	c.verDone = true
	if resp.API != api.APIVersion {
		c.verErr = fmt.Errorf("%w: server speaks %q, this SDK speaks %q",
			ErrIncompatibleAPI, resp.API, api.APIVersion)
	}
	c.serverInfo = resp
	return c.verErr
}

// do is the entry point for every endpoint call: compatibility check,
// then the retrying round trip.
func (c *Client) do(ctx context.Context, method, path string, in, out any, idempotent bool) error {
	if err := c.ensureCompatible(ctx); err != nil {
		return err
	}
	return c.roundTrip(ctx, method, path, in, out, idempotent)
}

// roundTrip marshals in as JSON and sends it via roundTripBytes.
func (c *Client) roundTrip(ctx context.Context, method, path string, in, out any, idempotent bool) error {
	var body []byte
	if in != nil {
		var err error
		if body, err = json.Marshal(in); err != nil {
			return fmt.Errorf("client: encoding request: %w", err)
		}
	}
	return c.roundTripBytes(ctx, method, path, body, contentTypeJSON, out, idempotent)
}

// roundTripBytes sends one pre-encoded API request, retrying idempotent
// calls on transport errors and 5xx responses with exponential backoff.
// The body is replayed from memory on each attempt.
func (c *Client) roundTripBytes(ctx context.Context, method, path string, body []byte, contentType string, out any, idempotent bool) error {
	var lastErr error
	for attempt := 0; ; attempt++ {
		err := c.send(ctx, method, path, body, contentType, out)
		if err == nil {
			return nil
		}
		lastErr = err
		if !idempotent || attempt >= c.retries || !retryable(err) {
			return lastErr
		}
		if err := c.sleep(ctx, attempt); err != nil {
			return errors.Join(lastErr, err)
		}
	}
}

// retryable reports whether an attempt's failure may be transient: any
// transport error, or a 5xx from the server. 4xx responses are
// definitive and never retried.
func retryable(err error) bool {
	var ae *APIError
	if errors.As(err, &ae) {
		return ae.Status >= 500
	}
	// Not an API response at all — connection refused, reset, EOF…
	return !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded)
}

// sleep waits out the backoff for the given attempt (base·2^attempt,
// capped), honoring ctx cancellation.
func (c *Client) sleep(ctx context.Context, attempt int) error {
	d := c.backoff << attempt
	if d > c.backoffUp || d <= 0 {
		d = c.backoffUp
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

const contentTypeJSON = "application/json"

// bufPool holds the response-read buffers shared by the success path,
// the error path, and the version probe, so steady-state calls stop
// paying an io.ReadAll allocation per exchange. Buffers that ballooned
// (snapshot bodies) are dropped rather than pooled.
var bufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

const bufPoolMax = 1 << 20

func getBuf() *bytes.Buffer { return bufPool.Get().(*bytes.Buffer) }

func putBuf(b *bytes.Buffer) {
	if b.Cap() <= bufPoolMax {
		b.Reset()
		bufPool.Put(b)
	}
}

// isBinaryBody reports whether a response's Content-Type names the
// binary codec.
func isBinaryBody(resp *http.Response) bool {
	ct, _, _ := strings.Cut(resp.Header.Get("Content-Type"), ";")
	return strings.TrimSpace(ct) == binary.ContentType
}

// send performs exactly one HTTP exchange. A binary content type also
// asks for a binary response via Accept; the response body is decoded by
// its own Content-Type, so a JSON answer from a server that ignores
// Accept still decodes fine.
func (c *Client) send(ctx context.Context, method, path string, body []byte, contentType string, out any) error {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
	if err != nil {
		return fmt.Errorf("client: building request: %w", err)
	}
	if body != nil {
		req.Header.Set("Content-Type", contentType)
	}
	if contentType == binary.ContentType {
		req.Header.Set("Accept", binary.ContentType)
	}
	req.Header.Set("User-Agent", c.userAgent)
	resp, err := c.http.Do(req)
	if err != nil {
		return fmt.Errorf("client: %s %s: %w", method, path, err)
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	if resp.Header.Get(binary.ProtoHeader) != "" {
		c.binarySeen.Store(true)
	}
	if resp.StatusCode/100 != 2 {
		return decodeError(resp)
	}
	if out == nil || resp.StatusCode == http.StatusNoContent {
		return nil
	}
	buf := getBuf()
	defer putBuf(buf)
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		return fmt.Errorf("client: reading %s %s response: %w", method, path, err)
	}
	if isBinaryBody(resp) {
		err = binary.Decode(buf.Bytes(), out)
	} else {
		err = json.Unmarshal(buf.Bytes(), out)
	}
	if err != nil {
		return fmt.Errorf("client: decoding %s %s response: %w", method, path, err)
	}
	return nil
}

// decodeError turns a non-2xx response into an *APIError, surviving
// bodies that are not the standard envelope. Error bodies are always the
// JSON envelope regardless of codec negotiation, and are read through
// the shared buffer pool rather than a per-call io.ReadAll.
func decodeError(resp *http.Response) error {
	ae := &APIError{Status: resp.StatusCode, Code: api.CodeInternal}
	buf := getBuf()
	defer putBuf(buf)
	if _, err := buf.ReadFrom(io.LimitReader(resp.Body, 1<<20)); err != nil {
		ae.Message = "unreadable error body: " + err.Error()
		return ae
	}
	raw := buf.Bytes()
	var envelope api.ErrorResponse
	if err := json.Unmarshal(raw, &envelope); err == nil && envelope.Error.Code != "" {
		ae.Code = envelope.Error.Code
		ae.Message = envelope.Error.Message
		return ae
	}
	ae.Message = strings.TrimSpace(string(raw))
	return ae
}

// escape path-escapes one identifier for use in a route.
func escape(id string) string { return url.PathEscape(id) }
