// Hosted market: the paper's full scenario — data owners, differential
// privacy compensation, reserve prices, settlement, ledger — operated
// entirely over HTTP through the client SDK.
//
// The broker hosts a population of data owners under tanh compensation
// contracts (§V-A). Consumers submit noisy linear queries; for each one
// the server quantifies per-owner privacy leakage, derives the reserve
// price (the total compensation owed if the answer sells), posts a
// price with the ellipsoid mechanism, settles iff the consumer's
// valuation covers it, pays the owners, and records the transaction.
// This program creates such a market, settles a few thousand trades in
// batches, and then audits the books: ledger vs stats vs payouts.
package main

import (
	"context"
	"fmt"
	"net"
	"net/http"

	"datamarket/api"
	"datamarket/client"
	"datamarket/internal/randx"
	"datamarket/internal/server"
)

const (
	owners    = 100
	batchSize = 128
	batches   = 16
)

func main() {
	ctx := context.Background()

	// brokerd in-process; over the network the only change is the URL.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	check(err)
	go http.Serve(ln, server.NewServer(nil).Handler())
	c, err := client.New("http://" + ln.Addr().String())
	check(err)

	// A population of data owners: private values (think per-user rating
	// aggregates), a sensitivity range, and a bounded tanh contract that
	// caps each owner's exposure no matter how invasive the query.
	rng := randx.New(42)
	specs := make([]api.OwnerSpec, owners)
	vals := rng.UniformVector(owners, 1, 5)
	for i := range specs {
		specs[i] = api.OwnerSpec{
			Value: vals[i], Range: 4,
			Contract: api.ContractSpec{Type: "tanh", Rho: 1, Eta: 10},
		}
	}
	info, err := c.CreateMarket(ctx, api.CreateMarketRequest{
		ID: "movielens", Owners: specs, Seed: 1, Horizon: batches * batchSize,
	})
	check(err)
	fmt.Printf("market %q: %d owners, %d compensation features, family %s\n",
		info.ID, info.Owners, info.FeatureDim, info.Family)

	// Consumers: batches of noisy linear queries. Each query picks a
	// random subset of owners, a noise variance (more noise = cheaper,
	// more private), and a private valuation the server only ever sees
	// through accept/reject.
	for b := 0; b < batches; b++ {
		trades := make([]api.TradeRequest, batchSize)
		for i := range trades {
			weights := make([]float64, owners)
			for j := range weights {
				if rng.Float64() < 0.3 {
					weights[j] = rng.Float64()
				}
			}
			weights[rng.Intn(owners)] = 0.5
			trades[i] = api.TradeRequest{
				Weights:       weights,
				NoiseVariance: 1 + 2*rng.Float64(),
				Valuation:     3 + 2*rng.Float64(),
			}
		}
		results, err := c.TradeBatch(ctx, "movielens", trades)
		check(err)
		for _, res := range results {
			if res.Error != "" {
				panic(res.Error)
			}
		}
	}

	// Audit the books over the API.
	stats, err := c.MarketStats(ctx, "movielens")
	check(err)
	fmt.Printf("\n%d trades, %d sold\n", stats.Rounds, stats.Sold)
	fmt.Printf("revenue %9.2f\ncompensation %4.2f\nprofit %10.2f  (≥ 0 by the reserve constraint)\n",
		stats.Revenue, stats.Compensation, stats.Profit)
	fmt.Printf("regret ratio %.2f%% over %d priced rounds\n",
		100*stats.Regret.RegretRatio, stats.Regret.Rounds)

	payouts, err := c.Payouts(ctx, "movielens")
	check(err)
	var maxOwner int
	for i := range payouts.Payouts {
		if payouts.Payouts[i] > payouts.Payouts[maxOwner] {
			maxOwner = i
		}
	}
	fmt.Printf("owners were paid %.2f total; owner %d earned the most (%.2f)\n",
		payouts.Total, maxOwner, payouts.Payouts[maxOwner])

	// The ledger pages like any API resource; print the last trades.
	page, err := c.Ledger(ctx, "movielens", stats.Rounds-3, 3)
	check(err)
	fmt.Printf("\nlast %d of %d ledger entries:\n", len(page.Entries), page.Total)
	for _, tx := range page.Entries {
		fmt.Printf("  round %4d: reserve %.3f, posted %.3f (%s), sold=%v, profit %.3f\n",
			tx.Round, tx.Reserve, tx.Posted, tx.Decision, tx.Sold, tx.Profit)
	}
}

func check(err error) {
	if err != nil {
		panic(err)
	}
}
