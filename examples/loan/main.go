// Loan application pricing (§IV-B): a financial institution quotes
// interest rates for loan applications. The borrower's acceptable rate is
// a hidden log-log function of her credit features; funding costs impose
// a floor (reserve) on the quoted rate. The institution learns the
// market's rate curve online with the reserve-constrained mechanism.
package main

import (
	"fmt"
	"math"

	"datamarket"
	"datamarket/internal/randx"
)

func main() {
	const (
		n    = 6 // credit features: score, income, debt ratio, history, ...
		T    = 15000
		seed = 19
	)

	// Hidden elasticity vector of the log-log rate model:
	// log(rate) = Σ log(xᵢ)·θᵢ*. Negative weights mean better credit
	// commands lower acceptable rates.
	rng := randx.New(seed)
	theta := datamarket.Vector{-0.45, -0.3, 0.4, -0.2, 0.15, 0.1}

	mech, err := datamarket.NewNonlinearMechanism(datamarket.LogLogModel(), n,
		theta.Norm2()*2,
		datamarket.WithReserve(),
		datamarket.WithThreshold(0.01))
	if err != nil {
		panic(err)
	}
	model := datamarket.LogLogModel()

	tracker := datamarket.NewTracker(false)
	var funded, declinedByBank int
	for t := 1; t <= T; t++ {
		// Application features, all positive (required by the log map):
		// normalized credit score, income, debt ratio, history length,
		// loan size, term.
		x := datamarket.Vector{
			rng.Uniform(0.4, 1.0), // credit score
			rng.Uniform(0.3, 2.0), // income multiple
			rng.Uniform(0.1, 0.9), // debt-to-income
			rng.Uniform(0.2, 1.5), // credit history years (scaled)
			rng.Uniform(0.5, 2.0), // loan size multiple
			rng.Uniform(0.5, 1.5), // term multiple
		}
		// The borrower's maximum acceptable rate (the "market value" of
		// the loan to the institution).
		maxRate := model.Value(x, theta)
		// The institution's funding-cost floor: a fraction of that rate,
		// unknown to be below or above it in any given application.
		floor := 0.6 * maxRate * rng.Uniform(0.8, 1.4)

		q, err := mech.PostPrice(x, floor)
		if err != nil {
			panic(err)
		}
		switch {
		case q.Decision == datamarket.DecisionSkip:
			// Funding cost exceeds any acceptable rate: decline upfront.
			declinedByBank++
		default:
			accepted := datamarket.Sold(q.Price, maxRate)
			if accepted {
				funded++
			}
			mech.Observe(accepted)
		}
		tracker.Record(maxRate, floor, q)

		if t == 100 || t == 1000 || t == T {
			fmt.Printf("after %6d applications: regret ratio %6.2f%%\n",
				t, 100*tracker.RegretRatio())
		}
	}

	fmt.Printf("\nfunded %d loans, declined %d at the funding-cost floor (of %d)\n",
		funded, declinedByBank, T)
	fmt.Printf("interest income (rate-units): %.1f\n", tracker.CumulativeRevenue())
	fmt.Printf("regret vs a clairvoyant rate desk: %.1f (%.2f%%)\n",
		tracker.CumulativeRegret(), 100*tracker.RegretRatio())
	// The learned elasticities can be read back from the knowledge set.
	phi, err := model.Map.Map(datamarket.Vector{0.7, 1, 0.4, 0.8, 1, 1})
	if err != nil {
		panic(err)
	}
	lo, hi := mech.Inner().ValueBounds(phi)
	fmt.Printf("typical application's log-rate bracket: [%.3f, %.3f] (truth %.3f)\n",
		lo, hi, math.Log(model.Value(datamarket.Vector{0.7, 1, 0.4, 0.8, 1, 1}, theta)))
}
