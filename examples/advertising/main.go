// Impression pricing (Application 3, §V-C): a web publisher sells ad
// impressions at posted prices instead of auctions. CTR is learned with
// FTRL-Proximal over hashed one-hot features; the pure ellipsoid
// mechanism then prices impressions under the logistic market value
// model, in the "dense" representation (only coordinates with nonzero
// learned weight), which is the configuration that converges fastest in
// the paper's Fig. 5(c).
package main

import (
	"fmt"

	"datamarket"
	"datamarket/internal/dataset"
	"datamarket/internal/feature"
	"datamarket/internal/linalg"
)

func main() {
	const (
		hashDim   = 128
		fitRounds = 40000
		T         = 20000
		seed      = 17
	)

	// 1. Click log and the offline CTR fit.
	stream, err := dataset.NewAvazuStream(dataset.AvazuConfig{
		HashDim: hashDim, ActiveWeights: 21, Seed: seed,
	})
	if err != nil {
		panic(err)
	}
	weights, loss, err := dataset.FitFTRLOnStream(stream, fitRounds, 0.1, 90)
	if err != nil {
		panic(err)
	}
	nz := feature.NonzeroIndices(weights, 0)
	fmt.Printf("FTRL-Proximal fit: logistic loss %.3f, %d/%d nonzero weights (paper: 0.420, ~21)\n",
		loss, len(nz), hashDim)

	// 2. Dense representation: price only the informative coordinates.
	theta, err := feature.Project(weights, nz)
	if err != nil {
		panic(err)
	}
	mech, err := datamarket.NewNonlinearMechanism(datamarket.LogisticModel(), len(nz),
		theta.Norm2()*1.5+1,
		datamarket.WithThreshold(0.05))
	if err != nil {
		panic(err)
	}
	logistic := datamarket.LogisticModel()

	tracker := datamarket.NewTracker(false)
	var sold int
	for t := 1; t <= T; t++ {
		_, xFull := stream.Next()
		x, err := feature.Project(xFull, nz)
		if err != nil {
			panic(err)
		}
		ctr := logistic.Value(linalg.Vector(x), theta) // the impression's market value
		q, err := mech.PostPrice(x, 0)
		if err != nil {
			panic(err)
		}
		if q.Decision != datamarket.DecisionSkip {
			s := datamarket.Sold(q.Price, ctr)
			if s {
				sold++
			}
			mech.Observe(s)
		}
		tracker.Record(ctr, 0, q)
		if t == 1000 || t == 5000 || t == T {
			fmt.Printf("after %6d impressions: regret ratio %6.2f%%\n", t, 100*tracker.RegretRatio())
		}
	}
	fmt.Printf("\nsold %d/%d impressions; revenue %.1f CTR-units; mean CTR %.3f\n",
		sold, T, tracker.CumulativeRevenue(), tracker.CumulativeValue()/float64(T))
}
