// Accommodation rental pricing (Application 2, §V-B): a booking platform
// re-learns a hedonic log-linear price model from historical listings with
// OLS, then prices incoming listings online. Hosts set reserve prices;
// the platform's regret is compared against the risk-averse strategy of
// always posting the host's reserve.
package main

import (
	"fmt"
	"math"

	"datamarket"
	"datamarket/internal/dataset"
	"datamarket/internal/feature"
	"datamarket/internal/learn"
	"datamarket/internal/linalg"
)

func main() {
	const (
		listings = 74111 // the paper's table size
		ratio    = 0.6   // log(reserve)/log(value), as in Fig. 5(b)
		seed     = 13
	)

	// 1. Historical listings and the offline hedonic fit.
	ls, _, _, err := dataset.GenerateListings(dataset.AirbnbConfig{
		Count: listings, Seed: seed, NoiseStd: 0.475,
	})
	if err != nil {
		panic(err)
	}
	raw := make([]linalg.Vector, len(ls))
	y := make(linalg.Vector, len(ls))
	for i := range ls {
		x, err := dataset.FeaturizeListing(&ls[i])
		if err != nil {
			panic(err)
		}
		raw[i] = x
		y[i] = ls[i].LogPrice
	}
	std, err := feature.FitStandardizer(raw)
	if err != nil {
		panic(err)
	}
	dim := dataset.AirbnbFeatureDim + 1
	rows := make([]linalg.Vector, len(raw))
	for i, x := range raw {
		z, err := std.Transform(x)
		if err != nil {
			panic(err)
		}
		row := make(linalg.Vector, dim)
		copy(row, z)
		row[dim-1] = 1
		rows[i] = row
	}
	trainIdx, testIdx, err := learn.TrainTestSplit(len(rows), 5, 0)
	if err != nil {
		panic(err)
	}
	trX, trY := subset(rows, y, trainIdx)
	model, err := learn.FitLinear(trX, trY, learn.FitOptions{Ridge: 1e-8})
	if err != nil {
		panic(err)
	}
	teX, teY := subset(rows, y, testIdx)
	mse, err := model.MSE(teX, teY)
	if err != nil {
		panic(err)
	}
	fmt.Printf("hedonic OLS fit over %d features: test MSE %.3f (paper: 0.226)\n", dim, mse)

	// 2. Online pricing under the log-linear model vs the baseline.
	theta := model.Coef
	mech, err := datamarket.NewNonlinearMechanism(datamarket.LogLinearModel(), dim,
		theta.Norm2()*1.5,
		datamarket.WithReserve(), datamarket.WithThreshold(0.1))
	if err != nil {
		panic(err)
	}
	baseline := datamarket.NewRiskAverse()

	trMech := datamarket.NewTracker(false)
	trBase := datamarket.NewTracker(false)
	for _, x := range rows {
		logV := x.Dot(theta)
		v := math.Exp(logV)
		reserve := math.Exp(ratio * logV)

		q, err := mech.PostPrice(x, reserve)
		if err != nil {
			panic(err)
		}
		if q.Decision != datamarket.DecisionSkip {
			mech.Observe(datamarket.Sold(q.Price, v))
		}
		trMech.Record(v, reserve, q)

		qb, err := baseline.PostPrice(x, reserve)
		if err != nil {
			panic(err)
		}
		baseline.Observe(datamarket.Sold(qb.Price, v))
		trBase.Record(v, reserve, qb)
	}

	fmt.Printf("\nonline pricing of %d rentals (reserve ratio %.1f):\n", listings, ratio)
	fmt.Printf("  ellipsoid mechanism: regret ratio %6.2f%%, revenue %12.0f\n",
		100*trMech.RegretRatio(), trMech.CumulativeRevenue())
	fmt.Printf("  risk-averse host:    regret ratio %6.2f%%, revenue %12.0f\n",
		100*trBase.RegretRatio(), trBase.CumulativeRevenue())
	fmt.Println("\nthe learning platform leaves far less of the market value on the table.")
}

func subset(rows []linalg.Vector, y linalg.Vector, idx []int) ([]linalg.Vector, linalg.Vector) {
	xs := make([]linalg.Vector, len(idx))
	ys := make(linalg.Vector, len(idx))
	for k, i := range idx {
		xs[k] = rows[i]
		ys[k] = y[i]
	}
	return xs, ys
}
