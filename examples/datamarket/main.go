// Personal data market (Application 1, §V-A): a broker holds MovieLens-
// style user data, consumers issue noisy linear queries, privacy leakage
// is quantified with differential privacy, owners are compensated through
// tanh contracts, and the total compensation becomes each query's reserve
// price. The broker prices the stream with the ellipsoid mechanism.
package main

import (
	"fmt"
	"math"

	"datamarket"
	"datamarket/internal/dataset"
	"datamarket/internal/linalg"
	"datamarket/internal/market"
	"datamarket/internal/privacy"
	"datamarket/internal/randx"
)

func main() {
	const (
		ownerCount = 300
		n          = 20 // compensation aggregation dimension
		T          = 8000
		seed       = 11
	)

	// 1. Data owners: synthetic MovieLens users; the owner's value is her
	// mean rating, the sensitivity is the rating scale span.
	ratings, err := dataset.GenerateRatings(dataset.MovieLensConfig{
		Users: ownerCount, Movies: 1000, RatingsPerUser: 25, Seed: seed,
	})
	if err != nil {
		panic(err)
	}
	profiles := dataset.UserProfiles(ratings)
	values, ranges := dataset.OwnerValues(profiles)
	contract, err := privacy.NewTanhContract(1, 1)
	if err != nil {
		panic(err)
	}
	owners := make([]datamarket.Owner, len(profiles))
	for i := range owners {
		owners[i] = datamarket.Owner{
			ID: int(profiles[i].UserID), Value: values[i], Range: ranges[i], Contract: contract,
		}
	}
	fmt.Printf("market with %d data owners (mean rating %.2f)\n", len(owners), linalg.Vector(values).Sum()/float64(len(values)))

	// 2. The broker's pricing mechanism: Algorithm 1 (with reserve).
	mech, err := datamarket.NewMechanism(n, 2*math.Sqrt(float64(n)),
		datamarket.WithReserve(),
		datamarket.WithThreshold(datamarket.DefaultThreshold(n, T, 0)))
	if err != nil {
		panic(err)
	}
	broker, err := datamarket.NewBroker(datamarket.BrokerConfig{
		Owners: owners, Mechanism: mech, FeatureDim: n, Seed: seed,
	})
	if err != nil {
		panic(err)
	}

	// 3. The consumer stream: customized noisy linear queries whose
	// hidden valuations follow the linear market value model.
	setup := randx.NewStream(seed, 5)
	theta := setup.NormalVector(n, 1)
	for i := range theta {
		theta[i] = math.Abs(theta[i])
	}
	theta.Normalize()
	theta.Scale(math.Sqrt(2 * float64(n)))
	consumers, err := market.NewConsumerModel(market.ConsumerConfig{
		Owners: brokerOwners(owners), FeatureDim: n, Theta: theta,
	})
	if err != nil {
		panic(err)
	}

	// 4. Trade.
	rng := randx.NewStream(seed, 6)
	for t := 1; t <= T; t++ {
		q, err := consumers.NextQuery(rng)
		if err != nil {
			panic(err)
		}
		tx, err := broker.Trade(q)
		if err != nil {
			panic(err)
		}
		if t <= 3 {
			fmt.Printf("round %d: posted %.3f against reserve %.3f (%s, sold=%v)\n",
				t, tx.Posted, tx.Reserve, tx.Decision, tx.Sold)
		}
	}

	tr := broker.Tracker()
	fmt.Printf("\nafter %d rounds:\n", T)
	fmt.Printf("  revenue   %10.2f\n", broker.TotalRevenue())
	fmt.Printf("  profit    %10.2f (never negative: the reserve covers compensation)\n", broker.TotalProfit())
	fmt.Printf("  regret    %10.2f (ratio %.2f%%)\n", tr.CumulativeRegret(), 100*tr.RegretRatio())
	payout, err := broker.OwnerPayout(0)
	if err != nil {
		panic(err)
	}
	fmt.Printf("  owner %d has been compensated %.4f in total\n", owners[0].ID, payout)
}

// brokerOwners adapts the facade owner type to the market package type
// (they are aliases; this keeps the example explicit about it).
func brokerOwners(o []datamarket.Owner) []market.Owner { return o }
