// Quickstart: serve a kernelized pricing stream with brokerd.
//
// A stream is a *family* plus a *model config*, not a concrete mechanism:
// this demo stands up the brokerd HTTP server in-process, creates a
// nonlinear stream whose market value model is a landmark RBF kernel
// machine (§IV-A's kernelized model with a fixed landmark budget), prices
// thousands of rounds through the batch endpoint, and finishes with the
// family-tagged snapshot/restore loop a crash recovery would use.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"net"
	"net/http"

	"datamarket"
	"datamarket/internal/kernel"
	"datamarket/internal/randx"
	"datamarket/internal/server"
)

const (
	dim       = 2     // input feature dimension
	batchSize = 256   // rounds per HTTP batch request
	batches   = 16    // 4096 rounds total
	gamma     = 0.8   // RBF kernel width
	threshold = 0.005 // exploration threshold ε
)

func main() {
	// Landmarks on a 3×3 grid over the feature square: the public part of
	// the kernelized model. Only the weights over K(x, lⱼ) are learned.
	var landmarks [][]float64
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			landmarks = append(landmarks, []float64{float64(i) / 2, float64(j) / 2})
		}
	}

	// Hidden ground truth: positive weights over the landmark features.
	rng := randx.New(7)
	theta := rng.NormalVector(len(landmarks), 1)
	for i := range theta {
		theta[i] = math.Abs(theta[i])
	}
	theta.Normalize()
	rbf, err := kernel.NewRBF(gamma)
	check(err)
	value := func(x datamarket.Vector) float64 {
		var v float64
		for j, l := range landmarks {
			v += rbf.Eval(x, datamarket.Vector(l)) * theta[j]
		}
		return v
	}

	// Start brokerd's server on a loopback listener.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	check(err)
	go http.Serve(ln, server.NewServer(nil).Handler())
	base := "http://" + ln.Addr().String()

	// Create the kernelized stream: family "nonlinear", identity link,
	// landmark map over the RBF kernel.
	post(base+"/v1/streams", server.CreateStreamRequest{
		ID: "kernelized", Family: "nonlinear", Dim: dim,
		Reserve: true, Threshold: threshold,
		Model: &datamarket.ModelConfig{
			Map:       "landmark",
			Kernel:    &datamarket.KernelConfig{Type: "rbf", Gamma: gamma},
			Landmarks: landmarks,
		},
	}, nil)

	// Price in batches: each round a query arrives with features in the
	// unit square, a seller-imposed reserve below its market value, and a
	// private valuation the server uses as the accept/reject callback.
	var revenue float64
	var accepts int
	for b := 0; b < batches; b++ {
		req := server.BatchPriceRequest{Rounds: make([]server.BatchPriceRound, batchSize)}
		for i := range req.Rounds {
			x := rng.UniformVector(dim, 0, 1)
			v := value(x)
			req.Rounds[i] = server.BatchPriceRound{
				Features: x, Reserve: 0.75 * v, Valuation: &v,
			}
		}
		var resp server.BatchPriceResponse
		post(base+"/v1/streams/kernelized/price/batch", req, &resp)
		for _, res := range resp.Results {
			if res.Error != "" {
				panic(res.Error)
			}
			if res.Accepted != nil && *res.Accepted {
				revenue += res.Price
				accepts++
			}
		}
		if b == 0 || b == batches-1 {
			fmt.Printf("after %4d rounds: %4d accepted, revenue %7.2f\n",
				(b+1)*batchSize, accepts, revenue)
		}
	}

	var stats server.StatsResponse
	get(base+"/v1/streams/kernelized/stats", &stats)
	fmt.Printf("\nfamily %q: %d exploratory / %d conservative rounds, %d cuts, regret ratio %.2f%%\n",
		stats.Family, stats.Counters.Exploratory, stats.Counters.Conservative,
		stats.Counters.CutsApplied, 100*stats.Regret.RegretRatio)

	// Crash recovery: the snapshot is a family-tagged envelope; restoring
	// it under a fresh ID rebuilds the same kernel machine, and the two
	// streams agree exactly on the next quote.
	var env datamarket.Envelope
	get(base+"/v1/streams/kernelized/snapshot", &env)
	post(base+"/v1/streams/recovered/restore", &env, nil)
	probe := datamarket.Vector{0.4, 0.6}
	v := value(probe)
	var qa, qb server.PriceResponse
	post(base+"/v1/streams/kernelized/price",
		server.PriceRequest{Features: probe, Reserve: 0.75 * v, Valuation: &v}, &qa)
	post(base+"/v1/streams/recovered/price",
		server.PriceRequest{Features: probe, Reserve: 0.75 * v, Valuation: &v}, &qb)
	fmt.Printf("snapshot family %q restored: original posts %.4f, recovered posts %.4f (truth %.4f)\n",
		env.Family, qa.Price, qb.Price, v)
}

// post sends a JSON request and decodes the response into out (when
// non-nil), panicking on any non-2xx status.
func post(url string, body, out any) {
	data, err := json.Marshal(body)
	check(err)
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	check(err)
	decode(resp, out)
}

func get(url string, out any) {
	resp, err := http.Get(url)
	check(err)
	decode(resp, out)
}

func decode(resp *http.Response, out any) {
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		var e server.ErrorResponse
		json.NewDecoder(resp.Body).Decode(&e)
		panic(fmt.Sprintf("status %d: %s", resp.StatusCode, e.Error))
	}
	if out != nil {
		check(json.NewDecoder(resp.Body).Decode(out))
	}
}

func check(err error) {
	if err != nil {
		panic(err)
	}
}
