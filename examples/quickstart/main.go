// Quickstart: price a stream of differentiated products with the
// reserve-constrained ellipsoid mechanism and watch the regret ratio
// fall as the broker learns the hidden market value model.
package main

import (
	"fmt"
	"math"

	"datamarket"
	"datamarket/internal/randx"
)

func main() {
	const (
		n    = 12    // feature dimension
		T    = 20000 // pricing rounds
		seed = 7
	)

	// The broker knows only that ‖θ*‖ ≤ R; everything else is learned
	// from accept/reject feedback.
	R := 2 * math.Sqrt(float64(n))
	mech, err := datamarket.NewMechanism(n, R,
		datamarket.WithReserve(),
		datamarket.WithThreshold(datamarket.DefaultThreshold(n, T, 0)))
	if err != nil {
		panic(err)
	}

	// Hidden ground truth for the demo: a positive weight vector.
	rng := randx.New(seed)
	theta := rng.NormalVector(n, 1)
	for i := range theta {
		theta[i] = math.Abs(theta[i])
	}
	theta.Normalize()
	theta.Scale(math.Sqrt(2 * float64(n)))

	tracker := datamarket.NewTracker(false)
	for t := 1; t <= T; t++ {
		// Each round: a product arrives with positive unit features and a
		// seller-imposed reserve price below its market value.
		x := rng.OnSphere(n)
		for i := range x {
			x[i] = math.Abs(x[i])
		}
		value := x.Dot(theta)
		reserve := 0.75 * value

		quote, err := mech.PostPrice(x, reserve)
		if err != nil {
			panic(err)
		}
		if quote.Decision != datamarket.DecisionSkip {
			// The buyer accepts iff the price is at most her valuation —
			// the only feedback the broker ever sees.
			if err := mech.Observe(datamarket.Sold(quote.Price, value)); err != nil {
				panic(err)
			}
		}
		tracker.Record(value, reserve, quote)

		if t == 10 || t == 100 || t == 1000 || t == T {
			fmt.Printf("after %6d rounds: cumulative regret %8.2f, regret ratio %6.2f%%\n",
				t, tracker.CumulativeRegret(), 100*tracker.RegretRatio())
		}
	}

	c := mech.Counters()
	fmt.Printf("\nexploratory rounds: %d, conservative rounds: %d, ellipsoid cuts: %d\n",
		c.Exploratory, c.Conservative, c.CutsApplied)
	fmt.Printf("total revenue earned: %.2f\n", tracker.CumulativeRevenue())
}
