// Quickstart: drive brokerd through the official Go client SDK.
//
// A stream is a *family* plus a *model config*, not a concrete
// mechanism: this demo stands up the brokerd HTTP server in-process,
// creates a nonlinear stream whose market value model is a landmark RBF
// kernel machine (§IV-A's kernelized model with a fixed landmark
// budget), prices thousands of rounds through the SDK's batch call and
// its auto-batching Flusher, runs one two-phase round through a
// QuoteSession, and finishes with the family-tagged snapshot/restore
// loop a crash recovery would use. Every byte on the wire goes through
// datamarket/client — no hand-rolled HTTP.
package main

import (
	"context"
	"fmt"
	"math"
	"net"
	"net/http"
	"sync"

	"datamarket"
	"datamarket/api"
	"datamarket/client"
	"datamarket/internal/kernel"
	"datamarket/internal/randx"
	"datamarket/internal/server"
)

const (
	dim       = 2     // input feature dimension
	batchSize = 256   // rounds per HTTP batch request
	batches   = 16    // 4096 rounds total
	gamma     = 0.8   // RBF kernel width
	threshold = 0.005 // exploration threshold ε
)

func main() {
	ctx := context.Background()

	// Landmarks on a 3×3 grid over the feature square: the public part of
	// the kernelized model. Only the weights over K(x, lⱼ) are learned.
	var landmarks [][]float64
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			landmarks = append(landmarks, []float64{float64(i) / 2, float64(j) / 2})
		}
	}

	// Hidden ground truth: positive weights over the landmark features.
	rng := randx.New(7)
	theta := rng.NormalVector(len(landmarks), 1)
	for i := range theta {
		theta[i] = math.Abs(theta[i])
	}
	theta.Normalize()
	rbf, err := kernel.NewRBF(gamma)
	check(err)
	value := func(x datamarket.Vector) float64 {
		var v float64
		for j, l := range landmarks {
			v += rbf.Eval(x, datamarket.Vector(l)) * theta[j]
		}
		return v
	}

	// Start brokerd's server on a loopback listener and connect the SDK.
	// The client verifies API compatibility (GET /v1/version) on first
	// use, pools connections, and retries idempotent calls with backoff.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	check(err)
	go http.Serve(ln, server.NewServer(nil).Handler())
	c, err := client.New("http://" + ln.Addr().String())
	check(err)
	v, err := c.ServerVersion(ctx)
	check(err)
	fmt.Printf("connected: API %s, brokerd %s (%s)\n", v.API, v.Server, v.GoVersion)

	// Create the kernelized stream: family "nonlinear", identity link,
	// landmark map over the RBF kernel.
	_, err = c.CreateStream(ctx, api.CreateStreamRequest{
		ID: "kernelized", Family: "nonlinear", Dim: dim,
		Reserve: true, Threshold: threshold,
		Model: &api.ModelConfig{
			Map:       "landmark",
			Kernel:    &api.KernelConfig{Type: "rbf", Gamma: gamma},
			Landmarks: landmarks,
		},
	})
	check(err)

	// Price in batches: each round a query arrives with features in the
	// unit square, a seller-imposed reserve below its market value, and a
	// private valuation the server uses as the accept/reject callback.
	var revenue float64
	var accepts int
	for b := 0; b < batches; b++ {
		rounds := make([]api.BatchPriceRound, batchSize)
		for i := range rounds {
			x := rng.UniformVector(dim, 0, 1)
			v := value(x)
			rounds[i] = api.BatchPriceRound{Features: x, Reserve: 0.75 * v, Valuation: &v}
		}
		results, err := c.PriceBatch(ctx, "kernelized", rounds)
		check(err)
		for _, res := range results {
			if res.Error != "" {
				panic(res.Error)
			}
			if res.Accepted != nil && *res.Accepted {
				revenue += res.Price
				accepts++
			}
		}
		if b == 0 || b == batches-1 {
			fmt.Printf("after %4d rounds: %4d accepted, revenue %7.2f\n",
				(b+1)*batchSize, accepts, revenue)
		}
	}

	// The Flusher gives independent concurrent callers the same batching
	// transparently: each goroutine makes one Price call, the SDK
	// coalesces them into /v1/price/batch requests behind the scenes.
	fl := client.NewFlusher(c, client.FlusherConfig{MaxBatch: 64})
	var wg sync.WaitGroup
	for i := 0; i < 128; i++ {
		wg.Add(1)
		x := rng.UniformVector(dim, 0, 1)
		go func() {
			defer wg.Done()
			v := value(x)
			if _, err := fl.Price(ctx, "kernelized", x, 0.75*v, v); err != nil {
				panic(err)
			}
		}()
	}
	wg.Wait()
	fl.Close()
	fmt.Println("flusher: 128 concurrent Price calls coalesced into batch requests")

	// A two-phase round: quote now, report the buyer's decision later.
	// The session enforces one pending round per stream client-side.
	probe0 := rng.UniformVector(dim, 0, 1)
	session, err := c.Quote(ctx, "kernelized", probe0, 0.5*value(probe0))
	check(err)
	check(session.Observe(ctx, datamarket.Sold(session.Quote.Price, value(probe0))))
	fmt.Printf("two-phase round: posted %.4f (%s), observed\n",
		session.Quote.Price, session.Quote.Decision)

	stats, err := c.Stats(ctx, "kernelized")
	check(err)
	fmt.Printf("\nfamily %q: %d exploratory / %d conservative rounds, %d cuts, regret ratio %.2f%%\n",
		stats.Family, stats.Counters.Exploratory, stats.Counters.Conservative,
		stats.Counters.CutsApplied, 100*stats.Regret.RegretRatio)

	// Crash recovery: the snapshot is a family-tagged envelope; restoring
	// it under a fresh ID rebuilds the same kernel machine, and the two
	// streams agree exactly on the next quote.
	env, err := c.Snapshot(ctx, "kernelized")
	check(err)
	_, err = c.Restore(ctx, "recovered", env)
	check(err)
	probe := datamarket.Vector{0.4, 0.6}
	pv := value(probe)
	qa, err := c.Price(ctx, "kernelized", probe, 0.75*pv, pv)
	check(err)
	qb, err := c.Price(ctx, "recovered", probe, 0.75*pv, pv)
	check(err)
	fmt.Printf("snapshot family %q restored: original posts %.4f, recovered posts %.4f (truth %.4f)\n",
		env.Family, qa.Price, qb.Price, pv)
}

func check(err error) {
	if err != nil {
		panic(err)
	}
}
