# Developer entry points. CI runs the same commands (see
# .github/workflows/ci.yml), so a green `make ci` locally means a green
# pipeline — modulo govulncheck/staticcheck, which need network access
# to install and therefore run only in CI.

GO ?= go

.PHONY: build test race lint fmt bench-smoke bench-durability bench-serve bench-market bench-loadgen loadgen-smoke ci

build:
	$(GO) build ./...
	$(GO) build ./examples/...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# lint runs the repo's own analyzer suite (errcode, floatguard,
# lockdiscipline, wirecontract, snapshotfields) over every package.
# Exit status 1 means findings; fix them or add a reasoned
# //lint:ignore <analyzer> <reason> directive.
lint:
	$(GO) run ./cmd/datamarket-lint ./...

fmt:
	@test -z "$$(gofmt -l .)" || { echo "gofmt needed on:"; gofmt -l .; exit 1; }

# bench-smoke compiles and runs every benchmark for one iteration so
# they cannot rot; perf numbers come from manual -benchtime runs.
bench-smoke:
	$(GO) test -run=NONE -bench=. -benchtime=1x ./...

# bench-durability regenerates BENCH_durability.json, the tracked perf
# artifact of the durability stack: sustained durable pricing throughput
# per fsync policy (the acceptance bar is -fsync always within ~2× of
# -fsync never) and crash-recovery time vs dirty-stream count.
bench-durability:
	$(GO) run ./cmd/durabilitybench -out BENCH_durability.json

# bench-serve regenerates BENCH_serving.json, the tracked perf artifact
# of the HTTP serving path: per-round and batched rounds/s with p50/p99
# latency under both wire codecs (the acceptance bars are ≥500k rounds/s
# on the binary batch path and ≥10× the JSON per-round number).
bench-serve:
	$(GO) run ./cmd/servebench -out BENCH_serving.json

# bench-market regenerates BENCH_market.json, the tracked perf artifact
# of the hosted-market trade loop: dense seed-pipeline baseline vs the
# sparse batch-settled fast path, plus the served numbers at the HTTP
# edge (the acceptance bar is batch_over_dense >= 10x on a 10k-owner
# market with 64-support queries).
bench-market:
	$(GO) run ./cmd/servebench -scenario market -out BENCH_market.json

# bench-loadgen regenerates BENCH_loadgen.json, the tracked perf
# artifact of the scenario engine: the four dataset-shaped workloads
# (accommodation, impression, ratings, mixed) driven through the public
# SDK against an in-process broker, each under the open-loop and
# closed-loop drivers, with latency percentiles, error-code counts, and
# regret/revenue summaries per scenario.
bench-loadgen:
	$(GO) run ./cmd/loadgen -out BENCH_loadgen.json

# loadgen-smoke is the CI gate on the scenario engine: every scenario
# under both drivers at tiny synthetic sizes (~5s, no datasets needed),
# failing if any op errors beyond the budget of zero.
loadgen-smoke:
	$(GO) run ./cmd/loadgen -smoke

ci: fmt build test lint
