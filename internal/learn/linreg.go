// Package learn provides the offline learners the paper uses to obtain the
// ground-truth market value models from data:
//
//   - ordinary least squares linear regression (§V-B fits the Airbnb
//     log-price hedonic model with it; the paper reports test MSE 0.226);
//   - FTRL-Proximal logistic regression with per-coordinate learning rates
//     and L1/L2 regularization (§V-C fits the Avazu CTR model with it,
//     following McMahan et al., KDD 2013; the paper reports logistic loss
//     0.420/0.406 and ~21–23 nonzero weights).
package learn

import (
	"fmt"
	"math"

	"datamarket/internal/linalg"
)

// LinearRegression is an OLS (optionally ridge-regularized) model fitted
// via Householder QR, with an optional intercept.
type LinearRegression struct {
	// Coef holds the learned coefficients (without the intercept).
	Coef linalg.Vector
	// Intercept is the learned bias term (0 when fitted without one).
	Intercept    float64
	fitIntercept bool
}

// FitOptions configures the linear regression fit.
type FitOptions struct {
	// Intercept adds a bias column to the design matrix.
	Intercept bool
	// Ridge is the L2 penalty λ ≥ 0 on the coefficients (not the
	// intercept); 0 means plain OLS.
	Ridge float64
}

// FitLinear fits y ≈ X·β (+ b) by least squares. rows holds the feature
// vectors; y the targets.
func FitLinear(rows []linalg.Vector, y linalg.Vector, opt FitOptions) (*LinearRegression, error) {
	if len(rows) == 0 {
		return nil, fmt.Errorf("learn: no rows to fit")
	}
	if len(rows) != len(y) {
		return nil, fmt.Errorf("learn: %d rows for %d targets", len(rows), len(y))
	}
	if opt.Ridge < 0 {
		return nil, fmt.Errorf("learn: negative ridge penalty %g", opt.Ridge)
	}
	d := len(rows[0])
	cols := d
	if opt.Intercept {
		cols++
	}
	if len(rows) < cols && opt.Ridge == 0 {
		return nil, fmt.Errorf("learn: underdetermined system (%d rows, %d params) needs ridge", len(rows), cols)
	}
	// Assemble the (possibly ridge-augmented) design matrix. The ridge
	// rows penalize only the coefficients, never the intercept.
	extra := 0
	if opt.Ridge > 0 {
		extra = d
	}
	a := linalg.NewMatrix(len(rows)+extra, cols)
	b := make(linalg.Vector, len(rows)+extra)
	for i, r := range rows {
		if len(r) != d {
			return nil, fmt.Errorf("learn: ragged rows (%d vs %d)", len(r), d)
		}
		copy(a.Row(i), r)
		if opt.Intercept {
			a.Set(i, cols-1, 1)
		}
		b[i] = y[i]
	}
	if opt.Ridge > 0 {
		s := math.Sqrt(opt.Ridge)
		for j := 0; j < d; j++ {
			a.Set(len(rows)+j, j, s)
		}
	}
	sol, err := linalg.LeastSquares(a, b)
	if err != nil {
		return nil, fmt.Errorf("learn: least squares: %w", err)
	}
	m := &LinearRegression{fitIntercept: opt.Intercept}
	if opt.Intercept {
		m.Coef = sol[:d].Clone()
		m.Intercept = sol[d]
	} else {
		m.Coef = sol.Clone()
	}
	return m, nil
}

// Predict returns x·β + intercept.
func (m *LinearRegression) Predict(x linalg.Vector) (float64, error) {
	if len(x) != len(m.Coef) {
		return 0, fmt.Errorf("learn: predict dim %d, want %d", len(x), len(m.Coef))
	}
	return x.Dot(m.Coef) + m.Intercept, nil
}

// PredictAll evaluates the model over a batch of rows.
func (m *LinearRegression) PredictAll(rows []linalg.Vector) (linalg.Vector, error) {
	out := make(linalg.Vector, len(rows))
	for i, r := range rows {
		p, err := m.Predict(r)
		if err != nil {
			return nil, err
		}
		out[i] = p
	}
	return out, nil
}

// MSE returns the mean squared error of the model over a labelled batch —
// the metric the paper reports for the Airbnb fit (0.226 on a 20% holdout).
func (m *LinearRegression) MSE(rows []linalg.Vector, y linalg.Vector) (float64, error) {
	if len(rows) != len(y) {
		return 0, fmt.Errorf("learn: %d rows for %d targets", len(rows), len(y))
	}
	if len(rows) == 0 {
		return 0, fmt.Errorf("learn: empty evaluation set")
	}
	var s float64
	for i, r := range rows {
		p, err := m.Predict(r)
		if err != nil {
			return 0, err
		}
		d := p - y[i]
		s += d * d
	}
	return s / float64(len(rows)), nil
}

// R2 returns the coefficient of determination over a labelled batch.
func (m *LinearRegression) R2(rows []linalg.Vector, y linalg.Vector) (float64, error) {
	mse, err := m.MSE(rows, y)
	if err != nil {
		return 0, err
	}
	var mean float64
	for _, v := range y {
		mean += v
	}
	mean /= float64(len(y))
	var tss float64
	for _, v := range y {
		d := v - mean
		tss += d * d
	}
	if tss == 0 {
		return 0, fmt.Errorf("learn: targets are constant, R² undefined")
	}
	return 1 - mse*float64(len(y))/tss, nil
}

// TrainTestSplit partitions indices [0, n) deterministically: every k-th
// element (offset phase) goes to the test set, yielding a ~1/k holdout.
// The paper holds out 20% of the Airbnb data, i.e. k = 5.
func TrainTestSplit(n, k, phase int) (train, test []int, err error) {
	if n <= 0 || k <= 1 {
		return nil, nil, fmt.Errorf("learn: bad split parameters n=%d k=%d", n, k)
	}
	if phase < 0 {
		phase = 0
	}
	for i := 0; i < n; i++ {
		if (i+phase)%k == 0 {
			test = append(test, i)
		} else {
			train = append(train, i)
		}
	}
	return train, test, nil
}
