package learn

import (
	"math"
	"testing"

	"datamarket/internal/linalg"
	"datamarket/internal/randx"
)

func TestFitLinearExactRecovery(t *testing.T) {
	// Noise-free data: exact coefficient recovery.
	truth := linalg.VectorOf(2, -1, 0.5)
	r := randx.New(1)
	var rows []linalg.Vector
	var y linalg.Vector
	for i := 0; i < 50; i++ {
		x := r.NormalVector(3, 1)
		rows = append(rows, x)
		y = append(y, x.Dot(truth)+3)
	}
	m, err := FitLinear(rows, y, FitOptions{Intercept: true})
	if err != nil {
		t.Fatal(err)
	}
	if !m.Coef.Equal(truth, 1e-8) {
		t.Fatalf("coef = %v, want %v", m.Coef, truth)
	}
	if math.Abs(m.Intercept-3) > 1e-8 {
		t.Fatalf("intercept = %v, want 3", m.Intercept)
	}
	mse, err := m.MSE(rows, y)
	if err != nil {
		t.Fatal(err)
	}
	if mse > 1e-15 {
		t.Fatalf("MSE = %v on noise-free data", mse)
	}
	r2, err := m.R2(rows, y)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r2-1) > 1e-9 {
		t.Fatalf("R² = %v", r2)
	}
}

func TestFitLinearNoisy(t *testing.T) {
	truth := linalg.VectorOf(1, 2)
	r := randx.New(2)
	var rows []linalg.Vector
	var y linalg.Vector
	for i := 0; i < 2000; i++ {
		x := r.NormalVector(2, 1)
		rows = append(rows, x)
		y = append(y, x.Dot(truth)+r.Normal(0, 0.5))
	}
	m, err := FitLinear(rows, y, FitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !m.Coef.Equal(truth, 0.05) {
		t.Fatalf("coef = %v", m.Coef)
	}
	mse, _ := m.MSE(rows, y)
	if math.Abs(mse-0.25) > 0.05 {
		t.Fatalf("MSE = %v, want ≈ noise variance 0.25", mse)
	}
}

func TestFitLinearValidation(t *testing.T) {
	rows := []linalg.Vector{linalg.VectorOf(1, 2)}
	if _, err := FitLinear(nil, nil, FitOptions{}); err == nil {
		t.Fatal("expected empty error")
	}
	if _, err := FitLinear(rows, linalg.VectorOf(1, 2), FitOptions{}); err == nil {
		t.Fatal("expected length mismatch error")
	}
	if _, err := FitLinear(rows, linalg.VectorOf(1), FitOptions{Ridge: -1}); err == nil {
		t.Fatal("expected negative ridge error")
	}
	// Underdetermined without ridge fails; with ridge succeeds.
	if _, err := FitLinear(rows, linalg.VectorOf(1), FitOptions{}); err == nil {
		t.Fatal("expected underdetermined error")
	}
	if _, err := FitLinear(rows, linalg.VectorOf(1), FitOptions{Ridge: 0.1}); err != nil {
		t.Fatalf("ridge fit failed: %v", err)
	}
	ragged := []linalg.Vector{linalg.VectorOf(1, 2), linalg.VectorOf(1)}
	if _, err := FitLinear(ragged, linalg.VectorOf(1, 2), FitOptions{}); err == nil {
		t.Fatal("expected ragged error")
	}
}

func TestPredictErrorsAndBatch(t *testing.T) {
	m := &LinearRegression{Coef: linalg.VectorOf(1, 1)}
	if _, err := m.Predict(linalg.VectorOf(1)); err == nil {
		t.Fatal("expected dim error")
	}
	out, err := m.PredictAll([]linalg.Vector{linalg.VectorOf(1, 2), linalg.VectorOf(3, 4)})
	if err != nil {
		t.Fatal(err)
	}
	if !out.Equal(linalg.VectorOf(3, 7), 1e-12) {
		t.Fatalf("batch = %v", out)
	}
	if _, err := m.MSE(nil, nil); err == nil {
		t.Fatal("expected empty MSE error")
	}
	if _, err := m.R2([]linalg.Vector{linalg.VectorOf(1, 1), linalg.VectorOf(2, 2)}, linalg.VectorOf(5, 5)); err == nil {
		t.Fatal("expected constant-target R² error")
	}
}

func TestRidgeShrinks(t *testing.T) {
	r := randx.New(3)
	var rows []linalg.Vector
	var y linalg.Vector
	for i := 0; i < 60; i++ {
		x := r.NormalVector(4, 1)
		rows = append(rows, x)
		y = append(y, x.Sum()+r.Normal(0, 0.1))
	}
	m0, _ := FitLinear(rows, y, FitOptions{})
	m1, _ := FitLinear(rows, y, FitOptions{Ridge: 50})
	if !(m1.Coef.Norm2() < m0.Coef.Norm2()) {
		t.Fatalf("ridge did not shrink: %v vs %v", m1.Coef.Norm2(), m0.Coef.Norm2())
	}
}

func TestTrainTestSplit(t *testing.T) {
	train, test, err := TrainTestSplit(10, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(test) != 2 || len(train) != 8 {
		t.Fatalf("split sizes %d/%d", len(train), len(test))
	}
	seen := map[int]bool{}
	for _, i := range append(train, test...) {
		if seen[i] {
			t.Fatalf("index %d duplicated", i)
		}
		seen[i] = true
	}
	if len(seen) != 10 {
		t.Fatal("split lost indices")
	}
	if _, _, err := TrainTestSplit(0, 5, 0); err == nil {
		t.Fatal("expected n error")
	}
	if _, _, err := TrainTestSplit(10, 1, 0); err == nil {
		t.Fatal("expected k error")
	}
	// Negative phase is clamped.
	if _, _, err := TrainTestSplit(10, 2, -3); err != nil {
		t.Fatal(err)
	}
}

func TestNewFTRLValidation(t *testing.T) {
	if _, err := NewFTRL(FTRLConfig{Dim: 0, Alpha: 1, Beta: 1}); err == nil {
		t.Fatal("expected dim error")
	}
	if _, err := NewFTRL(FTRLConfig{Dim: 2, Alpha: 0, Beta: 1}); err == nil {
		t.Fatal("expected alpha error")
	}
	if _, err := NewFTRL(FTRLConfig{Dim: 2, Alpha: 1, Beta: 1, L1: -1}); err == nil {
		t.Fatal("expected L1 error")
	}
	f, err := NewFTRL(FTRLConfig{Dim: 3, Alpha: 0.1, Beta: 1})
	if err != nil {
		t.Fatal(err)
	}
	if f.Dim() != 3 || f.Samples() != 0 || f.AverageLoss() != 0 {
		t.Fatal("fresh learner state wrong")
	}
}

func TestFTRLLearnsSparseLogisticModel(t *testing.T) {
	// Ground truth: sparse weights over 64 dims; clicks from the sigmoid.
	dim := 64
	r := randx.New(5)
	truth := make(linalg.Vector, dim)
	active := []int{3, 17, 40}
	for _, i := range active {
		truth[i] = r.Uniform(1.5, 2.5) * r.Rademacher()
	}
	// L1 must be sized against the √n growth of the z accumulators: each
	// coordinate appears ~3750 times here, so the useless-coordinate z's
	// random-walk scale is ≈ √(3750·0.25) ≈ 15; L1 = 60 zeroes those while
	// the active coordinates' systematic drift (~|w|(β+√n)/α ≈ 170)
	// survives comfortably.
	f, err := NewFTRL(FTRLConfig{Dim: dim, Alpha: 0.2, Beta: 1, L1: 60, L2: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	sample := func() (linalg.Vector, float64) {
		// Sparse binary features: each of 8 random coordinates set.
		x := make(linalg.Vector, dim)
		for k := 0; k < 8; k++ {
			x[r.Intn(dim)] = 1
		}
		p := sigmoid(x.Dot(truth))
		y := 0.0
		if r.Float64() < p {
			y = 1
		}
		return x, y
	}
	for i := 0; i < 30000; i++ {
		x, y := sample()
		if _, err := f.Update(x, y); err != nil {
			t.Fatal(err)
		}
	}
	// Sparsity: far fewer nonzeros than dims, and all true actives found.
	nz := f.NonzeroCount()
	if nz > dim/4 {
		t.Fatalf("FTRL weights not sparse: %d nonzero of %d", nz, dim)
	}
	w := f.Weights()
	for _, i := range active {
		if w[i]*truth[i] <= 0 {
			t.Fatalf("active weight %d has wrong sign: %v vs truth %v", i, w[i], truth[i])
		}
	}
	// Held-out loss must beat the constant predictor.
	var rows []linalg.Vector
	var labels linalg.Vector
	var base float64
	for i := 0; i < 3000; i++ {
		x, y := sample()
		rows = append(rows, x)
		labels = append(labels, y)
		base += y
	}
	base /= float64(len(labels))
	ll, err := f.EvaluateLogLoss(rows, labels)
	if err != nil {
		t.Fatal(err)
	}
	var constLoss float64
	for _, y := range labels {
		constLoss += LogLoss(base, y)
	}
	constLoss /= float64(len(labels))
	if !(ll < constLoss) {
		t.Fatalf("FTRL loss %v not below constant-predictor loss %v", ll, constLoss)
	}
	if f.Samples() != 30000 {
		t.Fatalf("samples = %d", f.Samples())
	}
	if f.AverageLoss() <= 0 {
		t.Fatalf("average loss = %v", f.AverageLoss())
	}
}

func TestFTRLL1InducesZeroWeights(t *testing.T) {
	// With pure-noise labels and strong L1, weights must stay exactly 0.
	r := randx.New(6)
	f, _ := NewFTRL(FTRLConfig{Dim: 16, Alpha: 0.1, Beta: 1, L1: 50, L2: 0})
	for i := 0; i < 2000; i++ {
		x := make(linalg.Vector, 16)
		x[r.Intn(16)] = 1
		y := 0.0
		if r.Bool() {
			y = 1
		}
		f.Update(x, y)
	}
	if nz := f.NonzeroCount(); nz != 0 {
		t.Fatalf("strong L1 left %d nonzero weights", nz)
	}
}

func TestFTRLUpdateValidation(t *testing.T) {
	f, _ := NewFTRL(FTRLConfig{Dim: 2, Alpha: 0.1, Beta: 1})
	if _, err := f.Update(linalg.VectorOf(1), 0); err == nil {
		t.Fatal("expected dim error")
	}
	if _, err := f.Update(linalg.VectorOf(1, 0), 0.5); err == nil {
		t.Fatal("expected label error")
	}
	if _, err := f.Predict(linalg.VectorOf(1)); err == nil {
		t.Fatal("expected predict dim error")
	}
	if _, err := f.EvaluateLogLoss(nil, nil); err == nil {
		t.Fatal("expected empty eval error")
	}
	if _, err := f.EvaluateLogLoss([]linalg.Vector{linalg.VectorOf(1, 0)}, nil); err == nil {
		t.Fatal("expected mismatch error")
	}
}

func TestSigmoidAndLogLoss(t *testing.T) {
	if sigmoid(0) != 0.5 {
		t.Fatal("sigmoid(0) != 0.5")
	}
	if sigmoid(100) != 1 || sigmoid(-100) != 0 {
		t.Fatal("sigmoid clamping wrong")
	}
	if LogLoss(0.5, 1) != LogLoss(0.5, 0) {
		t.Fatal("symmetric loss at p=0.5 differs")
	}
	// Clamped: no Inf even at p = 0 with y = 1.
	if math.IsInf(LogLoss(0, 1), 0) {
		t.Fatal("LogLoss overflowed")
	}
	if LogLoss(0.9, 1) > LogLoss(0.1, 1) {
		t.Fatal("loss not decreasing in p for y=1")
	}
}

func TestAccuracy(t *testing.T) {
	acc, err := Accuracy(linalg.VectorOf(0.9, 0.2, 0.7), linalg.VectorOf(1, 0, 0))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(acc-2.0/3) > 1e-12 {
		t.Fatalf("accuracy = %v", acc)
	}
	if _, err := Accuracy(linalg.VectorOf(1), nil); err == nil {
		t.Fatal("expected mismatch error")
	}
	if _, err := Accuracy(nil, nil); err == nil {
		t.Fatal("expected empty error")
	}
}
