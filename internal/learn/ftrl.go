package learn

import (
	"fmt"
	"math"

	"datamarket/internal/linalg"
)

// FTRLProximal is the Follow-The-Regularized-Leader (Proximal) online
// logistic regression of McMahan et al. (KDD 2013), "Ad click prediction:
// a view from the trenches" — the learner Google deployed for CTR
// prediction and the one the paper uses to obtain the Avazu weight vector
// (§V-C). It keeps per-coordinate learning rates and applies L1 and L2
// regularization lazily, which yields genuinely sparse weights.
type FTRLProximal struct {
	// Alpha and Beta set the per-coordinate learning rate
	// η_i = α / (β + √Σ g_i²).
	Alpha, Beta float64
	// L1 and L2 are the regularization strengths; L1 > 0 induces sparsity.
	L1, L2 float64

	z linalg.Vector // per-coordinate "lazy weight" accumulators
	n linalg.Vector // per-coordinate squared-gradient sums
	w linalg.Vector // materialized weights (recomputed on demand)

	samples int
	lossSum float64
}

// FTRLConfig configures NewFTRL.
type FTRLConfig struct {
	Dim   int
	Alpha float64 // learning rate numerator, typical 0.05–0.5
	Beta  float64 // learning rate smoothing, typical 1
	L1    float64 // ≥ 0
	L2    float64 // ≥ 0
}

// NewFTRL validates the configuration and returns a fresh learner.
func NewFTRL(cfg FTRLConfig) (*FTRLProximal, error) {
	if cfg.Dim <= 0 {
		return nil, fmt.Errorf("learn: FTRL dimension must be positive, got %d", cfg.Dim)
	}
	if cfg.Alpha <= 0 || cfg.Beta <= 0 {
		return nil, fmt.Errorf("learn: FTRL alpha and beta must be positive, got %g, %g", cfg.Alpha, cfg.Beta)
	}
	if cfg.L1 < 0 || cfg.L2 < 0 {
		return nil, fmt.Errorf("learn: FTRL penalties must be non-negative, got %g, %g", cfg.L1, cfg.L2)
	}
	return &FTRLProximal{
		Alpha: cfg.Alpha, Beta: cfg.Beta, L1: cfg.L1, L2: cfg.L2,
		z: make(linalg.Vector, cfg.Dim),
		n: make(linalg.Vector, cfg.Dim),
		w: make(linalg.Vector, cfg.Dim),
	}, nil
}

// Dim returns the feature dimension.
func (f *FTRLProximal) Dim() int { return len(f.z) }

// weight materializes the proximal weight for coordinate i:
// w_i = 0 if |z_i| ≤ λ₁, else −(z_i − sign(z_i)λ₁)/((β+√n_i)/α + λ₂).
func (f *FTRLProximal) weight(i int) float64 {
	zi := f.z[i]
	if math.Abs(zi) <= f.L1 {
		return 0
	}
	sign := 1.0
	if zi < 0 {
		sign = -1
	}
	return -(zi - sign*f.L1) / ((f.Beta+math.Sqrt(f.n[i]))/f.Alpha + f.L2)
}

// Predict returns the click probability sigmoid(w·x) for the current
// weights. Only nonzero feature entries contribute, so sparse inputs are
// cheap.
func (f *FTRLProximal) Predict(x linalg.Vector) (float64, error) {
	if len(x) != len(f.z) {
		return 0, fmt.Errorf("learn: FTRL predict dim %d, want %d", len(x), len(f.z))
	}
	var score float64
	for i, xi := range x {
		if xi == 0 {
			continue
		}
		score += f.weight(i) * xi
	}
	return sigmoid(score), nil
}

// Update performs one FTRL-Proximal step on example (x, y) with label
// y ∈ {0, 1}, returning the pre-update logistic loss of the example.
func (f *FTRLProximal) Update(x linalg.Vector, y float64) (float64, error) {
	if len(x) != len(f.z) {
		return 0, fmt.Errorf("learn: FTRL update dim %d, want %d", len(x), len(f.z))
	}
	if y != 0 && y != 1 {
		return 0, fmt.Errorf("learn: FTRL label must be 0 or 1, got %g", y)
	}
	// Predict with materialized weights, caching them for the gradient.
	var score float64
	for i, xi := range x {
		if xi == 0 {
			continue
		}
		f.w[i] = f.weight(i)
		score += f.w[i] * xi
	}
	p := sigmoid(score)
	loss := LogLoss(p, y)

	g := p - y // dLoss/dscore
	for i, xi := range x {
		if xi == 0 {
			continue
		}
		gi := g * xi
		sigma := (math.Sqrt(f.n[i]+gi*gi) - math.Sqrt(f.n[i])) / f.Alpha
		f.z[i] += gi - sigma*f.w[i]
		f.n[i] += gi * gi
	}
	f.samples++
	f.lossSum += loss
	return loss, nil
}

// Weights materializes and returns the full weight vector.
func (f *FTRLProximal) Weights() linalg.Vector {
	out := make(linalg.Vector, len(f.z))
	for i := range out {
		out[i] = f.weight(i)
	}
	return out
}

// NonzeroCount returns the number of nonzero materialized weights — the
// sparsity statistic the paper reports (21 at n=128, 23 at n=1024).
func (f *FTRLProximal) NonzeroCount() int {
	var c int
	for i := range f.z {
		if f.weight(i) != 0 {
			c++
		}
	}
	return c
}

// Samples returns the number of training examples consumed.
func (f *FTRLProximal) Samples() int { return f.samples }

// AverageLoss returns the progressive (online) average logistic loss.
func (f *FTRLProximal) AverageLoss() float64 {
	if f.samples == 0 {
		return 0
	}
	return f.lossSum / float64(f.samples)
}

// EvaluateLogLoss computes the mean logistic loss of the current weights
// over a labelled batch (the paper's held-out "last two days" metric).
func (f *FTRLProximal) EvaluateLogLoss(rows []linalg.Vector, labels linalg.Vector) (float64, error) {
	if len(rows) != len(labels) {
		return 0, fmt.Errorf("learn: %d rows for %d labels", len(rows), len(labels))
	}
	if len(rows) == 0 {
		return 0, fmt.Errorf("learn: empty evaluation set")
	}
	var s float64
	for i, r := range rows {
		p, err := f.Predict(r)
		if err != nil {
			return 0, err
		}
		s += LogLoss(p, labels[i])
	}
	return s / float64(len(rows)), nil
}

// sigmoid is the logistic function with clamping against overflow.
func sigmoid(z float64) float64 {
	if z > 35 {
		return 1
	}
	if z < -35 {
		return 0
	}
	return 1 / (1 + math.Exp(-z))
}

// LogLoss returns the logistic loss −y·log p − (1−y)·log(1−p), with p
// clamped away from {0, 1} for numerical safety.
func LogLoss(p, y float64) float64 {
	const eps = 1e-12
	if p < eps {
		p = eps
	}
	if p > 1-eps {
		p = 1 - eps
	}
	return -y*math.Log(p) - (1-y)*math.Log(1-p)
}

// Accuracy returns the fraction of examples whose thresholded prediction
// (p ≥ 0.5) matches the label.
func Accuracy(preds, labels linalg.Vector) (float64, error) {
	if len(preds) != len(labels) {
		return 0, fmt.Errorf("learn: %d predictions for %d labels", len(preds), len(labels))
	}
	if len(preds) == 0 {
		return 0, fmt.Errorf("learn: empty evaluation set")
	}
	var c int
	for i, p := range preds {
		pred := 0.0
		if p >= 0.5 {
			pred = 1
		}
		if pred == labels[i] {
			c++
		}
	}
	return float64(c) / float64(len(preds)), nil
}
