package experiment

import "testing"

func TestThresholdSweep(t *testing.T) {
	pts, err := ThresholdSweep(20, 3000, 100, []float64{0.05, 0.2, 0.8}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("points = %d", len(pts))
	}
	// Exploration volume must be monotone decreasing in ε.
	for i := 1; i < len(pts); i++ {
		if pts[i].Exploratory > pts[i-1].Exploratory {
			t.Fatalf("exploration not decreasing in epsilon: %+v", pts)
		}
	}
	for _, p := range pts {
		if p.FinalRatio < 0 || p.FinalRatio > 1 {
			t.Fatalf("ratio out of range: %+v", p)
		}
	}
	if _, err := ThresholdSweep(2, 10, 10, nil, 1); err == nil {
		t.Fatal("expected empty sweep error")
	}
	if _, err := ThresholdSweep(2, 10, 10, []float64{0}, 1); err == nil {
		t.Fatal("expected epsilon error")
	}
}

func TestUncertaintySweep(t *testing.T) {
	pts, err := UncertaintySweep(10, 3000, 100, []float64{0, 0.01, 0.1}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("points = %d", len(pts))
	}
	// Large buffers must cost regret relative to δ = 0 (the §V-A shape).
	if !(pts[2].FinalRatio > pts[0].FinalRatio) {
		t.Fatalf("δ=0.1 ratio %v not above δ=0 ratio %v",
			pts[2].FinalRatio, pts[0].FinalRatio)
	}
	if _, err := UncertaintySweep(2, 10, 10, nil, 1); err == nil {
		t.Fatal("expected empty sweep error")
	}
	if _, err := UncertaintySweep(2, 10, 10, []float64{-1}, 1); err == nil {
		t.Fatal("expected delta error")
	}
}

func TestSGDComparison(t *testing.T) {
	sgd, ell, err := SGDComparison(8, 6000, 100, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !(ell < sgd) {
		t.Fatalf("ellipsoid ratio %v not below SGD %v", ell, sgd)
	}
	if sgd > 0.8 || ell > 0.5 {
		t.Fatalf("ratios implausible: sgd %v ell %v", sgd, ell)
	}
}
