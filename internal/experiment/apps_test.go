package experiment

import (
	"math"
	"testing"
)

func TestAccommodationValidation(t *testing.T) {
	if _, err := RunAccommodationApp(AccommodationConfig{Listings: 10}); err == nil {
		t.Fatal("expected listings error")
	}
	if _, err := RunAccommodationApp(AccommodationConfig{Listings: 200, LogReserveRatio: 1.5}); err == nil {
		t.Fatal("expected ratio error")
	}
	if _, err := RunAccommodationApp(AccommodationConfig{Listings: 200, RiskAverse: true}); err == nil {
		t.Fatal("expected baseline-needs-reserve error")
	}
}

func TestAccommodationPureAndReserve(t *testing.T) {
	// The n = 56 model needs the paper's full horizon to leave the
	// exploration phase, so this test runs the real T = 74,111.
	const listings = 74111
	const eps = 0 // Theorem 1 default: n²/T ≈ 0.042 at this T
	pure, err := RunAccommodationApp(AccommodationConfig{Listings: listings, Seed: 5, Threshold: eps})
	if err != nil {
		t.Fatal(err)
	}
	// Offline fit: test MSE near the generator's noise variance 0.2256.
	if pure.TestMSE < 0.15 || pure.TestMSE > 0.32 {
		t.Fatalf("test MSE = %v, want ≈ 0.226", pure.TestMSE)
	}
	if pure.FeatureDim != 56 {
		t.Fatalf("feature dim = %d", pure.FeatureDim)
	}
	// The online mechanism's ratio must be well under the always-reserve
	// baseline's. (The paper reports 4.57% on the real table; our
	// synthetic stream has higher effective dimensionality, which keeps
	// the exploration phase alive longer — see EXPERIMENTS.md.)
	if pure.FinalRatio > 0.35 {
		t.Fatalf("pure final ratio = %v", pure.FinalRatio)
	}
	res, err := RunAccommodationApp(AccommodationConfig{
		Listings: listings, LogReserveRatio: 0.6, Seed: 5, Threshold: eps,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalRatio > 0.35 {
		t.Fatalf("reserve final ratio = %v", res.FinalRatio)
	}
	base, err := RunAccommodationApp(AccommodationConfig{
		Listings: listings, LogReserveRatio: 0.6, RiskAverse: true, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	// §V-B headline: the mechanism beats the risk-averse baseline.
	if !(res.FinalRatio < base.FinalRatio) {
		t.Fatalf("mechanism %v not below baseline %v", res.FinalRatio, base.FinalRatio)
	}
	// The baseline's ratio reflects the markup: with log q = 0.6 log v,
	// regret per round is v − v^0.6, so the ratio is substantial.
	if base.FinalRatio < 0.05 {
		t.Fatalf("baseline ratio %v implausibly low", base.FinalRatio)
	}
}

func TestAccommodationReserveRatioOrdering(t *testing.T) {
	// Fig. 5(b): as the reserve approaches the market value, the
	// baseline's regret ratio falls (smaller markup left on the table).
	const listings = 2500
	var prev float64 = math.Inf(1)
	for _, ratio := range []float64{0.4, 0.6, 0.8} {
		base, err := RunAccommodationApp(AccommodationConfig{
			Listings: listings, LogReserveRatio: ratio, RiskAverse: true, Seed: 6,
		})
		if err != nil {
			t.Fatal(err)
		}
		if base.FinalRatio >= prev {
			t.Fatalf("baseline ratio not decreasing in reserve ratio at %v", ratio)
		}
		prev = base.FinalRatio
	}
}

func TestImpressionValidation(t *testing.T) {
	if _, err := RunImpressionApp(ImpressionConfig{HashDim: 1, T: 10}); err == nil {
		t.Fatal("expected dim error")
	}
	if _, err := RunImpressionApp(ImpressionConfig{HashDim: 64, T: 0}); err == nil {
		t.Fatal("expected T error")
	}
	if _, err := RunImpressionApp(ImpressionConfig{HashDim: 64, T: 10, Threshold: -1}); err == nil {
		t.Fatal("expected threshold error")
	}
}

func TestImpressionSparseAndDense(t *testing.T) {
	// Fig. 5(c) shape at unit-test scale: the dense case (pricing only
	// the ~20–35 nonzero-weight coordinates) finishes its exploration
	// phase and pulls its regret ratio down, while the sparse case at
	// n = 128 is still exploring — the central-cut ellipsoid needs
	// O(n² log(1/ε)) cuts, far beyond T here (see EXPERIMENTS.md for the
	// full-scale discussion).
	const T = 20000
	sparse, err := RunImpressionApp(ImpressionConfig{HashDim: 128, T: T, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if sparse.PricedDim != 128 {
		t.Fatalf("sparse priced dim = %d", sparse.PricedDim)
	}
	// The FTRL fit must be sparse and in the paper's loss ballpark.
	if sparse.NonzeroWeights < 5 || sparse.NonzeroWeights > 64 {
		t.Fatalf("nonzero weights = %d", sparse.NonzeroWeights)
	}
	if sparse.FitLogLoss < 0.3 || sparse.FitLogLoss > 0.55 {
		t.Fatalf("fit loss = %v", sparse.FitLogLoss)
	}
	dense, err := RunImpressionApp(ImpressionConfig{HashDim: 128, T: T, Dense: true, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if dense.PricedDim != dense.NonzeroWeights {
		t.Fatalf("dense priced dim = %d, nonzeros %d", dense.PricedDim, dense.NonzeroWeights)
	}
	// Dense must have finished exploring and be clearly ahead of sparse.
	if dense.Counters.Exploratory >= T {
		t.Fatal("dense case never left the exploration phase")
	}
	if !(dense.FinalRatio < sparse.FinalRatio*0.85) {
		t.Fatalf("dense ratio %v not clearly below sparse %v", dense.FinalRatio, sparse.FinalRatio)
	}
	if sparse.FinalRatio < 0.2 || sparse.FinalRatio > 0.8 {
		t.Fatalf("sparse ratio %v outside the mid-exploration band", sparse.FinalRatio)
	}
	if dense.FinalRatio > 0.45 {
		t.Fatalf("dense ratio %v too high", dense.FinalRatio)
	}
}

func TestLemma8Experiment(t *testing.T) {
	res, err := RunLemma8(1200)
	if err != nil {
		t.Fatal(err)
	}
	if !(res.AblationWidthAtSwitch > 100*res.DefaultWidthAtSwitch) {
		t.Fatalf("ablation width %v not far above default %v",
			res.AblationWidthAtSwitch, res.DefaultWidthAtSwitch)
	}
	if !(res.AblationPhase2Regret > 2*res.DefaultPhase2Regret) {
		t.Fatalf("ablation regret %v not clearly above default %v",
			res.AblationPhase2Regret, res.DefaultPhase2Regret)
	}
	if _, err := RunLemma8(10); err == nil {
		t.Fatal("expected T error")
	}
	if _, err := RunLemma8(21); err == nil {
		t.Fatal("expected even-T error")
	}
}

func TestTheorem3Experiment(t *testing.T) {
	points, err := RunTheorem3([]int{500, 4000, 32000}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 {
		t.Fatalf("points = %d", len(points))
	}
	// O(log T): regret grows much slower than T. An 64× horizon increase
	// must grow regret by far less than 64×.
	growth := points[2].CumRegret / math.Max(points[0].CumRegret, 1e-9)
	if growth > 8 {
		t.Fatalf("regret growth %v too fast for O(log T)", growth)
	}
	if _, err := RunTheorem3(nil, 1); err == nil {
		t.Fatal("expected empty horizons error")
	}
	if _, err := RunTheorem3([]int{1}, 1); err == nil {
		t.Fatal("expected small horizon error")
	}
}

func TestFig1Curve(t *testing.T) {
	pts, err := RunFig1(10, 4, 61)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 61 {
		t.Fatalf("points = %d", len(pts))
	}
	// Shape: decreasing to zero at p = v, then jumps to v.
	sawZero := false
	sawCliff := false
	for i := 1; i < len(pts); i++ {
		if pts[i].Posted <= 10 && pts[i].Regret > pts[i-1].Regret+1e-9 {
			t.Fatalf("regret increased below the value at %v", pts[i].Posted)
		}
		if pts[i].Regret == 0 {
			sawZero = true
		}
		if pts[i].Posted > 10 && pts[i].Regret == 10 {
			sawCliff = true
		}
	}
	if !sawZero || !sawCliff {
		t.Fatalf("curve missing zero point or cliff: %+v", pts[len(pts)-5:])
	}
	if _, err := RunFig1(10, 4, 1); err == nil {
		t.Fatal("expected points error")
	}
	if _, err := RunFig1(-1, 0, 10); err == nil {
		t.Fatal("expected value error")
	}
}

func TestOverheadMeasurement(t *testing.T) {
	res, err := MeasureLinearOverhead(20, 500, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.LatencyPerRound <= 0 {
		t.Fatalf("latency = %v", res.LatencyPerRound)
	}
	// §V-D claim: per-round latency in the (sub-)millisecond range.
	if res.LatencyPerRound.Milliseconds() > 10 {
		t.Fatalf("latency per round %v implausibly slow", res.LatencyPerRound)
	}
	if res.MechanismBytes == 0 || res.ProcessBytes == 0 {
		t.Fatalf("memory accounting empty: %+v", res)
	}
	if _, err := MeasureLinearOverhead(0, 1, 1); err == nil {
		t.Fatal("expected config error")
	}
}
