// Package experiment reproduces every table and figure of the paper's
// evaluation section (§V): the noisy linear query application over a
// MovieLens-style market (Fig. 4, Table I, Fig. 5(a)), the accommodation
// rental application under the log-linear model (Fig. 5(b)), the
// impression pricing application under the logistic model (Fig. 5(c)),
// the §V-D latency/memory overheads, and the appendix ablations (Lemma 8,
// Theorem 3). DESIGN.md carries the experiment index; EXPERIMENTS.md the
// recorded paper-vs-measured outcomes.
package experiment

import (
	"fmt"
	"math"

	"datamarket/internal/pricing"
)

// Version selects one of the paper's mechanism configurations.
type Version int

const (
	// VersionPure is Algorithm 1*: no reserve, no uncertainty.
	VersionPure Version = iota
	// VersionUncertainty is Algorithm 2*: uncertainty buffer, no reserve.
	VersionUncertainty
	// VersionReserve is Algorithm 1: reserve price constraint.
	VersionReserve
	// VersionReserveUncertainty is Algorithm 2: reserve and uncertainty.
	VersionReserveUncertainty
	// VersionRiskAverse is the baseline that posts the reserve each round.
	VersionRiskAverse
)

// String renders the version label used in the paper's legends.
func (v Version) String() string {
	switch v {
	case VersionPure:
		return "Pure Version"
	case VersionUncertainty:
		return "With Uncertainty"
	case VersionReserve:
		return "With Reserve Price"
	case VersionReserveUncertainty:
		return "With Reserve Price and Uncertainty"
	case VersionRiskAverse:
		return "Risk-Averse Baseline"
	default:
		return fmt.Sprintf("Version(%d)", int(v))
	}
}

// UsesReserve reports whether the version honours reserve prices.
func (v Version) UsesReserve() bool {
	return v == VersionReserve || v == VersionReserveUncertainty || v == VersionRiskAverse
}

// UsesUncertainty reports whether the version carries the buffer δ.
func (v Version) UsesUncertainty() bool {
	return v == VersionUncertainty || v == VersionReserveUncertainty
}

// AllVersions lists the four mechanism configurations of Fig. 4.
var AllVersions = []Version{
	VersionPure, VersionUncertainty, VersionReserve, VersionReserveUncertainty,
}

// Series is a measured curve: cumulative regret and regret ratio sampled
// at checkpoints, plus end-of-run summaries.
type Series struct {
	Label       string
	N           int
	T           int
	Checkpoints []int
	CumRegret   []float64
	RegretRatio []float64

	FinalRegret float64
	FinalRatio  float64
	Table       pricing.TableRow
	Counters    pricing.Counters
}

// Checkpoints returns ~pointsPerDecade log-spaced round indices in [1, T],
// always including T — the x-axes of Fig. 4 and Fig. 5.
func Checkpoints(T, pointsPerDecade int) []int {
	if T < 1 {
		return nil
	}
	if pointsPerDecade < 1 {
		pointsPerDecade = 1
	}
	seen := map[int]bool{}
	var out []int
	add := func(t int) {
		if t >= 1 && t <= T && !seen[t] {
			seen[t] = true
			out = append(out, t)
		}
	}
	add(1)
	// Log-spaced grid.
	for decade := 1; ; decade *= 10 {
		if decade > T {
			break
		}
		for k := 1; k <= pointsPerDecade; k++ {
			t := int(float64(decade) * math.Pow(10, float64(k)/float64(pointsPerDecade)))
			add(t)
		}
	}
	add(T)
	// `seen` deduplicates; the grid is generated in increasing order
	// except possibly the final cap, so one bubble pass suffices.
	for i := 1; i < len(out); i++ {
		if out[i] < out[i-1] {
			out[i], out[i-1] = out[i-1], out[i]
		}
	}
	return out
}
