package experiment

import (
	"fmt"
	"math"

	"datamarket/internal/dataset"
	"datamarket/internal/feature"
	"datamarket/internal/linalg"
	"datamarket/internal/pricing"
)

// ImpressionConfig parameterizes Application 3 (§V-C): pricing ad
// impressions by click-through rate under the logistic model over an
// Avazu-style click log.
type ImpressionConfig struct {
	// HashDim is the one-hot hashing dimension (128 or 1024 in Fig. 5(c)).
	HashDim int
	// T is the number of priced impressions.
	T int
	// FitRounds is the number of impressions used for the FTRL refit that
	// produces θ*; 0 means 3·T/2 capped at 200k.
	FitRounds int
	// Dense prices over only the coordinates with nonzero learned weight
	// (the paper's "dense case"); otherwise the full hashed vector is
	// used (the "sparse case").
	Dense bool
	// Threshold overrides the exploration threshold ε in score space; the
	// Theorem 1 schedule n²/T is vacuous at n = 1024, so Fig. 5(c) runs
	// use a practical default of 0.05 when this is 0 (see EXPERIMENTS.md).
	Threshold float64
	// Seed drives everything.
	Seed uint64
	// Checkpoints are the sampling rounds (empty = log-spaced default).
	Checkpoints []int
}

// ImpressionResult extends Series with the offline fit statistics.
type ImpressionResult struct {
	Series
	// FitLogLoss is the FTRL training loss (paper: 0.420/0.406).
	FitLogLoss float64
	// NonzeroWeights is the learned sparsity (paper: 21/23).
	NonzeroWeights int
	// PricedDim is the dimension the mechanism actually runs at (HashDim
	// in the sparse case; NonzeroWeights in the dense case).
	PricedDim int
}

// RunImpressionApp reproduces one curve of Fig. 5(c): fit θ* with
// FTRL-Proximal on the stream, then price impressions online with the
// pure (no reserve) mechanism under the logistic model, in the sparse or
// dense representation.
func RunImpressionApp(cfg ImpressionConfig) (*ImpressionResult, error) {
	if cfg.HashDim < 2 {
		return nil, fmt.Errorf("experiment: HashDim must be ≥ 2, got %d", cfg.HashDim)
	}
	if cfg.T < 1 {
		return nil, fmt.Errorf("experiment: T must be ≥ 1, got %d", cfg.T)
	}
	if cfg.Threshold < 0 {
		return nil, fmt.Errorf("experiment: negative Threshold %g", cfg.Threshold)
	}
	actives := 21
	if cfg.HashDim >= 1024 {
		actives = 23
	}
	stream, err := dataset.NewAvazuStream(dataset.AvazuConfig{
		HashDim: cfg.HashDim, ActiveWeights: actives, Seed: cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	fitRounds := cfg.FitRounds
	if fitRounds == 0 {
		fitRounds = 40000
	}
	// L1 must scale with the √(per-coordinate hit count) growth of FTRL's
	// z accumulators to keep the learned vector at the paper's sparsity
	// (~21–23 nonzeros): each coordinate is hit ≈ fitRounds·|fields|/n
	// times, and the calibration point is 90 at ≈ 4060 hits (n = 128,
	// 40k rounds).
	hits := float64(fitRounds) * float64(len(dataset.AvazuFields)) / float64(cfg.HashDim)
	l1 := 90 * math.Sqrt(hits/4060)
	theta, fitLoss, err := dataset.FitFTRLOnStream(stream, fitRounds, 0.1, l1)
	if err != nil {
		return nil, err
	}
	nz := feature.NonzeroIndices(theta, 0)

	// Build the priced representation.
	pricedDim := cfg.HashDim
	priceTheta := theta
	project := func(x linalg.Vector) (linalg.Vector, error) { return x, nil }
	label := fmt.Sprintf("Sparse (n=%d)", cfg.HashDim)
	if cfg.Dense {
		if len(nz) < 1 {
			return nil, fmt.Errorf("experiment: dense case impossible, no nonzero weights")
		}
		pricedDim = len(nz)
		pt, err := feature.Project(theta, nz)
		if err != nil {
			return nil, err
		}
		priceTheta = pt
		project = func(x linalg.Vector) (linalg.Vector, error) { return feature.Project(x, nz) }
		label = fmt.Sprintf("Dense (n=%d)", cfg.HashDim)
	}

	eps := cfg.Threshold
	if eps == 0 {
		eps = 0.05
	}
	nm, err := pricing.NewNonlinear(pricing.LogisticModel(), pricedDim,
		priceTheta.Norm2()*1.5+1,
		pricing.WithThreshold(eps))
	if err != nil {
		return nil, err
	}

	cps := cfg.Checkpoints
	if len(cps) == 0 {
		cps = Checkpoints(cfg.T, 5)
	}
	res := &ImpressionResult{
		Series: Series{
			Label: label, N: pricedDim, T: cfg.T, Checkpoints: cps,
		},
		FitLogLoss:     fitLoss,
		NonzeroWeights: len(nz),
		PricedDim:      pricedDim,
	}
	tracker := pricing.NewTracker(false)
	next := 0
	logistic := pricing.LogisticModel()
	for t := 1; t <= cfg.T; t++ {
		_, xFull := stream.Next()
		x, err := project(xFull)
		if err != nil {
			return nil, err
		}
		// The market value of an impression is its CTR under the learned
		// model (§V-C) — the adversary prices what the model believes.
		v := logistic.Value(x, priceTheta)
		quote, err := nm.PostPrice(x, 0)
		if err != nil {
			return nil, fmt.Errorf("experiment: impression round %d: %w", t, err)
		}
		if quote.Decision != pricing.DecisionSkip {
			if err := nm.Observe(pricing.Sold(quote.Price, v)); err != nil {
				return nil, err
			}
		}
		tracker.Record(v, 0, quote)
		for next < len(cps) && cps[next] == t {
			res.CumRegret = append(res.CumRegret, tracker.CumulativeRegret())
			res.RegretRatio = append(res.RegretRatio, tracker.RegretRatio())
			next++
		}
	}
	res.FinalRegret = tracker.CumulativeRegret()
	res.FinalRatio = tracker.RegretRatio()
	res.Table = tracker.Table()
	res.Counters = nm.Counters()
	return res, nil
}

// Fig5cCells runs the four Fig. 5(c) curves: n ∈ {128, 1024} × {sparse,
// dense}. T applies to each curve.
func Fig5cCells(T int, seed uint64) ([]*ImpressionResult, error) {
	var out []*ImpressionResult
	for _, n := range []int{128, 1024} {
		for _, dense := range []bool{false, true} {
			r, err := RunImpressionApp(ImpressionConfig{
				HashDim: n, T: T, Dense: dense, Seed: seed,
			})
			if err != nil {
				return nil, fmt.Errorf("experiment: Fig5c n=%d dense=%v: %w", n, dense, err)
			}
			out = append(out, r)
		}
	}
	return out, nil
}
