package experiment

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestCheckpoints(t *testing.T) {
	cps := Checkpoints(1000, 3)
	if cps[0] != 1 {
		t.Fatalf("first checkpoint = %d", cps[0])
	}
	if cps[len(cps)-1] != 1000 {
		t.Fatalf("last checkpoint = %d", cps[len(cps)-1])
	}
	for i := 1; i < len(cps); i++ {
		if cps[i] <= cps[i-1] {
			t.Fatalf("checkpoints not strictly increasing: %v", cps)
		}
	}
	if len(Checkpoints(0, 3)) != 0 {
		t.Fatal("T=0 should have no checkpoints")
	}
	one := Checkpoints(1, 3)
	if len(one) != 1 || one[0] != 1 {
		t.Fatalf("T=1 checkpoints = %v", one)
	}
	// Degenerate pointsPerDecade is clamped.
	if len(Checkpoints(100, 0)) == 0 {
		t.Fatal("clamped pointsPerDecade broke the grid")
	}
}

func TestVersionProperties(t *testing.T) {
	if VersionPure.UsesReserve() || VersionPure.UsesUncertainty() {
		t.Fatal("pure version flags wrong")
	}
	if !VersionReserve.UsesReserve() || VersionReserve.UsesUncertainty() {
		t.Fatal("reserve version flags wrong")
	}
	if VersionUncertainty.UsesReserve() || !VersionUncertainty.UsesUncertainty() {
		t.Fatal("uncertainty version flags wrong")
	}
	if !VersionReserveUncertainty.UsesReserve() || !VersionReserveUncertainty.UsesUncertainty() {
		t.Fatal("combined version flags wrong")
	}
	if !VersionRiskAverse.UsesReserve() {
		t.Fatal("baseline must use reserve")
	}
	for _, v := range append(append([]Version{}, AllVersions...), VersionRiskAverse) {
		if v.String() == "" || strings.HasPrefix(v.String(), "Version(") {
			t.Fatalf("missing label for version %d", int(v))
		}
	}
	if Version(42).String() != "Version(42)" {
		t.Fatal("unknown version label wrong")
	}
}

func TestRunLinearAppValidation(t *testing.T) {
	bad := []LinearAppConfig{
		{N: 0, T: 10, Owners: 10},
		{N: 2, T: 0, Owners: 10},
		{N: 20, T: 10, Owners: 5},
		{N: 2, T: 10, Owners: 10, Delta: -1},
	}
	for i, cfg := range bad {
		if _, err := RunLinearApp(cfg); err == nil {
			t.Fatalf("config %d should fail: %+v", i, cfg)
		}
	}
}

func TestRunLinearAppOneDimensional(t *testing.T) {
	// §V-A one-dimensional discussion: the feature is constant 1, the
	// reserve constant 1, the market value constant √2.
	s, err := RunLinearApp(LinearAppConfig{
		N: 1, T: 100, Owners: 50, Version: VersionReserve, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s.Table.MarketValue.Mean-math.Sqrt2) > 1e-9 || s.Table.MarketValue.Std > 1e-9 {
		t.Fatalf("market value = %v (%v), want constant √2",
			s.Table.MarketValue.Mean, s.Table.MarketValue.Std)
	}
	if math.Abs(s.Table.Reserve.Mean-1) > 1e-9 || s.Table.Reserve.Std > 1e-9 {
		t.Fatalf("reserve = %v (%v), want constant 1", s.Table.Reserve.Mean, s.Table.Reserve.Std)
	}
	// Regret per round must be tiny after bisection converges.
	if s.FinalRatio > 0.1 {
		t.Fatalf("1-D regret ratio = %v", s.FinalRatio)
	}
}

func TestLinearAppPaperShape(t *testing.T) {
	// A scaled-down Fig. 4 cell: all four versions on the same stream.
	const (
		n      = 10
		T      = 3000
		owners = 100
	)
	series, err := Fig4Cell(n, T, owners, 0.01, 0, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 4 {
		t.Fatalf("got %d series", len(series))
	}
	byVersion := map[string]*Series{}
	for _, s := range series {
		byVersion[s.Label] = s
		if s.FinalRegret < 0 {
			t.Fatalf("%s: negative regret", s.Label)
		}
		if len(s.CumRegret) != len(s.Checkpoints) {
			t.Fatalf("%s: %d samples for %d checkpoints", s.Label, len(s.CumRegret), len(s.Checkpoints))
		}
		// Cumulative regret must be non-decreasing.
		for i := 1; i < len(s.CumRegret); i++ {
			if s.CumRegret[i] < s.CumRegret[i-1]-1e-9 {
				t.Fatalf("%s: cumulative regret decreased", s.Label)
			}
		}
	}
	pure := byVersion[VersionPure.String()]
	reserve := byVersion[VersionReserve.String()]
	uncertain := byVersion[VersionUncertainty.String()]
	// Paper headline: the reserve price reduces cumulative regret.
	if reserve.FinalRegret > pure.FinalRegret*1.05 {
		t.Fatalf("reserve (%v) did not reduce regret vs pure (%v)",
			reserve.FinalRegret, pure.FinalRegret)
	}
	// Uncertainty costs regret relative to the pure version.
	if uncertain.FinalRegret < pure.FinalRegret*0.8 {
		t.Fatalf("uncertainty (%v) implausibly beat pure (%v)",
			uncertain.FinalRegret, pure.FinalRegret)
	}
	// All learning versions end with modest regret ratios.
	for _, s := range series {
		if s.FinalRatio > 0.5 {
			t.Fatalf("%s: final ratio %v too high", s.Label, s.FinalRatio)
		}
	}
}

func TestLinearAppColdStartMitigation(t *testing.T) {
	// Fig. 5(a) claim: at small t the reserve version's regret ratio is
	// far below the pure version's. The cold-start window lasts on the
	// order of n rounds (the reserve binds until the ellipsoid center has
	// risen along most directions), so probe t ≲ n at a larger n.
	const (
		n      = 40
		T      = 500
		owners = 200
	)
	cps := []int{10, 20, 40, T}
	run := func(v Version) *Series {
		s, err := RunLinearApp(LinearAppConfig{
			N: n, T: T, Owners: owners, Version: v, Seed: 21, Checkpoints: cps,
		})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	pure := run(VersionPure)
	reserve := run(VersionReserve)
	better := 0
	for i := 0; i < 3; i++ {
		if reserve.RegretRatio[i] < pure.RegretRatio[i] {
			better++
		}
	}
	if better < 2 {
		t.Fatalf("reserve did not mitigate cold start: pure %v vs reserve %v",
			pure.RegretRatio[:3], reserve.RegretRatio[:3])
	}
	// And the advantage persists through the end of the run.
	if reserve.FinalRatio > pure.FinalRatio*1.05 {
		t.Fatalf("reserve final ratio %v above pure %v", reserve.FinalRatio, pure.FinalRatio)
	}
}

func TestFig5aIncludesBaselineAndOrdering(t *testing.T) {
	series, err := Fig5aCell(8, 2000, 80, 0.01, 0, 9)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 5 {
		t.Fatalf("got %d series", len(series))
	}
	baseline := series[4]
	if baseline.Label != VersionRiskAverse.String() {
		t.Fatalf("last series = %s", baseline.Label)
	}
	reserve := series[2]
	// The headline §V-A comparison: the mechanism beats always-reserve.
	if !(reserve.FinalRatio < baseline.FinalRatio) {
		t.Fatalf("reserve ratio %v not below baseline %v",
			reserve.FinalRatio, baseline.FinalRatio)
	}
}

func TestTable1RowSane(t *testing.T) {
	row, err := Table1Row(10, 500, 50, 3)
	if err != nil {
		t.Fatal(err)
	}
	if row.MarketValue.Count != 500 {
		t.Fatalf("count = %d", row.MarketValue.Count)
	}
	// Market values exceed reserves on average (the §V-A construction).
	if !(row.MarketValue.Mean > row.Reserve.Mean) {
		t.Fatalf("value mean %v not above reserve mean %v",
			row.MarketValue.Mean, row.Reserve.Mean)
	}
	if row.Regret.Mean < 0 {
		t.Fatal("negative mean regret")
	}
}

func TestWriteSeriesTableAndCSV(t *testing.T) {
	series, err := Fig4Cell(3, 200, 30, 0.01, 0, 5)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteSeriesTable(&buf, "Fig 4 test", series, false); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Fig 4 test") || !strings.Contains(out, "Pure Version") {
		t.Fatalf("table output missing headers:\n%s", out)
	}
	buf.Reset()
	if err := WriteSeriesCSV(&buf, series, true); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != len(series[0].Checkpoints)+1 {
		t.Fatalf("CSV has %d lines, want %d", len(lines), len(series[0].Checkpoints)+1)
	}
	if err := WriteSeriesTable(&buf, "x", nil, false); err == nil {
		t.Fatal("expected error for empty series")
	}
	if err := WriteSeriesCSV(&buf, nil, false); err == nil {
		t.Fatal("expected error for empty series")
	}
}

func TestWriteTable1(t *testing.T) {
	var buf bytes.Buffer
	err := WriteTable1(&buf, []Table1Spec{{N: 1, T: 50}, {N: 4, T: 100}}, 40, 11)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Table I") || !strings.Contains(out, "Market Value") {
		t.Fatalf("Table I output malformed:\n%s", out)
	}
}
