package experiment

import (
	"fmt"
	"math"

	"datamarket/internal/linalg"
	"datamarket/internal/pricing"
)

// Lemma8Result compares the paper's mechanism against the ablation that is
// allowed to cut on conservative feedback, under the adversarial stream of
// Lemma 8 / Fig. 6.
type Lemma8Result struct {
	T                    int
	DefaultPhase2Regret  float64
	AblationPhase2Regret float64
	DefaultExploratory   int
	AblationExploratory  int
	// WidthAtSwitch is the ellipsoid width along the second coordinate
	// when the adversary switches direction — the quantity that explodes
	// exponentially under the ablation.
	DefaultWidthAtSwitch  float64
	AblationWidthAtSwitch float64
}

// RunLemma8 executes the two-phase adversary: first half pins x = e₁ with
// reserve equal to the middle price; second half pins x = e₂ with no
// reserve. Returns the phase-2 damage for both variants.
func RunLemma8(T int) (*Lemma8Result, error) {
	if T < 20 || T%2 != 0 {
		return nil, fmt.Errorf("experiment: Lemma 8 needs an even T ≥ 20, got %d", T)
	}
	theta := linalg.VectorOf(0.3, 0.4)
	const eps = 0.01
	res := &Lemma8Result{T: T}

	run := func(ablation bool) (phase2Regret float64, phase2Expl int, widthAtSwitch float64, err error) {
		opts := []pricing.Option{pricing.WithReserve(), pricing.WithThreshold(eps)}
		if ablation {
			opts = append(opts, pricing.WithConservativeCuts())
		}
		m, err := pricing.New(2, 1, opts...)
		if err != nil {
			return 0, 0, 0, err
		}
		e1 := linalg.VectorOf(1, 0)
		e2 := linalg.VectorOf(0, 1)
		half := T / 2
		for i := 0; i < half; i++ {
			lo, hi := m.ValueBounds(e1)
			reserve := (lo + hi) / 2
			v := e1.Dot(theta)
			q, err := m.PostPrice(e1, reserve)
			if err != nil {
				return 0, 0, 0, err
			}
			if q.Decision != pricing.DecisionSkip {
				if err := m.Observe(pricing.Sold(q.Price, v)); err != nil {
					return 0, 0, 0, err
				}
			}
		}
		lo2, hi2 := m.ValueBounds(e2)
		widthAtSwitch = hi2 - lo2
		before := m.Counters().Exploratory
		tracker := pricing.NewTracker(false)
		for i := 0; i < T-half; i++ {
			v := e2.Dot(theta)
			q, err := m.PostPrice(e2, math.Inf(-1))
			if err != nil {
				return 0, 0, 0, err
			}
			if q.Decision != pricing.DecisionSkip {
				if err := m.Observe(pricing.Sold(q.Price, v)); err != nil {
					return 0, 0, 0, err
				}
			}
			tracker.Record(v, math.Inf(-1), q)
		}
		return tracker.CumulativeRegret(), m.Counters().Exploratory - before, widthAtSwitch, nil
	}

	var err error
	if res.AblationPhase2Regret, res.AblationExploratory, res.AblationWidthAtSwitch, err = run(true); err != nil {
		return nil, err
	}
	if res.DefaultPhase2Regret, res.DefaultExploratory, res.DefaultWidthAtSwitch, err = run(false); err != nil {
		return nil, err
	}
	return res, nil
}

// Theorem3Point is one (T, regret) sample of the 1-D scaling experiment.
type Theorem3Point struct {
	T         int
	CumRegret float64
	// LogT is log₂(T), the predicted growth scale.
	LogT float64
}

// RunTheorem3 sweeps horizons and measures cumulative regret of the 1-D
// interval mechanism with ε = log₂(T)/T, verifying the O(log T) claim.
func RunTheorem3(horizons []int, seed uint64) ([]Theorem3Point, error) {
	if len(horizons) == 0 {
		return nil, fmt.Errorf("experiment: no horizons")
	}
	out := make([]Theorem3Point, 0, len(horizons))
	for _, T := range horizons {
		if T < 2 {
			return nil, fmt.Errorf("experiment: horizon %d too small", T)
		}
		m, err := pricing.NewInterval(0, 2,
			pricing.WithThreshold(pricing.DefaultThreshold(1, T, 0)))
		if err != nil {
			return nil, err
		}
		// Fixed scalar weight √2 as in the paper's 1-D discussion; the
		// scalar feature is the (constant) normalized total compensation.
		theta := math.Sqrt2
		tracker := pricing.NewTracker(false)
		for t := 0; t < T; t++ {
			x := 1.0
			v := x * theta
			q, err := m.PostPrice(x, math.Inf(-1))
			if err != nil {
				return nil, err
			}
			if err := m.Observe(pricing.Sold(q.Price, v)); err != nil {
				return nil, err
			}
			tracker.Record(v, math.Inf(-1), q)
		}
		out = append(out, Theorem3Point{
			T: T, CumRegret: tracker.CumulativeRegret(), LogT: math.Log2(float64(T)),
		})
	}
	return out, nil
}

// Fig1Point samples the single-round regret function of Fig. 1.
type Fig1Point struct {
	Posted float64
	Regret float64
}

// RunFig1 evaluates R(p) for a grid of posted prices around a fixed
// market value and reserve — the piecewise, asymmetric curve of Fig. 1.
func RunFig1(value, reserve float64, points int) ([]Fig1Point, error) {
	if points < 2 {
		return nil, fmt.Errorf("experiment: need at least 2 grid points")
	}
	if value <= 0 || reserve < 0 {
		return nil, fmt.Errorf("experiment: need positive value and non-negative reserve")
	}
	hi := 1.5 * value
	out := make([]Fig1Point, points)
	for i := range out {
		p := hi * float64(i) / float64(points-1)
		if p < reserve {
			// The posted price is floored at the reserve.
			p = reserve
		}
		out[i] = Fig1Point{Posted: p, Regret: pricing.SingleRoundRegret(value, reserve, p)}
	}
	return out, nil
}
