package experiment

import (
	"fmt"
	"math"
	"runtime"
	"time"

	"datamarket/internal/histo"
	"datamarket/internal/linalg"
	"datamarket/internal/pricing"
	"datamarket/internal/randx"
)

// OverheadResult reports the §V-D efficiency metrics for one application
// configuration: the mean per-round latency of posting a price plus
// updating the knowledge set, and the resident memory attributable to the
// mechanism state.
type OverheadResult struct {
	Name            string
	N               int
	Rounds          int
	LatencyPerRound time.Duration
	// LatencyP50 and LatencyP99 are per-round quantiles; the mean alone
	// hides the ellipsoid-cut rounds, which cost an n×n pass.
	LatencyP50 time.Duration
	LatencyP99 time.Duration
	// MechanismBytes estimates the mechanism's working set (the n×n shape
	// matrix plus vectors); the paper reports whole-process RSS, which for
	// Python is dominated by the interpreter — this is the honest Go
	// equivalent.
	MechanismBytes uint64
	// ProcessBytes is the Go heap in use after the run (runtime.MemStats).
	ProcessBytes uint64
}

// MeasureLinearOverhead times the §V-A configuration (linear model,
// version with reserve) at dimension n for the given number of rounds.
func MeasureLinearOverhead(n, rounds int, seed uint64) (*OverheadResult, error) {
	if n < 1 || rounds < 1 {
		return nil, fmt.Errorf("experiment: bad overhead config n=%d rounds=%d", n, rounds)
	}
	m, err := pricing.New(n, 2*math.Sqrt(float64(n)),
		pricing.WithReserve(),
		pricing.WithThreshold(pricing.DefaultThreshold(n, rounds, 0)))
	if err != nil {
		return nil, err
	}
	r := randx.New(seed)
	theta := r.NormalVector(n, 1)
	for i := range theta {
		theta[i] = math.Abs(theta[i])
	}
	theta.Normalize()
	theta.Scale(math.Sqrt(2 * float64(n)))

	// Pre-generate the workload so only mechanism time is measured.
	xs := make([]linalg.Vector, rounds)
	qs := make([]float64, rounds)
	vs := make([]float64, rounds)
	for i := range xs {
		x := r.OnSphere(n)
		for j := range x {
			x[j] = math.Abs(x[j])
		}
		xs[i] = x
		qs[i] = x.Sum() * 0.8
		vs[i] = x.Dot(theta)
	}
	lats := histo.New()
	start := time.Now()
	for i := 0; i < rounds; i++ {
		t0 := time.Now()
		quote, err := m.PostPrice(xs[i], qs[i])
		if err != nil {
			return nil, err
		}
		if quote.Decision != pricing.DecisionSkip {
			if err := m.Observe(pricing.Sold(quote.Price, vs[i])); err != nil {
				return nil, err
			}
		}
		lats.RecordDuration(time.Since(t0))
	}
	elapsed := time.Since(start)

	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return &OverheadResult{
		Name:            fmt.Sprintf("noisy linear query (n=%d)", n),
		N:               n,
		Rounds:          rounds,
		LatencyPerRound: elapsed / time.Duration(rounds),
		LatencyP50:      time.Duration(lats.Quantile(0.5)),
		LatencyP99:      time.Duration(lats.Quantile(0.99)),
		MechanismBytes:  mechanismBytes(n),
		ProcessBytes:    ms.HeapInuse,
	}, nil
}

// mechanismBytes estimates the mechanism working set: the shape matrix
// (n² float64), the center and scratch vectors (≈ 4n float64).
func mechanismBytes(n int) uint64 {
	return uint64(8 * (n*n + 4*n))
}
