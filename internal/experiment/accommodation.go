package experiment

import (
	"fmt"
	"math"

	"datamarket/internal/dataset"
	"datamarket/internal/feature"
	"datamarket/internal/learn"
	"datamarket/internal/linalg"
	"datamarket/internal/pricing"
)

// AccommodationConfig parameterizes Application 2 (§V-B): pricing
// accommodation rentals under the log-linear market value model over an
// Airbnb-style listing table.
type AccommodationConfig struct {
	// Listings is the table size (the paper's is 74,111).
	Listings int
	// LogReserveRatio is log(q)/log(v): 0 disables the reserve (pure
	// version); the paper sweeps {0.4, 0.6, 0.8}.
	LogReserveRatio float64
	// RiskAverse replaces the mechanism with the always-post-reserve
	// baseline (requires LogReserveRatio > 0).
	RiskAverse bool
	// Threshold overrides the exploration threshold ε in log-price space;
	// 0 means the Theorem 1 schedule n²/T (appropriate at the paper's
	// T = 74,111, loose at small T).
	Threshold float64
	// Seed drives generation and the stream order.
	Seed uint64
	// Checkpoints are the sampling rounds (empty = log-spaced default).
	Checkpoints []int
}

// AccommodationResult extends Series with the offline fit quality.
type AccommodationResult struct {
	Series
	// TestMSE is the held-out MSE of the OLS refit (paper: 0.226).
	TestMSE float64
	// FeatureDim is the model dimension (55 listing features + bias).
	FeatureDim int
}

// RunAccommodationApp reproduces one curve of Fig. 5(b): generate
// listings, re-learn the hedonic coefficients with OLS exactly as the
// paper does, then price the stream online under the log-linear model.
func RunAccommodationApp(cfg AccommodationConfig) (*AccommodationResult, error) {
	if cfg.Listings < 100 {
		return nil, fmt.Errorf("experiment: need ≥ 100 listings, got %d", cfg.Listings)
	}
	if cfg.LogReserveRatio < 0 || cfg.LogReserveRatio >= 1 {
		return nil, fmt.Errorf("experiment: LogReserveRatio %g out of [0, 1)", cfg.LogReserveRatio)
	}
	if cfg.RiskAverse && cfg.LogReserveRatio == 0 {
		return nil, fmt.Errorf("experiment: risk-averse baseline needs a reserve ratio")
	}
	if cfg.Threshold < 0 {
		return nil, fmt.Errorf("experiment: negative Threshold %g", cfg.Threshold)
	}
	listings, _, _, err := dataset.GenerateListings(dataset.AirbnbConfig{
		Count: cfg.Listings, Seed: cfg.Seed, NoiseStd: 0.475,
	})
	if err != nil {
		return nil, err
	}
	// Featurize and standardize columns (keeps the ellipsoid probe norms
	// moderate; see DESIGN.md §5), then append a bias feature so the
	// intercept is part of θ*.
	raw := make([]linalg.Vector, len(listings))
	y := make(linalg.Vector, len(listings))
	for i := range listings {
		x, err := dataset.FeaturizeListing(&listings[i])
		if err != nil {
			return nil, err
		}
		raw[i] = x
		y[i] = listings[i].LogPrice
	}
	std, err := feature.FitStandardizer(raw)
	if err != nil {
		return nil, err
	}
	dim := dataset.AirbnbFeatureDim + 1
	rows := make([]linalg.Vector, len(raw))
	for i, x := range raw {
		z, err := std.Transform(x)
		if err != nil {
			return nil, err
		}
		row := make(linalg.Vector, dim)
		copy(row, z)
		row[dim-1] = 1
		rows[i] = row
	}
	// 80/20 split, OLS refit (ridge epsilon for the collinear one-hots).
	trainIdx, testIdx, err := learn.TrainTestSplit(len(rows), 5, 1)
	if err != nil {
		return nil, err
	}
	trX := make([]linalg.Vector, len(trainIdx))
	trY := make(linalg.Vector, len(trainIdx))
	for k, i := range trainIdx {
		trX[k] = rows[i]
		trY[k] = y[i]
	}
	model, err := learn.FitLinear(trX, trY, learn.FitOptions{Ridge: 1e-8})
	if err != nil {
		return nil, err
	}
	teX := make([]linalg.Vector, len(testIdx))
	teY := make(linalg.Vector, len(testIdx))
	for k, i := range testIdx {
		teX[k] = rows[i]
		teY[k] = y[i]
	}
	mse, err := model.MSE(teX, teY)
	if err != nil {
		return nil, err
	}
	theta := model.Coef // over [features, bias]

	// Online pricing of the full stream under the log-linear model.
	T := len(rows)
	var poster pricing.Poster
	label := "Pure Version"
	if cfg.RiskAverse {
		poster = pricing.NewRiskAverse()
		label = fmt.Sprintf("Risk-Averse Baseline (ratio %.1f)", cfg.LogReserveRatio)
	} else {
		eps := cfg.Threshold
		if eps == 0 {
			eps = pricing.DefaultThreshold(dim, T, 0)
		}
		opts := []pricing.Option{pricing.WithThreshold(eps)}
		if cfg.LogReserveRatio > 0 {
			opts = append(opts, pricing.WithReserve())
			label = fmt.Sprintf("With Reserve Price (ratio %.1f)", cfg.LogReserveRatio)
		}
		nm, err := pricing.NewNonlinear(pricing.LogLinearModel(), dim, theta.Norm2()*1.5, opts...)
		if err != nil {
			return nil, err
		}
		poster = nm
	}

	cps := cfg.Checkpoints
	if len(cps) == 0 {
		cps = Checkpoints(T, 5)
	}
	res := &AccommodationResult{
		Series: Series{
			Label: label, N: dim, T: T, Checkpoints: cps,
		},
		TestMSE:    mse,
		FeatureDim: dim,
	}
	tracker := pricing.NewTracker(false)
	next := 0
	for t := 1; t <= T; t++ {
		x := rows[t-1]
		logV := x.Dot(theta)
		v := math.Exp(logV)
		reserve := math.Inf(-1)
		if cfg.LogReserveRatio > 0 {
			reserve = math.Exp(cfg.LogReserveRatio * logV)
		}
		quote, err := poster.PostPrice(x, reserve)
		if err != nil {
			return nil, fmt.Errorf("experiment: accommodation round %d: %w", t, err)
		}
		if quote.Decision != pricing.DecisionSkip {
			if err := poster.Observe(pricing.Sold(quote.Price, v)); err != nil {
				return nil, err
			}
		}
		tracker.Record(v, reserve, quote)
		for next < len(cps) && cps[next] == t {
			res.CumRegret = append(res.CumRegret, tracker.CumulativeRegret())
			res.RegretRatio = append(res.RegretRatio, tracker.RegretRatio())
			next++
		}
	}
	res.FinalRegret = tracker.CumulativeRegret()
	res.FinalRatio = tracker.RegretRatio()
	res.Table = tracker.Table()
	if nm, ok := poster.(*pricing.NonlinearMechanism); ok {
		res.Counters = nm.Counters()
	}
	return res, nil
}

// Fig5bCells runs the Fig. 5(b) sweep: pure version plus reserve ratios
// {0.4, 0.6, 0.8}, each with its risk-averse counterpart.
func Fig5bCells(listings int, seed uint64) ([]*AccommodationResult, error) {
	var out []*AccommodationResult
	run := func(ratio float64, riskAverse bool) error {
		r, err := RunAccommodationApp(AccommodationConfig{
			Listings: listings, LogReserveRatio: ratio, RiskAverse: riskAverse, Seed: seed,
		})
		if err != nil {
			return err
		}
		out = append(out, r)
		return nil
	}
	if err := run(0, false); err != nil {
		return nil, err
	}
	for _, ratio := range []float64{0.4, 0.6, 0.8} {
		if err := run(ratio, false); err != nil {
			return nil, err
		}
		if err := run(ratio, true); err != nil {
			return nil, err
		}
	}
	return out, nil
}
