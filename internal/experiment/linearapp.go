package experiment

import (
	"fmt"
	"math"

	"datamarket/internal/feature"
	"datamarket/internal/linalg"
	"datamarket/internal/pricing"
	"datamarket/internal/privacy"
	"datamarket/internal/randx"
)

// LinearAppConfig parameterizes Application 1 (§V-A): pricing noisy linear
// queries over a MovieLens-style owner population under the linear market
// value model.
type LinearAppConfig struct {
	// N is the feature dimension (1, 20, 40, 60, 80, 100 in Fig. 4).
	N int
	// T is the number of rounds.
	T int
	// Owners is the data owner population size (queries are weighted sums
	// over these owners; their compensations become the features).
	Owners int
	// Version selects the mechanism configuration.
	Version Version
	// Delta is the uncertainty buffer δ (the paper fixes 0.01 for the
	// *Uncertainty versions); ignored for versions without uncertainty.
	Delta float64
	// UniformQueryWeights draws query weights from U[−1,1]; otherwise
	// N(0,1). The paper randomizes between both; we expose the switch.
	UniformQueryWeights bool
	// Threshold overrides the exploration threshold ε; 0 means the
	// Theorem 1 schedule (max(n²/T, 4nδ), or log₂(T)/T for n = 1). The
	// schedule's constant is conservative at large n — EXPERIMENTS.md
	// reports both the schedule and a tuned ε for the n = 100 runs.
	Threshold float64
	// Seed drives all randomness (workload and noise).
	Seed uint64
	// Checkpoints are the rounds at which the curves are sampled; empty
	// means a log-spaced default.
	Checkpoints []int
}

// linearWorkload holds the §V-A market simulation state shared by all
// versions: the owner contracts/ranges, the hidden θ*, and the stream RNG.
type linearWorkload struct {
	cfg       LinearAppConfig
	ranges    linalg.Vector
	contracts []privacy.Contract
	theta     linalg.Vector
	noise     *randx.SubGaussianNoise
	rng       *randx.RNG
}

// newLinearWorkload validates the config and prepares the workload.
// Versions sharing (N, T, Owners, Seed) see the identical query stream.
func newLinearWorkload(cfg LinearAppConfig) (*linearWorkload, error) {
	if cfg.N < 1 {
		return nil, fmt.Errorf("experiment: N must be ≥ 1, got %d", cfg.N)
	}
	if cfg.T < 1 {
		return nil, fmt.Errorf("experiment: T must be ≥ 1, got %d", cfg.T)
	}
	if cfg.Owners < cfg.N {
		return nil, fmt.Errorf("experiment: Owners (%d) must be ≥ N (%d)", cfg.Owners, cfg.N)
	}
	if cfg.Delta < 0 {
		return nil, fmt.Errorf("experiment: negative Delta %g", cfg.Delta)
	}
	if cfg.Threshold < 0 {
		return nil, fmt.Errorf("experiment: negative Threshold %g", cfg.Threshold)
	}
	contract, err := privacy.NewTanhContract(1, 1)
	if err != nil {
		return nil, err
	}
	w := &linearWorkload{cfg: cfg}
	w.ranges = make(linalg.Vector, cfg.Owners)
	w.contracts = make([]privacy.Contract, cfg.Owners)
	for i := 0; i < cfg.Owners; i++ {
		w.ranges[i] = 4.5 // the MovieLens rating-scale span
		w.contracts[i] = contract
	}
	// θ* drawn positive and scaled to ‖θ*‖ = √(2n) (§V-A) so that market
	// values exceed the compensation-based reserves with high probability.
	setup := randx.NewStream(cfg.Seed, 0x7e7a)
	theta := make(linalg.Vector, cfg.N)
	if cfg.UniformQueryWeights {
		for i := range theta {
			theta[i] = setup.Float64()
		}
	} else {
		for i := range theta {
			theta[i] = math.Abs(setup.StdNormal())
		}
	}
	theta.Normalize()
	theta.Scale(math.Sqrt(2 * float64(cfg.N)))
	w.theta = theta

	if cfg.Version.UsesUncertainty() && cfg.Delta > 0 {
		sigma := randx.SigmaForBuffer(cfg.Delta, cfg.T)
		w.noise, err = randx.NewSubGaussianNoise(randx.NoiseNormal, sigma)
		if err != nil {
			return nil, err
		}
	}
	w.rng = randx.NewStream(cfg.Seed, 0x11)
	return w, nil
}

// nextRound draws one query and runs the §II-B feature pipeline, returning
// the feature vector, the reserve price, and the (possibly noisy) market
// value.
func (w *linearWorkload) nextRound() (x linalg.Vector, reserve, value float64, err error) {
	weights := make(linalg.Vector, w.cfg.Owners)
	if w.cfg.UniformQueryWeights {
		for i := range weights {
			weights[i] = w.rng.Uniform(-1, 1)
		}
	} else {
		for i := range weights {
			weights[i] = w.rng.StdNormal()
		}
	}
	k := w.rng.Intn(9) - 4
	q, err := privacy.NewLinearQuery(weights, math.Pow(10, float64(k)))
	if err != nil {
		return nil, 0, 0, err
	}
	leak, err := q.Leakages(w.ranges)
	if err != nil {
		return nil, 0, 0, err
	}
	comps, err := privacy.Compensations(leak, w.contracts)
	if err != nil {
		return nil, 0, 0, err
	}
	x, _, reserve, err = feature.CompensationFeatures(comps, w.cfg.N)
	if err != nil {
		return nil, 0, 0, err
	}
	value = x.Dot(w.theta)
	if w.noise != nil {
		value += w.noise.Sample(w.rng)
	}
	return x, reserve, value, nil
}

// newPoster builds the mechanism for the configured version.
func newPoster(cfg LinearAppConfig) (pricing.Poster, error) {
	if cfg.Version == VersionRiskAverse {
		return pricing.NewRiskAverse(), nil
	}
	delta := 0.0
	if cfg.Version.UsesUncertainty() {
		delta = cfg.Delta
	}
	eps := cfg.Threshold
	if eps == 0 {
		eps = pricing.DefaultThreshold(cfg.N, cfg.T, delta)
	}
	// Every lemma of §III-C needs ε ≥ 4nδ: below it, buffered cuts have
	// α < −1/n (too shallow to refine) once the width drops under 2nδ,
	// and the mechanism explores forever without progress. Keep tuned
	// thresholds valid by flooring them at the coupling.
	if min := 4 * float64(cfg.N) * delta; eps < min {
		eps = min
	}
	opts := []pricing.Option{pricing.WithThreshold(eps)}
	if delta > 0 {
		opts = append(opts, pricing.WithUncertainty(delta))
	}
	if cfg.Version.UsesReserve() {
		opts = append(opts, pricing.WithReserve())
	}
	// Initial knowledge: ‖θ*‖ ≤ 2√n (§V-A: R = 2√n).
	return pricing.New(cfg.N, 2*math.Sqrt(float64(cfg.N)), opts...)
}

// RunLinearApp runs Application 1 for one version and returns its series.
func RunLinearApp(cfg LinearAppConfig) (*Series, error) {
	w, err := newLinearWorkload(cfg)
	if err != nil {
		return nil, err
	}
	poster, err := newPoster(cfg)
	if err != nil {
		return nil, err
	}
	cps := cfg.Checkpoints
	if len(cps) == 0 {
		cps = Checkpoints(cfg.T, 5)
	}
	s := &Series{
		Label:       cfg.Version.String(),
		N:           cfg.N,
		T:           cfg.T,
		Checkpoints: cps,
	}
	tracker := pricing.NewTracker(false)
	next := 0
	for t := 1; t <= cfg.T; t++ {
		x, reserve, v, err := w.nextRound()
		if err != nil {
			return nil, err
		}
		quote, err := poster.PostPrice(x, reserve)
		if err != nil {
			return nil, fmt.Errorf("experiment: round %d: %w", t, err)
		}
		if quote.Decision != pricing.DecisionSkip {
			if err := poster.Observe(pricing.Sold(quote.Price, v)); err != nil {
				return nil, fmt.Errorf("experiment: round %d: %w", t, err)
			}
		}
		tracker.Record(v, reserve, quote)
		for next < len(cps) && cps[next] == t {
			s.CumRegret = append(s.CumRegret, tracker.CumulativeRegret())
			s.RegretRatio = append(s.RegretRatio, tracker.RegretRatio())
			next++
		}
	}
	s.FinalRegret = tracker.CumulativeRegret()
	s.FinalRatio = tracker.RegretRatio()
	s.Table = tracker.Table()
	if m, ok := poster.(*pricing.Mechanism); ok {
		s.Counters = m.Counters()
	}
	return s, nil
}

// Fig4Cell runs all four versions of Fig. 4 for one (n, T) cell on the
// identical workload stream and returns the four series in AllVersions
// order. threshold = 0 uses the Theorem 1 schedule.
func Fig4Cell(n, T, owners int, delta, threshold float64, seed uint64) ([]*Series, error) {
	out := make([]*Series, 0, len(AllVersions))
	for _, v := range AllVersions {
		cfg := LinearAppConfig{
			N: n, T: T, Owners: owners, Version: v, Delta: delta,
			Threshold: threshold, Seed: seed,
		}
		s, err := RunLinearApp(cfg)
		if err != nil {
			return nil, fmt.Errorf("experiment: Fig4 n=%d %s: %w", n, v, err)
		}
		out = append(out, s)
	}
	return out, nil
}

// Fig5aCell runs the four versions plus the risk-averse baseline for the
// Fig. 5(a) regret-ratio comparison. threshold = 0 uses the Theorem 1
// schedule.
func Fig5aCell(n, T, owners int, delta, threshold float64, seed uint64) ([]*Series, error) {
	versions := append(append([]Version{}, AllVersions...), VersionRiskAverse)
	out := make([]*Series, 0, len(versions))
	for _, v := range versions {
		cfg := LinearAppConfig{
			N: n, T: T, Owners: owners, Version: v, Delta: delta,
			Threshold: threshold, Seed: seed,
		}
		s, err := RunLinearApp(cfg)
		if err != nil {
			return nil, fmt.Errorf("experiment: Fig5a %s: %w", v, err)
		}
		out = append(out, s)
	}
	return out, nil
}

// Table1Row runs the version-with-reserve configuration for one (n, T)
// and returns the Table I statistics row.
func Table1Row(n, T, owners int, seed uint64) (pricing.TableRow, error) {
	s, err := RunLinearApp(LinearAppConfig{
		N: n, T: T, Owners: owners, Version: VersionReserve, Seed: seed,
	})
	if err != nil {
		return pricing.TableRow{}, err
	}
	return s.Table, nil
}
