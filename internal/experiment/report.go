package experiment

import (
	"fmt"
	"io"
	"strings"
	"text/tabwriter"
)

// WriteSeriesTable renders a set of series as an aligned text table with
// one row per checkpoint — the textual form of a figure.
func WriteSeriesTable(w io.Writer, title string, series []*Series, ratio bool) error {
	if len(series) == 0 {
		return fmt.Errorf("experiment: no series to print")
	}
	fmt.Fprintf(w, "%s\n%s\n", title, strings.Repeat("=", len(title)))
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "rounds")
	for _, s := range series {
		fmt.Fprintf(tw, "\t%s", s.Label)
	}
	fmt.Fprintln(tw)
	base := series[0]
	for i, t := range base.Checkpoints {
		fmt.Fprintf(tw, "%d", t)
		for _, s := range series {
			if i >= len(s.CumRegret) {
				fmt.Fprintf(tw, "\t-")
				continue
			}
			if ratio {
				fmt.Fprintf(tw, "\t%.4f", s.RegretRatio[i])
			} else {
				fmt.Fprintf(tw, "\t%.2f", s.CumRegret[i])
			}
		}
		fmt.Fprintln(tw)
	}
	return tw.Flush()
}

// WriteSeriesCSV renders the series as CSV for plotting.
func WriteSeriesCSV(w io.Writer, series []*Series, ratio bool) error {
	if len(series) == 0 {
		return fmt.Errorf("experiment: no series to print")
	}
	fmt.Fprintf(w, "rounds")
	for _, s := range series {
		fmt.Fprintf(w, ",%q", s.Label)
	}
	fmt.Fprintln(w)
	base := series[0]
	for i, t := range base.Checkpoints {
		fmt.Fprintf(w, "%d", t)
		for _, s := range series {
			if i >= len(s.CumRegret) {
				fmt.Fprintf(w, ",")
				continue
			}
			if ratio {
				fmt.Fprintf(w, ",%.6f", s.RegretRatio[i])
			} else {
				fmt.Fprintf(w, ",%.6f", s.CumRegret[i])
			}
		}
		fmt.Fprintln(w)
	}
	return nil
}

// Table1Spec is one requested row of Table I.
type Table1Spec struct {
	N int
	T int
}

// WriteTable1 runs and renders Table I for the requested (n, T) rows.
func WriteTable1(w io.Writer, specs []Table1Spec, owners int, seed uint64) error {
	fmt.Fprintln(w, "Table I: statistics per round, version with reserve price")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "n\tT\tMarket Value\tReserve Price\tPosted Price\tRegret")
	for _, spec := range specs {
		ownerCount := owners
		if ownerCount < spec.N {
			ownerCount = spec.N
		}
		row, err := Table1Row(spec.N, spec.T, ownerCount, seed)
		if err != nil {
			return err
		}
		fmt.Fprintf(tw, "%d\t%d\t%s\t%s\t%s\t%s\n",
			spec.N, spec.T,
			row.MarketValue.String(), row.Reserve.String(),
			row.Posted.String(), row.Regret.String())
	}
	return tw.Flush()
}

// seriesOf converts typed results into the base Series slice for the
// table writers.
func seriesOf[S interface{ base() *Series }](in []S) []*Series {
	out := make([]*Series, len(in))
	for i, s := range in {
		out[i] = s.base()
	}
	return out
}

// base accessors let the generic helper above work across result types.
func (s *Series) base() *Series              { return s }
func (r *AccommodationResult) base() *Series { return &r.Series }
func (r *ImpressionResult) base() *Series    { return &r.Series }

// SeriesOfAccommodation adapts Fig. 5(b) results for the table writers.
func SeriesOfAccommodation(in []*AccommodationResult) []*Series { return seriesOf(in) }

// SeriesOfImpression adapts Fig. 5(c) results for the table writers.
func SeriesOfImpression(in []*ImpressionResult) []*Series { return seriesOf(in) }
