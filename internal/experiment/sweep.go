package experiment

import (
	"fmt"
	"math"

	"datamarket/internal/pricing"
)

// SweepPoint is one cell of a design-choice ablation sweep.
type SweepPoint struct {
	// Param is the swept value (ε or δ depending on the sweep).
	Param float64
	// FinalRatio is the end-of-run regret ratio.
	FinalRatio float64
	// Exploratory is the number of exploratory rounds spent.
	Exploratory int
}

// ThresholdSweep measures how the exploration threshold ε trades
// exploration volume against conservative-round slack, at fixed (n, T).
// This is the ablation behind the "tuned ε" rows in EXPERIMENTS.md: the
// Theorem 1 schedule ε = n²/T minimizes the worst-case bound, while the
// empirical optimum at finite T sits higher.
func ThresholdSweep(n, T, owners int, epsilons []float64, seed uint64) ([]SweepPoint, error) {
	if len(epsilons) == 0 {
		return nil, fmt.Errorf("experiment: no epsilons to sweep")
	}
	out := make([]SweepPoint, 0, len(epsilons))
	for _, eps := range epsilons {
		if eps <= 0 {
			return nil, fmt.Errorf("experiment: non-positive epsilon %g", eps)
		}
		s, err := RunLinearApp(LinearAppConfig{
			N: n, T: T, Owners: owners, Version: VersionReserve,
			Threshold: eps, Seed: seed,
		})
		if err != nil {
			return nil, err
		}
		out = append(out, SweepPoint{
			Param: eps, FinalRatio: s.FinalRatio, Exploratory: s.Counters.Exploratory,
		})
	}
	return out, nil
}

// UncertaintySweep measures the regret cost of the buffer δ at fixed
// (n, T): δ = 0 recovers Algorithm 1; growing δ keeps θ* safe under
// noisier markets at the price of wider conservative shading (§V-A's
// "uncertainty accumulates more regret" observation). The exploration
// threshold is held at the δ = 0 schedule across the sweep so the cells
// differ only in the buffer (the Theorem 1 coupling ε ≥ 4nδ would
// otherwise change two knobs at once).
func UncertaintySweep(n, T, owners int, deltas []float64, seed uint64) ([]SweepPoint, error) {
	if len(deltas) == 0 {
		return nil, fmt.Errorf("experiment: no deltas to sweep")
	}
	// Build the mechanisms directly (bypassing the experiment runner's
	// ε ≥ 4nδ floor) so the sweep isolates δ. ε is sized for the largest
	// δ so every cell is a valid Algorithm 2 configuration.
	var maxDelta float64
	for _, d := range deltas {
		if d < 0 {
			return nil, fmt.Errorf("experiment: negative delta %g", d)
		}
		if d > maxDelta {
			maxDelta = d
		}
	}
	eps := math.Max(pricing.DefaultThreshold(n, T, 0), 4*float64(n)*maxDelta)
	out := make([]SweepPoint, 0, len(deltas))
	for _, d := range deltas {
		m, err := pricing.New(n, 2*math.Sqrt(float64(n)),
			pricing.WithReserve(),
			pricing.WithUncertainty(d),
			pricing.WithThreshold(eps))
		if err != nil {
			return nil, err
		}
		version := VersionReserveUncertainty
		if d == 0 {
			version = VersionReserve
		}
		w, err := newLinearWorkload(LinearAppConfig{
			N: n, T: T, Owners: owners, Version: version, Delta: d, Seed: seed,
		})
		if err != nil {
			return nil, err
		}
		tr := pricing.NewTracker(false)
		for t := 0; t < T; t++ {
			x, reserve, v, err := w.nextRound()
			if err != nil {
				return nil, err
			}
			q, err := m.PostPrice(x, reserve)
			if err != nil {
				return nil, err
			}
			if q.Decision != pricing.DecisionSkip {
				if err := m.Observe(pricing.Sold(q.Price, v)); err != nil {
					return nil, err
				}
			}
			tr.Record(v, reserve, q)
		}
		out = append(out, SweepPoint{
			Param: d, FinalRatio: tr.RegretRatio(), Exploratory: m.Counters().Exploratory,
		})
	}
	return out, nil
}

// SGDComparison runs the Amin et al. SGD baseline (§VI-B) against the
// ellipsoid mechanism on the identical stream and returns
// (sgdRatio, ellipsoidRatio).
func SGDComparison(n, T, owners int, seed uint64) (sgdRatio, ellRatio float64, err error) {
	run := func(p pricing.Poster) (float64, error) {
		w, err := newLinearWorkload(LinearAppConfig{
			N: n, T: T, Owners: owners, Version: VersionPure, Seed: seed,
		})
		if err != nil {
			return 0, err
		}
		tr := pricing.NewTracker(false)
		for t := 0; t < T; t++ {
			x, reserve, v, err := w.nextRound()
			if err != nil {
				return 0, err
			}
			q, err := p.PostPrice(x, reserve)
			if err != nil {
				return 0, err
			}
			if q.Decision != pricing.DecisionSkip {
				if err := p.Observe(pricing.Sold(q.Price, v)); err != nil {
					return 0, err
				}
			}
			tr.Record(v, reserve, q)
		}
		return tr.RegretRatio(), nil
	}
	sgd, err := pricing.NewSGD(n, 0.5, 1.0, true)
	if err != nil {
		return 0, 0, err
	}
	if sgdRatio, err = run(sgd); err != nil {
		return 0, 0, err
	}
	cfg := LinearAppConfig{N: n, T: T, Owners: owners, Version: VersionReserve, Seed: seed}
	ell, err := newPoster(cfg)
	if err != nil {
		return 0, 0, err
	}
	if ellRatio, err = run(ell); err != nil {
		return 0, 0, err
	}
	return sgdRatio, ellRatio, nil
}
