package store

// This file implements the record framing shared by the journal and the
// checkpoint file: length-prefixed JSON payloads guarded by CRC-32C.
// A frame is
//
//	uint32 LE payload length | uint32 LE CRC-32C(payload) | payload
//
// Reads distinguish a clean end (io.EOF exactly at a frame boundary)
// from a torn tail (a partial frame or a CRC mismatch — what a crash
// mid-append leaves behind). The journal reader treats a torn tail as
// the end of the log and truncates it; the checkpoint reader treats it
// as corruption, because checkpoints are published atomically via
// rename and can never be legitimately torn.

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"

	"datamarket/internal/pricing"
)

// frameHeaderSize is the length+CRC prefix.
const frameHeaderSize = 8

// maxFrameBytes bounds one record. A corrupt length prefix must not make
// the reader allocate gigabytes; 64 MB comfortably holds a MaxDim
// envelope (~21 MB of JSON).
const maxFrameBytes = 64 << 20

// castagnoli is the CRC-32C table (hardware-accelerated on amd64/arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// errTorn marks a partial or corrupt frame at the end of a log.
var errTorn = errors.New("store: torn frame")

// appendFrame appends the framed payload to buf and returns it.
func appendFrame(buf, payload []byte) []byte {
	var hdr [frameHeaderSize]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, castagnoli))
	buf = append(buf, hdr[:]...)
	return append(buf, payload...)
}

// readFrame reads one frame. It returns io.EOF at a clean boundary and
// errTorn for a partial frame, an oversized length, or a CRC mismatch.
func readFrame(r *bufio.Reader) ([]byte, error) {
	var hdr [frameHeaderSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, errTorn
	}
	n := binary.LittleEndian.Uint32(hdr[0:4])
	if n > maxFrameBytes {
		return nil, errTorn
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, errTorn
	}
	if crc32.Checksum(payload, castagnoli) != binary.LittleEndian.Uint32(hdr[4:8]) {
		return nil, errTorn
	}
	return payload, nil
}

// Record operations.
const (
	opPut = "put"
	opDel = "delete"
	// opCheckpoint is the meta record opening a checkpoint file; its LSN
	// is the last journal sequence number the checkpoint includes, so
	// recovery can skip journal records the checkpoint already covers.
	opCheckpoint = "checkpoint"
)

// record is the wire form of one journal or checkpoint frame.
type record struct {
	// LSN is the global, monotonically increasing sequence number.
	LSN uint64            `json:"lsn"`
	Op  string            `json:"op"`
	ID  string            `json:"id,omitempty"`
	Rev uint64            `json:"rev,omitempty"`
	Env *pricing.Envelope `json:"env,omitempty"`
}

// encodeRecord frames a record.
func encodeRecord(rec *record) ([]byte, error) {
	payload, err := json.Marshal(rec)
	if err != nil {
		return nil, fmt.Errorf("store: encoding record: %w", err)
	}
	if len(payload) > maxFrameBytes {
		return nil, fmt.Errorf("store: record of %d bytes exceeds frame limit %d", len(payload), maxFrameBytes)
	}
	return appendFrame(nil, payload), nil
}

// decodeRecord parses a frame payload.
func decodeRecord(payload []byte) (*record, error) {
	var rec record
	if err := json.Unmarshal(payload, &rec); err != nil {
		return nil, fmt.Errorf("store: decoding record: %w", err)
	}
	switch rec.Op {
	case opPut, opDel, opCheckpoint:
	default:
		return nil, fmt.Errorf("store: unknown record op %q", rec.Op)
	}
	if rec.Op == opPut && rec.Env == nil {
		return nil, fmt.Errorf("store: put record %q carries no envelope", rec.ID)
	}
	if rec.Op != opCheckpoint && rec.ID == "" {
		return nil, fmt.Errorf("store: %s record missing stream id", rec.Op)
	}
	return &rec, nil
}
