package store

import (
	"fmt"
	"testing"

	"datamarket/internal/pricing"
)

// benchEnv builds one dim-n linear envelope outside the timed region.
func benchEnv(b *testing.B, dim int) *pricing.Envelope {
	b.Helper()
	p, err := pricing.NewFamilyPoster(pricing.FamilySpec{Family: pricing.FamilyLinear, Dim: dim, Horizon: 1000})
	if err != nil {
		b.Fatal(err)
	}
	env, err := p.SnapshotEnvelope()
	if err != nil {
		b.Fatal(err)
	}
	return env
}

// BenchmarkJournalPut measures one journal append (encode + CRC frame +
// write, no fsync) of a dim-16 envelope — the per-changed-stream cost of
// a checkpoint pass.
func BenchmarkJournalPut(b *testing.B) {
	j, err := OpenJournal(JournalConfig{Dir: b.TempDir(), Fsync: FsyncNever, CompactAt: -1})
	if err != nil {
		b.Fatal(err)
	}
	defer j.Close()
	env := benchEnv(b, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := j.Put(Entry{ID: "s", Rev: uint64(i), Env: env}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkJournalCompact1000 measures folding a 1000-entry live set
// into a fresh checkpoint file.
func BenchmarkJournalCompact1000(b *testing.B) {
	j, err := OpenJournal(JournalConfig{Dir: b.TempDir(), Fsync: FsyncNever, CompactAt: -1})
	if err != nil {
		b.Fatal(err)
	}
	defer j.Close()
	env := benchEnv(b, 16)
	for i := 0; i < 1000; i++ {
		if err := j.Put(Entry{ID: fmt.Sprintf("s%04d", i), Rev: 1, Env: env}); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := j.Compact(); err != nil {
			b.Fatal(err)
		}
	}
}
