package store

// Segment management for the journal backend. The WAL is a sequence of
// numbered segment files, wal-00000001.seg, wal-00000002.seg, …; the
// highest-numbered segment is active (appends land there) and the rest
// are retired — complete, never written again, kept only until a
// compaction folds their records into the base checkpoint and deletes
// them. Segment indexes are monotonic for the lifetime of a data
// directory and never reused, so a crash can never leave two
// generations of records under one name.
//
// Torn-tail repair is a per-segment affair with a strict rule: only the
// newest segment may carry a torn tail, because only the newest segment
// was ever open for appending when a crash could hit. A torn or corrupt
// frame in any retired segment means real corruption (bit rot, manual
// truncation) and fails the open loudly instead of silently dropping
// the records behind it.

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

const (
	segmentPrefix = "wal-"
	segmentSuffix = ".seg"
	// legacyJournalFile is the pre-segmentation single-file WAL. An old
	// data directory is migrated transparently: the file replays as the
	// oldest (index-0, retired) segment and the first compaction deletes
	// it like any other retired segment.
	legacyJournalFile = "journal.wal"
)

// segmentName formats the on-disk name of segment idx.
func segmentName(idx uint64) string {
	return fmt.Sprintf("%s%08d%s", segmentPrefix, idx, segmentSuffix)
}

// segmentInfo describes one on-disk WAL segment.
type segmentInfo struct {
	index uint64
	path  string
	// bytes is the segment's valid-frame size: for retired segments the
	// file size, for the active segment the end of the last whole frame
	// (what replay found, plus every committed batch since).
	bytes int64
	// records counts the frames replay found plus those committed since.
	records int
}

// listSegments returns the data directory's segments sorted by index,
// with a legacy single-file journal (if present) first as index 0.
func listSegments(dir string) ([]segmentInfo, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("store: listing data dir: %w", err)
	}
	var segs []segmentInfo
	for _, ent := range entries {
		name := ent.Name()
		if name == legacyJournalFile {
			segs = append(segs, segmentInfo{index: 0, path: filepath.Join(dir, name)})
			continue
		}
		if !strings.HasPrefix(name, segmentPrefix) || !strings.HasSuffix(name, segmentSuffix) {
			continue
		}
		numPart := strings.TrimSuffix(strings.TrimPrefix(name, segmentPrefix), segmentSuffix)
		idx, err := strconv.ParseUint(numPart, 10, 64)
		if err != nil || idx == 0 {
			return nil, fmt.Errorf("store: unrecognized segment file %q in %s", name, dir)
		}
		segs = append(segs, segmentInfo{index: idx, path: filepath.Join(dir, name)})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].index < segs[j].index })
	for i := 1; i < len(segs); i++ {
		if segs[i].index == segs[i-1].index {
			return nil, fmt.Errorf("store: duplicate segment index %d in %s", segs[i].index, dir)
		}
	}
	return segs, nil
}

// createSegment creates (exclusively) a fresh segment file for idx.
func createSegment(dir string, idx uint64) (*os.File, error) {
	path := filepath.Join(dir, segmentName(idx))
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: creating segment %s: %w", path, err)
	}
	return f, nil
}
