package store

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"
)

// File names inside the data directory.
const (
	journalFile    = "journal.wal"
	checkpointFile = "checkpoint.ckpt"
	checkpointTmp  = "checkpoint.ckpt.tmp"
)

// FsyncPolicy selects how aggressively the journal is flushed to stable
// storage. The trade-off is the classic WAL one: "always" makes every
// acknowledged lifecycle event and checkpoint record survive a machine
// crash at the cost of one fsync per append; "interval" bounds the loss
// window to the sync interval; "never" leaves flushing to the OS page
// cache (a process crash loses nothing — the file writes happened — but
// a machine crash can lose the unflushed tail).
type FsyncPolicy string

const (
	FsyncAlways   FsyncPolicy = "always"
	FsyncInterval FsyncPolicy = "interval"
	FsyncNever    FsyncPolicy = "never"
)

// ParseFsyncPolicy validates a policy name (the -fsync flag value).
func ParseFsyncPolicy(s string) (FsyncPolicy, error) {
	switch FsyncPolicy(s) {
	case FsyncAlways, FsyncInterval, FsyncNever:
		return FsyncPolicy(s), nil
	case "":
		return FsyncInterval, nil
	default:
		return "", fmt.Errorf("store: unknown fsync policy %q (want always, interval, or never)", s)
	}
}

// JournalConfig configures OpenJournal. The zero value of every field
// picks a sensible default.
type JournalConfig struct {
	// Dir is the data directory (required). It is created if missing.
	Dir string
	// Fsync selects the flush policy; default FsyncInterval.
	Fsync FsyncPolicy
	// SyncEvery is the FsyncInterval flush period; default 100ms.
	SyncEvery time.Duration
	// CompactAt is the journal-tail size (bytes) beyond which
	// MaybeCompact compacts. Default 64 MB; negative makes MaybeCompact
	// a no-op (explicit Compact calls still work).
	CompactAt int64
}

// Journal is the on-disk Store: an append-only journal of CRC-framed
// records plus a checkpoint file that compaction rewrites. The full live
// set is also kept in memory (it must fit anyway — the registry holds
// live posters for every stream), which makes Load trivial and lets
// Compact rewrite the checkpoint without re-reading the journal.
//
// Crash safety: appends are framed, so a crash mid-append leaves a torn
// tail that the next open detects by CRC and truncates. Checkpoints are
// written to a temp file, fsynced, and renamed into place, so a crash
// mid-compaction leaves the previous checkpoint intact; the checkpoint's
// meta record carries the last LSN it includes, so journal records that
// survive a crash between the rename and the journal reset are
// recognized as already-applied and skipped on replay.
type Journal struct {
	cfg JournalConfig

	mu       sync.Mutex
	closed   bool
	broken   bool  // a failed append could not be rolled back; appends refused
	brokenAt int64 // end of the good prefix when broken; Close retries truncating here
	f        *os.File
	dirty    bool // appended since last fsync

	entries map[string]Entry
	lsn     uint64 // last assigned sequence number
	ckptLSN uint64 // last LSN covered by the checkpoint file

	journalBytes   int64
	journalRecords int
	ckptBytes      int64
	appends        uint64
	compactions    uint64
	syncErrors     uint64
	recovered      int
	tornRepaired   bool

	stopSync chan struct{}
	syncDone chan struct{}
}

// OpenJournal opens (or initializes) the journal store in cfg.Dir,
// replaying checkpoint and journal into the in-memory live set and
// truncating any torn tail a crash left behind.
func OpenJournal(cfg JournalConfig) (*Journal, error) {
	if cfg.Dir == "" {
		return nil, fmt.Errorf("store: journal needs a data directory")
	}
	if cfg.Fsync == "" {
		cfg.Fsync = FsyncInterval
	}
	if _, err := ParseFsyncPolicy(string(cfg.Fsync)); err != nil {
		return nil, err
	}
	if cfg.SyncEvery <= 0 {
		cfg.SyncEvery = 100 * time.Millisecond
	}
	if cfg.CompactAt == 0 {
		cfg.CompactAt = 64 << 20
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: creating data dir: %w", err)
	}
	j := &Journal{cfg: cfg, entries: make(map[string]Entry)}
	if err := j.loadCheckpoint(); err != nil {
		return nil, err
	}
	if err := j.replayJournal(); err != nil {
		return nil, err
	}
	// Make the journal file's directory entry durable: per-append fsyncs
	// flush the file's contents, but on a fresh data dir the file itself
	// exists only once the directory is synced.
	if cfg.Fsync != FsyncNever {
		if err := syncDir(cfg.Dir); err != nil {
			j.f.Close()
			return nil, err
		}
	}
	j.recovered = len(j.entries)
	if j.cfg.Fsync == FsyncInterval {
		j.stopSync = make(chan struct{})
		j.syncDone = make(chan struct{})
		go j.syncLoop()
	}
	return j, nil
}

// loadCheckpoint reads checkpoint.ckpt into the live set. A missing file
// is a fresh store. Unlike the journal, a checkpoint is never
// legitimately torn (it is published by atomic rename), so corruption is
// an error, not a truncation.
func (j *Journal) loadCheckpoint() error {
	path := filepath.Join(j.cfg.Dir, checkpointFile)
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("store: opening checkpoint: %w", err)
	}
	defer f.Close()
	if fi, err := f.Stat(); err == nil {
		j.ckptBytes = fi.Size()
	}
	r := bufio.NewReaderSize(f, 1<<20)
	first := true
	for {
		payload, err := readFrame(r)
		if err == io.EOF {
			break
		}
		if err != nil {
			return fmt.Errorf("store: checkpoint %s is corrupt: %w", path, err)
		}
		rec, err := decodeRecord(payload)
		if err != nil {
			return fmt.Errorf("store: checkpoint %s: %w", path, err)
		}
		if first {
			if rec.Op != opCheckpoint {
				return fmt.Errorf("store: checkpoint %s does not start with a checkpoint record", path)
			}
			j.ckptLSN = rec.LSN
			j.lsn = rec.LSN
			first = false
			continue
		}
		if rec.Op != opPut {
			return fmt.Errorf("store: checkpoint %s carries a %q record", path, rec.Op)
		}
		j.entries[rec.ID] = Entry{ID: rec.ID, Rev: rec.Rev, Env: rec.Env}
	}
	return nil
}

// replayJournal applies journal records past the checkpoint LSN to the
// live set, truncates any torn tail, and leaves the file open for
// appends.
func (j *Journal) replayJournal() error {
	path := filepath.Join(j.cfg.Dir, journalFile)
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return fmt.Errorf("store: opening journal: %w", err)
	}
	r := bufio.NewReaderSize(f, 1<<20)
	var offset int64
	for {
		payload, err := readFrame(r)
		if err == io.EOF {
			break
		}
		if err != nil {
			// A torn tail is what a crash mid-append leaves behind; the
			// log ends at the last whole record.
			j.tornRepaired = true
			break
		}
		rec, err := decodeRecord(payload)
		if err != nil {
			// The frame CRC passed but the payload is not a valid record:
			// not a torn write, genuine corruption.
			f.Close()
			return fmt.Errorf("store: journal %s at offset %d: %w", path, offset, err)
		}
		offset += frameHeaderSize + int64(len(payload))
		j.journalRecords++
		if rec.LSN > j.lsn {
			j.lsn = rec.LSN
		}
		if rec.LSN <= j.ckptLSN {
			// Already folded into the checkpoint: a crash hit between the
			// checkpoint rename and the journal reset.
			continue
		}
		switch rec.Op {
		case opPut:
			j.entries[rec.ID] = Entry{ID: rec.ID, Rev: rec.Rev, Env: rec.Env}
		case opDel:
			delete(j.entries, rec.ID)
		case opCheckpoint:
			f.Close()
			return fmt.Errorf("store: journal %s carries a checkpoint record", path)
		}
	}
	if j.tornRepaired {
		if err := f.Truncate(offset); err != nil {
			f.Close()
			return fmt.Errorf("store: truncating torn journal tail: %w", err)
		}
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return fmt.Errorf("store: seeking journal end: %w", err)
	}
	j.journalBytes = offset
	j.f = f
	return nil
}

// syncLoop flushes the journal every SyncEvery while dirty (FsyncInterval
// policy). A failed sync keeps the dirty flag — the flush is retried on
// the next tick — and is counted in Stats, so a failing disk cannot
// silently void the policy's bounded-loss promise.
func (j *Journal) syncLoop() {
	defer close(j.syncDone)
	t := time.NewTicker(j.cfg.SyncEvery)
	defer t.Stop()
	for {
		select {
		case <-j.stopSync:
			return
		case <-t.C:
			j.mu.Lock()
			if j.dirty && !j.closed {
				if err := j.f.Sync(); err != nil {
					j.syncErrors++
				} else {
					j.dirty = false
				}
			}
			j.mu.Unlock()
		}
	}
}

// append encodes and writes one record under the lock, applying the
// fsync policy. A record either commits fully (written, and synced
// under FsyncAlways) or not at all: a failed write *or* failed sync is
// rolled back by truncating to the last good offset, so a rejected
// operation does not resurrect on replay and a later successful append
// can never land after a torn frame (replay would silently discard it).
// If even the rollback fails, the journal is marked broken and refuses
// all further appends rather than acknowledge records it may lose; the
// truncate is retried at Close (see rollback for the residual window).
func (j *Journal) append(rec *record) error {
	frame, err := encodeRecord(rec)
	if err != nil {
		return err
	}
	lastGood := j.journalBytes
	rollback := func(cause string, err error) error {
		if terr := j.f.Truncate(lastGood); terr == nil {
			if _, serr := j.f.Seek(lastGood, io.SeekStart); serr == nil {
				return fmt.Errorf("store: %s journal record: %w", cause, err)
			}
		}
		// The rejected frame may still be on disk; remember where the
		// good prefix ends so Close can retry the truncate. If the
		// process dies before any retry succeeds, the next boot can
		// resurrect the rejected record — the unavoidable residue of a
		// disk that fails writes and truncates at once.
		j.broken = true
		j.brokenAt = lastGood
		return fmt.Errorf("store: journal append failed and could not be rolled back; journal disabled: %w", err)
	}
	if _, err := j.f.Write(frame); err != nil {
		return rollback("appending", err)
	}
	if j.cfg.Fsync == FsyncAlways {
		if err := j.f.Sync(); err != nil {
			return rollback("syncing", err)
		}
	} else {
		j.dirty = true
	}
	j.journalBytes += int64(len(frame))
	j.journalRecords++
	j.appends++
	return nil
}

// appendable reports whether the journal can accept records. The caller
// must hold j.mu.
func (j *Journal) appendable() error {
	if j.closed {
		return ErrClosed
	}
	if j.broken {
		return fmt.Errorf("store: journal disabled after unrecoverable append failure")
	}
	return nil
}

// Put records the latest state of one stream. Success means the record
// is in the journal (durably, under FsyncAlways); compaction is a
// separate concern — see MaybeCompact — so a full disk during
// compaction can never fail an operation that already committed.
func (j *Journal) Put(e Entry) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if err := j.appendable(); err != nil {
		return err
	}
	j.lsn++
	if err := j.append(&record{LSN: j.lsn, Op: opPut, ID: e.ID, Rev: e.Rev, Env: e.Env}); err != nil {
		j.lsn--
		return err
	}
	j.entries[e.ID] = e
	return nil
}

// Delete records that a stream was removed.
func (j *Journal) Delete(id string) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if err := j.appendable(); err != nil {
		return err
	}
	j.lsn++
	if err := j.append(&record{LSN: j.lsn, Op: opDel, ID: id}); err != nil {
		j.lsn--
		return err
	}
	delete(j.entries, id)
	return nil
}

// Load returns the live entries, sorted by ID.
func (j *Journal) Load() ([]Entry, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return nil, ErrClosed
	}
	return sortedEntries(j.entries), nil
}

// MaybeCompact compacts if the journal tail has outgrown CompactAt,
// reporting whether it did. Callers that batch appends (the server's
// checkpointer) invoke it once per pass, outside their own locks —
// compaction rewrites the whole live set, far too much work to hang off
// an individual Put.
func (j *Journal) MaybeCompact() (bool, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return false, ErrClosed
	}
	if j.cfg.CompactAt < 0 || j.journalBytes <= j.cfg.CompactAt {
		return false, nil
	}
	if err := j.compactLocked(); err != nil {
		return false, err
	}
	return true, nil
}

// Compact folds the live set into a fresh checkpoint and resets the
// journal tail.
func (j *Journal) Compact() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return ErrClosed
	}
	return j.compactLocked()
}

// compactLocked writes checkpoint.ckpt.tmp (meta record + one put per
// live entry), fsyncs it, renames it over checkpoint.ckpt, fsyncs the
// directory so the rename is durable, and only then resets the journal.
// Every step is ordered so that a crash at any point leaves either the
// old checkpoint + full journal or the new checkpoint + (possibly
// stale, LSN-gated) journal.
func (j *Journal) compactLocked() error {
	tmpPath := filepath.Join(j.cfg.Dir, checkpointTmp)
	tmp, err := os.OpenFile(tmpPath, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("store: creating checkpoint temp: %w", err)
	}
	w := bufio.NewWriterSize(tmp, 1<<20)
	var written int64
	writeRec := func(rec *record) error {
		frame, err := encodeRecord(rec)
		if err != nil {
			return err
		}
		if _, err := w.Write(frame); err != nil {
			return fmt.Errorf("store: writing checkpoint: %w", err)
		}
		written += int64(len(frame))
		return nil
	}
	err = writeRec(&record{LSN: j.lsn, Op: opCheckpoint})
	if err == nil {
		for _, e := range sortedEntries(j.entries) {
			if err = writeRec(&record{LSN: j.lsn, Op: opPut, ID: e.ID, Rev: e.Rev, Env: e.Env}); err != nil {
				break
			}
		}
	}
	if err == nil {
		err = w.Flush()
	}
	if err == nil {
		err = tmp.Sync()
	}
	if cerr := tmp.Close(); err == nil && cerr != nil {
		err = fmt.Errorf("store: closing checkpoint temp: %w", cerr)
	}
	if err != nil {
		os.Remove(tmpPath)
		return err
	}
	if err := os.Rename(tmpPath, filepath.Join(j.cfg.Dir, checkpointFile)); err != nil {
		os.Remove(tmpPath)
		return fmt.Errorf("store: publishing checkpoint: %w", err)
	}
	if err := syncDir(j.cfg.Dir); err != nil {
		return err
	}
	j.ckptLSN = j.lsn
	j.ckptBytes = written
	// Reset the journal tail. If the truncate is lost to a crash, replay
	// skips the stale records via the LSN gate.
	if err := j.f.Truncate(0); err != nil {
		return fmt.Errorf("store: resetting journal: %w", err)
	}
	if _, err := j.f.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("store: rewinding journal: %w", err)
	}
	j.journalBytes = 0
	j.journalRecords = 0
	j.dirty = false
	j.compactions++
	return nil
}

// syncDir fsyncs a directory so a rename inside it is durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("store: opening data dir for sync: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("store: syncing data dir: %w", err)
	}
	return nil
}

// Stats reports the store's observable state.
func (j *Journal) Stats() Stats {
	j.mu.Lock()
	defer j.mu.Unlock()
	return Stats{
		Backend:          "journal",
		Dir:              j.cfg.Dir,
		Entries:          len(j.entries),
		LastLSN:          j.lsn,
		JournalBytes:     j.journalBytes,
		JournalRecords:   j.journalRecords,
		CheckpointBytes:  j.ckptBytes,
		Appends:          j.appends,
		Compactions:      j.compactions,
		SyncErrors:       j.syncErrors,
		RecoveredEntries: j.recovered,
		TornTailRepaired: j.tornRepaired,
		Fsync:            string(j.cfg.Fsync),
	}
}

// Close flushes and closes the journal. The store is unusable after.
func (j *Journal) Close() error {
	j.mu.Lock()
	if j.closed {
		j.mu.Unlock()
		return nil
	}
	j.closed = true
	j.mu.Unlock()
	if j.stopSync != nil {
		close(j.stopSync)
		<-j.syncDone
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	var err error
	if j.broken {
		// Last chance to drop the rejected frame before the file is
		// released; if this fails too, the next boot may replay it.
		if terr := j.f.Truncate(j.brokenAt); terr != nil {
			err = fmt.Errorf("store: closing broken journal, rejected tail not removed: %w", terr)
		}
	}
	if j.cfg.Fsync != FsyncNever {
		if serr := j.f.Sync(); err == nil {
			err = serr
		}
	}
	if cerr := j.f.Close(); err == nil {
		err = cerr
	}
	return err
}

var _ Store = (*Journal)(nil)
