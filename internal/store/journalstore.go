package store

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"
)

// Checkpoint file names inside the data directory. Segment file naming
// lives in segment.go.
const (
	checkpointFile = "checkpoint.ckpt"
	checkpointTmp  = "checkpoint.ckpt.tmp"
)

// FsyncPolicy selects how aggressively the journal is flushed to stable
// storage. The trade-off is the classic WAL one: "always" makes every
// acknowledged lifecycle event and checkpoint record survive a machine
// crash at the cost of one fsync per group commit; "interval" bounds the
// loss window to the sync interval; "never" leaves flushing to the OS
// page cache (a process crash loses nothing — the file writes happened —
// but a machine crash can lose the unflushed tail).
type FsyncPolicy string

const (
	FsyncAlways   FsyncPolicy = "always"
	FsyncInterval FsyncPolicy = "interval"
	FsyncNever    FsyncPolicy = "never"
)

// ParseFsyncPolicy validates a policy name (the -fsync flag value).
func ParseFsyncPolicy(s string) (FsyncPolicy, error) {
	switch FsyncPolicy(s) {
	case FsyncAlways, FsyncInterval, FsyncNever:
		return FsyncPolicy(s), nil
	case "":
		return FsyncInterval, nil
	default:
		return "", fmt.Errorf("store: unknown fsync policy %q (want always, interval, or never)", s)
	}
}

// JournalConfig configures OpenJournal. The zero value of every field
// picks a sensible default.
type JournalConfig struct {
	// Dir is the data directory (required). It is created if missing.
	Dir string
	// Fsync selects the flush policy; default FsyncInterval.
	Fsync FsyncPolicy
	// SyncEvery is the FsyncInterval flush period; default 100ms.
	SyncEvery time.Duration
	// SegmentSize is the active-segment size (bytes) beyond which the
	// committer rotates to a fresh segment. Default 16 MB; negative
	// disables rotation (single ever-growing active segment).
	SegmentSize int64
	// CommitWindow bounds how long the committer lingers after the first
	// record of a batch arrives, accumulating more records so they share
	// one fsync (FsyncAlways only; a full batch flushes immediately).
	// Default 1ms; negative commits every batch as soon as it is seen.
	CommitWindow time.Duration
	// CompactAt is the journal-tail size (bytes, summed across segments)
	// beyond which MaybeCompact compacts. Default 64 MB; negative makes
	// MaybeCompact a no-op (explicit Compact calls still work).
	CompactAt int64
}

// Journal is the on-disk Store: a segmented write-ahead log of
// CRC-framed records plus a base checkpoint file that compaction
// rewrites. The full live set is also kept in memory (it must fit
// anyway — the registry holds live posters for every stream), which
// makes Load trivial and lets Compact rewrite the checkpoint without
// re-reading the journal.
//
// Writes go through group commit: appenders enqueue framed records and
// a single committer goroutine batches them into one write (and, under
// FsyncAlways, one shared fsync) per commit window — see committer.go.
// The committer also rotates the active segment at SegmentSize
// boundaries; retired segments are immutable until a compaction folds
// every segment's records into the base checkpoint and deletes them.
//
// Crash safety: appends are framed, so a crash mid-append leaves a torn
// tail in the newest segment that the next open detects by CRC and
// truncates; a torn frame in any older segment is real corruption and
// fails the open. Checkpoints are written to a temp file, fsynced, and
// renamed into place, so a crash mid-compaction leaves the previous
// checkpoint intact; the checkpoint's meta record carries the last LSN
// it includes, so segment records that survive a crash between the
// rename and the segment reset are recognized as already-applied and
// skipped on replay. A pre-segmentation journal.wal is migrated
// transparently (replayed as the oldest retired segment).
type Journal struct {
	cfg JournalConfig

	mu        sync.Mutex
	idle      *sync.Cond // signaled when pending drains and no batch I/O is in flight
	closed    bool
	broken    bool  // a failed batch could not be rolled back; appends refused
	brokenAt  int64 // end of the active segment's good prefix when broken
	brokenErr error

	f       *os.File // active segment
	active  segmentInfo
	retired []segmentInfo
	nextIdx uint64 // next segment index to create (monotonic, never reused)
	dirty   bool   // appended since last fsync

	// Group-commit queue (see committer.go).
	pending      []*commitReq
	pendingBytes int64
	pendingSince time.Time // when pending went empty → non-empty
	committing   bool      // batch I/O in flight outside the lock

	entries map[string]Entry
	lsn     uint64 // last assigned sequence number
	ckptLSN uint64 // last LSN covered by the checkpoint file

	journalBytes   int64 // across all segments
	journalRecords int
	ckptBytes      int64
	appends        uint64
	compactions    uint64
	commits        uint64
	commitRecs     uint64
	commitWait     time.Duration
	syncErrors     uint64
	recovered      int
	tornRepaired   bool

	kick       chan struct{} // buffered 1: records pending
	full       chan struct{} // buffered 1: batch hit a size cap
	stopCommit chan struct{}
	commitDone chan struct{}
	stopSync   chan struct{}
	syncDone   chan struct{}
}

// OpenJournal opens (or initializes) the journal store in cfg.Dir,
// replaying checkpoint and segments into the in-memory live set,
// truncating any torn tail a crash left in the newest segment, and
// starting the group-commit goroutine.
func OpenJournal(cfg JournalConfig) (*Journal, error) {
	if cfg.Dir == "" {
		return nil, fmt.Errorf("store: journal needs a data directory")
	}
	if cfg.Fsync == "" {
		cfg.Fsync = FsyncInterval
	}
	if _, err := ParseFsyncPolicy(string(cfg.Fsync)); err != nil {
		return nil, err
	}
	if cfg.SyncEvery <= 0 {
		cfg.SyncEvery = 100 * time.Millisecond
	}
	if cfg.SegmentSize == 0 {
		cfg.SegmentSize = 16 << 20
	}
	if cfg.CommitWindow == 0 {
		cfg.CommitWindow = time.Millisecond
	}
	if cfg.CompactAt == 0 {
		cfg.CompactAt = 64 << 20
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: creating data dir: %w", err)
	}
	j := &Journal{cfg: cfg, entries: make(map[string]Entry)}
	j.idle = sync.NewCond(&j.mu)
	if err := j.loadCheckpoint(); err != nil {
		return nil, err
	}
	if err := j.replaySegments(); err != nil {
		return nil, err
	}
	// Make the active segment's directory entry durable: per-commit
	// fsyncs flush the file's contents, but on a fresh data dir the file
	// itself exists only once the directory is synced.
	if cfg.Fsync != FsyncNever {
		if err := syncDir(cfg.Dir); err != nil {
			j.f.Close()
			return nil, err
		}
	}
	j.recovered = len(j.entries)
	j.kick = make(chan struct{}, 1)
	j.full = make(chan struct{}, 1)
	j.stopCommit = make(chan struct{})
	j.commitDone = make(chan struct{})
	go j.committerLoop()
	if j.cfg.Fsync == FsyncInterval {
		j.stopSync = make(chan struct{})
		j.syncDone = make(chan struct{})
		go j.syncLoop()
	}
	return j, nil
}

// loadCheckpoint reads checkpoint.ckpt into the live set. A missing file
// is a fresh store. Unlike the journal, a checkpoint is never
// legitimately torn (it is published by atomic rename), so corruption is
// an error, not a truncation.
func (j *Journal) loadCheckpoint() error {
	path := filepath.Join(j.cfg.Dir, checkpointFile)
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("store: opening checkpoint: %w", err)
	}
	defer f.Close()
	if fi, err := f.Stat(); err == nil {
		j.ckptBytes = fi.Size()
	}
	r := bufio.NewReaderSize(f, 1<<20)
	first := true
	for {
		payload, err := readFrame(r)
		if err == io.EOF {
			break
		}
		if err != nil {
			return fmt.Errorf("store: checkpoint %s is corrupt: %w", path, err)
		}
		rec, err := decodeRecord(payload)
		if err != nil {
			return fmt.Errorf("store: checkpoint %s: %w", path, err)
		}
		if first {
			if rec.Op != opCheckpoint {
				return fmt.Errorf("store: checkpoint %s does not start with a checkpoint record", path)
			}
			j.ckptLSN = rec.LSN
			j.lsn = rec.LSN
			first = false
			continue
		}
		if rec.Op != opPut {
			return fmt.Errorf("store: checkpoint %s carries a %q record", path, rec.Op)
		}
		j.entries[rec.ID] = Entry{ID: rec.ID, Rev: rec.Rev, Env: rec.Env}
	}
	return nil
}

// replaySegments replays every WAL segment oldest-first, applying
// records past the checkpoint LSN to the live set. The newest numbered
// segment stays open as the active one; when the directory holds no
// numbered segment (fresh store, or only a migrated legacy journal.wal)
// a fresh active segment is created.
func (j *Journal) replaySegments() error {
	segs, err := listSegments(j.cfg.Dir)
	if err != nil {
		return err
	}
	for i := range segs {
		si := &segs[i]
		newest := i == len(segs)-1
		f, err := os.OpenFile(si.path, os.O_RDWR, 0o644)
		if err != nil {
			return fmt.Errorf("store: opening segment %s: %w", si.path, err)
		}
		if err := j.replaySegment(f, si, newest); err != nil {
			f.Close()
			return err
		}
		j.journalBytes += si.bytes
		j.journalRecords += si.records
		if newest && si.index > 0 {
			// Becomes the active segment: leave it open, positioned after
			// the last whole frame.
			if _, err := f.Seek(si.bytes, io.SeekStart); err != nil {
				f.Close()
				return fmt.Errorf("store: seeking segment end: %w", err)
			}
			j.f = f
			j.active = *si
		} else {
			f.Close()
			j.retired = append(j.retired, *si)
		}
	}
	j.nextIdx = 1
	if len(segs) > 0 {
		j.nextIdx = segs[len(segs)-1].index + 1
	}
	if j.f == nil {
		nf, err := createSegment(j.cfg.Dir, j.nextIdx)
		if err != nil {
			return err
		}
		j.f = nf
		j.active = segmentInfo{index: j.nextIdx, path: nf.Name()}
		j.nextIdx++
	}
	return nil
}

// replaySegment applies one segment's records. A torn frame ends the
// newest segment (crash mid-append: truncate and continue) but is
// corruption anywhere else — retired segments were complete before the
// next one was created, so a hole in one means lost records.
func (j *Journal) replaySegment(f *os.File, si *segmentInfo, newest bool) error {
	r := bufio.NewReaderSize(f, 1<<20)
	var offset int64
	torn := false
	for {
		payload, err := readFrame(r)
		if err == io.EOF {
			break
		}
		if err != nil {
			torn = true
			break
		}
		rec, err := decodeRecord(payload)
		if err != nil {
			// The frame CRC passed but the payload is not a valid record:
			// not a torn write, genuine corruption.
			return fmt.Errorf("store: segment %s at offset %d: %w", si.path, offset, err)
		}
		offset += frameHeaderSize + int64(len(payload))
		si.records++
		if rec.LSN > j.lsn {
			j.lsn = rec.LSN
		}
		if rec.LSN <= j.ckptLSN {
			// Already folded into the checkpoint: a crash hit between the
			// checkpoint rename and the segment reset.
			continue
		}
		switch rec.Op {
		case opPut:
			j.entries[rec.ID] = Entry{ID: rec.ID, Rev: rec.Rev, Env: rec.Env}
		case opDel:
			delete(j.entries, rec.ID)
		case opCheckpoint:
			return fmt.Errorf("store: segment %s carries a checkpoint record", si.path)
		}
	}
	if torn {
		if !newest {
			return fmt.Errorf("store: segment %s is corrupt at offset %d (torn frame in a retired segment; only the newest segment may carry a crash tail)", si.path, offset)
		}
		if err := f.Truncate(offset); err != nil {
			return fmt.Errorf("store: truncating torn segment tail: %w", err)
		}
		j.tornRepaired = true
	}
	si.bytes = offset
	return nil
}

// syncLoop flushes the active segment every SyncEvery while dirty
// (FsyncInterval policy). A failed sync keeps the dirty flag — the flush
// is retried on the next tick — and is counted in Stats, so a failing
// disk cannot silently void the policy's bounded-loss promise.
func (j *Journal) syncLoop() {
	defer close(j.syncDone)
	t := time.NewTicker(j.cfg.SyncEvery)
	defer t.Stop()
	for {
		select {
		case <-j.stopSync:
			return
		case <-t.C:
			j.mu.Lock()
			if j.dirty && !j.closed {
				if err := j.f.Sync(); err != nil {
					j.syncErrors++
				} else {
					j.dirty = false
				}
			}
			j.mu.Unlock()
		}
	}
}

// appendable reports whether the journal can accept records. The caller
// must hold j.mu.
func (j *Journal) appendable() error {
	if j.closed {
		return ErrClosed
	}
	if j.broken {
		return fmt.Errorf("store: journal disabled after unrecoverable append failure")
	}
	return nil
}

// putAsync assigns an LSN and enqueues one record for group commit.
func (j *Journal) putAsync(rec *record, e Entry) *Ticket {
	j.mu.Lock()
	if err := j.appendable(); err != nil {
		j.mu.Unlock()
		return ResolvedTicket(err)
	}
	j.lsn++
	rec.LSN = j.lsn
	req, err := j.enqueue(rec, e)
	if err != nil {
		// Encode failure: nothing was queued. The LSN stays burned —
		// monotonicity is all the gate needs, gaps are fine.
		j.mu.Unlock()
		return ResolvedTicket(err)
	}
	j.mu.Unlock()
	return &Ticket{ch: req.done}
}

// Put records the latest state of one stream. Success means the record's
// group commit landed in the journal (durably, under FsyncAlways);
// compaction is a separate concern — see MaybeCompact — so a full disk
// during compaction can never fail an operation that already committed.
func (j *Journal) Put(e Entry) error {
	return j.PutAsync(e).Wait()
}

// PutAsync enqueues the record and returns its commit ticket without
// waiting. Callers that write many records back to back (the
// checkpointer's dirty-stream deltas) enqueue them all and wait on the
// tickets afterwards, so the whole pass shares a handful of group
// commits instead of paying one fsync per stream.
func (j *Journal) PutAsync(e Entry) *Ticket {
	return j.putAsync(&record{Op: opPut, ID: e.ID, Rev: e.Rev, Env: e.Env}, e)
}

// Delete records that a stream was removed.
func (j *Journal) Delete(id string) error {
	return j.putAsync(&record{Op: opDel, ID: id}, Entry{}).Wait()
}

// Load returns the live entries, sorted by ID. Records still waiting in
// the commit queue are not included: the live set only ever reflects
// committed records.
func (j *Journal) Load() ([]Entry, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return nil, ErrClosed
	}
	return sortedEntries(j.entries), nil
}

// MaybeCompact compacts if the journal tail (summed across segments)
// has outgrown CompactAt, reporting whether it did. Callers that batch
// appends (the server's checkpointer) invoke it once per pass, outside
// their own locks — compaction rewrites the whole live set, far too much
// work to hang off an individual Put.
func (j *Journal) MaybeCompact() (bool, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return false, ErrClosed
	}
	if j.cfg.CompactAt < 0 || j.journalBytes <= j.cfg.CompactAt {
		return false, nil
	}
	if err := j.compactLocked(); err != nil {
		return false, err
	}
	return true, nil
}

// Compact folds the live set into a fresh checkpoint, deletes every
// segment, and starts a fresh active segment.
func (j *Journal) Compact() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return ErrClosed
	}
	return j.compactLocked()
}

// quiesceLocked waits until the commit queue is empty and no batch I/O
// is in flight. Compaction needs this: the checkpoint it writes must
// cover exactly the committed state (j.lsn is only meaningful once every
// assigned LSN has been applied), and the segment files must not be
// swapped out from under the committer. The caller must hold j.mu.
func (j *Journal) quiesceLocked() error {
	for (len(j.pending) > 0 || j.committing) && !j.closed {
		j.idle.Wait()
	}
	if j.closed {
		return ErrClosed
	}
	return nil
}

// compactLocked writes checkpoint.ckpt.tmp (meta record + one put per
// live entry), fsyncs it, renames it over checkpoint.ckpt, fsyncs the
// directory so the rename is durable, and only then retires every
// segment and starts a fresh one. Every step is ordered so that a crash
// at any point leaves either the old checkpoint + full journal or the
// new checkpoint + (possibly stale, LSN-gated) journal.
//
// Compaction also clears the broken latch: the rejected tail the latch
// was protecting against lives in the old active segment, which is
// deleted wholesale, and the new checkpoint was written from the
// in-memory live set, which never saw the failed batch.
func (j *Journal) compactLocked() error {
	if err := j.quiesceLocked(); err != nil {
		return err
	}
	tmpPath := filepath.Join(j.cfg.Dir, checkpointTmp)
	tmp, err := os.OpenFile(tmpPath, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("store: creating checkpoint temp: %w", err)
	}
	w := bufio.NewWriterSize(tmp, 1<<20)
	var written int64
	writeRec := func(rec *record) error {
		frame, err := encodeRecord(rec)
		if err != nil {
			return err
		}
		if _, err := w.Write(frame); err != nil {
			return fmt.Errorf("store: writing checkpoint: %w", err)
		}
		written += int64(len(frame))
		return nil
	}
	err = writeRec(&record{LSN: j.lsn, Op: opCheckpoint})
	if err == nil {
		for _, e := range sortedEntries(j.entries) {
			if err = writeRec(&record{LSN: j.lsn, Op: opPut, ID: e.ID, Rev: e.Rev, Env: e.Env}); err != nil {
				break
			}
		}
	}
	if err == nil {
		err = w.Flush()
	}
	if err == nil {
		err = tmp.Sync()
	}
	if cerr := tmp.Close(); err == nil && cerr != nil {
		err = fmt.Errorf("store: closing checkpoint temp: %w", cerr)
	}
	if err != nil {
		os.Remove(tmpPath)
		return err
	}
	if err := os.Rename(tmpPath, filepath.Join(j.cfg.Dir, checkpointFile)); err != nil {
		os.Remove(tmpPath)
		return fmt.Errorf("store: publishing checkpoint: %w", err)
	}
	if err := syncDir(j.cfg.Dir); err != nil {
		return err
	}
	j.ckptLSN = j.lsn
	j.ckptBytes = written
	// Start the fresh active segment before removing anything: if the
	// create fails the old journal stays fully intact, merely redundant
	// behind the new checkpoint (replay skips it via the LSN gate).
	nf, err := createSegment(j.cfg.Dir, j.nextIdx)
	if err != nil {
		return err
	}
	oldActive := j.active.path
	j.f.Close()
	for _, s := range j.retired {
		os.Remove(s.path)
	}
	os.Remove(oldActive)
	if j.cfg.Fsync != FsyncNever {
		// Removal-flush failures are deliberately not fatal: a segment
		// resurrected by a crash replays as a no-op behind the LSN gate,
		// and the next compaction retries the directory sync.
		_ = syncDir(j.cfg.Dir)
	}
	j.retired = nil
	j.active = segmentInfo{index: j.nextIdx, path: nf.Name()}
	j.nextIdx++
	j.f = nf
	j.journalBytes = 0
	j.journalRecords = 0
	j.dirty = false
	j.broken = false
	j.brokenAt = 0
	j.brokenErr = nil
	j.compactions++
	return nil
}

// syncDir fsyncs a directory so a rename inside it is durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("store: opening data dir for sync: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("store: syncing data dir: %w", err)
	}
	return nil
}

// Stats reports the store's observable state.
func (j *Journal) Stats() Stats {
	j.mu.Lock()
	defer j.mu.Unlock()
	return Stats{
		Backend:          "journal",
		Dir:              j.cfg.Dir,
		Entries:          len(j.entries),
		LastLSN:          j.lsn,
		JournalBytes:     j.journalBytes,
		JournalRecords:   j.journalRecords,
		Segments:         len(j.retired) + 1,
		CheckpointBytes:  j.ckptBytes,
		Appends:          j.appends,
		Compactions:      j.compactions,
		Commits:          j.commits,
		CommitRecords:    j.commitRecs,
		CommitWaitMS:     float64(j.commitWait) / float64(time.Millisecond),
		SyncErrors:       j.syncErrors,
		RecoveredEntries: j.recovered,
		TornTailRepaired: j.tornRepaired,
		Fsync:            string(j.cfg.Fsync),
	}
}

// Close drains the commit queue, flushes, and closes the journal. The
// store is unusable after.
func (j *Journal) Close() error {
	j.mu.Lock()
	if j.closed {
		j.mu.Unlock()
		return nil
	}
	j.closed = true
	j.idle.Broadcast()
	j.mu.Unlock()
	// Stop the committer; its shutdown path drains every record enqueued
	// before the closed latch, so no ticket is left unresolved.
	close(j.stopCommit)
	<-j.commitDone
	if j.stopSync != nil {
		close(j.stopSync)
		<-j.syncDone
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	var err error
	if j.broken {
		// Last chance to drop the rejected frames before the file is
		// released; if this fails too, the next boot may replay them.
		if terr := j.f.Truncate(j.brokenAt); terr != nil {
			err = fmt.Errorf("store: closing broken journal, rejected tail not removed: %w", terr)
		}
	}
	if j.cfg.Fsync != FsyncNever {
		if serr := j.f.Sync(); err == nil {
			err = serr
		}
	}
	if cerr := j.f.Close(); err == nil {
		err = cerr
	}
	return err
}

var _ Store = (*Journal)(nil)
