package store

// Group commit for the journal backend. Appenders never touch the
// segment file: Put/PutAsync/Delete encode the record under the journal
// mutex, append it to the pending queue, and wait on a per-record
// ticket. A single committer goroutine drains the queue in batches —
// one write and, under FsyncAlways, one fsync per batch — so N
// concurrent appenders share one disk round trip instead of paying N.
//
// Batching is two-tiered. The committer naturally groups whatever
// accumulated while the previous batch's I/O was in flight (zero added
// latency: the fsync itself is the accumulation window). On top of
// that, a positive CommitWindow makes the committer linger up to that
// long after the first record of a batch arrives, trading bounded
// latency for larger batches; the batch is flushed immediately when it
// reaches the size cap. The window only applies under FsyncAlways —
// with no fsync to amortize there is nothing to wait for.

import (
	"fmt"
	"io"
	"time"
)

// Batch caps: a commit is flushed early once it holds this many records
// or this many frame bytes, whichever comes first.
const (
	maxCommitRecords = 512
	maxCommitBytes   = 8 << 20
)

// commitReq is one enqueued record awaiting its group commit.
type commitReq struct {
	frame []byte
	op    string
	id    string
	entry Entry // opPut only
	enq   time.Time
	done  chan error // buffered; resolved exactly once by the committer
}

// apply commits the record's mutation to the in-memory live set. The
// committer calls it under j.mu after the batch landed on disk, so the
// map only ever reflects committed records.
func (r *commitReq) apply(j *Journal) {
	switch r.op {
	case opPut:
		j.entries[r.id] = r.entry
	case opDel:
		delete(j.entries, r.id)
	}
}

// enqueue appends a framed record to the pending queue and signals the
// committer. The caller must hold j.mu and have passed appendable().
func (j *Journal) enqueue(rec *record, e Entry) (*commitReq, error) {
	frame, err := encodeRecord(rec)
	if err != nil {
		return nil, err
	}
	req := &commitReq{
		frame: frame, op: rec.Op, id: rec.ID, entry: e,
		enq: time.Now(), done: make(chan error, 1),
	}
	if len(j.pending) == 0 {
		j.pendingSince = req.enq
	}
	j.pending = append(j.pending, req)
	j.pendingBytes += int64(len(frame))
	select {
	case j.kick <- struct{}{}:
	default:
	}
	if len(j.pending) >= maxCommitRecords || j.pendingBytes >= maxCommitBytes {
		select {
		case j.full <- struct{}{}:
		default:
		}
	}
	return req, nil
}

// committerLoop is the group-commit goroutine: wait for work, optionally
// linger for the commit window, commit one batch, repeat. On shutdown it
// drains every record enqueued before Close latched the journal.
func (j *Journal) committerLoop() {
	defer close(j.commitDone)
	for {
		select {
		case <-j.kick:
		case <-j.stopCommit:
			for j.commitBatch() {
			}
			return
		}
		j.waitCommitWindow()
		j.commitBatch()
	}
}

// waitCommitWindow lingers until the oldest pending record has waited
// CommitWindow, the batch fills, or the journal closes. FsyncAlways
// only: without an fsync to share, delaying a commit buys nothing. A
// lone pending record commits immediately too — lingering only pays off
// when there are siblings to batch with, and a sequential appender gets
// its old per-append latency back (concurrent appenders still pile up
// naturally while the previous batch's fsync is in flight).
func (j *Journal) waitCommitWindow() {
	if j.cfg.Fsync != FsyncAlways || j.cfg.CommitWindow <= 0 {
		return
	}
	j.mu.Lock()
	wait := time.Duration(0)
	if !j.closed && len(j.pending) > 1 &&
		len(j.pending) < maxCommitRecords && j.pendingBytes < maxCommitBytes {
		wait = time.Until(j.pendingSince.Add(j.cfg.CommitWindow))
	}
	j.mu.Unlock()
	if wait <= 0 {
		return
	}
	t := time.NewTimer(wait)
	defer t.Stop()
	select {
	case <-t.C:
	case <-j.full:
	case <-j.stopCommit:
	}
}

// commitBatch writes and (policy permitting) fsyncs everything pending
// as one batch, applies the records to the live set, and resolves the
// waiters. It reports whether there was anything to commit.
//
// The batch commits all-or-nothing, preserving the single-append
// rollback contract: a failed write or sync is rolled back by
// truncating the active segment to the last good offset, so no record
// of a failed batch can resurrect on replay and a later successful
// batch can never land behind a torn frame. If the rollback itself
// fails, the journal latches broken and refuses all further appends
// rather than acknowledge records it may lose; Close retries the
// truncate (see Journal.Close).
func (j *Journal) commitBatch() bool {
	j.mu.Lock()
	if len(j.pending) == 0 {
		j.idle.Broadcast()
		j.mu.Unlock()
		return false
	}
	batch := j.pending
	j.pending = nil
	j.pendingBytes = 0
	if j.broken {
		// The journal latched broken with records still queued: fail
		// them without touching the file (the good prefix must stay
		// exactly where the failed rollback left it).
		err := j.brokenErr
		j.idle.Broadcast()
		j.mu.Unlock()
		for _, r := range batch {
			r.done <- err
		}
		return true
	}
	j.committing = true
	f := j.f
	lastGood := j.active.bytes
	policy := j.cfg.Fsync
	j.mu.Unlock()

	buf := make([]byte, 0, batchBytes(batch))
	for _, r := range batch {
		buf = append(buf, r.frame...)
	}
	var cause string
	var ioErr error
	if _, err := f.Write(buf); err != nil {
		cause, ioErr = "appending", err
	} else if policy == FsyncAlways {
		if err := f.Sync(); err != nil {
			cause, ioErr = "syncing", err
		}
	}
	rolledBack := false
	if ioErr != nil {
		// A short write may have landed part of the batch; truncating to
		// the last good offset removes every trace of it.
		if terr := f.Truncate(lastGood); terr == nil {
			if _, serr := f.Seek(lastGood, io.SeekStart); serr == nil {
				rolledBack = true
			}
		}
	}

	j.mu.Lock()
	j.committing = false
	now := time.Now()
	j.commits++
	j.commitRecs += uint64(len(batch))
	for _, r := range batch {
		j.commitWait += now.Sub(r.enq)
	}
	var commitErr error
	switch {
	case ioErr == nil:
		n := int64(len(buf))
		j.active.bytes += n
		j.active.records += len(batch)
		j.journalBytes += n
		j.journalRecords += len(batch)
		j.appends += uint64(len(batch))
		for _, r := range batch {
			r.apply(j)
		}
		if policy != FsyncAlways {
			j.dirty = true
		}
		if j.cfg.SegmentSize > 0 && j.active.bytes >= j.cfg.SegmentSize && !j.closed {
			j.rotateLocked()
		}
	case rolledBack:
		commitErr = fmt.Errorf("store: %s journal record(s): %w", cause, ioErr)
	default:
		// The rejected frames may still be on disk; remember where the
		// good prefix ends so Close can retry the truncate. If the
		// process dies before any retry succeeds, the next boot can
		// resurrect the rejected records — the unavoidable residue of a
		// disk that fails writes and truncates at once.
		j.broken = true
		j.brokenAt = lastGood
		j.brokenErr = fmt.Errorf("store: journal disabled after unrecoverable append failure: %w", ioErr)
		commitErr = fmt.Errorf("store: journal append failed and could not be rolled back; journal disabled: %w", ioErr)
	}
	if len(j.pending) == 0 {
		j.idle.Broadcast()
	}
	j.mu.Unlock()
	for _, r := range batch {
		r.done <- commitErr
	}
	return true
}

// batchBytes sums the framed size of a batch.
func batchBytes(batch []*commitReq) int {
	var n int
	for _, r := range batch {
		n += len(r.frame)
	}
	return n
}

// rotateLocked retires the active segment and opens the next one. The
// caller must hold j.mu with no batch I/O in flight (it runs on the
// committer goroutine, which is the only writer). Rotation failures are
// soft: the journal keeps appending to the oversized active segment and
// retries at the next batch boundary — durability is never traded for
// the segment-size housekeeping.
func (j *Journal) rotateLocked() {
	if j.cfg.Fsync == FsyncInterval && j.dirty {
		// Retired segments are never touched again, so the background
		// sync loop will not flush this one later — flush it now.
		if err := j.f.Sync(); err != nil {
			j.syncErrors++
			return
		}
		j.dirty = false
	}
	nf, err := createSegment(j.cfg.Dir, j.nextIdx)
	if err != nil {
		return
	}
	if j.cfg.Fsync != FsyncNever {
		if err := syncDir(j.cfg.Dir); err != nil {
			nf.Close()
			return
		}
	}
	// Close errors on the retired file are ignored: its contents are
	// already synced as far as the policy promises, and the file is
	// never written again.
	j.f.Close()
	j.retired = append(j.retired, j.active)
	j.active = segmentInfo{index: j.nextIdx, path: nf.Name()}
	j.f = nf
	j.nextIdx++
}
