// Package store is brokerd's persistence subsystem: a pluggable Store
// holding the durable state of every hosted pricing stream as a
// family-tagged snapshot envelope.
//
// The paper's posted-price mechanism is stateful online learning — the
// regret bound depends on the cuts accumulated over the whole horizon —
// so losing a stream's state mid-run silently destroys the guarantee. A
// Store gives the serving layer a place to record stream lifecycle
// events (create, restore, delete) and periodic checkpoints of changed
// streams, and to read the surviving set back after a crash.
//
// Two backends ship: Mem, an in-memory map for tests and embedders that
// want the lifecycle plumbing without disk, and Journal, a segmented
// write-ahead log of CRC-framed records with group commit, incremental
// delta checkpoints, checkpoint compaction at segment-retirement
// boundaries, and a configurable fsync policy.
package store

import (
	"errors"
	"sort"
	"sync"

	"datamarket/internal/pricing"
)

// Entry is one persisted stream: its registry ID, the poster's monotonic
// revision at capture time, and the family-tagged snapshot envelope
// (which carries the regret-tracker aggregates alongside the mechanism
// state). The envelope is owned by the store once passed to Put; callers
// must not mutate it afterwards.
type Entry struct {
	ID  string            `json:"id"`
	Rev uint64            `json:"rev"`
	Env *pricing.Envelope `json:"env"`
}

// Stats describes a store's observable state for the ops surface
// (GET /v1/admin/store).
type Stats struct {
	// Backend names the implementation: "mem" or "journal".
	Backend string `json:"backend"`
	// Dir is the journal backend's data directory.
	Dir string `json:"dir,omitempty"`
	// Entries counts the live (non-deleted) streams the store holds.
	Entries int `json:"entries"`
	// LastLSN is the sequence number of the most recent record.
	LastLSN uint64 `json:"last_lsn"`
	// JournalBytes and JournalRecords measure the append-only tail since
	// the last compaction, summed across every live WAL segment.
	JournalBytes   int64 `json:"journal_bytes"`
	JournalRecords int   `json:"journal_records"`
	// Segments counts the on-disk WAL segment files (retired + active).
	Segments int `json:"segments"`
	// CheckpointBytes is the size of the last written checkpoint file.
	CheckpointBytes int64 `json:"checkpoint_bytes"`
	// Appends and Compactions count operations since open.
	Appends     uint64 `json:"appends"`
	Compactions uint64 `json:"compactions"`
	// Commits counts group commits: batches of appended records that
	// shared one write (and, under the "always" policy, one fsync).
	Commits uint64 `json:"commits"`
	// CommitRecords counts the records those commits carried;
	// CommitRecords/Commits is the realized group-commit batch size.
	CommitRecords uint64 `json:"commit_records"`
	// CommitWaitMS is the cumulative wall-clock time appenders spent
	// waiting for their group commit to land.
	CommitWaitMS float64 `json:"commit_wait_ms"`
	// SyncErrors counts failed background flushes under the interval
	// fsync policy (each is retried on the next tick; a non-zero value
	// means the bounded-loss promise is currently at risk). Never
	// omitted: an explicit 0 is the "disk is healthy" reading, which
	// must stay distinguishable from "not reported".
	SyncErrors uint64 `json:"sync_errors"`
	// RecoveredEntries is the live set size found at open.
	RecoveredEntries int `json:"recovered_entries"`
	// TornTailRepaired reports that open found a torn record at the
	// journal tail (a crash mid-append) and truncated it away.
	TornTailRepaired bool `json:"torn_tail_repaired,omitempty"`
	// Fsync names the journal backend's sync policy.
	Fsync string `json:"fsync,omitempty"`
}

// ErrClosed is returned by operations on a closed store.
var ErrClosed = errors.New("store: closed")

// Ticket is the asynchronous handle of an enqueued record. Wait blocks
// until the record's group commit lands (or fails) and returns the
// commit error; calling it again returns the same resolution. Tickets
// let a caller enqueue many records — for example a checkpoint pass
// enqueueing one delta per dirty stream while it holds that stream's
// shard lock — and pay for one shared commit after the last enqueue,
// instead of one fsync per record.
type Ticket struct {
	ch   chan error
	once sync.Once
	err  error
}

// Wait blocks until the enqueued record's commit resolves.
func (t *Ticket) Wait() error {
	t.once.Do(func() { t.err = <-t.ch })
	return t.err
}

// ResolvedTicket builds an already-resolved ticket. Store backends that
// commit synchronously (Mem, or any implementation without a group
// commit) resolve at enqueue time and return one of these from PutAsync.
func ResolvedTicket(err error) *Ticket {
	t := &Ticket{ch: make(chan error, 1)}
	t.ch <- err
	return t
}

// Store is the persistence interface the serving layer drives. Put,
// PutAsync, and Delete record lifecycle events and checkpoint deltas;
// Load returns the surviving live set at boot; Compact folds the
// journal tail into a fresh checkpoint. Implementations are safe for
// concurrent use.
type Store interface {
	// Put records the latest state of one stream, returning once the
	// record is committed (durably, under the journal backend's
	// FsyncAlways policy). Lifecycle events use it: write-ahead means
	// the event must be on disk before the in-memory commit.
	Put(e Entry) error
	// PutAsync enqueues the record and returns immediately; the ticket
	// resolves when the record's group commit lands. Checkpoint passes
	// use it so every dirty-stream delta of one pass shares one commit.
	PutAsync(e Entry) *Ticket
	// Delete records that a stream was removed.
	Delete(id string) error
	// Load returns the live entries, sorted by ID.
	Load() ([]Entry, error)
	// Compact folds all live state into a checkpoint and resets the
	// journal tail. A no-op for backends without a journal.
	Compact() error
	// MaybeCompact compacts only if the journal tail has outgrown its
	// configured threshold, reporting whether it did. Callers invoke it
	// at batch boundaries (e.g. after a checkpoint pass) so compaction
	// cost never rides on an individual Put or Delete.
	MaybeCompact() (bool, error)
	// Stats reports the store's observable state.
	Stats() Stats
	// Close flushes and releases the store. The store is unusable after.
	Close() error
}

// Mem is the in-memory Store: a mutex-guarded map. It gives tests and
// embedders the full lifecycle surface with zero I/O; nothing survives
// the process.
type Mem struct {
	mu      sync.Mutex
	closed  bool
	entries map[string]Entry
	lsn     uint64
	appends uint64
}

// NewMem returns an empty in-memory store.
func NewMem() *Mem { return &Mem{entries: make(map[string]Entry)} }

// Put records the latest state of one stream.
func (m *Mem) Put(e Entry) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return ErrClosed
	}
	m.lsn++
	m.appends++
	m.entries[e.ID] = e
	return nil
}

// PutAsync records the latest state of one stream. The map commits
// synchronously, so the ticket is resolved before it is returned.
func (m *Mem) PutAsync(e Entry) *Ticket { return ResolvedTicket(m.Put(e)) }

// Delete records that a stream was removed.
func (m *Mem) Delete(id string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return ErrClosed
	}
	m.lsn++
	m.appends++
	delete(m.entries, id)
	return nil
}

// Load returns the live entries, sorted by ID.
func (m *Mem) Load() ([]Entry, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil, ErrClosed
	}
	return sortedEntries(m.entries), nil
}

// Compact is a no-op: the map is always compact.
func (m *Mem) Compact() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return ErrClosed
	}
	return nil
}

// MaybeCompact is a no-op: the map is always compact.
func (m *Mem) MaybeCompact() (bool, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return false, ErrClosed
	}
	return false, nil
}

// Stats reports the store's observable state.
func (m *Mem) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return Stats{Backend: "mem", Entries: len(m.entries), LastLSN: m.lsn, Appends: m.appends}
}

// Close marks the store unusable.
func (m *Mem) Close() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.closed = true
	return nil
}

// sortedEntries snapshots a live map into an ID-sorted slice.
func sortedEntries(entries map[string]Entry) []Entry {
	out := make([]Entry, 0, len(entries))
	for _, e := range entries {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

var _ Store = (*Mem)(nil)
