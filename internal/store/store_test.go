package store

import (
	"bufio"
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"datamarket/internal/pricing"
)

// testEnv builds a real linear-family envelope (the store treats it as an
// opaque payload, but realistic envelopes keep the frame sizes honest).
func testEnv(t *testing.T, dim int, rounds int) *pricing.Envelope {
	t.Helper()
	p, err := pricing.NewFamilyPoster(pricing.FamilySpec{Family: pricing.FamilyLinear, Dim: dim, Horizon: 1000})
	if err != nil {
		t.Fatalf("NewFamilyPoster: %v", err)
	}
	s := pricing.NewSync(p)
	x := make([]float64, dim)
	for i := range x {
		x[i] = 1 / float64(dim)
	}
	for r := 0; r < rounds; r++ {
		if _, _, err := s.PriceRound(x, 0, func(q pricing.Quote) bool { return q.Price <= 1 }); err != nil {
			t.Fatalf("PriceRound: %v", err)
		}
	}
	env, err := s.SnapshotEnvelope()
	if err != nil {
		t.Fatalf("SnapshotEnvelope: %v", err)
	}
	return env
}

func loadMap(t *testing.T, s Store) map[string]Entry {
	t.Helper()
	entries, err := s.Load()
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	m := make(map[string]Entry, len(entries))
	for _, e := range entries {
		m[e.ID] = e
	}
	return m
}

func TestMemStoreLifecycle(t *testing.T) {
	m := NewMem()
	if err := m.Put(Entry{ID: "a", Rev: 1, Env: testEnv(t, 2, 1)}); err != nil {
		t.Fatalf("Put: %v", err)
	}
	if err := m.Put(Entry{ID: "b", Rev: 3, Env: testEnv(t, 2, 2)}); err != nil {
		t.Fatalf("Put: %v", err)
	}
	if err := m.Delete("a"); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	got := loadMap(t, m)
	if len(got) != 1 || got["b"].Rev != 3 {
		t.Fatalf("live set = %v, want only b@3", got)
	}
	if st := m.Stats(); st.Backend != "mem" || st.Entries != 1 || st.Appends != 3 {
		t.Fatalf("Stats = %+v", st)
	}
	if err := m.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := m.Put(Entry{ID: "c"}); err != ErrClosed {
		t.Fatalf("Put after close = %v, want ErrClosed", err)
	}
}

func TestFrameRoundTripAndCorruption(t *testing.T) {
	payloads := [][]byte{[]byte(`{"a":1}`), []byte(``), bytes.Repeat([]byte("x"), 4096)}
	var buf []byte
	for _, p := range payloads {
		buf = appendFrame(buf, p)
	}
	r := bufio.NewReader(bytes.NewReader(buf))
	for i, want := range payloads {
		got, err := readFrame(r)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("frame %d = %q, want %q", i, got, want)
		}
	}
	if _, err := readFrame(r); err == nil || err.Error() != "EOF" {
		t.Fatalf("clean end = %v, want EOF", err)
	}

	// Flip one payload byte: the CRC must catch it.
	corrupt := append([]byte(nil), buf...)
	corrupt[frameHeaderSize] ^= 0xff
	if _, err := readFrame(bufio.NewReader(bytes.NewReader(corrupt))); err != errTorn {
		t.Fatalf("corrupt frame = %v, want errTorn", err)
	}

	// A partial final frame is torn, not a clean EOF.
	r = bufio.NewReader(bytes.NewReader(buf[:len(buf)-3]))
	var last error
	for {
		if _, last = readFrame(r); last != nil {
			break
		}
	}
	if last != errTorn {
		t.Fatalf("partial tail = %v, want errTorn", last)
	}
}

func TestJournalRoundTrip(t *testing.T) {
	dir := t.TempDir()
	j, err := OpenJournal(JournalConfig{Dir: dir, Fsync: FsyncNever})
	if err != nil {
		t.Fatalf("OpenJournal: %v", err)
	}
	envA, envB := testEnv(t, 3, 5), testEnv(t, 2, 0)
	if err := j.Put(Entry{ID: "a", Rev: 5, Env: envA}); err != nil {
		t.Fatalf("Put a: %v", err)
	}
	if err := j.Put(Entry{ID: "b", Rev: 0, Env: envB}); err != nil {
		t.Fatalf("Put b: %v", err)
	}
	if err := j.Put(Entry{ID: "a", Rev: 7, Env: envA}); err != nil {
		t.Fatalf("Put a again: %v", err)
	}
	if err := j.Delete("b"); err != nil {
		t.Fatalf("Delete b: %v", err)
	}
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	j2, err := OpenJournal(JournalConfig{Dir: dir})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer j2.Close()
	got := loadMap(t, j2)
	if len(got) != 1 {
		t.Fatalf("live set has %d entries, want 1", len(got))
	}
	e := got["a"]
	if e.Rev != 7 || !reflect.DeepEqual(e.Env, envA) {
		t.Fatalf("entry a = rev %d (env equal: %v), want rev 7 with identical envelope",
			e.Rev, reflect.DeepEqual(e.Env, envA))
	}
	st := j2.Stats()
	if st.TornTailRepaired {
		t.Fatal("clean close reported a torn tail")
	}
	if st.RecoveredEntries != 1 || st.LastLSN != 4 {
		t.Fatalf("Stats = %+v, want 1 recovered entry at LSN 4", st)
	}
}

func TestJournalTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	j, err := OpenJournal(JournalConfig{Dir: dir, Fsync: FsyncAlways})
	if err != nil {
		t.Fatalf("OpenJournal: %v", err)
	}
	if err := j.Put(Entry{ID: "a", Rev: 1, Env: testEnv(t, 2, 3)}); err != nil {
		t.Fatalf("Put: %v", err)
	}
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Simulate a crash mid-append: garbage at the tail.
	path := filepath.Join(dir, journalFile)
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatalf("open journal: %v", err)
	}
	if _, err := f.Write([]byte{0x10, 0x00, 0x00, 0x00, 0xde, 0xad}); err != nil {
		t.Fatalf("append garbage: %v", err)
	}
	f.Close()

	j2, err := OpenJournal(JournalConfig{Dir: dir})
	if err != nil {
		t.Fatalf("reopen with torn tail: %v", err)
	}
	if st := j2.Stats(); !st.TornTailRepaired {
		t.Fatalf("Stats = %+v, want TornTailRepaired", st)
	}
	if got := loadMap(t, j2); len(got) != 1 || got["a"].Rev != 1 {
		t.Fatalf("live set = %v, want a@1", got)
	}
	// The tail was truncated, so appends land on a clean boundary.
	if err := j2.Put(Entry{ID: "b", Rev: 2, Env: testEnv(t, 2, 0)}); err != nil {
		t.Fatalf("Put after repair: %v", err)
	}
	if err := j2.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	j3, err := OpenJournal(JournalConfig{Dir: dir})
	if err != nil {
		t.Fatalf("third open: %v", err)
	}
	defer j3.Close()
	if st := j3.Stats(); st.TornTailRepaired {
		t.Fatal("repaired journal still reports a torn tail")
	}
	if got := loadMap(t, j3); len(got) != 2 {
		t.Fatalf("live set has %d entries, want 2", len(got))
	}
}

func TestJournalCompaction(t *testing.T) {
	dir := t.TempDir()
	j, err := OpenJournal(JournalConfig{Dir: dir, Fsync: FsyncNever})
	if err != nil {
		t.Fatalf("OpenJournal: %v", err)
	}
	for _, id := range []string{"a", "b", "c"} {
		if err := j.Put(Entry{ID: id, Rev: 1, Env: testEnv(t, 2, 1)}); err != nil {
			t.Fatalf("Put %s: %v", id, err)
		}
	}
	if err := j.Delete("c"); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if err := j.Compact(); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	st := j.Stats()
	if st.Compactions != 1 || st.JournalBytes != 0 || st.JournalRecords != 0 || st.CheckpointBytes == 0 {
		t.Fatalf("post-compact Stats = %+v", st)
	}
	// Post-compaction appends replay on top of the checkpoint.
	if err := j.Put(Entry{ID: "d", Rev: 9, Env: testEnv(t, 2, 2)}); err != nil {
		t.Fatalf("Put d: %v", err)
	}
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	j2, err := OpenJournal(JournalConfig{Dir: dir})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer j2.Close()
	got := loadMap(t, j2)
	if len(got) != 3 || got["d"].Rev != 9 {
		t.Fatalf("live set = %v, want a, b, d@9", got)
	}
}

// TestJournalLSNGateSkipsStaleRecords simulates the crash window between
// the checkpoint rename and the journal reset: stale journal records
// whose LSN the checkpoint already covers must not regress the state.
func TestJournalLSNGateSkipsStaleRecords(t *testing.T) {
	dir := t.TempDir()
	j, err := OpenJournal(JournalConfig{Dir: dir, Fsync: FsyncNever})
	if err != nil {
		t.Fatalf("OpenJournal: %v", err)
	}
	if err := j.Put(Entry{ID: "a", Rev: 1, Env: testEnv(t, 2, 1)}); err != nil {
		t.Fatalf("Put: %v", err)
	}
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	stale, err := os.ReadFile(filepath.Join(dir, journalFile))
	if err != nil {
		t.Fatalf("read journal: %v", err)
	}

	j, err = OpenJournal(JournalConfig{Dir: dir, Fsync: FsyncNever})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if err := j.Put(Entry{ID: "a", Rev: 2, Env: testEnv(t, 2, 4)}); err != nil {
		t.Fatalf("Put rev 2: %v", err)
	}
	if err := j.Compact(); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// "Lose" the journal reset: restore the pre-compaction journal whose
	// record (a@rev1, LSN 1) is covered by the checkpoint (LSN 2).
	if err := os.WriteFile(filepath.Join(dir, journalFile), stale, 0o644); err != nil {
		t.Fatalf("restore stale journal: %v", err)
	}
	j2, err := OpenJournal(JournalConfig{Dir: dir})
	if err != nil {
		t.Fatalf("reopen with stale journal: %v", err)
	}
	defer j2.Close()
	if got := loadMap(t, j2); got["a"].Rev != 2 {
		t.Fatalf("entry a = rev %d, want checkpointed rev 2 (stale journal record must be LSN-gated)", got["a"].Rev)
	}
}

func TestJournalMaybeCompact(t *testing.T) {
	dir := t.TempDir()
	j, err := OpenJournal(JournalConfig{Dir: dir, Fsync: FsyncNever, CompactAt: 1})
	if err != nil {
		t.Fatalf("OpenJournal: %v", err)
	}
	// Below threshold: a no-op.
	if compacted, err := j.MaybeCompact(); err != nil || compacted {
		t.Fatalf("MaybeCompact on empty journal = %v, %v", compacted, err)
	}
	for i := 0; i < 4; i++ {
		if err := j.Put(Entry{ID: "s", Rev: uint64(i), Env: testEnv(t, 2, i)}); err != nil {
			t.Fatalf("Put %d: %v", i, err)
		}
	}
	if compacted, err := j.MaybeCompact(); err != nil || !compacted {
		t.Fatalf("MaybeCompact past threshold = %v, %v, want compaction", compacted, err)
	}
	if st := j.Stats(); st.Compactions != 1 || st.JournalBytes != 0 {
		t.Fatalf("post-compact Stats = %+v", st)
	}
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	j2, err := OpenJournal(JournalConfig{Dir: dir})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer j2.Close()
	if got := loadMap(t, j2); len(got) != 1 || got["s"].Rev != 3 {
		t.Fatalf("live set = %v, want s@3", got)
	}
}

// TestJournalBrokenAfterUnrecoverableAppend: when an append fails and
// the rollback cannot restore the last good offset, the journal refuses
// further appends instead of acknowledging records a replay would
// silently discard behind the torn frame.
func TestJournalBrokenAfterUnrecoverableAppend(t *testing.T) {
	j, err := OpenJournal(JournalConfig{Dir: t.TempDir(), Fsync: FsyncNever})
	if err != nil {
		t.Fatalf("OpenJournal: %v", err)
	}
	if err := j.Put(Entry{ID: "a", Rev: 1, Env: testEnv(t, 2, 1)}); err != nil {
		t.Fatalf("Put: %v", err)
	}
	// Sabotage the file descriptor: the next write *and* the rollback
	// truncate both fail.
	j.f.Close()
	if err := j.Put(Entry{ID: "b", Rev: 1, Env: testEnv(t, 2, 0)}); err == nil {
		t.Fatal("Put succeeded on a closed journal file")
	}
	if err := j.Put(Entry{ID: "c", Rev: 1, Env: testEnv(t, 2, 0)}); err == nil {
		t.Fatal("journal accepted an append after an unrecoverable failure")
	}
}

func TestParseFsyncPolicy(t *testing.T) {
	for s, want := range map[string]FsyncPolicy{
		"": FsyncInterval, "always": FsyncAlways, "interval": FsyncInterval, "never": FsyncNever,
	} {
		got, err := ParseFsyncPolicy(s)
		if err != nil || got != want {
			t.Fatalf("ParseFsyncPolicy(%q) = %q, %v", s, got, err)
		}
	}
	if _, err := ParseFsyncPolicy("sometimes"); err == nil {
		t.Fatal("unknown policy accepted")
	}
	if _, err := OpenJournal(JournalConfig{Dir: t.TempDir(), Fsync: "sometimes"}); err == nil {
		t.Fatal("OpenJournal accepted unknown fsync policy")
	}
	if _, err := OpenJournal(JournalConfig{}); err == nil {
		t.Fatal("OpenJournal accepted empty dir")
	}
}
