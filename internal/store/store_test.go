package store

import (
	"bufio"
	"bytes"
	"fmt"
	"os"
	"reflect"
	"sync"
	"testing"
	"time"

	"datamarket/internal/pricing"
)

// testEnv builds a real linear-family envelope (the store treats it as an
// opaque payload, but realistic envelopes keep the frame sizes honest).
func testEnv(t *testing.T, dim int, rounds int) *pricing.Envelope {
	t.Helper()
	p, err := pricing.NewFamilyPoster(pricing.FamilySpec{Family: pricing.FamilyLinear, Dim: dim, Horizon: 1000})
	if err != nil {
		t.Fatalf("NewFamilyPoster: %v", err)
	}
	s := pricing.NewSync(p)
	x := make([]float64, dim)
	for i := range x {
		x[i] = 1 / float64(dim)
	}
	for r := 0; r < rounds; r++ {
		if _, _, err := s.PriceRound(x, 0, func(q pricing.Quote) bool { return q.Price <= 1 }); err != nil {
			t.Fatalf("PriceRound: %v", err)
		}
	}
	env, err := s.SnapshotEnvelope()
	if err != nil {
		t.Fatalf("SnapshotEnvelope: %v", err)
	}
	return env
}

// newestSegment returns the path of the newest numbered WAL segment —
// the one that was active when the journal last ran.
func newestSegment(t *testing.T, dir string) string {
	t.Helper()
	segs, err := listSegments(dir)
	if err != nil {
		t.Fatalf("listSegments: %v", err)
	}
	if len(segs) == 0 || segs[len(segs)-1].index == 0 {
		t.Fatalf("no numbered segment in %s", dir)
	}
	return segs[len(segs)-1].path
}

func loadMap(t *testing.T, s Store) map[string]Entry {
	t.Helper()
	entries, err := s.Load()
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	m := make(map[string]Entry, len(entries))
	for _, e := range entries {
		m[e.ID] = e
	}
	return m
}

func TestMemStoreLifecycle(t *testing.T) {
	m := NewMem()
	if err := m.Put(Entry{ID: "a", Rev: 1, Env: testEnv(t, 2, 1)}); err != nil {
		t.Fatalf("Put: %v", err)
	}
	if err := m.Put(Entry{ID: "b", Rev: 3, Env: testEnv(t, 2, 2)}); err != nil {
		t.Fatalf("Put: %v", err)
	}
	if err := m.Delete("a"); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	got := loadMap(t, m)
	if len(got) != 1 || got["b"].Rev != 3 {
		t.Fatalf("live set = %v, want only b@3", got)
	}
	if st := m.Stats(); st.Backend != "mem" || st.Entries != 1 || st.Appends != 3 {
		t.Fatalf("Stats = %+v", st)
	}
	if err := m.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := m.Put(Entry{ID: "c"}); err != ErrClosed {
		t.Fatalf("Put after close = %v, want ErrClosed", err)
	}
}

func TestFrameRoundTripAndCorruption(t *testing.T) {
	payloads := [][]byte{[]byte(`{"a":1}`), []byte(``), bytes.Repeat([]byte("x"), 4096)}
	var buf []byte
	for _, p := range payloads {
		buf = appendFrame(buf, p)
	}
	r := bufio.NewReader(bytes.NewReader(buf))
	for i, want := range payloads {
		got, err := readFrame(r)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("frame %d = %q, want %q", i, got, want)
		}
	}
	if _, err := readFrame(r); err == nil || err.Error() != "EOF" {
		t.Fatalf("clean end = %v, want EOF", err)
	}

	// Flip one payload byte: the CRC must catch it.
	corrupt := append([]byte(nil), buf...)
	corrupt[frameHeaderSize] ^= 0xff
	if _, err := readFrame(bufio.NewReader(bytes.NewReader(corrupt))); err != errTorn {
		t.Fatalf("corrupt frame = %v, want errTorn", err)
	}

	// A partial final frame is torn, not a clean EOF.
	r = bufio.NewReader(bytes.NewReader(buf[:len(buf)-3]))
	var last error
	for {
		if _, last = readFrame(r); last != nil {
			break
		}
	}
	if last != errTorn {
		t.Fatalf("partial tail = %v, want errTorn", last)
	}
}

func TestJournalRoundTrip(t *testing.T) {
	dir := t.TempDir()
	j, err := OpenJournal(JournalConfig{Dir: dir, Fsync: FsyncNever})
	if err != nil {
		t.Fatalf("OpenJournal: %v", err)
	}
	envA, envB := testEnv(t, 3, 5), testEnv(t, 2, 0)
	if err := j.Put(Entry{ID: "a", Rev: 5, Env: envA}); err != nil {
		t.Fatalf("Put a: %v", err)
	}
	if err := j.Put(Entry{ID: "b", Rev: 0, Env: envB}); err != nil {
		t.Fatalf("Put b: %v", err)
	}
	if err := j.Put(Entry{ID: "a", Rev: 7, Env: envA}); err != nil {
		t.Fatalf("Put a again: %v", err)
	}
	if err := j.Delete("b"); err != nil {
		t.Fatalf("Delete b: %v", err)
	}
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	j2, err := OpenJournal(JournalConfig{Dir: dir})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer j2.Close()
	got := loadMap(t, j2)
	if len(got) != 1 {
		t.Fatalf("live set has %d entries, want 1", len(got))
	}
	e := got["a"]
	if e.Rev != 7 || !reflect.DeepEqual(e.Env, envA) {
		t.Fatalf("entry a = rev %d (env equal: %v), want rev 7 with identical envelope",
			e.Rev, reflect.DeepEqual(e.Env, envA))
	}
	st := j2.Stats()
	if st.TornTailRepaired {
		t.Fatal("clean close reported a torn tail")
	}
	if st.RecoveredEntries != 1 || st.LastLSN != 4 {
		t.Fatalf("Stats = %+v, want 1 recovered entry at LSN 4", st)
	}
}

func TestJournalTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	j, err := OpenJournal(JournalConfig{Dir: dir, Fsync: FsyncAlways})
	if err != nil {
		t.Fatalf("OpenJournal: %v", err)
	}
	if err := j.Put(Entry{ID: "a", Rev: 1, Env: testEnv(t, 2, 3)}); err != nil {
		t.Fatalf("Put: %v", err)
	}
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Simulate a crash mid-append: garbage at the active segment's tail.
	path := newestSegment(t, dir)
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatalf("open journal: %v", err)
	}
	if _, err := f.Write([]byte{0x10, 0x00, 0x00, 0x00, 0xde, 0xad}); err != nil {
		t.Fatalf("append garbage: %v", err)
	}
	f.Close()

	j2, err := OpenJournal(JournalConfig{Dir: dir})
	if err != nil {
		t.Fatalf("reopen with torn tail: %v", err)
	}
	if st := j2.Stats(); !st.TornTailRepaired {
		t.Fatalf("Stats = %+v, want TornTailRepaired", st)
	}
	if got := loadMap(t, j2); len(got) != 1 || got["a"].Rev != 1 {
		t.Fatalf("live set = %v, want a@1", got)
	}
	// The tail was truncated, so appends land on a clean boundary.
	if err := j2.Put(Entry{ID: "b", Rev: 2, Env: testEnv(t, 2, 0)}); err != nil {
		t.Fatalf("Put after repair: %v", err)
	}
	if err := j2.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	j3, err := OpenJournal(JournalConfig{Dir: dir})
	if err != nil {
		t.Fatalf("third open: %v", err)
	}
	defer j3.Close()
	if st := j3.Stats(); st.TornTailRepaired {
		t.Fatal("repaired journal still reports a torn tail")
	}
	if got := loadMap(t, j3); len(got) != 2 {
		t.Fatalf("live set has %d entries, want 2", len(got))
	}
}

func TestJournalCompaction(t *testing.T) {
	dir := t.TempDir()
	j, err := OpenJournal(JournalConfig{Dir: dir, Fsync: FsyncNever})
	if err != nil {
		t.Fatalf("OpenJournal: %v", err)
	}
	for _, id := range []string{"a", "b", "c"} {
		if err := j.Put(Entry{ID: id, Rev: 1, Env: testEnv(t, 2, 1)}); err != nil {
			t.Fatalf("Put %s: %v", id, err)
		}
	}
	if err := j.Delete("c"); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if err := j.Compact(); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	st := j.Stats()
	if st.Compactions != 1 || st.JournalBytes != 0 || st.JournalRecords != 0 || st.CheckpointBytes == 0 {
		t.Fatalf("post-compact Stats = %+v", st)
	}
	// Post-compaction appends replay on top of the checkpoint.
	if err := j.Put(Entry{ID: "d", Rev: 9, Env: testEnv(t, 2, 2)}); err != nil {
		t.Fatalf("Put d: %v", err)
	}
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	j2, err := OpenJournal(JournalConfig{Dir: dir})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer j2.Close()
	got := loadMap(t, j2)
	if len(got) != 3 || got["d"].Rev != 9 {
		t.Fatalf("live set = %v, want a, b, d@9", got)
	}
}

// TestJournalLSNGateSkipsStaleRecords simulates the crash window between
// the checkpoint rename and the journal reset: stale journal records
// whose LSN the checkpoint already covers must not regress the state.
func TestJournalLSNGateSkipsStaleRecords(t *testing.T) {
	dir := t.TempDir()
	j, err := OpenJournal(JournalConfig{Dir: dir, Fsync: FsyncNever})
	if err != nil {
		t.Fatalf("OpenJournal: %v", err)
	}
	if err := j.Put(Entry{ID: "a", Rev: 1, Env: testEnv(t, 2, 1)}); err != nil {
		t.Fatalf("Put: %v", err)
	}
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	stalePath := newestSegment(t, dir)
	stale, err := os.ReadFile(stalePath)
	if err != nil {
		t.Fatalf("read journal: %v", err)
	}

	j, err = OpenJournal(JournalConfig{Dir: dir, Fsync: FsyncNever})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if err := j.Put(Entry{ID: "a", Rev: 2, Env: testEnv(t, 2, 4)}); err != nil {
		t.Fatalf("Put rev 2: %v", err)
	}
	if err := j.Compact(); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// "Lose" the segment removal: resurrect the pre-compaction segment
	// whose record (a@rev1, LSN 1) is covered by the checkpoint (LSN 2).
	// It comes back as a retired segment behind the fresh active one.
	if err := os.WriteFile(stalePath, stale, 0o644); err != nil {
		t.Fatalf("restore stale segment: %v", err)
	}
	j2, err := OpenJournal(JournalConfig{Dir: dir})
	if err != nil {
		t.Fatalf("reopen with stale journal: %v", err)
	}
	defer j2.Close()
	if got := loadMap(t, j2); got["a"].Rev != 2 {
		t.Fatalf("entry a = rev %d, want checkpointed rev 2 (stale journal record must be LSN-gated)", got["a"].Rev)
	}
}

func TestJournalMaybeCompact(t *testing.T) {
	dir := t.TempDir()
	j, err := OpenJournal(JournalConfig{Dir: dir, Fsync: FsyncNever, CompactAt: 1})
	if err != nil {
		t.Fatalf("OpenJournal: %v", err)
	}
	// Below threshold: a no-op.
	if compacted, err := j.MaybeCompact(); err != nil || compacted {
		t.Fatalf("MaybeCompact on empty journal = %v, %v", compacted, err)
	}
	for i := 0; i < 4; i++ {
		if err := j.Put(Entry{ID: "s", Rev: uint64(i), Env: testEnv(t, 2, i)}); err != nil {
			t.Fatalf("Put %d: %v", i, err)
		}
	}
	if compacted, err := j.MaybeCompact(); err != nil || !compacted {
		t.Fatalf("MaybeCompact past threshold = %v, %v, want compaction", compacted, err)
	}
	if st := j.Stats(); st.Compactions != 1 || st.JournalBytes != 0 {
		t.Fatalf("post-compact Stats = %+v", st)
	}
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	j2, err := OpenJournal(JournalConfig{Dir: dir})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer j2.Close()
	if got := loadMap(t, j2); len(got) != 1 || got["s"].Rev != 3 {
		t.Fatalf("live set = %v, want s@3", got)
	}
}

// TestJournalBrokenAfterUnrecoverableAppend: when an append fails and
// the rollback cannot restore the last good offset, the journal refuses
// further appends instead of acknowledging records a replay would
// silently discard behind the torn frame.
func TestJournalBrokenAfterUnrecoverableAppend(t *testing.T) {
	j, err := OpenJournal(JournalConfig{Dir: t.TempDir(), Fsync: FsyncNever})
	if err != nil {
		t.Fatalf("OpenJournal: %v", err)
	}
	if err := j.Put(Entry{ID: "a", Rev: 1, Env: testEnv(t, 2, 1)}); err != nil {
		t.Fatalf("Put: %v", err)
	}
	// Sabotage the file descriptor: the next write *and* the rollback
	// truncate both fail.
	j.f.Close()
	if err := j.Put(Entry{ID: "b", Rev: 1, Env: testEnv(t, 2, 0)}); err == nil {
		t.Fatal("Put succeeded on a closed journal file")
	}
	if err := j.Put(Entry{ID: "c", Rev: 1, Env: testEnv(t, 2, 0)}); err == nil {
		t.Fatal("journal accepted an append after an unrecoverable failure")
	}
	// Compaction replaces every segment file wholesale, so it clears the
	// latch: the rejected tail is gone and the checkpoint was written
	// from the in-memory live set, which never saw the failed batch.
	if err := j.Compact(); err != nil {
		t.Fatalf("Compact on broken journal: %v", err)
	}
	if err := j.Put(Entry{ID: "d", Rev: 1, Env: testEnv(t, 2, 0)}); err != nil {
		t.Fatalf("Put after compaction cleared the latch: %v", err)
	}
	got := loadMap(t, j)
	if _, leaked := got["b"]; len(got) != 2 || leaked {
		t.Fatalf("live set = %v, want a and d only", got)
	}
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

// TestJournalSegmentRotation: a tiny SegmentSize forces a rotation after
// every commit; the record stream must survive replay across segment
// boundaries and compaction must collapse the chain to one fresh segment.
func TestJournalSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	j, err := OpenJournal(JournalConfig{Dir: dir, Fsync: FsyncNever, SegmentSize: 1})
	if err != nil {
		t.Fatalf("OpenJournal: %v", err)
	}
	for i, id := range []string{"a", "b", "c", "a"} {
		if err := j.Put(Entry{ID: id, Rev: uint64(i + 1), Env: testEnv(t, 2, i)}); err != nil {
			t.Fatalf("Put %s: %v", id, err)
		}
	}
	if st := j.Stats(); st.Segments != 5 {
		t.Fatalf("Segments = %d after 4 rotating commits, want 5 (4 retired + active)", st.Segments)
	}
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	j2, err := OpenJournal(JournalConfig{Dir: dir, Fsync: FsyncNever, SegmentSize: 1})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	got := loadMap(t, j2)
	if len(got) != 3 || got["a"].Rev != 4 {
		t.Fatalf("live set = %v, want a@4, b@2, c@3", got)
	}
	st := j2.Stats()
	if st.Segments != 5 || st.LastLSN != 4 {
		t.Fatalf("post-replay Stats = %+v, want 5 segments at LSN 4", st)
	}
	if err := j2.Compact(); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	if st := j2.Stats(); st.Segments != 1 || st.JournalBytes != 0 {
		t.Fatalf("post-compact Stats = %+v, want a single fresh segment", st)
	}
	segs, err := listSegments(dir)
	if err != nil {
		t.Fatalf("listSegments: %v", err)
	}
	if len(segs) != 1 || segs[0].index != 6 {
		t.Fatalf("on-disk segments = %v, want only the fresh index-6 segment", segs)
	}
	if err := j2.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

// TestJournalCrashMidRotation covers the crash windows around segment
// rotation: an empty just-created segment, a torn tail in the newest
// segment (repaired), and a torn frame in a retired segment (corruption —
// the open must fail rather than silently drop records behind the hole).
func TestJournalCrashMidRotation(t *testing.T) {
	dir := t.TempDir()
	j, err := OpenJournal(JournalConfig{Dir: dir, Fsync: FsyncNever, SegmentSize: 1})
	if err != nil {
		t.Fatalf("OpenJournal: %v", err)
	}
	for i, id := range []string{"a", "b", "c"} {
		if err := j.Put(Entry{ID: id, Rev: uint64(i + 1), Env: testEnv(t, 2, i)}); err != nil {
			t.Fatalf("Put %s: %v", id, err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Crash between creating the next segment and the first append to it:
	// the newest segment is empty, which replay must tolerate.
	if f, err := createSegment(dir, 99); err != nil {
		t.Fatalf("createSegment: %v", err)
	} else {
		f.Close()
	}
	j2, err := OpenJournal(JournalConfig{Dir: dir, Fsync: FsyncNever, SegmentSize: 1})
	if err != nil {
		t.Fatalf("reopen with empty newest segment: %v", err)
	}
	if st := j2.Stats(); st.TornTailRepaired {
		t.Fatal("empty newest segment misreported as torn")
	}
	// Put lands in the empty newest segment, which became active.
	if err := j2.Put(Entry{ID: "d", Rev: 4, Env: testEnv(t, 2, 0)}); err != nil {
		t.Fatalf("Put after empty-segment recovery: %v", err)
	}
	if err := j2.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Crash mid-append after the rotation: torn tail in the newest
	// segment is repaired...
	tornPath := newestSegment(t, dir)
	if err := appendGarbage(tornPath); err != nil {
		t.Fatalf("append garbage: %v", err)
	}
	j3, err := OpenJournal(JournalConfig{Dir: dir, Fsync: FsyncNever})
	if err != nil {
		t.Fatalf("reopen with torn newest segment: %v", err)
	}
	if st := j3.Stats(); !st.TornTailRepaired {
		t.Fatalf("Stats = %+v, want TornTailRepaired", st)
	}
	if got := loadMap(t, j3); len(got) != 4 || got["d"].Rev != 4 {
		t.Fatalf("live set = %v, want a, b, c, d@4", got)
	}
	if err := j3.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// ...but the same garbage in a retired segment is corruption.
	segs, err := listSegments(dir)
	if err != nil {
		t.Fatalf("listSegments: %v", err)
	}
	if err := appendGarbage(segs[0].path); err != nil {
		t.Fatalf("corrupt retired segment: %v", err)
	}
	if _, err := OpenJournal(JournalConfig{Dir: dir, Fsync: FsyncNever}); err == nil {
		t.Fatal("open succeeded with a torn frame in a retired segment")
	}
}

// appendGarbage writes a partial frame (a plausible crash artifact) at
// the end of a segment file.
func appendGarbage(path string) error {
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		return err
	}
	if _, err := f.Write([]byte{0x10, 0x00, 0x00, 0x00, 0xde, 0xad}); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// TestJournalDeltaSupersession: checkpoint-delta replay ordering. A
// stale delta for a stream sits in an older segment; later records for
// the same stream (higher LSN, newer segments) must win on replay, and a
// deletion must not be resurrected by any earlier delta.
func TestJournalDeltaSupersession(t *testing.T) {
	dir := t.TempDir()
	j, err := OpenJournal(JournalConfig{Dir: dir, Fsync: FsyncNever, SegmentSize: 1})
	if err != nil {
		t.Fatalf("OpenJournal: %v", err)
	}
	// Each op lands in its own segment (SegmentSize: 1 rotates per commit).
	steps := []func() error{
		func() error { return j.Put(Entry{ID: "a", Rev: 1, Env: testEnv(t, 2, 1)}) },
		func() error { return j.Put(Entry{ID: "b", Rev: 1, Env: testEnv(t, 2, 1)}) },
		func() error { return j.Put(Entry{ID: "a", Rev: 2, Env: testEnv(t, 2, 2)}) },
		func() error { return j.Delete("b") },
		func() error { return j.Put(Entry{ID: "a", Rev: 3, Env: testEnv(t, 2, 3)}) },
	}
	for i, step := range steps {
		if err := step(); err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	j2, err := OpenJournal(JournalConfig{Dir: dir, Fsync: FsyncNever})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	got := loadMap(t, j2)
	if len(got) != 1 || got["a"].Rev != 3 {
		t.Fatalf("live set = %v, want only a@3 (stale deltas superseded, b not resurrected)", got)
	}
	// Compaction folds the surviving deltas into the base checkpoint; the
	// folded state must match.
	if err := j2.Compact(); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	if err := j2.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	j3, err := OpenJournal(JournalConfig{Dir: dir})
	if err != nil {
		t.Fatalf("reopen after compaction: %v", err)
	}
	defer j3.Close()
	if got := loadMap(t, j3); len(got) != 1 || got["a"].Rev != 3 {
		t.Fatalf("post-compaction live set = %v, want only a@3", got)
	}
}

// TestJournalGroupCommitSharesFsyncs: concurrent appenders under
// FsyncAlways must land in shared batches — far fewer commits (fsyncs)
// than appends — without losing a record.
func TestJournalGroupCommitSharesFsyncs(t *testing.T) {
	dir := t.TempDir()
	j, err := OpenJournal(JournalConfig{Dir: dir, Fsync: FsyncAlways, CommitWindow: 2 * time.Millisecond})
	if err != nil {
		t.Fatalf("OpenJournal: %v", err)
	}
	const workers, perWorker = 16, 8
	env := testEnv(t, 2, 1)
	errs := make(chan error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 1; i <= perWorker; i++ {
				if err := j.Put(Entry{ID: fmt.Sprintf("s%02d", w), Rev: uint64(i), Env: env}); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("concurrent Put: %v", err)
	}
	st := j.Stats()
	if st.Appends != workers*perWorker || st.CommitRecords != st.Appends {
		t.Fatalf("Stats = %+v, want %d appends all carried by commits", st, workers*perWorker)
	}
	if st.Commits == 0 || st.Commits >= st.Appends {
		t.Fatalf("Commits = %d for %d appends: group commit did not batch", st.Commits, st.Appends)
	}
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	j2, err := OpenJournal(JournalConfig{Dir: dir})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer j2.Close()
	got := loadMap(t, j2)
	if len(got) != workers {
		t.Fatalf("live set has %d entries, want %d", len(got), workers)
	}
	for w := 0; w < workers; w++ {
		if got[fmt.Sprintf("s%02d", w)].Rev != perWorker {
			t.Fatalf("stream s%02d = %+v, want rev %d", w, got[fmt.Sprintf("s%02d", w)], perWorker)
		}
	}
}

// TestJournalPutAsyncTickets: the asynchronous enqueue path. Tickets
// resolve when the shared commit lands, Wait is idempotent, Close drains
// every enqueued record before returning, and a closed journal resolves
// tickets with ErrClosed.
func TestJournalPutAsyncTickets(t *testing.T) {
	dir := t.TempDir()
	j, err := OpenJournal(JournalConfig{Dir: dir, Fsync: FsyncNever})
	if err != nil {
		t.Fatalf("OpenJournal: %v", err)
	}
	var tickets []*Ticket
	for i := 1; i <= 5; i++ {
		tickets = append(tickets, j.PutAsync(Entry{ID: "a", Rev: uint64(i), Env: testEnv(t, 2, i)}))
	}
	for i, tk := range tickets {
		if err := tk.Wait(); err != nil {
			t.Fatalf("ticket %d: %v", i, err)
		}
		if err := tk.Wait(); err != nil {
			t.Fatalf("ticket %d second Wait: %v", i, err)
		}
	}
	if got := loadMap(t, j); len(got) != 1 || got["a"].Rev != 5 {
		t.Fatalf("live set = %v, want a@5", got)
	}
	// Records enqueued but not yet waited on are drained by Close.
	drained := j.PutAsync(Entry{ID: "a", Rev: 6, Env: testEnv(t, 2, 0)})
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := drained.Wait(); err != nil {
		t.Fatalf("ticket enqueued before Close: %v", err)
	}
	if err := j.PutAsync(Entry{ID: "a", Rev: 7, Env: testEnv(t, 2, 0)}).Wait(); err != ErrClosed {
		t.Fatalf("PutAsync after Close = %v, want ErrClosed", err)
	}
	j2, err := OpenJournal(JournalConfig{Dir: dir})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer j2.Close()
	if got := loadMap(t, j2); got["a"].Rev != 6 {
		t.Fatalf("live set = %v, want the drained a@6", got)
	}
}

func TestParseFsyncPolicy(t *testing.T) {
	for s, want := range map[string]FsyncPolicy{
		"": FsyncInterval, "always": FsyncAlways, "interval": FsyncInterval, "never": FsyncNever,
	} {
		got, err := ParseFsyncPolicy(s)
		if err != nil || got != want {
			t.Fatalf("ParseFsyncPolicy(%q) = %q, %v", s, got, err)
		}
	}
	if _, err := ParseFsyncPolicy("sometimes"); err == nil {
		t.Fatal("unknown policy accepted")
	}
	if _, err := OpenJournal(JournalConfig{Dir: t.TempDir(), Fsync: "sometimes"}); err == nil {
		t.Fatal("OpenJournal accepted unknown fsync policy")
	}
	if _, err := OpenJournal(JournalConfig{}); err == nil {
		t.Fatal("OpenJournal accepted empty dir")
	}
}
