// Package analysis is a minimal, dependency-free reimplementation of
// the golang.org/x/tools/go/analysis vocabulary — Analyzer, Pass,
// Diagnostic — plus a whole-program view (Program) that the
// datamarket-lint passes use to check cross-package invariants.
//
// The x/tools module is deliberately not a dependency: the repo builds
// with a zero-entry go.sum, and the analyzers here need whole-program
// type information anyway (e.g. "is every store sentinel mapped in the
// server's error table?"), which the upstream driver only provides
// through Facts. Instead the loader (loader.go) type-checks the whole
// dependency closure from source in one process and every pass gets a
// *Program with syntax and types for all packages in the run.
//
// The shape is kept close enough to upstream that a future PR can swap
// the driver for the real go/analysis multichecker by deleting the
// loader and renaming imports.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one lint pass.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //lint:ignore directives. Lower-case, no spaces.
	Name string

	// Doc is the one-paragraph description printed by -help.
	Doc string

	// Anchor is the import path the analyzer keys on. Whole-program
	// analyzers run exactly once per lint invocation, when the anchor
	// package is among the loaded target packages; the Pass they
	// receive points at the anchor package and the full Program. If
	// Anchor is empty the analyzer runs once per target package.
	Anchor string

	// Run executes the analyzer. Findings are reported via
	// Pass.Reportf; the return value carries an operational error
	// (analysis could not run), not lint findings.
	Run func(*Pass) error
}

// Package is one loaded, parsed, type-checked package.
type Package struct {
	// PkgPath is the package's import path ("datamarket/api").
	PkgPath string

	// Dir is the directory holding the package sources.
	Dir string

	// Target reports whether the package was named by the lint
	// patterns (as opposed to loaded as a dependency). Diagnostics
	// are only reported against target packages.
	Target bool

	// Syntax holds the parsed files, in GoFiles order.
	Syntax []*ast.File

	// Types is the type-checked package object.
	Types *types.Package

	// TypesInfo records type information for Syntax.
	TypesInfo *types.Info

	// Errors holds type-check errors. Dependency packages tolerate
	// errors (the checker recovers); target packages must be clean
	// before analyzers run.
	Errors []error
}

// Program is the whole-program view shared by every pass in a run.
type Program struct {
	Fset *token.FileSet

	// Packages maps import path to every loaded package, targets and
	// dependencies alike.
	Packages map[string]*Package

	// Targets lists the packages named by the lint patterns, in
	// load order (dependencies first).
	Targets []*Package
}

// Lookup returns the loaded package with the given import path, or nil.
func (p *Program) Lookup(path string) *Package { return p.Packages[path] }

// Diagnostic is one lint finding.
type Diagnostic struct {
	Pos      token.Pos
	Message  string
	Analyzer string
}

// Pass carries one analyzer execution over one package (or, for
// anchored analyzers, over the whole program via Prog).
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package
	Prog     *Program

	diagnostics *[]Diagnostic
}

// Reportf records a finding at pos. The position may be in any loaded
// package; the driver drops findings outside target packages.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diagnostics = append(*p.diagnostics, Diagnostic{
		Pos:      pos,
		Message:  fmt.Sprintf(format, args...),
		Analyzer: p.Analyzer.Name,
	})
}
