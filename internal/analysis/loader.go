package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
)

// The loader builds a Program without golang.org/x/tools/go/packages:
// one `go list -deps -json` exec enumerates the dependency closure in
// topological order, then every package is parsed with go/parser and
// type-checked from source with go/types. CGO_ENABLED=0 keeps the file
// sets pure Go so source type-checking needs no C toolchain.

// listPackage is the subset of `go list -json` output the loader uses.
type listPackage struct {
	ImportPath string
	Dir        string
	Standard   bool
	GoFiles    []string
	Imports    []string
	ImportMap  map[string]string
	Error      *listError
	Incomplete bool

	// targetPkg marks packages named by the lint patterns (loader
	// state, not part of the go list schema).
	targetPkg bool
}

type listError struct {
	Pos string
	Err string
}

// LoadConfig parameterizes Load.
type LoadConfig struct {
	// Dir is the working directory for `go list` (the module root or
	// any directory inside it). Empty means the process working dir.
	Dir string
}

// Load lists patterns plus their full dependency closure, parses and
// type-checks everything from source, and returns the Program.
func Load(cfg LoadConfig, patterns ...string) (*Program, error) {
	pkgs, err := goList(cfg, patterns)
	if err != nil {
		return nil, err
	}
	return typecheck(pkgs)
}

func goList(cfg LoadConfig, patterns []string) ([]*listPackage, error) {
	args := []string{"list", "-e", "-deps", "-json=ImportPath,Dir,Standard,GoFiles,Imports,ImportMap,Error,Incomplete", "--"}
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = cfg.Dir
	// Pure-Go builds: cgo packages (net, os/user, ...) fall back to
	// their Go implementations, so every file go list reports can be
	// type-checked without a C compiler or preprocessed cgo output.
	cmd.Env = append(os.Environ(), "CGO_ENABLED=0")
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	var pkgs []*listPackage
	dec := json.NewDecoder(&stdout)
	for {
		var p listPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		pkgs = append(pkgs, &p)
	}
	// -deps emits dependencies before dependents, interleaved, so the
	// pattern-named targets aren't identifiable from ordering alone;
	// one cheap extra exec without -deps resolves exactly them.
	targets, err := goListTargets(cfg, patterns)
	if err != nil {
		return nil, err
	}
	for _, p := range pkgs {
		p.targetPkg = targets[p.ImportPath]
	}
	return pkgs, nil
}

func goListTargets(cfg LoadConfig, patterns []string) (map[string]bool, error) {
	args := []string{"list", "-e", "--"}
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = cfg.Dir
	cmd.Env = append(os.Environ(), "CGO_ENABLED=0")
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	targets := make(map[string]bool)
	for _, line := range strings.Split(stdout.String(), "\n") {
		if line = strings.TrimSpace(line); line != "" {
			targets[line] = true
		}
	}
	return targets, nil
}

// typecheck parses and type-checks the listed packages in dependency
// order and assembles the Program.
func typecheck(pkgs []*listPackage) (*Program, error) {
	fset := token.NewFileSet()
	prog := &Program{Fset: fset, Packages: make(map[string]*Package, len(pkgs))}
	imp := &progImporter{prog: prog, byPath: make(map[string]*listPackage, len(pkgs))}
	for _, lp := range pkgs {
		imp.byPath[lp.ImportPath] = lp
	}

	// Parse all files up front, in parallel: parsing dominates wall
	// time next to type-checking and is embarrassingly parallel.
	type parsed struct {
		files []*ast.File
		errs  []error
	}
	parsedByPath := make(map[string]*parsed, len(pkgs))
	var mu sync.Mutex
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	var wg sync.WaitGroup
	for _, lp := range pkgs {
		wg.Add(1)
		go func(lp *listPackage) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			pr := &parsed{}
			for _, name := range lp.GoFiles {
				path := filepath.Join(lp.Dir, name)
				f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
				if err != nil {
					pr.errs = append(pr.errs, err)
				}
				if f != nil {
					pr.files = append(pr.files, f)
				}
			}
			mu.Lock()
			parsedByPath[lp.ImportPath] = pr
			mu.Unlock()
		}(lp)
	}
	wg.Wait()

	sizes := types.SizesFor("gc", runtime.GOARCH)
	for _, lp := range pkgs {
		if lp.ImportPath == "unsafe" {
			prog.Packages["unsafe"] = &Package{PkgPath: "unsafe", Types: types.Unsafe}
			continue
		}
		pr := parsedByPath[lp.ImportPath]
		pkg := &Package{
			PkgPath: lp.ImportPath,
			Dir:     lp.Dir,
			Target:  lp.targetPkg,
			Syntax:  pr.files,
			Errors:  pr.errs,
			TypesInfo: &types.Info{
				Types:      make(map[ast.Expr]types.TypeAndValue),
				Defs:       make(map[*ast.Ident]types.Object),
				Uses:       make(map[*ast.Ident]types.Object),
				Selections: make(map[*ast.SelectorExpr]*types.Selection),
				Implicits:  make(map[ast.Node]types.Object),
				Scopes:     make(map[ast.Node]*types.Scope),
				Instances:  make(map[*ast.Ident]types.Instance),
			},
		}
		imp.current = lp
		conf := types.Config{
			Importer:    imp,
			Sizes:       sizes,
			FakeImportC: true,
			Error:       func(err error) { pkg.Errors = append(pkg.Errors, err) },
		}
		tpkg, _ := conf.Check(lp.ImportPath, fset, pr.files, pkg.TypesInfo)
		pkg.Types = tpkg
		prog.Packages[lp.ImportPath] = pkg
		if pkg.Target {
			prog.Targets = append(prog.Targets, pkg)
		}
	}

	// Target packages must type-check cleanly — analyzers reason
	// about their types. Dependencies may carry recoverable errors
	// (e.g. platform-specific corners the source checker is stricter
	// about than the compiler); those don't block the run.
	var broken []string
	for _, t := range prog.Targets {
		if len(t.Errors) > 0 {
			broken = append(broken, fmt.Sprintf("%s: %v", t.PkgPath, t.Errors[0]))
		}
	}
	if len(broken) > 0 {
		sort.Strings(broken)
		return nil, fmt.Errorf("packages contain errors:\n  %s", strings.Join(broken, "\n  "))
	}
	return prog, nil
}

// progImporter resolves imports against the already-checked packages in
// the Program. Because `go list -deps` emits dependencies first, every
// import a package names has been checked by the time the package is.
type progImporter struct {
	prog    *Program
	byPath  map[string]*listPackage
	current *listPackage
}

func (im *progImporter) Import(path string) (*types.Package, error) {
	return im.ImportFrom(path, "", 0)
}

func (im *progImporter) ImportFrom(path, _ string, _ types.ImportMode) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	// ImportMap handles vendoring and the "net" → "vendor/golang.org/…"
	// style stdlib vendor indirection.
	if im.current != nil {
		if mapped, ok := im.current.ImportMap[path]; ok {
			path = mapped
		}
	}
	if pkg := im.prog.Packages[path]; pkg != nil && pkg.Types != nil {
		return pkg.Types, nil
	}
	if pkg := im.prog.Packages["vendor/"+path]; pkg != nil && pkg.Types != nil {
		return pkg.Types, nil
	}
	return nil, fmt.Errorf("package %q not loaded", path)
}
