// Package analysistest runs an analyzer over a fixture module and
// checks its diagnostics against // want "regex" comments, mirroring
// golang.org/x/tools/go/analysis/analysistest.
//
// A fixture is a self-contained Go module under the pass's testdata
// directory declaring `module datamarket`, so fixture packages occupy
// the same import paths (datamarket/api, datamarket/internal/server,
// ...) the default analyzer configs anchor on. The nested go.mod keeps
// fixtures out of the parent module's ./... build and test patterns.
//
// Expectations:
//
//	x := bad()        // want "regex matching the diagnostic"
//	y := alsoBad()    // want "first" "second"
//
// Every diagnostic must match a want on its line, and every want must
// be matched by a diagnostic — in both directions a miss fails the
// test. //lint:ignore directives are honored by the driver before
// matching, so a suppressed violation carries no want comment (and the
// test fails if suppression breaks).
package analysistest

import (
	"regexp"
	"strconv"
	"strings"
	"testing"

	"datamarket/internal/analysis"
)

// Run loads the fixture module rooted at dir and checks the analyzer's
// diagnostics against the fixture's want comments.
func Run(t *testing.T, dir string, a *analysis.Analyzer) {
	t.Helper()
	prog, err := analysis.Load(analysis.LoadConfig{Dir: dir}, "./...")
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	diags, err := analysis.Run(prog, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}

	wants := collectWants(t, prog)
	matched := make([]bool, len(wants))
	for _, d := range diags {
		pos := prog.Fset.Position(d.Pos)
		found := false
		for i, w := range wants {
			if matched[i] || w.file != pos.Filename || w.line != pos.Line {
				continue
			}
			if w.re.MatchString(d.Message) {
				matched[i] = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s: unexpected diagnostic: %s (%s)", pos, d.Message, d.Analyzer)
		}
	}
	for i, w := range wants {
		if !matched[i] {
			t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.re)
		}
	}
}

type want struct {
	file string
	line int
	re   *regexp.Regexp
}

func collectWants(t *testing.T, prog *analysis.Program) []want {
	t.Helper()
	var wants []want
	for _, pkg := range prog.Targets {
		for _, f := range pkg.Syntax {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					pos := prog.Fset.Position(c.Pos())
					for _, pat := range parseWant(c.Text) {
						re, err := regexp.Compile(pat)
						if err != nil {
							t.Fatalf("%s: bad want pattern %q: %v", pos, pat, err)
						}
						wants = append(wants, want{file: pos.Filename, line: pos.Line, re: re})
					}
				}
			}
		}
	}
	return wants
}

// parseWant extracts the quoted regexes from a `// want "..." "..."`
// comment (double-quoted with Go escapes, or backquoted raw).
func parseWant(comment string) []string {
	text := strings.TrimSpace(strings.TrimPrefix(comment, "//"))
	rest, ok := strings.CutPrefix(text, "want ")
	if !ok {
		return nil
	}
	var pats []string
	rest = strings.TrimSpace(rest)
	for rest != "" {
		switch rest[0] {
		case '"':
			end := closingQuote(rest)
			if end < 0 {
				return pats
			}
			if s, err := strconv.Unquote(rest[:end+1]); err == nil {
				pats = append(pats, s)
			}
			rest = strings.TrimSpace(rest[end+1:])
		case '`':
			end := strings.Index(rest[1:], "`")
			if end < 0 {
				return pats
			}
			pats = append(pats, rest[1:1+end])
			rest = strings.TrimSpace(rest[end+2:])
		default:
			return pats
		}
	}
	return pats
}

// closingQuote finds the index of the unescaped closing double quote.
func closingQuote(s string) int {
	for i := 1; i < len(s); i++ {
		switch s[i] {
		case '\\':
			i++
		case '"':
			return i
		}
	}
	return -1
}
