package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Run executes the analyzers over the program and returns the surviving
// diagnostics, sorted by position. Per-package analyzers run once per
// target package; anchored analyzers run once, iff their anchor package
// is among the targets. Diagnostics in non-target packages and
// diagnostics suppressed by //lint:ignore directives are dropped.
func Run(prog *Program, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		if a.Anchor != "" {
			anchor := prog.Lookup(a.Anchor)
			if anchor == nil || !anchor.Target {
				continue
			}
			pass := &Pass{Analyzer: a, Pkg: anchor, Prog: prog, diagnostics: &diags}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %v", a.Name, err)
			}
			continue
		}
		for _, pkg := range prog.Targets {
			pass := &Pass{Analyzer: a, Pkg: pkg, Prog: prog, diagnostics: &diags}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s (%s): %v", a.Name, pkg.PkgPath, err)
			}
		}
	}

	sup := collectSuppressions(prog)
	kept := diags[:0]
	for _, d := range diags {
		pos := prog.Fset.Position(d.Pos)
		if !inTarget(prog, pos.Filename) {
			continue
		}
		if sup.suppressed(d.Analyzer, pos) {
			continue
		}
		kept = append(kept, d)
	}
	kept = append(kept, sup.malformed...)
	sort.Slice(kept, func(i, j int) bool {
		pi, pj := prog.Fset.Position(kept[i].Pos), prog.Fset.Position(kept[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		return kept[i].Message < kept[j].Message
	})
	return dedup(prog, kept), nil
}

func inTarget(prog *Program, filename string) bool {
	for _, t := range prog.Targets {
		if t.Dir != "" && strings.HasPrefix(filename, t.Dir+"/") {
			return true
		}
	}
	return false
}

func dedup(prog *Program, diags []Diagnostic) []Diagnostic {
	seen := make(map[string]bool, len(diags))
	out := diags[:0]
	for _, d := range diags {
		key := fmt.Sprintf("%s|%s|%s", prog.Fset.Position(d.Pos), d.Analyzer, d.Message)
		if seen[key] {
			continue
		}
		seen[key] = true
		out = append(out, d)
	}
	return out
}

// suppressions indexes //lint:ignore directives by file and line.
type suppressions struct {
	// byFileLine: filename → line of the directive → directive.
	byFileLine map[string]map[int]*ignoreDirective
	// commentLines: filename → set of lines that are covered by any
	// comment, used to let a directive sit above a doc comment.
	commentLines map[string]map[int]bool
	// codeLines: filename → lines where a non-comment token starts.
	// The upward directive search stops at code lines, so a trailing
	// directive on one statement can never leak onto the next.
	codeLines map[string]map[int]bool
	malformed []Diagnostic
}

type ignoreDirective struct {
	analyzers map[string]bool // nil means all ("*")
}

// collectSuppressions scans target-package comments for
// //lint:ignore <analyzer>[,<analyzer>...] <reason> directives.
func collectSuppressions(prog *Program) *suppressions {
	s := &suppressions{
		byFileLine:   make(map[string]map[int]*ignoreDirective),
		commentLines: make(map[string]map[int]bool),
		codeLines:    make(map[string]map[int]bool),
	}
	for _, pkg := range prog.Targets {
		for _, f := range pkg.Syntax {
			filename := prog.Fset.Position(f.Pos()).Filename
			code := s.codeLines[filename]
			if code == nil {
				code = make(map[int]bool)
				s.codeLines[filename] = code
			}
			ast.Inspect(f, func(n ast.Node) bool {
				switch n.(type) {
				case nil:
					return false
				case *ast.Comment, *ast.CommentGroup:
					return false
				}
				code[prog.Fset.Position(n.Pos()).Line] = true
				return true
			})
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					pos := prog.Fset.Position(c.Pos())
					end := prog.Fset.Position(c.End())
					cl := s.commentLines[pos.Filename]
					if cl == nil {
						cl = make(map[int]bool)
						s.commentLines[pos.Filename] = cl
					}
					for l := pos.Line; l <= end.Line; l++ {
						cl[l] = true
					}
					text := c.Text
					if !strings.HasPrefix(text, "//lint:ignore") {
						continue
					}
					rest := strings.TrimPrefix(text, "//lint:ignore")
					fields := strings.Fields(rest)
					if len(fields) < 2 {
						s.malformed = append(s.malformed, Diagnostic{
							Pos:      c.Pos(),
							Analyzer: "lintdirective",
							Message:  "malformed //lint:ignore directive: want //lint:ignore <analyzer> <reason>",
						})
						continue
					}
					dir := &ignoreDirective{}
					if fields[0] != "*" {
						dir.analyzers = make(map[string]bool)
						for _, name := range strings.Split(fields[0], ",") {
							dir.analyzers[name] = true
						}
					}
					lines := s.byFileLine[pos.Filename]
					if lines == nil {
						lines = make(map[int]*ignoreDirective)
						s.byFileLine[pos.Filename] = lines
					}
					lines[pos.Line] = dir
				}
			}
		}
	}
	return s
}

// suppressed reports whether a diagnostic from the named analyzer at
// pos is covered by a directive: on the same line, or on a comment-only
// line directly above (walking up through contiguous comment-only
// lines, so the directive may sit atop or inside a doc comment — but
// never across a line that carries code, so a trailing directive on
// one statement cannot leak onto the next).
func (s *suppressions) suppressed(analyzer string, pos token.Position) bool {
	lines := s.byFileLine[pos.Filename]
	if lines == nil {
		return false
	}
	if d := lines[pos.Line]; d != nil && d.matches(analyzer) {
		return true
	}
	comments := s.commentLines[pos.Filename]
	code := s.codeLines[pos.Filename]
	for l := pos.Line - 1; l > 0 && comments[l] && !code[l]; l-- {
		if d := lines[l]; d != nil && d.matches(analyzer) {
			return true
		}
	}
	return false
}

func (d *ignoreDirective) matches(analyzer string) bool {
	return d.analyzers == nil || d.analyzers[analyzer]
}

// NodeLine returns the line of n's position — a convenience for
// analyzers that reason about source layout.
func NodeLine(prog *Program, n ast.Node) int {
	return prog.Fset.Position(n.Pos()).Line
}
