// Package errcode enforces the repo's error-envelope contract:
//
//  1. Every exported error sentinel declared in the sentinel packages
//     (server, pricing, market, store) must be explicitly mapped in the
//     server's error-code table (errorStatus), so it reaches clients as
//     a stable api.ErrorCode instead of falling through to the generic
//     invalid_request default.
//  2. Handler packages must never bypass the envelope writer: naked
//     http.Error, fmt.Fprint-family writes to a ResponseWriter, and
//     direct WriteHeader calls with error statuses all produce
//     plain-text bodies that violate the machine-readable error
//     contract.
package errcode

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"

	"datamarket/internal/analysis"
)

// Config parameterizes the analyzer so fixtures and the real tree can
// share one implementation.
type Config struct {
	// SentinelPkgs are the packages whose exported sentinels must be
	// mapped.
	SentinelPkgs []string
	// MapperPkg/MapperFunc name the error-code table: the function
	// whose errors.Is chain defines the sentinel → code mapping.
	MapperPkg  string
	MapperFunc string
	// HandlerPkgs are packages where envelope bypasses are flagged.
	HandlerPkgs []string
	// WriterAllow lists functions (by name, within HandlerPkgs) that
	// are the sanctioned envelope writers and may call WriteHeader.
	WriterAllow []string
}

// DefaultConfig is the repo's real wiring.
func DefaultConfig() Config {
	return Config{
		SentinelPkgs: []string{
			"datamarket/internal/server",
			"datamarket/internal/pricing",
			"datamarket/internal/market",
			"datamarket/internal/store",
		},
		MapperPkg:   "datamarket/internal/server",
		MapperFunc:  "errorStatus",
		HandlerPkgs: []string{"datamarket/internal/server"},
		WriterAllow: []string{"writeJSON"},
	}
}

// NewAnalyzer builds the errcode analyzer with the given config.
func NewAnalyzer(cfg Config) *analysis.Analyzer {
	return &analysis.Analyzer{
		Name:   "errcode",
		Doc:    "checks that every exported error sentinel is mapped in the api error-code table and that handlers never bypass the JSON error envelope",
		Anchor: cfg.MapperPkg,
		Run:    func(pass *analysis.Pass) error { return run(pass, cfg) },
	}
}

// Analyzer is the production instance.
var Analyzer = NewAnalyzer(DefaultConfig())

func run(pass *analysis.Pass, cfg Config) error {
	checkSentinels(pass, cfg)
	for _, path := range cfg.HandlerPkgs {
		if pkg := pass.Prog.Lookup(path); pkg != nil {
			checkBypasses(pass, cfg, pkg)
		}
	}
	return nil
}

// --- sentinel mapping ---

func checkSentinels(pass *analysis.Pass, cfg Config) {
	type sentinel struct {
		obj types.Object
		pos token.Pos
	}
	var sentinels []sentinel
	for _, path := range cfg.SentinelPkgs {
		pkg := pass.Prog.Lookup(path)
		if pkg == nil {
			continue
		}
		for _, f := range pkg.Syntax {
			for _, decl := range f.Decls {
				gd, ok := decl.(*ast.GenDecl)
				if !ok || gd.Tok != token.VAR {
					continue
				}
				for _, spec := range gd.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok {
						continue
					}
					for i, name := range vs.Names {
						if !name.IsExported() || i >= len(vs.Values) {
							continue
						}
						if !isErrorCtorCall(pkg.TypesInfo, vs.Values[i]) {
							continue
						}
						obj := pkg.TypesInfo.Defs[name]
						if obj == nil {
							continue
						}
						sentinels = append(sentinels, sentinel{obj: obj, pos: name.Pos()})
					}
				}
			}
		}
	}

	mapped := mappedSentinels(pass, cfg)
	for _, s := range sentinels {
		if !mapped[s.obj] {
			pass.Reportf(s.pos,
				"error sentinel %s.%s is not mapped in the api error-code table (%s.%s); clients will see the generic invalid_request code",
				s.obj.Pkg().Name(), s.obj.Name(), shortPkg(cfg.MapperPkg), cfg.MapperFunc)
		}
	}
}

// isErrorCtorCall reports whether e is errors.New(...) or
// fmt.Errorf(...).
func isErrorCtorCall(info *types.Info, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	fn := analysis.CalleeOf(info, call)
	if fn == nil {
		return false
	}
	full := fn.FullName()
	return full == "errors.New" || full == "fmt.Errorf"
}

// mappedSentinels collects every object that appears as the target of
// an errors.Is(err, X) comparison inside the mapper function.
func mappedSentinels(pass *analysis.Pass, cfg Config) map[types.Object]bool {
	mapped := make(map[types.Object]bool)
	pkg := pass.Prog.Lookup(cfg.MapperPkg)
	if pkg == nil {
		return mapped
	}
	var mapper *ast.FuncDecl
	for _, f := range pkg.Syntax {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Recv == nil && fd.Name.Name == cfg.MapperFunc {
				mapper = fd
			}
		}
	}
	if mapper == nil || mapper.Body == nil {
		// Without a mapper there is nothing to check sentinels
		// against; report at the package level would be noisy, so
		// treat every sentinel as unmapped (empty map).
		return mapped
	}
	ast.Inspect(mapper.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := analysis.CalleeOf(pkg.TypesInfo, call)
		if fn == nil || fn.FullName() != "errors.Is" || len(call.Args) != 2 {
			return true
		}
		if obj := objectOf(pkg.TypesInfo, call.Args[1]); obj != nil {
			mapped[obj] = true
		}
		return true
	})
	return mapped
}

func objectOf(info *types.Info, e ast.Expr) types.Object {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		return info.Uses[x]
	case *ast.SelectorExpr:
		return info.Uses[x.Sel]
	}
	return nil
}

// --- envelope bypasses ---

func checkBypasses(pass *analysis.Pass, cfg Config, pkg *analysis.Package) {
	allow := make(map[string]bool, len(cfg.WriterAllow))
	for _, name := range cfg.WriterAllow {
		allow[name] = true
	}
	for _, f := range pkg.Syntax {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if allow[fd.Name.Name] {
				continue
			}
			// Methods named WriteHeader are ResponseWriter wrappers
			// forwarding the status (envelopeWriter, statusRecorder);
			// the wrapped writer ultimately flows through writeJSON.
			wrapperForward := fd.Recv != nil && fd.Name.Name == "WriteHeader"
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				checkBypassCall(pass, pkg, call, wrapperForward)
				return true
			})
		}
	}
}

func checkBypassCall(pass *analysis.Pass, pkg *analysis.Package, call *ast.CallExpr, wrapperForward bool) {
	info := pkg.TypesInfo
	if fn := analysis.CalleeOf(info, call); fn != nil {
		switch fn.FullName() {
		case "net/http.Error":
			pass.Reportf(call.Pos(),
				"http.Error writes a plain-text body, bypassing the JSON error envelope; use the envelope writer instead")
			return
		case "fmt.Fprint", "fmt.Fprintf", "fmt.Fprintln", "io.WriteString":
			if len(call.Args) > 0 && pass.Prog.ImplementsResponseWriter(typeOf(info, call.Args[0])) {
				pass.Reportf(call.Pos(),
					"%s to an http.ResponseWriter bypasses the JSON error envelope; use the envelope writer instead", fn.Name())
			}
			return
		}
	}
	// w.WriteHeader(status) with a constant error status outside the
	// sanctioned writers.
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "WriteHeader" || len(call.Args) != 1 || wrapperForward {
		return
	}
	if !pass.Prog.ImplementsResponseWriter(typeOf(info, sel.X)) {
		return
	}
	tv, ok := info.Types[call.Args[0]]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.Int {
		return
	}
	if status, ok := constant.Int64Val(tv.Value); ok && status >= 400 {
		pass.Reportf(call.Pos(),
			"WriteHeader(%d) outside the envelope writer emits an error response with no JSON envelope", status)
	}
}

func typeOf(info *types.Info, e ast.Expr) types.Type {
	if tv, ok := info.Types[e]; ok {
		return tv.Type
	}
	return types.Typ[types.Invalid]
}

func shortPkg(path string) string {
	if i := strings.LastIndex(path, "/"); i >= 0 {
		return path[i+1:]
	}
	return path
}
