package errcode_test

import (
	"testing"

	"datamarket/internal/analysis/analysistest"
	"datamarket/internal/analysis/passes/errcode"
)

func TestErrcode(t *testing.T) {
	analysistest.Run(t, "testdata", errcode.Analyzer)
}
