// Fixture module for the errcode analyzer. Declaring `module
// datamarket` gives fixture packages the real import paths the
// analyzer's default config anchors on, while the nested go.mod keeps
// them out of the parent module's ./... patterns.
module datamarket

go 1.24
