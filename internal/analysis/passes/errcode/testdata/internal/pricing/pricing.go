// Package pricing is the fixture pricing package: its exported
// sentinel is mapped by the server's error table, so nothing here is
// flagged.
package pricing

import "errors"

// ErrPendingRound is mapped in the server fixture's errorStatus.
var ErrPendingRound = errors.New("pricing: round already pending")

// errInternal is unexported: only exported sentinels participate in
// the wire contract, so this needs no mapping.
var errInternal = errors.New("pricing: internal")

// Touch keeps the unexported sentinel referenced.
func Touch() error { return errInternal }
