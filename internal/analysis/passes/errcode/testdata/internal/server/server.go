// Package server is the fixture handler package: sentinels, the error
// table, the sanctioned envelope writer, and a museum of bypasses.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"datamarket/api"
	"datamarket/internal/pricing"
)

// Sentinels: ErrStreamExists is mapped below; ErrStreamGone is not.
var (
	ErrStreamExists = errors.New("server: stream exists")
	ErrStreamGone   = errors.New("server: stream gone") // want "error sentinel server.ErrStreamGone is not mapped"
)

// errorStatus is the fixture error-code table.
func errorStatus(err error) (int, api.ErrorCode) {
	switch {
	case errors.Is(err, ErrStreamExists):
		return http.StatusConflict, api.CodeStreamExists
	case errors.Is(err, pricing.ErrPendingRound):
		return http.StatusConflict, api.CodeUnavailable
	default:
		return http.StatusBadRequest, api.CodeInvalidRequest
	}
}

// writeJSON is the sanctioned envelope writer; its WriteHeader call is
// allowlisted.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// handleGood routes every error through the envelope writer.
func handleGood(w http.ResponseWriter, r *http.Request) {
	status, code := errorStatus(ErrStreamExists)
	writeJSON(w, status, code)
}

// handleBypasses demonstrates every way to leak a plain-text error.
func handleBypasses(w http.ResponseWriter, r *http.Request) {
	http.Error(w, "nope", http.StatusBadRequest)   // want "http.Error writes a plain-text body"
	fmt.Fprintf(w, "raw error: %v", ErrStreamGone) // want "Fprintf to an http.ResponseWriter bypasses"
	w.WriteHeader(http.StatusInternalServerError)  // want `WriteHeader\(500\) outside the envelope writer`
}

// handleOK shows the non-flagging cases: success statuses are fine,
// and printing to a non-ResponseWriter is fine.
func handleOK(w http.ResponseWriter, r *http.Request) {
	fmt.Println("logging is fine")
	w.WriteHeader(http.StatusNoContent)
	writeJSON(w, http.StatusOK, "ok")
}

// statusRecorder is a ResponseWriter wrapper; its forwarding
// WriteHeader method is exempt.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(status int) {
	r.status = status
	r.ResponseWriter.WriteHeader(status)
}
