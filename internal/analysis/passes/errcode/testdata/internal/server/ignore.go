package server

import (
	"fmt"
	"net/http"
)

// handleSuppressed proves the escape hatch is surgical: the annotated
// bypass is silenced, the identical bypass on the next line is not,
// and a directive naming a different analyzer suppresses nothing.
func handleSuppressed(w http.ResponseWriter, r *http.Request) {
	http.Error(w, "legacy probe endpoint", 400) //lint:ignore errcode plain-text kept for probe compatibility until clients migrate
	http.Error(w, "unannotated twin", 400)      // want "http.Error writes a plain-text body"
	//lint:ignore floatguard wrong analyzer name, must not silence errcode
	fmt.Fprint(w, "still flagged") // want "Fprint to an http.ResponseWriter bypasses"
}
