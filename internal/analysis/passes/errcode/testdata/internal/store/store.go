// Package store is the fixture journal package with a sentinel the
// server forgot to map — the exact true positive the analyzer exists
// to catch.
package store

import "errors"

// ErrClosed is not mapped in the server fixture's errorStatus.
var ErrClosed = errors.New("store: closed") // want "error sentinel store.ErrClosed is not mapped"
