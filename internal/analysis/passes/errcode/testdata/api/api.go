// Package api is the fixture wire-contract package.
package api

// ErrorCode is the stable machine-readable error code.
type ErrorCode string

// Fixture codes.
const (
	CodeInvalidRequest ErrorCode = "invalid_request"
	CodeStreamExists   ErrorCode = "stream_exists"
	CodeUnavailable    ErrorCode = "unavailable"
)
