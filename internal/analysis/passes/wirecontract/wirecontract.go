// Package wirecontract enforces the public wire contract's hygiene
// rules on the api package:
//
//   - every exported struct field carries an explicit `json` tag (the
//     golden fixtures pin names; an untagged field silently ships its
//     Go spelling and breaks the snake_case convention),
//   - unexported fields are flagged (encoding/json drops them
//     silently — a wire struct must not carry invisible state),
//   - no field smuggles schema-free data through interface{} /
//     map[string]interface{},
//   - every exported wire type is pinned by a golden fixture under
//     testdata/<APIVersion>/ — either its own snake_case file or
//     containment in a fixtured type,
//   - every type registered in the binary codec's WireTypes map is
//     pinned by a golden binary fixture under testdata/<APIVersion>/bin/
//     (a frame kind must not ship without its encoding frozen).
package wirecontract

import (
	"go/ast"
	"go/constant"
	"go/types"
	"os"
	"strings"
	"unicode"

	"datamarket/internal/analysis"
)

// Config parameterizes the analyzer.
type Config struct {
	// APIPkg is the wire-contract package (and the anchor).
	APIPkg string
	// VersionConst names the string constant selecting the fixture
	// directory under testdata/.
	VersionConst string
	// BinaryPkg is the binary-codec package whose registry var pins the
	// binary fixture requirement. Skipped when the package is absent
	// from the program.
	BinaryPkg string
	// RegistryVar names BinaryPkg's kind→type map enumerating the types
	// the binary codec carries.
	RegistryVar string
}

// DefaultConfig is the repo's real wiring.
func DefaultConfig() Config {
	return Config{
		APIPkg:       "datamarket/api",
		VersionConst: "APIVersion",
		BinaryPkg:    "datamarket/api/binary",
		RegistryVar:  "WireTypes",
	}
}

// NewAnalyzer builds the wirecontract analyzer with the given config.
func NewAnalyzer(cfg Config) *analysis.Analyzer {
	return &analysis.Analyzer{
		Name:   "wirecontract",
		Doc:    "checks api wire structs for complete json tags, no untyped interface fields, golden-fixture coverage under testdata/<APIVersion>/, and golden binary fixtures for every binary-registered wire type",
		Anchor: cfg.APIPkg,
		Run:    func(pass *analysis.Pass) error { return run(pass, cfg) },
	}
}

// Analyzer is the production instance.
var Analyzer = NewAnalyzer(DefaultConfig())

func run(pass *analysis.Pass, cfg Config) error {
	pkg := pass.Prog.Lookup(cfg.APIPkg)
	if pkg == nil {
		return nil
	}
	checkStructDecls(pass, pkg)
	version := checkFixtureCoverage(pass, cfg, pkg)
	if version != "" {
		checkBinaryFixtures(pass, cfg, pkg, version)
	}
	return nil
}

// --- json tags and field types ---

func checkStructDecls(pass *analysis.Pass, pkg *analysis.Package) {
	for _, f := range pkg.Syntax {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok || !ts.Name.IsExported() || ts.Assign.IsValid() {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				checkStructFields(pass, pkg, ts.Name.Name, st)
			}
		}
	}
}

func checkStructFields(pass *analysis.Pass, pkg *analysis.Package, typeName string, st *ast.StructType) {
	for _, field := range st.Fields.List {
		if tv, ok := pkg.TypesInfo.Types[field.Type]; ok {
			if bad := untypedComponent(tv.Type); bad != "" {
				pass.Reportf(field.Type.Pos(),
					"wire struct %s carries an untyped %s field; give the payload a concrete wire type", typeName, bad)
			}
		}
		if len(field.Names) == 0 {
			// Embedded field: flattened by encoding/json, its own
			// declaration carries the tags.
			continue
		}
		for _, name := range field.Names {
			if !name.IsExported() {
				pass.Reportf(name.Pos(),
					"wire struct %s has unexported field %s, which encoding/json drops silently; export it with a json tag or move it off the wire type", typeName, name.Name)
				continue
			}
			if !hasJSONTag(field) {
				pass.Reportf(name.Pos(),
					"wire struct %s field %s has no json tag; the wire name must be pinned explicitly (snake_case)", typeName, name.Name)
			}
		}
	}
}

func hasJSONTag(field *ast.Field) bool {
	if field.Tag == nil {
		return false
	}
	// Tag literal includes the quotes.
	tag := strings.Trim(field.Tag.Value, "`")
	val, ok := lookupTag(tag, "json")
	if !ok {
		return false
	}
	name, _, _ := strings.Cut(val, ",")
	return name != ""
}

// lookupTag is reflect.StructTag.Lookup without importing reflect's
// value machinery into the analyzer.
func lookupTag(tag, key string) (string, bool) {
	for tag != "" {
		tag = strings.TrimLeft(tag, " ")
		i := strings.Index(tag, ":")
		if i < 0 {
			break
		}
		name := tag[:i]
		rest := tag[i+1:]
		if len(rest) == 0 || rest[0] != '"' {
			break
		}
		j := strings.Index(rest[1:], `"`)
		if j < 0 {
			break
		}
		value := rest[1 : 1+j]
		tag = rest[j+2:]
		if name == key {
			return value, true
		}
	}
	return "", false
}

// untypedComponent names the schema-free component of t, if any.
func untypedComponent(t types.Type) string {
	return findUntyped(t, make(map[types.Type]bool))
}

func findUntyped(t types.Type, seen map[types.Type]bool) string {
	if seen[t] {
		return ""
	}
	seen[t] = true
	switch u := t.Underlying().(type) {
	case *types.Interface:
		if u.NumMethods() == 0 {
			return "interface{}"
		}
	case *types.Map:
		if s := findUntyped(u.Elem(), seen); s != "" {
			return "map[...]" + s
		}
	case *types.Slice:
		if s := findUntyped(u.Elem(), seen); s != "" {
			return "[]" + s
		}
	case *types.Pointer:
		return findUntyped(u.Elem(), seen)
	}
	return ""
}

// --- fixture coverage ---

// checkFixtureCoverage enforces the JSON golden-fixture rule and
// returns the resolved fixture version ("" when it cannot be resolved).
func checkFixtureCoverage(pass *analysis.Pass, cfg Config, pkg *analysis.Package) string {
	scope := pkg.Types.Scope()
	verObj, ok := scope.Lookup(cfg.VersionConst).(*types.Const)
	if !ok || verObj.Val().Kind() != constant.String {
		pass.Reportf(pkg.Types.Scope().Pos(),
			"wire package has no %s string constant; fixture coverage cannot be checked", cfg.VersionConst)
		return ""
	}
	version := constant.StringVal(verObj.Val())
	fixtureDir := pkg.Dir + "/testdata/" + version
	entries, err := os.ReadDir(fixtureDir)
	if err != nil {
		pass.Reportf(verObj.Pos(),
			"golden fixture directory %s is missing: %v", "testdata/"+version, err)
		return ""
	}
	fixtures := make([]string, 0, len(entries))
	for _, e := range entries {
		if name, ok := strings.CutSuffix(e.Name(), ".json"); ok {
			fixtures = append(fixtures, name)
		}
	}

	// Wire types needing coverage: every exported type name whose type
	// (through aliases) is a struct.
	type wireType struct {
		obj types.Object
		st  *types.Struct
	}
	var needed []wireType
	byType := make(map[*types.Struct]types.Object)
	for _, name := range scope.Names() {
		obj := scope.Lookup(name)
		tn, ok := obj.(*types.TypeName)
		if !ok || !tn.Exported() {
			continue
		}
		if st, ok := types.Unalias(tn.Type()).Underlying().(*types.Struct); ok {
			needed = append(needed, wireType{obj: obj, st: st})
			byType[st] = obj
		}
	}

	covered := make(map[types.Object]bool)
	for _, wt := range needed {
		snake := snakeCase(wt.obj.Name())
		for _, f := range fixtures {
			if f == snake || strings.HasPrefix(f, snake+"_") {
				covered[wt.obj] = true
				break
			}
		}
	}
	// Containment closure: a fixtured struct pins every wire type
	// reachable through its fields.
	for changed := true; changed; {
		changed = false
		for _, wt := range needed {
			if !covered[wt.obj] {
				continue
			}
			for i := 0; i < wt.st.NumFields(); i++ {
				for _, ref := range structComponents(wt.st.Field(i).Type()) {
					if obj, ok := byType[ref]; ok && !covered[obj] {
						covered[obj] = true
						changed = true
					}
				}
			}
		}
	}

	for _, wt := range needed {
		if covered[wt.obj] {
			continue
		}
		pass.Reportf(wt.obj.Pos(),
			"wire type %s has no golden fixture under testdata/%s/ (expected %s.json or containment in a fixtured type); add one and run the wire tests with -update",
			wt.obj.Name(), version, snakeCase(wt.obj.Name()))
	}
	return version
}

// --- binary fixture coverage ---

// checkBinaryFixtures requires a golden binary fixture under the api
// package's testdata/<version>/bin/ for every type registered in the
// binary codec's kind→type map. The frame-kind string of each entry is
// the snake_case of its api type name, so the expected file is
// <snake>.bin — the same name the binary golden tests pin.
func checkBinaryFixtures(pass *analysis.Pass, cfg Config, apiPkg *analysis.Package, version string) {
	binPkg := pass.Prog.Lookup(cfg.BinaryPkg)
	if binPkg == nil {
		return // codec not loaded (or not built yet); nothing to enforce
	}
	lit := registryLiteral(binPkg, cfg.RegistryVar)
	if lit == nil {
		pass.Reportf(binPkg.Types.Scope().Pos(),
			"binary codec package has no %s map literal; binary fixture coverage cannot be checked", cfg.RegistryVar)
		return
	}
	binDir := apiPkg.Dir + "/testdata/" + version + "/bin"
	for _, elt := range lit.Elts {
		kv, ok := elt.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		tv, ok := binPkg.TypesInfo.Types[kv.Value]
		if !ok {
			continue
		}
		t := tv.Type
		if p, ok := types.Unalias(t).(*types.Pointer); ok {
			t = p.Elem()
		}
		named, ok := types.Unalias(t).(*types.Named)
		if !ok {
			continue
		}
		name := named.Obj().Name()
		fixture := snakeCase(name) + ".bin"
		if _, err := os.Stat(binDir + "/" + fixture); err != nil {
			pass.Reportf(kv.Value.Pos(),
				"binary-registered wire type %s has no golden binary fixture under testdata/%s/bin/ (expected %s); add one and run the binary golden tests with -update",
				name, version, fixture)
		}
	}
}

// registryLiteral finds the composite literal initializing the named
// package-level var.
func registryLiteral(pkg *analysis.Package, name string) *ast.CompositeLit {
	for _, f := range pkg.Syntax {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, ident := range vs.Names {
					if ident.Name != name || i >= len(vs.Values) {
						continue
					}
					if cl, ok := vs.Values[i].(*ast.CompositeLit); ok {
						return cl
					}
				}
			}
		}
	}
	return nil
}

// structComponents collects the struct types reachable from t through
// pointers, slices, arrays, and maps (one level of naming at a time —
// nested structs appear in the closure via their own wire types).
func structComponents(t types.Type) []*types.Struct {
	var out []*types.Struct
	collectStructs(t, make(map[types.Type]bool), &out)
	return out
}

func collectStructs(t types.Type, seen map[types.Type]bool, out *[]*types.Struct) {
	if seen[t] {
		return
	}
	seen[t] = true
	switch u := types.Unalias(t).Underlying().(type) {
	case *types.Struct:
		*out = append(*out, u)
		for i := 0; i < u.NumFields(); i++ {
			collectStructs(u.Field(i).Type(), seen, out)
		}
	case *types.Pointer:
		collectStructs(u.Elem(), seen, out)
	case *types.Slice:
		collectStructs(u.Elem(), seen, out)
	case *types.Array:
		collectStructs(u.Elem(), seen, out)
	case *types.Map:
		collectStructs(u.Elem(), seen, out)
	}
}

// snakeCase converts CamelCase (with acronym runs) to snake_case:
// CreateStreamRequest → create_stream_request, SGDSnapshot →
// sgd_snapshot, StreamID → stream_id.
func snakeCase(s string) string {
	runes := []rune(s)
	var b strings.Builder
	for i, r := range runes {
		if unicode.IsUpper(r) {
			prevLower := i > 0 && !unicode.IsUpper(runes[i-1])
			nextLower := i+1 < len(runes) && !unicode.IsUpper(runes[i+1])
			if i > 0 && (prevLower || nextLower) {
				b.WriteByte('_')
			}
			b.WriteRune(unicode.ToLower(r))
			continue
		}
		b.WriteRune(r)
	}
	return b.String()
}
