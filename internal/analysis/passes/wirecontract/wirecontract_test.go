package wirecontract_test

import (
	"testing"

	"datamarket/internal/analysis/analysistest"
	"datamarket/internal/analysis/passes/wirecontract"
)

func TestWirecontract(t *testing.T) {
	analysistest.Run(t, "testdata", wirecontract.Analyzer)
}
