// Package binary is the wirecontract fixture's codec registry: the
// analyzer requires every type registered in WireTypes to carry a
// golden binary fixture under the api package's testdata/v9/bin/.
package binary

import "datamarket/api"

// Kind tags a frame's payload type.
type Kind uint8

// Frame kinds.
const (
	KindCreateThing Kind = 0x01
	KindEnvelope    Kind = 0x02
)

// WireTypes enumerates the api types the fixture codec carries.
// CreateThingRequest is pinned by testdata/v9/bin/create_thing_request.bin;
// Envelope is registered without a fixture and must be flagged.
var WireTypes = map[Kind]any{
	KindCreateThing: api.CreateThingRequest{},
	KindEnvelope:    api.Envelope{}, // want "binary-registered wire type Envelope has no golden binary fixture under testdata/v9/bin/"
}
