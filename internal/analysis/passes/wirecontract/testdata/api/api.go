// Package api is the wirecontract fixture: wire structs with tagged,
// untagged, unexported, and untyped fields, plus golden-fixture
// coverage in every flavor — own file, prefix file, containment, and
// missing entirely.
package api

// APIVersion selects the golden-fixture directory under testdata/.
const APIVersion = "v9"

// CreateThingRequest is fully tagged and pinned by its own fixture
// (create_thing_request.json).
type CreateThingRequest struct {
	Name  string  `json:"name"`
	Price float64 `json:"price"`
}

// ThingInfo has no fixture of its own; it is pinned by containment in
// Envelope below.
type ThingInfo struct {
	ID string `json:"id"`
}

// Envelope is pinned by the prefix fixture envelope_ok.json and covers
// ThingInfo through its field.
type Envelope struct {
	Thing ThingInfo `json:"thing"`
}

// OrphanReply has no fixture and is contained in nothing.
type OrphanReply struct { // want "wire type OrphanReply has no golden fixture under testdata/v9/"
	Status string `json:"status"`
}

// BadTags is fixtured (bad_tags.json), so only its field hygiene is
// exercised here.
type BadTags struct {
	Untagged string                 // want "wire struct BadTags field Untagged has no json tag"
	hidden   int                    // want "wire struct BadTags has unexported field hidden"
	Blob     interface{}            `json:"blob"`   // want "wire struct BadTags carries an untyped interface"
	Extras   map[string]interface{} `json:"extras"` // want "wire struct BadTags carries an untyped map"
}

// LegacyBlob is fixtured (legacy_blob.json); one untagged field is
// deliberately grandfathered, and its twin proves the suppression is
// surgical.
type LegacyBlob struct {
	//lint:ignore wirecontract wire name pinned by the legacy v0 decoder until it is retired
	GrandfatheredField string
	UntaggedTwin       string // want "wire struct LegacyBlob field UntaggedTwin has no json tag"
}
