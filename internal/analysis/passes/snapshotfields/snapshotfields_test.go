package snapshotfields_test

import (
	"testing"

	"datamarket/internal/analysis/analysistest"
	"datamarket/internal/analysis/passes/snapshotfields"
)

func TestSnapshotfields(t *testing.T) {
	analysistest.Run(t, "testdata", snapshotfields.Analyzer)
}
