// Package snapshotfields guards restore-equivalence: every field of a
// live mechanism/tracker state struct must be captured by its
// snapshot-envelope counterpart, or be explicitly annotated as
// ephemeral with //lint:ignore. Without this check, adding a field to
// Mechanism (say) and forgetting the Snapshot side compiles cleanly
// and silently loses state across brokerd restarts — exactly the rot
// PR 4's crash-recovery tests can't see until the field matters.
//
// Matching is by normalized name (lower-cased, underscores dropped,
// a trailing "Stats" on the live side stripped so valueStats matches
// Value), with per-pair alias maps for fields whose snapshot encoding
// is structural rather than nominal (the ellipsoid ell → Shape+Center,
// the config struct cfg → Threshold/Delta/UseReserve/ConservativeCuts).
package snapshotfields

import (
	"go/ast"
	"go/types"
	"strings"

	"datamarket/internal/analysis"
)

// Pair names one live-state → snapshot struct correspondence.
type Pair struct {
	LivePkg  string
	LiveType string
	SnapPkg  string
	SnapType string
	// Aliases maps a live field name to the snapshot fields that
	// jointly encode it; all of them must exist.
	Aliases map[string][]string
}

// Config parameterizes the analyzer.
type Config struct {
	Pairs []Pair
	// Anchor triggers the whole-program analyzer.
	Anchor string
}

// DefaultConfig is the repo's real wiring.
func DefaultConfig() Config {
	const pricing = "datamarket/internal/pricing"
	const stats = "datamarket/internal/stats"
	return Config{
		Anchor: pricing,
		Pairs: []Pair{
			{
				LivePkg: pricing, LiveType: "Mechanism",
				SnapPkg: pricing, SnapType: "Snapshot",
				Aliases: map[string][]string{
					"ell": {"Shape", "Center"},
					"cfg": {"Threshold", "Delta", "UseReserve", "ConservativeCuts"},
				},
			},
			{
				LivePkg: pricing, LiveType: "SGDPoster",
				SnapPkg: pricing, SnapType: "SGDSnapshot",
			},
			{
				LivePkg: pricing, LiveType: "NonlinearMechanism",
				SnapPkg: pricing, SnapType: "NonlinearSnapshot",
			},
			{
				LivePkg: pricing, LiveType: "Tracker",
				SnapPkg: pricing, SnapType: "TrackerState",
			},
			{
				LivePkg: stats, LiveType: "Online",
				SnapPkg: stats, SnapType: "OnlineState",
			},
		},
	}
}

// NewAnalyzer builds the snapshotfields analyzer with the given config.
func NewAnalyzer(cfg Config) *analysis.Analyzer {
	return &analysis.Analyzer{
		Name:   "snapshotfields",
		Doc:    "checks that every live mechanism/tracker state field is captured by its snapshot-envelope struct (restore-equivalence can't silently rot)",
		Anchor: cfg.Anchor,
		Run:    func(pass *analysis.Pass) error { return run(pass, cfg) },
	}
}

// Analyzer is the production instance.
var Analyzer = NewAnalyzer(DefaultConfig())

func run(pass *analysis.Pass, cfg Config) error {
	for _, pair := range cfg.Pairs {
		checkPair(pass, pair)
	}
	return nil
}

func checkPair(pass *analysis.Pass, pair Pair) {
	livePkg := pass.Prog.Lookup(pair.LivePkg)
	snapPkg := pass.Prog.Lookup(pair.SnapPkg)
	if livePkg == nil || snapPkg == nil {
		return
	}
	liveSpec := findStructSpec(livePkg, pair.LiveType)
	snapStruct := findStructType(snapPkg, pair.SnapType)
	if liveSpec == nil || snapStruct == nil {
		return
	}

	snapNorms := make(map[string]bool)
	for i := 0; i < snapStruct.NumFields(); i++ {
		snapNorms[normalize(snapStruct.Field(i).Name())] = true
	}

	st := liveSpec.Type.(*ast.StructType)
	for _, field := range st.Fields.List {
		for _, name := range field.Names {
			if covered(name.Name, pair, snapNorms) {
				continue
			}
			if missing := missingAliases(name.Name, pair, snapNorms); missing != nil {
				pass.Reportf(name.Pos(),
					"field %s.%s maps to snapshot fields %s, but %s missing from %s; restore would lose state",
					pair.LiveType, name.Name,
					strings.Join(pair.Aliases[name.Name], "+"),
					strings.Join(missing, ", ")+" is", pair.SnapType)
				continue
			}
			pass.Reportf(name.Pos(),
				"field %s.%s is not captured by snapshot struct %s; it would be lost across snapshot/restore (add a snapshot field, or //lint:ignore snapshotfields if ephemeral)",
				pair.LiveType, name.Name, pair.SnapType)
		}
	}
}

// covered reports whether the live field is represented in the
// snapshot, either via its alias expansion or by normalized name.
func covered(field string, pair Pair, snapNorms map[string]bool) bool {
	if targets, ok := pair.Aliases[field]; ok {
		for _, t := range targets {
			if !snapNorms[normalize(t)] {
				return false
			}
		}
		return true
	}
	return snapNorms[normalize(field)] || snapNorms[stripStatsSuffix(normalize(field))]
}

// missingAliases returns the alias targets absent from the snapshot,
// or nil if the field has no alias mapping.
func missingAliases(field string, pair Pair, snapNorms map[string]bool) []string {
	targets, ok := pair.Aliases[field]
	if !ok {
		return nil
	}
	var missing []string
	for _, t := range targets {
		if !snapNorms[normalize(t)] {
			missing = append(missing, t)
		}
	}
	return missing
}

func normalize(name string) string {
	return strings.ReplaceAll(strings.ToLower(name), "_", "")
}

func stripStatsSuffix(norm string) string {
	if s, ok := strings.CutSuffix(norm, "stats"); ok && s != "" {
		return s
	}
	if s, ok := strings.CutSuffix(norm, "state"); ok && s != "" {
		return s
	}
	return norm
}

// findStructSpec locates the AST TypeSpec for a struct type by name.
func findStructSpec(pkg *analysis.Package, name string) *ast.TypeSpec {
	for _, f := range pkg.Syntax {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok || ts.Name.Name != name {
					continue
				}
				if _, ok := ts.Type.(*ast.StructType); ok {
					return ts
				}
			}
		}
	}
	return nil
}

// findStructType resolves a named struct's type-checked form.
func findStructType(pkg *analysis.Package, name string) *types.Struct {
	obj := pkg.Types.Scope().Lookup(name)
	if obj == nil {
		return nil
	}
	st, _ := types.Unalias(obj.Type()).Underlying().(*types.Struct)
	return st
}
