// Package pricing is the snapshotfields fixture: a live Mechanism
// struct checked field-by-field against its Snapshot envelope, covering
// normalized-name matches, the stats-suffix rule, alias expansion,
// a partially-missing alias, uncovered fields, and the ephemeral
// escape hatch.
package pricing

type ellipsoid struct {
	shape  [][]float64
	center []float64
}

type config struct {
	threshold        float64
	delta            float64
	useReserve       bool
	conservativeCuts bool
}

// Mechanism is the live state struct checked against Snapshot.
type Mechanism struct {
	dim int       // covered: Snapshot.Dim by normalized name
	ell ellipsoid // covered: alias expansion to Shape+Center
	cfg config    // want `field Mechanism.cfg maps to snapshot fields Threshold\+Delta\+UseReserve\+ConservativeCuts, but ConservativeCuts is missing from Snapshot`

	valueStats float64 // covered: Snapshot.Value via the stats-suffix rule

	revision int  // want "field Mechanism.revision is not captured by snapshot struct Snapshot"
	pending  bool //lint:ignore snapshotfields refused at snapshot time, always false when an envelope is cut

	lastP float64 // want "field Mechanism.lastP is not captured by snapshot struct Snapshot"
}

// Snapshot is the envelope; it deliberately omits ConservativeCuts so
// the partially-missing-alias diagnostic fires.
type Snapshot struct {
	Dim        int         `json:"dim"`
	Shape      [][]float64 `json:"shape"`
	Center     []float64   `json:"center"`
	Threshold  float64     `json:"threshold"`
	Delta      float64     `json:"delta"`
	UseReserve bool        `json:"use_reserve"`
	Value      float64     `json:"value"`
}
