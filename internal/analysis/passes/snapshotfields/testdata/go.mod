// Fixture module for the snapshotfields analyzer. It declares `module
// datamarket` so the fixture pricing package occupies the import path
// the default config anchors on, while the nested go.mod keeps it out
// of the parent module's ./... build, test, and lint patterns.
module datamarket

go 1.24
