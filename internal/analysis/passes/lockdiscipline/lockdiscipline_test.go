package lockdiscipline_test

import (
	"testing"

	"datamarket/internal/analysis/analysistest"
	"datamarket/internal/analysis/passes/lockdiscipline"
)

func TestLockdiscipline(t *testing.T) {
	analysistest.Run(t, "testdata", lockdiscipline.Analyzer)
}
