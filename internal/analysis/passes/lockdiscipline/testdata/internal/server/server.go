// Package server is the lockdiscipline fixture: a sharded registry
// with Visit-under-lock semantics, lifecycle observers, and a museum
// of locking mistakes.
package server

import (
	"net/http"
	"sync"
	"time"

	"datamarket/internal/store"
)

type stream struct{ name string }

// Registry is the fixture's lock-sensitive type.
type Registry struct {
	mu      sync.RWMutex
	streams map[string]*stream
}

// Visit runs fn for every stream under the shard read lock.
func (reg *Registry) Visit(fn func(s *stream)) {
	reg.mu.RLock()
	defer reg.mu.RUnlock()
	for _, s := range reg.streams {
		fn(s)
	}
}

// Get takes the shard lock itself — calling it from a Visit callback
// or observer re-enters the lock.
func (reg *Registry) Get(name string) *stream {
	reg.mu.RLock()
	s := reg.streams[name]
	reg.mu.RUnlock()
	return s
}

// --- rule 1: blocking calls under a held lock ---

// badFetch blocks on the network while holding the shard lock.
func (reg *Registry) badFetch(url string) {
	reg.mu.Lock()
	http.Get(url) // want "call to net/http.Get while holding reg.mu"
	reg.mu.Unlock()
}

// badDeferred proves a deferred unlock keeps the lock held for every
// following statement.
func (reg *Registry) badDeferred() {
	reg.mu.Lock()
	defer reg.mu.Unlock()
	time.Sleep(time.Millisecond) // want "call to time.Sleep while holding reg.mu"
}

// goodFetch releases the lock before the blocking call.
func (reg *Registry) goodFetch(url string) {
	reg.mu.Lock()
	n := len(reg.streams)
	reg.mu.Unlock()
	if n > 0 {
		http.Get(url)
	}
}

// goodJournal records a lifecycle event write-ahead under the shard
// write lock through the store's commit path — the sanctioned
// exception, resolved through the Store interface.
func (reg *Registry) goodJournal(st store.Store, name string) {
	reg.mu.Lock()
	defer reg.mu.Unlock()
	st.Put(store.Entry{ID: name})
}

// goodGroupCommit is the committer shape: enqueue the record under the
// lock (PutAsync does no file I/O), then wait for the shared group
// commit — both legs are exempt.
func (reg *Registry) goodGroupCommit(st store.Store, name string) {
	reg.mu.Lock()
	defer reg.mu.Unlock()
	tkt := st.PutAsync(store.Entry{ID: name})
	tkt.Wait()
}

// badAppend bypasses the commit path: a raw append is blocking file
// I/O like any other store call off the exemption list.
func (reg *Registry) badAppend(name string) {
	reg.mu.Lock()
	defer reg.mu.Unlock()
	store.Append(name) // want `call to datamarket/internal/store.Append while holding reg.mu`
}

// badCompact rewrites the whole live set while holding the shard lock;
// interface dispatch does not hide the store call from the check.
func (reg *Registry) badCompact(st store.Store) {
	reg.mu.Lock()
	st.Compact() // want `call to \(datamarket/internal/store.Store\).Compact while holding reg.mu`
	reg.mu.Unlock()
}

// --- rules 2 and 3: re-entry, lock acquisition, and blocking calls
// under the shard lock ---

var auditMu sync.Mutex

// useRegistry re-enters the registry from a Visit callback and takes a
// foreign lock inside another; a third callback carries the documented
// suppression and a fourth is its unannotated twin.
func useRegistry(reg *Registry) {
	reg.Visit(func(s *stream) {
		reg.Get(s.name) // want "call to Registry.Get inside a Registry.Visit callback .* would re-enter the registry lock and deadlock"
	})
	reg.Visit(func(s *stream) {
		//lint:ignore lockdiscipline documented lock order shard -> auditMu; audit code never takes the shard lock
		auditMu.Lock()
		auditMu.Unlock()
	})
	reg.Visit(func(s *stream) {
		auditMu.Lock() // want "acquiring auditMu.Lock inside a Registry.Visit callback .* adds a lock-order edge"
		auditMu.Unlock()
	})
}

// visitJournal journals from inside Visit callbacks: enqueue-then-wait
// is the sanctioned shape, compaction is not.
func visitJournal(reg *Registry, st store.Store) {
	reg.Visit(func(s *stream) {
		st.PutAsync(store.Entry{ID: s.name}).Wait()
	})
	reg.Visit(func(s *stream) {
		st.Compact() // want `call to \(datamarket/internal/store.Store\).Compact inside a Registry.Visit callback .* blocks under the shard lock`
	})
}

// persister's lifecycle observers run under the shard write lock.
type persister struct {
	reg *Registry
	st  store.Store
}

// StreamCreated re-enters the registry — deadlock.
func (p *persister) StreamCreated(name string) {
	p.reg.Get(name) // want "call to Registry.Get inside lifecycle observer StreamCreated .* would re-enter the registry lock and deadlock"
}

// StreamRestored bypasses the commit path inside an observer.
func (p *persister) StreamRestored(name string) {
	store.Append(name) // want `call to datamarket/internal/store.Append inside lifecycle observer StreamRestored .* blocks under the shard lock`
}

// StreamDeleted journals the tombstone through the exempt commit path —
// write-ahead deletes under the shard write lock are the design.
func (p *persister) StreamDeleted(name string) {
	p.st.Delete(name)
}

// --- rule 4: mutex copies ---

// cloneRegistry copies the registry (and its embedded lock) in both
// directions.
func cloneRegistry(reg Registry) Registry { // want "parameter of cloneRegistry passes a mutex by value" "result of cloneRegistry passes a mutex by value"
	return reg
}

// resetRegistry shares the registry through a pointer — fine.
func resetRegistry(reg *Registry) {
	reg.mu.Lock()
	reg.streams = nil
	reg.mu.Unlock()
}
