// Package server is the lockdiscipline fixture: a sharded registry
// with Visit-under-lock semantics, lifecycle observers, and a museum
// of locking mistakes.
package server

import (
	"net/http"
	"sync"
	"time"

	"datamarket/internal/store"
)

type stream struct{ name string }

// Registry is the fixture's lock-sensitive type.
type Registry struct {
	mu      sync.RWMutex
	streams map[string]*stream
}

// Visit runs fn for every stream under the shard read lock.
func (reg *Registry) Visit(fn func(s *stream)) {
	reg.mu.RLock()
	defer reg.mu.RUnlock()
	for _, s := range reg.streams {
		fn(s)
	}
}

// Get takes the shard lock itself — calling it from a Visit callback
// or observer re-enters the lock.
func (reg *Registry) Get(name string) *stream {
	reg.mu.RLock()
	s := reg.streams[name]
	reg.mu.RUnlock()
	return s
}

// --- rule 1: blocking I/O under a held lock ---

// badFetch blocks on the network while holding the shard lock.
func (reg *Registry) badFetch(url string) {
	reg.mu.Lock()
	http.Get(url) // want "call to net/http.Get while holding reg.mu"
	reg.mu.Unlock()
}

// badDeferred proves a deferred unlock keeps the lock held for every
// following statement.
func (reg *Registry) badDeferred() {
	reg.mu.Lock()
	defer reg.mu.Unlock()
	time.Sleep(time.Millisecond) // want "call to time.Sleep while holding reg.mu"
}

// goodFetch releases the lock before the blocking call.
func (reg *Registry) goodFetch(url string) {
	reg.mu.Lock()
	n := len(reg.streams)
	reg.mu.Unlock()
	if n > 0 {
		http.Get(url)
	}
}

// goodJournal calls the journaled store path under the write lock —
// the one sanctioned exception.
func (reg *Registry) goodJournal(name string) {
	reg.mu.Lock()
	defer reg.mu.Unlock()
	store.Append(name)
}

// --- rules 2 and 3: re-entry and lock acquisition under the shard lock ---

var auditMu sync.Mutex

// useRegistry re-enters the registry from a Visit callback and takes a
// foreign lock inside another; a third callback carries the documented
// suppression and a fourth is its unannotated twin.
func useRegistry(reg *Registry) {
	reg.Visit(func(s *stream) {
		reg.Get(s.name) // want "call to Registry.Get inside a Registry.Visit callback .* would re-enter the registry lock and deadlock"
	})
	reg.Visit(func(s *stream) {
		//lint:ignore lockdiscipline documented lock order shard -> auditMu; audit code never takes the shard lock
		auditMu.Lock()
		auditMu.Unlock()
	})
	reg.Visit(func(s *stream) {
		auditMu.Lock() // want "acquiring auditMu.Lock inside a Registry.Visit callback .* adds a lock-order edge"
		auditMu.Unlock()
	})
}

// persister's lifecycle observers run under the shard write lock.
type persister struct {
	reg *Registry
}

// StreamCreated re-enters the registry — deadlock.
func (p *persister) StreamCreated(name string) {
	p.reg.Get(name) // want "call to Registry.Get inside lifecycle observer StreamCreated .* would re-enter the registry lock and deadlock"
}

// StreamDeleted journals only, which is fine: the exempt store call
// is neither re-entry nor a lock acquisition.
func (p *persister) StreamDeleted(name string) {
	store.Append(name)
}

// --- rule 4: mutex copies ---

// cloneRegistry copies the registry (and its embedded lock) in both
// directions.
func cloneRegistry(reg Registry) Registry { // want "parameter of cloneRegistry passes a mutex by value" "result of cloneRegistry passes a mutex by value"
	return reg
}

// resetRegistry shares the registry through a pointer — fine.
func resetRegistry(reg *Registry) {
	reg.mu.Lock()
	reg.streams = nil
	reg.mu.Unlock()
}
