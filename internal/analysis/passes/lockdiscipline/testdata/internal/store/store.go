// Package store is the journaled write-ahead fixture: calls into it
// are the sanctioned exception to the no-I/O-under-lock rule, because
// registry lifecycle events journal under the shard lock by design.
package store

// Append journals a record; safe under the shard lock by design.
func Append(rec string) error { return nil }
