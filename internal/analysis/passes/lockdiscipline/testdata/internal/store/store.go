// Package store is the journal fixture. The Store interface's commit
// path — Put, PutAsync, Delete, and Ticket.Wait — is the sanctioned
// exception to the no-blocking-under-lock rule: enqueue-then-wait does
// no file I/O under the caller's lock, the group commit runs on the
// store's own committer goroutine. Everything else in the package
// (Append, Compact) blocks and must never run under a shard lock.
package store

// Entry is one persisted record.
type Entry struct {
	ID  string
	Rev uint64
}

// Ticket is the asynchronous handle of an enqueued record.
type Ticket struct{ err error }

// Wait blocks until the record's group commit lands; exempt — waiting
// for the shared commit is how write-ahead ordering is preserved.
func (t *Ticket) Wait() error { return t.err }

// Store is the fixture persistence interface.
type Store interface {
	// Put, PutAsync, and Delete are the exempt commit path.
	Put(e Entry) error
	PutAsync(e Entry) *Ticket
	Delete(id string) error
	// Compact rewrites the whole live set: blocking, never under a lock.
	Compact() error
}

// Append is a raw journal append, deliberately not on the exemption
// list: callers must go through the Store commit path.
func Append(rec string) error { return nil }
