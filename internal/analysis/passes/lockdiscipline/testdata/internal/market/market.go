// Fixture for rule 5 (per-iteration lock churn in loops) over the
// market package's batch-settle shapes: one lock spanning many settles
// is the sanctioned form; locking and unlocking per item inside the
// loop is flagged.
package market

import "sync"

// Broker mimics the market broker's books: a mutex over a ledger.
type Broker struct {
	mu     sync.Mutex
	ledger []int
}

func (b *Broker) settleLocked(item int) {
	b.ledger = append(b.ledger, item)
}

// goodBatchSettle is the sanctioned batch-settle shape: ONE mutex
// acquisition spans every settle in the batch.
func (b *Broker) goodBatchSettle(items []int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for _, it := range items {
		b.settleLocked(it)
	}
}

// badPerItemSettle pays a mutex handoff per item.
func (b *Broker) badPerItemSettle(items []int) {
	for _, it := range items {
		b.mu.Lock() // want "per-iteration Lock/Unlock of b.mu inside a loop"
		b.settleLocked(it)
		b.mu.Unlock()
	}
}

// badForLoopChurn is the same churn in a plain for loop.
func (b *Broker) badForLoopChurn(n int) {
	for i := 0; i < n; i++ {
		b.mu.Lock() // want "per-iteration Lock/Unlock of b.mu inside a loop"
		b.settleLocked(i)
		b.mu.Unlock()
	}
}

// goodFallbackLoop calls a helper that locks internally: the helper owns
// its locking decision, so the loop is not flagged.
func (b *Broker) goodFallbackLoop(items []int) {
	for _, it := range items {
		b.settleOne(it)
	}
}

func (b *Broker) settleOne(item int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.settleLocked(item)
}

// Sharded mimics a sharded registry: each iteration locks a DIFFERENT
// mutex, so there is no single lock being churned — not flagged.
type Sharded struct {
	shards []struct {
		mu      sync.RWMutex
		entries map[string]int
	}
}

func (s *Sharded) goodShardSweepIndexed() int {
	var n int
	for i := range s.shards {
		s.shards[i].mu.RLock()
		n += len(s.shards[i].entries)
		s.shards[i].mu.RUnlock()
	}
	return n
}

func (s *Sharded) goodShardSweepLocal() int {
	var n int
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		n += len(sh.entries)
		sh.mu.RUnlock()
	}
	return n
}

// goodUnlockOnly releases a lock acquired before the loop on the way
// out of the first iteration of a retry loop — no per-iteration pair,
// not flagged.
func (b *Broker) goodUnlockOnly(items []int) {
	b.mu.Lock()
	for range items {
		b.mu.Unlock()
		return
	}
	b.mu.Unlock()
}
