// Package lockdiscipline enforces the registry's locking rules:
//
//  1. No blocking I/O while holding a mutex: calls into net/http, net,
//     os, the store package, or time.Sleep under a held Lock/RLock
//     stall every reader of that shard. The sanctioned exception is the
//     store's commit path — Store.Put, Store.PutAsync, Store.Delete,
//     and Ticket.Wait: lifecycle events journal write-ahead under the
//     shard write lock by design, and a checkpoint pass enqueues each
//     dirty stream's delta under that stream's shard lock (PutAsync
//     does no file I/O; the group commit runs on the store's committer
//     goroutine after the lock is gone). Everything else in the store —
//     Load, Compact, Close, constructors — rewrites or scans files and
//     must never run under a shard lock.
//  2. Visit callbacks run under the shard read lock: calling back into
//     the registry self-deadlocks, acquiring any other mutex inside
//     the callback creates a lock-order edge that must be justified
//     (the persister's documented shard → revMu order carries a
//     //lint:ignore for exactly this reason), and blocking calls obey
//     the same rule-1 exemption list.
//  3. The same rules apply to LifecycleObserver methods, which run
//     under the shard write lock.
//  4. Mutexes must not be copied: parameters, receivers, and results
//     that carry a sync.Mutex/RWMutex by value are flagged.
//  5. No per-item lock churn in loops: a loop body whose direct
//     statements Lock and then Unlock the same mutex pays a mutex
//     handoff every iteration — under contention the handoffs dominate
//     the work. The sanctioned shape is the market broker's batch
//     settle: acquire once, settle every item, release once. The check
//     is deliberately syntactic (the pair must be direct statements of
//     the loop body), so helpers that acquire internally — e.g. the
//     batch fallback path calling Trade per query — are not flagged.
//
// Unlike the other passes, this one resolves interface-method callees:
// the serving layer talks to the store through the Store interface, so
// exemptions and blocking verdicts must attach to
// "(datamarket/internal/store.Store).Put" and friends, not only to
// concrete methods.
package lockdiscipline

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"datamarket/internal/analysis"
)

// Config parameterizes the analyzer.
type Config struct {
	// Pkgs are the packages whose functions are checked.
	Pkgs []string
	// BlockingPkgs are import paths whose calls count as blocking I/O.
	BlockingPkgs []string
	// BlockingFuncs are fully-qualified extra blocking functions.
	BlockingFuncs []string
	// ExemptCallees are fully-qualified functions (types.Func full
	// names, interface methods included) that may be called while
	// holding a lock even though their package is blocking: the store's
	// enqueue-then-wait commit path.
	ExemptCallees []string
	// RegistryType names the sharded registry type (in Pkgs) whose
	// Visit callbacks and observers are lock-sensitive.
	RegistryType string
	// VisitMethod is the registry's visit-under-lock method name.
	VisitMethod string
	// ObserverMethods are lifecycle-callback method names that run
	// under the registry shard lock.
	ObserverMethods []string
	// Anchor triggers the whole-program analyzer.
	Anchor string
}

// DefaultConfig is the repo's real wiring.
func DefaultConfig() Config {
	return Config{
		Pkgs:          []string{"datamarket/internal/server", "datamarket/internal/market"},
		BlockingPkgs:  []string{"net/http", "net", "os", "datamarket/internal/store"},
		BlockingFuncs: []string{"time.Sleep"},
		ExemptCallees: []string{
			"(datamarket/internal/store.Store).Put",
			"(datamarket/internal/store.Store).PutAsync",
			"(datamarket/internal/store.Store).Delete",
			"(*datamarket/internal/store.Ticket).Wait",
		},
		RegistryType:    "Registry",
		VisitMethod:     "Visit",
		ObserverMethods: []string{"StreamCreated", "StreamRestored", "StreamDeleted"},
		Anchor:          "datamarket/internal/server",
	}
}

// NewAnalyzer builds the lockdiscipline analyzer with the given config.
func NewAnalyzer(cfg Config) *analysis.Analyzer {
	return &analysis.Analyzer{
		Name:   "lockdiscipline",
		Doc:    "checks registry locking rules: no blocking I/O under a shard lock, no registry re-entry or lock acquisition in Visit/observer callbacks, no mutex copies, no per-iteration lock churn in loops",
		Anchor: cfg.Anchor,
		Run:    func(pass *analysis.Pass) error { return run(pass, cfg) },
	}
}

// Analyzer is the production instance.
var Analyzer = NewAnalyzer(DefaultConfig())

func run(pass *analysis.Pass, cfg Config) error {
	for _, path := range cfg.Pkgs {
		pkg := pass.Prog.Lookup(path)
		if pkg == nil {
			continue
		}
		for _, f := range pkg.Syntax {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				checkHeldLocks(pass, cfg, pkg, fd)
				checkVisitCallbacks(pass, cfg, pkg, fd)
				checkObserver(pass, cfg, pkg, fd)
				checkMutexCopies(pass, pkg, fd)
				checkLockChurn(pass, pkg, fd)
			}
		}
	}
	return nil
}

// --- rule 1: blocking calls under a held lock ---

func checkHeldLocks(pass *analysis.Pass, cfg Config, pkg *analysis.Package, fd *ast.FuncDecl) {
	walkLockRegions(pkg.TypesInfo, fd.Body, make(map[string]bool), func(stmt ast.Stmt, held map[string]bool) {
		ast.Inspect(stmt, func(n ast.Node) bool {
			if _, ok := n.(*ast.FuncLit); ok {
				// Literal bodies run at call time, not necessarily
				// under the lock; Visit callbacks have their own rule.
				return false
			}
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeOf(pkg.TypesInfo, call)
			if fn == nil || !isBlockingCall(cfg, fn) {
				return true
			}
			pass.Reportf(call.Pos(),
				"call to %s while holding %s: blocking I/O under a lock stalls every contender (release the lock first, or route through the store's enqueue-then-wait commit path)",
				fn.FullName(), heldNames(held))
			return true
		})
	})
}

// walkLockRegions walks stmts in order, tracking which mutexes are
// held (by receiver expression spelling), and invokes visit for every
// statement executed with at least one lock held. Branch bodies get a
// copy of the held set — releases inside a branch don't leak out,
// which over-approximates "held" on the joined path; that is the safe
// direction for this check.
func walkLockRegions(info *types.Info, body *ast.BlockStmt, held map[string]bool, visit func(ast.Stmt, map[string]bool)) {
	for _, stmt := range body.List {
		lock, unlock, name := lockOp(info, stmt)
		switch {
		case lock:
			held[name] = true
			continue
		case unlock:
			delete(held, name)
			continue
		}
		if len(held) > 0 {
			visit(stmt, held)
		}
		switch s := stmt.(type) {
		case *ast.BlockStmt:
			walkLockRegions(info, s, copyHeld(held), visit)
		case *ast.IfStmt:
			walkLockRegions(info, s.Body, copyHeld(held), visit)
			if els, ok := s.Else.(*ast.BlockStmt); ok {
				walkLockRegions(info, els, copyHeld(held), visit)
			}
		case *ast.ForStmt:
			walkLockRegions(info, s.Body, copyHeld(held), visit)
		case *ast.RangeStmt:
			walkLockRegions(info, s.Body, copyHeld(held), visit)
		case *ast.SwitchStmt:
			for _, c := range s.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok {
					walkLockRegions(info, &ast.BlockStmt{List: cc.Body}, copyHeld(held), visit)
				}
			}
		case *ast.TypeSwitchStmt:
			for _, c := range s.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok {
					walkLockRegions(info, &ast.BlockStmt{List: cc.Body}, copyHeld(held), visit)
				}
			}
		}
	}
}

func copyHeld(held map[string]bool) map[string]bool {
	cp := make(map[string]bool, len(held))
	for k, v := range held {
		cp[k] = v
	}
	return cp
}

// lockOp classifies a statement as a lock acquire/release on a
// sync.Mutex/RWMutex. Deferred unlocks keep the lock held for the rest
// of the function, so they are deliberately NOT treated as releases.
func lockOp(info *types.Info, stmt ast.Stmt) (lock, unlock bool, name string) {
	var call *ast.CallExpr
	switch s := stmt.(type) {
	case *ast.ExprStmt:
		call, _ = s.X.(*ast.CallExpr)
	case *ast.DeferStmt:
		// defer mu.Unlock(): still held for every following statement.
		return false, false, ""
	}
	if call == nil {
		return false, false, ""
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || !isMutexType(typeOf(info, sel.X)) {
		return false, false, ""
	}
	name = exprPath(sel.X)
	switch sel.Sel.Name {
	case "Lock", "RLock":
		return true, false, name
	case "Unlock", "RUnlock":
		return false, true, name
	}
	return false, false, ""
}

// --- rule 2: Visit callbacks ---

func checkVisitCallbacks(pass *analysis.Pass, cfg Config, pkg *analysis.Package, fd *ast.FuncDecl) {
	info := pkg.TypesInfo
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != cfg.VisitMethod {
			return true
		}
		if !isRegistryType(typeOf(info, sel.X), cfg, pkg.PkgPath) {
			return true
		}
		for _, arg := range call.Args {
			lit, ok := arg.(*ast.FuncLit)
			if !ok {
				continue
			}
			checkUnderShardLock(pass, cfg, pkg, lit.Body,
				fmt.Sprintf("inside a %s.%s callback (runs under the shard lock)", cfg.RegistryType, cfg.VisitMethod))
		}
		return true
	})
}

// --- rule 3: observer methods ---

func checkObserver(pass *analysis.Pass, cfg Config, pkg *analysis.Package, fd *ast.FuncDecl) {
	if fd.Recv == nil {
		return
	}
	observer := false
	for _, m := range cfg.ObserverMethods {
		if fd.Name.Name == m {
			observer = true
		}
	}
	if !observer {
		return
	}
	checkUnderShardLock(pass, cfg, pkg, fd.Body,
		fmt.Sprintf("inside lifecycle observer %s (runs under the registry shard write lock)", fd.Name.Name))
}

// checkUnderShardLock flags registry re-entry, mutex acquisition, and
// blocking calls in a body known to execute under a registry shard
// lock. Blocking calls obey the same exemption list as rule 1: the
// store's enqueue-then-wait commit path (PutAsync queues the record and
// returns without file I/O) is the sanctioned way to journal from a
// Visit callback or lifecycle observer.
func checkUnderShardLock(pass *analysis.Pass, cfg Config, pkg *analysis.Package, body *ast.BlockStmt, where string) {
	info := pkg.TypesInfo
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if fn := calleeOf(info, call); fn != nil && isBlockingCall(cfg, fn) {
			pass.Reportf(call.Pos(),
				"call to %s %s blocks under the shard lock; only the store's enqueue-then-wait commit path (Put, PutAsync, Delete, Ticket.Wait) is sanctioned here",
				fn.FullName(), where)
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		recv := typeOf(info, sel.X)
		if isRegistryType(recv, cfg, pkg.PkgPath) {
			pass.Reportf(call.Pos(),
				"call to %s.%s %s would re-enter the registry lock and deadlock",
				cfg.RegistryType, sel.Sel.Name, where)
			return true
		}
		if isMutexType(recv) && (sel.Sel.Name == "Lock" || sel.Sel.Name == "RLock") {
			pass.Reportf(call.Pos(),
				"acquiring %s.%s %s adds a lock-order edge; document the order and //lint:ignore if intended",
				exprPath(sel.X), sel.Sel.Name, where)
		}
		return true
	})
}

// --- rule 4: mutex copies ---

func checkMutexCopies(pass *analysis.Pass, pkg *analysis.Package, fd *ast.FuncDecl) {
	info := pkg.TypesInfo
	check := func(fields *ast.FieldList, kind string) {
		if fields == nil {
			return
		}
		for _, field := range fields.List {
			tv, ok := info.Types[field.Type]
			if !ok {
				continue
			}
			if containsMutex(tv.Type, make(map[types.Type]bool)) {
				pass.Reportf(field.Type.Pos(),
					"%s of %s passes a mutex by value; copies of a locked mutex deadlock — use a pointer", kind, fd.Name.Name)
			}
		}
	}
	check(fd.Recv, "receiver")
	check(fd.Type.Params, "parameter")
	check(fd.Type.Results, "result")
}

// --- rule 5: per-iteration lock churn in loops ---

// checkLockChurn flags loop bodies whose direct statements Lock and
// later Unlock the same mutex: every iteration pays an acquire/release
// handoff, which under contention dominates short critical sections.
// The fix is the batch-settle shape — hoist the Lock above the loop
// (the one-lock-spanning-many-settles form rule 1 walks without
// complaint, as long as nothing inside blocks). Only direct statements
// count: a helper that locks internally (the batch fallback calling
// Trade per query) makes its own locking decision and is not this
// loop's churn.
func checkLockChurn(pass *analysis.Pass, pkg *analysis.Package, fd *ast.FuncDecl) {
	info := pkg.TypesInfo
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		var body *ast.BlockStmt
		switch s := n.(type) {
		case *ast.ForStmt:
			body = s.Body
		case *ast.RangeStmt:
			body = s.Body
		default:
			return true
		}
		// Identifiers bound per iteration: a mutex reached through one of
		// these (or through an index expression) is a different mutex each
		// time around — the sharded-registry idiom — not churn on one lock.
		loopLocal := make(map[string]bool)
		switch s := n.(type) {
		case *ast.ForStmt:
			collectDefines(s.Init, loopLocal)
		case *ast.RangeStmt:
			if id, ok := s.Key.(*ast.Ident); ok {
				loopLocal[id.Name] = true
			}
			if id, ok := s.Value.(*ast.Ident); ok {
				loopLocal[id.Name] = true
			}
		}
		locked := make(map[string]token.Pos) // mutex → its Lock stmt in this body
		reported := make(map[string]bool)
		for _, stmt := range body.List {
			collectDefines(stmt, loopLocal)
			lock, unlock, name := lockOp(info, stmt)
			if root, _, _ := strings.Cut(name, "."); loopLocal[root] || strings.Contains(name, "[...]") {
				continue
			}
			switch {
			case lock:
				if _, ok := locked[name]; !ok {
					locked[name] = stmt.Pos()
				}
			case unlock:
				pos, ok := locked[name]
				if ok && !reported[name] {
					reported[name] = true
					pass.Reportf(pos,
						"per-iteration Lock/Unlock of %s inside a loop pays a mutex handoff every item; hoist the acquisition to span the loop (the batch-settle shape) or batch the work",
						name)
				}
				delete(locked, name)
			}
		}
		return true
	})
}

// collectDefines records identifiers bound by a `:=` statement.
func collectDefines(stmt ast.Stmt, into map[string]bool) {
	as, ok := stmt.(*ast.AssignStmt)
	if !ok || as.Tok != token.DEFINE {
		return
	}
	for _, lhs := range as.Lhs {
		if id, ok := lhs.(*ast.Ident); ok {
			into[id.Name] = true
		}
	}
}

// --- shared helpers ---

// calleeOf resolves a call's static callee like analysis.CalleeOf, but
// keeps interface methods instead of dropping them: this pass judges
// calls by where the callee is declared (is it the store's commit
// path?), and for an interface call the declaring interface is exactly
// the right identity — the serving layer journals through store.Store,
// so "(datamarket/internal/store.Store).Put" is the name the exemption
// list and the blocking verdict must see.
func calleeOf(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			fn, _ := sel.Obj().(*types.Func)
			return fn
		}
		// Package-qualified call: pkg.Func.
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// isBlockingCall reports whether fn counts as blocking under cfg:
// declared in a blocking package or named in BlockingFuncs, and not on
// the exemption list.
func isBlockingCall(cfg Config, fn *types.Func) bool {
	if fn.Pkg() == nil {
		return false
	}
	full := fn.FullName()
	for _, exempt := range cfg.ExemptCallees {
		if full == exempt {
			return false
		}
	}
	path := fn.Pkg().Path()
	for _, p := range cfg.BlockingPkgs {
		if path == p {
			return true
		}
	}
	for _, f := range cfg.BlockingFuncs {
		if full == f {
			return true
		}
	}
	return false
}

func typeOf(info *types.Info, e ast.Expr) types.Type {
	if tv, ok := info.Types[e]; ok && tv.Type != nil {
		return tv.Type
	}
	return types.Typ[types.Invalid]
}

func isMutexType(t types.Type) bool {
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" &&
		(obj.Name() == "Mutex" || obj.Name() == "RWMutex")
}

// containsMutex reports whether t carries a sync.Mutex/RWMutex by
// value (directly, or through struct fields / arrays). Pointers,
// slices, maps, and channels stop the walk — they share, not copy.
func containsMutex(t types.Type, seen map[types.Type]bool) bool {
	if seen[t] {
		return false
	}
	seen[t] = true
	if isMutexType(t) {
		return true
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if containsMutex(u.Field(i).Type(), seen) {
				return true
			}
		}
	case *types.Array:
		return containsMutex(u.Elem(), seen)
	}
	return false
}

func isRegistryType(t types.Type, cfg Config, pkgPath string) bool {
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == cfg.RegistryType &&
		obj.Pkg() != nil && obj.Pkg().Path() == pkgPath
}

func exprPath(e ast.Expr) string {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return exprPath(x.X) + "." + x.Sel.Name
	case *ast.StarExpr:
		return exprPath(x.X)
	case *ast.IndexExpr:
		return exprPath(x.X) + "[...]"
	}
	return "?"
}

func heldNames(held map[string]bool) string {
	names := make([]string, 0, len(held))
	for n := range held {
		names = append(names, n)
	}
	sort.Strings(names)
	return strings.Join(names, ", ")
}
