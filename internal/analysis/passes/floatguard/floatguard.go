// Package floatguard enforces the repo's non-finite-input discipline.
// NaN/Inf bugs were fixed piecemeal in earlier PRs (NaN valuations
// poisoning ellipsoid state, Inf radii, non-finite mapped features);
// this pass makes the convention mechanical:
//
// Rule A (wire boundary): an HTTP handler that decodes a request type
// carrying float64 fields must reach a non-finite check
// (math.IsNaN/math.IsInf) somewhere in its call graph before the
// floats can sink into mechanism state.
//
// Rule B (constructors): an exported constructor (New*/Restore*) in the
// guarded packages that takes raw float64/[]float64 parameters must
// validate each of them — a plain `x <= 0` comparison is NOT a
// validation, because every ordered comparison with NaN is false and
// the guard silently admits it.
package floatguard

import (
	"go/ast"
	"go/types"
	"strings"

	"datamarket/internal/analysis"
)

// Config parameterizes the analyzer.
type Config struct {
	// BoundaryPkgs hold the HTTP handlers checked under Rule A.
	BoundaryPkgs []string
	// DecoderFuncs name the functions whose calls mark a wire decode;
	// the decoded type is the pointed-to type of the last argument,
	// or the first result type if no pointer argument is present.
	DecoderFuncs []string
	// ConstructorPkgs are checked under Rule B.
	ConstructorPkgs []string
	// Anchor is the package whose presence triggers the (whole
	// program) analyzer.
	Anchor string
}

// DefaultConfig is the repo's real wiring.
func DefaultConfig() Config {
	return Config{
		BoundaryPkgs: []string{"datamarket/internal/server"},
		DecoderFuncs: []string{"readJSON", "DecodeEnvelope"},
		ConstructorPkgs: []string{
			"datamarket/internal/pricing",
			"datamarket/internal/privacy",
			"datamarket/internal/market",
			"datamarket/internal/kernel",
			"datamarket/internal/ellipsoid",
			"datamarket/internal/server",
		},
		Anchor: "datamarket/internal/server",
	}
}

// NewAnalyzer builds the floatguard analyzer with the given config.
func NewAnalyzer(cfg Config) *analysis.Analyzer {
	return &analysis.Analyzer{
		Name:   "floatguard",
		Doc:    "checks that wire-facing handlers and exported constructors validate float64 inputs against NaN/Inf before use",
		Anchor: cfg.Anchor,
		Run:    func(pass *analysis.Pass) error { return run(pass, cfg) },
	}
}

// Analyzer is the production instance.
var Analyzer = NewAnalyzer(DefaultConfig())

func run(pass *analysis.Pass, cfg Config) error {
	graph := analysis.BuildCallGraph(pass.Prog.Targets)
	seeds := make(map[*types.Func]bool)
	for _, name := range []string{"math.IsNaN", "math.IsInf"} {
		if fn := pass.Prog.FuncByFullName(name); fn != nil {
			seeds[fn] = true
		}
	}
	sanitizers := graph.Reaching(seeds)

	for _, path := range cfg.BoundaryPkgs {
		if pkg := pass.Prog.Lookup(path); pkg != nil {
			checkBoundary(pass, cfg, pkg, graph, sanitizers)
		}
	}
	for _, path := range cfg.ConstructorPkgs {
		if pkg := pass.Prog.Lookup(path); pkg != nil {
			checkConstructors(pass, pkg, sanitizers)
		}
	}
	return nil
}

// --- Rule A: wire boundary ---

func checkBoundary(pass *analysis.Pass, cfg Config, pkg *analysis.Package, graph *analysis.CallGraph, sanitizers map[*types.Func]bool) {
	decoder := make(map[string]bool, len(cfg.DecoderFuncs))
	for _, name := range cfg.DecoderFuncs {
		decoder[name] = true
	}
	for fn, fd := range graph.Decls {
		if fn.Pkg() == nil || fn.Pkg().Path() != pkg.PkgPath {
			continue
		}
		if !isHandlerShaped(pass.Prog, fn) {
			continue
		}
		decoded := decodedFloatType(pkg.TypesInfo, fd, decoder)
		if decoded == nil {
			continue
		}
		if sanitizers[fn] {
			continue
		}
		pass.Reportf(fd.Name.Pos(),
			"handler %s decodes %s, which carries float64 fields from the wire, but its call graph never reaches a non-finite check (math.IsNaN/math.IsInf)",
			fd.Name.Name, types.TypeString(decoded, types.RelativeTo(pkg.Types)))
	}
}

// isHandlerShaped reports whether fn has the
// (http.ResponseWriter, *http.Request) signature.
func isHandlerShaped(prog *analysis.Program, fn *types.Func) bool {
	sig := fn.Signature()
	params := sig.Params()
	if params.Len() != 2 || sig.Results().Len() != 0 {
		return false
	}
	if !prog.ImplementsResponseWriter(params.At(0).Type()) {
		return false
	}
	ptr, ok := params.At(1).Type().(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	return ok && named.Obj().Name() == "Request" &&
		named.Obj().Pkg() != nil && named.Obj().Pkg().Path() == "net/http"
}

// decodedFloatType returns the first float-bearing type the handler
// decodes from the wire via a decoder func, or nil.
func decodedFloatType(info *types.Info, fd *ast.FuncDecl, decoder map[string]bool) types.Type {
	var result types.Type
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if result != nil {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := analysis.CalleeOf(info, call)
		if fn == nil || !decoder[fn.Name()] {
			return true
		}
		if t := decodeTarget(info, call, fn); t != nil && analysis.HasFloatComponent(t) {
			result = t
		}
		return true
	})
	return result
}

// decodeTarget extracts the decoded type from a decoder call: the
// element type of the last pointer argument (readJSON(w, r, &req)
// style), else the first pointer result (DecodeEnvelope(data) style).
func decodeTarget(info *types.Info, call *ast.CallExpr, fn *types.Func) types.Type {
	for i := len(call.Args) - 1; i >= 0; i-- {
		if tv, ok := info.Types[call.Args[i]]; ok {
			if ptr, ok := tv.Type.Underlying().(*types.Pointer); ok {
				return ptr.Elem()
			}
		}
	}
	results := fn.Signature().Results()
	for i := 0; i < results.Len(); i++ {
		if ptr, ok := results.At(i).Type().Underlying().(*types.Pointer); ok {
			return ptr.Elem()
		}
	}
	return nil
}

// --- Rule B: constructors ---

func checkConstructors(pass *analysis.Pass, pkg *analysis.Package, sanitizers map[*types.Func]bool) {
	for _, f := range pkg.Syntax {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || fd.Recv != nil {
				continue
			}
			name := fd.Name.Name
			if !fd.Name.IsExported() ||
				(!strings.HasPrefix(name, "New") && !strings.HasPrefix(name, "Restore")) {
				continue
			}
			checkConstructor(pass, pkg, fd, sanitizers)
		}
	}
}

func checkConstructor(pass *analysis.Pass, pkg *analysis.Package, fd *ast.FuncDecl, sanitizers map[*types.Func]bool) {
	info := pkg.TypesInfo
	type floatParam struct {
		name *ast.Ident
		obj  types.Object
	}
	var params []floatParam
	for _, field := range fd.Type.Params.List {
		tv, ok := info.Types[field.Type]
		if !ok || !analysis.IsFloatParam(tv.Type) {
			continue
		}
		for _, name := range field.Names {
			if obj := info.Defs[name]; obj != nil {
				params = append(params, floatParam{name: name, obj: obj})
			}
		}
	}
	if len(params) == 0 {
		return
	}

	// Aliases: range-value variables over a float slice param carry
	// the param's taint (`for _, v := range xs { math.IsNaN(v) }`),
	// transitively through nested ranges (`for _, vec := range xs {
	// for _, v := range vec { ... } }`). ast.Inspect is pre-order, so
	// outer ranges are registered before inner ones resolve them.
	paramObj := make(map[types.Object]bool, len(params))
	for _, p := range params {
		paramObj[p.obj] = true
	}
	aliases := make(map[types.Object]types.Object) // alias → root param
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		rangedID, ok := ast.Unparen(rs.X).(*ast.Ident)
		if !ok {
			return true
		}
		ranged := info.Uses[rangedID]
		if ranged == nil {
			return true
		}
		root := ranged
		if r, ok := aliases[ranged]; ok {
			root = r
		}
		if !paramObj[root] {
			return true
		}
		if vid, ok := rs.Value.(*ast.Ident); ok {
			if vobj := info.Defs[vid]; vobj != nil {
				aliases[vobj] = root
			}
		}
		return true
	})

	// A param is validated when it (or an alias) appears inside a
	// call to a sanitizing function, or flows into another
	// constructor (which this pass checks in its own right).
	validated := make(map[types.Object]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := analysis.CalleeOf(info, call)
		if fn == nil {
			return true
		}
		sanitizing := sanitizers[fn]
		forwarding := strings.HasPrefix(fn.Name(), "New") || strings.HasPrefix(fn.Name(), "Restore")
		if !sanitizing && !forwarding {
			return true
		}
		markParamUses(info, call, aliases, validated)
		return true
	})

	for _, p := range params {
		if validated[p.obj] {
			continue
		}
		pass.Reportf(p.name.Pos(),
			"exported constructor %s takes float parameter %q but never checks it for NaN/Inf (ordered comparisons like `%s <= 0` are false for NaN and admit it)",
			fd.Name.Name, p.name.Name, p.name.Name)
	}
}

// markParamUses records every param (directly or via alias) mentioned
// in the call's arguments or receiver expression.
func markParamUses(info *types.Info, call *ast.CallExpr, aliases map[types.Object]types.Object, validated map[types.Object]bool) {
	scan := func(e ast.Expr) {
		ast.Inspect(e, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			obj := info.Uses[id]
			if obj == nil {
				return true
			}
			if p, ok := aliases[obj]; ok {
				validated[p] = true
			} else {
				validated[obj] = true
			}
			return true
		})
	}
	for _, arg := range call.Args {
		scan(arg)
	}
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		scan(sel.X)
	}
}
