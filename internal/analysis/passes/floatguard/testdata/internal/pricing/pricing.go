// Package pricing is the floatguard constructor fixture: exported
// New*/Restore* functions taking floats must check them for NaN/Inf,
// because ordered comparisons silently admit NaN.
package pricing

import (
	"errors"
	"math"
)

// Mechanism is the constructed type.
type Mechanism struct {
	eta    float64
	bounds []float64
}

// NewUnchecked relies on an ordered comparison, which NaN passes.
func NewUnchecked(eta float64) (*Mechanism, error) { // want "exported constructor NewUnchecked takes float parameter \"eta\""
	if eta <= 0 {
		return nil, errors.New("eta must be positive")
	}
	return &Mechanism{eta: eta}, nil
}

// NewChecked rejects non-finite input before the sign check.
func NewChecked(eta float64) (*Mechanism, error) {
	if math.IsNaN(eta) || math.IsInf(eta, 0) || eta <= 0 {
		return nil, errors.New("eta must be finite and positive")
	}
	return &Mechanism{eta: eta}, nil
}

// NewForwarded delegates to NewChecked; forwarding a float into
// another constructor counts, since that constructor is checked in
// its own right.
func NewForwarded(eta float64) (*Mechanism, error) {
	return NewChecked(eta)
}

// NewFromBounds validates each element through a range alias.
func NewFromBounds(bounds []float64) (*Mechanism, error) {
	for _, b := range bounds {
		if math.IsNaN(b) || math.IsInf(b, 0) {
			return nil, errors.New("bounds must be finite")
		}
	}
	return &Mechanism{bounds: bounds}, nil
}

// Sparse query constructors: the fast-path market pipeline takes
// (indices, weights) support pairs, and the weights slice carries the
// same wire-ingestion contract as a dense vector.

// Query is a sparse-support construct.
type Query struct {
	indices []int
	weights []float64
}

// NewSparseUnchecked validates the index structure but never looks at
// the weight values — NaN weights sail through.
func NewSparseUnchecked(n int, indices []int, weights []float64) (*Query, error) { // want "exported constructor NewSparseUnchecked takes float parameter \"weights\""
	if len(indices) != len(weights) {
		return nil, errors.New("support length mismatch")
	}
	for _, i := range indices {
		if i < 0 || i >= n {
			return nil, errors.New("index out of range")
		}
	}
	return &Query{indices: indices, weights: weights}, nil
}

// NewSparseChecked rejects non-finite weights entry by entry alongside
// the structural checks.
func NewSparseChecked(n int, indices []int, weights []float64) (*Query, error) {
	if len(indices) != len(weights) {
		return nil, errors.New("support length mismatch")
	}
	for k, i := range indices {
		if i < 0 || i >= n {
			return nil, errors.New("index out of range")
		}
		if math.IsNaN(weights[k]) || math.IsInf(weights[k], 0) {
			return nil, errors.New("weights must be finite")
		}
	}
	return &Query{indices: indices, weights: weights}, nil
}

// NewSharedQuery forwards its weights into the checked sparse
// constructor, which validates them in its own right.
func NewSharedQuery(n int, indices []int, weights []float64) (*Query, error) {
	return NewSparseChecked(n, indices, weights)
}

// Scale is exported and takes a float, but only constructors carry the
// wire-ingestion contract, so it is not flagged.
func Scale(m *Mechanism, factor float64) {
	m.eta *= factor
}

// NewGrandfathered is a known hole kept on purpose; the suppression
// names the analyzer and the reason.
//
//lint:ignore floatguard caller is trusted internal replay code, input never crosses the wire
func NewGrandfathered(eta float64) *Mechanism {
	return &Mechanism{eta: eta}
}
