// Package pricing is the floatguard constructor fixture: exported
// New*/Restore* functions taking floats must check them for NaN/Inf,
// because ordered comparisons silently admit NaN.
package pricing

import (
	"errors"
	"math"
)

// Mechanism is the constructed type.
type Mechanism struct {
	eta    float64
	bounds []float64
}

// NewUnchecked relies on an ordered comparison, which NaN passes.
func NewUnchecked(eta float64) (*Mechanism, error) { // want "exported constructor NewUnchecked takes float parameter \"eta\""
	if eta <= 0 {
		return nil, errors.New("eta must be positive")
	}
	return &Mechanism{eta: eta}, nil
}

// NewChecked rejects non-finite input before the sign check.
func NewChecked(eta float64) (*Mechanism, error) {
	if math.IsNaN(eta) || math.IsInf(eta, 0) || eta <= 0 {
		return nil, errors.New("eta must be finite and positive")
	}
	return &Mechanism{eta: eta}, nil
}

// NewForwarded delegates to NewChecked; forwarding a float into
// another constructor counts, since that constructor is checked in
// its own right.
func NewForwarded(eta float64) (*Mechanism, error) {
	return NewChecked(eta)
}

// NewFromBounds validates each element through a range alias.
func NewFromBounds(bounds []float64) (*Mechanism, error) {
	for _, b := range bounds {
		if math.IsNaN(b) || math.IsInf(b, 0) {
			return nil, errors.New("bounds must be finite")
		}
	}
	return &Mechanism{bounds: bounds}, nil
}

// Scale is exported and takes a float, but only constructors carry the
// wire-ingestion contract, so it is not flagged.
func Scale(m *Mechanism, factor float64) {
	m.eta *= factor
}

// NewGrandfathered is a known hole kept on purpose; the suppression
// names the analyzer and the reason.
//
//lint:ignore floatguard caller is trusted internal replay code, input never crosses the wire
func NewGrandfathered(eta float64) *Mechanism {
	return &Mechanism{eta: eta}
}
