// Package server is the floatguard boundary fixture: handlers that
// decode float-bearing wire types must reach a non-finite check
// somewhere in their call graph.
package server

import (
	"encoding/json"
	"math"
	"net/http"
)

// bidRequest carries float64 fields from the wire.
type bidRequest struct {
	Price  float64   `json:"price"`
	Vector []float64 `json:"vector"`
}

// nameRequest carries no floats; decoding it needs no sanitizer.
type nameRequest struct {
	Name string `json:"name"`
}

// readJSON is the configured decoder: its pointer argument marks what
// the handler pulls off the wire.
func readJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		w.WriteHeader(http.StatusBadRequest)
		return false
	}
	return true
}

// validate is the shared sanitizer; reaching it (at any depth)
// satisfies the boundary rule.
func validate(req *bidRequest) bool {
	if math.IsNaN(req.Price) || math.IsInf(req.Price, 0) {
		return false
	}
	for _, v := range req.Vector {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return false
		}
	}
	return true
}

// admit is an intermediate hop between a handler and the sanitizer.
func admit(req *bidRequest) bool { return validate(req) }

// handleUnchecked decodes floats and never sanitizes them.
func handleUnchecked(w http.ResponseWriter, r *http.Request) { // want "handler handleUnchecked decodes bidRequest"
	var req bidRequest
	if !readJSON(w, r, &req) {
		return
	}
	_ = req.Price
}

// handleChecked calls the sanitizer directly.
func handleChecked(w http.ResponseWriter, r *http.Request) {
	var req bidRequest
	if !readJSON(w, r, &req) {
		return
	}
	if !validate(&req) {
		w.WriteHeader(http.StatusBadRequest)
	}
}

// handleIndirect reaches the sanitizer through a helper, proving the
// check is transitive over the call graph.
func handleIndirect(w http.ResponseWriter, r *http.Request) {
	var req bidRequest
	if !readJSON(w, r, &req) {
		return
	}
	if !admit(&req) {
		w.WriteHeader(http.StatusBadRequest)
	}
}

// handleNoFloats decodes a float-free type; nothing to sanitize.
func handleNoFloats(w http.ResponseWriter, r *http.Request) {
	var req nameRequest
	if !readJSON(w, r, &req) {
		return
	}
	_ = req.Name
}

// handleLegacy predates the finite-check contract; the suppression is
// explicit and carries its reason.
//
//lint:ignore floatguard legacy ingest path, values are clamped downstream
func handleLegacy(w http.ResponseWriter, r *http.Request) {
	var req bidRequest
	if !readJSON(w, r, &req) {
		return
	}
	_ = req.Price
}

// handleLegacyTwin is identical but unannotated, proving the directive
// above silences exactly one diagnostic.
func handleLegacyTwin(w http.ResponseWriter, r *http.Request) { // want "handler handleLegacyTwin decodes bidRequest"
	var req bidRequest
	if !readJSON(w, r, &req) {
		return
	}
	_ = req.Price
}
