// Fixture module for the floatguard analyzer. It declares `module
// datamarket` so fixture packages occupy the import paths the default
// config anchors on, while the nested go.mod keeps them out of the
// parent module's ./... build, test, and lint patterns.
module datamarket

go 1.24
