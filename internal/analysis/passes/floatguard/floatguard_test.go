package floatguard_test

import (
	"testing"

	"datamarket/internal/analysis/analysistest"
	"datamarket/internal/analysis/passes/floatguard"
)

func TestFloatguard(t *testing.T) {
	analysistest.Run(t, "testdata", floatguard.Analyzer)
}
