package analysis

import (
	"go/ast"
	"go/types"
)

// CalleeOf resolves the static callee of a call expression: a named
// function or a concrete method. Interface-method dispatch, function
// values, and built-ins return nil — the lint passes only reason about
// statically resolvable calls.
func CalleeOf(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if fn, ok := sel.Obj().(*types.Func); ok {
				// Skip interface methods: the static target is
				// unknown.
				if recv := fn.Signature().Recv(); recv != nil {
					if types.IsInterface(recv.Type()) {
						return nil
					}
				}
				return fn
			}
			return nil
		}
		// Package-qualified call: pkg.Func.
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// CallGraph maps each function declared in the graphed packages to the
// set of functions it calls directly (including callees outside those
// packages, e.g. math.IsNaN — they appear as leaves).
//
// Dynamic calls are over-approximated, CHA-style: a call through a
// function value gets edges to every address-taken function in the
// graphed packages (e.g. the pricing family registry's build funcs),
// and a method call that doesn't resolve statically (interface
// dispatch) gets edges to every concrete method with the same name.
// Over-approximation is the right bias for the float-sanitizer check:
// it can only make a function look *more* likely to validate, so it
// trims false positives at the cost of missing some true ones.
type CallGraph struct {
	Calls map[*types.Func]map[*types.Func]bool
	// Decls maps functions to their declarations, for passes that
	// need to inspect callee bodies.
	Decls map[*types.Func]*ast.FuncDecl

	addressTaken  map[*types.Func]bool
	methodsByName map[string][]*types.Func
	dynCallers    map[*types.Func]bool
	dynMethods    map[*types.Func]map[string]bool
	resolved      bool
}

// BuildCallGraph constructs the static call graph over the given
// packages.
func BuildCallGraph(pkgs []*Package) *CallGraph {
	g := &CallGraph{
		Calls:         make(map[*types.Func]map[*types.Func]bool),
		Decls:         make(map[*types.Func]*ast.FuncDecl),
		addressTaken:  make(map[*types.Func]bool),
		methodsByName: make(map[string][]*types.Func),
		dynCallers:    make(map[*types.Func]bool),
		dynMethods:    make(map[*types.Func]map[string]bool),
	}
	for _, pkg := range pkgs {
		if pkg.TypesInfo == nil {
			continue
		}
		for _, f := range pkg.Syntax {
			// Identify call-position idents so the remaining function
			// references count as address-taken (stored in registries,
			// passed as callbacks, ...).
			calleeIdents := make(map[*ast.Ident]bool)
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				switch fun := ast.Unparen(call.Fun).(type) {
				case *ast.Ident:
					calleeIdents[fun] = true
				case *ast.SelectorExpr:
					calleeIdents[fun.Sel] = true
				}
				return true
			})
			ast.Inspect(f, func(n ast.Node) bool {
				id, ok := n.(*ast.Ident)
				if !ok || calleeIdents[id] {
					return true
				}
				if fn, ok := pkg.TypesInfo.Uses[id].(*types.Func); ok {
					g.addressTaken[fn] = true
				}
				return true
			})
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, _ := pkg.TypesInfo.Defs[fd.Name].(*types.Func)
				if fn == nil {
					continue
				}
				g.Decls[fn] = fd
				if fd.Recv != nil {
					g.methodsByName[fd.Name.Name] = append(g.methodsByName[fd.Name.Name], fn)
				}
				callees := g.Calls[fn]
				if callees == nil {
					callees = make(map[*types.Func]bool)
					g.Calls[fn] = callees
				}
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					if callee := CalleeOf(pkg.TypesInfo, call); callee != nil {
						callees[callee] = true
						return true
					}
					g.recordDynamic(pkg.TypesInfo, fn, call)
					return true
				})
			}
		}
	}
	return g
}

// recordDynamic classifies an unresolved call: conversions and
// builtins are ignored; calls through function values mark the caller
// dynamic; unresolved method calls record the method name for
// name-based resolution.
func (g *CallGraph) recordDynamic(info *types.Info, caller *types.Func, call *ast.CallExpr) {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		switch info.Uses[fun].(type) {
		case *types.Builtin, *types.TypeName, nil:
			return
		}
	case *ast.SelectorExpr:
		if _, ok := info.Uses[fun.Sel].(*types.TypeName); ok {
			return
		}
		if sel, ok := info.Selections[fun]; ok {
			if _, ok := sel.Obj().(*types.Func); ok {
				// Interface (or otherwise unresolved) method call.
				names := g.dynMethods[caller]
				if names == nil {
					names = make(map[string]bool)
					g.dynMethods[caller] = names
				}
				names[fun.Sel.Name] = true
				return
			}
		}
	default:
		// Call of a function literal or other expression: the body
		// of a literal is walked as part of the enclosing decl, so
		// its static calls are already edges of the caller.
		if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
			return
		}
	}
	g.dynCallers[caller] = true
}

// resolveDynamic materializes the CHA-style edges. Called lazily by
// Reaching so graph construction stays cheap when nobody asks.
func (g *CallGraph) resolveDynamic() {
	if g.resolved {
		return
	}
	g.resolved = true
	for caller := range g.dynCallers {
		callees := g.Calls[caller]
		for fn := range g.addressTaken {
			callees[fn] = true
		}
	}
	for caller, names := range g.dynMethods {
		callees := g.Calls[caller]
		for name := range names {
			for _, fn := range g.methodsByName[name] {
				callees[fn] = true
			}
		}
	}
}

// Reaching computes the set of functions from which some seed function
// is reachable through the call graph (the transitive "can reach a
// seed" closure, seeds included).
func (g *CallGraph) Reaching(seeds map[*types.Func]bool) map[*types.Func]bool {
	g.resolveDynamic()
	reach := make(map[*types.Func]bool, len(seeds))
	for s := range seeds {
		reach[s] = true
	}
	for changed := true; changed; {
		changed = false
		for fn, callees := range g.Calls {
			if reach[fn] {
				continue
			}
			for c := range callees {
				if reach[c] {
					reach[fn] = true
					changed = true
					break
				}
			}
		}
	}
	return reach
}

// FuncByFullName finds a function by its types.Func full name, e.g.
// "math.IsNaN" or "datamarket/internal/server.errorStatus".
func (prog *Program) FuncByFullName(full string) *types.Func {
	for _, pkg := range prog.Packages {
		if pkg.Types == nil {
			continue
		}
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			if fn, ok := scope.Lookup(name).(*types.Func); ok && fn.FullName() == full {
				return fn
			}
		}
	}
	return nil
}

// HasFloatComponent reports whether t contains a float64 reachable
// through struct fields, slices, arrays, pointers, or maps — i.e.
// whether a JSON decode into t can introduce attacker-controlled
// floats. Named-type cycles terminate via the seen set.
func HasFloatComponent(t types.Type) bool {
	return hasFloat(t, make(map[types.Type]bool))
}

func hasFloat(t types.Type, seen map[types.Type]bool) bool {
	if seen[t] {
		return false
	}
	seen[t] = true
	switch u := t.Underlying().(type) {
	case *types.Basic:
		return u.Kind() == types.Float64 || u.Kind() == types.Float32
	case *types.Pointer:
		return hasFloat(u.Elem(), seen)
	case *types.Slice:
		return hasFloat(u.Elem(), seen)
	case *types.Array:
		return hasFloat(u.Elem(), seen)
	case *types.Map:
		return hasFloat(u.Elem(), seen) || hasFloat(u.Key(), seen)
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if hasFloat(u.Field(i).Type(), seen) {
				return true
			}
		}
	}
	return false
}

// IsFloatParam reports whether a parameter type is float64, []float64,
// or a named type whose underlying chain is one of those (e.g.
// linalg.Vector), including slices of such vectors.
func IsFloatParam(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Basic:
		return u.Kind() == types.Float64 || u.Kind() == types.Float32
	case *types.Slice:
		return IsFloatParam(u.Elem())
	}
	return false
}

// ImplementsResponseWriter reports whether t implements
// net/http.ResponseWriter (looked up in the program).
func (prog *Program) ImplementsResponseWriter(t types.Type) bool {
	httpPkg := prog.Lookup("net/http")
	if httpPkg == nil || httpPkg.Types == nil {
		return false
	}
	obj := httpPkg.Types.Scope().Lookup("ResponseWriter")
	if obj == nil {
		return false
	}
	iface, ok := obj.Type().Underlying().(*types.Interface)
	if !ok {
		return false
	}
	return types.Implements(t, iface)
}
