package analysis

import "testing"

// TestLoadRepo loads the whole repo the way cmd/datamarket-lint does
// and sanity-checks the program: targets resolved, types clean, syntax
// attached, cross-package type identity holding (one Program, one
// type universe).
func TestLoadRepo(t *testing.T) {
	prog, err := Load(LoadConfig{Dir: "../.."}, "./...")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(prog.Targets) == 0 {
		t.Fatal("no target packages")
	}
	for _, path := range []string{
		"datamarket/api",
		"datamarket/internal/server",
		"datamarket/internal/pricing",
		"datamarket/internal/store",
		"datamarket/internal/market",
	} {
		pkg := prog.Lookup(path)
		if pkg == nil {
			t.Fatalf("package %s not loaded", path)
		}
		if !pkg.Target {
			t.Errorf("package %s not marked as target", path)
		}
		if len(pkg.Errors) > 0 {
			t.Errorf("package %s has type errors: %v", path, pkg.Errors[0])
		}
		if len(pkg.Syntax) == 0 {
			t.Errorf("package %s has no syntax", path)
		}
	}
	if prog.Lookup("net/http") == nil {
		t.Error("dependency net/http not loaded")
	}
	// Cross-package identity: the server package's reference to
	// pricing.Family must be the same type object as pricing's own.
	server := prog.Lookup("datamarket/internal/server")
	pricing := prog.Lookup("datamarket/internal/pricing")
	fam := pricing.Types.Scope().Lookup("Family")
	if fam == nil {
		t.Fatal("pricing.Family not found")
	}
	found := false
	for _, imp := range server.Types.Imports() {
		if imp.Path() == "datamarket/internal/pricing" && imp == pricing.Types {
			found = true
		}
	}
	if !found {
		t.Error("server does not share pricing's *types.Package")
	}
	if prog.Fset == nil {
		t.Error("program fset missing")
	}
}
