package ellipsoid

import (
	"math"
	"testing"

	"datamarket/internal/linalg"
	"datamarket/internal/randx"
)

func TestNewBall(t *testing.T) {
	e, err := NewBall(3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if e.Dim() != 3 {
		t.Fatalf("Dim = %d", e.Dim())
	}
	if !e.Center().Equal(linalg.NewVector(3), 0) {
		t.Fatalf("center = %v", e.Center())
	}
	if e.Shape().At(0, 0) != 4 {
		t.Fatalf("shape = %v", e.Shape().At(0, 0))
	}
	if _, err := NewBall(0, 1); err == nil {
		t.Fatal("expected error for dim 0")
	}
	if _, err := NewBall(2, 0); err == nil {
		t.Fatal("expected error for radius 0")
	}
}

func TestFromBox(t *testing.T) {
	e, err := FromBox(linalg.VectorOf(-1, -2), linalg.VectorOf(3, 1))
	if err != nil {
		t.Fatal(err)
	}
	// R² = max(1,9) + max(4,1) = 13.
	if got := e.Shape().At(0, 0); math.Abs(got-13) > 1e-12 {
		t.Fatalf("R² = %v, want 13", got)
	}
	if _, err := FromBox(linalg.VectorOf(1), linalg.VectorOf(0)); err == nil {
		t.Fatal("expected error for inverted bounds")
	}
	if _, err := FromBox(linalg.VectorOf(0), linalg.VectorOf(1, 2)); err == nil {
		t.Fatal("expected error for length mismatch")
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(linalg.Identity(2), linalg.VectorOf(0)); err == nil {
		t.Fatal("expected shape/center mismatch error")
	}
	asym := linalg.MatrixFromRows([][]float64{{1, 0.5}, {0, 1}})
	if _, err := New(asym, linalg.VectorOf(0, 0)); err == nil {
		t.Fatal("expected asymmetry error")
	}
	indef := linalg.MatrixFromRows([][]float64{{1, 2}, {2, 1}})
	if _, err := New(indef, linalg.VectorOf(0, 0)); err == nil {
		t.Fatal("expected non-PD error")
	}
}

func TestSupportBall(t *testing.T) {
	e, _ := NewBall(2, 3)
	x := linalg.VectorOf(1, 0)
	lo, hi := e.Support(x)
	if !almostEq(lo, -3, 1e-12) || !almostEq(hi, 3, 1e-12) {
		t.Fatalf("support = [%v, %v], want [-3, 3]", lo, hi)
	}
	// Support scales with ‖x‖ for a ball.
	lo, hi = e.Support(linalg.VectorOf(3, 4))
	if !almostEq(hi, 15, 1e-9) || !almostEq(lo, -15, 1e-9) {
		t.Fatalf("support = [%v, %v], want [-15, 15]", lo, hi)
	}
	if w := e.Width(x); !almostEq(w, 6, 1e-12) {
		t.Fatalf("width = %v, want 6", w)
	}
}

func TestSupportIsSoundOverSamples(t *testing.T) {
	r := randx.New(1)
	shape := linalg.MatrixFromRows([][]float64{{4, 1}, {1, 2}})
	e, err := New(shape, linalg.VectorOf(1, -1))
	if err != nil {
		t.Fatal(err)
	}
	x := linalg.VectorOf(0.7, -0.2)
	lo, hi := e.Support(x)
	for i := 0; i < 300; i++ {
		p, err := e.Sample(r)
		if err != nil {
			t.Fatal(err)
		}
		v := p.Dot(x)
		if v < lo-1e-9 || v > hi+1e-9 {
			t.Fatalf("sampled value %v outside support [%v, %v]", v, lo, hi)
		}
	}
}

func TestCentralCutHalvesAndShrinks(t *testing.T) {
	e, _ := NewBall(2, 1)
	x := linalg.VectorOf(1, 0)
	// Central cut through the center: β = xᵀc = 0.
	res := e.Cut(x, 0)
	if res != CutApplied {
		t.Fatalf("central cut result = %v", res)
	}
	// Known Löwner-John ellipsoid of a half-disc: center (-1/3·b, 0)
	// with b = A·x/√(xᵀAx) = (1,0): center moves to (-1/3, 0) for
	// halfspace {θ₁ ≤ 0}.
	c := e.Center()
	if !almostEq(c[0], -1.0/3, 1e-12) || !almostEq(c[1], 0, 1e-12) {
		t.Fatalf("center after central cut = %v", c)
	}
	// Volume ratio for a central cut in n=2 is (n/(n+1))·(n/√(n²−1)) ≈ 0.7698.
	v, err := e.Volume()
	if err != nil {
		t.Fatal(err)
	}
	want := math.Pi * (2.0 / 3) * (2 / math.Sqrt(3)) / math.Sqrt(3) // σ terms
	_ = want
	ratio := v / math.Pi
	expected := (2.0 / 3) * (2.0 / math.Sqrt(3)) * (1.0 / math.Sqrt(3)) * math.Sqrt(3) // simplify below
	_ = expected
	// Direct known value: ratio = n^n/( (n+1)^((n+1)/2) (n-1)^((n-1)/2) )... just check bound from Lemma 2:
	if !(ratio < 1) {
		t.Fatalf("central cut did not shrink volume: ratio %v", ratio)
	}
	if ratio > math.Exp(-1.0/(2*(2+1))) { // e^{-1/(2(n+1))} bound for central cuts
		t.Fatalf("central cut shrank too little: ratio %v", ratio)
	}
}

func TestCutLemma2VolumeBound(t *testing.T) {
	// Deep cuts with α ∈ [0, 1) must shrink volume at least by
	// exp(−(1+nα)²/(5n)) (Lemma 2 direction used in the paper for
	// α ∈ [−1/n, 0]; we verify over a grid including both signs).
	for _, n := range []int{2, 3, 5, 10} {
		for _, alpha := range []float64{-0.4 / float64(n), 0, 0.1, 0.3, 0.6} {
			e, _ := NewBall(n, 1)
			x := linalg.Basis(n, 0)
			beta := -alpha // c = 0, probe = 1, so α = −β
			v0, _ := e.LogVolume()
			res := e.Cut(x, beta)
			if res != CutApplied {
				t.Fatalf("n=%d α=%v: cut result %v", n, alpha, res)
			}
			v1, _ := e.LogVolume()
			bound := -(1 + float64(n)*alpha) * (1 + float64(n)*alpha) / (5 * float64(n))
			if v1-v0 > bound+1e-9 {
				t.Fatalf("n=%d α=%v: log volume drop %v exceeds bound %v", n, alpha, v1-v0, bound)
			}
			if !e.IsWellFormed() {
				t.Fatalf("n=%d α=%v: ill-formed after cut", n, alpha)
			}
		}
	}
}

func TestCutTooShallowAndInfeasible(t *testing.T) {
	e, _ := NewBall(3, 1)
	x := linalg.VectorOf(1, 0, 0)
	// α = −β; too shallow when α ≤ −1/n, i.e. β ≥ 1/3.
	before := e.Shape()
	if res := e.Cut(x, 0.5); res != CutTooShallow {
		t.Fatalf("expected too-shallow, got %v", res)
	}
	if !e.Shape().Equal(before, 0) {
		t.Fatal("too-shallow cut modified the ellipsoid")
	}
	// Infeasible when α ≥ 1, i.e. β ≤ −1.
	if res := e.Cut(x, -1.5); res != CutInfeasible {
		t.Fatalf("expected infeasible, got %v", res)
	}
	if !e.Shape().Equal(before, 0) {
		t.Fatal("infeasible cut modified the ellipsoid")
	}
}

func TestCutPreservesFeasiblePoints(t *testing.T) {
	// Any point of E satisfying the halfspace stays inside after the cut.
	r := randx.New(5)
	e, _ := NewBall(4, 2)
	// Pre-sample candidate points.
	var pts []linalg.Vector
	for len(pts) < 40 {
		p, err := e.Sample(r)
		if err != nil {
			t.Fatal(err)
		}
		pts = append(pts, p)
	}
	x := r.OnSphere(4)
	beta := 0.3 // a cut through the interior
	res := e.Cut(x, beta)
	if res != CutApplied {
		t.Fatalf("cut result %v", res)
	}
	for _, p := range pts {
		if p.Dot(x) <= beta {
			if !e.Contains(p, 1e-9) {
				t.Fatalf("feasible point expelled: %v", p)
			}
		}
	}
}

func TestSequentialCutsKeepTargetInside(t *testing.T) {
	// Bisection-style cuts driven by membership feedback must never expel
	// the target — the core soundness property the mechanism relies on.
	r := randx.New(7)
	n := 5
	e, _ := NewBall(n, 3)
	target := r.OnSphere(n).Scale(1.5)
	for i := 0; i < 200; i++ {
		x := r.OnSphere(n)
		lo, hi := e.Support(x)
		mid := (lo + hi) / 2
		truth := target.Dot(x)
		var res CutResult
		if truth >= mid {
			// Keep {xᵀθ ≥ mid} ⇔ cut {−xᵀθ ≤ −mid}.
			res = e.Cut(x.Scaled(-1), -mid)
		} else {
			res = e.Cut(x, mid)
		}
		if res == CutInfeasible {
			t.Fatalf("round %d: infeasible central cut", i)
		}
		if !e.Contains(target, 1e-7) {
			t.Fatalf("round %d: target expelled", i)
		}
		if !e.IsWellFormed() {
			t.Fatalf("round %d: ill-formed ellipsoid", i)
		}
	}
	// After 200 central cuts the volume must have collapsed massively.
	lv, err := e.LogVolume()
	if err != nil {
		t.Fatal(err)
	}
	lv0 := logUnitBallVolume(n) + float64(n)*math.Log(3)
	if lv > lv0-200.0/(5*float64(n)) {
		t.Fatalf("volume did not shrink as guaranteed: %v vs start %v", lv, lv0)
	}
}

func TestCut1DExactInterval(t *testing.T) {
	e, _ := NewBall(1, 4) // interval [-4, 4]
	x := linalg.VectorOf(1)
	if res := e.Cut(x, 1); res != CutApplied {
		t.Fatalf("1-D cut result %v", res)
	}
	lo, hi := e.Support(x)
	if !almostEq(lo, -4, 1e-9) || !almostEq(hi, 1, 1e-9) {
		t.Fatalf("interval after cut = [%v, %v], want [-4, 1]", lo, hi)
	}
	// Cut from the other side via negative direction: keep {θ ≥ -2}.
	if res := e.Cut(linalg.VectorOf(-1), 2); res != CutApplied {
		t.Fatal("second 1-D cut failed")
	}
	lo, hi = e.Support(x)
	if !almostEq(lo, -2, 1e-9) || !almostEq(hi, 1, 1e-9) {
		t.Fatalf("interval = [%v, %v], want [-2, 1]", lo, hi)
	}
	// Empty intersection is infeasible.
	if res := e.Cut(x, -5); res != CutInfeasible {
		t.Fatalf("expected infeasible, got %v", res)
	}
}

func TestAlpha(t *testing.T) {
	e, _ := NewBall(2, 2)
	x := linalg.VectorOf(1, 0)
	// c=0, probe = 2: α = −β/2.
	a, err := e.Alpha(x, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(a, -0.5, 1e-12) {
		t.Fatalf("alpha = %v, want -0.5", a)
	}
}

func TestVolumeBall(t *testing.T) {
	e, _ := NewBall(2, 2)
	v, err := e.Volume()
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(v, math.Pi*4, 1e-9) {
		t.Fatalf("volume = %v, want 4π", v)
	}
	if !almostEq(UnitBallVolume(3), 4*math.Pi/3, 1e-9) {
		t.Fatalf("V₃ = %v", UnitBallVolume(3))
	}
}

func TestAxes(t *testing.T) {
	shape := linalg.Diagonal(linalg.VectorOf(9, 4))
	e, err := New(shape, linalg.VectorOf(0, 0))
	if err != nil {
		t.Fatal(err)
	}
	lengths, _, err := e.Axes()
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(lengths[0], 3, 1e-9) || !almostEq(lengths[1], 2, 1e-9) {
		t.Fatalf("axes = %v, want [3 2]", lengths)
	}
	m, err := e.MinAxis()
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(m, 2, 1e-9) {
		t.Fatalf("MinAxis = %v", m)
	}
}

func TestSampleInside(t *testing.T) {
	r := randx.New(20)
	e, _ := NewBall(3, 1.5)
	for i := 0; i < 200; i++ {
		p, err := e.Sample(r)
		if err != nil {
			t.Fatal(err)
		}
		if p.Norm2() > 1.5+1e-9 {
			t.Fatalf("sample outside ball: %v", p.Norm2())
		}
	}
}

func TestContains(t *testing.T) {
	e, _ := NewBall(2, 1)
	if !e.Contains(linalg.VectorOf(0.5, 0.5), 0) {
		t.Fatal("interior point reported outside")
	}
	if e.Contains(linalg.VectorOf(2, 0), 0) {
		t.Fatal("exterior point reported inside")
	}
	if !e.Contains(linalg.VectorOf(1, 0), 1e-9) {
		t.Fatal("boundary point reported outside")
	}
}

func TestCutResultString(t *testing.T) {
	for _, tc := range []struct {
		r    CutResult
		want string
	}{
		{CutApplied, "applied"}, {CutTooShallow, "too-shallow"},
		{CutInfeasible, "infeasible"}, {CutDegenerate, "degenerate"},
		{CutResult(99), "CutResult(99)"},
	} {
		if got := tc.r.String(); got != tc.want {
			t.Errorf("String(%d) = %q", int(tc.r), got)
		}
	}
}

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }
