package ellipsoid

import (
	"math"
	"testing"
	"testing/quick"

	"datamarket/internal/linalg"
	"datamarket/internal/randx"
)

// propCfg limits quick's search to numerically meaningful inputs.
var propCfg = &quick.Config{MaxCount: 200}

// Property: for any direction and any feasible cut position, the cut
// never expels a point that satisfies the halfspace, and the result stays
// well-formed.
func TestCutSoundnessProperty(t *testing.T) {
	f := func(seed uint64, betaRaw float64) bool {
		r := randx.New(seed)
		e, err := NewBall(3, 2)
		if err != nil {
			return false
		}
		// A handful of warm-up cuts to leave the symmetric start state.
		for i := 0; i < 5; i++ {
			dir := r.OnSphere(3)
			lo, hi := e.Support(dir)
			e.Cut(dir, lo+(hi-lo)*r.Uniform(0.3, 0.9))
		}
		// Sample points before the probe cut.
		pts := make([]linalg.Vector, 0, 20)
		for len(pts) < 20 {
			p, err := e.Sample(r)
			if err != nil {
				return false
			}
			pts = append(pts, p)
		}
		dir := r.OnSphere(3)
		lo, hi := e.Support(dir)
		// Keep the cut fraction away from the α → 1 extreme, where the
		// surviving sliver's containment check is dominated by float
		// round-off relative to its own tiny scale.
		frac := 0.05 + 0.9*math.Mod(math.Abs(betaRaw), 1)
		beta := lo + (hi-lo)*frac
		res := e.Cut(dir, beta)
		if res == CutApplied && !e.IsWellFormed() {
			return false
		}
		if res != CutApplied {
			return true
		}
		for _, p := range pts {
			if p.Dot(dir) <= beta && !e.Contains(p, 1e-5) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, propCfg); err != nil {
		t.Error(err)
	}
}

// Property: Support is consistent with Width and with the center value:
// hi − lo == Width and (lo+hi)/2 == x·c.
func TestSupportConsistencyProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := randx.New(seed)
		shape := linalg.NewMatrix(3, 3)
		for i := 0; i < 3; i++ {
			for j := 0; j < 3; j++ {
				shape.Set(i, j, r.Normal(0, 1))
			}
		}
		spd := shape.T().Mul(shape)
		for i := 0; i < 3; i++ {
			spd.Set(i, i, spd.At(i, i)+0.5)
		}
		spd.Symmetrize()
		c := r.NormalVector(3, 2)
		e, err := New(spd, c)
		if err != nil {
			return false
		}
		x := r.OnSphere(3)
		lo, hi := e.Support(x)
		if math.Abs((hi-lo)-e.Width(x)) > 1e-9 {
			return false
		}
		return math.Abs((lo+hi)/2-c.Dot(x)) <= 1e-9*math.Max(1, math.Abs(c.Dot(x)))
	}
	if err := quick.Check(f, propCfg); err != nil {
		t.Error(err)
	}
}

// Property: applied cuts never increase volume, and central cuts satisfy
// the Lemma 2 bound.
func TestVolumeMonotoneProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := randx.New(seed)
		e, _ := NewBall(4, 1.5)
		prev, err := e.LogVolume()
		if err != nil {
			return false
		}
		for i := 0; i < 15; i++ {
			x := r.OnSphere(4)
			lo, hi := e.Support(x)
			beta := lo + (hi-lo)*r.Uniform(0.2, 0.95)
			res := e.Cut(x, beta)
			lv, err := e.LogVolume()
			if err != nil {
				return false
			}
			if res == CutApplied {
				if lv > prev+1e-9 {
					return false
				}
			} else if math.Abs(lv-prev) > 1e-9 {
				return false // non-applied cuts must not change the set
			}
			prev = lv
		}
		return true
	}
	if err := quick.Check(f, propCfg); err != nil {
		t.Error(err)
	}
}

// Property: the 1-D ellipsoid agrees with exact interval intersection.
func TestOneDimensionalExactnessProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := randx.New(seed)
		e, _ := NewBall(1, 3)
		lo, hi := -3.0, 3.0
		for i := 0; i < 10; i++ {
			beta := r.Uniform(-4, 4)
			var dir float64 = 1
			if r.Bool() {
				dir = -1
			}
			res := e.Cut(linalg.VectorOf(dir), beta)
			// Mirror with exact interval arithmetic.
			if dir > 0 {
				if beta < lo {
					if res != CutInfeasible {
						return false
					}
				} else if beta < hi {
					hi = beta
				}
			} else {
				bound := -beta
				if bound > hi {
					if res != CutInfeasible {
						return false
					}
				} else if bound > lo {
					lo = bound
				}
			}
			gotLo, gotHi := e.Support(linalg.VectorOf(1))
			if math.Abs(gotLo-lo) > 1e-9 || math.Abs(gotHi-hi) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, propCfg); err != nil {
		t.Error(err)
	}
}
