//go:build !race

package ellipsoid

import (
	"testing"

	"datamarket/internal/randx"
)

// TestSupportCutZeroAllocs is the regression guard for the
// zero-allocation hot path: after the per-ellipsoid scratch is warm,
// Support and Cut must not allocate at all. (Skipped under -race, whose
// instrumentation perturbs allocation counts.)
func TestSupportCutZeroAllocs(t *testing.T) {
	const n = 16
	e, err := NewBall(n, 4)
	if err != nil {
		t.Fatal(err)
	}
	x := randx.New(1).OnSphere(n)
	// Warm the scratch buffer; the first Cut is allowed its one-time
	// allocation.
	e.Cut(x, e.c.Dot(x))

	if got := testing.AllocsPerRun(200, func() {
		lo, hi := e.Support(x)
		e.Cut(x, (lo+hi)/2)
	}); got != 0 {
		t.Fatalf("Support+Cut allocated %v times per round, want 0", got)
	}
}
