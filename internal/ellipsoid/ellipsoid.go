// Package ellipsoid implements the geometric machinery behind the paper's
// pricing mechanism: the ellipsoid knowledge set E = {θ : (θ−c)ᵀA⁻¹(θ−c) ≤ 1}
// and its Löwner-John updates after central, deep, and shallow cuts.
//
// The pricing algorithms only ever touch the ellipsoid through three
// operations, all O(n²):
//
//   - Support(x): the interval [min_{θ∈E} xᵀθ, max_{θ∈E} xᵀθ] bounding a
//     query's market value (lines 5–7 of Algorithm 1);
//   - Cut(a, β, α): replace E ∩ {θ : aᵀθ ≤ β} by its minimum-volume
//     enclosing ellipsoid (lines 15–21);
//   - size probes (volume, widths) used by the regret analysis and tests.
package ellipsoid

import (
	"errors"
	"fmt"
	"math"

	"datamarket/internal/linalg"
	"datamarket/internal/randx"
)

// minProbe floors √(xᵀAx) to keep the cut geometry well-defined when the
// ellipsoid has collapsed along the probe direction.
const minProbe = 1e-150

// ErrDegenerate is reported when the ellipsoid has numerically collapsed.
var ErrDegenerate = errors.New("ellipsoid: degenerate shape matrix")

// E is an n-dimensional ellipsoid {θ : (θ−c)ᵀ A⁻¹ (θ−c) ≤ 1} stored by its
// shape matrix A (symmetric positive definite) and center c.
type E struct {
	n int
	a *linalg.Matrix
	c linalg.Vector

	// scratch holds the cut vector b = A·a/√(aᵀAa) between Cut calls so
	// the per-round hot path performs no allocations. It is lazily sized
	// and never shared: Clone leaves it nil in the copy.
	scratch linalg.Vector
}

// NewBall returns the ball of the given radius centered at the origin —
// the initial knowledge set E₁ of the mechanism, with A₁ = R²·I, c₁ = 0.
func NewBall(n int, radius float64) (*E, error) {
	if n <= 0 {
		return nil, fmt.Errorf("ellipsoid: dimension must be positive, got %d", n)
	}
	// radius <= 0 alone admits NaN (ordered comparisons with NaN are
	// false), and ±Inf passes it outright; either would silently
	// poison A₁ = R²·I and every cut after it.
	if math.IsNaN(radius) || math.IsInf(radius, 0) || radius <= 0 {
		return nil, fmt.Errorf("ellipsoid: radius must be finite and positive, got %g", radius)
	}
	return &E{
		n: n,
		a: linalg.ScaledIdentity(n, radius*radius),
		c: linalg.NewVector(n),
	}, nil
}

// New builds an ellipsoid from an explicit shape matrix and center. The
// shape must be symmetric positive definite.
func New(shape *linalg.Matrix, center linalg.Vector) (*E, error) {
	n := len(center)
	if shape.Rows() != n || shape.Cols() != n {
		return nil, fmt.Errorf("ellipsoid: shape %dx%d does not match center length %d",
			shape.Rows(), shape.Cols(), n)
	}
	// The symmetry/PD checks incidentally reject non-finite shape
	// entries, but nothing downstream ever inspects the center — a
	// NaN c would survive restore and corrupt the first price.
	if !center.IsFinite() {
		return nil, fmt.Errorf("ellipsoid: center must be finite")
	}
	if !shape.IsSymmetric(1e-8 * math.Max(1, shape.MaxAbs())) {
		return nil, fmt.Errorf("ellipsoid: shape matrix is not symmetric")
	}
	if !linalg.IsPositiveDefinite(shape) {
		return nil, fmt.Errorf("ellipsoid: shape matrix is not positive definite")
	}
	e := &E{n: n, a: shape.Clone(), c: center.Clone()}
	e.a.Symmetrize()
	return e, nil
}

// FromBox returns the ball enclosing the axis-aligned box Π[lo_i, hi_i]:
// centered at the origin with radius √Σ max(lo², hi²), matching the paper's
// initialization R = √Σ max(ℓᵢ², uᵢ²).
func FromBox(lo, hi linalg.Vector) (*E, error) {
	if len(lo) != len(hi) {
		return nil, fmt.Errorf("ellipsoid: box bounds length mismatch %d vs %d", len(lo), len(hi))
	}
	var sum float64
	for i := range lo {
		if lo[i] > hi[i] {
			return nil, fmt.Errorf("ellipsoid: box bound %d inverted (%g > %g)", i, lo[i], hi[i])
		}
		sum += math.Max(lo[i]*lo[i], hi[i]*hi[i])
	}
	return NewBall(len(lo), math.Sqrt(sum))
}

// Dim returns the ambient dimension n.
func (e *E) Dim() int { return e.n }

// Center returns a copy of the center c.
func (e *E) Center() linalg.Vector { return e.c.Clone() }

// Shape returns a copy of the shape matrix A.
func (e *E) Shape() *linalg.Matrix { return e.a.Clone() }

// Clone returns a deep copy of e.
func (e *E) Clone() *E {
	return &E{n: e.n, a: e.a.Clone(), c: e.c.Clone()}
}

// Contains reports whether θ lies in the ellipsoid, within slack tol on the
// quadratic form (tol = 0 for exact membership).
func (e *E) Contains(theta linalg.Vector, tol float64) bool {
	inv, err := linalg.InverseSPD(e.a)
	if err != nil {
		return false
	}
	d := theta.Sub(e.c)
	return inv.QuadForm(d) <= 1+tol
}

// Support returns (lo, hi) = (min, max) of xᵀθ over θ ∈ E:
// hi = xᵀc + √(xᵀAx), lo = xᵀc − √(xᵀAx). This is the market-value
// interval [p̲, p̄] of the pricing mechanism.
func (e *E) Support(x linalg.Vector) (lo, hi float64) {
	mid := e.c.Dot(x)
	half := math.Sqrt(math.Max(0, e.a.QuadForm(x)))
	return mid - half, mid + half
}

// Width returns the width of E along direction x: p̄ − p̲ = 2√(xᵀAx).
func (e *E) Width(x linalg.Vector) float64 {
	return 2 * math.Sqrt(math.Max(0, e.a.QuadForm(x)))
}

// CutResult describes the outcome of a Cut call.
type CutResult int

const (
	// CutApplied means the ellipsoid was replaced by the Löwner-John
	// ellipsoid of its intersection with the halfspace.
	CutApplied CutResult = iota
	// CutTooShallow means α ≤ −1/n: the halfspace removes so little that
	// the minimum-volume enclosing ellipsoid is E itself; E is unchanged.
	CutTooShallow
	// CutInfeasible means α ≥ 1: the halfspace misses the ellipsoid
	// entirely; E is left unchanged and the caller should treat the
	// feedback as inconsistent (in the pricing setting this cannot occur
	// while θ* ∈ E and the uncertainty buffer holds).
	CutInfeasible
	// CutDegenerate means the probe direction has collapsed numerically;
	// E is unchanged.
	CutDegenerate
)

// String renders the CutResult for diagnostics.
func (r CutResult) String() string {
	switch r {
	case CutApplied:
		return "applied"
	case CutTooShallow:
		return "too-shallow"
	case CutInfeasible:
		return "infeasible"
	case CutDegenerate:
		return "degenerate"
	default:
		return fmt.Sprintf("CutResult(%d)", int(r))
	}
}

// Alpha returns the signed position α = (aᵀc − β)/√(aᵀAa) of the cutting
// hyperplane {θ : aᵀθ = β} in the ‖·‖_{A⁻¹} norm: α = 0 is a central cut
// through the center, α > 0 a deep cut, α < 0 a shallow cut.
func (e *E) Alpha(a linalg.Vector, beta float64) (float64, error) {
	probe := math.Sqrt(math.Max(0, e.a.QuadForm(a)))
	if probe < minProbe {
		return 0, ErrDegenerate
	}
	return (e.c.Dot(a) - beta) / probe, nil
}

// Cut replaces E by the Löwner-John (minimum-volume enclosing) ellipsoid of
// E ∩ {θ : aᵀθ ≤ β}. For cut position α ∈ (−1/n, 1) the standard deep-cut
// update is applied:
//
//	b  = A a / √(aᵀAa)
//	c' = c − (1+nα)/(n+1) · b
//	A' = n²(1−α²)/(n²−1) · (A − 2(1+nα)/((n+1)(1+α)) · b bᵀ)
//
// which for α = 0 reduces to the textbook central-cut ellipsoid update.
// n = 1 is handled exactly (the remaining segment's enclosing "ellipsoid"
// is the segment itself).
func (e *E) Cut(a linalg.Vector, beta float64) CutResult {
	if len(a) != e.n {
		panic(fmt.Sprintf("ellipsoid: Cut direction length %d, want %d", len(a), e.n))
	}
	if e.scratch == nil {
		e.scratch = linalg.NewVector(e.n)
	}
	// b = A a, formed through the transpose product (A is symmetric) so
	// zero entries of a skip whole rows; aᵀAa = a·b then costs only O(n).
	b := e.a.MulVecTTo(e.scratch, a)
	probeSq := a.Dot(b)
	probe := math.Sqrt(math.Max(0, probeSq))
	if probe < minProbe {
		return CutDegenerate
	}
	alpha := (e.c.Dot(a) - beta) / probe
	n := float64(e.n)

	if alpha >= 1 {
		return CutInfeasible
	}
	if e.n == 1 {
		return e.cut1D(a[0], beta, alpha)
	}
	if alpha <= -1/n {
		return CutTooShallow
	}

	b.Scale(1 / probe)

	tau := (1 + n*alpha) / (n + 1)
	sigma := n * n * (1 - alpha*alpha) / (n*n - 1)
	rho := 2 * (1 + n*alpha) / ((n + 1) * (1 + alpha))

	e.c.AddScaled(-tau, b)
	e.a.AddRankOne(-rho, b, b)
	e.a.Scale(sigma)
	e.a.Symmetrize()
	return CutApplied
}

// cut1D performs the exact interval update in dimension one. The ellipsoid
// is the interval [c−r, c+r] with r = √A; intersecting with a halfspace
// yields a sub-interval whose minimal enclosing "ellipsoid" is itself.
func (e *E) cut1D(a, beta, alpha float64) CutResult {
	if alpha <= -1 {
		return CutTooShallow
	}
	r := math.Sqrt(e.a.At(0, 0))
	lo, hi := e.c[0]-r, e.c[0]+r
	// Halfspace {θ : aθ ≤ β}.
	bound := beta / a
	if a > 0 {
		hi = math.Min(hi, bound)
	} else {
		lo = math.Max(lo, bound)
	}
	if hi < lo {
		return CutInfeasible
	}
	newC := (lo + hi) / 2
	newR := (hi - lo) / 2
	if newR < minProbe {
		newR = minProbe
	}
	e.c[0] = newC
	e.a.Set(0, 0, newR*newR)
	return CutApplied
}

// Volume returns the n-dimensional volume Vₙ·√det(A), with Vₙ the unit
// ball volume; prefer LogVolume in high dimension.
func (e *E) Volume() (float64, error) {
	lv, err := e.LogVolume()
	if err != nil {
		return 0, err
	}
	return math.Exp(lv), nil
}

// LogVolume returns log(Vₙ) + ½·log det(A).
func (e *E) LogVolume() (float64, error) {
	f, err := linalg.Cholesky(e.a)
	if err != nil {
		return 0, fmt.Errorf("%w: %v", ErrDegenerate, err)
	}
	return logUnitBallVolume(e.n) + 0.5*f.LogDet(), nil
}

// logUnitBallVolume returns log Vₙ = (n/2)·log π − log Γ(n/2 + 1).
func logUnitBallVolume(n int) float64 {
	lg, _ := math.Lgamma(float64(n)/2 + 1)
	return float64(n)/2*math.Log(math.Pi) - lg
}

// UnitBallVolume returns Vₙ, exported for tests and diagnostics.
func UnitBallVolume(n int) float64 { return math.Exp(logUnitBallVolume(n)) }

// Axes returns the semi-axis lengths √γᵢ(A) in descending order along with
// the corresponding axis directions (columns of the returned matrix).
func (e *E) Axes() (lengths linalg.Vector, directions *linalg.Matrix, err error) {
	vals, vecs, err := linalg.EigenSym(e.a)
	if err != nil {
		return nil, nil, err
	}
	lengths = make(linalg.Vector, e.n)
	for i, v := range vals {
		if v < 0 {
			v = 0
		}
		lengths[i] = math.Sqrt(v)
	}
	return lengths, vecs, nil
}

// MinAxis returns the semi-length of the narrowest axis, √γₙ(A).
func (e *E) MinAxis() (float64, error) {
	lo, err := linalg.SmallestEigenvalueSym(e.a)
	if err != nil {
		return 0, err
	}
	return math.Sqrt(math.Max(0, lo)), nil
}

// Sample returns a point uniformly distributed in E, via the affine image
// x = c + L·u of a uniform unit-ball point u, where A = L·Lᵀ.
func (e *E) Sample(r *randx.RNG) (linalg.Vector, error) {
	f, err := linalg.Cholesky(e.a)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrDegenerate, err)
	}
	u := r.InBall(e.n)
	x := f.MulVec(u)
	for i := range x {
		x[i] += e.c[i]
	}
	return x, nil
}

// IsWellFormed verifies the structural invariants: finite entries,
// symmetry, and positive definiteness of the shape matrix.
func (e *E) IsWellFormed() bool {
	return e.a.IsFinite() && e.c.IsFinite() &&
		e.a.IsSymmetric(1e-6*math.Max(1, e.a.MaxAbs())) &&
		linalg.IsPositiveDefinite(e.a)
}
