package ellipsoid

import (
	"fmt"
	"testing"

	"datamarket/internal/linalg"
	"datamarket/internal/randx"
)

// benchDirections pre-generates unit probe directions so the measured
// loop touches only the ellipsoid.
func benchDirections(n, k int) []linalg.Vector {
	r := randx.New(1)
	dirs := make([]linalg.Vector, k)
	for i := range dirs {
		dirs[i] = r.OnSphere(n)
	}
	return dirs
}

// BenchmarkSupport measures the per-round value-bound probe — half of
// the pricing hot path. Must report 0 allocs/op.
func BenchmarkSupport(b *testing.B) {
	for _, n := range []int{4, 16, 64} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			e, err := NewBall(n, 4)
			if err != nil {
				b.Fatal(err)
			}
			dirs := benchDirections(n, 256)
			var sink float64
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				lo, hi := e.Support(dirs[i%len(dirs)])
				sink += lo + hi
			}
			_ = sink
		})
	}
}

// BenchmarkCut measures the Löwner-John update — the other half of the
// hot path. Central cuts keep every iteration on the full update path;
// the ellipsoid is re-inflated periodically (outside the timer) so it
// never degenerates. Must report 0 allocs/op.
func BenchmarkCut(b *testing.B) {
	const resetEvery = 512
	for _, n := range []int{4, 16, 64} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			e, err := NewBall(n, 4)
			if err != nil {
				b.Fatal(err)
			}
			dirs := benchDirections(n, resetEvery)
			// Warm the per-ellipsoid scratch before measuring.
			e.Cut(dirs[0], e.c.Dot(dirs[0]))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if i%resetEvery == 0 {
					b.StopTimer()
					fresh, err := NewBall(n, 4)
					if err != nil {
						b.Fatal(err)
					}
					fresh.scratch = e.scratch // keep the warmed scratch
					e = fresh
					b.StartTimer()
				}
				a := dirs[i%resetEvery]
				if res := e.Cut(a, e.c.Dot(a)); res != CutApplied {
					b.Fatalf("cut %d: %v", i, res)
				}
			}
		})
	}
}

// BenchmarkPriceRoundKernel chains Support and Cut the way one pricing
// round does: probe the value interval, then cut at the midpoint.
func BenchmarkPriceRoundKernel(b *testing.B) {
	const n, resetEvery = 16, 512
	e, err := NewBall(n, 4)
	if err != nil {
		b.Fatal(err)
	}
	dirs := benchDirections(n, resetEvery)
	e.Cut(dirs[0], e.c.Dot(dirs[0]))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%resetEvery == 0 {
			b.StopTimer()
			fresh, err := NewBall(n, 4)
			if err != nil {
				b.Fatal(err)
			}
			fresh.scratch = e.scratch
			e = fresh
			b.StartTimer()
		}
		a := dirs[i%resetEvery]
		lo, hi := e.Support(a)
		e.Cut(a, (lo+hi)/2)
	}
}
