// Package histo provides a concurrency-safe HDR-style latency histogram
// shared by every benchmark and load-generation tool in the repo. Values
// are recorded into log-linear buckets: 128 unit-width buckets cover
// 0..127 exactly, and each further octave is split into 64 sub-buckets,
// bounding the relative quantile error at 1/64 (~1.6%) across the full
// int64 range. Recording is a single atomic increment, so one histogram
// can be shared by any number of workers; histograms merge losslessly,
// which lets per-worker instances be combined after a run.
package histo

import (
	"math/bits"
	"sync/atomic"
	"time"
)

const (
	// subBucketBits is the log2 of the per-octave resolution. Values in
	// [0, 2^subBucketBits) map to their own unit-width bucket.
	subBucketBits = 7
	subBuckets    = 1 << subBucketBits // 128
	halfBuckets   = subBuckets / 2     // 64 per octave past the first
	numBuckets    = subBuckets + (64-subBucketBits)*halfBuckets
)

// Histogram counts int64 values (by convention nanoseconds) in
// log-linear buckets. The zero value is not usable; call New.
type Histogram struct {
	counts []atomic.Uint64
	count  atomic.Uint64
	sum    atomic.Int64
	max    atomic.Int64
}

// New returns an empty histogram.
func New() *Histogram {
	return &Histogram{counts: make([]atomic.Uint64, numBuckets)}
}

// bucketIndex maps a non-negative value to its bucket.
func bucketIndex(v int64) int {
	u := uint64(v)
	if u < subBuckets {
		return int(u)
	}
	p := bits.Len64(u) - 1 // position of the highest set bit, >= subBucketBits
	shift := p - subBucketBits + 1
	return subBuckets + (p-subBucketBits)*halfBuckets + int(u>>shift) - halfBuckets
}

// bucketMid returns the representative value for a bucket: the midpoint
// of its range (the value itself for the exact unit-width buckets).
func bucketMid(i int) int64 {
	if i < subBuckets {
		return int64(i)
	}
	oct := (i - subBuckets) / halfBuckets
	pos := (i - subBuckets) % halfBuckets
	shift := uint(oct + 1)
	low := int64(halfBuckets+pos) << shift
	width := int64(1) << shift
	return low + (width-1)/2
}

// Record adds one observation. Negative values clamp to zero.
func (h *Histogram) Record(v int64) {
	if v < 0 {
		v = 0
	}
	h.counts[bucketIndex(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			return
		}
	}
}

// RecordDuration records d in nanoseconds.
func (h *Histogram) RecordDuration(d time.Duration) { h.Record(int64(d)) }

// Count returns the number of recorded observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Max returns the largest recorded value (exact, not bucketized).
func (h *Histogram) Max() int64 { return h.max.Load() }

// Sum returns the running sum of recorded values.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// Mean returns the arithmetic mean of recorded values, 0 when empty.
func (h *Histogram) Mean() float64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return float64(h.sum.Load()) / float64(n)
}

// Quantile returns the value at quantile p in [0, 1]: the representative
// value of the smallest bucket whose cumulative count reaches
// ceil(p * Count). Exact for values below 128; otherwise within 1/64
// relative error. The result is clamped to Max so tail quantiles of
// small samples never exceed the true maximum.
func (h *Histogram) Quantile(p float64) int64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	} else if p > 1 {
		p = 1
	}
	rank := uint64(p * float64(total))
	if float64(rank) < p*float64(total) {
		rank++
	}
	if rank < 1 {
		rank = 1
	}
	if rank > total {
		rank = total
	}
	var cum uint64
	for i := range h.counts {
		cum += h.counts[i].Load()
		if cum >= rank {
			v := bucketMid(i)
			if m := h.max.Load(); v > m {
				v = m
			}
			return v
		}
	}
	return h.max.Load()
}

// Merge adds o's observations into h. o is read atomically, so merging
// a histogram that is still being written to yields a valid (if
// slightly stale) snapshot.
func (h *Histogram) Merge(o *Histogram) {
	if o == nil {
		return
	}
	for i := range o.counts {
		if c := o.counts[i].Load(); c != 0 {
			h.counts[i].Add(c)
		}
	}
	h.count.Add(o.count.Load())
	h.sum.Add(o.sum.Load())
	om := o.max.Load()
	for {
		cur := h.max.Load()
		if om <= cur || h.max.CompareAndSwap(cur, om) {
			return
		}
	}
}

// Summary is a JSON-friendly snapshot of a histogram. All value fields
// are divided by the scale passed to Summarize (e.g. 1e3 to report
// nanosecond recordings in microseconds).
type Summary struct {
	Count uint64  `json:"count"`
	Mean  float64 `json:"mean"`
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90"`
	P99   float64 `json:"p99"`
	P999  float64 `json:"p999"`
	Max   float64 `json:"max"`
}

// Summarize snapshots the standard percentile set, dividing every value
// by scale. Values round to 3 decimals for stable JSON artifacts.
func (h *Histogram) Summarize(scale float64) Summary {
	if scale == 0 {
		scale = 1
	}
	r := func(v float64) float64 { return float64(int64(v/scale*1000+0.5)) / 1000 }
	return Summary{
		Count: h.Count(),
		Mean:  r(h.Mean()),
		P50:   r(float64(h.Quantile(0.50))),
		P90:   r(float64(h.Quantile(0.90))),
		P99:   r(float64(h.Quantile(0.99))),
		P999:  r(float64(h.Quantile(0.999))),
		Max:   r(float64(h.Max())),
	}
}
