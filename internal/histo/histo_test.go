package histo

import (
	"math"
	"sync"
	"testing"
	"time"

	"datamarket/internal/randx"
)

func TestExactSmallValues(t *testing.T) {
	// Values below 128 land in unit-width buckets, so every quantile of a
	// known small-valued distribution must be exact.
	h := New()
	for v := int64(1); v <= 100; v++ {
		h.Record(v)
	}
	cases := []struct {
		p    float64
		want int64
	}{
		{0, 1}, {0.01, 1}, {0.5, 50}, {0.9, 90}, {0.99, 99}, {1, 100},
	}
	for _, c := range cases {
		if got := h.Quantile(c.p); got != c.want {
			t.Errorf("Quantile(%v) = %d, want %d", c.p, got, c.want)
		}
	}
	if h.Count() != 100 {
		t.Errorf("Count = %d, want 100", h.Count())
	}
	if h.Max() != 100 {
		t.Errorf("Max = %d, want 100", h.Max())
	}
	if got := h.Mean(); got != 50.5 {
		t.Errorf("Mean = %v, want 50.5", got)
	}
}

func TestRelativeErrorLargeValues(t *testing.T) {
	// Past the unit-width range every bucket midpoint is within 1/64 of
	// the true value.
	for _, v := range []int64{128, 129, 1000, 123_456, 1 << 30, 1<<40 + 12345, math.MaxInt64 / 3} {
		h := New()
		h.Record(v)
		got := h.Quantile(0.5)
		relErr := math.Abs(float64(got-v)) / float64(v)
		if relErr > 1.0/64 {
			t.Errorf("value %d: quantile %d, relative error %.4f > 1/64", v, got, relErr)
		}
	}
}

func TestMergeOrderIndependent(t *testing.T) {
	r := randx.New(7)
	vals := make([]int64, 3000)
	for i := range vals {
		vals[i] = int64(r.Exponential(1.0/50_000) + 1) // latency-shaped, ~50µs mean
	}
	// Split the same observations across shards three different ways and
	// merge in different orders; every aggregate must agree.
	build := func(order []int) *Histogram {
		shards := make([]*Histogram, 4)
		for i := range shards {
			shards[i] = New()
		}
		for i, v := range vals {
			shards[i%4].Record(v)
		}
		agg := New()
		for _, i := range order {
			agg.Merge(shards[i])
		}
		return agg
	}
	direct := New()
	for _, v := range vals {
		direct.Record(v)
	}
	for _, order := range [][]int{{0, 1, 2, 3}, {3, 2, 1, 0}, {2, 0, 3, 1}} {
		agg := build(order)
		if agg.Count() != direct.Count() || agg.Sum() != direct.Sum() || agg.Max() != direct.Max() {
			t.Fatalf("order %v: count/sum/max mismatch", order)
		}
		for _, p := range []float64{0.5, 0.9, 0.99, 0.999} {
			if got, want := agg.Quantile(p), direct.Quantile(p); got != want {
				t.Errorf("order %v: Quantile(%v) = %d, want %d", order, p, got, want)
			}
		}
	}
}

func TestConcurrentRecord(t *testing.T) {
	h := New()
	var wg sync.WaitGroup
	const workers, per = 8, 5000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := randx.NewStream(11, uint64(w))
			for i := 0; i < per; i++ {
				h.Record(int64(r.Intn(1_000_000)))
			}
		}(w)
	}
	wg.Wait()
	if h.Count() != workers*per {
		t.Fatalf("Count = %d, want %d", h.Count(), workers*per)
	}
	if h.Quantile(0.5) <= 0 || h.Quantile(0.999) < h.Quantile(0.5) {
		t.Fatalf("implausible quantiles p50=%d p999=%d", h.Quantile(0.5), h.Quantile(0.999))
	}
}

func TestSummarize(t *testing.T) {
	h := New()
	h.RecordDuration(100 * time.Microsecond)
	h.RecordDuration(200 * time.Microsecond)
	s := h.Summarize(1e3) // report in microseconds
	if s.Count != 2 {
		t.Fatalf("Count = %d, want 2", s.Count)
	}
	if s.Max != 200 {
		t.Errorf("Max = %v, want 200", s.Max)
	}
	if s.Mean != 150 {
		t.Errorf("Mean = %v, want 150", s.Mean)
	}
	if s.P99 < 190 || s.P99 > 200 {
		t.Errorf("P99 = %v, want ~200 within 1/64", s.P99)
	}
	var empty Summary
	if got := New().Summarize(1e3); got != empty {
		t.Errorf("empty Summarize = %+v, want zero", got)
	}
}

func TestNegativeClampsToZero(t *testing.T) {
	h := New()
	h.Record(-5)
	if h.Quantile(0.5) != 0 || h.Max() != 0 || h.Count() != 1 {
		t.Fatalf("negative record not clamped: q50=%d max=%d count=%d",
			h.Quantile(0.5), h.Max(), h.Count())
	}
}

func TestBucketRoundTrip(t *testing.T) {
	// Every bucket's midpoint must map back to the same bucket, and
	// indexes must be monotone in the value.
	prev := -1
	for _, v := range []int64{0, 1, 127, 128, 255, 256, 1023, 1 << 20, 1 << 40, math.MaxInt64} {
		i := bucketIndex(v)
		if i <= prev && v != 0 {
			t.Errorf("bucketIndex not monotone at %d: %d <= %d", v, i, prev)
		}
		prev = i
		if j := bucketIndex(bucketMid(i)); j != i {
			t.Errorf("bucketMid(%d) = %d maps to bucket %d", i, bucketMid(i), j)
		}
	}
}
