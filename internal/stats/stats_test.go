package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestOnlineMatchesBatch(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	o := NewOnline()
	o.AddAll(xs)
	if o.Count() != 8 {
		t.Fatalf("Count = %d", o.Count())
	}
	if math.Abs(o.Mean()-5) > 1e-12 {
		t.Fatalf("Mean = %v, want 5", o.Mean())
	}
	if math.Abs(o.Variance()-4) > 1e-12 {
		t.Fatalf("Variance = %v, want 4", o.Variance())
	}
	if math.Abs(o.Std()-2) > 1e-12 {
		t.Fatalf("Std = %v, want 2", o.Std())
	}
	if o.Min() != 2 || o.Max() != 9 {
		t.Fatalf("Min/Max = %v/%v", o.Min(), o.Max())
	}
	if math.Abs(o.SampleVariance()-32.0/7) > 1e-12 {
		t.Fatalf("SampleVariance = %v", o.SampleVariance())
	}
}

func TestOnlineEmptyAndSingle(t *testing.T) {
	o := NewOnline()
	if o.Variance() != 0 || o.Mean() != 0 {
		t.Fatal("empty accumulator must be zero")
	}
	o.Add(3)
	if o.Variance() != 0 || o.Mean() != 3 {
		t.Fatal("single observation variance must be 0")
	}
}

func TestOnlineMerge(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	whole := NewOnline()
	whole.AddAll(xs)
	a, b := NewOnline(), NewOnline()
	a.AddAll(xs[:3])
	b.AddAll(xs[3:])
	a.Merge(b)
	if a.Count() != whole.Count() {
		t.Fatalf("merged count %d", a.Count())
	}
	if math.Abs(a.Mean()-whole.Mean()) > 1e-12 || math.Abs(a.Variance()-whole.Variance()) > 1e-12 {
		t.Fatalf("merge mismatch: %v/%v vs %v/%v", a.Mean(), a.Variance(), whole.Mean(), whole.Variance())
	}
	if a.Min() != 1 || a.Max() != 8 {
		t.Fatalf("merge min/max %v/%v", a.Min(), a.Max())
	}
	// Merging empty is a no-op; merging into empty copies.
	e := NewOnline()
	e.Merge(a)
	if e.Count() != a.Count() || e.Mean() != a.Mean() {
		t.Fatal("merge into empty failed")
	}
	a.Merge(NewOnline())
	if a.Count() != 8 {
		t.Fatal("merge of empty changed state")
	}
}

// Property: merging any split of a stream equals processing it whole.
func TestMergeEquivalenceProperty(t *testing.T) {
	f := func(raw []float64, cut uint8) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, math.Mod(x, 1e6))
			}
		}
		if len(xs) < 2 {
			return true
		}
		k := int(cut) % len(xs)
		whole, a, b := NewOnline(), NewOnline(), NewOnline()
		whole.AddAll(xs)
		a.AddAll(xs[:k])
		b.AddAll(xs[k:])
		a.Merge(b)
		scale := math.Max(1, math.Abs(whole.Mean()))
		return math.Abs(a.Mean()-whole.Mean()) < 1e-8*scale &&
			math.Abs(a.Variance()-whole.Variance()) < 1e-6*math.Max(1, whole.Variance())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.Count != 5 || s.Mean != 3 || s.Median != 3 || s.Min != 1 || s.Max != 5 {
		t.Fatalf("Summary = %+v", s)
	}
	if s.String() != "3.000 (1.414)" {
		t.Fatalf("String = %q", s.String())
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{3, 1, 2, 4}
	if q := Quantile(xs, 0); q != 1 {
		t.Fatalf("q0 = %v", q)
	}
	if q := Quantile(xs, 1); q != 4 {
		t.Fatalf("q1 = %v", q)
	}
	if q := Quantile(xs, 0.5); math.Abs(q-2.5) > 1e-12 {
		t.Fatalf("median = %v", q)
	}
	// Out-of-range q clamps.
	if q := Quantile(xs, -3); q != 1 {
		t.Fatalf("clamped q = %v", q)
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Fatal("empty quantile must be NaN")
	}
	// Input must not be mutated.
	if xs[0] != 3 {
		t.Fatal("Quantile mutated input")
	}
}

func TestHistogram(t *testing.T) {
	h, err := NewHistogram([]float64{0, 0.1, 0.5, 0.9, 1.0}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if h.Total() != 5 {
		t.Fatalf("Total = %d", h.Total())
	}
	// Bins are half-open: [0, 0.5) and [0.5, 1.0], so 0.5 falls in bin 1.
	if h.Counts[0] != 2 || h.Counts[1] != 3 {
		t.Fatalf("Counts = %v", h.Counts)
	}
	if _, err := NewHistogram(nil, 0); err == nil {
		t.Fatal("expected error for 0 bins")
	}
	// Degenerate single-value input lands in one bin.
	h2, _ := NewHistogram([]float64{5, 5, 5}, 4)
	if h2.Total() != 3 {
		t.Fatalf("degenerate Total = %d", h2.Total())
	}
}

func TestCumSum(t *testing.T) {
	got := CumSum([]float64{1, 2, 3})
	want := []float64{1, 3, 6}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("CumSum = %v", got)
		}
	}
	if len(CumSum(nil)) != 0 {
		t.Fatal("empty CumSum")
	}
}

func TestRatioSeries(t *testing.T) {
	got := RatioSeries([]float64{1, 4, 5}, []float64{2, 2, 0})
	if got[0] != 0.5 || got[1] != 2 || got[2] != 0 {
		t.Fatalf("RatioSeries = %v", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on length mismatch")
		}
	}()
	RatioSeries([]float64{1}, []float64{1, 2})
}

func TestMeanStdHelpers(t *testing.T) {
	if Mean(nil) != 0 {
		t.Fatal("Mean(nil) != 0")
	}
	if Mean([]float64{1, 3}) != 2 {
		t.Fatal("Mean wrong")
	}
	if math.Abs(Std([]float64{2, 4, 4, 4, 5, 5, 7, 9})-2) > 1e-12 {
		t.Fatal("Std wrong")
	}
}
