// Package stats provides the descriptive statistics used by the evaluation
// harness: streaming (Welford) mean/variance accumulators, batch summaries,
// quantiles, and histograms. Table I of the paper reports per-round means
// and standard deviations of market value, reserve price, posted price, and
// regret — the Summary type here is what produces those columns.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Online accumulates count, mean, and variance in one pass using Welford's
// algorithm, which is numerically stable for long streams.
type Online struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
}

// NewOnline returns an empty accumulator.
func NewOnline() *Online {
	return &Online{min: math.Inf(1), max: math.Inf(-1)}
}

// Add folds one observation into the accumulator.
func (o *Online) Add(x float64) {
	o.n++
	d := x - o.mean
	o.mean += d / float64(o.n)
	o.m2 += d * (x - o.mean)
	if x < o.min {
		o.min = x
	}
	if x > o.max {
		o.max = x
	}
}

// AddAll folds a batch of observations.
func (o *Online) AddAll(xs []float64) {
	for _, x := range xs {
		o.Add(x)
	}
}

// Count returns the number of observations.
func (o *Online) Count() int { return o.n }

// Mean returns the running mean (0 if empty).
func (o *Online) Mean() float64 { return o.mean }

// Variance returns the population variance (0 if fewer than 2 samples).
func (o *Online) Variance() float64 {
	if o.n < 2 {
		return 0
	}
	return o.m2 / float64(o.n)
}

// SampleVariance returns the Bessel-corrected variance.
func (o *Online) SampleVariance() float64 {
	if o.n < 2 {
		return 0
	}
	return o.m2 / float64(o.n-1)
}

// Std returns the population standard deviation.
func (o *Online) Std() float64 { return math.Sqrt(o.Variance()) }

// Min returns the minimum observation (+Inf if empty).
func (o *Online) Min() float64 { return o.min }

// Max returns the maximum observation (−Inf if empty).
func (o *Online) Max() float64 { return o.max }

// OnlineState is the serializable state of an Online accumulator. Min and
// Max are stored only for non-empty accumulators (an empty accumulator's
// ±Inf sentinels are not JSON-encodable); OnlineFromState restores the
// sentinels when N is zero.
type OnlineState struct {
	N    int     `json:"n"`
	Mean float64 `json:"mean"`
	M2   float64 `json:"m2"`
	Min  float64 `json:"min"`
	Max  float64 `json:"max"`
}

// State captures the accumulator for durable storage.
func (o *Online) State() OnlineState {
	s := OnlineState{N: o.n, Mean: o.mean, M2: o.m2}
	if o.n > 0 {
		s.Min, s.Max = o.min, o.max
	}
	return s
}

// NewOnlineFromState rebuilds an accumulator captured by State. It
// rejects states no Add sequence can produce.
func NewOnlineFromState(s OnlineState) (*Online, error) {
	if s.N < 0 {
		return nil, fmt.Errorf("stats: online state count %d invalid", s.N)
	}
	for _, v := range [...]float64{s.Mean, s.M2, s.Min, s.Max} {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, fmt.Errorf("stats: online state field %g invalid, want finite", v)
		}
	}
	if s.M2 < 0 {
		return nil, fmt.Errorf("stats: online state m2 %g invalid, want ≥ 0", s.M2)
	}
	o := NewOnline()
	if s.N == 0 {
		return o, nil
	}
	if s.Min > s.Max {
		return nil, fmt.Errorf("stats: online state min %g exceeds max %g", s.Min, s.Max)
	}
	o.n, o.mean, o.m2, o.min, o.max = s.N, s.Mean, s.M2, s.Min, s.Max
	return o, nil
}

// Merge folds another accumulator into o (parallel Welford merge).
func (o *Online) Merge(p *Online) {
	if p.n == 0 {
		return
	}
	if o.n == 0 {
		*o = *p
		return
	}
	n := o.n + p.n
	d := p.mean - o.mean
	mean := o.mean + d*float64(p.n)/float64(n)
	m2 := o.m2 + p.m2 + d*d*float64(o.n)*float64(p.n)/float64(n)
	o.n, o.mean, o.m2 = n, mean, m2
	if p.min < o.min {
		o.min = p.min
	}
	if p.max > o.max {
		o.max = p.max
	}
}

// Summary is a batch description of a sample.
type Summary struct {
	Count  int
	Mean   float64
	Std    float64
	Min    float64
	Max    float64
	Median float64
}

// Summarize computes a Summary of xs (population std).
func Summarize(xs []float64) Summary {
	o := NewOnline()
	o.AddAll(xs)
	s := Summary{
		Count: o.Count(), Mean: o.Mean(), Std: o.Std(),
		Min: o.Min(), Max: o.Max(),
	}
	if len(xs) > 0 {
		s.Median = Quantile(xs, 0.5)
	}
	return s
}

// String renders the mean (std) format used throughout Table I.
func (s Summary) String() string {
	return fmt.Sprintf("%.3f (%.3f)", s.Mean, s.Std)
}

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Std returns the population standard deviation of xs.
func Std(xs []float64) float64 {
	o := NewOnline()
	o.AddAll(xs)
	return o.Std()
}

// Quantile returns the q-th quantile (0 ≤ q ≤ 1) using linear
// interpolation between order statistics. It copies and sorts xs.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Histogram buckets xs into k equal-width bins spanning [min, max].
type Histogram struct {
	Lo, Hi float64
	Counts []int
}

// NewHistogram builds a k-bin histogram of xs. k must be positive.
func NewHistogram(xs []float64, k int) (*Histogram, error) {
	if k <= 0 {
		return nil, fmt.Errorf("stats: histogram needs positive bin count, got %d", k)
	}
	if len(xs) == 0 {
		return &Histogram{Counts: make([]int, k)}, nil
	}
	lo, hi := xs[0], xs[0]
	for _, x := range xs {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	h := &Histogram{Lo: lo, Hi: hi, Counts: make([]int, k)}
	width := (hi - lo) / float64(k)
	for _, x := range xs {
		var b int
		if width > 0 {
			b = int((x - lo) / width)
		}
		if b >= k {
			b = k - 1
		}
		if b < 0 {
			b = 0
		}
		h.Counts[b]++
	}
	return h, nil
}

// Total returns the number of observations in the histogram.
func (h *Histogram) Total() int {
	var t int
	for _, c := range h.Counts {
		t += c
	}
	return t
}

// CumSum returns the running prefix sums of xs; CumSum(xs)[i] = Σ_{k≤i} xs[k].
// The regret curves of Fig. 4 are cumulative sums of per-round regrets.
func CumSum(xs []float64) []float64 {
	out := make([]float64, len(xs))
	var s float64
	for i, x := range xs {
		s += x
		out[i] = s
	}
	return out
}

// RatioSeries returns num[i]/den[i] with 0 where den[i] == 0; it produces
// the regret-ratio curves of Fig. 5.
func RatioSeries(num, den []float64) []float64 {
	if len(num) != len(den) {
		panic("stats: RatioSeries length mismatch")
	}
	out := make([]float64, len(num))
	for i := range num {
		if den[i] != 0 {
			out[i] = num[i] / den[i]
		}
	}
	return out
}
