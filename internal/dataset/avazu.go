package dataset

import (
	"fmt"
	"io"
	"math"

	"datamarket/internal/feature"
	"datamarket/internal/learn"
	"datamarket/internal/linalg"
	"datamarket/internal/randx"
)

// Impression is one Avazu-style ad display sample (§V-C): a click label
// and a set of categorical fields describing the ad slot and the device.
type Impression struct {
	Click  bool
	Fields map[string]string
}

// AvazuFields are the categorical fields we model, a representative subset
// of the 24 columns of the real avazu click log, plus a constant "bias"
// field: one-hot-hashed CTR pipelines carry the intercept as an
// always-present feature, which is what lets L1 drive every genuinely
// uninformative coordinate to exactly zero.
var AvazuFields = []string{
	"bias", "hour", "banner_pos", "site_id", "site_category", "app_id",
	"app_category", "device_model", "device_type", "device_conn_type",
	"C14", "C17", "C20",
}

// avazuCardinalities gives each field's vocabulary size in the generator;
// heavy-tailed fields (site_id, app_id, device_model) get large
// vocabularies like the real log.
var avazuCardinalities = map[string]int{
	"bias": 1, "hour": 24, "banner_pos": 7, "site_id": 2000, "site_category": 26,
	"app_id": 1500, "app_category": 28, "device_model": 4000,
	"device_type": 5, "device_conn_type": 4, "C14": 800, "C17": 300, "C20": 160,
}

// AvazuConfig parameterizes the synthetic impression log.
type AvazuConfig struct {
	// Count is the number of impressions.
	Count int
	// HashDim is the one-hot hashing dimension n (the paper uses 128 and
	// 1024).
	HashDim int
	// ActiveWeights is the number of nonzero coordinates of the hidden
	// CTR model in hashed space (the paper's learned vectors have 21–23).
	ActiveWeights int
	// Seed drives the generator.
	Seed uint64
}

// AvazuStream generates impressions whose click probabilities follow a
// hidden sparse logistic model in the hashed feature space, so that an
// FTRL refit recovers a sparse weight vector exactly as in §V-C.
type AvazuStream struct {
	cfg    AvazuConfig
	hasher *feature.Hasher
	truth  linalg.Vector
	bias   float64
	rng    *randx.RNG
	vocab  map[string][]string
}

// NewAvazuStream validates the config and builds the generator.
func NewAvazuStream(cfg AvazuConfig) (*AvazuStream, error) {
	if cfg.Count < 0 {
		return nil, fmt.Errorf("dataset: negative Count %d", cfg.Count)
	}
	if cfg.HashDim <= 0 {
		return nil, fmt.Errorf("dataset: HashDim must be positive, got %d", cfg.HashDim)
	}
	if cfg.ActiveWeights <= 0 || cfg.ActiveWeights > cfg.HashDim-1 {
		return nil, fmt.Errorf("dataset: ActiveWeights %d out of range [1, %d] (one coordinate is reserved for the bias)",
			cfg.ActiveWeights, cfg.HashDim-1)
	}
	h, err := feature.NewHasher(cfg.HashDim)
	if err != nil {
		return nil, err
	}
	r := randx.New(cfg.Seed)
	truth := make(linalg.Vector, cfg.HashDim)
	// The intercept occupies the bias field's hashed coordinate; the
	// remaining active weights are drawn away from it. With the bias
	// coordinate, the nonzero count of the hidden model is
	// ActiveWeights + 1 (paper: 21/23 nonzeros at n = 128/1024).
	biasIdx := h.Index("bias", "bias_0")
	const biasWeight = -1.6 // sigmoid(−1.6) ≈ 17% base CTR
	perm := r.Perm(cfg.HashDim)
	placed := 0
	for _, idx := range perm {
		if placed == cfg.ActiveWeights {
			break
		}
		if idx == biasIdx {
			continue
		}
		truth[idx] = r.Uniform(0.5, 1.5) * r.Rademacher()
		placed++
	}
	truth[biasIdx] = biasWeight
	// Pre-build small vocabularies; large ones are materialized lazily by
	// index to keep memory modest.
	vocab := make(map[string][]string, len(AvazuFields))
	for _, f := range AvazuFields {
		card := avazuCardinalities[f]
		vals := make([]string, card)
		for i := range vals {
			vals[i] = fmt.Sprintf("%s_%x", f, i)
		}
		vocab[f] = vals
	}
	return &AvazuStream{cfg: cfg, hasher: h, truth: truth, bias: biasWeight, rng: r, vocab: vocab}, nil
}

// Truth returns a copy of the hidden weight vector in hashed space.
func (s *AvazuStream) Truth() linalg.Vector { return s.truth.Clone() }

// Bias returns the hidden intercept, realized as the weight of the bias
// field's hashed coordinate (already included in Truth).
func (s *AvazuStream) Bias() float64 { return s.bias }

// Hasher returns the one-hot hashing encoder in use.
func (s *AvazuStream) Hasher() *feature.Hasher { return s.hasher }

// Next draws one impression: categorical fields with Zipf-ish skew, then a
// click from the hidden logistic model over the hashed encoding.
func (s *AvazuStream) Next() (Impression, linalg.Vector) {
	fields := make(map[string]string, len(AvazuFields))
	for _, f := range AvazuFields {
		vals := s.vocab[f]
		fields[f] = vals[s.skewedIndex(len(vals))]
	}
	x := s.hasher.Encode(fields)
	p := 1 / (1 + math.Exp(-x.Dot(s.truth)))
	click := s.rng.Float64() < p
	return Impression{Click: click, Fields: fields}, x
}

// skewedIndex draws an index with a heavy head: squaring a uniform pushes
// mass toward 0, approximating the popularity skew of real ad logs.
func (s *AvazuStream) skewedIndex(card int) int {
	u := s.rng.Float64()
	return int(u * u * float64(card))
}

// GenerateAll materializes the full stream; prefer Next for long runs.
func (s *AvazuStream) GenerateAll() ([]Impression, []linalg.Vector) {
	imps := make([]Impression, s.cfg.Count)
	xs := make([]linalg.Vector, s.cfg.Count)
	for i := 0; i < s.cfg.Count; i++ {
		imps[i], xs[i] = s.Next()
	}
	return imps, xs
}

// avazuHeader is the CSV schema: click plus the categorical fields.
var avazuHeader = append([]string{"click"}, AvazuFields...)

// WriteImpressions emits impressions in the CSV schema.
func WriteImpressions(w io.Writer, imps []Impression) error {
	rows := make([][]string, len(imps))
	for i, im := range imps {
		row := make([]string, len(avazuHeader))
		if im.Click {
			row[0] = "1"
		} else {
			row[0] = "0"
		}
		for j, f := range AvazuFields {
			row[j+1] = im.Fields[f]
		}
		rows[i] = row
	}
	return writeCSV(w, avazuHeader, rows)
}

// ParseImpressions reads the CSV schema written by WriteImpressions (it
// also accepts the real Avazu train file's "click" column plus whatever
// subset of our fields is present is NOT supported — the schema must
// match; see DESIGN.md on substitutions). limit > 0 caps rows.
func ParseImpressions(r io.Reader, limit int) ([]Impression, error) {
	t, err := newCSVTable(r)
	if err != nil {
		return nil, err
	}
	cols, err := t.require(avazuHeader...)
	if err != nil {
		return nil, err
	}
	var out []Impression
	line := 1
	for {
		rec, err := t.next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("dataset: impressions line %d: %w", line+1, err)
		}
		line++
		click, err := parseInt(rec[cols[0]], "click", line)
		if err != nil {
			return nil, err
		}
		if click != 0 && click != 1 {
			return nil, fmt.Errorf("dataset: line %d: click must be 0/1, got %d: %w", line, click, ErrBadRow)
		}
		im := Impression{Click: click == 1, Fields: make(map[string]string, len(AvazuFields))}
		for j, f := range AvazuFields {
			im.Fields[f] = rec[cols[j+1]]
		}
		out = append(out, im)
		if limit > 0 && len(out) >= limit {
			break
		}
	}
	return out, nil
}

// FitFTRLOnStream is a convenience used by experiments: it runs count
// impressions from the stream through an FTRL learner and returns the
// learned weights. The learner is configured per McMahan et al. defaults.
func FitFTRLOnStream(s *AvazuStream, count int, alpha, l1 float64) (linalg.Vector, float64, error) {
	if count <= 0 {
		return nil, 0, fmt.Errorf("dataset: FTRL fit needs positive count")
	}
	learner, err := learn.NewFTRL(learn.FTRLConfig{
		Dim: s.hasher.Dim(), Alpha: alpha, Beta: 1, L1: l1, L2: 1,
	})
	if err != nil {
		return nil, 0, err
	}
	for i := 0; i < count; i++ {
		im, x := s.Next()
		y := 0.0
		if im.Click {
			y = 1
		}
		if _, err := learner.Update(x, y); err != nil {
			return nil, 0, err
		}
	}
	return learner.Weights(), learner.AverageLoss(), nil
}
