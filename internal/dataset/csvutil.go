// Package dataset provides the three dataset substrates of the paper's
// evaluation: MovieLens-style rating corpora (§V-A), Airbnb-style listing
// tables (§V-B), and Avazu-style ad impression logs (§V-C). For each, the
// package ships a parser for the real file's schema *and* a statistically
// matched synthetic generator, because the real datasets cannot ship with
// an offline module (the substitutions are documented in DESIGN.md §3).
package dataset

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// csvTable is a small helper around encoding/csv that reads a headered
// table and resolves columns by name.
type csvTable struct {
	header map[string]int
	reader *csv.Reader
}

// newCSVTable reads the header row and prepares column lookup.
func newCSVTable(r io.Reader) (*csvTable, error) {
	cr := csv.NewReader(r)
	cr.ReuseRecord = true
	head, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("dataset: reading CSV header: %w", err)
	}
	idx := make(map[string]int, len(head))
	for i, name := range head {
		idx[name] = i
	}
	return &csvTable{header: idx, reader: cr}, nil
}

// require returns the column indices for the names, failing on any miss.
func (t *csvTable) require(names ...string) ([]int, error) {
	out := make([]int, len(names))
	for i, n := range names {
		j, ok := t.header[n]
		if !ok {
			return nil, fmt.Errorf("dataset: CSV is missing required column %q", n)
		}
		out[i] = j
	}
	return out, nil
}

// next reads one record; io.EOF signals the clean end of the table.
func (t *csvTable) next() ([]string, error) {
	return t.reader.Read()
}

// parseFloat converts a CSV cell into a float64 with a helpful error.
func parseFloat(cell, column string, line int) (float64, error) {
	v, err := strconv.ParseFloat(cell, 64)
	if err != nil {
		return 0, fmt.Errorf("dataset: line %d column %s: bad number %q", line, column, cell)
	}
	return v, nil
}

// parseInt converts a CSV cell into an int64 with a helpful error.
func parseInt(cell, column string, line int) (int64, error) {
	v, err := strconv.ParseInt(cell, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("dataset: line %d column %s: bad integer %q", line, column, cell)
	}
	return v, nil
}

// writeCSV writes a headered table; used by cmd/datagen and round-trip
// tests.
func writeCSV(w io.Writer, header []string, rows [][]string) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("dataset: writing CSV header: %w", err)
	}
	for i, row := range rows {
		if len(row) != len(header) {
			return fmt.Errorf("dataset: row %d has %d cells, want %d", i, len(row), len(header))
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("dataset: writing CSV row %d: %w", i, err)
		}
	}
	cw.Flush()
	return cw.Error()
}
