// Package dataset provides the three dataset substrates of the paper's
// evaluation: MovieLens-style rating corpora (§V-A), Airbnb-style listing
// tables (§V-B), and Avazu-style ad impression logs (§V-C). For each, the
// package ships a parser for the real file's schema *and* a statistically
// matched synthetic generator, because the real datasets cannot ship with
// an offline module (the substitutions are documented in DESIGN.md §3).
package dataset

import (
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"math"
	"strconv"
)

// ErrBadRow marks any malformed-row failure from the dataset loaders:
// short or ragged rows, non-numeric or non-finite cells, out-of-range
// labels. Callers use errors.Is(err, ErrBadRow) to tell data corruption
// apart from plain I/O failures; the loaders never panic on bad input
// and never skip a row silently.
var ErrBadRow = errors.New("malformed row")

// csvTable is a small helper around encoding/csv that reads a headered
// table and resolves columns by name.
type csvTable struct {
	header map[string]int
	width  int
	reader *csv.Reader
}

// newCSVTable reads the header row and prepares column lookup.
func newCSVTable(r io.Reader) (*csvTable, error) {
	cr := csv.NewReader(r)
	cr.ReuseRecord = true
	head, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("dataset: reading CSV header: %w", err)
	}
	idx := make(map[string]int, len(head))
	for i, name := range head {
		idx[name] = i
	}
	return &csvTable{header: idx, width: len(head), reader: cr}, nil
}

// require returns the column indices for the names, failing on any miss.
func (t *csvTable) require(names ...string) ([]int, error) {
	out := make([]int, len(names))
	for i, n := range names {
		j, ok := t.header[n]
		if !ok {
			return nil, fmt.Errorf("dataset: CSV is missing required column %q", n)
		}
		out[i] = j
	}
	return out, nil
}

// next reads one record; io.EOF signals the clean end of the table. Any
// other failure — including encoding/csv's own short/ragged-row error —
// comes back wrapped with ErrBadRow so loader errors are classifiable.
func (t *csvTable) next() ([]string, error) {
	rec, err := t.reader.Read()
	if err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("%w: %w", ErrBadRow, err)
	}
	// encoding/csv already enforces a constant field count after the
	// header; this guards the invariant if the reader is ever swapped.
	if len(rec) != t.width {
		return nil, fmt.Errorf("%w: got %d fields, want %d", ErrBadRow, len(rec), t.width)
	}
	return rec, nil
}

// parseFloat converts a CSV cell into a finite float64 with a helpful
// error; NaN/Inf cells are rejected so they cannot poison downstream
// regressions.
func parseFloat(cell, column string, line int) (float64, error) {
	v, err := strconv.ParseFloat(cell, 64)
	if err != nil {
		return 0, fmt.Errorf("dataset: line %d column %s: bad number %q: %w", line, column, cell, ErrBadRow)
	}
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0, fmt.Errorf("dataset: line %d column %s: non-finite number %q: %w", line, column, cell, ErrBadRow)
	}
	return v, nil
}

// parseInt converts a CSV cell into an int64 with a helpful error.
func parseInt(cell, column string, line int) (int64, error) {
	v, err := strconv.ParseInt(cell, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("dataset: line %d column %s: bad integer %q: %w", line, column, cell, ErrBadRow)
	}
	return v, nil
}

// writeCSV writes a headered table; used by cmd/datagen and round-trip
// tests.
func writeCSV(w io.Writer, header []string, rows [][]string) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("dataset: writing CSV header: %w", err)
	}
	for i, row := range rows {
		if len(row) != len(header) {
			return fmt.Errorf("dataset: row %d has %d cells, want %d", i, len(row), len(header))
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("dataset: writing CSV row %d: %w", i, err)
		}
	}
	cw.Flush()
	return cw.Error()
}
