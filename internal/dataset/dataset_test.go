package dataset

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"datamarket/internal/learn"
	"datamarket/internal/linalg"
)

func TestGenerateRatingsShape(t *testing.T) {
	ratings, err := GenerateRatings(MovieLensConfig{Users: 100, Movies: 50, RatingsPerUser: 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(ratings) < 500 {
		t.Fatalf("too few ratings: %d", len(ratings))
	}
	users := map[int64]bool{}
	for _, r := range ratings {
		if r.Rating < 0.5 || r.Rating > 5 {
			t.Fatalf("rating out of range: %v", r.Rating)
		}
		if math.Mod(r.Rating*2, 1) != 0 {
			t.Fatalf("rating not half-star quantized: %v", r.Rating)
		}
		if r.UserID < 1 || r.UserID > 100 || r.MovieID < 1 || r.MovieID > 50 {
			t.Fatalf("id out of range: %+v", r)
		}
		users[r.UserID] = true
	}
	if len(users) != 100 {
		t.Fatalf("only %d users produced ratings", len(users))
	}
	if _, err := GenerateRatings(MovieLensConfig{}); err == nil {
		t.Fatal("expected config error")
	}
}

func TestRatingsDeterministicBySeed(t *testing.T) {
	a, _ := GenerateRatings(MovieLensConfig{Users: 10, Movies: 5, RatingsPerUser: 3, Seed: 7})
	b, _ := GenerateRatings(MovieLensConfig{Users: 10, Movies: 5, RatingsPerUser: 3, Seed: 7})
	if len(a) != len(b) {
		t.Fatal("same seed produced different counts")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at %d", i)
		}
	}
}

func TestRatingsCSVRoundTrip(t *testing.T) {
	in, _ := GenerateRatings(MovieLensConfig{Users: 20, Movies: 10, RatingsPerUser: 5, Seed: 2})
	var buf bytes.Buffer
	if err := WriteRatings(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := ParseRatings(&buf, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("round trip lost rows: %d vs %d", len(out), len(in))
	}
	for i := range in {
		if in[i] != out[i] {
			t.Fatalf("row %d mismatch: %+v vs %+v", i, in[i], out[i])
		}
	}
	// limit caps rows.
	var buf2 bytes.Buffer
	WriteRatings(&buf2, in)
	few, err := ParseRatings(&buf2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(few) != 3 {
		t.Fatalf("limit ignored: %d", len(few))
	}
}

func TestParseRatingsErrors(t *testing.T) {
	if _, err := ParseRatings(strings.NewReader("wrong,header\n1,2\n"), 0); err == nil {
		t.Fatal("expected missing column error")
	}
	bad := "userId,movieId,rating,timestamp\n1,2,notanumber,3\n"
	if _, err := ParseRatings(strings.NewReader(bad), 0); err == nil {
		t.Fatal("expected number parse error")
	}
}

func TestUserProfilesAndOwnerValues(t *testing.T) {
	ratings := []Rating{
		{UserID: 2, Rating: 4}, {UserID: 1, Rating: 3},
		{UserID: 2, Rating: 2}, {UserID: 1, Rating: 5},
	}
	profiles := UserProfiles(ratings)
	if len(profiles) != 2 {
		t.Fatalf("profiles = %d", len(profiles))
	}
	if profiles[0].UserID != 1 || profiles[1].UserID != 2 {
		t.Fatal("profiles not sorted by user id")
	}
	if profiles[0].Mean != 4 || profiles[1].Mean != 3 {
		t.Fatalf("means = %v %v", profiles[0].Mean, profiles[1].Mean)
	}
	values, ranges := OwnerValues(profiles)
	if !values.Equal(linalg.VectorOf(4, 3), 0) {
		t.Fatalf("values = %v", values)
	}
	if ranges[0] != RatingScaleRange || ranges[1] != RatingScaleRange {
		t.Fatalf("ranges = %v", ranges)
	}
}

func TestFeaturizeListingDim(t *testing.T) {
	l := &Listing{
		City: "SF", PropertyType: "House", RoomType: "Entire home/apt",
		CancellationPolicy: "strict", InstantBookable: true,
		Accommodates: 4, Bathrooms: 2, Bedrooms: 2, Beds: 3,
		HostResponseRate: 0.9, ReviewScore: 95, NumberOfReviews: 120,
		OccupancyRate: 0.7, CleaningFee: 80, MinimumNights: 2,
		Amenities: []string{"Kitchen", "Pool"},
	}
	x, err := FeaturizeListing(l)
	if err != nil {
		t.Fatal(err)
	}
	if len(x) != AirbnbFeatureDim {
		t.Fatalf("dim = %d, want %d", len(x), AirbnbFeatureDim)
	}
	// City one-hot: SF is index 2 of the city block starting at 10.
	if x[12] != 1 || x[10] != 0 {
		t.Fatalf("city one-hot wrong: %v", x[10:16])
	}
	// Amenity flags: Kitchen is AirbnbAmenities[1] at offset 27+1.
	if x[28] != 1 {
		t.Fatalf("kitchen flag = %v", x[28])
	}
	// Unknown category encodes as all-zero block.
	l2 := *l
	l2.City = "Atlantis"
	x2, _ := FeaturizeListing(&l2)
	for i := 10; i < 16; i++ {
		if x2[i] != 0 {
			t.Fatalf("unknown city set a bit: %v", x2[10:16])
		}
	}
}

func TestGenerateListingsAndOLSRefit(t *testing.T) {
	// The §V-B protocol: generate listings, refit with OLS on an 80/20
	// split, expect test MSE ≈ noise variance (paper: 0.226).
	noise := 0.475
	listings, truth, intercept, err := GenerateListings(AirbnbConfig{Count: 6000, Seed: 3, NoiseStd: noise})
	if err != nil {
		t.Fatal(err)
	}
	if len(listings) != 6000 {
		t.Fatalf("count = %d", len(listings))
	}
	rows := make([]linalg.Vector, len(listings))
	y := make(linalg.Vector, len(listings))
	for i := range listings {
		x, err := FeaturizeListing(&listings[i])
		if err != nil {
			t.Fatal(err)
		}
		rows[i] = x
		y[i] = listings[i].LogPrice
	}
	trainIdx, testIdx, err := learn.TrainTestSplit(len(rows), 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	var trX []linalg.Vector
	var trY linalg.Vector
	for _, i := range trainIdx {
		trX = append(trX, rows[i])
		trY = append(trY, y[i])
	}
	m, err := learn.FitLinear(trX, trY, learn.FitOptions{Intercept: true, Ridge: 1e-6})
	if err != nil {
		t.Fatal(err)
	}
	var teX []linalg.Vector
	var teY linalg.Vector
	for _, i := range testIdx {
		teX = append(teX, rows[i])
		teY = append(teY, y[i])
	}
	mse, err := m.MSE(teX, teY)
	if err != nil {
		t.Fatal(err)
	}
	want := noise * noise
	if mse < 0.7*want || mse > 1.4*want {
		t.Fatalf("test MSE = %v, want ≈ %v", mse, want)
	}
	// Raw coefficients are not identifiable (complete one-hot blocks make
	// the design collinear with the intercept — the dummy-variable trap),
	// but the fitted *function* must match the generator's truth: compare
	// predictions against the noiseless hedonic value on held-out rows.
	var sq float64
	for _, i := range testIdx[:200] {
		pred, err := m.Predict(rows[i])
		if err != nil {
			t.Fatal(err)
		}
		clean := rows[i].Dot(truth) + intercept
		sq += (pred - clean) * (pred - clean)
	}
	if rms := math.Sqrt(sq / 200); rms > 0.1 {
		t.Fatalf("RMS prediction error vs noiseless truth = %v", rms)
	}
	// Within-block coefficient differences are identified: entire-home vs
	// shared-room premium (indices 20 vs 22).
	if gotDiff, wantDiff := m.Coef[20]-m.Coef[22], truth[20]-truth[22]; math.Abs(gotDiff-wantDiff) > 0.1 {
		t.Fatalf("room-type contrast = %v, truth %v", gotDiff, wantDiff)
	}
	if _, _, _, err := GenerateListings(AirbnbConfig{Count: 0}); err == nil {
		t.Fatal("expected count error")
	}
	if _, _, _, err := GenerateListings(AirbnbConfig{Count: 1, NoiseStd: -1}); err == nil {
		t.Fatal("expected noise error")
	}
}

func TestListingsCSVRoundTrip(t *testing.T) {
	in, _, _, err := GenerateListings(AirbnbConfig{Count: 50, Seed: 4, NoiseStd: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteListings(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := ParseListings(&buf, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("round trip lost rows")
	}
	for i := range in {
		a, b := in[i], out[i]
		if math.Abs(a.LogPrice-b.LogPrice) > 1e-12 || a.City != b.City ||
			a.RoomType != b.RoomType || a.InstantBookable != b.InstantBookable ||
			a.Accommodates != b.Accommodates || len(a.Amenities) != len(b.Amenities) {
			t.Fatalf("row %d mismatch:\n%+v\n%+v", i, a, b)
		}
	}
	if _, err := ParseListings(strings.NewReader("bad,header\n"), 0); err == nil {
		t.Fatal("expected header error")
	}
}

func TestAvazuStream(t *testing.T) {
	s, err := NewAvazuStream(AvazuConfig{Count: 1000, HashDim: 128, ActiveWeights: 21, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	// Truth sparsity as configured: the actives plus the bias coordinate.
	nz := 0
	for _, w := range s.Truth() {
		if w != 0 {
			nz++
		}
	}
	if nz != 22 {
		t.Fatalf("truth nonzeros = %d, want 21 actives + 1 bias", nz)
	}
	imps, xs := s.GenerateAll()
	if len(imps) != 1000 || len(xs) != 1000 {
		t.Fatalf("counts %d %d", len(imps), len(xs))
	}
	clicks := 0
	for i, im := range imps {
		if len(im.Fields) != len(AvazuFields) {
			t.Fatalf("impression %d has %d fields", i, len(im.Fields))
		}
		if xs[i].Sum() != float64(len(AvazuFields)) {
			t.Fatalf("encoded mass = %v", xs[i].Sum())
		}
		if im.Click {
			clicks++
		}
	}
	// Base CTR should be plausible (5–50%).
	ctr := float64(clicks) / 1000
	if ctr < 0.05 || ctr > 0.5 {
		t.Fatalf("CTR = %v implausible", ctr)
	}
}

func TestAvazuConfigValidation(t *testing.T) {
	if _, err := NewAvazuStream(AvazuConfig{Count: -1, HashDim: 8, ActiveWeights: 1}); err == nil {
		t.Fatal("expected count error")
	}
	if _, err := NewAvazuStream(AvazuConfig{Count: 1, HashDim: 0, ActiveWeights: 1}); err == nil {
		t.Fatal("expected dim error")
	}
	if _, err := NewAvazuStream(AvazuConfig{Count: 1, HashDim: 8, ActiveWeights: 9}); err == nil {
		t.Fatal("expected active weights error")
	}
}

func TestAvazuCSVRoundTrip(t *testing.T) {
	s, _ := NewAvazuStream(AvazuConfig{Count: 100, HashDim: 64, ActiveWeights: 5, Seed: 6})
	in, _ := s.GenerateAll()
	var buf bytes.Buffer
	if err := WriteImpressions(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := ParseImpressions(&buf, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatal("round trip lost rows")
	}
	for i := range in {
		if in[i].Click != out[i].Click {
			t.Fatalf("row %d click mismatch", i)
		}
		for _, f := range AvazuFields {
			if in[i].Fields[f] != out[i].Fields[f] {
				t.Fatalf("row %d field %s mismatch", i, f)
			}
		}
	}
	// Bad click value.
	bad := strings.Replace(buf.String(), "", "", 1)
	_ = bad
	if _, err := ParseImpressions(strings.NewReader("click\n2\n"), 0); err == nil {
		t.Fatal("expected schema error")
	}
}

func TestFitFTRLOnStreamRecoversSparsity(t *testing.T) {
	s, err := NewAvazuStream(AvazuConfig{Count: 0, HashDim: 128, ActiveWeights: 21, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	w, loss, err := FitFTRLOnStream(s, 40000, 0.1, 60)
	if err != nil {
		t.Fatal(err)
	}
	// The paper reports logistic loss 0.420 (n=128) / 0.406 (n=1024).
	if loss < 0.3 || loss > 0.55 {
		t.Fatalf("average loss = %v, want in the paper's ballpark", loss)
	}
	nz := 0
	for _, wi := range w {
		if wi != 0 {
			nz++
		}
	}
	// The learned vector should be clearly sparse (paper: ~21 of 128) and
	// must retain the hidden model's true coordinates.
	if nz == 0 || nz > 45 {
		t.Fatalf("learned nonzeros = %d, want sparse and non-trivial", nz)
	}
	surviving := 0
	for i, ti := range s.Truth() {
		if ti != 0 && w[i] != 0 {
			surviving++
		}
	}
	if surviving < 20 {
		t.Fatalf("only %d/22 true coordinates survived the fit", surviving)
	}
	if _, _, err := FitFTRLOnStream(s, 0, 0.1, 1); err == nil {
		t.Fatal("expected count error")
	}
}
