package dataset

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// openFixture opens a checked-in CSV under testdata/.
func openFixture(t *testing.T, name string) *os.File {
	t.Helper()
	f, err := os.Open(filepath.Join("testdata", name))
	if err != nil {
		t.Fatalf("open fixture: %v", err)
	}
	t.Cleanup(func() { f.Close() })
	return f
}

func TestFixtureListings(t *testing.T) {
	ls, err := ParseListings(openFixture(t, "airbnb_ok.csv"), 0)
	if err != nil {
		t.Fatalf("ParseListings ok fixture: %v", err)
	}
	if len(ls) != 3 {
		t.Fatalf("got %d listings, want 3", len(ls))
	}
	if ls[0].City != "NYC" || ls[0].LogPrice != 5.01 || len(ls[0].Amenities) != 3 {
		t.Errorf("first listing mismatch: %+v", ls[0])
	}
	if ls[2].Amenities != nil {
		t.Errorf("empty amenities cell should parse to nil, got %v", ls[2].Amenities)
	}
	if _, err := FeaturizeListing(&ls[0]); err != nil {
		t.Errorf("featurize parsed listing: %v", err)
	}

	if _, err := ParseListings(openFixture(t, "airbnb_badnum.csv"), 0); !errors.Is(err, ErrBadRow) {
		t.Errorf("bad number: err = %v, want ErrBadRow", err)
	}
	if _, err := ParseListings(openFixture(t, "airbnb_short.csv"), 0); !errors.Is(err, ErrBadRow) {
		t.Errorf("short row: err = %v, want ErrBadRow", err)
	}
	// The limit can stop parsing before a malformed tail row is reached.
	if ls, err := ParseListings(openFixture(t, "airbnb_badnum.csv"), 1); err != nil || len(ls) != 1 {
		t.Errorf("limit 1 over bad fixture: got %d listings, err %v", len(ls), err)
	}
}

func TestFixtureImpressions(t *testing.T) {
	imps, err := ParseImpressions(openFixture(t, "avazu_ok.csv"), 0)
	if err != nil {
		t.Fatalf("ParseImpressions ok fixture: %v", err)
	}
	if len(imps) != 2 {
		t.Fatalf("got %d impressions, want 2", len(imps))
	}
	if !imps[0].Click || imps[1].Click {
		t.Errorf("click labels mismatch: %v %v", imps[0].Click, imps[1].Click)
	}
	if imps[0].Fields["device_model"] != "device_model_7c" {
		t.Errorf("field mismatch: %q", imps[0].Fields["device_model"])
	}

	if _, err := ParseImpressions(openFixture(t, "avazu_badclick.csv"), 0); !errors.Is(err, ErrBadRow) {
		t.Errorf("bad click: err = %v, want ErrBadRow", err)
	}
	if _, err := ParseImpressions(openFixture(t, "avazu_short.csv"), 0); !errors.Is(err, ErrBadRow) {
		t.Errorf("short row: err = %v, want ErrBadRow", err)
	}
}

func TestFixtureRatings(t *testing.T) {
	rs, err := ParseRatings(openFixture(t, "ratings_ok.csv"), 0)
	if err != nil {
		t.Fatalf("ParseRatings ok fixture: %v", err)
	}
	if len(rs) != 4 {
		t.Fatalf("got %d ratings, want 4", len(rs))
	}
	if rs[0].UserID != 1 || rs[0].MovieID != 31 || rs[0].Rating != 2.5 || rs[0].Timestamp != 1260759144 {
		t.Errorf("first rating mismatch: %+v", rs[0])
	}

	if _, err := ParseRatings(openFixture(t, "ratings_badnum.csv"), 0); !errors.Is(err, ErrBadRow) {
		t.Errorf("bad number: err = %v, want ErrBadRow", err)
	}
	if _, err := ParseRatings(openFixture(t, "ratings_short.csv"), 0); !errors.Is(err, ErrBadRow) {
		t.Errorf("short row: err = %v, want ErrBadRow", err)
	}
}

func TestParseFloatRejectsNonFinite(t *testing.T) {
	csv := "userId,movieId,rating,timestamp\n1,2,NaN,100\n"
	if _, err := ParseRatings(strings.NewReader(csv), 0); !errors.Is(err, ErrBadRow) {
		t.Errorf("NaN rating: err = %v, want ErrBadRow", err)
	}
	csv = "userId,movieId,rating,timestamp\n1,2,+Inf,100\n"
	if _, err := ParseRatings(strings.NewReader(csv), 0); !errors.Is(err, ErrBadRow) {
		t.Errorf("Inf rating: err = %v, want ErrBadRow", err)
	}
}
