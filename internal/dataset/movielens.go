package dataset

import (
	"fmt"
	"io"
	"sort"
	"strconv"

	"datamarket/internal/linalg"
	"datamarket/internal/randx"
)

// Rating is one row of a MovieLens-style ratings table
// (userId, movieId, rating, timestamp).
type Rating struct {
	UserID    int64
	MovieID   int64
	Rating    float64 // 0.5–5.0 in half-star steps
	Timestamp int64
}

// ParseRatings reads a MovieLens ratings.csv (header:
// userId,movieId,rating,timestamp). limit > 0 caps the number of rows.
func ParseRatings(r io.Reader, limit int) ([]Rating, error) {
	t, err := newCSVTable(r)
	if err != nil {
		return nil, err
	}
	cols, err := t.require("userId", "movieId", "rating", "timestamp")
	if err != nil {
		return nil, err
	}
	var out []Rating
	line := 1
	for {
		rec, err := t.next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("dataset: ratings line %d: %w", line+1, err)
		}
		line++
		uid, err := parseInt(rec[cols[0]], "userId", line)
		if err != nil {
			return nil, err
		}
		mid, err := parseInt(rec[cols[1]], "movieId", line)
		if err != nil {
			return nil, err
		}
		val, err := parseFloat(rec[cols[2]], "rating", line)
		if err != nil {
			return nil, err
		}
		ts, err := parseInt(rec[cols[3]], "timestamp", line)
		if err != nil {
			return nil, err
		}
		out = append(out, Rating{UserID: uid, MovieID: mid, Rating: val, Timestamp: ts})
		if limit > 0 && len(out) >= limit {
			break
		}
	}
	return out, nil
}

// WriteRatings emits ratings in the MovieLens CSV schema.
func WriteRatings(w io.Writer, ratings []Rating) error {
	rows := make([][]string, len(ratings))
	for i, r := range ratings {
		rows[i] = []string{
			strconv.FormatInt(r.UserID, 10),
			strconv.FormatInt(r.MovieID, 10),
			strconv.FormatFloat(r.Rating, 'g', -1, 64),
			strconv.FormatInt(r.Timestamp, 10),
		}
	}
	return writeCSV(w, []string{"userId", "movieId", "rating", "timestamp"}, rows)
}

// MovieLensConfig parameterizes the synthetic rating corpus. The defaults
// of each field are validated, not silently substituted.
type MovieLensConfig struct {
	// Users is the number of distinct raters (the data owners).
	Users int
	// Movies is the catalogue size.
	Movies int
	// RatingsPerUser is the mean number of ratings per user; actual
	// counts vary by ±50%.
	RatingsPerUser int
	// Seed drives the generator.
	Seed uint64
}

// GenerateRatings synthesizes a rating corpus in the MovieLens schema:
// per-user mean preferences around 3.5 stars, per-movie quality offsets,
// half-star quantization, and timestamps spanning the 1995–2015 window of
// the real dataset.
func GenerateRatings(cfg MovieLensConfig) ([]Rating, error) {
	if cfg.Users <= 0 || cfg.Movies <= 0 || cfg.RatingsPerUser <= 0 {
		return nil, fmt.Errorf("dataset: MovieLens config needs positive Users/Movies/RatingsPerUser, got %+v", cfg)
	}
	r := randx.New(cfg.Seed)
	// Per-movie quality and per-user bias.
	quality := make([]float64, cfg.Movies)
	for i := range quality {
		quality[i] = r.Normal(0, 0.5)
	}
	const (
		tsLo = 789652009  // 1995-01-09, the real dataset's first rating
		tsHi = 1427784002 // 2015-03-31, its last
	)
	var out []Rating
	for u := 0; u < cfg.Users; u++ {
		bias := r.Normal(0, 0.4)
		count := cfg.RatingsPerUser/2 + r.Intn(cfg.RatingsPerUser+1)
		if count < 1 {
			count = 1
		}
		for k := 0; k < count; k++ {
			m := r.Intn(cfg.Movies)
			raw := 3.5 + bias + quality[m] + r.Normal(0, 0.7)
			// Quantize to half stars in [0.5, 5].
			stars := float64(int(raw*2+0.5)) / 2
			if stars < 0.5 {
				stars = 0.5
			}
			if stars > 5 {
				stars = 5
			}
			out = append(out, Rating{
				UserID:    int64(u + 1),
				MovieID:   int64(m + 1),
				Rating:    stars,
				Timestamp: int64(r.Intn(tsHi-tsLo)) + tsLo,
			})
		}
	}
	return out, nil
}

// UserProfile summarizes one data owner derived from her ratings.
type UserProfile struct {
	UserID int64
	Count  int
	Mean   float64
}

// UserProfiles aggregates ratings per user, sorted by user id — the
// owner population of the §V-A data market (owner value = mean rating,
// owner range = the 4.5-star span of the rating scale).
func UserProfiles(ratings []Rating) []UserProfile {
	agg := make(map[int64]*UserProfile)
	for _, r := range ratings {
		p := agg[r.UserID]
		if p == nil {
			p = &UserProfile{UserID: r.UserID}
			agg[r.UserID] = p
		}
		p.Count++
		p.Mean += r.Rating
	}
	out := make([]UserProfile, 0, len(agg))
	for _, p := range agg {
		p.Mean /= float64(p.Count)
		out = append(out, *p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].UserID < out[j].UserID })
	return out
}

// RatingScaleRange is the span of the MovieLens rating scale (0.5–5.0),
// the per-owner sensitivity Δ used in leakage quantification.
const RatingScaleRange = 4.5

// OwnerValues converts user profiles into the (value, range) pairs the
// market substrate consumes.
func OwnerValues(profiles []UserProfile) (values, ranges linalg.Vector) {
	values = make(linalg.Vector, len(profiles))
	ranges = make(linalg.Vector, len(profiles))
	for i, p := range profiles {
		values[i] = p.Mean
		ranges[i] = RatingScaleRange
	}
	return values, ranges
}
