package dataset

import (
	"fmt"
	"io"
	"strconv"
	"strings"

	"datamarket/internal/linalg"
	"datamarket/internal/randx"
)

// Listing is one Airbnb-style booking record (§V-B). LogPrice is the
// natural log of the nightly price — the target variable of the hedonic
// regression, exactly as in the Kaggle "Airbnb listings in major US
// cities" table the paper uses.
type Listing struct {
	LogPrice           float64
	City               string
	PropertyType       string
	RoomType           string
	CancellationPolicy string
	InstantBookable    bool
	Accommodates       float64
	Bathrooms          float64
	Bedrooms           float64
	Beds               float64
	HostResponseRate   float64 // 0–1
	ReviewScore        float64 // 0–100
	NumberOfReviews    float64
	OccupancyRate      float64 // 0–1
	CleaningFee        float64
	MinimumNights      float64
	Amenities          []string
}

// Fixed vocabularies of the six-city dataset. Unknown values fall back to
// the zero encoding (no one-hot bit set), mirroring pandas categoricals
// over a fixed category list.
var (
	// AirbnbCities are the six U.S. cities in the dataset.
	AirbnbCities = []string{"NYC", "LA", "SF", "DC", "Chicago", "Boston"}
	// AirbnbPropertyTypes is the coarse property taxonomy.
	AirbnbPropertyTypes = []string{"Apartment", "House", "Condominium", "Other"}
	// AirbnbRoomTypes are the three room categories.
	AirbnbRoomTypes = []string{"Entire home/apt", "Private room", "Shared room"}
	// AirbnbCancellationPolicies are the three policy levels.
	AirbnbCancellationPolicies = []string{"flexible", "moderate", "strict"}
	// AirbnbAmenities are the twelve amenity flags we encode.
	AirbnbAmenities = []string{
		"Wireless Internet", "Kitchen", "Heating", "Air conditioning",
		"Washer", "Dryer", "Free parking", "TV", "Elevator", "Gym",
		"Pool", "Breakfast",
	}
)

// AirbnbFeatureDim is the dimension of the featurized listing: 10 numeric
// fields, 6+4+3+3 one-hot categories, 1 boolean, 12 amenity flags, and 16
// interaction features — n = 55, the dimension the paper reports.
const AirbnbFeatureDim = 55

// airbnbInteractions indexes into the first 39 base features; products of
// these pairs are appended as "interaction features to enhance model
// capacity" (§V-B). Indices 0–9 are the numeric fields in struct order.
var airbnbInteractions = [][2]int{
	{0, 2}, {0, 1}, {0, 3}, {2, 3}, {2, 1}, {6, 5}, {4, 5}, {7, 6},
	{8, 0}, {9, 7}, {0, 0}, {2, 2}, {5, 7}, {6, 9}, {1, 3}, {8, 2},
}

// FeaturizeListing maps a listing to its n = 55 feature vector.
func FeaturizeListing(l *Listing) (linalg.Vector, error) {
	base := make(linalg.Vector, 0, 39)
	base = append(base,
		l.Accommodates, l.Bathrooms, l.Bedrooms, l.Beds,
		l.HostResponseRate, l.ReviewScore/100, l.NumberOfReviews/100,
		l.OccupancyRate, l.CleaningFee/100, l.MinimumNights/10,
	)
	base = append(base, oneHot(l.City, AirbnbCities)...)
	base = append(base, oneHot(l.PropertyType, AirbnbPropertyTypes)...)
	base = append(base, oneHot(l.RoomType, AirbnbRoomTypes)...)
	base = append(base, oneHot(l.CancellationPolicy, AirbnbCancellationPolicies)...)
	if l.InstantBookable {
		base = append(base, 1)
	} else {
		base = append(base, 0)
	}
	amen := make(map[string]bool, len(l.Amenities))
	for _, a := range l.Amenities {
		amen[a] = true
	}
	for _, a := range AirbnbAmenities {
		if amen[a] {
			base = append(base, 1)
		} else {
			base = append(base, 0)
		}
	}
	if len(base) != 39 {
		return nil, fmt.Errorf("dataset: internal error: %d base features, want 39", len(base))
	}
	out := make(linalg.Vector, 0, AirbnbFeatureDim)
	out = append(out, base...)
	for _, p := range airbnbInteractions {
		out = append(out, base[p[0]]*base[p[1]])
	}
	if len(out) != AirbnbFeatureDim {
		return nil, fmt.Errorf("dataset: internal error: %d features, want %d", len(out), AirbnbFeatureDim)
	}
	return out, nil
}

func oneHot(value string, vocab []string) linalg.Vector {
	v := make(linalg.Vector, len(vocab))
	for i, w := range vocab {
		if value == w {
			v[i] = 1
			break
		}
	}
	return v
}

// AirbnbConfig parameterizes the synthetic listing generator.
type AirbnbConfig struct {
	// Count is the number of listings (the paper's table has 74,111).
	Count int
	// Seed drives the generator.
	Seed uint64
	// NoiseStd is the residual std of log price around the hedonic model;
	// the paper's OLS refit reports test MSE 0.226, i.e. std ≈ 0.475.
	NoiseStd float64
	// Segments is the number of listing archetypes. Real listing tables
	// are heavily clustered (the same city/room-type/amenity archetypes
	// recur), which is what makes online contextual pricing converge at
	// the paper's horizon; 0 means the default of 60. Set Segments < 0
	// for fully independent attributes (the isotropic stress case).
	Segments int
	// PerturbProb is the per-field probability of deviating from the
	// segment archetype (default 0.15 when 0).
	PerturbProb float64
}

// airbnbTruth returns the ground-truth hedonic coefficients (over the 55
// features) and intercept used by the generator. The signs follow the
// hedonic pricing literature: capacity, quality, and hot cities raise log
// price; shared rooms lower it.
func airbnbTruth(r *randx.RNG) (coef linalg.Vector, intercept float64) {
	coef = make(linalg.Vector, AirbnbFeatureDim)
	// Numeric block.
	numeric := []float64{0.09, 0.08, 0.12, 0.03, 0.05, 0.25, 0.10, 0.15, 0.20, -0.04}
	copy(coef[0:10], numeric)
	// Cities: NYC, LA, SF, DC, Chicago, Boston.
	copy(coef[10:16], []float64{0.35, 0.20, 0.45, 0.15, 0.05, 0.18})
	// Property types.
	copy(coef[16:20], []float64{0.05, 0.12, 0.10, 0.0})
	// Room types: entire, private, shared.
	copy(coef[20:23], []float64{0.55, 0.0, -0.35})
	// Cancellation policies.
	copy(coef[23:26], []float64{0.0, 0.02, 0.06})
	// Instant bookable.
	coef[26] = 0.03
	// Amenities.
	copy(coef[27:39], []float64{0.04, 0.05, 0.02, 0.08, 0.04, 0.04, 0.06, 0.03, 0.05, 0.06, 0.09, 0.02})
	// Interactions: small effects.
	for i := 39; i < AirbnbFeatureDim; i++ {
		coef[i] = r.Normal(0, 0.01)
	}
	return coef, 3.6 // exp(3.6) ≈ $37 base nightly price
}

// GenerateListings synthesizes listings whose log prices follow a hidden
// hedonic model plus Gaussian noise. It returns the listings and the
// ground-truth (coefficients, intercept) for tests; experiment code
// re-learns them with OLS exactly as the paper does with sklearn.
func GenerateListings(cfg AirbnbConfig) ([]Listing, linalg.Vector, float64, error) {
	if cfg.Count <= 0 {
		return nil, nil, 0, fmt.Errorf("dataset: Airbnb config needs positive Count, got %d", cfg.Count)
	}
	if cfg.NoiseStd < 0 {
		return nil, nil, 0, fmt.Errorf("dataset: negative NoiseStd %g", cfg.NoiseStd)
	}
	r := randx.New(cfg.Seed)
	coef, intercept := airbnbTruth(r)
	segments := cfg.Segments
	if segments == 0 {
		segments = 60
	}
	perturb := cfg.PerturbProb
	if perturb == 0 {
		perturb = 0.15
	}
	var bases []Listing
	for i := 0; i < segments; i++ {
		bases = append(bases, randomListing(r))
	}
	out := make([]Listing, cfg.Count)
	for i := range out {
		var l Listing
		if segments > 0 {
			l = bases[r.Intn(segments)]
			l.Amenities = append([]string(nil), l.Amenities...)
			perturbListing(r, &l, perturb)
		} else {
			l = randomListing(r)
		}
		x, err := FeaturizeListing(&l)
		if err != nil {
			return nil, nil, 0, err
		}
		l.LogPrice = x.Dot(coef) + intercept + r.Normal(0, cfg.NoiseStd)
		out[i] = l
	}
	return out, coef, intercept, nil
}

// randomListing draws a listing with fully independent attributes.
func randomListing(r *randx.RNG) Listing {
	// City mix roughly matching the dataset (NYC and LA dominate).
	l := Listing{
		City:               AirbnbCities[weightedIndex(r, []float64{0.44, 0.30, 0.09, 0.08, 0.05, 0.04})],
		PropertyType:       AirbnbPropertyTypes[weightedIndex(r, []float64{0.65, 0.2, 0.08, 0.07})],
		RoomType:           AirbnbRoomTypes[weightedIndex(r, []float64{0.55, 0.4, 0.05})],
		CancellationPolicy: AirbnbCancellationPolicies[r.Intn(3)],
		InstantBookable:    r.Float64() < 0.25,
		Accommodates:       float64(1 + r.Intn(8)),
		Bathrooms:          0.5 + 0.5*float64(r.Intn(5)),
		Bedrooms:           float64(r.Intn(5)),
		Beds:               float64(1 + r.Intn(6)),
		HostResponseRate:   clamp01(r.Uniform(0.5, 1.1)),
		ReviewScore:        clampRange(r.Normal(92, 8), 20, 100),
		NumberOfReviews:    float64(r.Intn(300)),
		OccupancyRate:      clamp01(r.Uniform(0.1, 1.0)),
		CleaningFee:        float64(r.Intn(150)),
		MinimumNights:      float64(1 + r.Intn(7)),
	}
	for _, a := range AirbnbAmenities {
		if r.Float64() < 0.55 {
			l.Amenities = append(l.Amenities, a)
		}
	}
	return l
}

// perturbListing re-randomizes each field independently with probability p,
// producing local variation around a segment archetype.
func perturbListing(r *randx.RNG, l *Listing, p float64) {
	fresh := randomListing(r)
	if r.Float64() < p {
		l.City = fresh.City
	}
	if r.Float64() < p {
		l.PropertyType = fresh.PropertyType
	}
	if r.Float64() < p {
		l.RoomType = fresh.RoomType
	}
	if r.Float64() < p {
		l.CancellationPolicy = fresh.CancellationPolicy
	}
	if r.Float64() < p {
		l.InstantBookable = fresh.InstantBookable
	}
	if r.Float64() < p {
		l.Accommodates = fresh.Accommodates
	}
	if r.Float64() < p {
		l.Bathrooms = fresh.Bathrooms
	}
	if r.Float64() < p {
		l.Bedrooms = fresh.Bedrooms
	}
	if r.Float64() < p {
		l.Beds = fresh.Beds
	}
	if r.Float64() < p {
		l.HostResponseRate = fresh.HostResponseRate
	}
	if r.Float64() < p {
		l.ReviewScore = fresh.ReviewScore
	}
	if r.Float64() < p {
		l.NumberOfReviews = fresh.NumberOfReviews
	}
	if r.Float64() < p {
		l.OccupancyRate = fresh.OccupancyRate
	}
	if r.Float64() < p {
		l.CleaningFee = fresh.CleaningFee
	}
	if r.Float64() < p {
		l.MinimumNights = fresh.MinimumNights
	}
	if r.Float64() < p {
		l.Amenities = fresh.Amenities
	}
}

func weightedIndex(r *randx.RNG, weights []float64) int {
	var total float64
	for _, w := range weights {
		total += w
	}
	u := r.Float64() * total
	for i, w := range weights {
		u -= w
		if u < 0 {
			return i
		}
	}
	return len(weights) - 1
}

func clamp01(x float64) float64 { return clampRange(x, 0, 1) }

func clampRange(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

var airbnbHeader = []string{
	"log_price", "city", "property_type", "room_type", "cancellation_policy",
	"instant_bookable", "accommodates", "bathrooms", "bedrooms", "beds",
	"host_response_rate", "review_scores_rating", "number_of_reviews",
	"occupancy_rate", "cleaning_fee", "minimum_nights", "amenities",
}

// WriteListings emits listings in the CSV schema above (amenities are
// pipe-separated inside one cell, as in the Kaggle export's JSON-ish blob).
func WriteListings(w io.Writer, listings []Listing) error {
	rows := make([][]string, len(listings))
	for i, l := range listings {
		rows[i] = []string{
			strconv.FormatFloat(l.LogPrice, 'g', -1, 64),
			l.City, l.PropertyType, l.RoomType, l.CancellationPolicy,
			strconv.FormatBool(l.InstantBookable),
			strconv.FormatFloat(l.Accommodates, 'g', -1, 64),
			strconv.FormatFloat(l.Bathrooms, 'g', -1, 64),
			strconv.FormatFloat(l.Bedrooms, 'g', -1, 64),
			strconv.FormatFloat(l.Beds, 'g', -1, 64),
			strconv.FormatFloat(l.HostResponseRate, 'g', -1, 64),
			strconv.FormatFloat(l.ReviewScore, 'g', -1, 64),
			strconv.FormatFloat(l.NumberOfReviews, 'g', -1, 64),
			strconv.FormatFloat(l.OccupancyRate, 'g', -1, 64),
			strconv.FormatFloat(l.CleaningFee, 'g', -1, 64),
			strconv.FormatFloat(l.MinimumNights, 'g', -1, 64),
			strings.Join(l.Amenities, "|"),
		}
	}
	return writeCSV(w, airbnbHeader, rows)
}

// ParseListings reads the CSV schema written by WriteListings. limit > 0
// caps the number of rows.
func ParseListings(r io.Reader, limit int) ([]Listing, error) {
	t, err := newCSVTable(r)
	if err != nil {
		return nil, err
	}
	cols, err := t.require(airbnbHeader...)
	if err != nil {
		return nil, err
	}
	var out []Listing
	line := 1
	for {
		rec, err := t.next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("dataset: listings line %d: %w", line+1, err)
		}
		line++
		var l Listing
		if l.LogPrice, err = parseFloat(rec[cols[0]], "log_price", line); err != nil {
			return nil, err
		}
		l.City = rec[cols[1]]
		l.PropertyType = rec[cols[2]]
		l.RoomType = rec[cols[3]]
		l.CancellationPolicy = rec[cols[4]]
		l.InstantBookable = rec[cols[5]] == "true"
		nums := []*float64{
			&l.Accommodates, &l.Bathrooms, &l.Bedrooms, &l.Beds,
			&l.HostResponseRate, &l.ReviewScore, &l.NumberOfReviews,
			&l.OccupancyRate, &l.CleaningFee, &l.MinimumNights,
		}
		for k, dst := range nums {
			v, err := parseFloat(rec[cols[6+k]], airbnbHeader[6+k], line)
			if err != nil {
				return nil, err
			}
			*dst = v
		}
		if cell := rec[cols[16]]; cell != "" {
			l.Amenities = strings.Split(cell, "|")
		}
		out = append(out, l)
		if limit > 0 && len(out) >= limit {
			break
		}
	}
	return out, nil
}
