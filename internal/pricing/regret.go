package pricing

import (
	"fmt"

	"datamarket/internal/stats"
)

// SingleRoundRegret evaluates the paper's regret function (Eq. 1) for one
// round with known market value v, reserve price q, posted price p, and the
// implied sale outcome:
//
//	R = 0                       if q > v   (no one could have sold it)
//	R = v − p·1{p ≤ v}          otherwise
//
// This is the piecewise, asymmetric function of Fig. 1: underpricing by s
// costs s, while overpricing by any amount costs the full value v.
func SingleRoundRegret(v, q, p float64) float64 {
	if q > v {
		return 0
	}
	if p <= v {
		return v - p
	}
	return v
}

// Sold reports whether a posted price p sells against market value v.
func Sold(p, v float64) bool { return p <= v }

// RoundRecord captures everything the evaluation needs about one round.
type RoundRecord struct {
	MarketValue float64
	Reserve     float64
	Posted      float64
	Decision    Decision
	Sold        bool
	Regret      float64
	Revenue     float64
}

// Tracker accumulates the per-round series that the paper's tables and
// figures are built from: cumulative regret (Fig. 4), cumulative market
// value for regret ratios (Fig. 5), revenue, and Table I-style summaries.
type Tracker struct {
	//lint:ignore snapshotfields the raw per-round series is deliberately not snapshotted (unbounded; TrackerState keeps aggregates only, see RestoreTracker)
	records []RoundRecord

	cumRegret  float64
	cumValue   float64
	cumRevenue float64

	regretStats  *stats.Online
	valueStats   *stats.Online
	postedStats  *stats.Online
	reserveStats *stats.Online

	keepRecords bool //lint:ignore snapshotfields restore policy, not state: RestoreTracker always resumes in aggregate-only mode
}

// NewTracker returns a tracker. If keepRecords is true every RoundRecord
// is retained (needed for curves); otherwise only aggregates are kept,
// which keeps memory O(1) for very long runs.
func NewTracker(keepRecords bool) *Tracker {
	return &Tracker{
		regretStats:  stats.NewOnline(),
		valueStats:   stats.NewOnline(),
		postedStats:  stats.NewOnline(),
		reserveStats: stats.NewOnline(),
		keepRecords:  keepRecords,
	}
}

// Record folds one completed round into the tracker. For skip rounds pass
// the quote with Decision == DecisionSkip; the posted price is recorded as
// the reserve (nothing was offered, and the regret definition's first
// branch applies whenever q > v).
func (t *Tracker) Record(v, reserve float64, quote Quote) RoundRecord {
	posted := quote.Price
	sold := false
	switch quote.Decision {
	case DecisionSkip:
		posted = reserve
	default:
		sold = Sold(quote.Price, v)
	}
	r := RoundRecord{
		MarketValue: v,
		Reserve:     reserve,
		Posted:      posted,
		Decision:    quote.Decision,
		Sold:        sold,
		Regret:      SingleRoundRegret(v, reserve, posted),
	}
	if sold {
		r.Revenue = posted
	}
	t.cumRegret += r.Regret
	t.cumValue += v
	t.cumRevenue += r.Revenue
	t.regretStats.Add(r.Regret)
	t.valueStats.Add(v)
	t.postedStats.Add(posted)
	t.reserveStats.Add(reserve)
	if t.keepRecords {
		t.records = append(t.records, r)
	}
	return r
}

// Rounds returns the number of recorded rounds.
func (t *Tracker) Rounds() int { return t.regretStats.Count() }

// CumulativeRegret returns Σ R_t so far.
func (t *Tracker) CumulativeRegret() float64 { return t.cumRegret }

// CumulativeValue returns Σ v_t so far.
func (t *Tracker) CumulativeValue() float64 { return t.cumValue }

// CumulativeRevenue returns the broker's total earned revenue.
func (t *Tracker) CumulativeRevenue() float64 { return t.cumRevenue }

// RegretRatio returns Σ R_t / Σ v_t, the headline metric of Fig. 5.
func (t *Tracker) RegretRatio() float64 {
	if t.cumValue == 0 {
		return 0
	}
	return t.cumRegret / t.cumValue
}

// Records returns the retained per-round records (nil unless keepRecords).
func (t *Tracker) Records() []RoundRecord { return t.records }

// RegretCurve returns the cumulative regret after each round (requires
// keepRecords).
func (t *Tracker) RegretCurve() []float64 {
	out := make([]float64, len(t.records))
	var s float64
	for i, r := range t.records {
		s += r.Regret
		out[i] = s
	}
	return out
}

// RatioCurve returns the regret ratio after each round (requires
// keepRecords).
func (t *Tracker) RatioCurve() []float64 {
	out := make([]float64, len(t.records))
	var sr, sv float64
	for i, r := range t.records {
		sr += r.Regret
		sv += r.MarketValue
		if sv > 0 {
			out[i] = sr / sv
		}
	}
	return out
}

// TrackerState is the serializable aggregate state of a Tracker: the
// cumulative sums plus the four Welford accumulators behind Table().
// Retained per-round records (keepRecords) are deliberately not carried —
// they are unbounded, and every serving-stack tracker runs with
// keepRecords off. RestoreTracker therefore always rebuilds an
// aggregates-only tracker.
type TrackerState struct {
	CumRegret  float64 `json:"cum_regret"`
	CumValue   float64 `json:"cum_value"`
	CumRevenue float64 `json:"cum_revenue"`

	Regret  stats.OnlineState `json:"regret"`
	Value   stats.OnlineState `json:"value"`
	Posted  stats.OnlineState `json:"posted"`
	Reserve stats.OnlineState `json:"reserve"`
}

// State captures the tracker's aggregates for durable storage.
func (t *Tracker) State() TrackerState {
	return TrackerState{
		CumRegret:  t.cumRegret,
		CumValue:   t.cumValue,
		CumRevenue: t.cumRevenue,
		Regret:     t.regretStats.State(),
		Value:      t.valueStats.State(),
		Posted:     t.postedStats.State(),
		Reserve:    t.reserveStats.State(),
	}
}

// RestoreTracker rebuilds an aggregates-only tracker from a captured
// state. The four accumulators must agree on the round count — a state
// violating that was not produced by State.
func RestoreTracker(s *TrackerState) (*Tracker, error) {
	if s == nil {
		return nil, fmt.Errorf("pricing: nil tracker state")
	}
	for _, v := range [...]float64{s.CumRegret, s.CumValue, s.CumRevenue} {
		if !isFinite(v) {
			return nil, fmt.Errorf("pricing: tracker state cumulative %g invalid, want finite", v)
		}
	}
	t := NewTracker(false)
	var err error
	if t.regretStats, err = stats.NewOnlineFromState(s.Regret); err != nil {
		return nil, fmt.Errorf("pricing: tracker regret stats: %w", err)
	}
	if t.valueStats, err = stats.NewOnlineFromState(s.Value); err != nil {
		return nil, fmt.Errorf("pricing: tracker value stats: %w", err)
	}
	if t.postedStats, err = stats.NewOnlineFromState(s.Posted); err != nil {
		return nil, fmt.Errorf("pricing: tracker posted stats: %w", err)
	}
	if t.reserveStats, err = stats.NewOnlineFromState(s.Reserve); err != nil {
		return nil, fmt.Errorf("pricing: tracker reserve stats: %w", err)
	}
	n := t.regretStats.Count()
	if t.valueStats.Count() != n || t.postedStats.Count() != n || t.reserveStats.Count() != n {
		return nil, fmt.Errorf("pricing: tracker state accumulators disagree on round count")
	}
	t.cumRegret, t.cumValue, t.cumRevenue = s.CumRegret, s.CumValue, s.CumRevenue
	return t, nil
}

// TableRow is one row of a Table I-style statistics table: per-round means
// and standard deviations in the paper's "mean (std)" format.
type TableRow struct {
	MarketValue stats.Summary
	Reserve     stats.Summary
	Posted      stats.Summary
	Regret      stats.Summary
}

// Table returns the Table I row for this run.
func (t *Tracker) Table() TableRow {
	return TableRow{
		MarketValue: onlineSummary(t.valueStats),
		Reserve:     onlineSummary(t.reserveStats),
		Posted:      onlineSummary(t.postedStats),
		Regret:      onlineSummary(t.regretStats),
	}
}

func onlineSummary(o *stats.Online) stats.Summary {
	return stats.Summary{
		Count: o.Count(), Mean: o.Mean(), Std: o.Std(),
		Min: o.Min(), Max: o.Max(),
	}
}
