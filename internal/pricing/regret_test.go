package pricing

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSingleRoundRegretShape(t *testing.T) {
	v, q := 10.0, 4.0
	// Posted below value: regret is the underpricing gap (Fig. 1 left).
	if got := SingleRoundRegret(v, q, 7); got != 3 {
		t.Fatalf("underpricing regret = %v, want 3", got)
	}
	// Posted exactly at value: zero regret.
	if got := SingleRoundRegret(v, q, 10); got != 0 {
		t.Fatalf("exact price regret = %v, want 0", got)
	}
	// Posted above value: full value lost (Fig. 1 cliff).
	if got := SingleRoundRegret(v, q, 10.0001); got != v {
		t.Fatalf("overpricing regret = %v, want %v", got, v)
	}
	// Reserve above value: no regret regardless of price.
	if got := SingleRoundRegret(3, 4, 100); got != 0 {
		t.Fatalf("q>v regret = %v, want 0", got)
	}
}

// Lemma 1 as a property: for every (v, q, p'), pricing with the reserve
// constraint p = max(q, p') never increases the single-round regret
// relative to the unconstrained regret of p'.
func TestLemma1Property(t *testing.T) {
	f := func(rv, rq, rp float64) bool {
		v := math.Mod(math.Abs(rv), 1000)
		q := math.Mod(math.Abs(rq), 1000)
		pPrime := math.Mod(math.Abs(rp), 1000)
		p := math.Max(q, pPrime)
		withReserve := SingleRoundRegret(v, q, p)
		// Unconstrained regret per Eq. (7): no first branch.
		var unconstrained float64
		if pPrime <= v {
			unconstrained = v - pPrime
		} else {
			unconstrained = v
		}
		return withReserve <= unconstrained+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

// The regret cliff: approaching the market value from below decreases
// regret monotonically; any overshoot jumps to the full value.
func TestRegretMonotoneBelowValue(t *testing.T) {
	v, q := 5.0, 1.0
	prev := math.Inf(1)
	for p := 0.0; p <= v; p += 0.25 {
		r := SingleRoundRegret(v, q, p)
		if r > prev {
			t.Fatalf("regret not monotone below value at p=%v", p)
		}
		prev = r
	}
	if r := SingleRoundRegret(v, q, v+0.01); r != v {
		t.Fatalf("cliff regret = %v", r)
	}
}

func TestTrackerAccounting(t *testing.T) {
	tr := NewTracker(true)
	// Round 1: sold at 4 against value 5 → regret 1, revenue 4.
	rec := tr.Record(5, 1, Quote{Price: 4, Decision: DecisionConservative})
	if !rec.Sold || rec.Regret != 1 || rec.Revenue != 4 {
		t.Fatalf("rec = %+v", rec)
	}
	// Round 2: overpriced at 7 against value 5 → no sale, regret 5.
	rec = tr.Record(5, 1, Quote{Price: 7, Decision: DecisionExploratory})
	if rec.Sold || rec.Regret != 5 || rec.Revenue != 0 {
		t.Fatalf("rec = %+v", rec)
	}
	// Round 3: skip with q > v → regret 0.
	rec = tr.Record(5, 9, Quote{Decision: DecisionSkip})
	if rec.Sold || rec.Regret != 0 {
		t.Fatalf("skip rec = %+v", rec)
	}
	if tr.Rounds() != 3 {
		t.Fatalf("rounds = %d", tr.Rounds())
	}
	if tr.CumulativeRegret() != 6 || tr.CumulativeValue() != 15 || tr.CumulativeRevenue() != 4 {
		t.Fatalf("cumulative: %v %v %v", tr.CumulativeRegret(), tr.CumulativeValue(), tr.CumulativeRevenue())
	}
	if math.Abs(tr.RegretRatio()-0.4) > 1e-12 {
		t.Fatalf("ratio = %v", tr.RegretRatio())
	}
	curve := tr.RegretCurve()
	if len(curve) != 3 || curve[0] != 1 || curve[1] != 6 || curve[2] != 6 {
		t.Fatalf("curve = %v", curve)
	}
	rc := tr.RatioCurve()
	if math.Abs(rc[2]-0.4) > 1e-12 {
		t.Fatalf("ratio curve = %v", rc)
	}
	row := tr.Table()
	if row.MarketValue.Count != 3 || math.Abs(row.MarketValue.Mean-5) > 1e-12 {
		t.Fatalf("table row = %+v", row)
	}
}

func TestTrackerSkipRecordsReserveAsPosted(t *testing.T) {
	tr := NewTracker(true)
	rec := tr.Record(2, 10, Quote{Price: 12345, Decision: DecisionSkip})
	if rec.Posted != 10 {
		t.Fatalf("skip posted = %v, want reserve 10", rec.Posted)
	}
}

func TestTrackerWithoutRecords(t *testing.T) {
	tr := NewTracker(false)
	for i := 0; i < 100; i++ {
		tr.Record(1, 0, Quote{Price: 0.5, Decision: DecisionConservative})
	}
	if tr.Records() != nil {
		t.Fatal("records retained despite keepRecords=false")
	}
	if tr.Rounds() != 100 || tr.CumulativeRegret() != 50 {
		t.Fatalf("aggregates wrong: %d %v", tr.Rounds(), tr.CumulativeRegret())
	}
}

func TestRegretRatioEmpty(t *testing.T) {
	tr := NewTracker(false)
	if tr.RegretRatio() != 0 {
		t.Fatal("empty ratio must be 0")
	}
}

func TestSold(t *testing.T) {
	if !Sold(1, 1) || !Sold(0.5, 1) || Sold(1.01, 1) {
		t.Fatal("Sold boundary wrong")
	}
}
