package pricing

import (
	"math"
	"testing"

	"datamarket/internal/linalg"
)

// TestLemma8ConservativeCutsAreHarmful reproduces the adversarial example
// of Lemma 8 / Fig. 6: an adversary pins the first half of the stream to
// the first coordinate with reserve prices equal to the middle price, then
// switches to the second coordinate. A mechanism that cuts on conservative
// feedback keeps slicing along coordinate one, exponentially inflating the
// ellipsoid along coordinate two; when the adversary switches, it must pay
// regret for a number of rounds proportional to the first phase — O(T)
// overall. The paper's mechanism (no conservative cuts) is immune.
func TestLemma8ConservativeCutsAreHarmful(t *testing.T) {
	theta := linalg.VectorOf(0.3, 0.4)
	const (
		T    = 1200
		half = T / 2
		eps  = 0.01
	)

	run := func(ablation bool) (phase2Regret float64, phase2Exploratory int) {
		opts := []Option{WithReserve(), WithThreshold(eps)}
		if ablation {
			opts = append(opts, WithConservativeCuts())
		}
		m, err := New(2, 1, opts...)
		if err != nil {
			t.Fatal(err)
		}
		e1 := linalg.VectorOf(1, 0)
		e2 := linalg.VectorOf(0, 1)

		// Phase 1: adversary fixes x = e₁ and sets the reserve to the
		// current middle price, forcing central cuts if the mechanism is
		// willing to cut on conservative feedback.
		for i := 0; i < half; i++ {
			lo, hi := m.ValueBounds(e1)
			reserve := (lo + hi) / 2
			v := e1.Dot(theta)
			q, err := m.PostPrice(e1, reserve)
			if err != nil {
				t.Fatal(err)
			}
			if q.Decision != DecisionSkip {
				m.Observe(Sold(q.Price, v))
			}
		}

		// Phase 2: adversary switches to x = e₂ with no binding reserve.
		before := m.Counters().Exploratory
		tr := NewTracker(false)
		for i := 0; i < T-half; i++ {
			v := e2.Dot(theta)
			q, err := m.PostPrice(e2, math.Inf(-1))
			if err != nil {
				t.Fatal(err)
			}
			if q.Decision != DecisionSkip {
				m.Observe(Sold(q.Price, v))
			}
			tr.Record(v, math.Inf(-1), q)
		}
		return tr.CumulativeRegret(), m.Counters().Exploratory - before
	}

	ablRegret, ablExpl := run(true)
	defRegret, defExpl := run(false)

	// In exact arithmetic the gap grows without bound in T; in float64 the
	// adversarial phase eventually degrades the 2×2 shape matrix's
	// conditioning (the e₁-width underflows), which caps the blow-up.
	// A clear constant-factor separation remains the expected signature.
	if !(ablRegret > 2*defRegret+1) {
		t.Fatalf("ablation regret %v not clearly above default %v", ablRegret, defRegret)
	}
	if !(ablExpl > 2*defExpl) {
		t.Fatalf("ablation exploratory rounds %d not clearly above default %d", ablExpl, defExpl)
	}
}

// TestConservativeCutOptionActuallyCuts confirms the ablation switch is
// wired through: identical single-round feedback refines the ellipsoid
// only when the option is set.
func TestConservativeCutOptionActuallyCuts(t *testing.T) {
	x := linalg.VectorOf(1, 0)
	for _, ablation := range []bool{false, true} {
		// Force conservative pricing with a binding reserve at the middle
		// price, the Lemma 8 adversary's move: the resulting feedback is a
		// central cut if (and only if) the ablation allows it.
		opts := []Option{WithThreshold(100), WithReserve()}
		if ablation {
			opts = append(opts, WithConservativeCuts())
		}
		m, _ := New(2, 1, opts...)
		lo, hi := m.ValueBounds(x)
		q, err := m.PostPrice(x, (lo+hi)/2)
		if err != nil {
			t.Fatal(err)
		}
		if q.Decision != DecisionConservative || !q.ReserveBinding {
			t.Fatalf("quote = %+v", q)
		}
		m.Observe(false)
		cuts := m.Counters().CutsApplied
		if ablation && cuts != 1 {
			t.Fatalf("ablation applied %d cuts, want 1", cuts)
		}
		if !ablation && cuts != 0 {
			t.Fatal("default mechanism cut on conservative feedback")
		}
	}
}
