package pricing

import (
	"math"
	"testing"

	"datamarket/internal/linalg"
	"datamarket/internal/randx"
)

func TestLinks(t *testing.T) {
	for _, l := range []Link{IdentityLink{}, ExpLink{}, LogisticLink{}} {
		// Inverse really inverts on the interior of the range.
		for _, z := range []float64{-2, -0.5, 0, 0.5, 2} {
			v := l.Apply(z)
			if got := l.Inverse(v); math.Abs(got-z) > 1e-9 {
				t.Fatalf("%s: Inverse(Apply(%v)) = %v", l.Name(), z, got)
			}
		}
		// Non-decreasing.
		prev := math.Inf(-1)
		for z := -5.0; z <= 5; z += 0.25 {
			v := l.Apply(z)
			if v < prev {
				t.Fatalf("%s not non-decreasing at %v", l.Name(), z)
			}
			prev = v
		}
	}
	if (IdentityLink{}).Name() != "identity" || (ExpLink{}).Name() != "exp" || (LogisticLink{}).Name() != "logistic" {
		t.Fatal("link names wrong")
	}
}

func TestFeatureMaps(t *testing.T) {
	x := linalg.VectorOf(1, math.E)
	if got, err := (IdentityMap{}).Map(x); err != nil || !got.Equal(x, 0) {
		t.Fatalf("identity map changed input (err %v)", err)
	}
	lg, err := (LogMap{}).Map(x)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(lg[0]) > 1e-12 || math.Abs(lg[1]-1) > 1e-12 {
		t.Fatalf("log map = %v", lg)
	}
	if (LogMap{}).OutDim(7) != 7 || (IdentityMap{}).OutDim(3) != 3 {
		t.Fatal("OutDim wrong")
	}
}

// rbf is a minimal kernel for landmark tests (the full kernel package has
// its own; pricing only needs the interface).
type rbf struct{ gamma float64 }

func (k rbf) Eval(x, y linalg.Vector) float64 {
	d := x.Sub(y)
	return math.Exp(-k.gamma * d.Dot(d))
}
func (k rbf) Name() string { return "rbf" }

func TestLandmarkMap(t *testing.T) {
	lms := []linalg.Vector{linalg.VectorOf(0, 0), linalg.VectorOf(1, 0)}
	m, err := NewLandmarkMap(rbf{1}, lms)
	if err != nil {
		t.Fatal(err)
	}
	phi, err := m.Map(linalg.VectorOf(0, 0))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(phi[0]-1) > 1e-12 {
		t.Fatalf("kernel self-similarity = %v", phi[0])
	}
	if math.Abs(phi[1]-math.Exp(-1)) > 1e-12 {
		t.Fatalf("kernel cross = %v", phi[1])
	}
	if m.OutDim(2) != 2 {
		t.Fatalf("OutDim = %d", m.OutDim(2))
	}
	if _, err := NewLandmarkMap(nil, lms); err == nil {
		t.Fatal("expected nil kernel error")
	}
	if _, err := NewLandmarkMap(rbf{1}, nil); err == nil {
		t.Fatal("expected empty landmarks error")
	}
	bad := []linalg.Vector{linalg.VectorOf(1), linalg.VectorOf(1, 2)}
	if _, err := NewLandmarkMap(rbf{1}, bad); err == nil {
		t.Fatal("expected ragged landmark error")
	}
	// Landmarks must be copied, not aliased.
	lms[0][0] = 99
	phi2, err := m.Map(linalg.VectorOf(0, 0))
	if err != nil {
		t.Fatal(err)
	}
	if phi2[0] != phi[0] {
		t.Fatal("landmark aliased caller's slice")
	}
}

func TestModelConstructorsAndValue(t *testing.T) {
	theta := linalg.VectorOf(0.5, -0.25)
	x := linalg.VectorOf(2, 4)
	z := x.Dot(theta) // 1 - 1 = 0
	if v := LinearModel().Value(x, theta); math.Abs(v-z) > 1e-12 {
		t.Fatalf("linear value = %v", v)
	}
	if v := LogLinearModel().Value(x, theta); math.Abs(v-math.Exp(z)) > 1e-12 {
		t.Fatalf("log-linear value = %v", v)
	}
	if v := LogisticModel().Value(x, theta); math.Abs(v-0.5) > 1e-12 {
		t.Fatalf("logistic value = %v, want 0.5", v)
	}
	lgx, err := (LogMap{}).Map(x)
	if err != nil {
		t.Fatal(err)
	}
	zz := lgx.Dot(theta)
	if v := LogLogModel().Value(x, theta); math.Abs(v-math.Exp(zz)) > 1e-12 {
		t.Fatalf("log-log value = %v", v)
	}
}

func TestNewNonlinearValidation(t *testing.T) {
	if _, err := NewNonlinear(Model{}, 2, 1); err == nil {
		t.Fatal("expected error for empty model")
	}
	if _, err := NewNonlinear(LinearModel(), 0, 1); err == nil {
		t.Fatal("expected dimension error")
	}
}

// runNonlinear drives a nonlinear mechanism on the model's ground truth.
func runNonlinear(t *testing.T, model Model, theta linalg.Vector, n, T int,
	seed uint64, sampleX func(r *randx.RNG) linalg.Vector,
	reserveOf func(v float64) float64, opts ...Option) *Tracker {
	t.Helper()
	nm, err := NewNonlinear(model, n, theta.Norm2()*1.5, opts...)
	if err != nil {
		t.Fatal(err)
	}
	r := randx.New(seed)
	tr := NewTracker(true)
	for i := 0; i < T; i++ {
		x := sampleX(r)
		v := model.Value(x, theta)
		reserve := reserveOf(v)
		q, err := nm.PostPrice(x, reserve)
		if err != nil {
			t.Fatalf("round %d: %v", i, err)
		}
		if q.Decision != DecisionSkip {
			if err := nm.Observe(Sold(q.Price, v)); err != nil {
				t.Fatal(err)
			}
		}
		tr.Record(v, reserve, q)
	}
	return tr
}

func TestLogLinearMechanismConverges(t *testing.T) {
	n := 4
	r0 := randx.New(41)
	theta := r0.OnSphere(n).Scale(0.8)
	T := 4000
	tr := runNonlinear(t, LogLinearModel(), theta, n, T, 42,
		func(r *randx.RNG) linalg.Vector { return r.OnSphere(n) },
		func(float64) float64 { return math.Inf(-1) },
		WithThreshold(DefaultThreshold(n, T, 0)))
	if ratio := tr.RegretRatio(); ratio > 0.12 {
		t.Fatalf("log-linear regret ratio %v too high", ratio)
	}
	// Late-round regret ratio must be small (converged).
	rc := tr.RatioCurve()
	if rc[T-1] > 0.12 {
		t.Fatalf("final ratio %v", rc[T-1])
	}
}

func TestLogisticMechanismConverges(t *testing.T) {
	n := 4
	r0 := randx.New(43)
	theta := r0.OnSphere(n).Scale(1.5)
	T := 4000
	tr := runNonlinear(t, LogisticModel(), theta, n, T, 44,
		func(r *randx.RNG) linalg.Vector { return r.OnSphere(n) },
		func(float64) float64 { return math.Inf(-1) },
		WithThreshold(DefaultThreshold(n, T, 0)))
	if ratio := tr.RegretRatio(); ratio > 0.12 {
		t.Fatalf("logistic regret ratio %v too high", ratio)
	}
}

func TestLogLogMechanismConverges(t *testing.T) {
	n := 3
	r0 := randx.New(45)
	theta := r0.OnSphere(n).Scale(0.5)
	T := 3000
	tr := runNonlinear(t, LogLogModel(), theta, n, T, 46,
		func(r *randx.RNG) linalg.Vector { return r.UniformVector(n, 0.5, 2) },
		func(float64) float64 { return math.Inf(-1) },
		WithThreshold(0.003))
	if ratio := tr.RegretRatio(); ratio > 0.12 {
		t.Fatalf("log-log regret ratio %v too high", ratio)
	}
}

func TestKernelizedMechanismConverges(t *testing.T) {
	// Ground truth lives in the landmark feature space.
	r0 := randx.New(47)
	var lms []linalg.Vector
	for i := 0; i < 6; i++ {
		lms = append(lms, r0.OnSphere(2))
	}
	lmap, err := NewLandmarkMap(rbf{0.5}, lms)
	if err != nil {
		t.Fatal(err)
	}
	model := KernelizedModel(lmap)
	theta := r0.OnSphere(len(lms)).Scale(0.7)
	T := 4000
	tr := runNonlinear(t, model, theta, 2, T, 48,
		func(r *randx.RNG) linalg.Vector { return r.OnSphere(2) },
		func(float64) float64 { return math.Inf(-1) },
		WithThreshold(0.005))
	// Kernel features are correlated, convergence is slower; still the
	// ratio must be clearly sub-baseline.
	if ratio := tr.RegretRatio(); math.Abs(ratio) > 0.25 {
		t.Fatalf("kernelized regret ratio %v too high", ratio)
	}
}

func TestNonlinearReserveSemantics(t *testing.T) {
	// Exp link: non-positive reserve is non-binding; large reserve skips.
	nm, err := NewNonlinear(LogLinearModel(), 2, 1, WithReserve(), WithThreshold(0.01))
	if err != nil {
		t.Fatal(err)
	}
	x := linalg.VectorOf(1, 0)
	q, err := nm.PostPrice(x, 0) // reserve 0 under exp: cannot bind
	if err != nil {
		t.Fatal(err)
	}
	if q.Decision == DecisionSkip || q.ReserveBinding {
		t.Fatalf("zero reserve affected exp-link pricing: %+v", q)
	}
	nm.Observe(false)
	// Score bounds are [−1, 1] ⇒ value bounds [e⁻¹, e]. Reserve above e skips.
	q, err = nm.PostPrice(x, 10)
	if err != nil {
		t.Fatal(err)
	}
	if q.Decision != DecisionSkip {
		t.Fatalf("huge reserve did not skip: %+v", q)
	}
	// Logistic link: reserve ≥ 1 always skips (values live in (0,1)).
	lm, _ := NewNonlinear(LogisticModel(), 2, 1, WithReserve(), WithThreshold(0.01))
	q, err = lm.PostPrice(x, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	if q.Decision != DecisionSkip {
		t.Fatalf("logistic reserve ≥ 1 did not skip: %+v", q)
	}
}

func TestNonlinearQuoteInValueSpace(t *testing.T) {
	nm, _ := NewNonlinear(LogLinearModel(), 2, 1, WithThreshold(0.01))
	x := linalg.VectorOf(0.6, 0.8)
	q, err := nm.PostPrice(x, math.Inf(-1))
	if err != nil {
		t.Fatal(err)
	}
	// Bounds must be exp of the score-space ball support: [e⁻¹, e¹].
	if math.Abs(q.Lower-math.Exp(-1)) > 1e-9 || math.Abs(q.Upper-math.Exp(1)) > 1e-9 {
		t.Fatalf("value bounds = [%v, %v]", q.Lower, q.Upper)
	}
	// Exploratory price = g(middle of score space) = g(0) = 1.
	if math.Abs(q.Price-1) > 1e-9 {
		t.Fatalf("price = %v, want 1", q.Price)
	}
	nm.Observe(true)
	if nm.Counters().Accepts != 1 {
		t.Fatal("counters not forwarded")
	}
	if nm.Model().Link.Name() != "exp" {
		t.Fatal("Model accessor wrong")
	}
	if nm.Inner() == nil {
		t.Fatal("Inner accessor nil")
	}
}

// TestLandmarkMapInputValidation is the regression test for malformed
// inputs: a wrong-dimension vector used to panic inside the kernel's dot
// product, and a NaN entry fed NaN scores into the knowledge set.
func TestLandmarkMapInputValidation(t *testing.T) {
	m, err := NewLandmarkMap(rbf{1}, []linalg.Vector{linalg.VectorOf(0, 0), linalg.VectorOf(1, 1)})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		x    linalg.Vector
	}{
		{"short", linalg.VectorOf(1)},
		{"long", linalg.VectorOf(1, 2, 3)},
		{"nan", linalg.VectorOf(math.NaN(), 0)},
		{"+inf", linalg.VectorOf(0, math.Inf(1))},
		{"-inf", linalg.VectorOf(math.Inf(-1), 0)},
	}
	for _, tc := range cases {
		if _, err := m.Map(tc.x); err == nil {
			t.Fatalf("%s: expected error", tc.name)
		}
	}
	if m.InDim() != 2 {
		t.Fatalf("InDim = %d", m.InDim())
	}
	// Non-finite landmarks are rejected at construction.
	if _, err := NewLandmarkMap(rbf{1}, []linalg.Vector{linalg.VectorOf(math.NaN(), 0)}); err == nil {
		t.Fatal("NaN landmark accepted")
	}
	// The log map enforces its domain the same way.
	for _, bad := range []linalg.Vector{
		linalg.VectorOf(1, 0), linalg.VectorOf(-1, 1), linalg.VectorOf(math.NaN(), 1), linalg.VectorOf(math.Inf(1), 1),
	} {
		if _, err := (LogMap{}).Map(bad); err == nil {
			t.Fatalf("log map accepted %v", bad)
		}
	}
	if v := LogLogModel().Value(linalg.VectorOf(-1, 1), linalg.VectorOf(1, 1)); !math.IsNaN(v) {
		t.Fatalf("out-of-domain Value = %v, want NaN", v)
	}
}

// TestNonlinearMechanismInputValidation rejects malformed inputs before
// they reach the score-space ellipsoid, and keeps the mechanism usable.
func TestNonlinearMechanismInputValidation(t *testing.T) {
	lm, err := NewLandmarkMap(rbf{1}, []linalg.Vector{linalg.VectorOf(0, 0), linalg.VectorOf(1, 1)})
	if err != nil {
		t.Fatal(err)
	}
	nm, err := NewNonlinear(KernelizedModel(lm), 2, 1, WithThreshold(0.05))
	if err != nil {
		t.Fatal(err)
	}
	for _, bad := range []linalg.Vector{
		linalg.VectorOf(1), linalg.VectorOf(1, 2, 3), linalg.VectorOf(math.NaN(), 0),
	} {
		if _, err := nm.PostPrice(bad, 0); err == nil {
			t.Fatalf("accepted %v", bad)
		}
		if nm.Pending() {
			t.Fatalf("rejected round left mechanism pending")
		}
	}
	if nm.Dim() != 2 {
		t.Fatalf("Dim = %d", nm.Dim())
	}
	q, err := nm.PostPrice(linalg.VectorOf(0.5, 0.5), 0)
	if err != nil {
		t.Fatal(err)
	}
	if q.Decision == DecisionSkip {
		t.Fatal("unexpected skip")
	}
	if !nm.Pending() {
		t.Fatal("not pending after valid round")
	}
	if err := nm.Observe(true); err != nil {
		t.Fatal(err)
	}
}
