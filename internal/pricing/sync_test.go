package pricing

import (
	"errors"
	"math"
	"testing"

	"datamarket/internal/linalg"
	"datamarket/internal/randx"
)

// TestSyncPosterSkipRound is the regression test for the skip-path
// feedback hazard: a DecisionSkip round must not leave the mechanism
// pending (which would wedge the stream with ErrPendingRound forever).
func TestSyncPosterSkipRound(t *testing.T) {
	inner, err := New(2, 1, WithReserve(), WithThreshold(0.05))
	if err != nil {
		t.Fatal(err)
	}
	sp := NewSync(inner)
	x := linalg.VectorOf(1, 0)

	// Round 1: a normal exploratory round.
	q, accepted, err := sp.PriceRound(x, 0, func(Quote) bool { return true })
	if err != nil {
		t.Fatal(err)
	}
	if q.Decision == DecisionSkip || !accepted {
		t.Fatalf("round 1: unexpected quote %+v accepted=%v", q, accepted)
	}

	// Round 2: reserve far above the value ceiling forces a skip. The
	// respond callback must not fire and no feedback must be pending.
	q, _, err = sp.PriceRound(x, 1e6, func(Quote) bool {
		t.Fatal("respond called on a skip round")
		return false
	})
	if err != nil {
		t.Fatal(err)
	}
	if q.Decision != DecisionSkip {
		t.Fatalf("round 2: want skip, got %v", q.Decision)
	}
	if err := sp.Observe(true); err != ErrNoPendingRound {
		t.Fatalf("after skip: Observe err = %v, want ErrNoPendingRound", err)
	}

	// Round 3: pricing resumes normally — the stream is not wedged.
	q, _, err = sp.PriceRound(x, 0, func(Quote) bool { return false })
	if err != nil {
		t.Fatalf("round 3 after skip: %v", err)
	}
	if q.Decision == DecisionSkip {
		t.Fatalf("round 3: unexpected skip")
	}
	c := inner.Counters()
	if c.Rounds != 3 || c.Skips != 1 || c.Accepts != 1 || c.Rejects != 1 {
		t.Fatalf("counters after skip round: %+v", c)
	}
}

// TestSyncPosterSnapshotRestore exercises the wrapper-level snapshot hook
// and the in-place restore used by server-hosted streams.
func TestSyncPosterSnapshotRestore(t *testing.T) {
	const n = 3
	inner, err := New(n, 2, WithThreshold(0.05))
	if err != nil {
		t.Fatal(err)
	}
	sp := NewSync(inner)
	r := randx.New(7)
	theta := r.OnSphere(n)
	price := func(x linalg.Vector) (Quote, bool) {
		q, accepted, err := sp.PriceRound(x, math.Inf(-1), func(q Quote) bool {
			return Sold(q.Price, x.Dot(theta))
		})
		if err != nil {
			t.Fatal(err)
		}
		return q, accepted
	}
	for i := 0; i < 50; i++ {
		price(r.OnSphere(n))
	}
	snap, err := sp.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	// Mutate the stream past the snapshot, then roll it back in place.
	for i := 0; i < 25; i++ {
		price(r.OnSphere(n))
	}
	if err := sp.RestoreSnapshot(snap); err != nil {
		t.Fatal(err)
	}
	after, err := sp.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if after.Counters != snap.Counters {
		t.Fatalf("restored counters %+v, want %+v", after.Counters, snap.Counters)
	}

	// A reference mechanism restored from the same snapshot must agree
	// with the rolled-back stream on subsequent rounds exactly.
	ref, err := Restore(snap)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 25; i++ {
		x := r.OnSphere(n)
		got, _ := price(x)
		want, err := ref.PostPrice(x, math.Inf(-1))
		if err != nil {
			t.Fatal(err)
		}
		if want.Decision != DecisionSkip {
			ref.Observe(Sold(want.Price, x.Dot(theta)))
		}
		if got.Decision != want.Decision || math.Abs(got.Price-want.Price) > 1e-12 {
			t.Fatalf("round %d diverged after restore: %+v vs %+v", i, got, want)
		}
	}

	// Snapshot through the wrapper fails cleanly for posters without state.
	fp, _ := NewFixedPrice(1)
	if _, err := NewSync(fp).Snapshot(); err == nil {
		t.Fatal("expected snapshot error for FixedPricePoster")
	}
	// And a corrupt snapshot must not replace the live mechanism.
	bad := *snap
	bad.Threshold = -1
	if err := sp.RestoreSnapshot(&bad); err == nil {
		t.Fatal("expected restore error for corrupt snapshot")
	}
	if _, err := sp.PostPrice(r.OnSphere(n), math.Inf(-1)); err != nil {
		t.Fatalf("stream unusable after failed restore: %v", err)
	}
	// Restoring while that round is still pending would discard the
	// buyer's in-flight decision — it must be refused.
	if err := sp.RestoreSnapshot(snap); !errors.Is(err, ErrPendingRound) {
		t.Fatalf("mid-round restore: err = %v, want ErrPendingRound", err)
	}
	if err := sp.Observe(true); err != nil {
		t.Fatalf("pending round lost after refused restore: %v", err)
	}
	if err := sp.RestoreSnapshot(snap); err != nil {
		t.Fatalf("restore between rounds: %v", err)
	}
}
