package pricing

import (
	"errors"
	"math"
	"strings"
	"testing"

	"datamarket/internal/kernel"
	"datamarket/internal/linalg"
	"datamarket/internal/randx"
)

// familySpecs returns one valid spec per hosted family, sharing dim 2.
func familySpecs() map[Family]FamilySpec {
	return map[Family]FamilySpec{
		FamilyLinear: {Family: FamilyLinear, Dim: 2, Reserve: true, Threshold: 0.05},
		FamilyNonlinear: {Family: FamilyNonlinear, Dim: 2, Reserve: true, Threshold: 0.05,
			Model: ModelConfig{
				Link:      "exp",
				Map:       "landmark",
				Kernel:    &KernelConfig{Type: "rbf", Gamma: 0.5},
				Landmarks: [][]float64{{0, 0}, {1, 0}, {0, 1}},
			}},
		FamilySGD: {Family: FamilySGD, Dim: 2, Reserve: true,
			Model: ModelConfig{Eta0: 0.5, Margin: 1.0}},
	}
}

func TestFamilies(t *testing.T) {
	got := Families()
	want := []Family{FamilyLinear, FamilyNonlinear, FamilySGD}
	if len(got) != len(want) {
		t.Fatalf("Families() = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Families() = %v, want %v", got, want)
		}
	}
}

// TestNewFamilyPosterEachFamily builds every family through the factory
// and checks the capability bundle: dim, family tag, pending flow, and
// counters.
func TestNewFamilyPosterEachFamily(t *testing.T) {
	for fam, spec := range familySpecs() {
		fp, err := NewFamilyPoster(spec)
		if err != nil {
			t.Fatalf("%s: %v", fam, err)
		}
		if fp.Family() != fam {
			t.Fatalf("%s: Family() = %q", fam, fp.Family())
		}
		if fp.Dim() != 2 {
			t.Fatalf("%s: Dim() = %d", fam, fp.Dim())
		}
		if fp.Pending() {
			t.Fatalf("%s: fresh poster pending", fam)
		}
		x := linalg.VectorOf(0.5, 0.5)
		q, err := fp.PostPrice(x, 0.01)
		if err != nil {
			t.Fatalf("%s: PostPrice: %v", fam, err)
		}
		if q.Decision == DecisionSkip {
			t.Fatalf("%s: unexpected skip", fam)
		}
		if !fp.Pending() {
			t.Fatalf("%s: not pending after PostPrice", fam)
		}
		if err := fp.Observe(true); err != nil {
			t.Fatalf("%s: Observe: %v", fam, err)
		}
		if fp.Pending() {
			t.Fatalf("%s: pending after Observe", fam)
		}
		c := fp.Counters()
		if c.Rounds != 1 || c.Accepts != 1 {
			t.Fatalf("%s: counters %+v", fam, c)
		}
	}
}

// TestFamilyDefaultsToLinear preserves the pre-family create surface.
func TestFamilyDefaultsToLinear(t *testing.T) {
	fp, err := NewFamilyPoster(FamilySpec{Dim: 3})
	if err != nil {
		t.Fatal(err)
	}
	if fp.Family() != FamilyLinear {
		t.Fatalf("empty family built %q", fp.Family())
	}
	if _, ok := fp.(*Mechanism); !ok {
		t.Fatalf("empty family built %T", fp)
	}
}

// TestNewFamilyPosterValidation covers the factory's error surface.
func TestNewFamilyPosterValidation(t *testing.T) {
	cases := []struct {
		name string
		spec FamilySpec
		want string
	}{
		{"unknown family", FamilySpec{Family: "quantum", Dim: 2}, "unknown family"},
		{"linear with model", FamilySpec{Family: FamilyLinear, Dim: 2, Model: ModelConfig{Link: "exp"}}, "no model config"},
		{"bad dim", FamilySpec{Family: FamilyLinear, Dim: 0}, "dimension"},
		{"negative radius", FamilySpec{Family: FamilyLinear, Dim: 2, Radius: -1}, "radius"},
		{"nan radius", FamilySpec{Family: FamilyLinear, Dim: 2, Radius: math.NaN()}, "radius"},
		{"negative delta", FamilySpec{Family: FamilyLinear, Dim: 2, Delta: -0.1}, "delta"},
		{"negative threshold", FamilySpec{Family: FamilyLinear, Dim: 2, Threshold: -0.1}, "threshold"},
		{"negative horizon", FamilySpec{Family: FamilyLinear, Dim: 2, Horizon: -1}, "horizon"},
		{"unknown link", FamilySpec{Family: FamilyNonlinear, Dim: 2, Model: ModelConfig{Link: "tanh"}}, "unknown link"},
		{"unknown map", FamilySpec{Family: FamilyNonlinear, Dim: 2, Model: ModelConfig{Map: "fourier"}}, "unknown feature map"},
		{"landmark without kernel", FamilySpec{Family: FamilyNonlinear, Dim: 2,
			Model: ModelConfig{Map: "landmark", Landmarks: [][]float64{{0, 0}}}}, "needs a kernel"},
		{"kernel without landmark map", FamilySpec{Family: FamilyNonlinear, Dim: 2,
			Model: ModelConfig{Kernel: &KernelConfig{Type: "rbf", Gamma: 1}}}, "only valid with the landmark map"},
		{"unknown kernel", FamilySpec{Family: FamilyNonlinear, Dim: 2,
			Model: ModelConfig{Map: "landmark", Kernel: &KernelConfig{Type: "sinc"}, Landmarks: [][]float64{{0, 0}}}}, "unknown kernel"},
		{"bad rbf gamma", FamilySpec{Family: FamilyNonlinear, Dim: 2,
			Model: ModelConfig{Map: "landmark", Kernel: &KernelConfig{Type: "rbf"}, Landmarks: [][]float64{{0, 0}}}}, "gamma"},
		{"landmark dim mismatch", FamilySpec{Family: FamilyNonlinear, Dim: 3,
			Model: ModelConfig{Map: "landmark", Kernel: &KernelConfig{Type: "rbf", Gamma: 1}, Landmarks: [][]float64{{0, 0}}}}, "landmarks have dimension"},
		{"non-finite landmark", FamilySpec{Family: FamilyNonlinear, Dim: 2,
			Model: ModelConfig{Map: "landmark", Kernel: &KernelConfig{Type: "rbf", Gamma: 1}, Landmarks: [][]float64{{0, math.Inf(1)}}}}, "finite"},
		{"sgd with nonlinear model", FamilySpec{Family: FamilySGD, Dim: 2, Model: ModelConfig{Link: "exp"}}, "eta0/margin"},
		{"sgd with horizon", FamilySpec{Family: FamilySGD, Dim: 2, Horizon: 100}, "does not use"},
		{"sgd negative margin", FamilySpec{Family: FamilySGD, Dim: 2, Model: ModelConfig{Margin: -1}}, "margin"},
		{"nonlinear with eta0", FamilySpec{Family: FamilyNonlinear, Dim: 2, Model: ModelConfig{Eta0: 0.5}}, "sgd family"},
	}
	for _, tc := range cases {
		_, err := NewFamilyPoster(tc.spec)
		if err == nil {
			t.Fatalf("%s: expected error", tc.name)
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

// driveRounds runs T deterministic accept/reject rounds against fp.
func driveRounds(t *testing.T, fp FamilyPoster, T int, seed uint64) {
	t.Helper()
	r := randx.New(seed)
	for i := 0; i < T; i++ {
		x := r.OnSphere(fp.Dim())
		for j := range x {
			x[j] = math.Abs(x[j]) + 0.1
		}
		q, err := fp.PostPrice(x, 0.01)
		if err != nil {
			t.Fatalf("round %d: %v", i, err)
		}
		if q.Decision == DecisionSkip {
			continue
		}
		if err := fp.Observe(i%3 != 0); err != nil {
			t.Fatalf("round %d: %v", i, err)
		}
	}
}

// TestEnvelopeRoundTripEachFamily snapshots a warmed-up poster of every
// family through JSON and checks that the restored poster is behaviorally
// identical: same next quote and same counters.
func TestEnvelopeRoundTripEachFamily(t *testing.T) {
	for fam, spec := range familySpecs() {
		fp, err := NewFamilyPoster(spec)
		if err != nil {
			t.Fatalf("%s: %v", fam, err)
		}
		driveRounds(t, fp, 50, 7)

		env, err := fp.SnapshotEnvelope()
		if err != nil {
			t.Fatalf("%s: snapshot: %v", fam, err)
		}
		if env.Family != fam {
			t.Fatalf("%s: envelope tagged %q", fam, env.Family)
		}
		data, err := env.Encode()
		if err != nil {
			t.Fatalf("%s: encode: %v", fam, err)
		}
		decoded, err := DecodeEnvelope(data)
		if err != nil {
			t.Fatalf("%s: decode: %v", fam, err)
		}
		restored, err := RestoreEnvelope(decoded)
		if err != nil {
			t.Fatalf("%s: restore: %v", fam, err)
		}
		if restored.Family() != fam || restored.Dim() != fp.Dim() {
			t.Fatalf("%s: restored family %q dim %d", fam, restored.Family(), restored.Dim())
		}
		if restored.Counters() != fp.Counters() {
			t.Fatalf("%s: counters %+v, want %+v", fam, restored.Counters(), fp.Counters())
		}
		// The restored poster and the original agree exactly on the next
		// round — full state made it across the wire.
		x := linalg.VectorOf(0.3, 0.4)
		qa, err := fp.PostPrice(x, 0.01)
		if err != nil {
			t.Fatalf("%s: %v", fam, err)
		}
		qb, err := restored.PostPrice(x, 0.01)
		if err != nil {
			t.Fatalf("%s: %v", fam, err)
		}
		if qa != qb {
			t.Fatalf("%s: post-restore quotes diverged: %+v vs %+v", fam, qa, qb)
		}
	}
}

// TestEnvelopeValidate covers the envelope's structural error surface.
func TestEnvelopeValidate(t *testing.T) {
	lin, _ := New(2, 1)
	snap, _ := lin.Snapshot()
	sgdEnv, _ := mustSGD(t).SnapshotEnvelope()
	cases := []struct {
		name string
		env  *Envelope
	}{
		{"nil", nil},
		{"bad version", &Envelope{Version: 99, Family: FamilyLinear, Linear: snap}},
		{"unknown family", &Envelope{Version: 1, Family: "quantum", Linear: snap}},
		{"no payload", &Envelope{Version: 1, Family: FamilyLinear}},
		{"wrong payload", &Envelope{Version: 1, Family: FamilyLinear, SGD: sgdEnv.SGD}},
		{"two payloads", &Envelope{Version: 1, Family: FamilyLinear, Linear: snap, SGD: sgdEnv.SGD}},
	}
	for _, tc := range cases {
		if err := tc.env.Validate(); err == nil {
			t.Fatalf("%s: expected error", tc.name)
		}
		if _, err := RestoreEnvelope(tc.env); err == nil {
			t.Fatalf("%s: RestoreEnvelope accepted invalid envelope", tc.name)
		}
	}
}

func mustSGD(t *testing.T) *SGDPoster {
	t.Helper()
	s, err := NewSGD(2, 0.5, 1.0, true)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestDecodeEnvelopeLegacySnapshot upgrades a pre-family bare Snapshot to
// a linear envelope.
func TestDecodeEnvelopeLegacySnapshot(t *testing.T) {
	m, _ := New(3, 2)
	snap, err := m.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	data, err := snap.Encode()
	if err != nil {
		t.Fatal(err)
	}
	env, err := DecodeEnvelope(data)
	if err != nil {
		t.Fatalf("legacy snapshot not accepted: %v", err)
	}
	if env.Family != FamilyLinear || env.Linear == nil || env.Linear.N != 3 {
		t.Fatalf("legacy upgrade produced %+v", env)
	}
	if _, err := DecodeEnvelope([]byte(`{"version":1}`)); err == nil {
		t.Fatal("family-less garbage accepted")
	}
}

// TestRestoreSGDEnvelopeValidation rejects corrupt sgd payloads.
func TestRestoreSGDEnvelopeValidation(t *testing.T) {
	base := func() *SGDSnapshot {
		return &SGDSnapshot{N: 2, Theta: []float64{0.1, 0.2}, Eta0: 0.5, Margin: 1, Steps: 3}
	}
	mutations := []struct {
		name string
		mut  func(*SGDSnapshot)
	}{
		{"theta length", func(s *SGDSnapshot) { s.Theta = s.Theta[:1] }},
		{"nan theta", func(s *SGDSnapshot) { s.Theta[0] = math.NaN() }},
		{"zero eta0", func(s *SGDSnapshot) { s.Eta0 = 0 }},
		{"inf eta0", func(s *SGDSnapshot) { s.Eta0 = math.Inf(1) }},
		{"negative margin", func(s *SGDSnapshot) { s.Margin = -1 }},
		{"negative steps", func(s *SGDSnapshot) { s.Steps = -1 }},
	}
	for _, tc := range mutations {
		snap := base()
		tc.mut(snap)
		if _, err := RestoreEnvelope(&Envelope{Version: 1, Family: FamilySGD, SGD: snap}); err == nil {
			t.Fatalf("%s: expected error", tc.name)
		}
	}
	// SGD restore continues the step schedule, not restarts it.
	fp, err := RestoreEnvelope(&Envelope{Version: 1, Family: FamilySGD, SGD: base()})
	if err != nil {
		t.Fatal(err)
	}
	sgd := fp.(*SGDPoster)
	if sgd.steps != 3 {
		t.Fatalf("restored step count %d, want 3", sgd.steps)
	}
}

// TestSyncPosterPendingShadowAllFamilies is the regression test for the
// pending-shadow bug: SGDPoster and NonlinearMechanism had no Pending
// method, so SyncPoster's lock-free shadow was always false and the
// delete/restore guards were silently bypassed for non-ellipsoid posters.
func TestSyncPosterPendingShadowAllFamilies(t *testing.T) {
	for fam, spec := range familySpecs() {
		fp, err := NewFamilyPoster(spec)
		if err != nil {
			t.Fatalf("%s: %v", fam, err)
		}
		sp := NewSync(fp)
		if sp.Pending() {
			t.Fatalf("%s: fresh shadow pending", fam)
		}
		env, err := sp.SnapshotEnvelope()
		if err != nil {
			t.Fatalf("%s: %v", fam, err)
		}
		if _, err := sp.PostPrice(linalg.VectorOf(0.5, 0.5), 0.01); err != nil {
			t.Fatalf("%s: %v", fam, err)
		}
		if !sp.Pending() {
			t.Fatalf("%s: shadow not pending after PostPrice", fam)
		}
		// The mid-round restore guard must hold for every family.
		if err := sp.RestoreEnvelopeSnapshot(env); !errors.Is(err, ErrPendingRound) {
			t.Fatalf("%s: mid-round restore error = %v, want ErrPendingRound", fam, err)
		}
		if err := sp.Observe(false); err != nil {
			t.Fatalf("%s: %v", fam, err)
		}
		if sp.Pending() {
			t.Fatalf("%s: shadow pending after Observe", fam)
		}
	}
}

// TestSyncPosterCrossFamilyRestore rejects restoring one family's
// envelope into a SyncPoster hosting another.
func TestSyncPosterCrossFamilyRestore(t *testing.T) {
	specs := familySpecs()
	sgdPoster, err := NewFamilyPoster(specs[FamilySGD])
	if err != nil {
		t.Fatal(err)
	}
	sgdEnv, err := sgdPoster.SnapshotEnvelope()
	if err != nil {
		t.Fatal(err)
	}
	for _, fam := range []Family{FamilyLinear, FamilyNonlinear} {
		fp, err := NewFamilyPoster(specs[fam])
		if err != nil {
			t.Fatal(err)
		}
		sp := NewSync(fp)
		err = sp.RestoreEnvelopeSnapshot(sgdEnv)
		if !errors.Is(err, ErrFamilyMismatch) {
			t.Fatalf("%s: cross-family restore error = %v, want ErrFamilyMismatch", fam, err)
		}
	}
}

// TestConfigOfModelRoundTrip reverse-maps every named model and rejects
// custom components.
func TestConfigOfModelRoundTrip(t *testing.T) {
	lm, err := NewLandmarkMap(kernel.Polynomial{Degree: 2, Offset: 1}, []linalg.Vector{{0, 1}, {1, 0}})
	if err != nil {
		t.Fatal(err)
	}
	models := []Model{LinearModel(), LogLinearModel(), LogLogModel(), LogisticModel(), KernelizedModel(lm)}
	for _, m := range models {
		cfg, err := ConfigOfModel(m)
		if err != nil {
			t.Fatalf("%s∘%s: %v", m.Link.Name(), m.Map.Name(), err)
		}
		rebuilt, err := BuildModel(cfg)
		if err != nil {
			t.Fatalf("%s∘%s: rebuild: %v", m.Link.Name(), m.Map.Name(), err)
		}
		if rebuilt.Link.Name() != m.Link.Name() || rebuilt.Map.Name() != m.Map.Name() {
			t.Fatalf("round trip changed model: %s∘%s → %s∘%s",
				m.Link.Name(), m.Map.Name(), rebuilt.Link.Name(), rebuilt.Map.Name())
		}
	}
	// Custom (non-serializable) kernels are refused at snapshot time.
	custom, _ := NewLandmarkMap(rbf{1}, []linalg.Vector{{0, 0}})
	if _, err := ConfigOfModel(KernelizedModel(custom)); err == nil {
		t.Fatal("custom kernel serialized")
	}
	nm, err := NewNonlinear(KernelizedModel(custom), 2, 1, WithThreshold(0.1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := nm.SnapshotEnvelope(); err == nil {
		t.Fatal("snapshot of custom-kernel mechanism accepted")
	}
}
