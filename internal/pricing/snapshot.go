package pricing

import (
	"encoding/json"
	"fmt"
	"math"

	"datamarket/internal/ellipsoid"
	"datamarket/internal/linalg"
)

// Snapshot is the serializable state of a Mechanism: everything needed to
// resume pricing in a new process. Pending feedback is not serializable —
// snapshot between rounds (after Observe, before the next PostPrice).
type Snapshot struct {
	// Version guards the wire format.
	Version int `json:"version"`
	// N is the feature dimension.
	N int `json:"n"`
	// Shape is the row-major n×n shape matrix A of the knowledge set.
	Shape []float64 `json:"shape"`
	// Center is the ellipsoid center c.
	Center []float64 `json:"center"`
	// Threshold, Delta, UseReserve, ConservativeCuts mirror the options.
	Threshold        float64 `json:"threshold"`
	Delta            float64 `json:"delta"`
	UseReserve       bool    `json:"use_reserve"`
	ConservativeCuts bool    `json:"conservative_cuts"`
	// Counters carries the run statistics.
	Counters Counters `json:"counters"`
}

// snapshotVersion is the current wire format version.
const snapshotVersion = 1

// Snapshot captures the mechanism state. It fails if a round is pending
// feedback.
func (m *Mechanism) Snapshot() (*Snapshot, error) {
	if m.pending {
		return nil, fmt.Errorf("pricing: cannot snapshot with a round pending feedback: %w", ErrPendingRound)
	}
	shape := m.ell.Shape()
	flat := make([]float64, 0, m.n*m.n)
	for i := 0; i < m.n; i++ {
		flat = append(flat, shape.Row(i)...)
	}
	return &Snapshot{
		Version:          snapshotVersion,
		N:                m.n,
		Shape:            flat,
		Center:           m.ell.Center(),
		Threshold:        m.cfg.eps,
		Delta:            m.cfg.delta,
		UseReserve:       m.cfg.useReserve,
		ConservativeCuts: m.cfg.conservativeCuts,
		Counters:         m.counters,
	}, nil
}

// MarshalJSON is provided on Snapshot implicitly via its exported fields;
// Encode/Decode helpers wrap the round trip.

// Encode serializes the snapshot to JSON.
func (s *Snapshot) Encode() ([]byte, error) { return json.Marshal(s) }

// DecodeSnapshot parses a snapshot produced by Encode.
func DecodeSnapshot(data []byte) (*Snapshot, error) {
	var s Snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("pricing: decoding snapshot: %w", err)
	}
	if s.Version != snapshotVersion {
		return nil, fmt.Errorf("pricing: unsupported snapshot version %d", s.Version)
	}
	return &s, nil
}

// isFinite reports whether v is neither NaN nor ±Inf.
func isFinite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

// Restore rebuilds a Mechanism from a snapshot.
func Restore(s *Snapshot) (*Mechanism, error) {
	if s == nil {
		return nil, fmt.Errorf("pricing: nil snapshot")
	}
	if s.N <= 0 {
		return nil, fmt.Errorf("pricing: snapshot dimension %d invalid", s.N)
	}
	if len(s.Shape) != s.N*s.N {
		return nil, fmt.Errorf("pricing: snapshot shape has %d entries, want %d", len(s.Shape), s.N*s.N)
	}
	if len(s.Center) != s.N {
		return nil, fmt.Errorf("pricing: snapshot center has %d entries, want %d", len(s.Center), s.N)
	}
	// Hand-edited or corrupted JSON can smuggle NaN/Inf entries past the
	// structural checks; they would poison every Support call afterwards.
	for i, v := range s.Shape {
		if !isFinite(v) {
			return nil, fmt.Errorf("pricing: snapshot shape entry %d is %g, want finite", i, v)
		}
	}
	for i, v := range s.Center {
		if !isFinite(v) {
			return nil, fmt.Errorf("pricing: snapshot center entry %d is %g, want finite", i, v)
		}
	}
	// NaN compares false against everything, so the sign checks below
	// would let a NaN threshold or delta through without these guards.
	if !isFinite(s.Threshold) || s.Threshold <= 0 {
		return nil, fmt.Errorf("pricing: snapshot threshold %g invalid", s.Threshold)
	}
	if !isFinite(s.Delta) || s.Delta < 0 {
		return nil, fmt.Errorf("pricing: snapshot delta %g invalid", s.Delta)
	}
	shape := linalg.NewMatrix(s.N, s.N)
	for i := 0; i < s.N; i++ {
		copy(shape.Row(i), s.Shape[i*s.N:(i+1)*s.N])
	}
	ell, err := ellipsoid.New(shape, linalg.Vector(s.Center))
	if err != nil {
		return nil, fmt.Errorf("pricing: snapshot knowledge set invalid: %w", err)
	}
	return &Mechanism{
		n:   s.N,
		ell: ell,
		cfg: config{
			useReserve:       s.UseReserve,
			delta:            s.Delta,
			eps:              s.Threshold,
			epsSet:           true,
			conservativeCuts: s.ConservativeCuts,
		},
		counters: s.Counters,
	}, nil
}
