package pricing

import (
	"math"
	"strings"
	"testing"

	"datamarket/internal/linalg"
)

// TestRestoreRejectsNonFinite guards the snapshot decode path against
// NaN/Inf entries that survive hand-edited JSON (e.g. a "1e999" literal
// decoding to +Inf) and would otherwise poison every Support call.
func TestRestoreRejectsNonFinite(t *testing.T) {
	m, err := New(2, 1, WithUncertainty(0.01), WithThreshold(0.1))
	if err != nil {
		t.Fatal(err)
	}
	snap, err := m.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name    string
		corrupt func(s *Snapshot)
		wantMsg string
	}{
		{"shape NaN", func(s *Snapshot) { s.Shape[0] = math.NaN() }, "shape entry 0"},
		{"shape +Inf", func(s *Snapshot) { s.Shape[3] = math.Inf(1) }, "shape entry 3"},
		{"shape -Inf", func(s *Snapshot) { s.Shape[2] = math.Inf(-1) }, "shape entry 2"},
		{"center NaN", func(s *Snapshot) { s.Center[1] = math.NaN() }, "center entry 1"},
		{"center Inf", func(s *Snapshot) { s.Center[0] = math.Inf(1) }, "center entry 0"},
		{"threshold NaN", func(s *Snapshot) { s.Threshold = math.NaN() }, "threshold"},
		{"threshold Inf", func(s *Snapshot) { s.Threshold = math.Inf(1) }, "threshold"},
		{"delta NaN", func(s *Snapshot) { s.Delta = math.NaN() }, "delta"},
		{"delta Inf", func(s *Snapshot) { s.Delta = math.Inf(1) }, "delta"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			bad := *snap
			bad.Shape = append([]float64(nil), snap.Shape...)
			bad.Center = append([]float64(nil), snap.Center...)
			tc.corrupt(&bad)
			_, err := Restore(&bad)
			if err == nil {
				t.Fatalf("Restore accepted non-finite snapshot (%s)", tc.name)
			}
			if !strings.Contains(err.Error(), tc.wantMsg) {
				t.Fatalf("error %q does not mention %q", err, tc.wantMsg)
			}
		})
	}

	// The untouched snapshot still restores, and the restored mechanism
	// prices.
	restored, err := Restore(snap)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := restored.PostPrice(linalg.VectorOf(1, 0), 0); err != nil {
		t.Fatal(err)
	}
}
