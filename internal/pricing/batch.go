package pricing

import "datamarket/internal/linalg"

// BatchRound is one round's input to PriceBatch: the query's feature
// vector and reserve price.
type BatchRound struct {
	X       linalg.Vector
	Reserve float64
}

// BatchOutcome is one round's result from PriceBatch. Accepted is
// meaningful only when Err is nil and the quote was not a skip.
type BatchOutcome struct {
	Quote    Quote
	Accepted bool
	Err      error
}

// BatchRoundPoster is a RoundPoster that can additionally price k rounds
// under a single synchronization point, amortizing per-round lock and
// dispatch overhead. SyncPoster implements it.
type BatchRoundPoster interface {
	RoundPoster
	PriceBatch(rounds []BatchRound, respond func(i int, q Quote) bool) []BatchOutcome
}

// PriceBatch runs len(rounds) full rounds back to back under ONE lock
// acquisition: for each round it posts the price, obtains the buyer's
// decision from respond(i, quote), and delivers the feedback before
// moving on. Concurrent callers therefore interleave at batch
// granularity; within a batch the rounds are sequential, exactly as if
// the caller had issued k PriceRound calls with no writer in between.
//
// A round that fails (e.g. a feature-dimension mismatch) records its
// error in the corresponding outcome and leaves the mechanism untouched;
// later rounds in the batch still run.
func (s *SyncPoster) PriceBatch(rounds []BatchRound, respond func(i int, q Quote) bool) []BatchOutcome {
	out := make([]BatchOutcome, len(rounds))
	s.mu.Lock()
	defer s.mu.Unlock()
	defer s.refreshPending()
	// One revision bump covers the whole batch: the checkpointer only
	// needs "changed since last persist", not a round count.
	s.rev.Add(1)
	for i := range rounds {
		q, accepted, err := s.priceRoundLocked(rounds[i].X, rounds[i].Reserve, i, respond)
		out[i] = BatchOutcome{Quote: q, Accepted: accepted, Err: err}
	}
	return out
}

// Pending reports whether the wrapped poster has a two-phase round
// awaiting feedback. It reads the lock-free shadow maintained under the
// lock by every state-changing method, so it is exact and never waits
// behind an in-flight round or batch. Posters that do not track pending
// state report false.
func (s *SyncPoster) Pending() bool { return s.pending.Load() }

var _ BatchRoundPoster = (*SyncPoster)(nil)
