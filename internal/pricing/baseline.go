package pricing

import (
	"fmt"
	"math"

	"datamarket/internal/linalg"
)

// Poster is the minimal interface shared by all posted-price strategies:
// the ellipsoid mechanism, the interval mechanism, the nonlinear wrapper,
// and the baselines below. It lets the experiment harness run any strategy
// through one loop.
type Poster interface {
	// PostPrice returns the quote for a query with feature vector x and
	// reserve price reserve.
	PostPrice(x linalg.Vector, reserve float64) (Quote, error)
	// Observe delivers accept/reject feedback for the last quote, unless
	// that quote was a skip.
	Observe(accepted bool) error
}

// Mechanism, NonlinearMechanism and the baselines all satisfy Poster.
var (
	_ Poster = (*Mechanism)(nil)
	_ Poster = (*NonlinearMechanism)(nil)
	_ Poster = (*RiskAverseBaseline)(nil)
	_ Poster = (*ClairvoyantPoster)(nil)
	_ Poster = (*FixedPricePoster)(nil)
)

// RiskAverseBaseline is the paper's comparison strategy (§V-A, §V-B): it
// posts exactly the reserve price in every round. It can never lose money,
// learns nothing, and its regret is the full markup v − q on every sale —
// the "cold start forever" strategy.
type RiskAverseBaseline struct {
	pending bool
}

// NewRiskAverse returns the baseline strategy.
func NewRiskAverse() *RiskAverseBaseline { return &RiskAverseBaseline{} }

// PostPrice posts the reserve price unconditionally.
func (b *RiskAverseBaseline) PostPrice(_ linalg.Vector, reserve float64) (Quote, error) {
	if b.pending {
		return Quote{}, ErrPendingRound
	}
	b.pending = true
	return Quote{
		Price:          reserve,
		Decision:       DecisionConservative,
		Lower:          reserve,
		Upper:          reserve,
		ReserveBinding: true,
	}, nil
}

// Observe discards the feedback — the baseline never learns.
func (b *RiskAverseBaseline) Observe(bool) error {
	if !b.pending {
		return ErrNoPendingRound
	}
	b.pending = false
	return nil
}

// ClairvoyantPoster posts the true market value (or the reserve if higher),
// which is the adversary's optimal strategy in the noiseless setting: its
// regret is identically zero whenever q ≤ v. It provides the revenue
// ceiling against which regret is defined, and is used in tests.
type ClairvoyantPoster struct {
	// Value returns the true market value for a feature vector.
	Value   func(x linalg.Vector) float64
	pending bool
}

// NewClairvoyant builds the oracle strategy around a value function.
func NewClairvoyant(value func(x linalg.Vector) float64) (*ClairvoyantPoster, error) {
	if value == nil {
		return nil, fmt.Errorf("pricing: clairvoyant needs a value function")
	}
	return &ClairvoyantPoster{Value: value}, nil
}

// PostPrice posts max(v, reserve).
func (c *ClairvoyantPoster) PostPrice(x linalg.Vector, reserve float64) (Quote, error) {
	if c.pending {
		return Quote{}, ErrPendingRound
	}
	v := c.Value(x)
	p := math.Max(v, reserve)
	c.pending = true
	return Quote{
		Price:          p,
		Decision:       DecisionConservative,
		Lower:          v,
		Upper:          v,
		ReserveBinding: reserve > v,
	}, nil
}

// Observe discards the feedback.
func (c *ClairvoyantPoster) Observe(bool) error {
	if !c.pending {
		return ErrNoPendingRound
	}
	c.pending = false
	return nil
}

// FixedPricePoster posts one constant price (floored at the reserve) in
// every round — the classic identical-product posted price strategy that
// contextual pricing improves upon; used in ablations.
type FixedPricePoster struct {
	price   float64
	pending bool
}

// NewFixedPrice builds the constant-price strategy.
func NewFixedPrice(price float64) (*FixedPricePoster, error) {
	if math.IsNaN(price) || math.IsInf(price, 0) {
		return nil, fmt.Errorf("pricing: fixed price must be finite, got %g", price)
	}
	return &FixedPricePoster{price: price}, nil
}

// PostPrice posts max(fixed, reserve).
func (f *FixedPricePoster) PostPrice(_ linalg.Vector, reserve float64) (Quote, error) {
	if f.pending {
		return Quote{}, ErrPendingRound
	}
	p := math.Max(f.price, reserve)
	f.pending = true
	return Quote{
		Price:          p,
		Decision:       DecisionConservative,
		Lower:          p,
		Upper:          p,
		ReserveBinding: reserve > f.price,
	}, nil
}

// Observe discards the feedback.
func (f *FixedPricePoster) Observe(bool) error {
	if !f.pending {
		return ErrNoPendingRound
	}
	f.pending = false
	return nil
}
