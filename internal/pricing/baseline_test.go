package pricing

import (
	"math"
	"testing"

	"datamarket/internal/linalg"
	"datamarket/internal/randx"
)

func TestRiskAverseBaseline(t *testing.T) {
	b := NewRiskAverse()
	x := linalg.VectorOf(1, 2)
	q, err := b.PostPrice(x, 3)
	if err != nil {
		t.Fatal(err)
	}
	if q.Price != 3 || !q.ReserveBinding {
		t.Fatalf("quote = %+v", q)
	}
	if _, err := b.PostPrice(x, 3); err != ErrPendingRound {
		t.Fatalf("double post: %v", err)
	}
	if err := b.Observe(true); err != nil {
		t.Fatal(err)
	}
	if err := b.Observe(true); err != ErrNoPendingRound {
		t.Fatalf("double observe: %v", err)
	}
}

func TestRiskAverseRegretIsFullMarkup(t *testing.T) {
	// When q ≤ v always, the baseline's regret is exactly Σ(v−q).
	b := NewRiskAverse()
	tr := NewTracker(false)
	r := randx.New(51)
	var want float64
	for i := 0; i < 500; i++ {
		x := r.OnSphere(3)
		v := 1 + r.Float64()
		q := 0.6 * v
		quote, err := b.PostPrice(x, q)
		if err != nil {
			t.Fatal(err)
		}
		b.Observe(Sold(quote.Price, v))
		tr.Record(v, q, quote)
		want += v - q
	}
	if math.Abs(tr.CumulativeRegret()-want) > 1e-9 {
		t.Fatalf("baseline regret %v, want %v", tr.CumulativeRegret(), want)
	}
}

func TestClairvoyantZeroRegret(t *testing.T) {
	theta := linalg.VectorOf(0.5, 0.5)
	c, err := NewClairvoyant(func(x linalg.Vector) float64 { return x.Dot(theta) })
	if err != nil {
		t.Fatal(err)
	}
	tr := NewTracker(false)
	r := randx.New(52)
	for i := 0; i < 300; i++ {
		x := r.UniformVector(2, 0.1, 1)
		v := x.Dot(theta)
		q := 0.5 * v
		quote, err := c.PostPrice(x, q)
		if err != nil {
			t.Fatal(err)
		}
		c.Observe(Sold(quote.Price, v))
		tr.Record(v, q, quote)
	}
	if tr.CumulativeRegret() > 1e-9 {
		t.Fatalf("clairvoyant accumulated regret %v", tr.CumulativeRegret())
	}
	if _, err := NewClairvoyant(nil); err == nil {
		t.Fatal("expected error for nil value function")
	}
}

func TestClairvoyantHonoursReserve(t *testing.T) {
	c, _ := NewClairvoyant(func(linalg.Vector) float64 { return 2 })
	q, err := c.PostPrice(linalg.VectorOf(1), 5)
	if err != nil {
		t.Fatal(err)
	}
	if q.Price != 5 || !q.ReserveBinding {
		t.Fatalf("quote = %+v", q)
	}
	c.Observe(false)
}

func TestFixedPricePoster(t *testing.T) {
	f, err := NewFixedPrice(2)
	if err != nil {
		t.Fatal(err)
	}
	q, err := f.PostPrice(linalg.VectorOf(1), 0)
	if err != nil {
		t.Fatal(err)
	}
	if q.Price != 2 || q.ReserveBinding {
		t.Fatalf("quote = %+v", q)
	}
	f.Observe(true)
	// Reserve floors the fixed price.
	q, _ = f.PostPrice(linalg.VectorOf(1), 7)
	if q.Price != 7 || !q.ReserveBinding {
		t.Fatalf("quote = %+v", q)
	}
	f.Observe(false)
	if _, err := NewFixedPrice(math.NaN()); err == nil {
		t.Fatal("expected error for NaN price")
	}
}

func TestMechanismBeatsRiskAverseBaseline(t *testing.T) {
	// The headline comparison of §V-A: the learning mechanism must end up
	// with a substantially lower regret ratio than always-post-reserve.
	n := 10
	T := 8000
	r := randx.New(53)
	theta := positiveTheta(r, n)
	eps := DefaultThreshold(n, T, 0)
	m, _ := New(n, 2*math.Sqrt(float64(n)), WithThreshold(eps), WithReserve())
	b := NewRiskAverse()

	trM := NewTracker(false)
	trB := NewTracker(false)
	for i := 0; i < T; i++ {
		x := positiveSphere(r, n)
		v := x.Dot(theta)
		q := 0.8 * v
		qm, err := m.PostPrice(x, q)
		if err != nil {
			t.Fatal(err)
		}
		if qm.Decision != DecisionSkip {
			m.Observe(Sold(qm.Price, v))
		}
		trM.Record(v, q, qm)

		qb, _ := b.PostPrice(x, q)
		b.Observe(Sold(qb.Price, v))
		trB.Record(v, q, qb)
	}
	if !(trM.RegretRatio() < trB.RegretRatio()*0.7) {
		t.Fatalf("mechanism ratio %v not clearly below baseline %v",
			trM.RegretRatio(), trB.RegretRatio())
	}
}
