package pricing

import (
	"fmt"
	"math"
)

// IntervalMechanism is the specialized one-dimensional mechanism of §II-C:
// the knowledge set for the scalar weight θ* is an interval [lo, hi], the
// exploratory price bisects it, and Theorem 3 gives O(log T) worst-case
// regret with ε = log²(T)/T.
//
// It is operationally identical to a 1-dimensional Mechanism but keeps the
// interval in closed form (no matrix work at all), which makes it the right
// choice for single-feature deployments such as pricing by total privacy
// compensation alone. The general Mechanism with n = 1 agrees with it
// round-for-round (verified by tests).
type IntervalMechanism struct {
	lo, hi float64
	eps    float64
	delta  float64
	useRes bool

	pending  bool
	lastX    float64
	lastP    float64
	lastExpl bool

	counters Counters
}

// NewInterval builds a one-dimensional mechanism with initial knowledge
// θ* ∈ [lo, hi].
func NewInterval(lo, hi float64, opts ...Option) (*IntervalMechanism, error) {
	// !(lo < hi) already rejects NaN, but ±Inf bounds pass it and make
	// the bisecting price (lo+hi)/2 NaN on the first round.
	if math.IsNaN(lo) || math.IsInf(lo, 0) || math.IsNaN(hi) || math.IsInf(hi, 0) {
		return nil, fmt.Errorf("pricing: interval bounds must be finite, got [%g, %g]", lo, hi)
	}
	if !(lo < hi) {
		return nil, fmt.Errorf("pricing: interval [%g, %g] is empty", lo, hi)
	}
	var cfg config
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.delta < 0 {
		return nil, fmt.Errorf("pricing: negative uncertainty buffer %g", cfg.delta)
	}
	if !cfg.epsSet {
		cfg.eps = math.Max(1e-6, 4*cfg.delta)
	}
	if cfg.eps <= 0 {
		return nil, fmt.Errorf("pricing: threshold must be positive, got %g", cfg.eps)
	}
	return &IntervalMechanism{
		lo: lo, hi: hi,
		eps:    cfg.eps,
		delta:  cfg.delta,
		useRes: cfg.useReserve,
	}, nil
}

// Bounds returns the current knowledge interval for θ*.
func (m *IntervalMechanism) Bounds() (lo, hi float64) { return m.lo, m.hi }

// Counters returns a snapshot of the run statistics.
func (m *IntervalMechanism) Counters() Counters { return m.counters }

// PostPrice prices a query with scalar feature x > 0 and the given reserve.
// The market value interval is [x·lo, x·hi] for x > 0 (the compensation
// features of the paper are non-negative by construction; a non-positive
// feature is rejected as malformed).
func (m *IntervalMechanism) PostPrice(x, reserve float64) (Quote, error) {
	if x <= 0 || math.IsNaN(x) || math.IsInf(x, 0) {
		return Quote{}, fmt.Errorf("pricing: interval mechanism requires positive finite feature, got %g", x)
	}
	if m.pending {
		return Quote{}, ErrPendingRound
	}
	m.counters.Rounds++

	plo, phi := x*m.lo, x*m.hi
	q := Quote{Lower: plo, Upper: phi}

	if m.useRes && reserve >= phi+m.delta {
		q.Decision = DecisionSkip
		m.counters.Skips++
		return q, nil
	}

	if phi-plo > m.eps {
		price := (plo + phi) / 2
		if m.useRes && reserve > price {
			price = reserve
			q.ReserveBinding = true
		}
		q.Price = price
		q.Decision = DecisionExploratory
		m.counters.Exploratory++
		m.begin(x, price, true)
		return q, nil
	}

	price := plo - m.delta
	if m.useRes && reserve > price {
		price = reserve
		q.ReserveBinding = true
	}
	q.Price = price
	q.Decision = DecisionConservative
	m.counters.Conservative++
	m.begin(x, price, false)
	return q, nil
}

func (m *IntervalMechanism) begin(x, p float64, expl bool) {
	m.pending = true
	m.lastX, m.lastP, m.lastExpl = x, p, expl
}

// Observe folds the buyer's feedback into the interval:
// rejection ⇒ θ* ≤ (p+δ)/x, acceptance ⇒ θ* ≥ (p−δ)/x.
// Conservative feedback does not refine (matching Algorithm 1 line 24).
func (m *IntervalMechanism) Observe(accepted bool) error {
	if !m.pending {
		return ErrNoPendingRound
	}
	m.pending = false
	if accepted {
		m.counters.Accepts++
	} else {
		m.counters.Rejects++
	}
	if !m.lastExpl {
		return nil
	}
	if accepted {
		bound := (m.lastP - m.delta) / m.lastX
		if bound > m.lo {
			m.lo = bound
			m.counters.CutsApplied++
		} else {
			m.counters.CutsShallow++
		}
	} else {
		bound := (m.lastP + m.delta) / m.lastX
		if bound < m.hi {
			m.hi = bound
			m.counters.CutsApplied++
		} else {
			m.counters.CutsShallow++
		}
	}
	// Numerical floor: never let the interval invert from rounding.
	if m.hi < m.lo {
		mid := (m.hi + m.lo) / 2
		m.lo, m.hi = mid, mid
	}
	return nil
}
