package pricing

import (
	"math"
	"testing"

	"datamarket/internal/linalg"
	"datamarket/internal/randx"
)

// runLinear drives a Poster through T rounds of the noiseless linear model
// v = xᵀθ*, with features drawn uniformly on the sphere and reserve prices
// from the supplied function. It returns the tracker.
func runLinear(t *testing.T, p Poster, theta linalg.Vector, T int, seed uint64,
	reserveOf func(x linalg.Vector, v float64) float64) *Tracker {
	t.Helper()
	r := randx.New(seed)
	tr := NewTracker(true)
	for i := 0; i < T; i++ {
		x := r.OnSphere(len(theta))
		v := x.Dot(theta)
		q := reserveOf(x, v)
		quote, err := p.PostPrice(x, q)
		if err != nil {
			t.Fatalf("round %d: PostPrice: %v", i, err)
		}
		if quote.Decision != DecisionSkip {
			if err := p.Observe(Sold(quote.Price, v)); err != nil {
				t.Fatalf("round %d: Observe: %v", i, err)
			}
		}
		tr.Record(v, q, quote)
	}
	return tr
}

func noReserve(linalg.Vector, float64) float64 { return math.Inf(-1) }

// positiveSphere returns a uniform unit vector folded into the positive
// orthant — the shape of the paper's compensation-derived features (§V-A),
// which are non-negative and L2-normalized.
func positiveSphere(r *randx.RNG, n int) linalg.Vector {
	v := r.OnSphere(n)
	for i := range v {
		v[i] = math.Abs(v[i])
	}
	return v
}

// positiveTheta draws a positive weight vector scaled to ‖θ*‖ = √(2n),
// matching the paper's construction that keeps market values above the
// compensation-based reserve with high probability.
func positiveTheta(r *randx.RNG, n int) linalg.Vector {
	th := r.NormalVector(n, 1)
	for i := range th {
		th[i] = math.Abs(th[i])
	}
	th.Normalize()
	return th.Scale(math.Sqrt(2 * float64(n)))
}

func TestNewValidation(t *testing.T) {
	if _, err := New(0, 1); err == nil {
		t.Fatal("expected error for n=0")
	}
	if _, err := New(2, 0); err == nil {
		t.Fatal("expected error for radius 0")
	}
	if _, err := New(2, 1, WithUncertainty(-1)); err == nil {
		t.Fatal("expected error for negative delta")
	}
	if _, err := New(2, 1, WithThreshold(0)); err == nil {
		t.Fatal("expected error for zero threshold")
	}
	m, err := New(3, 2, WithReserve(), WithUncertainty(0.1), WithThreshold(0.5))
	if err != nil {
		t.Fatal(err)
	}
	if m.Dim() != 3 || !m.UsesReserve() || m.Delta() != 0.1 || m.Threshold() != 0.5 {
		t.Fatalf("accessors wrong: %v %v %v %v", m.Dim(), m.UsesReserve(), m.Delta(), m.Threshold())
	}
}

func TestNewFromBox(t *testing.T) {
	m, err := NewFromBox(linalg.VectorOf(-1, -1), linalg.VectorOf(1, 1))
	if err != nil {
		t.Fatal(err)
	}
	// Radius = √2: support of e₁ is ±√2.
	lo, hi := m.ValueBounds(linalg.VectorOf(1, 0))
	if math.Abs(hi-math.Sqrt2) > 1e-9 || math.Abs(lo+math.Sqrt2) > 1e-9 {
		t.Fatalf("bounds = [%v, %v]", lo, hi)
	}
	if _, err := NewFromBox(linalg.VectorOf(1), linalg.VectorOf(0)); err == nil {
		t.Fatal("expected inverted bound error")
	}
	if _, err := NewFromBox(linalg.VectorOf(1), linalg.VectorOf(1, 2)); err == nil {
		t.Fatal("expected mismatch error")
	}
}

func TestProtocolErrors(t *testing.T) {
	m, _ := New(2, 1, WithThreshold(0.01))
	if err := m.Observe(true); err != ErrNoPendingRound {
		t.Fatalf("Observe without round: %v", err)
	}
	x := linalg.VectorOf(1, 0)
	if _, err := m.PostPrice(linalg.VectorOf(1), 0); err == nil {
		t.Fatal("expected dimension error")
	}
	if _, err := m.PostPrice(x, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := m.PostPrice(x, 0); err != ErrPendingRound {
		t.Fatalf("double PostPrice: %v", err)
	}
	if err := m.Observe(true); err != nil {
		t.Fatal(err)
	}
	if err := m.Observe(true); err != ErrNoPendingRound {
		t.Fatalf("double Observe: %v", err)
	}
}

func TestSkipRoundNeedsNoObserve(t *testing.T) {
	m, _ := New(2, 1, WithReserve(), WithThreshold(0.01))
	x := linalg.VectorOf(1, 0)
	// Max possible value is 1; a reserve of 5 forces a skip.
	q, err := m.PostPrice(x, 5)
	if err != nil {
		t.Fatal(err)
	}
	if q.Decision != DecisionSkip {
		t.Fatalf("decision = %v, want skip", q.Decision)
	}
	// Next round can proceed immediately.
	if _, err := m.PostPrice(x, 0); err != nil {
		t.Fatalf("PostPrice after skip: %v", err)
	}
	c := m.Counters()
	if c.Skips != 1 || c.Rounds != 2 {
		t.Fatalf("counters = %+v", c)
	}
}

func TestPureVersionIgnoresReserve(t *testing.T) {
	m, _ := New(2, 1, WithThreshold(0.01)) // Algorithm 1*: no reserve
	x := linalg.VectorOf(1, 0)
	q, err := m.PostPrice(x, 100) // huge reserve must be ignored
	if err != nil {
		t.Fatal(err)
	}
	if q.Decision == DecisionSkip || q.ReserveBinding {
		t.Fatalf("pure version honoured the reserve: %+v", q)
	}
	// Exploratory price is the middle price 0 for a centered ball.
	if math.Abs(q.Price) > 1e-12 {
		t.Fatalf("price = %v, want middle 0", q.Price)
	}
}

func TestExploratoryIsBisectionAndConservativeIsFloor(t *testing.T) {
	m, _ := New(2, 2, WithThreshold(0.05))
	x := linalg.VectorOf(0, 1)
	q, _ := m.PostPrice(x, math.Inf(-1))
	if q.Decision != DecisionExploratory {
		t.Fatalf("first round should explore, got %v", q.Decision)
	}
	if math.Abs(q.Price-(q.Lower+q.Upper)/2) > 1e-12 {
		t.Fatalf("exploratory price %v is not the middle of [%v, %v]", q.Price, q.Lower, q.Upper)
	}
	// Drive to convergence along this direction, then expect conservative.
	theta := linalg.VectorOf(0.3, 0.9)
	for i := 0; i < 200; i++ {
		if q.Decision == DecisionConservative {
			break
		}
		v := x.Dot(theta)
		if err := m.Observe(Sold(q.Price, v)); err != nil {
			t.Fatal(err)
		}
		q, _ = m.PostPrice(x, math.Inf(-1))
	}
	if q.Decision != DecisionConservative {
		t.Fatal("mechanism never became conservative along a fixed direction")
	}
	if math.Abs(q.Price-q.Lower) > 1e-12 {
		t.Fatalf("conservative price %v != lower bound %v (δ=0)", q.Price, q.Lower)
	}
	// δ=0 conservative price must sell.
	if q.Price > x.Dot(theta)+1e-9 {
		t.Fatalf("conservative price %v above value %v", q.Price, x.Dot(theta))
	}
}

func TestTruthNeverExpelledNoiseless(t *testing.T) {
	r := randx.New(3)
	n := 6
	theta := r.OnSphere(n).Scale(1.2)
	m, _ := New(n, 2, WithThreshold(0.01))
	for i := 0; i < 500; i++ {
		x := r.OnSphere(n)
		v := x.Dot(theta)
		q, err := m.PostPrice(x, math.Inf(-1))
		if err != nil {
			t.Fatal(err)
		}
		if err := m.Observe(Sold(q.Price, v)); err != nil {
			t.Fatal(err)
		}
		if !m.Knowledge().Contains(theta, 1e-6) {
			t.Fatalf("round %d: θ* expelled from knowledge set", i)
		}
	}
	if c := m.Counters(); c.CutsInfeasible != 0 {
		t.Fatalf("infeasible cuts occurred: %+v", c)
	}
}

func TestValueBoundsAlwaysBracketTruth(t *testing.T) {
	r := randx.New(4)
	n := 4
	theta := r.OnSphere(n)
	m, _ := New(n, 1.5, WithThreshold(0.02))
	for i := 0; i < 300; i++ {
		x := r.OnSphere(n)
		v := x.Dot(theta)
		lo, hi := m.ValueBounds(x)
		if v < lo-1e-7 || v > hi+1e-7 {
			t.Fatalf("round %d: value %v outside [%v, %v]", i, v, lo, hi)
		}
		q, _ := m.PostPrice(x, math.Inf(-1))
		m.Observe(Sold(q.Price, v))
	}
}

func TestExploratoryRoundsWithinLemma6Bound(t *testing.T) {
	for _, n := range []int{2, 5, 10} {
		r := randx.New(uint64(100 + n))
		theta := r.OnSphere(n)
		eps := 0.05
		m, _ := New(n, 1, WithThreshold(eps))
		T := 20000
		for i := 0; i < T; i++ {
			x := r.OnSphere(n)
			v := x.Dot(theta)
			q, _ := m.PostPrice(x, math.Inf(-1))
			m.Observe(Sold(q.Price, v))
		}
		bound := ExploratoryBound(n, 1, 1, eps)
		got := float64(m.Counters().Exploratory)
		if got > bound {
			t.Fatalf("n=%d: exploratory rounds %v exceed Lemma 6 bound %v", n, got, bound)
		}
	}
}

func TestRegretSublinearNoiseless(t *testing.T) {
	n := 5
	r := randx.New(7)
	theta := r.OnSphere(n)
	T := 20000
	eps := DefaultThreshold(n, T, 0)
	m, _ := New(n, 1, WithThreshold(eps))
	tr := runLinear(t, m, theta, T, 8, noReserve)

	// Average regret over the last quarter must be far below the average
	// market value magnitude — the mechanism has converged.
	curve := tr.RegretCurve()
	lastQ := (curve[T-1] - curve[3*T/4]) / float64(T/4)
	if lastQ > 0.01 {
		t.Fatalf("late per-round regret %v — mechanism did not converge", lastQ)
	}
	// Total regret must be a small fraction of total absolute value.
	if ratio := tr.CumulativeRegret() / float64(T); ratio > 0.05 {
		t.Fatalf("mean regret %v too high", ratio)
	}
}

func TestReserveReducesOrMatchesRegret(t *testing.T) {
	// §V-A headline: on the paper-style positive instance with reserves
	// below the market value, the version with reserve must not accumulate
	// meaningfully more regret than the pure version on the same stream —
	// empirically it reduces regret by mitigating cold start.
	n := 8
	T := 5000
	r0 := randx.New(11)
	theta := positiveTheta(r0, n)
	radius := 2 * math.Sqrt(float64(n))
	eps := DefaultThreshold(n, T, 0)

	run := func(withReserve bool) *Tracker {
		opts := []Option{WithThreshold(eps)}
		if withReserve {
			opts = append(opts, WithReserve())
		}
		m, err := New(n, radius, opts...)
		if err != nil {
			t.Fatal(err)
		}
		r := randx.New(13) // identical stream for both versions
		tr := NewTracker(false)
		for i := 0; i < T; i++ {
			x := positiveSphere(r, n)
			v := x.Dot(theta)
			reserve := 0.7 * v
			q, err := m.PostPrice(x, reserve)
			if err != nil {
				t.Fatal(err)
			}
			if q.Decision != DecisionSkip {
				m.Observe(Sold(q.Price, v))
			}
			tr.Record(v, reserve, q)
		}
		return tr
	}

	trPure := run(false)
	trRes := run(true)
	if trRes.CumulativeRegret() > trPure.CumulativeRegret()*1.1 {
		t.Fatalf("reserve increased regret: %v vs pure %v",
			trRes.CumulativeRegret(), trPure.CumulativeRegret())
	}
}

func TestUncertaintyBufferKeepsTruth(t *testing.T) {
	// With subGaussian noise bounded by the buffer, θ* must survive.
	n := 4
	T := 3000
	r := randx.New(17)
	theta := r.OnSphere(n)
	sigma := randx.SigmaForBuffer(0.01, T)
	noise, _ := randx.NewSubGaussianNoise(randx.NoiseNormal, sigma)
	eps := DefaultThreshold(n, T, 0.01)
	m, _ := New(n, 1, WithThreshold(eps), WithUncertainty(0.01))
	for i := 0; i < T; i++ {
		x := r.OnSphere(n)
		v := x.Dot(theta) + noise.Sample(r)
		q, err := m.PostPrice(x, math.Inf(-1))
		if err != nil {
			t.Fatal(err)
		}
		if err := m.Observe(Sold(q.Price, v)); err != nil {
			t.Fatal(err)
		}
	}
	if !m.Knowledge().Contains(theta, 1e-6) {
		t.Fatal("θ* expelled despite uncertainty buffer")
	}
}

func TestConservativePriceUsesBuffer(t *testing.T) {
	delta := 0.05
	m, _ := New(2, 1, WithThreshold(10), WithUncertainty(delta)) // force conservative
	x := linalg.VectorOf(1, 0)
	q, err := m.PostPrice(x, math.Inf(-1))
	if err != nil {
		t.Fatal(err)
	}
	if q.Decision != DecisionConservative {
		t.Fatalf("decision = %v", q.Decision)
	}
	if math.Abs(q.Price-(q.Lower-delta)) > 1e-12 {
		t.Fatalf("conservative price %v, want p̲−δ = %v", q.Price, q.Lower-delta)
	}
}

func TestSkipThresholdIncludesBuffer(t *testing.T) {
	delta := 0.1
	m, _ := New(2, 1, WithReserve(), WithThreshold(0.01), WithUncertainty(delta))
	x := linalg.VectorOf(1, 0) // p̄ = 1
	// Reserve in (p̄, p̄+δ) must NOT skip under uncertainty.
	q, err := m.PostPrice(x, 1.05)
	if err != nil {
		t.Fatal(err)
	}
	if q.Decision == DecisionSkip {
		t.Fatal("skipped although reserve < p̄ + δ")
	}
	m.Observe(false)
	// Reserve ≥ p̄+δ must skip.
	q, err = m.PostPrice(x, 1.2)
	if err != nil {
		t.Fatal(err)
	}
	if q.Decision != DecisionSkip {
		t.Fatalf("decision = %v, want skip", q.Decision)
	}
}

func TestDefaultThreshold(t *testing.T) {
	// n = 1: log₂(T)/T (Theorem 3).
	T := 1024
	want := math.Log2(float64(T)) / float64(T)
	if got := DefaultThreshold(1, T, 0); math.Abs(got-want) > 1e-12 {
		t.Fatalf("1-D threshold = %v, want %v", got, want)
	}
	// n ≥ 2: max(n²/T, 4nδ).
	if got := DefaultThreshold(10, 1000, 0); math.Abs(got-0.1) > 1e-12 {
		t.Fatalf("threshold = %v, want 0.1", got)
	}
	if got := DefaultThreshold(10, 1000000, 0.01); math.Abs(got-0.4) > 1e-12 {
		t.Fatalf("threshold = %v, want 4nδ = 0.4", got)
	}
	if got := DefaultThreshold(2, 0, 0); got <= 0 {
		t.Fatalf("degenerate horizon threshold = %v", got)
	}
}

func TestDecisionString(t *testing.T) {
	if DecisionSkip.String() != "skip" ||
		DecisionExploratory.String() != "exploratory" ||
		DecisionConservative.String() != "conservative" {
		t.Fatal("Decision strings wrong")
	}
	if Decision(9).String() != "Decision(9)" {
		t.Fatal("unknown decision string wrong")
	}
}

func TestCountersConsistency(t *testing.T) {
	n := 3
	r := randx.New(23)
	theta := r.OnSphere(n)
	m, _ := New(n, 1, WithReserve(), WithThreshold(0.05))
	T := 2000
	skips := 0
	for i := 0; i < T; i++ {
		x := r.OnSphere(n)
		v := x.Dot(theta)
		reserve := v * r.Uniform(0.5, 1.5) // sometimes above value
		q, err := m.PostPrice(x, reserve)
		if err != nil {
			t.Fatal(err)
		}
		if q.Decision == DecisionSkip {
			skips++
			continue
		}
		m.Observe(Sold(q.Price, v))
	}
	c := m.Counters()
	if c.Rounds != T {
		t.Fatalf("rounds = %d, want %d", c.Rounds, T)
	}
	if c.Skips != skips {
		t.Fatalf("skips = %d, want %d", c.Skips, skips)
	}
	if c.Exploratory+c.Conservative+c.Skips != T {
		t.Fatalf("decision counts don't add up: %+v", c)
	}
	if c.Accepts+c.Rejects != T-skips {
		t.Fatalf("feedback counts don't add up: %+v", c)
	}
}
