package pricing

import (
	"fmt"
	"math"
	"sort"

	"datamarket/internal/kernel"
	"datamarket/internal/linalg"
)

// Family identifies one of the hosted pricing families. A serving stack
// (brokerd, the market broker, experiment harnesses) treats a stream as a
// family plus a model config instead of a concrete mechanism type, so every
// family the paper evaluates — the linear ellipsoid (Algorithms 1/2), the
// nonlinear g∘φ extensions of §IV-A, and the SGD comparator of §VI-B — can
// live behind the same create/price/snapshot/restore surface.
type Family string

const (
	// FamilyLinear is the ellipsoid mechanism over raw features (*Mechanism).
	FamilyLinear Family = "linear"
	// FamilyNonlinear is the generalized model v = g(φ(x)ᵀθ*)
	// (*NonlinearMechanism): links, feature maps, and landmark kernels.
	FamilyNonlinear Family = "nonlinear"
	// FamilySGD is the gradient-descent comparator (*SGDPoster).
	FamilySGD Family = "sgd"
)

// KernelConfig is the serializable description of a Mercer kernel for the
// landmark feature map. Type selects among the kernel package's kernels.
type KernelConfig struct {
	// Type is "linear", "poly", or "rbf".
	Type string `json:"type"`
	// Degree and Offset parameterize the polynomial kernel (xᵀy + c)^d.
	Degree int     `json:"degree,omitempty"`
	Offset float64 `json:"offset,omitempty"`
	// Gamma parameterizes the RBF kernel exp(−γ‖x−y‖²).
	Gamma float64 `json:"gamma,omitempty"`
}

// build instantiates the configured kernel.
func (c KernelConfig) build() (Kernel, error) {
	switch c.Type {
	case "linear":
		return kernel.Linear{}, nil
	case "poly":
		return kernel.NewPolynomial(c.Degree, c.Offset)
	case "rbf":
		return kernel.NewRBF(c.Gamma)
	default:
		return nil, fmt.Errorf("pricing: unknown kernel type %q (want linear, poly, or rbf)", c.Type)
	}
}

// configOfKernel reverse-maps a kernel onto its config; only the kernel
// package's types are serializable.
func configOfKernel(k Kernel) (*KernelConfig, error) {
	switch kk := k.(type) {
	case kernel.Linear:
		return &KernelConfig{Type: "linear"}, nil
	case kernel.Polynomial:
		return &KernelConfig{Type: "poly", Degree: kk.Degree, Offset: kk.Offset}, nil
	case kernel.RBF:
		return &KernelConfig{Type: "rbf", Gamma: kk.Gamma}, nil
	default:
		return nil, fmt.Errorf("pricing: kernel %T is not serializable (use the kernel package's types)", k)
	}
}

// ModelConfig is the serializable model description of a family. The
// nonlinear family reads Link, Map, Kernel, and Landmarks; the sgd family
// reads Eta0 and Margin; the linear family takes no model config at all.
type ModelConfig struct {
	// Link is the outer function g: "identity" (default), "exp", "logistic".
	Link string `json:"link,omitempty"`
	// Map is the inner transformation φ: "identity" (default), "log",
	// "landmark".
	Map string `json:"map,omitempty"`
	// Kernel and Landmarks configure the landmark map φ(x) = (K(x, lⱼ))ⱼ.
	Kernel    *KernelConfig `json:"kernel,omitempty"`
	Landmarks [][]float64   `json:"landmarks,omitempty"`
	// Eta0 is the sgd initial learning rate (0 picks the default 0.5).
	Eta0 float64 `json:"eta0,omitempty"`
	// Margin scales the sgd downward exploration offset t^{-1/3}.
	Margin float64 `json:"margin,omitempty"`
}

// isZero reports whether no model field is set.
func (c ModelConfig) isZero() bool {
	return c.Link == "" && c.Map == "" && c.Kernel == nil &&
		len(c.Landmarks) == 0 && c.Eta0 == 0 && c.Margin == 0
}

// BuildModel instantiates the nonlinear family's link and feature map.
func BuildModel(c ModelConfig) (Model, error) {
	if c.Eta0 != 0 || c.Margin != 0 {
		return Model{}, fmt.Errorf("pricing: eta0/margin belong to the sgd family, not a nonlinear model")
	}
	var link Link
	switch c.Link {
	case "", "identity":
		link = IdentityLink{}
	case "exp":
		link = ExpLink{}
	case "logistic":
		link = LogisticLink{}
	default:
		return Model{}, fmt.Errorf("pricing: unknown link %q (want identity, exp, or logistic)", c.Link)
	}
	var fm FeatureMap
	switch c.Map {
	case "", "identity", "log":
		if c.Kernel != nil || len(c.Landmarks) > 0 {
			return Model{}, fmt.Errorf("pricing: kernel/landmarks are only valid with the landmark map")
		}
		if c.Map == "log" {
			fm = LogMap{}
		} else {
			fm = IdentityMap{}
		}
	case "landmark":
		if c.Kernel == nil {
			return Model{}, fmt.Errorf("pricing: landmark map needs a kernel")
		}
		k, err := c.Kernel.build()
		if err != nil {
			return Model{}, err
		}
		lms := make([]linalg.Vector, len(c.Landmarks))
		for i := range c.Landmarks {
			lms[i] = linalg.Vector(c.Landmarks[i])
		}
		lm, err := NewLandmarkMap(k, lms)
		if err != nil {
			return Model{}, err
		}
		fm = lm
	default:
		return Model{}, fmt.Errorf("pricing: unknown feature map %q (want identity, log, or landmark)", c.Map)
	}
	return Model{Link: link, Map: fm}, nil
}

// ConfigOfModel reverse-maps a Model onto its serializable config. It fails
// for links, maps, or kernels outside the named set — such models cannot be
// snapshotted into a family envelope.
func ConfigOfModel(m Model) (ModelConfig, error) {
	var c ModelConfig
	switch m.Link.(type) {
	case IdentityLink:
		c.Link = "identity"
	case ExpLink:
		c.Link = "exp"
	case LogisticLink:
		c.Link = "logistic"
	default:
		return ModelConfig{}, fmt.Errorf("pricing: link %T is not serializable", m.Link)
	}
	switch mp := m.Map.(type) {
	case IdentityMap:
		c.Map = "identity"
	case LogMap:
		c.Map = "log"
	case *LandmarkMap:
		c.Map = "landmark"
		kc, err := configOfKernel(mp.kernel)
		if err != nil {
			return ModelConfig{}, err
		}
		c.Kernel = kc
		c.Landmarks = make([][]float64, len(mp.landmarks))
		for i, l := range mp.landmarks {
			c.Landmarks[i] = l.Clone()
		}
	default:
		return ModelConfig{}, fmt.Errorf("pricing: feature map %T is not serializable", m.Map)
	}
	return c, nil
}

// FamilySpec is the factory input: everything needed to stand up a pricing
// stream of any family. The zero Family means linear, preserving the
// pre-family create surface.
type FamilySpec struct {
	Family Family `json:"family"`
	// Dim is the input feature dimension n (what callers pass to PostPrice).
	Dim int `json:"dim"`
	// Radius bounds ‖θ*‖ over the (mapped) features for the ellipsoid
	// families; 0 defaults to 2√(mapped dim).
	Radius float64 `json:"radius,omitempty"`
	// Reserve enables the reserve price constraint (all families).
	Reserve bool `json:"reserve,omitempty"`
	// Delta is the uncertainty buffer δ ≥ 0 (ellipsoid families).
	Delta float64 `json:"delta,omitempty"`
	// Threshold overrides the exploration threshold ε; with Threshold 0 and
	// Horizon > 0 the DefaultThreshold schedule over the mapped dimension is
	// used (ellipsoid families).
	Threshold float64 `json:"threshold,omitempty"`
	Horizon   int     `json:"horizon,omitempty"`
	// Model carries the family-specific model config.
	Model ModelConfig `json:"model,omitempty"`
}

// FamilyPoster is the capability bundle every hosted family implements:
// two-phase posting, pending introspection, bookkeeping, and a
// family-tagged snapshot envelope. SyncPoster can wrap any FamilyPoster
// and forwards every capability, so the serving stack works uniformly.
type FamilyPoster interface {
	Poster
	CounterSource
	// Pending reports whether a posted price is awaiting Observe.
	Pending() bool
	// Dim returns the input feature dimension.
	Dim() int
	// Family identifies the poster's family.
	Family() Family
	// SnapshotEnvelope captures the full state in a family-tagged envelope.
	SnapshotEnvelope() (*Envelope, error)
}

// familyEntry couples a family's factory with its snapshot restorer.
type familyEntry struct {
	build   func(FamilySpec) (FamilyPoster, error)
	restore func(*Envelope) (FamilyPoster, error)
}

// familyRegistry maps family names to their builders. Registration is
// static: the three families are fixed by the paper's evaluation.
var familyRegistry = map[Family]familyEntry{
	FamilyLinear:    {build: buildLinearFamily, restore: restoreLinearFamily},
	FamilyNonlinear: {build: buildNonlinearFamily, restore: restoreNonlinearFamily},
	FamilySGD:       {build: buildSGDFamily, restore: restoreSGDFamily},
}

// Families lists the hosted family names, sorted.
func Families() []Family {
	out := make([]Family, 0, len(familyRegistry))
	for f := range familyRegistry {
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// NewFamilyPoster builds a poster of the requested family. An empty family
// selects linear.
func NewFamilyPoster(spec FamilySpec) (FamilyPoster, error) {
	fam := spec.Family
	if fam == "" {
		fam = FamilyLinear
	}
	entry, ok := familyRegistry[fam]
	if !ok {
		return nil, fmt.Errorf("pricing: unknown family %q (have %v)", spec.Family, Families())
	}
	if spec.Dim < 1 {
		return nil, fmt.Errorf("pricing: dimension %d invalid, want ≥ 1", spec.Dim)
	}
	return entry.build(spec)
}

// ellipsoidOptions assembles the shared ellipsoid-family options and the
// defaulted radius. effDim is the mapped (score-space) dimension, which
// drives both the radius default and the DefaultThreshold schedule.
func (spec FamilySpec) ellipsoidOptions(effDim int) ([]Option, float64, error) {
	if spec.Horizon < 0 {
		return nil, 0, fmt.Errorf("pricing: horizon %d invalid, want ≥ 0", spec.Horizon)
	}
	if !isFinite(spec.Delta) || spec.Delta < 0 {
		return nil, 0, fmt.Errorf("pricing: delta %g invalid", spec.Delta)
	}
	if !isFinite(spec.Threshold) || spec.Threshold < 0 {
		return nil, 0, fmt.Errorf("pricing: threshold %g invalid", spec.Threshold)
	}
	radius := spec.Radius
	if radius == 0 && effDim > 0 {
		radius = 2 * math.Sqrt(float64(effDim))
	}
	if !isFinite(radius) || radius <= 0 {
		return nil, 0, fmt.Errorf("pricing: radius %g invalid", spec.Radius)
	}
	opts := []Option{WithUncertainty(spec.Delta)}
	if spec.Reserve {
		opts = append(opts, WithReserve())
	}
	switch {
	case spec.Threshold > 0:
		opts = append(opts, WithThreshold(spec.Threshold))
	case spec.Horizon > 0:
		opts = append(opts, WithThreshold(DefaultThreshold(effDim, spec.Horizon, spec.Delta)))
	}
	return opts, radius, nil
}

func buildLinearFamily(spec FamilySpec) (FamilyPoster, error) {
	if !spec.Model.isZero() {
		return nil, fmt.Errorf("pricing: family %q takes no model config", FamilyLinear)
	}
	opts, radius, err := spec.ellipsoidOptions(spec.Dim)
	if err != nil {
		return nil, err
	}
	return New(spec.Dim, radius, opts...)
}

func buildNonlinearFamily(spec FamilySpec) (FamilyPoster, error) {
	model, err := BuildModel(spec.Model)
	if err != nil {
		return nil, err
	}
	if lm, ok := model.Map.(*LandmarkMap); ok && lm.InDim() != spec.Dim {
		return nil, fmt.Errorf("pricing: landmarks have dimension %d, stream dimension is %d",
			lm.InDim(), spec.Dim)
	}
	opts, radius, err := spec.ellipsoidOptions(model.Map.OutDim(spec.Dim))
	if err != nil {
		return nil, err
	}
	return NewNonlinear(model, spec.Dim, radius, opts...)
}

func buildSGDFamily(spec FamilySpec) (FamilyPoster, error) {
	c := spec.Model
	if c.Link != "" || c.Map != "" || c.Kernel != nil || len(c.Landmarks) > 0 {
		return nil, fmt.Errorf("pricing: family %q only takes eta0/margin model config", FamilySGD)
	}
	if spec.Radius != 0 || spec.Delta != 0 || spec.Threshold != 0 || spec.Horizon != 0 {
		return nil, fmt.Errorf("pricing: family %q does not use radius/delta/threshold/horizon", FamilySGD)
	}
	if !isFinite(c.Eta0) || !isFinite(c.Margin) {
		return nil, fmt.Errorf("pricing: sgd eta0/margin must be finite, got %g, %g", c.Eta0, c.Margin)
	}
	eta0 := c.Eta0
	if eta0 == 0 {
		eta0 = 0.5 // the sweep experiments' canonical step size
	}
	return NewSGD(spec.Dim, eta0, c.Margin, spec.Reserve)
}

// Every hosted family satisfies the full capability bundle.
var (
	_ FamilyPoster = (*Mechanism)(nil)
	_ FamilyPoster = (*NonlinearMechanism)(nil)
	_ FamilyPoster = (*SGDPoster)(nil)
)
