// Package pricing implements the paper's primary contribution: the
// ellipsoid-based contextual dynamic pricing mechanism with reserve price
// constraint (Algorithms 1, 1*, 2, and 2* of Niu et al., ICDE 2020).
//
// The data broker maintains a knowledge set about the unknown weight vector
// θ* of the market value model v_t = x_tᵀθ* (+ δ_t). Each round she
// receives a feature vector x_t and a reserve price q_t, posts a price, and
// observes only accept/reject feedback. The knowledge set is an ellipsoid;
// each informative feedback refines it with a Löwner-John cut.
//
// A round is driven with two calls:
//
//	quote := m.PostPrice(x, reserve)     // broker's offer
//	if quote.Decision != DecisionSkip {
//	        m.Observe(accepted)          // buyer's accept/reject feedback
//	}
//
// The four versions evaluated in the paper are all configurations of the
// one Mechanism type:
//
//	Algorithm 1  — New(n, R, WithReserve())
//	Algorithm 1* — New(n, R)                         (the "pure" version)
//	Algorithm 2  — New(n, R, WithReserve(), WithUncertainty(δ))
//	Algorithm 2* — New(n, R, WithUncertainty(δ))
package pricing

import (
	"errors"
	"fmt"
	"math"

	"datamarket/internal/ellipsoid"
	"datamarket/internal/linalg"
)

// Decision classifies the broker's action in a round.
type Decision int

const (
	// DecisionSkip means the reserve price q exceeds every possible market
	// value (q ≥ p̄ + δ): the query cannot sell, no price is offered, and
	// there is no feedback to observe.
	DecisionSkip Decision = iota
	// DecisionExploratory means the broker posted max(q, (p̲+p̄)/2): the
	// bisection-style price that refines the knowledge set the most.
	DecisionExploratory
	// DecisionConservative means the broker posted max(q, p̲−δ): the price
	// most likely to sell, which leaves the knowledge set unchanged.
	DecisionConservative
)

// String renders the decision for logs and tables.
func (d Decision) String() string {
	switch d {
	case DecisionSkip:
		return "skip"
	case DecisionExploratory:
		return "exploratory"
	case DecisionConservative:
		return "conservative"
	default:
		return fmt.Sprintf("Decision(%d)", int(d))
	}
}

// Quote is the broker's output for one round.
type Quote struct {
	// Price is the posted price. Meaningless when Decision == DecisionSkip.
	Price float64
	// Decision says which branch of the algorithm produced the price.
	Decision Decision
	// Lower and Upper are the market value bounds p̲, p̄ derived from the
	// current ellipsoid (before this round's feedback).
	Lower, Upper float64
	// ReserveBinding reports whether the reserve price determined the
	// posted price (Price == reserve > the unconstrained candidate).
	ReserveBinding bool
}

// Width returns the knowledge gap p̄ − p̲ probed this round.
func (q Quote) Width() float64 { return q.Upper - q.Lower }

// Counters aggregates per-round bookkeeping across a run. The exploratory
// count is the quantity T_e bounded by Lemmas 6 and 7.
type Counters struct {
	Rounds         int `json:"rounds"`          // PostPrice calls
	Skips          int `json:"skips"`           // certain no-deal rounds (reserve too high)
	Exploratory    int `json:"exploratory"`     // exploratory prices posted
	Conservative   int `json:"conservative"`    // conservative prices posted
	Accepts        int `json:"accepts"`         // accepted offers observed
	Rejects        int `json:"rejects"`         // rejected offers observed
	CutsApplied    int `json:"cuts_applied"`    // ellipsoid refinements performed
	CutsShallow    int `json:"cuts_shallow"`    // feedbacks too shallow to refine (α ≤ −1/n)
	CutsInfeasible int `json:"cuts_infeasible"` // inconsistent feedback (α ≥ 1), ellipsoid kept
}

// config carries the mechanism options.
type config struct {
	useReserve       bool
	delta            float64
	eps              float64
	epsSet           bool
	conservativeCuts bool
}

// Option customizes a Mechanism.
type Option func(*config)

// WithReserve enables the reserve price constraint (Algorithms 1 and 2).
// Without it the reserve passed to PostPrice is ignored (the "pure"
// Algorithms 1* and 2*).
func WithReserve() Option { return func(c *config) { c.useReserve = true } }

// WithUncertainty sets the buffer δ ≥ 0 that makes the mechanism robust to
// σ-subGaussian noise in market values (Algorithm 2). δ = 0 recovers
// Algorithm 1.
func WithUncertainty(delta float64) Option {
	return func(c *config) { c.delta = delta }
}

// WithThreshold overrides the exploration threshold ε > 0. If unset, the
// regret-optimal schedule of Theorem 1 is used (see DefaultThreshold).
func WithThreshold(eps float64) Option {
	return func(c *config) { c.eps = eps; c.epsSet = true }
}

// WithConservativeCuts allows the mechanism to refine the ellipsoid from
// conservative-price feedback. The paper *prohibits* this (line 24 of
// Algorithm 1): Lemma 8 constructs an adversary that forces O(T) regret
// when it is allowed. The option exists solely to reproduce that ablation.
func WithConservativeCuts() Option {
	return func(c *config) { c.conservativeCuts = true }
}

// DefaultThreshold returns the ε schedule used in the paper's analysis and
// experiments: max(n²/T, 4nδ) for n ≥ 2 (Theorem 1) and log₂(T)/T for
// n = 1 (Theorem 3 sets "ε = log2(T)/T", which must be the base-2 log for
// the claimed O(log T) total — ε = log²(T)/T would leave an O(log²T)
// conservative term).
func DefaultThreshold(n, horizon int, delta float64) float64 {
	T := float64(horizon)
	if T < 2 {
		T = 2
	}
	if n <= 1 {
		return math.Max(math.Log2(T)/T, 4*delta)
	}
	nn := float64(n)
	return math.Max(nn*nn/T, 4*nn*delta)
}

// Mechanism is the ellipsoid-based posted price mechanism. It is not safe
// for concurrent use; each pricing stream should own one Mechanism.
type Mechanism struct {
	n   int
	ell *ellipsoid.E
	cfg config

	pending  bool          //lint:ignore snapshotfields Snapshot refuses pending rounds, so pending is always false at snapshot time
	lastX    linalg.Vector //lint:ignore snapshotfields per-round scratch; rebuilt by the next PostPrice
	lastP    float64       //lint:ignore snapshotfields per-round scratch; rebuilt by the next PostPrice
	lastExpl bool          //lint:ignore snapshotfields per-round scratch; rebuilt by the next PostPrice

	counters Counters
}

// New creates a mechanism for n-dimensional feature vectors whose initial
// knowledge set is the ball of the given radius: ‖θ*‖ ≤ radius must hold
// for the regret guarantees. Horizon-dependent defaults (ε) assume the
// caller either supplies WithThreshold or calls SetHorizon before pricing.
func New(n int, radius float64, opts ...Option) (*Mechanism, error) {
	if n <= 0 {
		return nil, fmt.Errorf("pricing: dimension must be positive, got %d", n)
	}
	if radius <= 0 {
		return nil, fmt.Errorf("pricing: radius must be positive, got %g", radius)
	}
	var cfg config
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.delta < 0 {
		return nil, fmt.Errorf("pricing: negative uncertainty buffer %g", cfg.delta)
	}
	if cfg.epsSet && cfg.eps <= 0 {
		return nil, fmt.Errorf("pricing: threshold must be positive, got %g", cfg.eps)
	}
	if !cfg.epsSet {
		// A horizon-free fallback; callers running experiments use
		// WithThreshold(DefaultThreshold(...)) for the paper's schedule.
		cfg.eps = math.Max(1e-6, 4*float64(n)*cfg.delta)
		cfg.epsSet = true
	}
	ell, err := ellipsoid.NewBall(n, radius)
	if err != nil {
		return nil, err
	}
	return &Mechanism{n: n, ell: ell, cfg: cfg}, nil
}

// NewFromBox initializes the knowledge set from the axis-aligned box
// Π[loᵢ, hiᵢ] on θ*, enclosing it in a ball per the paper's initialization.
func NewFromBox(lo, hi linalg.Vector, opts ...Option) (*Mechanism, error) {
	if len(lo) != len(hi) || len(lo) == 0 {
		return nil, fmt.Errorf("pricing: invalid box bounds (%d vs %d)", len(lo), len(hi))
	}
	var sum float64
	for i := range lo {
		// Check finiteness per bound: a NaN entry passes lo > hi (all
		// ordered comparisons with NaN are false) and would turn the
		// enclosing radius — and the whole knowledge set — into NaN.
		if math.IsNaN(lo[i]) || math.IsInf(lo[i], 0) || math.IsNaN(hi[i]) || math.IsInf(hi[i], 0) {
			return nil, fmt.Errorf("pricing: box bound %d not finite [%g, %g]", i, lo[i], hi[i])
		}
		if lo[i] > hi[i] {
			return nil, fmt.Errorf("pricing: inverted box bound at %d", i)
		}
		sum += math.Max(lo[i]*lo[i], hi[i]*hi[i])
	}
	return New(len(lo), math.Sqrt(sum), opts...)
}

// Dim returns the feature dimension n.
func (m *Mechanism) Dim() int { return m.n }

// Threshold returns the exploration threshold ε in use.
func (m *Mechanism) Threshold() float64 { return m.cfg.eps }

// Delta returns the uncertainty buffer δ in use.
func (m *Mechanism) Delta() float64 { return m.cfg.delta }

// UsesReserve reports whether the reserve price constraint is enabled.
func (m *Mechanism) UsesReserve() bool { return m.cfg.useReserve }

// Counters returns a snapshot of the run statistics.
func (m *Mechanism) Counters() Counters { return m.counters }

// Pending reports whether a posted price is awaiting Observe.
func (m *Mechanism) Pending() bool { return m.pending }

// Knowledge returns a copy of the current ellipsoid knowledge set, for
// inspection, persistence, and tests.
func (m *Mechanism) Knowledge() *ellipsoid.E { return m.ell.Clone() }

// ValueBounds returns the current market value interval [p̲, p̄] for a
// feature vector without advancing the mechanism.
func (m *Mechanism) ValueBounds(x linalg.Vector) (lo, hi float64) {
	return m.ell.Support(x)
}

// ErrNoPendingRound is returned by Observe when there is no posted price
// awaiting feedback (e.g. after a skip round or a duplicate Observe).
var ErrNoPendingRound = errors.New("pricing: Observe called with no pending round")

// ErrPendingRound is returned by PostPrice if the previous round's feedback
// was never delivered.
var ErrPendingRound = errors.New("pricing: PostPrice called while a round is pending feedback")

// PostPrice runs lines 2–13/22–23 of the algorithm for one round: given the
// query's feature vector x and reserve price (ignored unless WithReserve),
// it returns the broker's quote. Unless the decision is DecisionSkip, the
// caller must report the buyer's response via Observe before the next call.
func (m *Mechanism) PostPrice(x linalg.Vector, reserve float64) (Quote, error) {
	if len(x) != m.n {
		return Quote{}, fmt.Errorf("pricing: feature dimension %d, want %d", len(x), m.n)
	}
	if m.pending {
		return Quote{}, ErrPendingRound
	}
	m.counters.Rounds++

	lo, hi := m.ell.Support(x)
	q := Quote{Lower: lo, Upper: hi}

	// Certain no-deal: the posted price would be at least q ≥ p̄ + δ ≥ v.
	if m.cfg.useReserve && reserve >= hi+m.cfg.delta {
		q.Decision = DecisionSkip
		m.counters.Skips++
		return q, nil
	}

	if hi-lo > m.cfg.eps {
		// Exploratory price: max(q, middle).
		mid := (lo + hi) / 2
		price := mid
		if m.cfg.useReserve && reserve > price {
			price = reserve
			q.ReserveBinding = true
		}
		q.Price = price
		q.Decision = DecisionExploratory
		m.counters.Exploratory++
		m.begin(x, price, true)
		return q, nil
	}

	// Conservative price: max(q, p̲ − δ).
	price := lo - m.cfg.delta
	if m.cfg.useReserve && reserve > price {
		price = reserve
		q.ReserveBinding = true
	}
	q.Price = price
	q.Decision = DecisionConservative
	m.counters.Conservative++
	m.begin(x, price, false)
	return q, nil
}

func (m *Mechanism) begin(x linalg.Vector, price float64, exploratory bool) {
	m.pending = true
	// lastX is a scratch buffer reused across rounds so the hot path does
	// not allocate; x is copied because the caller may mutate it after the
	// round opens.
	if m.lastX == nil {
		m.lastX = linalg.NewVector(m.n)
	}
	copy(m.lastX, x)
	m.lastP = price
	m.lastExpl = exploratory
}

// Observe delivers the buyer's feedback for the round opened by the last
// PostPrice call and refines the knowledge set (lines 14–21 and 24):
//
//   - rejection ⇒ p ≥ v ≥ x·θ* − δ, so keep {θ : xᵀθ ≤ p + δ};
//   - acceptance ⇒ p ≤ v ≤ x·θ* + δ, so keep {θ : xᵀθ ≥ p − δ}.
//
// Conservative-price feedback never cuts (the Lemma 8 safeguard) unless the
// ablation option WithConservativeCuts was supplied.
func (m *Mechanism) Observe(accepted bool) error {
	if !m.pending {
		return ErrNoPendingRound
	}
	m.pending = false
	if accepted {
		m.counters.Accepts++
	} else {
		m.counters.Rejects++
	}
	if !m.lastExpl && !m.cfg.conservativeCuts {
		return nil
	}
	var res ellipsoid.CutResult
	if accepted {
		// Keep {xᵀθ ≥ p − δ} ⇔ cut with {−xᵀθ ≤ −(p − δ)}. lastX is the
		// mechanism's own scratch and dead after this round, so it is
		// negated in place rather than copied.
		res = m.ell.Cut(m.lastX.Scale(-1), -(m.lastP - m.cfg.delta))
	} else {
		// Keep {xᵀθ ≤ p + δ}.
		res = m.ell.Cut(m.lastX, m.lastP+m.cfg.delta)
	}
	switch res {
	case ellipsoid.CutApplied:
		m.counters.CutsApplied++
	case ellipsoid.CutTooShallow, ellipsoid.CutDegenerate:
		m.counters.CutsShallow++
	case ellipsoid.CutInfeasible:
		m.counters.CutsInfeasible++
	}
	return nil
}

// ExploratoryBound returns the Lemma 6/7 upper bound on the number of
// exploratory rounds, T_e ≤ 20 n² log(20 R S² (n+1)/ε), given the initial
// radius R and the feature norm bound S. It is used by tests and the
// EXPERIMENTS.md tables to confirm the theory empirically.
func ExploratoryBound(n int, radius, featureBound, eps float64) float64 {
	nn := float64(n)
	arg := 20 * radius * featureBound * featureBound * (nn + 1) / eps
	if arg < math.E {
		arg = math.E
	}
	return 20 * nn * nn * math.Log(arg)
}
