//go:build !race

package pricing

import (
	"testing"

	"datamarket/internal/linalg"
	"datamarket/internal/randx"
)

// TestMechanismRoundZeroAllocs guards the whole per-round hot path:
// after warmup, a full PostPrice+Observe cycle — support probe, quote,
// feedback, ellipsoid cut — performs zero allocations. (Skipped under
// -race, whose instrumentation perturbs allocation counts.)
func TestMechanismRoundZeroAllocs(t *testing.T) {
	const n = 16
	m, err := New(n, 4, WithThreshold(1e-12))
	if err != nil {
		t.Fatal(err)
	}
	r := randx.New(1)
	theta := r.OnSphere(n)
	xs := make([]linalg.Vector, 64)
	for i := range xs {
		xs[i] = r.OnSphere(n)
	}
	// Warm the lastX and ellipsoid scratch buffers.
	if _, err := m.PostPrice(xs[0], -1); err != nil {
		t.Fatal(err)
	}
	if err := m.Observe(true); err != nil {
		t.Fatal(err)
	}

	i := 0
	if got := testing.AllocsPerRun(200, func() {
		i++
		x := xs[i%len(xs)]
		q, err := m.PostPrice(x, -1)
		if err != nil {
			t.Fatal(err)
		}
		if err := m.Observe(Sold(q.Price, x.Dot(theta))); err != nil {
			t.Fatal(err)
		}
	}); got != 0 {
		t.Fatalf("full pricing round allocated %v times, want 0", got)
	}
}
