package pricing

import (
	"fmt"
	"math"

	"datamarket/internal/linalg"
)

// Link is the outer function g of the generalized market value model
// v = g(φ(x)ᵀθ*) from §IV-A. It must be non-decreasing and continuous;
// every Link here is additionally strictly increasing so that prices can
// be mapped between value space and score space via the inverse.
type Link interface {
	// Apply evaluates g(z).
	Apply(z float64) float64
	// Inverse evaluates g⁻¹(v); callers must keep v inside the range of g.
	Inverse(v float64) float64
	// Name identifies the link for reports.
	Name() string
}

// IdentityLink is g(z) = z: the plain linear model and the kernelized model.
type IdentityLink struct{}

// Apply returns z.
func (IdentityLink) Apply(z float64) float64 { return z }

// Inverse returns v.
func (IdentityLink) Inverse(v float64) float64 { return v }

// Name returns "identity".
func (IdentityLink) Name() string { return "identity" }

// ExpLink is g(z) = eᶻ: the log-linear and log-log hedonic models, where
// log v = φ(x)ᵀθ*.
type ExpLink struct{}

// Apply returns eᶻ.
func (ExpLink) Apply(z float64) float64 { return math.Exp(z) }

// Inverse returns log v.
func (ExpLink) Inverse(v float64) float64 { return math.Log(v) }

// Name returns "exp".
func (ExpLink) Name() string { return "exp" }

// LogisticLink is g(z) = 1/(1+e^{−z}), the CTR model of online advertising.
//
// The paper writes v = 1/(1+exp(xᵀθ*)), which is *decreasing* in the score
// and contradicts its own requirement that g be non-decreasing (§IV-A);
// we use the standard increasing sigmoid, which only flips the sign of θ*.
type LogisticLink struct{}

// Apply returns the sigmoid of z.
func (LogisticLink) Apply(z float64) float64 { return 1 / (1 + math.Exp(-z)) }

// Inverse returns the logit of v ∈ (0, 1).
func (LogisticLink) Inverse(v float64) float64 { return math.Log(v / (1 - v)) }

// Name returns "logistic".
func (LogisticLink) Name() string { return "logistic" }

// FeatureMap is the inner transformation φ of the generalized model. It is
// public knowledge; only the weight vector over φ(x) is learned.
type FeatureMap interface {
	// Map evaluates φ(x). It rejects inputs outside the map's domain
	// (wrong dimension, non-finite or out-of-domain entries) so malformed
	// features cannot poison the score-space knowledge set.
	Map(x linalg.Vector) (linalg.Vector, error)
	// OutDim returns the dimension of φ(x) for inputs of dimension inDim.
	OutDim(inDim int) int
	// Name identifies the map for reports.
	Name() string
}

// IdentityMap is φ(x) = x (linear, log-linear, and logistic models).
type IdentityMap struct{}

// Map returns x unchanged.
func (IdentityMap) Map(x linalg.Vector) (linalg.Vector, error) { return x, nil }

// OutDim returns inDim.
func (IdentityMap) OutDim(inDim int) int { return inDim }

// Name returns "identity".
func (IdentityMap) Name() string { return "identity" }

// LogMap applies the natural logarithm elementwise: the log-log hedonic
// model log v = Σ log(xᵢ)·θᵢ*. Inputs must be strictly positive and finite.
type LogMap struct{}

// Map returns (log x₁, …, log xₙ).
func (LogMap) Map(x linalg.Vector) (linalg.Vector, error) {
	out := make(linalg.Vector, len(x))
	for i, v := range x {
		if !isFinite(v) || v <= 0 {
			return nil, fmt.Errorf("pricing: log map input %d is %g, want positive finite", i, v)
		}
		out[i] = math.Log(v)
	}
	return out, nil
}

// OutDim returns inDim.
func (LogMap) OutDim(inDim int) int { return inDim }

// Name returns "log".
func (LogMap) Name() string { return "log" }

// Kernel is a Mercer kernel K(x, y), the similarity primitive of the
// kernelized market value model.
type Kernel interface {
	Eval(x, y linalg.Vector) float64
	Name() string
}

// LandmarkMap realizes the paper's kernelized model with a fixed budget:
// φ(x) = (K(x, l₁), …, K(x, l_m)) over m pre-registered landmark points.
// The paper's formulation lets m grow as t−1, which is incompatible with a
// fixed-dimension ellipsoid; pinning a landmark set is the standard
// finite-budget realization of the same model class (DESIGN.md §5).
type LandmarkMap struct {
	kernel    Kernel
	landmarks []linalg.Vector
}

// NewLandmarkMap builds a landmark feature map; landmarks must be non-empty
// and share a dimension.
func NewLandmarkMap(k Kernel, landmarks []linalg.Vector) (*LandmarkMap, error) {
	if k == nil {
		return nil, fmt.Errorf("pricing: nil kernel")
	}
	if len(landmarks) == 0 {
		return nil, fmt.Errorf("pricing: landmark set is empty")
	}
	d := len(landmarks[0])
	copied := make([]linalg.Vector, len(landmarks))
	for i, l := range landmarks {
		if len(l) != d {
			return nil, fmt.Errorf("pricing: landmark %d has dimension %d, want %d", i, len(l), d)
		}
		for j, v := range l {
			if !isFinite(v) {
				return nil, fmt.Errorf("pricing: landmark %d entry %d is %g, want finite", i, j, v)
			}
		}
		copied[i] = l.Clone()
	}
	return &LandmarkMap{kernel: k, landmarks: copied}, nil
}

// Map returns the kernel evaluations against every landmark. Inputs must
// match the landmark dimension and be finite — the same validation the
// ellipsoid serving path performs — so a malformed query cannot feed NaN
// scores into the knowledge set (or panic inside a kernel's dot product).
func (m *LandmarkMap) Map(x linalg.Vector) (linalg.Vector, error) {
	if len(x) != m.InDim() {
		return nil, fmt.Errorf("pricing: landmark map input dimension %d, want %d", len(x), m.InDim())
	}
	for i, v := range x {
		if !isFinite(v) {
			return nil, fmt.Errorf("pricing: landmark map input %d is %g, want finite", i, v)
		}
	}
	out := make(linalg.Vector, len(m.landmarks))
	for i, l := range m.landmarks {
		out[i] = m.kernel.Eval(x, l)
	}
	return out, nil
}

// InDim returns the landmark (input) dimension.
func (m *LandmarkMap) InDim() int { return len(m.landmarks[0]) }

// OutDim returns the number of landmarks.
func (m *LandmarkMap) OutDim(int) int { return len(m.landmarks) }

// Name identifies the map.
func (m *LandmarkMap) Name() string {
	return fmt.Sprintf("landmark(%s, m=%d)", m.kernel.Name(), len(m.landmarks))
}

// Model bundles a link and feature map into one of the §IV-A market value
// families, with helpers to evaluate the ground truth.
type Model struct {
	Link Link
	Map  FeatureMap
}

// LinearModel is v = xᵀθ*.
func LinearModel() Model { return Model{Link: IdentityLink{}, Map: IdentityMap{}} }

// LogLinearModel is log v = xᵀθ*.
func LogLinearModel() Model { return Model{Link: ExpLink{}, Map: IdentityMap{}} }

// LogLogModel is log v = Σ log(xᵢ)θᵢ*.
func LogLogModel() Model { return Model{Link: ExpLink{}, Map: LogMap{}} }

// LogisticModel is v = sigmoid(xᵀθ*).
func LogisticModel() Model { return Model{Link: LogisticLink{}, Map: IdentityMap{}} }

// KernelizedModel is v = φ(x)ᵀθ* over landmark kernel features.
func KernelizedModel(m *LandmarkMap) Model { return Model{Link: IdentityLink{}, Map: m} }

// Value computes the deterministic market value g(φ(x)ᵀθ) for weights θ
// over the mapped features. Inputs outside the map's domain yield NaN.
func (mo Model) Value(x linalg.Vector, theta linalg.Vector) float64 {
	phi, err := mo.Map.Map(x)
	if err != nil {
		return math.NaN()
	}
	return mo.Link.Apply(phi.Dot(theta))
}

// NonlinearMechanism adapts the linear-model Mechanism to the generalized
// model v = g(φ(x)ᵀθ*) per §IV-A: it runs the ellipsoid machinery in score
// space (over φ(x)) and converts posted scores to prices through g.
type NonlinearMechanism struct {
	inner *Mechanism
	model Model
	dim   int // input feature dimension (before φ)
}

// NewNonlinear builds a mechanism for the given model. dim is the *input*
// feature dimension; radius bounds ‖θ*‖ over the mapped features.
func NewNonlinear(model Model, dim int, radius float64, opts ...Option) (*NonlinearMechanism, error) {
	if model.Link == nil || model.Map == nil {
		return nil, fmt.Errorf("pricing: model must have both link and feature map")
	}
	if dim <= 0 {
		return nil, fmt.Errorf("pricing: dimension must be positive, got %d", dim)
	}
	inner, err := New(model.Map.OutDim(dim), radius, opts...)
	if err != nil {
		return nil, err
	}
	return &NonlinearMechanism{inner: inner, model: model, dim: dim}, nil
}

// Inner exposes the underlying linear mechanism (for counters and tests).
func (nm *NonlinearMechanism) Inner() *Mechanism { return nm.inner }

// Model returns the market value model in use.
func (nm *NonlinearMechanism) Model() Model { return nm.model }

// Dim returns the input feature dimension (before the feature map).
func (nm *NonlinearMechanism) Dim() int { return nm.dim }

// Pending reports whether a posted price is awaiting Observe. Wrappers
// such as SyncPoster rely on it for their lock-free pending shadow — and
// through that, servers rely on it for the delete/restore guards.
func (nm *NonlinearMechanism) Pending() bool { return nm.inner.Pending() }

// PostPrice prices a query under the nonlinear model. Both the returned
// price and the bounds are in value space; reserve is also in value space
// and is mapped through g⁻¹ for the score-space comparison. A non-positive
// reserve under a link with positive range (exp, logistic) is treated as
// non-binding.
func (nm *NonlinearMechanism) PostPrice(x linalg.Vector, reserve float64) (Quote, error) {
	if len(x) != nm.dim {
		return Quote{}, fmt.Errorf("pricing: feature dimension %d, want %d", len(x), nm.dim)
	}
	phi, err := nm.model.Map.Map(x)
	if err != nil {
		return Quote{}, err
	}
	innerReserve := math.Inf(-1)
	if nm.inner.cfg.useReserve {
		innerReserve = nm.scoreReserve(reserve)
	}
	q, err := nm.inner.PostPrice(phi, innerReserve)
	if err != nil {
		return Quote{}, err
	}
	// Translate score space back to value space.
	q.Price = nm.model.Link.Apply(q.Price)
	q.Lower = nm.model.Link.Apply(q.Lower)
	q.Upper = nm.model.Link.Apply(q.Upper)
	if q.Decision == DecisionSkip {
		q.Price = 0
	}
	return q, nil
}

// scoreReserve maps a value-space reserve into score space, respecting the
// range of the link.
func (nm *NonlinearMechanism) scoreReserve(reserve float64) float64 {
	switch nm.model.Link.(type) {
	case ExpLink:
		if reserve <= 0 {
			return math.Inf(-1)
		}
	case LogisticLink:
		if reserve <= 0 {
			return math.Inf(-1)
		}
		if reserve >= 1 {
			return math.Inf(1)
		}
	}
	return nm.model.Link.Inverse(reserve)
}

// Observe forwards the buyer feedback to the score-space mechanism.
func (nm *NonlinearMechanism) Observe(accepted bool) error {
	return nm.inner.Observe(accepted)
}

// Counters returns the underlying mechanism's statistics.
func (nm *NonlinearMechanism) Counters() Counters { return nm.inner.Counters() }
