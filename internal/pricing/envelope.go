package pricing

import (
	"encoding/json"
	"errors"
	"fmt"
)

// EnvelopeVersion is the wire-format version of the family-tagged snapshot
// envelope.
const EnvelopeVersion = 1

// ErrFamilyMismatch is returned (wrapped) when a snapshot of one family is
// restored into a stream hosting another.
var ErrFamilyMismatch = errors.New("pricing: snapshot family does not match hosted family")

// Envelope is the versioned, family-tagged serialization of any hosted
// poster's state: exactly one of the family payloads is set, matching
// Family. It supersedes the bare ellipsoid Snapshot as the durable wire
// format; DecodeEnvelope still accepts the legacy format and upgrades it
// to a linear envelope.
type Envelope struct {
	Version int    `json:"version"`
	Family  Family `json:"family"`
	// Linear is the ellipsoid mechanism state.
	Linear *Snapshot `json:"linear,omitempty"`
	// Nonlinear is the inner ellipsoid plus the model spec.
	Nonlinear *NonlinearSnapshot `json:"nonlinear,omitempty"`
	// SGD is the gradient poster's point estimate and schedule position.
	SGD *SGDSnapshot `json:"sgd,omitempty"`
	// Regret optionally carries the hosting stream's regret-tracker
	// aggregates. It is host-level bookkeeping, orthogonal to the family
	// payload: posters never read or write it — the serving layer fills it
	// on snapshot and rehydrates its tracker on restore. The field is
	// additive and optional within envelope version 1, so envelopes
	// written before it existed (and bare legacy snapshots) restore with a
	// zeroed tracker; that reset is part of the restore contract and is
	// asserted by TestRestoreWithoutRegretResetsTracker.
	Regret *TrackerState `json:"regret,omitempty"`
}

// NonlinearSnapshot is the serializable state of a NonlinearMechanism: the
// score-space ellipsoid plus the public model spec (link, map, kernel,
// landmarks) needed to rebuild φ and g.
type NonlinearSnapshot struct {
	// Dim is the input feature dimension (before φ).
	Dim int `json:"dim"`
	// Model rebuilds the link and feature map.
	Model ModelConfig `json:"model"`
	// Inner is the score-space ellipsoid mechanism state.
	Inner *Snapshot `json:"inner"`
}

// SGDSnapshot is the serializable state of an SGDPoster.
type SGDSnapshot struct {
	N          int       `json:"n"`
	Theta      []float64 `json:"theta"`
	Eta0       float64   `json:"eta0"`
	Margin     float64   `json:"margin"`
	UseReserve bool      `json:"use_reserve"`
	// Steps is the round count t driving the eta0/√t and t^{-1/3} schedules.
	Steps    int      `json:"steps"`
	Counters Counters `json:"counters"`
}

// Validate checks version, family, and that exactly the matching payload
// is present.
func (e *Envelope) Validate() error {
	if e == nil {
		return fmt.Errorf("pricing: nil snapshot envelope")
	}
	if e.Version != EnvelopeVersion {
		return fmt.Errorf("pricing: unsupported envelope version %d", e.Version)
	}
	if _, ok := familyRegistry[e.Family]; !ok {
		return fmt.Errorf("pricing: unknown snapshot family %q (have %v)", e.Family, Families())
	}
	set := 0
	for fam, present := range map[Family]bool{
		FamilyLinear:    e.Linear != nil,
		FamilyNonlinear: e.Nonlinear != nil,
		FamilySGD:       e.SGD != nil,
	} {
		if !present {
			continue
		}
		set++
		if fam != e.Family {
			return fmt.Errorf("pricing: envelope tagged %q carries a %q payload", e.Family, fam)
		}
	}
	if set != 1 {
		return fmt.Errorf("pricing: envelope tagged %q must carry exactly its own payload", e.Family)
	}
	return nil
}

// Dim returns the input feature dimension recorded in the envelope.
func (e *Envelope) Dim() (int, error) {
	if err := e.Validate(); err != nil {
		return 0, err
	}
	switch e.Family {
	case FamilyLinear:
		return e.Linear.N, nil
	case FamilyNonlinear:
		return e.Nonlinear.Dim, nil
	default:
		return e.SGD.N, nil
	}
}

// Encode serializes the envelope to JSON.
func (e *Envelope) Encode() ([]byte, error) { return json.Marshal(e) }

// DecodeEnvelope parses a family-tagged envelope. Data lacking a family tag
// is tried as a legacy bare ellipsoid Snapshot and upgraded to a linear
// envelope, so snapshots taken before the family refactor stay restorable.
func DecodeEnvelope(data []byte) (*Envelope, error) {
	var env Envelope
	if err := json.Unmarshal(data, &env); err != nil {
		return nil, fmt.Errorf("pricing: decoding snapshot envelope: %w", err)
	}
	if env.Family == "" {
		snap, err := DecodeSnapshot(data)
		if err == nil && (snap.N <= 0 || len(snap.Shape) != snap.N*snap.N || len(snap.Center) != snap.N) {
			err = fmt.Errorf("no ellipsoid state for dimension %d", snap.N)
		}
		if err != nil {
			return nil, fmt.Errorf("pricing: snapshot envelope missing family (and not a legacy snapshot: %v)", err)
		}
		env = Envelope{Version: EnvelopeVersion, Family: FamilyLinear, Linear: snap}
	}
	if err := env.Validate(); err != nil {
		return nil, err
	}
	return &env, nil
}

// RestoreEnvelope rebuilds a poster of the envelope's family.
func RestoreEnvelope(env *Envelope) (FamilyPoster, error) {
	if err := env.Validate(); err != nil {
		return nil, err
	}
	return familyRegistry[env.Family].restore(env)
}

// Family identifies the linear ellipsoid family.
func (m *Mechanism) Family() Family { return FamilyLinear }

// SnapshotEnvelope captures the mechanism state in a family-tagged
// envelope. Like Snapshot, it fails while a round is pending feedback.
func (m *Mechanism) SnapshotEnvelope() (*Envelope, error) {
	s, err := m.Snapshot()
	if err != nil {
		return nil, err
	}
	return &Envelope{Version: EnvelopeVersion, Family: FamilyLinear, Linear: s}, nil
}

func restoreLinearFamily(env *Envelope) (FamilyPoster, error) {
	return Restore(env.Linear)
}

// Family identifies the nonlinear family.
func (nm *NonlinearMechanism) Family() Family { return FamilyNonlinear }

// SnapshotEnvelope captures the inner ellipsoid and the model spec. It
// fails while a round is pending feedback, and for models whose link, map,
// or kernel is not one of the named serializable types.
func (nm *NonlinearMechanism) SnapshotEnvelope() (*Envelope, error) {
	inner, err := nm.inner.Snapshot()
	if err != nil {
		return nil, err
	}
	cfg, err := ConfigOfModel(nm.model)
	if err != nil {
		return nil, err
	}
	return &Envelope{
		Version:   EnvelopeVersion,
		Family:    FamilyNonlinear,
		Nonlinear: &NonlinearSnapshot{Dim: nm.dim, Model: cfg, Inner: inner},
	}, nil
}

func restoreNonlinearFamily(env *Envelope) (FamilyPoster, error) {
	snap := env.Nonlinear
	if snap.Dim <= 0 {
		return nil, fmt.Errorf("pricing: nonlinear snapshot dimension %d invalid", snap.Dim)
	}
	model, err := BuildModel(snap.Model)
	if err != nil {
		return nil, err
	}
	if lm, ok := model.Map.(*LandmarkMap); ok && lm.InDim() != snap.Dim {
		return nil, fmt.Errorf("pricing: nonlinear snapshot landmarks have dimension %d, want %d",
			lm.InDim(), snap.Dim)
	}
	inner, err := Restore(snap.Inner)
	if err != nil {
		return nil, err
	}
	if want := model.Map.OutDim(snap.Dim); inner.Dim() != want {
		return nil, fmt.Errorf("pricing: nonlinear snapshot inner dimension %d, model maps to %d",
			inner.Dim(), want)
	}
	return &NonlinearMechanism{inner: inner, model: model, dim: snap.Dim}, nil
}

// Family identifies the sgd family.
func (s *SGDPoster) Family() Family { return FamilySGD }

// SnapshotEnvelope captures the point estimate, schedule position, and
// counters. It fails while a round is pending feedback.
func (s *SGDPoster) SnapshotEnvelope() (*Envelope, error) {
	if s.pending {
		return nil, fmt.Errorf("pricing: cannot snapshot with a round pending feedback: %w", ErrPendingRound)
	}
	return &Envelope{
		Version: EnvelopeVersion,
		Family:  FamilySGD,
		SGD: &SGDSnapshot{
			N:          len(s.theta),
			Theta:      s.theta.Clone(),
			Eta0:       s.eta0,
			Margin:     s.margin,
			UseReserve: s.useReserve,
			Steps:      s.steps,
			Counters:   s.counters,
		},
	}, nil
}

func restoreSGDFamily(env *Envelope) (FamilyPoster, error) {
	snap := env.SGD
	if snap.N <= 0 || len(snap.Theta) != snap.N {
		return nil, fmt.Errorf("pricing: sgd snapshot theta has %d entries, want n=%d", len(snap.Theta), snap.N)
	}
	for i, v := range snap.Theta {
		if !isFinite(v) {
			return nil, fmt.Errorf("pricing: sgd snapshot theta entry %d is %g, want finite", i, v)
		}
	}
	if !isFinite(snap.Eta0) || snap.Eta0 <= 0 {
		return nil, fmt.Errorf("pricing: sgd snapshot eta0 %g invalid", snap.Eta0)
	}
	if !isFinite(snap.Margin) || snap.Margin < 0 {
		return nil, fmt.Errorf("pricing: sgd snapshot margin %g invalid", snap.Margin)
	}
	if snap.Steps < 0 {
		return nil, fmt.Errorf("pricing: sgd snapshot step count %d invalid", snap.Steps)
	}
	poster, err := NewSGD(snap.N, snap.Eta0, snap.Margin, snap.UseReserve)
	if err != nil {
		return nil, err
	}
	copy(poster.theta, snap.Theta)
	poster.steps = snap.Steps
	poster.counters = snap.Counters
	return poster, nil
}
