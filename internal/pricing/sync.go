package pricing

import (
	"sync"

	"datamarket/internal/linalg"
)

// SyncPoster wraps any Poster with a mutex so a single pricing stream can
// be driven from multiple goroutines (e.g. an HTTP handler per request).
// The PostPrice/Observe protocol remains one-round-at-a-time; Quote is
// the caller's cue to respond before the next round, so the typical
// pattern is to hold the round open inside one request handler via
// PriceRound.
type SyncPoster struct {
	mu    sync.Mutex
	inner Poster
}

// NewSync wraps a Poster for concurrent use.
func NewSync(inner Poster) *SyncPoster { return &SyncPoster{inner: inner} }

// PostPrice locks and forwards.
func (s *SyncPoster) PostPrice(x linalg.Vector, reserve float64) (Quote, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.inner.PostPrice(x, reserve)
}

// Observe locks and forwards.
func (s *SyncPoster) Observe(accepted bool) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.inner.Observe(accepted)
}

// PriceRound runs one full round atomically: post the price, obtain the
// buyer's decision from respond, and deliver the feedback — all under the
// lock, so concurrent callers interleave at round granularity.
func (s *SyncPoster) PriceRound(x linalg.Vector, reserve float64,
	respond func(Quote) bool) (Quote, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	q, err := s.inner.PostPrice(x, reserve)
	if err != nil {
		return Quote{}, false, err
	}
	if q.Decision == DecisionSkip {
		return q, false, nil
	}
	accepted := respond(q)
	if err := s.inner.Observe(accepted); err != nil {
		return q, accepted, err
	}
	return q, accepted, nil
}

var _ Poster = (*SyncPoster)(nil)
