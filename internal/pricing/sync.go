package pricing

import (
	"fmt"
	"sync"
	"sync/atomic"

	"datamarket/internal/linalg"
)

// RoundPoster is a Poster that can additionally run one full
// post-respond-observe round atomically. Servers and brokers that host a
// mechanism behind concurrent callers should prefer PriceRound over the
// split PostPrice/Observe calls so rounds never interleave.
type RoundPoster interface {
	Poster
	PriceRound(x linalg.Vector, reserve float64, respond func(Quote) bool) (Quote, bool, error)
}

// Snapshotter is a Poster whose full state can be captured for durable
// storage. *Mechanism implements it; wrappers such as SyncPoster forward
// to the wrapped poster when it does.
type Snapshotter interface {
	Snapshot() (*Snapshot, error)
}

// EnvelopeSnapshotter is a Poster whose full state can be captured in a
// family-tagged envelope. Every hosted family implements it; wrappers
// such as SyncPoster forward to the wrapped poster when it does.
type EnvelopeSnapshotter interface {
	SnapshotEnvelope() (*Envelope, error)
}

// SyncPoster wraps any Poster with a mutex so a single pricing stream can
// be driven from multiple goroutines (e.g. an HTTP handler per request).
// The PostPrice/Observe protocol remains one-round-at-a-time; Quote is
// the caller's cue to respond before the next round, so the typical
// pattern is to hold the round open inside one request handler via
// PriceRound.
type SyncPoster struct {
	mu    sync.Mutex
	inner Poster

	// pending shadows the wrapped poster's pending state. Every state
	// change runs under mu and refreshes the shadow before unlocking, so
	// the shadow is exact — and Pending can read it lock-free, never
	// waiting behind an in-flight round or batch.
	pending atomic.Bool

	// rev counts state-mutating calls. It only ever increases, it is
	// bumped before the lock is released, and reading it never takes the
	// lock — so a checkpointer can compare it against the revision of its
	// last persisted snapshot and skip streams that saw no traffic, at
	// the cost of one atomic load per stream per pass. A call that fails
	// without mutating state may still bump the revision; the only
	// consequence is one redundant persist, never a missed one.
	rev atomic.Uint64
}

// NewSync wraps a Poster for concurrent use.
func NewSync(inner Poster) *SyncPoster { return &SyncPoster{inner: inner} }

// refreshPending re-derives the pending shadow from the wrapped poster.
// The caller must hold s.mu.
func (s *SyncPoster) refreshPending() {
	if p, ok := s.inner.(interface{ Pending() bool }); ok {
		s.pending.Store(p.Pending())
	} else {
		s.pending.Store(false)
	}
}

// Revision returns the monotonic mutation counter: it increases on every
// state-mutating call (pricing rounds, observes, batches, restores) and
// never otherwise. Reading it is one atomic load — cheap enough for a
// checkpointer to poll across thousands of streams. A snapshot taken
// after reading the revision reflects at least that revision, so
// "persist if Revision() differs from the revision recorded at the last
// persist" never loses a mutation (read the revision before
// snapshotting, not after).
func (s *SyncPoster) Revision() uint64 { return s.rev.Load() }

// PostPrice locks and forwards.
func (s *SyncPoster) PostPrice(x linalg.Vector, reserve float64) (Quote, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	q, err := s.inner.PostPrice(x, reserve)
	s.rev.Add(1)
	s.refreshPending()
	return q, err
}

// Observe locks and forwards.
func (s *SyncPoster) Observe(accepted bool) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	err := s.inner.Observe(accepted)
	s.rev.Add(1)
	s.refreshPending()
	return err
}

// PriceRound runs one full round atomically: post the price, obtain the
// buyer's decision from respond, and deliver the feedback — all under the
// lock, so concurrent callers interleave at round granularity.
func (s *SyncPoster) PriceRound(x linalg.Vector, reserve float64,
	respond func(Quote) bool) (Quote, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	defer s.refreshPending()
	s.rev.Add(1)
	return s.priceRoundLocked(x, reserve, 0, func(_ int, q Quote) bool { return respond(q) })
}

// priceRoundLocked is the one-round protocol shared by PriceRound and
// PriceBatch; the caller must hold s.mu. respond receives the caller's
// round index i (0 for single rounds).
func (s *SyncPoster) priceRoundLocked(x linalg.Vector, reserve float64, i int,
	respond func(int, Quote) bool) (Quote, bool, error) {
	q, err := s.inner.PostPrice(x, reserve)
	if err != nil {
		return Quote{}, false, err
	}
	if q.Decision == DecisionSkip {
		// A skip round posts no price and leaves nothing pending: the
		// mechanism returns before opening a round, so the next
		// PostPrice proceeds normally (see TestSyncPosterSkipRound).
		return q, false, nil
	}
	accepted := respond(i, q)
	if err := s.inner.Observe(accepted); err != nil {
		return q, accepted, err
	}
	return q, accepted, nil
}

// CounterSource is a Poster that exposes per-round bookkeeping.
// *Mechanism, *NonlinearMechanism, and *SGDPoster all qualify.
type CounterSource interface {
	Counters() Counters
}

// Counters reads the wrapped poster's counters under the lock. The
// second return is false when the wrapped poster keeps no counters.
func (s *SyncPoster) Counters() (Counters, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	cs, ok := s.inner.(CounterSource)
	if !ok {
		return Counters{}, false
	}
	return cs.Counters(), true
}

// Snapshot captures the wrapped poster's state under the lock. It fails
// if the wrapped poster does not support snapshots or has a round pending
// feedback.
func (s *SyncPoster) Snapshot() (*Snapshot, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sn, ok := s.inner.(Snapshotter)
	if !ok {
		return nil, fmt.Errorf("pricing: wrapped poster %T does not support snapshots", s.inner)
	}
	return sn.Snapshot()
}

// SnapshotEnvelope captures the wrapped poster's family-tagged state under
// the lock. It fails if the wrapped poster does not support envelope
// snapshots or has a round pending feedback.
func (s *SyncPoster) SnapshotEnvelope() (*Envelope, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	es, ok := s.inner.(EnvelopeSnapshotter)
	if !ok {
		return nil, fmt.Errorf("pricing: wrapped poster %T does not support snapshots", s.inner)
	}
	return es.SnapshotEnvelope()
}

// RestoreSnapshot atomically replaces the wrapped poster with a Mechanism
// rebuilt from the legacy ellipsoid snapshot. It is shorthand for
// RestoreEnvelopeSnapshot with a linear envelope, so it carries the same
// family and pending guards.
func (s *SyncPoster) RestoreSnapshot(snap *Snapshot) error {
	return s.RestoreEnvelopeSnapshot(&Envelope{Version: EnvelopeVersion, Family: FamilyLinear, Linear: snap})
}

// RestoreEnvelopeSnapshot atomically replaces the wrapped poster with one
// rebuilt from the envelope. Concurrent PriceRound callers serialize
// around the swap, so a live stream can be rolled back in place. It
// refuses to swap while a two-phase round is pending feedback — the
// buyer's decision would be silently discarded — and refuses cross-family
// restores, which would silently change the stream's model class.
func (s *SyncPoster) RestoreEnvelopeSnapshot(env *Envelope) error {
	fp, err := RestoreEnvelope(env)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	cur, ok := s.inner.(FamilyPoster)
	if !ok {
		return fmt.Errorf("pricing: wrapped poster %T does not support snapshot restore", s.inner)
	}
	if cur.Family() != env.Family {
		return fmt.Errorf("%w: snapshot is %q, stream hosts %q", ErrFamilyMismatch, env.Family, cur.Family())
	}
	if cur.Pending() {
		return fmt.Errorf("pricing: cannot restore while a round is pending feedback: %w", ErrPendingRound)
	}
	s.inner = fp
	s.rev.Add(1)
	s.refreshPending()
	return nil
}

var (
	_ Poster              = (*SyncPoster)(nil)
	_ RoundPoster         = (*SyncPoster)(nil)
	_ Snapshotter         = (*SyncPoster)(nil)
	_ Snapshotter         = (*Mechanism)(nil)
	_ EnvelopeSnapshotter = (*SyncPoster)(nil)
)
