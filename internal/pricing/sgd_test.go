package pricing

import (
	"encoding/json"
	"math"
	"sync"
	"testing"

	"datamarket/internal/linalg"
	"datamarket/internal/randx"
)

func TestNewSGDValidation(t *testing.T) {
	if _, err := NewSGD(0, 0.1, 0.1, false); err == nil {
		t.Fatal("expected dim error")
	}
	if _, err := NewSGD(2, 0, 0.1, false); err == nil {
		t.Fatal("expected eta error")
	}
	if _, err := NewSGD(2, 0.1, -1, false); err == nil {
		t.Fatal("expected margin error")
	}
}

func TestSGDProtocol(t *testing.T) {
	s, _ := NewSGD(2, 0.1, 0.5, true)
	if err := s.Observe(true); err != ErrNoPendingRound {
		t.Fatalf("observe with no round: %v", err)
	}
	if _, err := s.PostPrice(linalg.VectorOf(1), 0); err == nil {
		t.Fatal("expected dimension error")
	}
	q, err := s.PostPrice(linalg.VectorOf(1, 0), 2)
	if err != nil {
		t.Fatal(err)
	}
	// θ̂ starts at zero: the reserve must bind.
	if !q.ReserveBinding || q.Price != 2 {
		t.Fatalf("quote = %+v", q)
	}
	if _, err := s.PostPrice(linalg.VectorOf(1, 0), 0); err != ErrPendingRound {
		t.Fatalf("double post: %v", err)
	}
	if err := s.Observe(true); err != nil {
		t.Fatal(err)
	}
	// Acceptance raises the estimate along x.
	if s.Theta()[0] <= 0 {
		t.Fatalf("theta after accept = %v", s.Theta())
	}
}

func TestSGDLearnsButSlowerThanEllipsoid(t *testing.T) {
	n := 6
	T := 8000
	r0 := randx.New(61)
	theta := positiveTheta(r0, n)

	run := func(p Poster) *Tracker {
		r := randx.New(62)
		tr := NewTracker(false)
		for i := 0; i < T; i++ {
			x := positiveSphere(r, n)
			v := x.Dot(theta)
			q, err := p.PostPrice(x, math.Inf(-1))
			if err != nil {
				t.Fatal(err)
			}
			if q.Decision != DecisionSkip {
				p.Observe(Sold(q.Price, v))
			}
			tr.Record(v, math.Inf(-1), q)
		}
		return tr
	}

	sgd, err := NewSGD(n, 0.5, 1.0, false)
	if err != nil {
		t.Fatal(err)
	}
	trS := run(sgd)
	ell, err := New(n, 2*math.Sqrt(float64(n)), WithThreshold(DefaultThreshold(n, T, 0)))
	if err != nil {
		t.Fatal(err)
	}
	trE := run(ell)

	// SGD must genuinely learn (beat posting zero forever = ratio 1)…
	if trS.RegretRatio() > 0.6 {
		t.Fatalf("SGD did not learn: ratio %v", trS.RegretRatio())
	}
	// …but the ellipsoid mechanism converges faster (§VI-B comparison).
	if !(trE.RegretRatio() < trS.RegretRatio()) {
		t.Fatalf("ellipsoid %v not below SGD %v", trE.RegretRatio(), trS.RegretRatio())
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	n := 5
	m, _ := New(n, 2, WithReserve(), WithUncertainty(0.01), WithThreshold(0.05))
	r := randx.New(63)
	theta := r.OnSphere(n)
	for i := 0; i < 200; i++ {
		x := r.OnSphere(n)
		q, err := m.PostPrice(x, math.Inf(-1))
		if err != nil {
			t.Fatal(err)
		}
		if q.Decision != DecisionSkip {
			m.Observe(Sold(q.Price, x.Dot(theta)))
		}
	}
	snap, err := m.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	data, err := snap.Encode()
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := DecodeSnapshot(data)
	if err != nil {
		t.Fatal(err)
	}
	restored, err := Restore(decoded)
	if err != nil {
		t.Fatal(err)
	}
	// The restored mechanism must agree with the original on the next
	// rounds exactly.
	if restored.Counters() != m.Counters() {
		t.Fatalf("counters differ: %+v vs %+v", restored.Counters(), m.Counters())
	}
	for i := 0; i < 50; i++ {
		x := r.OnSphere(n)
		q1, err := m.PostPrice(x, 0.1)
		if err != nil {
			t.Fatal(err)
		}
		q2, err := restored.PostPrice(x, 0.1)
		if err != nil {
			t.Fatal(err)
		}
		if q1.Decision != q2.Decision || math.Abs(q1.Price-q2.Price) > 1e-12 {
			t.Fatalf("round %d diverged: %+v vs %+v", i, q1, q2)
		}
		if q1.Decision != DecisionSkip {
			sold := Sold(q1.Price, x.Dot(theta))
			m.Observe(sold)
			restored.Observe(sold)
		}
	}
}

func TestSnapshotErrors(t *testing.T) {
	m, _ := New(2, 1, WithThreshold(0.1))
	m.PostPrice(linalg.VectorOf(1, 0), 0)
	if _, err := m.Snapshot(); err == nil {
		t.Fatal("expected pending-round snapshot error")
	}
	m.Observe(true)
	snap, err := m.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt fields one at a time.
	if _, err := Restore(nil); err == nil {
		t.Fatal("expected nil snapshot error")
	}
	bad := *snap
	bad.N = 0
	if _, err := Restore(&bad); err == nil {
		t.Fatal("expected dimension error")
	}
	bad = *snap
	bad.Shape = bad.Shape[:1]
	if _, err := Restore(&bad); err == nil {
		t.Fatal("expected shape length error")
	}
	bad = *snap
	bad.Center = nil
	if _, err := Restore(&bad); err == nil {
		t.Fatal("expected center length error")
	}
	bad = *snap
	bad.Threshold = 0
	if _, err := Restore(&bad); err == nil {
		t.Fatal("expected threshold error")
	}
	bad = *snap
	bad.Delta = -1
	if _, err := Restore(&bad); err == nil {
		t.Fatal("expected delta error")
	}
	bad = *snap
	bad.Shape = make([]float64, 4) // all-zero: not PD
	if _, err := Restore(&bad); err == nil {
		t.Fatal("expected PD error")
	}
	// Wrong version on the wire.
	var raw map[string]any
	data, _ := snap.Encode()
	json.Unmarshal(data, &raw)
	raw["version"] = 99
	wire, _ := json.Marshal(raw)
	if _, err := DecodeSnapshot(wire); err == nil {
		t.Fatal("expected version error")
	}
	if _, err := DecodeSnapshot([]byte("{")); err == nil {
		t.Fatal("expected parse error")
	}
}

func TestSyncPosterConcurrent(t *testing.T) {
	n := 4
	inner, _ := New(n, 2, WithThreshold(0.05))
	sp := NewSync(inner)
	r0 := randx.New(64)
	theta := r0.OnSphere(n)

	const workers = 8
	const perWorker = 100
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			r := randx.NewStream(65, uint64(w))
			for i := 0; i < perWorker; i++ {
				x := r.OnSphere(n)
				v := x.Dot(theta)
				_, _, err := sp.PriceRound(x, math.Inf(-1), func(q Quote) bool {
					return Sold(q.Price, v)
				})
				if err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if got := inner.Counters().Rounds; got != workers*perWorker {
		t.Fatalf("rounds = %d, want %d", got, workers*perWorker)
	}
	// Plain PostPrice/Observe also work through the wrapper.
	q, err := sp.PostPrice(linalg.VectorOf(1, 0, 0, 0), math.Inf(-1))
	if err != nil {
		t.Fatal(err)
	}
	if q.Decision != DecisionSkip {
		if err := sp.Observe(true); err != nil {
			t.Fatal(err)
		}
	}
}

// TestSGDPostPriceInputValidation is the regression test for malformed
// inputs: a NaN/Inf feature entry used to flow straight into the θ̂
// update and poison every later round.
func TestSGDPostPriceInputValidation(t *testing.T) {
	cases := []struct {
		name string
		x    []float64
	}{
		{"short", []float64{1}},
		{"long", []float64{1, 2, 3}},
		{"nan", []float64{math.NaN(), 0}},
		{"+inf", []float64{0, math.Inf(1)}},
		{"-inf", []float64{math.Inf(-1), 0}},
	}
	s, err := NewSGD(2, 0.5, 1.0, true)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range cases {
		if _, err := s.PostPrice(tc.x, 0.1); err == nil {
			t.Fatalf("%s: expected error", tc.name)
		}
		if s.Pending() {
			t.Fatalf("%s: rejected round left the poster pending", tc.name)
		}
	}
	// A valid round still works after the rejections, and theta is clean.
	q, err := s.PostPrice([]float64{1, 0}, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Observe(true); err != nil {
		t.Fatal(err)
	}
	for i, v := range s.Theta() {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("theta[%d] = %v after rejected inputs", i, v)
		}
	}
	_ = q
}

// TestSGDPending covers the two-phase introspection used by SyncPoster's
// shadow and the serving guards.
func TestSGDPending(t *testing.T) {
	s, err := NewSGD(2, 0.5, 1.0, false)
	if err != nil {
		t.Fatal(err)
	}
	if s.Pending() {
		t.Fatal("fresh poster pending")
	}
	if _, err := s.PostPrice([]float64{1, 0}, 0); err != nil {
		t.Fatal(err)
	}
	if !s.Pending() {
		t.Fatal("not pending after PostPrice")
	}
	if _, err := s.SnapshotEnvelope(); err == nil {
		t.Fatal("snapshot accepted mid-round")
	}
	if err := s.Observe(false); err != nil {
		t.Fatal(err)
	}
	if s.Pending() {
		t.Fatal("pending after Observe")
	}
}
