package pricing

import (
	"math"
	"sync"
	"testing"

	"datamarket/internal/linalg"
	"datamarket/internal/randx"
)

// batchTestPoster builds a fresh SyncPoster around a reserve-constrained
// mechanism with deterministic parameters.
func batchTestPoster(t *testing.T, n int) *SyncPoster {
	t.Helper()
	m, err := New(n, 2*math.Sqrt(float64(n)), WithReserve(), WithThreshold(0.05))
	if err != nil {
		t.Fatal(err)
	}
	return NewSync(m)
}

// TestPriceBatchMatchesSingleRounds drives the same round sequence
// through PriceBatch and through per-round PriceRound calls on an
// identically configured mechanism. Every quote, every acceptance, and
// the final mechanism state (counters + snapshot) must agree exactly:
// a batch is k back-to-back rounds, nothing more.
func TestPriceBatchMatchesSingleRounds(t *testing.T) {
	const n, rounds = 4, 200
	r := randx.New(7)
	theta := r.OnSphere(n)
	batch := make([]BatchRound, rounds)
	for i := range batch {
		batch[i] = BatchRound{X: randx.NewStream(11, uint64(i)).OnSphere(n), Reserve: -1}
	}
	accept := func(q Quote, x linalg.Vector) bool { return Sold(q.Price, x.Dot(theta)) }

	single := batchTestPoster(t, n)
	singleQuotes := make([]Quote, rounds)
	singleAccepted := make([]bool, rounds)
	for i := range batch {
		q, acc, err := single.PriceRound(batch[i].X, batch[i].Reserve, func(q Quote) bool {
			return accept(q, batch[i].X)
		})
		if err != nil {
			t.Fatalf("round %d: %v", i, err)
		}
		singleQuotes[i], singleAccepted[i] = q, acc
	}

	batched := batchTestPoster(t, n)
	out := batched.PriceBatch(batch, func(i int, q Quote) bool {
		return accept(q, batch[i].X)
	})
	if len(out) != rounds {
		t.Fatalf("got %d outcomes, want %d", len(out), rounds)
	}
	for i, o := range out {
		if o.Err != nil {
			t.Fatalf("round %d: %v", i, o.Err)
		}
		if o.Quote != singleQuotes[i] || o.Accepted != singleAccepted[i] {
			t.Fatalf("round %d diverged: batch %+v/%v, single %+v/%v",
				i, o.Quote, o.Accepted, singleQuotes[i], singleAccepted[i])
		}
	}

	cs, _ := single.Counters()
	cb, _ := batched.Counters()
	if cs != cb {
		t.Fatalf("counters diverged: single %+v, batch %+v", cs, cb)
	}
	ss, err := single.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	sb, err := batched.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if !linalg.Vector(ss.Center).Equal(linalg.Vector(sb.Center), 0) {
		t.Fatalf("ellipsoid centers diverged:\n%v\n%v", ss.Center, sb.Center)
	}
	if !linalg.Vector(ss.Shape).Equal(linalg.Vector(sb.Shape), 0) {
		t.Fatal("ellipsoid shapes diverged")
	}
}

// TestPriceBatchPerItemError verifies that a bad round inside a batch is
// reported on its own outcome and does not poison the rounds after it.
func TestPriceBatchPerItemError(t *testing.T) {
	sp := batchTestPoster(t, 2)
	rounds := []BatchRound{
		{X: linalg.VectorOf(1, 0), Reserve: -1},
		{X: linalg.VectorOf(1, 0, 0), Reserve: -1}, // wrong dimension
		{X: linalg.VectorOf(0, 1), Reserve: -1},
	}
	out := sp.PriceBatch(rounds, func(int, Quote) bool { return true })
	if out[0].Err != nil || out[2].Err != nil {
		t.Fatalf("valid rounds errored: %v, %v", out[0].Err, out[2].Err)
	}
	if out[1].Err == nil {
		t.Fatal("dimension-mismatch round did not error")
	}
	c, _ := sp.Counters()
	if c.Rounds != 2 {
		t.Fatalf("mechanism saw %d rounds, want 2", c.Rounds)
	}
}

// TestPriceBatchSkipRound checks that skip rounds inside a batch post no
// price, fire no respond callback, and leave nothing pending.
func TestPriceBatchSkipRound(t *testing.T) {
	sp := batchTestPoster(t, 2)
	rounds := []BatchRound{
		{X: linalg.VectorOf(1, 0), Reserve: 1e6}, // certain no-deal
		{X: linalg.VectorOf(1, 0), Reserve: -1},
	}
	out := sp.PriceBatch(rounds, func(i int, q Quote) bool {
		if i == 0 {
			t.Fatal("respond called on a skip round")
		}
		return true
	})
	if out[0].Err != nil || out[0].Quote.Decision != DecisionSkip || out[0].Accepted {
		t.Fatalf("skip outcome wrong: %+v", out[0])
	}
	if out[1].Err != nil || out[1].Quote.Decision == DecisionSkip {
		t.Fatalf("round after skip wrong: %+v", out[1])
	}
	if sp.Pending() {
		t.Fatal("batch left a round pending")
	}
}

// TestPriceBatchConcurrent hammers one poster with concurrent batches
// (run under -race in CI). Batches serialize at the lock, so the final
// round count must be the exact total and the mechanism must stay
// well-formed.
func TestPriceBatchConcurrent(t *testing.T) {
	const n, workers, perBatch, batches = 3, 8, 16, 10
	sp := batchTestPoster(t, n)
	theta := randx.New(3).OnSphere(n)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := randx.NewStream(5, uint64(w))
			for b := 0; b < batches; b++ {
				rounds := make([]BatchRound, perBatch)
				for i := range rounds {
					rounds[i] = BatchRound{X: r.OnSphere(n), Reserve: -1}
				}
				out := sp.PriceBatch(rounds, func(i int, q Quote) bool {
					return Sold(q.Price, rounds[i].X.Dot(theta))
				})
				for i, o := range out {
					if o.Err != nil {
						t.Errorf("worker %d round %d: %v", w, i, o.Err)
					}
				}
			}
		}(w)
	}
	wg.Wait()
	c, _ := sp.Counters()
	if want := workers * perBatch * batches; c.Rounds != want {
		t.Fatalf("counted %d rounds, want %d", c.Rounds, want)
	}
	if sp.Pending() {
		t.Fatal("pending round left behind")
	}
}

// TestSyncPosterPending covers the Pending accessor across the two-phase
// protocol.
func TestSyncPosterPending(t *testing.T) {
	sp := batchTestPoster(t, 2)
	if sp.Pending() {
		t.Fatal("fresh poster pending")
	}
	if _, err := sp.PostPrice(linalg.VectorOf(1, 0), -1); err != nil {
		t.Fatal(err)
	}
	if !sp.Pending() {
		t.Fatal("open round not reported pending")
	}
	if err := sp.Observe(true); err != nil {
		t.Fatal(err)
	}
	if sp.Pending() {
		t.Fatal("closed round still pending")
	}
}
