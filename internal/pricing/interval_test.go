package pricing

import (
	"math"
	"testing"

	"datamarket/internal/randx"
)

func TestNewIntervalValidation(t *testing.T) {
	if _, err := NewInterval(1, 1); err == nil {
		t.Fatal("expected error for empty interval")
	}
	if _, err := NewInterval(2, 1); err == nil {
		t.Fatal("expected error for inverted interval")
	}
	if _, err := NewInterval(0, 1, WithUncertainty(-1)); err == nil {
		t.Fatal("expected error for negative delta")
	}
	m, err := NewInterval(0, 2, WithThreshold(0.1))
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := m.Bounds()
	if lo != 0 || hi != 2 {
		t.Fatalf("bounds = [%v, %v]", lo, hi)
	}
}

func TestIntervalRejectsBadFeature(t *testing.T) {
	m, _ := NewInterval(0, 2, WithThreshold(0.1))
	for _, x := range []float64{0, -1, math.NaN(), math.Inf(1)} {
		if _, err := m.PostPrice(x, 0); err == nil {
			t.Fatalf("expected error for feature %v", x)
		}
	}
}

func TestIntervalBisectionConverges(t *testing.T) {
	theta := math.Sqrt2 // true scalar weight
	m, _ := NewInterval(0, 2, WithThreshold(1e-6))
	r := randx.New(2)
	for i := 0; i < 60; i++ {
		x := r.Uniform(0.5, 2)
		v := x * theta
		q, err := m.PostPrice(x, math.Inf(-1))
		if err != nil {
			t.Fatal(err)
		}
		if err := m.Observe(q.Price <= v); err != nil {
			t.Fatal(err)
		}
		lo, hi := m.Bounds()
		if theta < lo-1e-9 || theta > hi+1e-9 {
			t.Fatalf("round %d: θ* = %v expelled from [%v, %v]", i, theta, lo, hi)
		}
	}
	lo, hi := m.Bounds()
	if hi-lo > 1e-5 {
		t.Fatalf("interval did not converge: [%v, %v]", lo, hi)
	}
}

func TestIntervalOneDimensionalColdStart(t *testing.T) {
	// Reproduces the paper's n=1 discussion (§V-A): with K₁ = [0, 2],
	// reserve 1, value √2 — the first exploratory price is
	// max(1, middle=1) = 1, it is accepted, and afterwards the interval is
	// [1, 2] so the reserve never binds again.
	m, _ := NewInterval(0, 2, WithReserve(), WithThreshold(1e-9))
	q, err := m.PostPrice(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if q.Decision != DecisionExploratory || q.Price != 1 {
		t.Fatalf("first quote = %+v", q)
	}
	if err := m.Observe(true); err != nil { // 1 ≤ √2: accepted
		t.Fatal(err)
	}
	lo, hi := m.Bounds()
	if lo != 1 || hi != 2 {
		t.Fatalf("interval after first round = [%v, %v], want [1, 2]", lo, hi)
	}
	// Second round: middle price 1.5 > reserve 1 — reserve not binding.
	q, _ = m.PostPrice(1, 1)
	if q.ReserveBinding {
		t.Fatal("reserve still binding after exclusion")
	}
	if q.Price != 1.5 {
		t.Fatalf("second price = %v, want 1.5", q.Price)
	}
}

func TestIntervalSkipAndReserve(t *testing.T) {
	m, _ := NewInterval(0, 1, WithReserve(), WithThreshold(0.01))
	// Market value at most 2 for x=2; reserve 3 forces skip.
	q, err := m.PostPrice(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if q.Decision != DecisionSkip {
		t.Fatalf("decision = %v", q.Decision)
	}
	// Reserve binding on an exploratory round.
	q, _ = m.PostPrice(2, 1.5) // middle = 1, reserve 1.5 > 1
	if !q.ReserveBinding || q.Price != 1.5 {
		t.Fatalf("quote = %+v", q)
	}
	m.Observe(false)
}

func TestIntervalConservativeDoesNotRefine(t *testing.T) {
	m, _ := NewInterval(0, 1, WithThreshold(10)) // huge ε: always conservative
	lo0, hi0 := m.Bounds()
	q, _ := m.PostPrice(1, math.Inf(-1))
	if q.Decision != DecisionConservative {
		t.Fatalf("decision = %v", q.Decision)
	}
	m.Observe(false) // even a rejection must not refine
	lo1, hi1 := m.Bounds()
	if lo0 != lo1 || hi0 != hi1 {
		t.Fatal("conservative feedback refined the interval")
	}
	c := m.Counters()
	if c.CutsApplied != 0 {
		t.Fatalf("counters = %+v", c)
	}
}

func TestIntervalMatchesEllipsoidMechanism1D(t *testing.T) {
	// The general mechanism at n=1 and the interval mechanism must post
	// identical prices round-for-round on the same stream.
	theta := 1.3
	eps := 0.01
	iv, _ := NewInterval(-2, 2, WithThreshold(eps), WithReserve())
	ball, _ := New(1, 2, WithThreshold(eps), WithReserve()) // ball of radius 2 = [-2, 2]
	r := randx.New(31)
	for i := 0; i < 80; i++ {
		x := r.Uniform(0.5, 1.5)
		v := x * theta
		reserve := 0.6 * v
		q1, err := iv.PostPrice(x, reserve)
		if err != nil {
			t.Fatal(err)
		}
		q2, err := ball.PostPrice(linalgVec(x), reserve)
		if err != nil {
			t.Fatal(err)
		}
		if q1.Decision != q2.Decision {
			t.Fatalf("round %d: decisions diverge: %v vs %v", i, q1.Decision, q2.Decision)
		}
		if math.Abs(q1.Price-q2.Price) > 1e-6 {
			t.Fatalf("round %d: prices diverge: %v vs %v", i, q1.Price, q2.Price)
		}
		if q1.Decision != DecisionSkip {
			sold := q1.Price <= v
			iv.Observe(sold)
			ball.Observe(sold)
		}
	}
}

func TestIntervalUncertaintyBuffer(t *testing.T) {
	delta := 0.05
	m, _ := NewInterval(0, 2, WithThreshold(10), WithUncertainty(delta))
	q, _ := m.PostPrice(1, math.Inf(-1))
	if q.Decision != DecisionConservative {
		t.Fatalf("decision = %v", q.Decision)
	}
	if math.Abs(q.Price-(q.Lower-delta)) > 1e-12 {
		t.Fatalf("price %v, want p̲−δ = %v", q.Price, q.Lower-delta)
	}
}

// Theorem 3: cumulative regret in 1-D grows like O(log T). We check that
// doubling T adds roughly a constant amount of regret (far from linear).
func TestIntervalLogRegretScaling(t *testing.T) {
	theta := math.Pi / 2
	regretAt := func(T int) float64 {
		eps := DefaultThreshold(1, T, 0)
		m, _ := NewInterval(0, 2, WithThreshold(eps))
		r := randx.New(5)
		tr := NewTracker(false)
		for i := 0; i < T; i++ {
			x := r.Uniform(0.5, 1)
			v := x * theta
			q, err := m.PostPrice(x, math.Inf(-1))
			if err != nil {
				t.Fatal(err)
			}
			m.Observe(q.Price <= v)
			tr.Record(v, math.Inf(-1), q)
		}
		return tr.CumulativeRegret()
	}
	r1 := regretAt(1000)
	r2 := regretAt(8000)
	// Linear growth would multiply regret by 8; logarithmic growth leaves
	// it within a small factor.
	if r2 > 3*r1+1 {
		t.Fatalf("regret grows too fast: R(1000)=%v, R(8000)=%v", r1, r2)
	}
}

func TestIntervalProtocolErrors(t *testing.T) {
	m, _ := NewInterval(0, 1, WithThreshold(0.1))
	if err := m.Observe(true); err != ErrNoPendingRound {
		t.Fatalf("Observe with no round: %v", err)
	}
	if _, err := m.PostPrice(1, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := m.PostPrice(1, 0); err != ErrPendingRound {
		t.Fatalf("double PostPrice: %v", err)
	}
}

// linalgVec builds a 1-vector without importing linalg at every call site.
func linalgVec(x float64) []float64 { return []float64{x} }
