package pricing

import (
	"fmt"
	"math"

	"datamarket/internal/linalg"
)

// SGDPoster is the stochastic-gradient contextual pricing strategy of
// Amin, Rostamizadeh, Syed (NIPS 2014), the related-work comparator the
// paper discusses in §VI-B: maintain a point estimate θ̂ of the weight
// vector, post the implied value estimate (optionally floored at the
// reserve), and after each round take a gradient step on the revenue
// surrogate. It attains Õ(T^{2/3}) strategic regret under i.i.d.
// features — asymptotically worse than the ellipsoid mechanism's
// O(n² log T), which is exactly the comparison the ablation benches draw.
type SGDPoster struct {
	theta      linalg.Vector
	eta0       float64 // initial step size
	margin     float64 // exploration margin scale
	useReserve bool

	steps   int
	pending bool          //lint:ignore snapshotfields SGDSnapshot refuses pending rounds, so pending is always false at snapshot time
	lastX   linalg.Vector //lint:ignore snapshotfields per-round scratch; rebuilt by the next PostPrice
	lastP   float64       //lint:ignore snapshotfields per-round scratch; rebuilt by the next PostPrice
	lastEst float64       //lint:ignore snapshotfields per-round scratch; rebuilt by the next PostPrice

	counters Counters
}

// NewSGD builds the baseline for n-dimensional features. eta0 is the
// initial learning rate (step t uses eta0/√t); margin scales the
// downward exploration offset t^{-1/3} that gives the T^{2/3} rate.
func NewSGD(n int, eta0, margin float64, useReserve bool) (*SGDPoster, error) {
	if n <= 0 {
		return nil, fmt.Errorf("pricing: SGD dimension must be positive, got %d", n)
	}
	// Finiteness first: eta0 <= 0 and margin < 0 are both false for
	// NaN, and a NaN step size or margin corrupts θ̂ on the first
	// Observe.
	if math.IsNaN(eta0) || math.IsInf(eta0, 0) || math.IsNaN(margin) || math.IsInf(margin, 0) {
		return nil, fmt.Errorf("pricing: SGD needs finite eta0 and margin, got %g, %g", eta0, margin)
	}
	if eta0 <= 0 || margin < 0 {
		return nil, fmt.Errorf("pricing: SGD needs positive eta0 and non-negative margin, got %g, %g", eta0, margin)
	}
	return &SGDPoster{
		theta:      make(linalg.Vector, n),
		eta0:       eta0,
		margin:     margin,
		useReserve: useReserve,
	}, nil
}

// Theta returns a copy of the current estimate θ̂.
func (s *SGDPoster) Theta() linalg.Vector { return s.theta.Clone() }

// Counters returns the run statistics.
func (s *SGDPoster) Counters() Counters { return s.counters }

// Dim returns the feature dimension n.
func (s *SGDPoster) Dim() int { return len(s.theta) }

// Pending reports whether a posted price is awaiting Observe. Wrappers
// such as SyncPoster rely on it for their lock-free pending shadow — and
// through that, servers rely on it for the delete/restore guards.
func (s *SGDPoster) Pending() bool { return s.pending }

// PostPrice posts max(reserve, x·θ̂ − margin·t^{-1/3}): the value estimate
// shaded down so that sales keep happening often enough to learn. A
// non-finite feature entry is rejected — the same validation the ellipsoid
// serving path performs — because it would corrupt θ̂ for every later round.
func (s *SGDPoster) PostPrice(x linalg.Vector, reserve float64) (Quote, error) {
	if len(x) != len(s.theta) {
		return Quote{}, fmt.Errorf("pricing: SGD feature dimension %d, want %d", len(x), len(s.theta))
	}
	for i, v := range x {
		if !isFinite(v) {
			return Quote{}, fmt.Errorf("pricing: SGD feature %d is %g, want finite", i, v)
		}
	}
	if s.pending {
		return Quote{}, ErrPendingRound
	}
	s.steps++
	s.counters.Rounds++
	est := x.Dot(s.theta)
	price := est - s.margin/math.Cbrt(float64(s.steps))
	q := Quote{Lower: price, Upper: est, Decision: DecisionExploratory}
	if s.useReserve && reserve > price {
		price = reserve
		q.ReserveBinding = true
	}
	q.Price = price
	s.counters.Exploratory++
	s.pending = true
	s.lastX = x.Clone()
	s.lastP = price
	s.lastEst = est
	return q, nil
}

// Observe performs the gradient step: on rejection the estimate was too
// high along x (step down); on acceptance too low (step up). The step
// size decays as eta0/√t.
func (s *SGDPoster) Observe(accepted bool) error {
	if !s.pending {
		return ErrNoPendingRound
	}
	s.pending = false
	if accepted {
		s.counters.Accepts++
	} else {
		s.counters.Rejects++
	}
	eta := s.eta0 / math.Sqrt(float64(s.steps))
	// Surrogate gradient: sign of the pricing error along x.
	dir := 1.0
	if !accepted {
		dir = -1
	}
	s.theta.AddScaled(eta*dir, s.lastX)
	return nil
}

var _ Poster = (*SGDPoster)(nil)
