package server

import (
	"net/http"
	"testing"

	"datamarket/api"
)

func TestAdminMetrics(t *testing.T) {
	_, c := newTestServer(t)

	// Traffic mix: 2 creates (one duplicate → 409), 3 prices, one request
	// no route accepts.
	create := CreateStreamRequest{ID: "m", Dim: 2, Horizon: 1000}
	if st := c.do(http.MethodPost, "/v1/streams", create, nil); st != http.StatusCreated {
		t.Fatalf("create: status %d", st)
	}
	if st := c.do(http.MethodPost, "/v1/streams", create, nil); st != http.StatusConflict {
		t.Fatalf("duplicate create: status %d", st)
	}
	val := 0.7
	for i := 0; i < 3; i++ {
		req := PriceRequest{Features: []float64{0.6, 0.8}, Reserve: -1e9, Valuation: &val}
		if st := c.do(http.MethodPost, "/v1/streams/m/price", req, nil); st != http.StatusOK {
			t.Fatalf("price %d: status %d", i, st)
		}
	}
	if st := c.do(http.MethodGet, "/v1/no/such/route", nil, nil); st != http.StatusNotFound {
		t.Fatalf("unmatched: status %d", st)
	}

	var resp api.MetricsResponse
	if st := c.do(http.MethodGet, "/v1/admin/metrics", nil, &resp); st != http.StatusOK {
		t.Fatalf("metrics: status %d", st)
	}
	byName := make(map[string]api.EndpointMetrics, len(resp.Endpoints))
	for i, em := range resp.Endpoints {
		byName[em.Endpoint] = em
		if i > 0 && resp.Endpoints[i-1].Endpoint >= em.Endpoint {
			t.Errorf("endpoints not sorted: %q before %q", resp.Endpoints[i-1].Endpoint, em.Endpoint)
		}
	}

	cr, ok := byName["POST /v1/streams"]
	if !ok {
		t.Fatalf("no POST /v1/streams metrics; got %v", byName)
	}
	if cr.Count != 2 || cr.Errors != 1 {
		t.Errorf("create metrics: count=%d errors=%d, want 2/1", cr.Count, cr.Errors)
	}
	pr, ok := byName["POST /v1/streams/{id}/price"]
	if !ok {
		t.Fatalf("no price metrics; got %v", byName)
	}
	if pr.Count != 3 || pr.Errors != 0 {
		t.Errorf("price metrics: count=%d errors=%d, want 3/0", pr.Count, pr.Errors)
	}
	if pr.LatencySumMS <= 0 || pr.LatencyMaxMS <= 0 || pr.LatencyMaxMS > pr.LatencySumMS {
		t.Errorf("implausible latency sum/max: %v/%v", pr.LatencySumMS, pr.LatencyMaxMS)
	}
	if n := len(pr.Buckets); n == 0 {
		t.Fatalf("no latency buckets")
	}
	// Buckets are cumulative and bounded by the total count.
	var prev uint64
	for _, b := range pr.Buckets {
		if b.Count < prev {
			t.Errorf("bucket counts not cumulative: %v", pr.Buckets)
		}
		prev = b.Count
	}
	if prev > pr.Count {
		t.Errorf("bucket tail %d exceeds count %d", prev, pr.Count)
	}

	um, ok := byName["unmatched"]
	if !ok {
		t.Fatalf("no unmatched metrics; got %v", byName)
	}
	if um.Count != 1 || um.Errors != 1 {
		t.Errorf("unmatched metrics: count=%d errors=%d, want 1/1", um.Count, um.Errors)
	}

	// The metrics endpoint observes itself on a second scrape.
	if st := c.do(http.MethodGet, "/v1/admin/metrics", nil, &resp); st != http.StatusOK {
		t.Fatalf("second metrics scrape: status %d", st)
	}
	found := false
	for _, em := range resp.Endpoints {
		if em.Endpoint == "GET /v1/admin/metrics" && em.Count >= 1 {
			found = true
		}
	}
	if !found {
		t.Errorf("metrics endpoint did not record itself")
	}
}
