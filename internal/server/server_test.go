package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"datamarket/internal/pricing"
	"datamarket/internal/randx"
)

// client is a minimal JSON client for the brokerd API.
type client struct {
	t    *testing.T
	base string
	http *http.Client
}

func newTestServer(t *testing.T) (*httptest.Server, *client) {
	t.Helper()
	ts := httptest.NewServer(NewServer(nil).Handler())
	t.Cleanup(ts.Close)
	return ts, &client{t: t, base: ts.URL, http: ts.Client()}
}

// do sends body (marshalled) and decodes the response into out (when
// non-nil), returning the HTTP status.
func (c *client) do(method, path string, body, out any) int {
	c.t.Helper()
	var buf io.Reader
	if body != nil {
		data, err := json.Marshal(body)
		if err != nil {
			c.t.Fatal(err)
		}
		buf = bytes.NewReader(data)
	}
	req, err := http.NewRequest(method, c.base+path, buf)
	if err != nil {
		c.t.Fatal(err)
	}
	resp, err := c.http.Do(req)
	if err != nil {
		c.t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil && err != io.EOF {
			c.t.Fatalf("%s %s: decoding response: %v", method, path, err)
		}
	}
	return resp.StatusCode
}

func (c *client) mustDo(method, path string, body, out any, want int) {
	c.t.Helper()
	if got := c.do(method, path, body, out); got != want {
		c.t.Fatalf("%s %s: status %d, want %d", method, path, got, want)
	}
}

func (c *client) price(stream string, features []float64, reserve, valuation float64) PriceResponse {
	c.t.Helper()
	var resp PriceResponse
	c.mustDo("POST", "/v1/streams/"+stream+"/price",
		PriceRequest{Features: features, Reserve: reserve, Valuation: &valuation},
		&resp, http.StatusOK)
	return resp
}

// runClients drives rounds concurrent full price rounds from `workers`
// clients against the given streams, splitting rounds evenly.
func runClients(t *testing.T, c *client, streams []string, workers, rounds int, seed uint64) {
	t.Helper()
	n := 3
	theta := randx.New(seed).OnSphere(n)
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			r := randx.NewStream(seed+1, uint64(w))
			for i := 0; i < rounds/workers; i++ {
				x := r.OnSphere(n)
				v := x.Dot(theta)
				stream := streams[(w+i)%len(streams)]
				var resp PriceResponse
				status := c.do("POST", "/v1/streams/"+stream+"/price",
					PriceRequest{Features: x, Reserve: -1e9, Valuation: &v}, &resp)
				if status != http.StatusOK {
					errs <- fmt.Errorf("worker %d round %d: status %d", w, i, status)
					return
				}
				if resp.Decision == "skip" {
					errs <- fmt.Errorf("worker %d round %d: unexpected skip", w, i)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestServerLifecycle is the acceptance-path integration test: it drives
// create → price → snapshot → restore → price over HTTP with 8
// concurrent clients (run under -race via the CI workflow).
func TestServerLifecycle(t *testing.T) {
	_, c := newTestServer(t)
	const (
		workers = 8
		rounds  = 400
	)
	streams := []string{"segment-a", "segment-b", "segment-c"}
	for _, id := range streams {
		var info StreamInfo
		c.mustDo("POST", "/v1/streams",
			CreateStreamRequest{ID: id, Dim: 3, Threshold: 0.05},
			&info, http.StatusCreated)
		if info.ID != id || info.Dim != 3 {
			t.Fatalf("create returned %+v", info)
		}
	}

	// Phase 1: concurrent pricing across all streams.
	runClients(t, c, streams, workers, rounds, 100)

	var stats StatsResponse
	c.mustDo("GET", "/v1/streams/segment-a/stats", nil, &stats, http.StatusOK)
	wantRounds := 0
	for _, id := range streams {
		var s StatsResponse
		c.mustDo("GET", "/v1/streams/"+id+"/stats", nil, &s, http.StatusOK)
		wantRounds += s.Counters.Rounds
		if s.Counters.Accepts+s.Counters.Rejects+s.Counters.Skips != s.Counters.Rounds {
			t.Fatalf("%s: inconsistent counters %+v", id, s.Counters)
		}
		if s.Regret.Rounds != s.Counters.Rounds {
			t.Fatalf("%s: tracker saw %d rounds, counters %d", id, s.Regret.Rounds, s.Counters.Rounds)
		}
	}
	if wantRounds != (rounds/workers)*workers {
		t.Fatalf("total rounds %d, want %d", wantRounds, (rounds/workers)*workers)
	}

	// Snapshot segment-a, mutate it further, then roll it back. The wire
	// format is the family-tagged envelope; a linear stream carries its
	// ellipsoid state under "linear".
	var snap pricing.Envelope
	c.mustDo("GET", "/v1/streams/segment-a/snapshot", nil, &snap, http.StatusOK)
	if snap.Family != pricing.FamilyLinear || snap.Linear == nil {
		t.Fatalf("snapshot envelope %+v not linear-tagged", snap)
	}
	runClients(t, c, []string{"segment-a"}, workers, 160, 200)
	var after StatsResponse
	c.mustDo("GET", "/v1/streams/segment-a/stats", nil, &after, http.StatusOK)
	if after.Counters.Rounds == snap.Linear.Counters.Rounds {
		t.Fatal("phase 2 did not advance the stream")
	}
	c.mustDo("POST", "/v1/streams/segment-a/restore", snap, nil, http.StatusOK)
	c.mustDo("GET", "/v1/streams/segment-a/stats", nil, &after, http.StatusOK)
	if after.Counters != snap.Linear.Counters {
		t.Fatalf("restore: counters %+v, want %+v", after.Counters, snap.Linear.Counters)
	}
	// Legacy pre-family snapshots (a bare ellipsoid Snapshot) restore too.
	c.mustDo("POST", "/v1/streams/segment-a/restore", snap.Linear, nil, http.StatusOK)

	// Restoring into a fresh ID registers a new stream (crash recovery).
	c.mustDo("POST", "/v1/streams/recovered/restore", snap, nil, http.StatusCreated)

	// The rolled-back stream and the recovered stream agree exactly on
	// the next round — the mechanism is deterministic given its state.
	x := randx.New(300).OnSphere(3)
	v := 0.4
	qa := c.price("segment-a", x, -1e9, v)
	qb := c.price("recovered", x, -1e9, v)
	if qa.Decision != qb.Decision || math.Abs(qa.Price-qb.Price) > 1e-12 {
		t.Fatalf("restored streams diverged: %+v vs %+v", qa, qb)
	}

	// Phase 3: pricing resumes concurrently after restore.
	runClients(t, c, []string{"segment-a", "recovered"}, workers, 160, 400)

	var list ListStreamsResponse
	c.mustDo("GET", "/v1/streams", nil, &list, http.StatusOK)
	if len(list.Streams) != 4 {
		t.Fatalf("listed %d streams, want 4", len(list.Streams))
	}
	c.mustDo("DELETE", "/v1/streams/recovered", nil, nil, http.StatusNoContent)
	c.mustDo("GET", "/v1/streams/recovered", nil, nil, http.StatusNotFound)
}

// TestServerTwoPhase exercises the quote/observe protocol and its
// conflict handling.
func TestServerTwoPhase(t *testing.T) {
	_, c := newTestServer(t)
	c.mustDo("POST", "/v1/streams",
		CreateStreamRequest{ID: "s", Dim: 2, Reserve: true, Threshold: 0.1},
		nil, http.StatusCreated)

	// Observe with no round open conflicts.
	c.mustDo("POST", "/v1/streams/s/observe", ObserveRequest{Accepted: true}, nil, http.StatusConflict)

	var q PriceResponse
	c.mustDo("POST", "/v1/streams/s/quote",
		QuoteRequest{Features: []float64{1, 0}, Reserve: 0.1}, &q, http.StatusOK)
	if q.Decision == "skip" {
		t.Fatalf("unexpected skip: %+v", q)
	}

	// A second quote while the round is pending conflicts; so does a
	// one-shot price.
	c.mustDo("POST", "/v1/streams/s/quote",
		QuoteRequest{Features: []float64{0, 1}}, nil, http.StatusConflict)
	val := 1.0
	c.mustDo("POST", "/v1/streams/s/price",
		PriceRequest{Features: []float64{0, 1}, Valuation: &val}, nil, http.StatusConflict)
	// Snapshots are refused mid-round, and so are restores — swapping
	// state now would discard the buyer's in-flight decision.
	c.mustDo("GET", "/v1/streams/s/snapshot", nil, nil, http.StatusConflict)
	var fresh pricing.Envelope
	c.mustDo("POST", "/v1/streams", CreateStreamRequest{ID: "donor", Dim: 2}, nil, http.StatusCreated)
	c.mustDo("GET", "/v1/streams/donor/snapshot", nil, &fresh, http.StatusOK)
	c.mustDo("POST", "/v1/streams/s/restore", fresh, nil, http.StatusConflict)

	c.mustDo("POST", "/v1/streams/s/observe", ObserveRequest{Accepted: true}, nil, http.StatusOK)
	c.mustDo("POST", "/v1/streams/s/observe", ObserveRequest{Accepted: true}, nil, http.StatusConflict)

	// A skip round leaves nothing pending: observe still conflicts.
	c.mustDo("POST", "/v1/streams/s/quote",
		QuoteRequest{Features: []float64{1, 0}, Reserve: 1e6}, &q, http.StatusOK)
	if q.Decision != "skip" {
		t.Fatalf("want skip at huge reserve, got %+v", q)
	}
	c.mustDo("POST", "/v1/streams/s/observe", ObserveRequest{Accepted: true}, nil, http.StatusConflict)
	// And the stream is not wedged.
	c.mustDo("POST", "/v1/streams/s/quote",
		QuoteRequest{Features: []float64{1, 0}, Reserve: 0.1}, &q, http.StatusOK)
	c.mustDo("POST", "/v1/streams/s/observe", ObserveRequest{Accepted: false}, nil, http.StatusOK)
}

// TestServerValidation covers the error surface.
func TestServerValidation(t *testing.T) {
	_, c := newTestServer(t)

	// Malformed create requests.
	c.mustDo("POST", "/v1/streams", CreateStreamRequest{Dim: 2}, nil, http.StatusBadRequest)
	c.mustDo("POST", "/v1/streams", CreateStreamRequest{ID: "s"}, nil, http.StatusBadRequest)
	c.mustDo("POST", "/v1/streams",
		CreateStreamRequest{ID: "s", Dim: 2, Radius: -1}, nil, http.StatusBadRequest)
	// An over-limit dimension must be rejected before allocating the
	// n×n shape matrix, not crash the server.
	c.mustDo("POST", "/v1/streams",
		CreateStreamRequest{ID: "s", Dim: MaxDim + 1}, nil, http.StatusBadRequest)
	c.mustDo("POST", "/v1/streams",
		CreateStreamRequest{ID: "s", Dim: 2, Delta: -0.5}, nil, http.StatusBadRequest)

	c.mustDo("POST", "/v1/streams", CreateStreamRequest{ID: "s", Dim: 2}, nil, http.StatusCreated)
	// Duplicate ID conflicts.
	c.mustDo("POST", "/v1/streams", CreateStreamRequest{ID: "s", Dim: 3}, nil, http.StatusConflict)

	// Unknown stream.
	c.mustDo("GET", "/v1/streams/nope", nil, nil, http.StatusNotFound)
	c.mustDo("GET", "/v1/streams/nope/stats", nil, nil, http.StatusNotFound)
	c.mustDo("DELETE", "/v1/streams/nope", nil, nil, http.StatusNotFound)
	val := 1.0
	c.mustDo("POST", "/v1/streams/nope/price",
		PriceRequest{Features: []float64{1, 0}, Valuation: &val}, nil, http.StatusNotFound)

	// Dimension mismatch and missing valuation.
	c.mustDo("POST", "/v1/streams/s/price",
		PriceRequest{Features: []float64{1, 0, 0}, Valuation: &val}, nil, http.StatusBadRequest)
	c.mustDo("POST", "/v1/streams/s/price",
		PriceRequest{Features: []float64{1, 0}}, nil, http.StatusBadRequest)

	// Unknown fields and broken JSON are rejected.
	req, _ := http.NewRequest("POST", c.base+"/v1/streams", bytes.NewBufferString(`{"bogus":1}`))
	resp, err := c.http.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown field: status %d", resp.StatusCode)
	}

	// Restoring a corrupt snapshot fails without registering a stream.
	c.mustDo("POST", "/v1/streams/fresh/restore",
		map[string]any{"version": 1, "n": 2, "shape": []float64{1, 0, 0}, "center": []float64{0, 0}, "threshold": 0.1},
		nil, http.StatusBadRequest)
	c.mustDo("GET", "/v1/streams/fresh", nil, nil, http.StatusNotFound)

	// Restoring a snapshot of a different dimension into a live stream
	// fails and leaves the stream intact.
	var snap pricing.Envelope
	c.mustDo("POST", "/v1/streams", CreateStreamRequest{ID: "d3", Dim: 3}, nil, http.StatusCreated)
	c.mustDo("GET", "/v1/streams/d3/snapshot", nil, &snap, http.StatusOK)
	c.mustDo("POST", "/v1/streams/s/restore", snap, nil, http.StatusBadRequest)
	c.price("s", []float64{1, 0}, 0, 1.0)

	// Health endpoint reports the stream count.
	var health struct {
		Status  string `json:"status"`
		Streams int    `json:"streams"`
	}
	c.mustDo("GET", "/healthz", nil, &health, http.StatusOK)
	if health.Status != "ok" || health.Streams != 2 {
		t.Fatalf("health %+v", health)
	}
}

// TestRegistrySharding checks stream placement and concurrent
// create/get/delete across shards.
func TestRegistrySharding(t *testing.T) {
	reg := NewRegistry(8)
	const streams = 200
	var wg sync.WaitGroup
	errs := make(chan error, streams)
	for i := 0; i < streams; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			id := fmt.Sprintf("stream-%03d", i)
			if _, err := reg.Create(CreateStreamRequest{ID: id, Dim: 2}); err != nil {
				errs <- err
				return
			}
			if _, err := reg.Get(id); err != nil {
				errs <- err
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if reg.Len() != streams {
		t.Fatalf("registry has %d streams, want %d", reg.Len(), streams)
	}
	list := reg.List()
	if len(list) != streams {
		t.Fatalf("list has %d entries, want %d", len(list), streams)
	}
	for i := 1; i < len(list); i++ {
		if list[i-1].ID >= list[i].ID {
			t.Fatalf("list unsorted at %d: %q ≥ %q", i, list[i-1].ID, list[i].ID)
		}
	}
	// FNV placement spreads the streams over every shard.
	for i := range reg.shards {
		if len(reg.shards[i].streams) == 0 {
			t.Fatalf("shard %d empty with %d streams", i, streams)
		}
	}
	for i := 0; i < streams; i++ {
		if err := reg.Delete(fmt.Sprintf("stream-%03d", i), false); err != nil {
			t.Fatal(err)
		}
	}
	if reg.Len() != 0 {
		t.Fatalf("registry not empty after deletes: %d", reg.Len())
	}
}
