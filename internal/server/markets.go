package server

// Hosted markets: the full market loop of the paper — owners with
// differential-privacy compensation contracts, reserve prices derived
// from those contracts, settlement, and a ledger — behind the same HTTP
// edge as the raw pricing streams. A hosted market wraps a
// market.Broker whose mechanism is a family-built pricing.SyncPoster,
// so trades are concurrency-safe and batch trades amortize the pricing
// lock exactly like the stream batch endpoints.

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"datamarket/internal/market"
	"datamarket/internal/pricing"
	"datamarket/internal/privacy"
)

// Market registry errors.
var (
	ErrMarketNotFound = errors.New("server: market not found")
	ErrMarketExists   = errors.New("server: market already exists")
)

// MaxOwners caps a hosted market's owner population. Each owner costs a
// few machine words of broker state plus one weight per trade request,
// and trade bodies carry one weight per owner, so 65536 owners keeps a
// full-population trade at ~1.5 MB of JSON — well inside maxBodyBytes.
const MaxOwners = 65536

// DefaultMarketFeatureDim is the aggregation dimension used when a
// create request leaves FeatureDim zero: min(owners, 10), the paper's
// experimental setting (§V-A aggregates MovieLens compensations into
// n = 10 features).
const DefaultMarketFeatureDim = 10

// HostedMarket is one live market: the broker plus the identity and
// mechanism handle the HTTP layer reports on.
type HostedMarket struct {
	id         string
	family     pricing.Family
	featureDim int
	owners     int
	broker     *market.Broker
	poster     *pricing.SyncPoster
}

// ID returns the market's identifier.
func (m *HostedMarket) ID() string { return m.id }

// Broker exposes the underlying market broker (for embedding brokerd in
// tests and larger binaries).
func (m *HostedMarket) Broker() *market.Broker { return m.broker }

// Info renders the market's wire description.
func (m *HostedMarket) Info() MarketInfo {
	return MarketInfo{
		ID: m.id, Family: string(m.family),
		Owners: m.owners, FeatureDim: m.featureDim,
	}
}

// Stats renders the market's wire stats: broker books plus mechanism
// counters.
func (m *HostedMarket) Stats() MarketStatsResponse {
	s := m.broker.Stats()
	counters, ok := m.poster.Counters()
	return MarketStatsResponse{
		ID: m.id, Family: string(m.family),
		Owners: m.owners, FeatureDim: m.featureDim,
		Rounds: s.Rounds, Sold: s.Sold,
		Revenue: s.Revenue, Compensation: s.Compensation, Profit: s.Profit,
		Regret: RegretStats{
			Rounds:            s.Rounds,
			CumulativeRegret:  s.CumulativeRegret,
			CumulativeValue:   s.CumulativeValue,
			CumulativeRevenue: s.CumulativeRevenue,
			RegretRatio:       s.RegretRatio,
		},
		Counters: counters, HasCounters: ok,
	}
}

// buildContract instantiates one owner's compensation contract.
func buildContract(spec ContractSpec) (privacy.Contract, error) {
	switch spec.Type {
	case "tanh":
		return privacy.NewTanhContract(spec.Rho, spec.Eta)
	case "linear":
		return privacy.NewLinearContract(spec.Rho)
	default:
		return nil, fmt.Errorf("unknown contract type %q (want tanh or linear)", spec.Type)
	}
}

// newHostedMarket validates a create request and stands up the market:
// contracts, family-built mechanism (always under the reserve price
// constraint), concurrency wrapper, broker.
func newHostedMarket(req CreateMarketRequest) (*HostedMarket, error) {
	if req.ID == "" {
		return nil, fmt.Errorf("server: market id required")
	}
	if len(req.Owners) == 0 {
		return nil, fmt.Errorf("server: market needs at least one owner")
	}
	if len(req.Owners) > MaxOwners {
		return nil, fmt.Errorf("server: %d owners exceed limit %d", len(req.Owners), MaxOwners)
	}
	featureDim := req.FeatureDim
	if featureDim == 0 {
		featureDim = min(len(req.Owners), DefaultMarketFeatureDim)
	}
	if featureDim < 1 || featureDim > len(req.Owners) {
		return nil, fmt.Errorf("server: feature dimension %d out of range [1, %d]",
			featureDim, len(req.Owners))
	}
	if featureDim > MaxDim {
		return nil, fmt.Errorf("server: feature dimension %d exceeds limit %d", featureDim, MaxDim)
	}
	owners := make([]market.Owner, len(req.Owners))
	for i, o := range req.Owners {
		if !isFinite(o.Value) || !isFinite(o.Range) {
			return nil, fmt.Errorf("server: owner %d: value and range must be finite", i)
		}
		if o.Range < 0 {
			return nil, fmt.Errorf("server: owner %d: negative range", i)
		}
		contract, err := buildContract(o.Contract)
		if err != nil {
			return nil, fmt.Errorf("server: owner %d: %w", i, err)
		}
		owners[i] = market.Owner{ID: i, Value: o.Value, Range: o.Range, Contract: contract}
	}
	spec := pricing.FamilySpec{
		Family:    pricing.Family(req.Family),
		Dim:       featureDim,
		Radius:    req.Radius,
		Reserve:   true, // the broker's non-negative-utility constraint
		Delta:     req.Delta,
		Threshold: req.Threshold,
		Horizon:   req.Horizon,
	}
	if req.Model != nil {
		spec.Model = *req.Model
		if n := len(spec.Model.Landmarks); n > MaxDim {
			return nil, fmt.Errorf("server: %d landmarks exceed limit %d", n, MaxDim)
		}
	}
	poster, err := pricing.NewFamilyPoster(spec)
	if err != nil {
		return nil, err
	}
	sync := pricing.NewSync(poster)
	broker, err := market.NewBroker(market.Config{
		Owners:     owners,
		Mechanism:  sync,
		FeatureDim: featureDim,
		Seed:       req.Seed,
	})
	if err != nil {
		return nil, err
	}
	return &HostedMarket{
		id:         req.ID,
		family:     poster.Family(),
		featureDim: featureDim,
		owners:     len(owners),
		broker:     broker,
		poster:     sync,
	}, nil
}

// MarketRegistry holds the live hosted markets. Markets are few and
// long-lived next to pricing streams (one per owner population, not one
// per consumer segment), so a single RWMutex map suffices where the
// stream registry shards.
type MarketRegistry struct {
	mu      sync.RWMutex
	markets map[string]*HostedMarket
}

// NewMarketRegistry builds an empty market registry.
func NewMarketRegistry() *MarketRegistry {
	return &MarketRegistry{markets: make(map[string]*HostedMarket)}
}

// Create validates and registers a new market. The duplicate-ID check
// runs twice: a cheap read-locked probe before building anything (a
// market build allocates per-owner state, potentially tens of
// thousands of contracts — wasted work on a doomed request), then the
// authoritative check under the write lock.
func (r *MarketRegistry) Create(req CreateMarketRequest) (*HostedMarket, error) {
	r.mu.RLock()
	_, dup := r.markets[req.ID]
	r.mu.RUnlock()
	if dup {
		return nil, fmt.Errorf("%w: %q", ErrMarketExists, req.ID)
	}
	m, err := newHostedMarket(req)
	if err != nil {
		return nil, err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.markets[req.ID]; ok {
		return nil, fmt.Errorf("%w: %q", ErrMarketExists, req.ID)
	}
	r.markets[req.ID] = m
	return m, nil
}

// Get returns the market with the given ID.
func (r *MarketRegistry) Get(id string) (*HostedMarket, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	m, ok := r.markets[id]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrMarketNotFound, id)
	}
	return m, nil
}

// Delete removes a market. In-flight trades on the removed broker
// complete normally; the market just stops being addressable.
func (r *MarketRegistry) Delete(id string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.markets[id]; !ok {
		return fmt.Errorf("%w: %q", ErrMarketNotFound, id)
	}
	delete(r.markets, id)
	return nil
}

// List returns market infos sorted by ID.
func (r *MarketRegistry) List() []MarketInfo {
	r.mu.RLock()
	out := make([]MarketInfo, 0, len(r.markets))
	for _, m := range r.markets {
		out = append(out, m.Info())
	}
	r.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Len counts the hosted markets.
func (r *MarketRegistry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.markets)
}
