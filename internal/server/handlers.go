package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"runtime"
	"runtime/debug"
	"sync/atomic"

	"datamarket/api"
	"datamarket/internal/linalg"
	"datamarket/internal/pricing"
	"datamarket/internal/store"
)

// maxBodyBytes bounds request bodies. Snapshots of high-dimensional
// streams dominate: at the MaxDim cap of 1024 a snapshot is ~21 MB of
// JSON, so every snapshot the server can emit is restorable within the
// limit. Oversized bodies get 413, not silent truncation.
const maxBodyBytes = 32 << 20

// Version is the brokerd release version reported by GET /v1/version.
const Version = "0.5.0"

// Server is the brokerd HTTP edge over a stream registry and a hosted
// market registry.
type Server struct {
	reg       *Registry
	markets   *MarketRegistry
	persister *Persister
	metrics   *requestMetrics
}

// NewServer wraps a registry (nil builds a fresh default registry) and
// an empty market registry.
func NewServer(reg *Registry) *Server {
	if reg == nil {
		reg = NewRegistry(0)
	}
	return &Server{reg: reg, markets: NewMarketRegistry(), metrics: newRequestMetrics()}
}

// Registry exposes the underlying registry (for embedding brokerd in
// tests and larger binaries).
func (s *Server) Registry() *Registry { return s.reg }

// Markets exposes the hosted market registry.
func (s *Server) Markets() *MarketRegistry { return s.markets }

// SetPersister attaches the persistence subsystem so the admin endpoints
// can drive it. Without one, POST /v1/admin/checkpoint answers 503 and
// GET /v1/admin/store reports configured: false.
func (s *Server) SetPersister(p *Persister) { s.persister = p }

// Handler builds the route table.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /v1/version", s.handleVersion)
	mux.HandleFunc("POST /v1/streams", s.handleCreate)
	mux.HandleFunc("GET /v1/streams", s.handleList)
	mux.HandleFunc("GET /v1/streams/{id}", s.handleInfo)
	mux.HandleFunc("DELETE /v1/streams/{id}", s.handleDelete)
	mux.HandleFunc("POST /v1/streams/{id}/price", s.handlePrice)
	mux.HandleFunc("POST /v1/streams/{id}/price/batch", s.handleBatchPrice)
	mux.HandleFunc("POST /v1/price/batch", s.handleMultiBatchPrice)
	mux.HandleFunc("POST /v1/streams/{id}/quote", s.handleQuote)
	mux.HandleFunc("POST /v1/streams/{id}/observe", s.handleObserve)
	mux.HandleFunc("GET /v1/streams/{id}/snapshot", s.handleSnapshot)
	mux.HandleFunc("POST /v1/streams/{id}/restore", s.handleRestore)
	mux.HandleFunc("GET /v1/streams/{id}/stats", s.handleStats)
	mux.HandleFunc("POST /v1/markets", s.handleCreateMarket)
	mux.HandleFunc("GET /v1/markets", s.handleListMarkets)
	mux.HandleFunc("GET /v1/markets/{id}", s.handleMarketInfo)
	mux.HandleFunc("DELETE /v1/markets/{id}", s.handleDeleteMarket)
	mux.HandleFunc("POST /v1/markets/{id}/trade", s.handleTrade)
	mux.HandleFunc("POST /v1/markets/{id}/trade/batch", s.handleTradeBatch)
	mux.HandleFunc("GET /v1/markets/{id}/ledger", s.handleLedger)
	mux.HandleFunc("GET /v1/markets/{id}/payouts", s.handlePayouts)
	mux.HandleFunc("GET /v1/markets/{id}/stats", s.handleMarketStats)
	mux.HandleFunc("POST /v1/admin/checkpoint", s.handleAdminCheckpoint)
	mux.HandleFunc("GET /v1/admin/store", s.handleAdminStore)
	mux.HandleFunc("GET /v1/admin/metrics", s.handleMetrics)
	return withAPIHeaders(withMetrics(s.metrics, mux))
}

// handleVersion reports the wire contract version and build info so
// clients can verify compatibility before relying on the API.
func (s *Server) handleVersion(w http.ResponseWriter, _ *http.Request) {
	resp := VersionResponse{
		API:       api.APIVersion,
		Server:    Version,
		GoVersion: runtime.Version(),
	}
	if info, ok := debug.ReadBuildInfo(); ok {
		for _, kv := range info.Settings {
			if kv.Key == "vcs.revision" {
				resp.Revision = kv.Value
			}
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleAdminCheckpoint runs a synchronous checkpoint pass; ?compact=true
// additionally folds the journal tail into a fresh checkpoint file.
func (s *Server) handleAdminCheckpoint(w http.ResponseWriter, r *http.Request) {
	if s.persister == nil {
		writeStatusError(w, http.StatusServiceUnavailable,
			"persistence not configured (start brokerd with -data-dir)")
		return
	}
	resp := CheckpointResponse{CheckpointStats: s.persister.Checkpoint()}
	if r.URL.Query().Get("compact") == "true" {
		if err := s.persister.Compact(); err != nil {
			writeStatusError(w, http.StatusInternalServerError, "compacting store: "+err.Error())
			return
		}
		resp.Compacted = true
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleAdminStore reports the persistence subsystem's observable state.
func (s *Server) handleAdminStore(w http.ResponseWriter, _ *http.Request) {
	if s.persister == nil {
		writeJSON(w, http.StatusOK, StoreStatusResponse{Configured: false})
		return
	}
	writeJSON(w, http.StatusOK, s.persister.Status())
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, HealthResponse{
		Status: "ok", Streams: s.reg.Len(), Markets: s.markets.Len(),
	})
}

func (s *Server) handleCreate(w http.ResponseWriter, r *http.Request) {
	var req CreateStreamRequest
	if !readJSON(w, r, &req) {
		return
	}
	st, err := s.reg.Create(req)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, streamInfo(st))
}

func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	streams := s.reg.List()
	if streams == nil {
		streams = []StreamInfo{}
	}
	writeJSON(w, http.StatusOK, ListStreamsResponse{Streams: streams})
}

func (s *Server) handleInfo(w http.ResponseWriter, r *http.Request) {
	st, ok := s.stream(w, r)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, streamInfo(st))
}

// streamInfo renders a stream's wire description.
func streamInfo(st *Stream) StreamInfo {
	return StreamInfo{ID: st.ID(), Family: string(st.Family()), Dim: st.Dim()}
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	// ?force=true discards a pending two-phase round along with the
	// stream; without it a pending stream answers 409.
	force := r.URL.Query().Get("force") == "true"
	if err := s.reg.Delete(r.PathValue("id"), force); err != nil {
		writeError(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handlePrice(w http.ResponseWriter, r *http.Request) {
	st, ok := s.stream(w, r)
	if !ok {
		return
	}
	ws := getWire()
	defer putWire(ws)
	var req PriceRequest
	if !s.readHot(ws, w, r, &req) {
		return
	}
	if req.Valuation == nil {
		writeStatusError(w, http.StatusBadRequest,
			"valuation required on /price; use /quote + /observe for two-phase rounds")
		return
	}
	features, ok2 := checkFeatures(w, st, req.Features, req.Reserve)
	if !ok2 {
		return
	}
	if !isFinite(*req.Valuation) {
		writeStatusError(w, http.StatusBadRequest, "valuation must be finite")
		return
	}
	q, accepted, err := st.Price(features, req.Reserve, *req.Valuation)
	if err != nil {
		writeError(w, err)
		return
	}
	resp := quoteResponse(q)
	if q.Decision != pricing.DecisionSkip {
		resp.Accepted = &accepted
	}
	ws.writeHot(w, r, http.StatusOK, &resp)
}

func (s *Server) handleQuote(w http.ResponseWriter, r *http.Request) {
	st, ok := s.stream(w, r)
	if !ok {
		return
	}
	var req QuoteRequest
	if !readJSON(w, r, &req) {
		return
	}
	features, ok2 := checkFeatures(w, st, req.Features, req.Reserve)
	if !ok2 {
		return
	}
	q, err := st.Quote(features, req.Reserve)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, quoteResponse(q))
}

func (s *Server) handleObserve(w http.ResponseWriter, r *http.Request) {
	st, ok := s.stream(w, r)
	if !ok {
		return
	}
	var req ObserveRequest
	if !readJSON(w, r, &req) {
		return
	}
	if err := st.Observe(req.Accepted); err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, ObserveResponse{Observed: true})
}

func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	st, ok := s.stream(w, r)
	if !ok {
		return
	}
	snap, err := st.Snapshot()
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, snap)
}

func (s *Server) handleRestore(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		status := http.StatusBadRequest
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			status = http.StatusRequestEntityTooLarge
		}
		writeStatusError(w, status, "reading body: "+err.Error())
		return
	}
	env, err := pricing.DecodeEnvelope(body)
	if err != nil {
		writeStatusError(w, http.StatusBadRequest, err.Error())
		return
	}
	st, created, err := s.reg.GetOrRestore(id, env)
	if err != nil {
		writeError(w, err)
		return
	}
	status := http.StatusOK
	if created {
		status = http.StatusCreated
	}
	writeJSON(w, status, streamInfo(st))
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	st, ok := s.stream(w, r)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, st.Stats())
}

// stream resolves the {id} path value, writing the error on failure.
func (s *Server) stream(w http.ResponseWriter, r *http.Request) (*Stream, bool) {
	st, err := s.reg.Get(r.PathValue("id"))
	if err != nil {
		writeError(w, err)
		return nil, false
	}
	return st, true
}

// validateFeatures checks dimension and finiteness of one round's
// inputs; it is the shared core of checkFeatures and the per-item batch
// validation, so batch items fail with the same messages as single
// rounds.
func validateFeatures(st *Stream, raw []float64, reserve float64) error {
	if len(raw) != st.Dim() {
		return fmt.Errorf("feature dimension %d, stream wants %d", len(raw), st.Dim())
	}
	for i, v := range raw {
		if !isFinite(v) {
			return fmt.Errorf("feature %d is %g, want finite", i, v)
		}
	}
	if !isFinite(reserve) {
		return fmt.Errorf("reserve must be finite")
	}
	return nil
}

// checkFeatures validates dimension and finiteness, returning the vector.
func checkFeatures(w http.ResponseWriter, st *Stream, raw []float64, reserve float64) (linalg.Vector, bool) {
	if err := validateFeatures(st, raw, reserve); err != nil {
		writeStatusError(w, http.StatusBadRequest, err.Error())
		return nil, false
	}
	return linalg.Vector(raw), true
}

func quoteResponse(q pricing.Quote) PriceResponse {
	return PriceResponse{
		Price:          q.Price,
		Decision:       q.Decision.String(),
		Lower:          q.Lower,
		Upper:          q.Upper,
		ReserveBinding: q.ReserveBinding,
	}
}

// readJSON decodes the request body, writing a 400 (or 413) on failure.
func readJSON(w http.ResponseWriter, r *http.Request, dst any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		status := http.StatusBadRequest
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			status = http.StatusRequestEntityTooLarge
		}
		writeStatusError(w, status, "decoding request: "+err.Error())
		return false
	}
	return true
}

// encodeLogf is where response-encode failures are reported. It defaults
// to log.Printf and is replaced by WithRequestLog so encode failures land
// in the same stream as the request log. Stored atomically because test
// servers install loggers while earlier handlers may still be in flight.
var encodeLogf atomic.Value

func init() { encodeLogf.Store(log.Printf) }

// logEncodeError reports a failed response encode — a truncated or
// unencodable response the client will see as a broken body — so the
// condition is observable instead of silent.
func logEncodeError(v any, err error) {
	encodeLogf.Load().(func(string, ...any))("encoding %T response: %v", v, err)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		logEncodeError(v, err)
	}
}

// errorStatus maps a domain error onto its HTTP status and stable wire
// code. Every sentinel the handlers can surface has an explicit row so
// the code a client branches on never depends on message text.
func errorStatus(err error) (int, api.ErrorCode) {
	switch {
	case errors.Is(err, ErrPersist):
		// The request was valid; the journal append failed. 5xx so
		// clients know to retry rather than treat it as malformed.
		return http.StatusInternalServerError, api.CodePersistence
	case errors.Is(err, ErrStreamNotFound):
		return http.StatusNotFound, api.CodeStreamNotFound
	case errors.Is(err, ErrMarketNotFound):
		return http.StatusNotFound, api.CodeMarketNotFound
	case errors.Is(err, ErrStreamExists):
		return http.StatusConflict, api.CodeStreamExists
	case errors.Is(err, ErrMarketExists):
		return http.StatusConflict, api.CodeMarketExists
	case errors.Is(err, ErrStreamPending):
		return http.StatusConflict, api.CodeStreamPending
	case errors.Is(err, store.ErrClosed):
		// The journal has been shut down (draining stop or a failed
		// recovery); the stream state is fine but writes can't be
		// made durable. 503 tells clients the condition is
		// retryable once the server is back.
		return http.StatusServiceUnavailable, api.CodeUnavailable
	case errors.Is(err, pricing.ErrFamilyMismatch):
		return http.StatusConflict, api.CodeFamilyMismatch
	case errors.Is(err, pricing.ErrPendingRound):
		return http.StatusConflict, api.CodeRoundPending
	case errors.Is(err, pricing.ErrNoPendingRound):
		return http.StatusConflict, api.CodeNoRoundPending
	default:
		return http.StatusBadRequest, api.CodeInvalidRequest
	}
}

// writeError maps domain errors onto HTTP statuses and wire codes.
func writeError(w http.ResponseWriter, err error) {
	status, code := errorStatus(err)
	writeAPIError(w, status, code, err.Error())
}

// writeStatusError writes a validation-style error at the given status
// with the status's default code; paths with a more specific domain
// error go through writeError instead.
func writeStatusError(w http.ResponseWriter, status int, msg string) {
	var code api.ErrorCode
	switch status {
	case http.StatusRequestEntityTooLarge:
		code = api.CodeBodyTooLarge
	case http.StatusServiceUnavailable:
		code = api.CodeUnavailable
	case http.StatusInternalServerError:
		code = api.CodeInternal
	default:
		code = api.CodeInvalidRequest
	}
	writeAPIError(w, status, code, msg)
}

// writeAPIError emits the machine-readable error envelope
// {"error":{"code","message"}} — the uniform body of every non-2xx
// response.
func writeAPIError(w http.ResponseWriter, status int, code api.ErrorCode, msg string) {
	writeJSON(w, status, api.ErrorResponse{Error: api.ErrorDetail{Code: code, Message: msg}})
}
