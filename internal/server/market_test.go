package server

import (
	"math"
	"net/http"
	"testing"

	"datamarket/api"
	"datamarket/internal/randx"
)

// marketFixture creates a market with n owners and returns a weights
// generator whose queries touch a random half of the population.
func marketFixture(t *testing.T, c *client, id string, n int) func(r *randx.RNG) []float64 {
	t.Helper()
	owners := make([]OwnerSpec, n)
	vals := randx.New(11).UniformVector(n, 1, 5)
	for i := range owners {
		owners[i] = OwnerSpec{
			Value: vals[i], Range: 4,
			Contract: ContractSpec{Type: "tanh", Rho: 1, Eta: 10},
		}
	}
	var info MarketInfo
	c.mustDo("POST", "/v1/markets", CreateMarketRequest{
		ID: id, Owners: owners, Seed: 3, Horizon: 1000,
	}, &info, http.StatusCreated)
	if info.Owners != n || info.Family != "linear" {
		t.Fatalf("market info = %+v", info)
	}
	return func(r *randx.RNG) []float64 {
		w := make([]float64, n)
		for i := range w {
			if r.Float64() < 0.5 {
				w[i] = r.Float64()
			}
		}
		w[0] = 0.5 // at least one non-zero weight
		return w
	}
}

// TestHostedMarketLoop drives the full market scenario over HTTP:
// create, single trades, a batch, then checks the ledger, payouts, and
// stats are mutually consistent with the paper's reserve-price
// accounting.
func TestHostedMarketLoop(t *testing.T) {
	_, c := newTestServer(t)
	r := randx.New(5)
	weightsFor := marketFixture(t, c, "m", 40)

	const singles = 20
	for i := 0; i < singles; i++ {
		var resp TradeResponse
		c.mustDo("POST", "/v1/markets/m/trade", TradeRequest{
			Weights: weightsFor(r), NoiseVariance: 2, Valuation: 4 + r.Float64(),
		}, &resp, http.StatusOK)
		if resp.Round != i+1 {
			t.Fatalf("round %d, want %d", resp.Round, i+1)
		}
		if resp.Sold {
			if resp.Profit < -1e-12 {
				t.Fatalf("sold at a loss: %+v", resp.TradeResult)
			}
			if math.Abs(resp.Compensation-resp.Reserve) > 1e-12 {
				t.Fatalf("compensation %g != reserve %g", resp.Compensation, resp.Reserve)
			}
		}
	}

	const batch = 64
	req := TradeBatchRequest{Trades: make([]TradeRequest, batch)}
	for i := range req.Trades {
		req.Trades[i] = TradeRequest{
			Weights: weightsFor(r), NoiseVariance: 2, Valuation: 4 + r.Float64(),
		}
	}
	// One invalid trade fails alone without disturbing its neighbors.
	req.Trades[10].Weights = []float64{1}
	var bresp TradeBatchResponse
	c.mustDo("POST", "/v1/markets/m/trade/batch", req, &bresp, http.StatusOK)
	if len(bresp.Results) != batch {
		t.Fatalf("%d results, want %d", len(bresp.Results), batch)
	}
	for i, res := range bresp.Results {
		if i == 10 {
			if res.Error == "" {
				t.Fatal("invalid trade did not fail")
			}
			continue
		}
		if res.Error != "" {
			t.Fatalf("trade %d: %s", i, res.Error)
		}
	}

	// Ledger: the invalid trade left no entry; paging composes back to
	// the full ledger.
	wantTotal := singles + batch - 1
	var ledger LedgerResponse
	c.mustDo("GET", "/v1/markets/m/ledger", nil, &ledger, http.StatusOK)
	if ledger.Total != wantTotal || len(ledger.Entries) != wantTotal {
		t.Fatalf("ledger total %d entries %d, want %d", ledger.Total, len(ledger.Entries), wantTotal)
	}
	var page LedgerResponse
	c.mustDo("GET", "/v1/markets/m/ledger?offset=5&limit=10", nil, &page, http.StatusOK)
	if len(page.Entries) != 10 || page.Entries[0] != ledger.Entries[5] {
		t.Fatalf("paged ledger mismatch: %+v", page.Entries[0])
	}

	// Stats and payouts agree with the ledger.
	var sold int
	var revenue, comp float64
	for _, tx := range ledger.Entries {
		if tx.Sold {
			sold++
			revenue += tx.Revenue
			comp += tx.Compensation
		}
	}
	if sold == 0 {
		t.Fatal("no trade settled; fixture valuations too low")
	}
	var stats MarketStatsResponse
	c.mustDo("GET", "/v1/markets/m/stats", nil, &stats, http.StatusOK)
	if stats.Rounds != wantTotal || stats.Sold != sold {
		t.Fatalf("stats rounds/sold %d/%d, want %d/%d", stats.Rounds, stats.Sold, wantTotal, sold)
	}
	if math.Abs(stats.Revenue-revenue) > 1e-9 || math.Abs(stats.Compensation-comp) > 1e-9 {
		t.Fatalf("stats totals %g/%g, ledger says %g/%g",
			stats.Revenue, stats.Compensation, revenue, comp)
	}
	if stats.Profit < -1e-9 {
		t.Fatalf("market ran at a loss: %g", stats.Profit)
	}
	if !stats.HasCounters || stats.Counters.Rounds != wantTotal {
		t.Fatalf("counters %+v (has=%v), want %d rounds", stats.Counters, stats.HasCounters, wantTotal)
	}

	var payouts PayoutsResponse
	c.mustDo("GET", "/v1/markets/m/payouts", nil, &payouts, http.StatusOK)
	if len(payouts.Payouts) != 40 {
		t.Fatalf("%d payout rows, want 40", len(payouts.Payouts))
	}
	// Owners are paid exactly the compensation the broker collected for.
	if math.Abs(payouts.Total-comp) > 1e-9 {
		t.Fatalf("payout total %g, compensation %g", payouts.Total, comp)
	}

	// Lifecycle: list, delete, gone.
	var list ListMarketsResponse
	c.mustDo("GET", "/v1/markets", nil, &list, http.StatusOK)
	if len(list.Markets) != 1 || list.Markets[0].ID != "m" {
		t.Fatalf("market list %+v", list)
	}
	c.mustDo("DELETE", "/v1/markets/m", nil, nil, http.StatusNoContent)
	c.mustDo("GET", "/v1/markets/m", nil, nil, http.StatusNotFound)
}

// TestHostedMarketFamilies stands one market up per pricing family over
// the same owner population — the serving surface is mechanism-agnostic.
func TestHostedMarketFamilies(t *testing.T) {
	_, c := newTestServer(t)
	r := randx.New(9)
	for _, tc := range []struct {
		id      string
		family  string
		horizon int // sgd takes no horizon
		model   *api.ModelConfig
	}{
		{id: "lin", family: "linear", horizon: 500},
		{id: "nl", family: "nonlinear", horizon: 500, model: &api.ModelConfig{Link: "exp"}},
		{id: "sgd", family: "sgd", model: &api.ModelConfig{Eta0: 0.5, Margin: 1}},
	} {
		owners := make([]OwnerSpec, 12)
		for i := range owners {
			owners[i] = OwnerSpec{
				Value: 1 + r.Float64(), Range: 2,
				Contract: ContractSpec{Type: "linear", Rho: 0.2},
			}
		}
		var info MarketInfo
		c.mustDo("POST", "/v1/markets", CreateMarketRequest{
			ID: tc.id, Owners: owners, Family: tc.family, FeatureDim: 4,
			Horizon: tc.horizon, Model: tc.model,
		}, &info, http.StatusCreated)
		if info.Family != tc.family || info.FeatureDim != 4 {
			t.Fatalf("%s: info %+v", tc.id, info)
		}
		for i := 0; i < 8; i++ {
			w := make([]float64, 12)
			for j := range w {
				w[j] = r.Float64()
			}
			var resp TradeResponse
			c.mustDo("POST", "/v1/markets/"+tc.id+"/trade", TradeRequest{
				Weights: w, NoiseVariance: 2, Valuation: 3,
			}, &resp, http.StatusOK)
		}
		var stats MarketStatsResponse
		c.mustDo("GET", "/v1/markets/"+tc.id+"/stats", nil, &stats, http.StatusOK)
		if stats.Rounds != 8 {
			t.Fatalf("%s: %d rounds, want 8", tc.id, stats.Rounds)
		}
	}
}

// TestMarketDefaultFeatureDim pins the paper's default aggregation
// dimension: min(owners, 10).
func TestMarketDefaultFeatureDim(t *testing.T) {
	_, c := newTestServer(t)
	for _, tc := range []struct {
		id     string
		owners int
		want   int
	}{
		{"small", 4, 4},
		{"large", 25, 10},
	} {
		owners := make([]OwnerSpec, tc.owners)
		for i := range owners {
			owners[i] = OwnerSpec{Value: 1, Range: 1, Contract: ContractSpec{Type: "tanh", Rho: 1, Eta: 1}}
		}
		var info MarketInfo
		c.mustDo("POST", "/v1/markets", CreateMarketRequest{ID: tc.id, Owners: owners},
			&info, http.StatusCreated)
		if info.FeatureDim != tc.want {
			t.Errorf("%s: feature dim %d, want %d", tc.id, info.FeatureDim, tc.want)
		}
	}
}
