package server

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"

	"datamarket/internal/linalg"
	"datamarket/internal/pricing"
	"datamarket/internal/store"
)

// persistFixture is one durable registry: journal store in dir, persister
// attached with no background loop (tests drive passes explicitly for
// determinism).
type persistFixture struct {
	reg *Registry
	st  *store.Journal
	p   *Persister
}

func openPersistent(t *testing.T, dir string, fsync store.FsyncPolicy) *persistFixture {
	t.Helper()
	st, err := store.OpenJournal(store.JournalConfig{Dir: dir, Fsync: fsync})
	if err != nil {
		t.Fatalf("OpenJournal: %v", err)
	}
	reg := NewRegistry(8)
	p, _, err := AttachPersistence(reg, st, PersistConfig{Interval: -1})
	if err != nil {
		t.Fatalf("AttachPersistence: %v", err)
	}
	return &persistFixture{reg: reg, st: st, p: p}
}

// multiFamilyCreates is one stream of every hosted family shape.
func multiFamilyCreates() []CreateStreamRequest {
	gamma := 0.8
	return []CreateStreamRequest{
		{ID: "lin", Family: "linear", Dim: 3, Reserve: true, Horizon: 5000},
		{ID: "hedonic", Family: "nonlinear", Dim: 2, Horizon: 5000,
			Model: &pricing.ModelConfig{Link: "exp"}},
		{ID: "kern", Family: "nonlinear", Dim: 2, Reserve: true,
			Model: &pricing.ModelConfig{Map: "landmark",
				Kernel:    &pricing.KernelConfig{Type: "rbf", Gamma: gamma},
				Landmarks: [][]float64{{0, 0}, {0.5, 0.5}, {1, 1}}}},
		{ID: "grad", Family: "sgd", Dim: 3, Reserve: true,
			Model: &pricing.ModelConfig{Eta0: 0.5, Margin: 1}},
	}
}

// priceRandomRounds drives n uniformly random full rounds across the
// given streams (deterministic for a fixed seed) and returns the quotes.
func priceRandomRounds(t *testing.T, reg *Registry, ids []string, n int, seed int64) []pricing.Quote {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	quotes := make([]pricing.Quote, 0, n)
	for i := 0; i < n; i++ {
		st, err := reg.Get(ids[rng.Intn(len(ids))])
		if err != nil {
			t.Fatalf("Get: %v", err)
		}
		x := make(linalg.Vector, st.Dim())
		for j := range x {
			x[j] = rng.Float64()
		}
		reserve := rng.Float64() * 0.5
		valuation := rng.Float64() * 2
		q, _, err := st.Price(x, reserve, valuation)
		if err != nil {
			t.Fatalf("Price %s: %v", st.ID(), err)
		}
		quotes = append(quotes, q)
	}
	return quotes
}

func registryStats(t *testing.T, reg *Registry) map[string]StatsResponse {
	t.Helper()
	out := make(map[string]StatsResponse)
	for _, st := range reg.Streams() {
		out[st.ID()] = st.Stats()
	}
	return out
}

// TestRecoveryEquivalence is the crash-recovery equivalence test of the
// durability subsystem: a random multi-family workload, a graceful kill,
// and a recovery that must serve every stream with identical counters,
// regret bookkeeping, family/model config — and identical quotes on the
// rounds that follow.
func TestRecoveryEquivalence(t *testing.T) {
	dir := t.TempDir()
	fx := openPersistent(t, dir, store.FsyncNever)
	var ids []string
	for _, req := range multiFamilyCreates() {
		if _, err := fx.reg.Create(req); err != nil {
			t.Fatalf("Create %s: %v", req.ID, err)
		}
		ids = append(ids, req.ID)
	}
	// Lifecycle churn: a stream that lives and dies must stay dead.
	if _, err := fx.reg.Create(CreateStreamRequest{ID: "doomed", Dim: 2, Horizon: 100}); err != nil {
		t.Fatalf("Create doomed: %v", err)
	}
	priceRandomRounds(t, fx.reg, append(ids, "doomed"), 400, 1)
	if err := fx.reg.Delete("doomed", false); err != nil {
		t.Fatalf("Delete doomed: %v", err)
	}
	wantStats := registryStats(t, fx.reg)
	wantInfos := fx.reg.List()

	// Kill: final checkpoint, compact, close. The in-memory registry
	// lives on as the reference for post-recovery quotes.
	if err := fx.p.Shutdown(); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}

	fx2 := openPersistent(t, dir, store.FsyncNever)
	defer fx2.p.Shutdown()
	if got := fx2.reg.Len(); got != len(ids) {
		t.Fatalf("recovered %d streams, want %d", got, len(ids))
	}
	if _, err := fx2.reg.Get("doomed"); !errors.Is(err, ErrStreamNotFound) {
		t.Fatalf("deleted stream came back from the dead: %v", err)
	}
	if gotInfos := fx2.reg.List(); !reflect.DeepEqual(gotInfos, wantInfos) {
		t.Fatalf("recovered infos = %+v, want %+v", gotInfos, wantInfos)
	}
	if gotStats := registryStats(t, fx2.reg); !reflect.DeepEqual(gotStats, wantStats) {
		t.Fatalf("recovered stats = %+v, want %+v", gotStats, wantStats)
	}

	// The real equivalence check: both registries, fed the same rounds,
	// must quote identically forever after (the mechanisms are
	// deterministic, so equal state ⇒ equal trajectories).
	wantQuotes := priceRandomRounds(t, fx.reg, ids, 200, 2)
	gotQuotes := priceRandomRounds(t, fx2.reg, ids, 200, 2)
	if !reflect.DeepEqual(gotQuotes, wantQuotes) {
		t.Fatal("recovered registry diverged from the original on identical post-recovery rounds")
	}
}

// TestRestartUnderLoad hammers a persistent registry with concurrent
// pricing clients while checkpoints run, then simulates a crash (no
// final checkpoint) and recovers. Run under -race in CI.
func TestRestartUnderLoad(t *testing.T) {
	dir := t.TempDir()
	fx := openPersistent(t, dir, store.FsyncNever)
	var ids []string
	for _, req := range multiFamilyCreates() {
		if _, err := fx.reg.Create(req); err != nil {
			t.Fatalf("Create %s: %v", req.ID, err)
		}
		ids = append(ids, req.ID)
	}

	const workers, rounds = 8, 200
	var wg sync.WaitGroup
	stop := make(chan struct{})
	ckptDone := make(chan struct{})
	go func() { // checkpointer runs throughout
		defer close(ckptDone)
		for {
			select {
			case <-stop:
				return
			default:
				fx.p.Checkpoint()
			}
		}
	}()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < rounds; i++ {
				st, err := fx.reg.Get(ids[rng.Intn(len(ids))])
				if err != nil {
					t.Error(err)
					return
				}
				x := make(linalg.Vector, st.Dim())
				for j := range x {
					x[j] = rng.Float64()
				}
				if _, _, err := st.Price(x, rng.Float64()*0.5, rng.Float64()*2); err != nil {
					t.Errorf("Price: %v", err)
					return
				}
			}
		}(int64(w) + 100)
	}
	wg.Wait()
	close(stop)
	<-ckptDone

	// Quiesced: one mid-operation checkpoint pins the state recovery
	// must reproduce; then crash without the shutdown checkpoint.
	fx.p.Checkpoint()
	want := registryStats(t, fx.reg)
	fx.p.Stop()
	if err := fx.st.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	fx2 := openPersistent(t, dir, store.FsyncNever)
	defer fx2.p.Shutdown()
	if st := fx2.st.Stats(); st.TornTailRepaired {
		t.Fatal("journal had torn entries after concurrent checkpointing")
	}
	got := registryStats(t, fx2.reg)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("recovered stats = %+v, want the last checkpointed state %+v", got, want)
	}
	for id, s := range got {
		if s.Counters.Accepts+s.Counters.Rejects+s.Counters.Skips != s.Counters.Rounds {
			t.Fatalf("stream %s recovered inconsistent counters: %+v", id, s.Counters)
		}
		if s.Regret.Rounds != s.Counters.Rounds {
			t.Fatalf("stream %s: regret tracker has %d rounds, counters %d — snapshot tore a round",
				id, s.Regret.Rounds, s.Counters.Rounds)
		}
	}
}

// TestKillDuringLoadFsyncAlways simulates kill -9 mid-load under the
// strictest durability setting: concurrent pricing clients and a
// checkpointer hammer a journal running -fsync always with aggressive
// segment rotation, while the data directory is copied file-by-file in
// segment order. The copy is what a crash leaves behind — retired
// segments are immutable, only the highest-numbered segment captured
// can be torn — and it must recover into a registry whose every stream
// passes the internal-consistency invariants.
func TestKillDuringLoadFsyncAlways(t *testing.T) {
	dir := t.TempDir()
	st, err := store.OpenJournal(store.JournalConfig{
		Dir: dir, Fsync: store.FsyncAlways,
		CommitWindow: 200 * time.Microsecond,
		// Rotate constantly so the snapshot spans many segments, and
		// never compact: a checkpoint rewrite racing the copy would not
		// be crash-consistent (a real kill -9 can't catch a rename
		// half-done; a file copy can).
		SegmentSize: 4 << 10,
		CompactAt:   -1,
	})
	if err != nil {
		t.Fatalf("OpenJournal: %v", err)
	}
	reg := NewRegistry(8)
	p, _, err := AttachPersistence(reg, st, PersistConfig{Interval: -1})
	if err != nil {
		t.Fatalf("AttachPersistence: %v", err)
	}
	var ids []string
	for _, req := range multiFamilyCreates() {
		if _, err := reg.Create(req); err != nil {
			t.Fatalf("Create %s: %v", req.ID, err)
		}
		ids = append(ids, req.ID)
	}

	const workers = 8
	var wg sync.WaitGroup
	stop := make(chan struct{})
	ckptDone := make(chan struct{})
	go func() { // checkpointer: the sustained journal-append load
		defer close(ckptDone)
		for {
			select {
			case <-stop:
				return
			default:
				p.Checkpoint()
			}
		}
	}()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				s, err := reg.Get(ids[rng.Intn(len(ids))])
				if err != nil {
					t.Error(err)
					return
				}
				x := make(linalg.Vector, s.Dim())
				for j := range x {
					x[j] = rng.Float64()
				}
				if _, _, err := s.Price(x, rng.Float64()*0.5, rng.Float64()*2); err != nil {
					t.Errorf("Price: %v", err)
					return
				}
			}
		}(int64(w) + 300)
	}

	// The kill: snapshot the data directory while appends are in
	// flight. ReadDir returns names sorted, which is also segment-index
	// order (zero-padded), so every segment copied before the last one
	// was already retired — immutable — when its bytes were read; only
	// the final, active segment can carry a torn tail in the copy.
	time.Sleep(20 * time.Millisecond)
	copyDir := t.TempDir()
	names, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("ReadDir: %v", err)
	}
	for _, de := range names {
		src, err := os.Open(filepath.Join(dir, de.Name()))
		if err != nil {
			t.Fatalf("Open %s: %v", de.Name(), err)
		}
		dst, err := os.Create(filepath.Join(copyDir, de.Name()))
		if err != nil {
			t.Fatalf("Create %s: %v", de.Name(), err)
		}
		if _, err := io.Copy(dst, src); err != nil {
			t.Fatalf("copying %s: %v", de.Name(), err)
		}
		src.Close()
		dst.Close()
	}

	close(stop)
	wg.Wait()
	<-ckptDone
	if err := p.Shutdown(); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}

	// Recover the snapshot. Whatever instant the copy caught, every
	// stream must come back whole: write-ahead creates mean all streams
	// exist, and snapshot atomicity means no recovered stream can have
	// half a round.
	fx := openPersistent(t, copyDir, store.FsyncNever)
	defer fx.p.Shutdown()
	if got := fx.reg.Len(); got != len(ids) {
		t.Fatalf("recovered %d streams, want %d", got, len(ids))
	}
	for id, s := range registryStats(t, fx.reg) {
		if s.Counters.Accepts+s.Counters.Rejects+s.Counters.Skips != s.Counters.Rounds {
			t.Fatalf("stream %s recovered inconsistent counters: %+v", id, s.Counters)
		}
		if s.Regret.Rounds != s.Counters.Rounds {
			t.Fatalf("stream %s: regret tracker has %d rounds, counters %d — recovery tore a round",
				id, s.Regret.Rounds, s.Counters.Rounds)
		}
	}
}

// TestCheckpointRevisionGating is the acceptance check that checkpoint
// passes are revision-gated: untouched streams are skipped, touched ones
// persisted, exactly.
func TestCheckpointRevisionGating(t *testing.T) {
	const n = 1000
	fx := openPersistent(t, t.TempDir(), store.FsyncNever)
	defer fx.p.Shutdown()
	for i := 0; i < n; i++ {
		if _, err := fx.reg.Create(CreateStreamRequest{ID: fmt.Sprintf("s%04d", i), Dim: 2, Horizon: 1000}); err != nil {
			t.Fatalf("Create: %v", err)
		}
	}
	// Creates persisted every stream already, so an immediate pass skips
	// all of them.
	if s := fx.p.Checkpoint(); s.SkippedClean != n || s.Persisted != 0 {
		t.Fatalf("idle pass = %+v, want all %d skipped clean", s, n)
	}
	// Touch 37 streams; exactly those re-persist.
	for i := 0; i < 37; i++ {
		st, _ := fx.reg.Get(fmt.Sprintf("s%04d", i*7))
		if _, _, err := st.Price(linalg.Vector{0.4, 0.6}, 0.1, 1.5); err != nil {
			t.Fatalf("Price: %v", err)
		}
	}
	if s := fx.p.Checkpoint(); s.Persisted != 37 || s.SkippedClean != n-37 {
		t.Fatalf("post-traffic pass = %+v, want exactly 37 persisted", s)
	}
	// A stream with a pending two-phase round is skipped and retried.
	st, _ := fx.reg.Get("s0001")
	if _, err := st.Quote(linalg.Vector{0.2, 0.2}, 0); err != nil {
		t.Fatalf("Quote: %v", err)
	}
	if s := fx.p.Checkpoint(); s.SkippedPending != 1 {
		t.Fatalf("pending pass = %+v, want 1 skipped pending", s)
	}
	if err := st.Observe(true); err != nil {
		t.Fatalf("Observe: %v", err)
	}
	if s := fx.p.Checkpoint(); s.Persisted != 1 {
		t.Fatalf("post-observe pass = %+v, want the pending stream persisted", s)
	}
}

// TestCheckpointDeleteRecreateRace: a checkpoint pass working from a
// stale *Stream pointer must not record the dead stream's revision
// against a recreated stream of the same ID — that would gate the new
// stream's checkpoints off forever.
func TestCheckpointDeleteRecreateRace(t *testing.T) {
	fx := openPersistent(t, t.TempDir(), store.FsyncNever)
	defer fx.p.Shutdown()
	req := CreateStreamRequest{ID: "s", Dim: 2, Horizon: 100}
	old, err := fx.reg.Create(req)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 7; i++ {
		if _, _, err := old.Price(linalg.Vector{0.4, 0.6}, 0.1, 1.5); err != nil {
			t.Fatal(err)
		}
	}
	// The pass captured `old`; delete and recreate land before it gets
	// to the stream.
	if err := fx.reg.Delete("s", false); err != nil {
		t.Fatal(err)
	}
	fresh, err := fx.reg.Create(req)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fx.p.checkpointStream(old); !errors.Is(err, errCheckpointClean) {
		t.Fatalf("checkpointStream(stale) = %v, want clean skip", err)
	}
	// The new stream's rounds must still persist once it reaches the
	// dead stream's old revision count.
	for i := 0; i < 10; i++ {
		if _, _, err := fresh.Price(linalg.Vector{0.4, 0.6}, 0.1, 1.5); err != nil {
			t.Fatal(err)
		}
	}
	if s := fx.p.Checkpoint(); s.Persisted != 1 {
		t.Fatalf("pass after recreate = %+v, want the fresh stream persisted", s)
	}
	entries, err := fx.st.Load()
	if err != nil || len(entries) != 1 {
		t.Fatalf("store entries = %v, %v", entries, err)
	}
	if got := entries[0].Env.Linear.Counters.Rounds; got != 10 {
		t.Fatalf("persisted stream has %d rounds, want the recreated stream's 10", got)
	}
}

// TestLifecycleObserverVeto: a failing store vetoes the lifecycle event —
// the in-memory commit must not happen.
func TestLifecycleObserverVeto(t *testing.T) {
	reg := NewRegistry(2)
	f := &failingStore{mem: store.NewMem()}
	p := NewPersister(reg, f, PersistConfig{Interval: -1})
	reg.SetObserver(p)

	f.fail = true
	if _, err := reg.Create(CreateStreamRequest{ID: "a", Dim: 2, Horizon: 100}); !errors.Is(err, ErrPersist) {
		t.Fatalf("Create = %v, want ErrPersist", err)
	}
	if _, err := reg.Get("a"); !errors.Is(err, ErrStreamNotFound) {
		t.Fatal("vetoed create left the stream registered")
	}

	// Over HTTP a persistence failure is a 5xx — the request was valid.
	srv := httptest.NewServer(NewServer(reg).Handler())
	defer srv.Close()
	c := &client{t: t, base: srv.URL, http: srv.Client()}
	c.mustDo("POST", "/v1/streams", CreateStreamRequest{ID: "a", Dim: 2, Horizon: 100}, nil,
		http.StatusInternalServerError)

	f.fail = false
	if _, err := reg.Create(CreateStreamRequest{ID: "a", Dim: 2, Horizon: 100}); err != nil {
		t.Fatalf("Create: %v", err)
	}
	f.fail = true
	if err := reg.Delete("a", false); err == nil {
		t.Fatal("Delete succeeded despite store failure")
	}
	if _, err := reg.Get("a"); err != nil {
		t.Fatal("vetoed delete removed the stream anyway")
	}
	f.fail = false
	if err := reg.Delete("a", false); err != nil {
		t.Fatalf("Delete: %v", err)
	}
}

// failingStore is a Store whose writes fail on demand.
type failingStore struct {
	mem  *store.Mem
	fail bool
}

func (f *failingStore) Put(e store.Entry) error {
	if f.fail {
		return errors.New("boom")
	}
	return f.mem.Put(e)
}

func (f *failingStore) PutAsync(e store.Entry) *store.Ticket { return f.mem.PutAsync(e) }

func (f *failingStore) Delete(id string) error {
	if f.fail {
		return errors.New("boom")
	}
	return f.mem.Delete(id)
}

func (f *failingStore) Load() ([]store.Entry, error) { return f.mem.Load() }
func (f *failingStore) Compact() error               { return nil }
func (f *failingStore) MaybeCompact() (bool, error)  { return false, nil }
func (f *failingStore) Stats() store.Stats           { return f.mem.Stats() }
func (f *failingStore) Close() error                 { return f.mem.Close() }

// newPersistentTestServer stands up the HTTP edge over a persistent
// registry.
func newPersistentTestServer(t *testing.T, dir string) (*persistFixture, *client) {
	t.Helper()
	fx := openPersistent(t, dir, store.FsyncNever)
	srv := NewServer(fx.reg)
	srv.SetPersister(fx.p)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return fx, &client{t: t, base: ts.URL, http: ts.Client()}
}

func TestAdminEndpoints(t *testing.T) {
	fx, c := newPersistentTestServer(t, t.TempDir())
	defer fx.p.Shutdown()
	c.mustDo("POST", "/v1/streams", CreateStreamRequest{ID: "a", Dim: 2, Horizon: 100}, nil, http.StatusCreated)

	var ck CheckpointResponse
	c.mustDo("POST", "/v1/admin/checkpoint?compact=true", nil, &ck, http.StatusOK)
	if ck.Streams != 1 || !ck.Compacted {
		t.Fatalf("checkpoint response = %+v", ck)
	}
	var status StoreStatusResponse
	c.mustDo("GET", "/v1/admin/store", nil, &status, http.StatusOK)
	if !status.Configured || status.Store == nil || status.Store.Backend != "journal" {
		t.Fatalf("store status = %+v", status)
	}
	if status.LastCheckpoint == nil || status.Store.Compactions != 1 {
		t.Fatalf("store status missed the admin checkpoint: %+v", status)
	}

	// Without persistence the endpoints degrade explicitly.
	_, bare := newTestServer(t)
	bare.mustDo("POST", "/v1/admin/checkpoint", nil, nil, http.StatusServiceUnavailable)
	var none StoreStatusResponse
	bare.mustDo("GET", "/v1/admin/store", nil, &none, http.StatusOK)
	if none.Configured {
		t.Fatalf("unconfigured status = %+v", none)
	}
}

// TestSnapshotCarriesRegret: the envelope carries the regret-tracker
// aggregates, and a restore resumes them (HTTP layer, fresh-ID path).
func TestSnapshotCarriesRegret(t *testing.T) {
	_, c := newTestServer(t)
	c.mustDo("POST", "/v1/streams", CreateStreamRequest{ID: "a", Dim: 2, Horizon: 100}, nil, http.StatusCreated)
	for i := 0; i < 5; i++ {
		c.price("a", []float64{0.3, 0.7}, 0.1, 1.2)
	}
	var before StatsResponse
	c.mustDo("GET", "/v1/streams/a/stats", nil, &before, http.StatusOK)
	if before.Regret.Rounds != 5 || !before.HasCounters {
		t.Fatalf("pre-snapshot stats = %+v", before)
	}

	var env pricing.Envelope
	c.mustDo("GET", "/v1/streams/a/snapshot", nil, &env, http.StatusOK)
	if env.Regret == nil {
		t.Fatal("snapshot envelope carries no regret state")
	}
	c.mustDo("POST", "/v1/streams/b/restore", env, nil, http.StatusCreated)
	var after StatsResponse
	c.mustDo("GET", "/v1/streams/b/stats", nil, &after, http.StatusOK)
	if after.Regret != before.Regret {
		t.Fatalf("restored regret = %+v, want %+v", after.Regret, before.Regret)
	}
}

// TestRestoreWithoutRegretResetsTracker pins the documented contract: an
// envelope without tracker state (legacy snapshots) restores with regret
// bookkeeping reset to zero, while the mechanism state survives.
func TestRestoreWithoutRegretResetsTracker(t *testing.T) {
	_, c := newTestServer(t)
	c.mustDo("POST", "/v1/streams", CreateStreamRequest{ID: "a", Dim: 2, Horizon: 100}, nil, http.StatusCreated)
	for i := 0; i < 5; i++ {
		c.price("a", []float64{0.3, 0.7}, 0.1, 1.2)
	}
	var env pricing.Envelope
	c.mustDo("GET", "/v1/streams/a/snapshot", nil, &env, http.StatusOK)
	env.Regret = nil // what a pre-durability envelope looks like

	c.mustDo("POST", "/v1/streams/legacy/restore", env, nil, http.StatusCreated)
	var got StatsResponse
	c.mustDo("GET", "/v1/streams/legacy/stats", nil, &got, http.StatusOK)
	if got.Regret != (RegretStats{}) {
		t.Fatalf("legacy restore regret = %+v, want zeroed tracker", got.Regret)
	}
	if got.Counters.Rounds != 5 {
		t.Fatalf("legacy restore lost mechanism counters: %+v", got.Counters)
	}
}

// counterlessPoster is a bare Poster: no counters, no envelope support.
type counterlessPoster struct{ inner pricing.Poster }

func (p *counterlessPoster) PostPrice(x linalg.Vector, reserve float64) (pricing.Quote, error) {
	return p.inner.PostPrice(x, reserve)
}
func (p *counterlessPoster) Observe(accepted bool) error { return p.inner.Observe(accepted) }

// TestStatsSurfacesMissingCounters: a poster without counters reports
// HasCounters false instead of indistinguishable zeros (previously the
// Counters status was silently swallowed).
func TestStatsSurfacesMissingCounters(t *testing.T) {
	mech, err := pricing.NewFamilyPoster(pricing.FamilySpec{Dim: 2, Horizon: 100})
	if err != nil {
		t.Fatal(err)
	}
	st := &Stream{
		id: "bare", family: pricing.FamilyLinear, dim: 2,
		poster:  pricing.NewSync(&counterlessPoster{inner: mech}),
		tracker: pricing.NewTracker(false),
	}
	if s := st.Stats(); s.HasCounters {
		t.Fatalf("counterless poster reported HasCounters: %+v", s)
	}
	reg := NewRegistry(0)
	full, err := reg.Create(CreateStreamRequest{ID: "full", Dim: 2, Horizon: 100})
	if err != nil {
		t.Fatal(err)
	}
	if s := full.Stats(); !s.HasCounters {
		t.Fatalf("family poster lost its counters: %+v", s)
	}
}
