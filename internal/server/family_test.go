package server

import (
	"math"
	"net/http"
	"testing"

	"datamarket/internal/linalg"
	"datamarket/internal/pricing"
	"datamarket/internal/randx"
)

// familyCreateRequests returns one create request per hosted family,
// sharing input dimension 2 so the same feature vectors drive all three.
func familyCreateRequests() map[pricing.Family]CreateStreamRequest {
	return map[pricing.Family]CreateStreamRequest{
		pricing.FamilyLinear: {Family: "linear", Dim: 2, Reserve: true, Threshold: 0.05},
		pricing.FamilyNonlinear: {Family: "nonlinear", Dim: 2, Reserve: true, Threshold: 0.05,
			Model: &pricing.ModelConfig{
				Link:      "exp",
				Map:       "landmark",
				Kernel:    &pricing.KernelConfig{Type: "rbf", Gamma: 0.5},
				Landmarks: [][]float64{{0, 0}, {1, 0}, {0, 1}},
			}},
		pricing.FamilySGD: {Family: "sgd", Dim: 2, Reserve: true,
			Model: &pricing.ModelConfig{Eta0: 0.5, Margin: 1.0}},
	}
}

// TestServerFamilyLifecycle is the acceptance test of the family refactor:
// brokerd creates, prices (single + batch), snapshots, and restores a
// stream of each family through the HTTP API, and family-tagged snapshots
// reject cross-family restores.
func TestServerFamilyLifecycle(t *testing.T) {
	_, c := newTestServer(t)
	snaps := make(map[pricing.Family]*pricing.Envelope)

	for fam, req := range familyCreateRequests() {
		id := string(fam)
		req.ID = id
		var info StreamInfo
		c.mustDo("POST", "/v1/streams", req, &info, http.StatusCreated)
		if info.Family != string(fam) || info.Dim != 2 {
			t.Fatalf("%s: create returned %+v", fam, info)
		}

		// Single-round pricing.
		q := c.price(id, []float64{0.5, 0.5}, 0.01, 0.8)
		if q.Decision == "skip" {
			t.Fatalf("%s: unexpected skip", fam)
		}

		// Batch pricing.
		rounds := make([]BatchPriceRound, 8)
		r := randx.New(11)
		for i := range rounds {
			x := r.OnSphere(2)
			for j := range x {
				x[j] = math.Abs(x[j]) + 0.1
			}
			v := 0.9
			rounds[i] = BatchPriceRound{Features: x, Reserve: 0.01, Valuation: &v}
		}
		var batch BatchPriceResponse
		c.mustDo("POST", "/v1/streams/"+id+"/price/batch",
			BatchPriceRequest{Rounds: rounds}, &batch, http.StatusOK)
		if len(batch.Results) != len(rounds) {
			t.Fatalf("%s: %d batch results", fam, len(batch.Results))
		}
		for i, res := range batch.Results {
			if res.Error != "" {
				t.Fatalf("%s: batch round %d: %s", fam, i, res.Error)
			}
		}

		// Stats report the family and the full round count.
		var stats StatsResponse
		c.mustDo("GET", "/v1/streams/"+id+"/stats", nil, &stats, http.StatusOK)
		if stats.Family != string(fam) {
			t.Fatalf("%s: stats family %q", fam, stats.Family)
		}
		if stats.Counters.Rounds != 1+len(rounds) {
			t.Fatalf("%s: %d rounds, want %d", fam, stats.Counters.Rounds, 1+len(rounds))
		}

		// Snapshot is family-tagged.
		var env pricing.Envelope
		c.mustDo("GET", "/v1/streams/"+id+"/snapshot", nil, &env, http.StatusOK)
		if env.Family != fam {
			t.Fatalf("%s: snapshot tagged %q", fam, env.Family)
		}
		snaps[fam] = &env

		// In-place restore rolls the stream back; restore into a fresh ID
		// recovers it, and the two agree exactly on the next round.
		c.price(id, []float64{0.4, 0.3}, 0.01, 0.8)
		c.mustDo("POST", "/v1/streams/"+id+"/restore", &env, nil, http.StatusOK)
		var recInfo StreamInfo
		c.mustDo("POST", "/v1/streams/"+id+"-recovered/restore", &env, &recInfo, http.StatusCreated)
		if recInfo.Family != string(fam) {
			t.Fatalf("%s: recovered stream family %q", fam, recInfo.Family)
		}
		qa := c.price(id, []float64{0.2, 0.7}, 0.01, 0.8)
		qb := c.price(id+"-recovered", []float64{0.2, 0.7}, 0.01, 0.8)
		if qa.Price != qb.Price || qa.Decision != qb.Decision ||
			qa.Lower != qb.Lower || qa.Upper != qb.Upper {
			t.Fatalf("%s: restored streams diverged: %+v vs %+v", fam, qa, qb)
		}
	}

	// Cross-family restores answer 409, in place and at fresh IDs the
	// family comes from the envelope (so no conflict there).
	c.mustDo("POST", "/v1/streams/linear/restore", snaps[pricing.FamilySGD], nil, http.StatusConflict)
	c.mustDo("POST", "/v1/streams/sgd/restore", snaps[pricing.FamilyNonlinear], nil, http.StatusConflict)
	c.mustDo("POST", "/v1/streams/nonlinear/restore", snaps[pricing.FamilyLinear], nil, http.StatusConflict)

	var list ListStreamsResponse
	c.mustDo("GET", "/v1/streams", nil, &list, http.StatusOK)
	if len(list.Streams) != 6 {
		t.Fatalf("listed %d streams, want 6", len(list.Streams))
	}
	for _, info := range list.Streams {
		if info.Family == "" {
			t.Fatalf("listed stream %q has no family", info.ID)
		}
	}
}

// TestServerFamilyDeletePendingConflict is the HTTP half of the
// pending-shadow regression: before SGDPoster and NonlinearMechanism had
// Pending methods, DELETE of a mid-round non-ellipsoid stream succeeded
// and silently discarded the buyer's in-flight decision.
func TestServerFamilyDeletePendingConflict(t *testing.T) {
	_, c := newTestServer(t)
	for fam, req := range familyCreateRequests() {
		id := string(fam)
		req.ID = id
		c.mustDo("POST", "/v1/streams", req, nil, http.StatusCreated)
		var q PriceResponse
		c.mustDo("POST", "/v1/streams/"+id+"/quote",
			QuoteRequest{Features: []float64{0.5, 0.5}, Reserve: 0.01}, &q, http.StatusOK)
		if q.Decision == "skip" {
			t.Fatalf("%s: unexpected skip", fam)
		}
		// Mid-round: delete conflicts, snapshot and restore are refused.
		c.mustDo("DELETE", "/v1/streams/"+id, nil, nil, http.StatusConflict)
		c.mustDo("GET", "/v1/streams/"+id+"/snapshot", nil, nil, http.StatusConflict)
		c.mustDo("POST", "/v1/streams/"+id+"/observe", ObserveRequest{Accepted: true}, nil, http.StatusOK)
		// Round closed: delete (forced path not needed) succeeds.
		c.mustDo("DELETE", "/v1/streams/"+id, nil, nil, http.StatusNoContent)
	}
}

// TestServerFamilyHTTPEquivalence drives identical round sequences through
// the HTTP batch endpoint and directly through the library factory, and
// requires bit-identical quotes, counters, and snapshot round-trips. Run
// under -race in CI.
func TestServerFamilyHTTPEquivalence(t *testing.T) {
	specs := map[pricing.Family]pricing.FamilySpec{
		pricing.FamilyNonlinear: {Family: pricing.FamilyNonlinear, Dim: 2, Reserve: true, Threshold: 0.05,
			Model: pricing.ModelConfig{
				Link:      "exp",
				Map:       "landmark",
				Kernel:    &pricing.KernelConfig{Type: "rbf", Gamma: 0.5},
				Landmarks: [][]float64{{0, 0}, {1, 0}, {0, 1}},
			}},
		pricing.FamilySGD: {Family: pricing.FamilySGD, Dim: 2, Reserve: true,
			Model: pricing.ModelConfig{Eta0: 0.5, Margin: 1.0}},
	}
	_, c := newTestServer(t)
	for fam, spec := range specs {
		id := "eq-" + string(fam)
		model := spec.Model
		c.mustDo("POST", "/v1/streams", CreateStreamRequest{
			ID: id, Family: string(spec.Family), Dim: spec.Dim, Reserve: spec.Reserve,
			Threshold: spec.Threshold, Model: &model,
		}, nil, http.StatusCreated)

		lib, err := pricing.NewFamilyPoster(spec)
		if err != nil {
			t.Fatalf("%s: %v", fam, err)
		}
		sync := pricing.NewSync(lib)

		// One batch of deterministic rounds through both paths.
		const rounds = 64
		r := randx.New(23)
		httpRounds := make([]BatchPriceRound, rounds)
		libRounds := make([]pricing.BatchRound, rounds)
		vals := make([]float64, rounds)
		for i := 0; i < rounds; i++ {
			x := r.OnSphere(2)
			for j := range x {
				x[j] = math.Abs(x[j]) + 0.1
			}
			vals[i] = 0.5 + 0.5*math.Abs(x[0])
			httpRounds[i] = BatchPriceRound{Features: x, Reserve: 0.01, Valuation: &vals[i]}
			libRounds[i] = pricing.BatchRound{X: linalg.Vector(x), Reserve: 0.01}
		}
		var resp BatchPriceResponse
		c.mustDo("POST", "/v1/streams/"+id+"/price/batch",
			BatchPriceRequest{Rounds: httpRounds}, &resp, http.StatusOK)
		libOut := sync.PriceBatch(libRounds, func(i int, q pricing.Quote) bool {
			return pricing.Sold(q.Price, vals[i])
		})
		for i := 0; i < rounds; i++ {
			hr, lr := resp.Results[i], libOut[i]
			if hr.Error != "" || lr.Err != nil {
				t.Fatalf("%s round %d: errors %q / %v", fam, i, hr.Error, lr.Err)
			}
			if hr.Price != lr.Quote.Price || hr.Lower != lr.Quote.Lower || hr.Upper != lr.Quote.Upper ||
				hr.Decision != lr.Quote.Decision.String() {
				t.Fatalf("%s round %d: HTTP %+v vs library %+v", fam, i, hr.PriceResponse, lr.Quote)
			}
			if hr.Accepted == nil || *hr.Accepted != lr.Accepted {
				t.Fatalf("%s round %d: accepted %v vs %v", fam, i, hr.Accepted, lr.Accepted)
			}
		}

		// Counters agree.
		var stats StatsResponse
		c.mustDo("GET", "/v1/streams/"+id+"/stats", nil, &stats, http.StatusOK)
		libCounters, ok := sync.Counters()
		if !ok || stats.Counters != libCounters {
			t.Fatalf("%s: counters HTTP %+v vs library %+v", fam, stats.Counters, libCounters)
		}

		// The HTTP snapshot restores into a library poster that agrees
		// with the library poster on the next round.
		var env pricing.Envelope
		c.mustDo("GET", "/v1/streams/"+id+"/snapshot", nil, &env, http.StatusOK)
		restored, err := pricing.RestoreEnvelope(&env)
		if err != nil {
			t.Fatalf("%s: restoring HTTP snapshot: %v", fam, err)
		}
		x := linalg.VectorOf(0.3, 0.6)
		qa, err := restored.PostPrice(x, 0.01)
		if err != nil {
			t.Fatal(err)
		}
		qb, _, err := sync.PriceRound(x, 0.01, func(q pricing.Quote) bool { return false })
		if err != nil {
			t.Fatal(err)
		}
		if qa != qb {
			t.Fatalf("%s: snapshot round trip diverged: %+v vs %+v", fam, qa, qb)
		}
	}
}

// TestRestoreEnforcesLandmarkCap: both restore paths (fresh ID and
// in-place) must reject envelopes whose mapped dimension exceeds MaxDim,
// exactly like create does — otherwise a restore could install an
// arbitrarily large score-space ellipsoid.
func TestRestoreEnforcesLandmarkCap(t *testing.T) {
	oversized := &pricing.Envelope{
		Version: pricing.EnvelopeVersion,
		Family:  pricing.FamilyNonlinear,
		Nonlinear: &pricing.NonlinearSnapshot{
			Dim: 1,
			Model: pricing.ModelConfig{
				Map:       "landmark",
				Kernel:    &pricing.KernelConfig{Type: "rbf", Gamma: 1},
				Landmarks: make([][]float64, MaxDim+1),
			},
		},
	}
	for i := range oversized.Nonlinear.Model.Landmarks {
		oversized.Nonlinear.Model.Landmarks[i] = []float64{0}
	}
	if _, err := restoredStream("fresh", oversized); err == nil {
		t.Fatal("fresh-ID restore accepted oversized landmark set")
	}
	reg := NewRegistry(0)
	st, err := reg.Create(CreateStreamRequest{ID: "nl", Family: "nonlinear", Dim: 1, Threshold: 0.05,
		Model: &pricing.ModelConfig{Map: "landmark",
			Kernel: &pricing.KernelConfig{Type: "rbf", Gamma: 1}, Landmarks: [][]float64{{0}}}})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Restore(oversized); err == nil {
		t.Fatal("in-place restore accepted oversized landmark set")
	}
}
