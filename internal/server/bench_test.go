package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"

	"datamarket/api/binary"
	"datamarket/internal/pricing"
	"datamarket/internal/randx"
)

// benchRegistry builds a registry pre-populated with M streams.
func benchRegistry(b *testing.B, streams, dim int) (*Registry, []string) {
	b.Helper()
	reg := NewRegistry(0)
	ids := make([]string, streams)
	for i := range ids {
		ids[i] = fmt.Sprintf("bench-%04d", i)
		if _, err := reg.Create(CreateStreamRequest{ID: ids[i], Dim: dim, Threshold: 0.05}); err != nil {
			b.Fatal(err)
		}
	}
	return reg, ids
}

// BenchmarkRegistryPriceRound is the serving-throughput baseline without
// HTTP overhead: N goroutines (GOMAXPROCS × b.SetParallelism) drive full
// price rounds across M streams through the sharded registry.
func BenchmarkRegistryPriceRound(b *testing.B) {
	const dim = 5
	for _, streams := range []int{1, 8, 64} {
		b.Run(fmt.Sprintf("streams=%d", streams), func(b *testing.B) {
			reg, ids := benchRegistry(b, streams, dim)
			theta := randx.New(1).OnSphere(dim)
			var worker atomic.Uint64
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				w := worker.Add(1)
				r := randx.NewStream(2, w)
				i := int(w)
				for pb.Next() {
					i++
					st, err := reg.Get(ids[i%len(ids)])
					if err != nil {
						b.Error(err)
						return
					}
					x := r.OnSphere(dim)
					if _, _, err := st.Price(x, -1e9, x.Dot(theta)); err != nil {
						b.Error(err)
						return
					}
				}
			})
		})
	}
}

// BenchmarkServerHTTPPrice measures the same workload through the full
// HTTP/JSON edge, the number future PRs should move.
func BenchmarkServerHTTPPrice(b *testing.B) {
	const dim = 5
	for _, streams := range []int{1, 16} {
		b.Run(fmt.Sprintf("streams=%d", streams), func(b *testing.B) {
			reg, ids := benchRegistry(b, streams, dim)
			ts := httptest.NewServer(NewServer(reg).Handler())
			defer ts.Close()
			theta := randx.New(1).OnSphere(dim)
			var worker atomic.Uint64
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				w := worker.Add(1)
				r := randx.NewStream(2, w)
				i := int(w)
				for pb.Next() {
					i++
					x := r.OnSphere(dim)
					v := x.Dot(theta)
					body, _ := json.Marshal(PriceRequest{Features: x, Reserve: -1e9, Valuation: &v})
					resp, err := http.Post(
						ts.URL+"/v1/streams/"+ids[i%len(ids)]+"/price",
						"application/json", bytes.NewReader(body))
					if err != nil {
						b.Error(err)
						return
					}
					if resp.StatusCode != http.StatusOK {
						b.Errorf("status %d", resp.StatusCode)
						resp.Body.Close()
						return
					}
					var pr PriceResponse
					json.NewDecoder(resp.Body).Decode(&pr)
					resp.Body.Close()
				}
			})
			b.StopTimer()
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "rounds/s")
		})
	}
}

// BenchmarkServerHTTPPriceBatch measures the batched HTTP path: one
// request prices `batch` full rounds on one stream. ns/op is per BATCH;
// compare the rounds/s metric against BenchmarkServerHTTPPrice (one
// round per op) for the per-round speedup.
func BenchmarkServerHTTPPriceBatch(b *testing.B) {
	const dim = 5
	for _, batch := range []int{16, 64, 256} {
		b.Run(fmt.Sprintf("batch=%d", batch), func(b *testing.B) {
			reg, ids := benchRegistry(b, 16, dim)
			ts := httptest.NewServer(NewServer(reg).Handler())
			defer ts.Close()
			theta := randx.New(1).OnSphere(dim)
			var worker atomic.Uint64
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				w := worker.Add(1)
				r := randx.NewStream(2, w)
				i := int(w)
				rounds := make([]BatchPriceRound, batch)
				vals := make([]float64, batch)
				for pb.Next() {
					i++
					for k := range rounds {
						x := r.OnSphere(dim)
						vals[k] = x.Dot(theta)
						rounds[k] = BatchPriceRound{Features: x, Reserve: -1e9, Valuation: &vals[k]}
					}
					body, _ := json.Marshal(BatchPriceRequest{Rounds: rounds})
					resp, err := http.Post(
						ts.URL+"/v1/streams/"+ids[i%len(ids)]+"/price/batch",
						"application/json", bytes.NewReader(body))
					if err != nil {
						b.Error(err)
						return
					}
					if resp.StatusCode != http.StatusOK {
						b.Errorf("status %d", resp.StatusCode)
						resp.Body.Close()
						return
					}
					var pr BatchPriceResponse
					json.NewDecoder(resp.Body).Decode(&pr)
					resp.Body.Close()
					if len(pr.Results) != batch {
						b.Errorf("got %d results, want %d", len(pr.Results), batch)
						return
					}
				}
			})
			b.StopTimer()
			b.ReportMetric(float64(b.N)*float64(batch)/b.Elapsed().Seconds(), "rounds/s")
		})
	}
}

// benchBinaryPost sends one pre-encoded binary frame and decodes the
// binary response into dst, reusing the caller's scratch buffer and
// Decoder. Returns the (possibly grown) scratch and whether the exchange
// succeeded; failures are reported via b.Error (Fatal is off-limits in
// RunParallel workers).
func benchBinaryPost(b *testing.B, client *http.Client, url string, frame, scratch []byte, dec *binary.Decoder, dst any) ([]byte, bool) {
	b.Helper()
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(frame))
	if err != nil {
		b.Error(err)
		return scratch, false
	}
	req.Header.Set("Content-Type", binary.ContentType)
	req.Header.Set("Accept", binary.ContentType)
	resp, err := client.Do(req)
	if err != nil {
		b.Error(err)
		return scratch, false
	}
	defer resp.Body.Close()
	scratch = scratch[:0]
	for {
		if len(scratch) == cap(scratch) {
			scratch = append(scratch, 0)[:len(scratch)]
		}
		n, err := resp.Body.Read(scratch[len(scratch):cap(scratch)])
		scratch = scratch[:len(scratch)+n]
		if err == io.EOF {
			break
		}
		if err != nil {
			b.Error(err)
			return scratch, false
		}
	}
	if resp.StatusCode != http.StatusOK {
		b.Errorf("status %d: %s", resp.StatusCode, scratch)
		return scratch, false
	}
	if err := dec.DecodeInto(scratch, dst); err != nil {
		b.Error(err)
		return scratch, false
	}
	return scratch, true
}

// BenchmarkServerHTTPPriceBinary is BenchmarkServerHTTPPrice over the
// binary codec: same workload, same rounds/s metric, so the two compare
// directly.
func BenchmarkServerHTTPPriceBinary(b *testing.B) {
	const dim = 5
	for _, streams := range []int{1, 16} {
		b.Run(fmt.Sprintf("streams=%d", streams), func(b *testing.B) {
			reg, ids := benchRegistry(b, streams, dim)
			ts := httptest.NewServer(NewServer(reg).Handler())
			defer ts.Close()
			theta := randx.New(1).OnSphere(dim)
			var worker atomic.Uint64
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				w := worker.Add(1)
				r := randx.NewStream(2, w)
				i := int(w)
				var (
					frame, scratch []byte
					dec            binary.Decoder
					pr             PriceResponse
				)
				for pb.Next() {
					i++
					x := r.OnSphere(dim)
					v := x.Dot(theta)
					var err error
					frame, err = binary.Append(frame[:0], &PriceRequest{Features: x, Reserve: -1e9, Valuation: &v})
					if err != nil {
						b.Error(err)
						return
					}
					var ok bool
					scratch, ok = benchBinaryPost(b, http.DefaultClient,
						ts.URL+"/v1/streams/"+ids[i%len(ids)]+"/price", frame, scratch, &dec, &pr)
					if !ok {
						return
					}
				}
			})
			b.StopTimer()
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "rounds/s")
		})
	}
}

// BenchmarkServerHTTPPriceBatchBinary is BenchmarkServerHTTPPriceBatch
// over the binary codec — the headline serving path. ns/op is per BATCH;
// rounds/s is the comparable metric.
func BenchmarkServerHTTPPriceBatchBinary(b *testing.B) {
	const dim = 5
	for _, batch := range []int{16, 64, 256} {
		b.Run(fmt.Sprintf("batch=%d", batch), func(b *testing.B) {
			reg, ids := benchRegistry(b, 16, dim)
			ts := httptest.NewServer(NewServer(reg).Handler())
			defer ts.Close()
			theta := randx.New(1).OnSphere(dim)
			var worker atomic.Uint64
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				w := worker.Add(1)
				r := randx.NewStream(2, w)
				i := int(w)
				rounds := make([]BatchPriceRound, batch)
				vals := make([]float64, batch)
				var (
					frame, scratch []byte
					dec            binary.Decoder
					pr             BatchPriceResponse
				)
				for pb.Next() {
					i++
					for k := range rounds {
						x := r.OnSphere(dim)
						vals[k] = x.Dot(theta)
						rounds[k] = BatchPriceRound{Features: x, Reserve: -1e9, Valuation: &vals[k]}
					}
					var err error
					frame, err = binary.Append(frame[:0], &BatchPriceRequest{Rounds: rounds})
					if err != nil {
						b.Error(err)
						return
					}
					var ok bool
					scratch, ok = benchBinaryPost(b, http.DefaultClient,
						ts.URL+"/v1/streams/"+ids[i%len(ids)]+"/price/batch", frame, scratch, &dec, &pr)
					if !ok {
						return
					}
					if len(pr.Results) != batch {
						b.Errorf("got %d results, want %d", len(pr.Results), batch)
						return
					}
				}
			})
			b.StopTimer()
			b.ReportMetric(float64(b.N)*float64(batch)/b.Elapsed().Seconds(), "rounds/s")
		})
	}
}

// benchFamilyStream registers the requested stream in a fresh registry
// and returns it.
func benchFamilyStream(b *testing.B, req CreateStreamRequest) *Stream {
	b.Helper()
	reg := NewRegistry(0)
	st, err := reg.Create(req)
	if err != nil {
		b.Fatal(err)
	}
	return st
}

// benchServeFamily measures registry-level serving throughput (full price
// rounds through Stream.Price) for one family's stream.
func benchServeFamily(b *testing.B, req CreateStreamRequest) {
	st := benchFamilyStream(b, req)
	r := randx.New(3)
	x := r.OnSphere(req.Dim)
	for i := range x {
		if x[i] < 0 {
			x[i] = -x[i]
		}
		x[i] += 0.1
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := st.Price(x, 0.01, 0.9); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkServeNonlinear serves a kernelized (landmark RBF, exp link)
// stream — the heaviest hosted family: every round pays the kernel
// evaluations on top of the score-space ellipsoid work.
func BenchmarkServeNonlinear(b *testing.B) {
	benchServeFamily(b, CreateStreamRequest{
		ID: "nl", Family: "nonlinear", Dim: 5, Reserve: true, Threshold: 0.05,
		Model: &pricing.ModelConfig{
			Link:   "exp",
			Map:    "landmark",
			Kernel: &pricing.KernelConfig{Type: "rbf", Gamma: 0.5},
			Landmarks: [][]float64{
				{0.1, 0.2, 0.3, 0.2, 0.2}, {0.5, 0.1, 0.1, 0.2, 0.1},
				{0.2, 0.4, 0.1, 0.1, 0.2}, {0.3, 0.3, 0.2, 0.1, 0.1},
			},
		},
	})
}

// BenchmarkServeSGD serves the gradient-descent comparator — the lightest
// family: one dot product and one AddScaled per round.
func BenchmarkServeSGD(b *testing.B) {
	benchServeFamily(b, CreateStreamRequest{
		ID: "sgd", Family: "sgd", Dim: 5, Reserve: true,
		Model: &pricing.ModelConfig{Eta0: 0.5, Margin: 1.0},
	})
}
