package server

// This file implements the batch pricing endpoints. Per-request JSON
// and dispatch overhead dominate the per-round HTTP path (tens of µs
// per round served vs sub-µs at the registry — see the benchmarks in
// bench_test.go for current numbers); these handlers amortize that
// across k rounds — one decode, one stream-lock acquisition per
// stream, one encode.

import (
	"fmt"
	"net/http"
	"runtime"
	"sync"

	"datamarket/api"
	"datamarket/internal/linalg"
	"datamarket/internal/pricing"
)

// MaxBatchRounds caps the rounds in one batch request, bounding how
// long one request can hold a stream's lock (a few milliseconds of
// pricing at typical dimensions). Very wide rounds hit the
// maxBodyBytes 413 before this 400. The value is part of the wire
// contract and lives in the api package.
const MaxBatchRounds = api.MaxBatchRounds

// checkBatchSize enforces the 400-level batch limits.
func checkBatchSize(w http.ResponseWriter, n int) bool {
	if n == 0 {
		writeStatusError(w, http.StatusBadRequest, "batch needs at least one round")
		return false
	}
	if n > MaxBatchRounds {
		writeStatusError(w, http.StatusBadRequest,
			fmt.Sprintf("batch has %d rounds, limit %d", n, MaxBatchRounds))
		return false
	}
	return true
}

// validateBatchRound runs the single-round validation plus the
// batch-only requirement that the valuation callback is present.
func validateBatchRound(st *Stream, features []float64, reserve float64, valuation *float64) error {
	if err := validateFeatures(st, features, reserve); err != nil {
		return err
	}
	if valuation == nil {
		return fmt.Errorf("valuation required on batch rounds; use /quote + /observe for two-phase rounds")
	}
	if !isFinite(*valuation) {
		return fmt.Errorf("valuation must be finite")
	}
	return nil
}

// batchResult converts one pricing outcome into its wire form.
func batchResult(o pricing.BatchOutcome) BatchRoundResult {
	if o.Err != nil {
		return BatchRoundResult{Error: o.Err.Error()}
	}
	res := BatchRoundResult{PriceResponse: quoteResponse(o.Quote)}
	if o.Quote.Decision != pricing.DecisionSkip {
		acc := o.Accepted
		res.Accepted = &acc
	}
	return res
}

// priceRounds validates and prices a group of rounds on one stream,
// writing each round's result at its caller-assigned slot in results
// (slots[k] is the result index of batch[k]). Invalid rounds fail
// individually; the valid ones still price, in order, under one
// stream-lock acquisition.
func priceRounds(st *Stream, batch []BatchPriceRound, slots []int, results []BatchRoundResult) {
	idx := make([]int, 0, len(batch))
	rounds := make([]pricing.BatchRound, 0, len(batch))
	vals := make([]float64, 0, len(batch))
	for k, rd := range batch {
		if err := validateBatchRound(st, rd.Features, rd.Reserve, rd.Valuation); err != nil {
			results[slots[k]] = BatchRoundResult{Error: err.Error()}
			continue
		}
		idx = append(idx, slots[k])
		rounds = append(rounds, pricing.BatchRound{X: linalg.Vector(rd.Features), Reserve: rd.Reserve})
		vals = append(vals, *rd.Valuation)
	}
	if len(rounds) == 0 {
		return
	}
	for k, o := range st.PriceBatch(rounds, vals) {
		results[idx[k]] = batchResult(o)
	}
}

// handleBatchPrice prices k rounds on one stream: one JSON decode, one
// lock acquisition, one response (POST /v1/streams/{id}/price/batch).
func (s *Server) handleBatchPrice(w http.ResponseWriter, r *http.Request) {
	st, ok := s.stream(w, r)
	if !ok {
		return
	}
	ws := getWire()
	defer putWire(ws)
	var req BatchPriceRequest
	if !s.readHot(ws, w, r, &req) {
		return
	}
	if !checkBatchSize(w, len(req.Rounds)) {
		return
	}
	results := make([]BatchRoundResult, len(req.Rounds))
	slots := make([]int, len(req.Rounds))
	for i := range slots {
		slots[i] = i
	}
	priceRounds(st, req.Rounds, slots, results)
	ws.writeHot(w, r, http.StatusOK, &BatchPriceResponse{Results: results})
}

// handleMultiBatchPrice prices rounds across many streams in one
// request (POST /v1/price/batch). Rounds are grouped by stream (so a
// stream's rounds price in request order under one lock acquisition),
// stream groups are bucketed by registry shard, and the shard buckets
// fan out over a bounded worker pool. Bucketing keeps all of a shard's
// map lookups on one worker and sizes the pool by live shards; the
// cost is that streams hashing to the same shard price sequentially —
// acceptable, since a batch touching k streams spreads over 32 shards.
func (s *Server) handleMultiBatchPrice(w http.ResponseWriter, r *http.Request) {
	ws := getWire()
	defer putWire(ws)
	var req MultiBatchPriceRequest
	if !s.readHot(ws, w, r, &req) {
		return
	}
	if !checkBatchSize(w, len(req.Rounds)) {
		return
	}
	results := make([]BatchRoundResult, len(req.Rounds))

	// Group request indexes by stream, preserving per-stream round order.
	groups := make(map[string][]int)
	for i, rd := range req.Rounds {
		if rd.StreamID == "" {
			results[i] = BatchRoundResult{Error: "stream_id required"}
			continue
		}
		groups[rd.StreamID] = append(groups[rd.StreamID], i)
	}

	// Bucket stream groups by shard.
	buckets := make(map[int][]string)
	for id := range groups {
		si := s.reg.ShardIndex(id)
		buckets[si] = append(buckets[si], id)
	}

	// Fan the shard buckets out over a bounded worker pool. Each result
	// slot is written by exactly one worker, so no result lock is needed.
	work := make(chan []string, len(buckets))
	for _, ids := range buckets {
		work <- ids
	}
	close(work)
	workers := runtime.GOMAXPROCS(0)
	if workers > len(buckets) {
		workers = len(buckets)
	}
	var wg sync.WaitGroup
	for n := 0; n < workers; n++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ids := range work {
				for _, id := range ids {
					s.priceStreamGroup(id, groups[id], req.Rounds, results)
				}
			}
		}()
	}
	wg.Wait()
	ws.writeHot(w, r, http.StatusOK, &BatchPriceResponse{Results: results})
}

// priceStreamGroup prices one stream's rounds of a multi-stream batch.
func (s *Server) priceStreamGroup(id string, slots []int, rounds []MultiBatchRound, results []BatchRoundResult) {
	st, err := s.reg.Get(id)
	if err != nil {
		for _, slot := range slots {
			results[slot] = BatchRoundResult{Error: err.Error()}
		}
		return
	}
	batch := make([]BatchPriceRound, len(slots))
	for k, slot := range slots {
		rd := rounds[slot]
		batch[k] = BatchPriceRound{Features: rd.Features, Reserve: rd.Reserve, Valuation: rd.Valuation}
	}
	priceRounds(st, batch, slots, results)
}
