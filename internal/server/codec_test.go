package server

// HTTP-level cross-codec tests: the same request must produce the same
// answer — prices, decisions, per-round errors, and error codes — no
// matter which codec carries it. Streams and markets are deterministic
// given their spec (and market seed), so two identically-created
// instances replaying the same rounds, one per codec, must agree
// exactly.

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"reflect"
	"testing"

	"datamarket/api"
	"datamarket/api/binary"
	"datamarket/internal/randx"
)

// binDo sends a binary-framed request with Accept set to the binary
// content type and decodes the response by its own Content-Type: binary
// frames through the codec, anything else (errors!) as JSON. Returns the
// status and the response Content-Type.
func (c *client) binDo(method, path string, in, out any) (int, string) {
	c.t.Helper()
	var rd io.Reader
	if in != nil {
		frame, err := binary.Append(nil, in)
		if err != nil {
			c.t.Fatalf("encoding binary request: %v", err)
		}
		rd = bytes.NewReader(frame)
	}
	req, err := http.NewRequest(method, c.base+path, rd)
	if err != nil {
		c.t.Fatal(err)
	}
	if in != nil {
		req.Header.Set("Content-Type", binary.ContentType)
	}
	req.Header.Set("Accept", binary.ContentType)
	resp, err := c.http.Do(req)
	if err != nil {
		c.t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		c.t.Fatal(err)
	}
	ct := resp.Header.Get("Content-Type")
	if out != nil {
		if ct == binary.ContentType {
			err = binary.Decode(body, out)
		} else {
			err = json.Unmarshal(body, out)
		}
		if err != nil {
			c.t.Fatalf("%s %s: decoding %s response: %v", method, path, ct, err)
		}
	}
	return resp.StatusCode, ct
}

// twinStreams creates two identically-specified streams so one can be
// driven per codec.
func twinStreams(t *testing.T, c *client, dim int) (jsonID, binID string) {
	t.Helper()
	for _, id := range []string{"codec-json", "codec-bin"} {
		var info StreamInfo
		c.mustDo("POST", "/v1/streams",
			CreateStreamRequest{ID: id, Dim: dim, Threshold: 0.05}, &info, http.StatusCreated)
	}
	return "codec-json", "codec-bin"
}

// TestCrossCodecBatchPrice replays the same batch against twin streams,
// one via JSON and one via the binary codec, and requires identical
// results — including a per-round validation error, which must carry the
// same message under both codecs.
func TestCrossCodecBatchPrice(t *testing.T) {
	_, c := newTestServer(t)
	jsonID, binID := twinStreams(t, c, 3)
	r := randx.New(42)
	rounds := make([]BatchPriceRound, 32)
	for i := range rounds {
		v := r.Float64()
		rounds[i] = BatchPriceRound{Features: r.OnSphere(3), Reserve: -1e9, Valuation: &v}
	}
	// Round 7 fails per-round validation identically under both codecs:
	// a missing valuation is encodable in either (a ragged batch would
	// not be — the columnar frame cannot carry it, so it stays JSON).
	rounds[7].Valuation = nil

	var jsonResp, binResp BatchPriceResponse
	c.mustDo("POST", "/v1/streams/"+jsonID+"/price/batch",
		BatchPriceRequest{Rounds: rounds}, &jsonResp, http.StatusOK)
	status, ct := c.binDo("POST", "/v1/streams/"+binID+"/price/batch",
		&api.BatchPriceRequest{Rounds: rounds}, &binResp)
	if status != http.StatusOK {
		t.Fatalf("binary batch status %d", status)
	}
	if ct != binary.ContentType {
		t.Fatalf("binary batch answered Content-Type %q", ct)
	}
	if !reflect.DeepEqual(jsonResp, binResp) {
		t.Errorf("codecs disagree:\n json: %+v\n  bin: %+v", jsonResp, binResp)
	}
	if binResp.Results[7].Error == "" || binResp.Results[7].Error != jsonResp.Results[7].Error {
		t.Errorf("per-round error differs: json %q, bin %q",
			jsonResp.Results[7].Error, binResp.Results[7].Error)
	}
}

// TestCrossCodecSinglePrice drives one full round per codec against twin
// streams and requires identical responses.
func TestCrossCodecSinglePrice(t *testing.T) {
	_, c := newTestServer(t)
	jsonID, binID := twinStreams(t, c, 3)
	features := []float64{0.6, 0.8, 0}
	v := 0.9

	jsonResp := c.price(jsonID, features, -1e9, v)
	var binResp PriceResponse
	status, ct := c.binDo("POST", "/v1/streams/"+binID+"/price",
		&api.PriceRequest{Features: features, Reserve: -1e9, Valuation: &v}, &binResp)
	if status != http.StatusOK || ct != binary.ContentType {
		t.Fatalf("binary price: status %d, Content-Type %q", status, ct)
	}
	if !reflect.DeepEqual(jsonResp, binResp) {
		t.Errorf("codecs disagree:\n json: %+v\n  bin: %+v", jsonResp, binResp)
	}
}

// TestCrossCodecMultiBatch replays the same multi-stream batch through
// both codecs against twin stream pairs.
func TestCrossCodecMultiBatch(t *testing.T) {
	_, c := newTestServer(t)
	for _, id := range []string{"mj-a", "mj-b", "mb-a", "mb-b"} {
		var info StreamInfo
		c.mustDo("POST", "/v1/streams",
			CreateStreamRequest{ID: id, Dim: 2, Threshold: 0.05}, &info, http.StatusCreated)
	}
	build := func(a, b string) []MultiBatchRound {
		rr := randx.New(7)
		rounds := make([]MultiBatchRound, 16)
		for i := range rounds {
			v := rr.Float64()
			id := a
			if i%2 == 1 {
				id = b
			}
			rounds[i] = MultiBatchRound{StreamID: id, Features: rr.OnSphere(2), Reserve: -1e9, Valuation: &v}
		}
		return rounds
	}

	var jsonResp, binResp BatchPriceResponse
	c.mustDo("POST", "/v1/price/batch",
		MultiBatchPriceRequest{Rounds: build("mj-a", "mj-b")}, &jsonResp, http.StatusOK)
	status, ct := c.binDo("POST", "/v1/price/batch",
		&api.MultiBatchPriceRequest{Rounds: build("mb-a", "mb-b")}, &binResp)
	if status != http.StatusOK || ct != binary.ContentType {
		t.Fatalf("binary multi-batch: status %d, Content-Type %q", status, ct)
	}
	if !reflect.DeepEqual(jsonResp, binResp) {
		t.Errorf("codecs disagree:\n json: %+v\n  bin: %+v", jsonResp, binResp)
	}
}

// TestCrossCodecTradeBatch replays the same trades against twin seeded
// markets, one per codec.
func TestCrossCodecTradeBatch(t *testing.T) {
	_, c := newTestServer(t)
	gen := marketFixture(t, c, "tm-json", 8)
	marketFixture(t, c, "tm-bin", 8)
	r := randx.New(5)
	trades := make([]TradeRequest, 12)
	for i := range trades {
		trades[i] = TradeRequest{Weights: gen(r), NoiseVariance: 1, Valuation: 2 * r.Float64()}
	}
	trades[3].NoiseVariance = -1 // per-trade validation error, same both codecs

	var jsonResp, binResp TradeBatchResponse
	c.mustDo("POST", "/v1/markets/tm-json/trade/batch",
		TradeBatchRequest{Trades: trades}, &jsonResp, http.StatusOK)
	status, ct := c.binDo("POST", "/v1/markets/tm-bin/trade/batch",
		&api.TradeBatchRequest{Trades: trades}, &binResp)
	if status != http.StatusOK || ct != binary.ContentType {
		t.Fatalf("binary trade batch: status %d, Content-Type %q", status, ct)
	}
	if !reflect.DeepEqual(jsonResp, binResp) {
		t.Errorf("codecs disagree:\n json: %+v\n  bin: %+v", jsonResp, binResp)
	}
	if binResp.Results[3].Error == "" {
		t.Error("per-trade validation error lost in binary codec")
	}
}

// TestCrossCodecErrorCodes pins that binary requests fail with the same
// JSON error envelope — status, code, and negotiation-independent
// Content-Type — as their JSON twins.
func TestCrossCodecErrorCodes(t *testing.T) {
	_, c := newTestServer(t)
	var info StreamInfo
	c.mustDo("POST", "/v1/streams",
		CreateStreamRequest{ID: "e", Dim: 2, Threshold: 0.05}, &info, http.StatusCreated)
	v := 1.0

	t.Run("malformed body", func(t *testing.T) {
		req, _ := http.NewRequest("POST", c.base+"/v1/streams/e/price/batch",
			bytes.NewReader([]byte("not a frame")))
		req.Header.Set("Content-Type", binary.ContentType)
		req.Header.Set("Accept", binary.ContentType)
		resp, err := c.http.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("status %d, want 400", resp.StatusCode)
		}
		if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
			t.Fatalf("error Content-Type %q, want JSON envelope regardless of Accept", ct)
		}
		var env api.ErrorResponse
		if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
			t.Fatal(err)
		}
		if env.Error.Code != api.CodeInvalidRequest {
			t.Errorf("code %q, want %q (same as malformed JSON)", env.Error.Code, api.CodeInvalidRequest)
		}
	})

	t.Run("stream not found", func(t *testing.T) {
		var jsonEnv, binEnv api.ErrorResponse
		jsonStatus := c.do("POST", "/v1/streams/nope/price",
			PriceRequest{Features: []float64{1, 2}, Valuation: &v}, &jsonEnv)
		binStatus, ct := c.binDo("POST", "/v1/streams/nope/price",
			&api.PriceRequest{Features: []float64{1, 2}, Valuation: &v}, &binEnv)
		if jsonStatus != binStatus || jsonStatus != http.StatusNotFound {
			t.Fatalf("statuses json=%d bin=%d, want both 404", jsonStatus, binStatus)
		}
		if ct != "application/json" {
			t.Fatalf("binary error Content-Type %q, want JSON envelope", ct)
		}
		if jsonEnv.Error.Code != binEnv.Error.Code {
			t.Errorf("codes differ: json %q, bin %q", jsonEnv.Error.Code, binEnv.Error.Code)
		}
	})

	t.Run("empty batch", func(t *testing.T) {
		var jsonEnv, binEnv api.ErrorResponse
		jsonStatus := c.do("POST", "/v1/streams/e/price/batch", BatchPriceRequest{}, &jsonEnv)
		binStatus, _ := c.binDo("POST", "/v1/streams/e/price/batch",
			&api.BatchPriceRequest{}, &binEnv)
		if jsonStatus != binStatus || jsonStatus != http.StatusBadRequest {
			t.Fatalf("statuses json=%d bin=%d, want both 400", jsonStatus, binStatus)
		}
		if jsonEnv.Error != binEnv.Error {
			t.Errorf("envelopes differ: json %+v, bin %+v", jsonEnv.Error, binEnv.Error)
		}
	})
}

// TestBinaryCapabilityHeader pins the negotiation surface: every
// response advertises the codec version, a JSON request stays JSON, and
// Accept alone (JSON body, binary response) negotiates the response leg
// independently of the request leg.
func TestBinaryCapabilityHeader(t *testing.T) {
	ts, c := newTestServer(t)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get(binary.ProtoHeader); got != "1" {
		t.Errorf("%s = %q, want \"1\"", binary.ProtoHeader, got)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("JSON-by-default violated: Content-Type %q", ct)
	}

	// JSON request body + binary Accept: response comes back binary.
	var info StreamInfo
	c.mustDo("POST", "/v1/streams",
		CreateStreamRequest{ID: "n", Dim: 2, Threshold: 0.05}, &info, http.StatusCreated)
	v := 1.0
	body, _ := json.Marshal(PriceRequest{Features: []float64{0.5, 0.5}, Reserve: -1e9, Valuation: &v})
	req, _ := http.NewRequest("POST", ts.URL+"/v1/streams/n/price", bytes.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("Accept", binary.ContentType)
	r2, err := c.http.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Body.Close()
	if ct := r2.Header.Get("Content-Type"); ct != binary.ContentType {
		t.Fatalf("Accept negotiation ignored: Content-Type %q", ct)
	}
	frame, err := io.ReadAll(r2.Body)
	if err != nil {
		t.Fatal(err)
	}
	var pr api.PriceResponse
	if err := binary.Decode(frame, &pr); err != nil {
		t.Fatalf("decoding negotiated binary response: %v", err)
	}
	if pr.Price == 0 && pr.Decision == "" {
		t.Error("binary response is empty")
	}
}
