package server

import (
	"fmt"
	"math/rand"
	"sync/atomic"
	"testing"

	"datamarket/internal/linalg"
	"datamarket/internal/store"
)

// benchPersistentRegistry stands up n persistent linear streams of the given
// dimension over a journal store (fsync never: the benchmark measures
// the checkpoint machinery, not the disk).
func benchPersistentRegistry(b *testing.B, n, dim int) (*Registry, *Persister) {
	b.Helper()
	st, err := store.OpenJournal(store.JournalConfig{Dir: b.TempDir(), Fsync: store.FsyncNever})
	if err != nil {
		b.Fatal(err)
	}
	reg := NewRegistry(0)
	p, _, err := AttachPersistence(reg, st, PersistConfig{Interval: -1})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if _, err := reg.Create(CreateStreamRequest{ID: fmt.Sprintf("s%05d", i), Dim: dim, Horizon: 100000}); err != nil {
			b.Fatal(err)
		}
	}
	b.Cleanup(func() {
		if err := p.Shutdown(); err != nil {
			b.Fatal(err)
		}
	})
	return reg, p
}

func benchVec(dim int, rng *rand.Rand) linalg.Vector {
	x := make(linalg.Vector, dim)
	for i := range x {
		x[i] = rng.Float64()
	}
	return x
}

// BenchmarkCheckpoint1000Dirty100 is the checkpoint-throughput
// benchmark: a 1000-stream registry where 100 streams changed since the
// last pass — each op snapshots and journals exactly those 100 and
// revision-skips the other 900.
func BenchmarkCheckpoint1000Dirty100(b *testing.B) {
	const n, dirty, dim = 1000, 100, 8
	reg, p := benchPersistentRegistry(b, n, dim)
	rng := rand.New(rand.NewSource(1))
	x := benchVec(dim, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		for k := 0; k < dirty; k++ {
			st, _ := reg.Get(fmt.Sprintf("s%05d", (i*dirty+k*7)%n))
			if _, _, err := st.Price(x, 0.1, 1.5); err != nil {
				b.Fatal(err)
			}
		}
		b.StartTimer()
		stats := p.Checkpoint()
		if stats.Persisted != dirty {
			b.Fatalf("pass persisted %d streams, want %d", stats.Persisted, dirty)
		}
	}
}

// BenchmarkCheckpoint1000Clean measures the revision-gated fast path: a
// pass over 1000 unchanged streams is pure atomic loads and map lookups.
func BenchmarkCheckpoint1000Clean(b *testing.B) {
	const n = 1000
	_, p := benchPersistentRegistry(b, n, 8)
	p.Checkpoint() // absorb any first-pass stragglers
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		stats := p.Checkpoint()
		if stats.SkippedClean != n {
			b.Fatalf("pass skipped %d streams, want %d", stats.SkippedClean, n)
		}
	}
}

// BenchmarkPricingDuringCheckpoint measures foreground pricing
// throughput (one op = one full round) while checkpoint passes run
// continuously in the background — the acceptance bar is ≥ 10k rounds/s.
func BenchmarkPricingDuringCheckpoint(b *testing.B) {
	const n, dim = 256, 8
	reg, p := benchPersistentRegistry(b, n, dim)
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			select {
			case <-stop:
				return
			default:
				p.Checkpoint()
			}
		}
	}()
	var seed atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		rng := rand.New(rand.NewSource(seed.Add(1)))
		x := benchVec(dim, rng)
		for pb.Next() {
			st, err := reg.Get(fmt.Sprintf("s%05d", rng.Intn(n)))
			if err != nil {
				b.Fatal(err)
			}
			if _, _, err := st.Price(x, 0.1, rng.Float64()*2); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.StopTimer()
	close(stop)
	<-done
}
