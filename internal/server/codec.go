package server

// Codec dispatch for the hot pricing endpoints. The binary codec
// (api/binary) is negotiated per request on the existing mux: a body
// with Content-Type application/x-datamarket-binary decodes through the
// binary decoder, and an Accept header naming that type gets a binary
// response body. JSON stays the default, and error responses are always
// the JSON error envelope regardless of Accept, so clients' error paths
// never depend on negotiation.
//
// Each hot request checks out a wireState from a sync.Pool: a reusable
// body buffer, a reusable response-encode buffer, and a binary.Decoder
// whose scratch the decoded request aliases. Steady state, a binary
// batch request is served without per-request encode/decode allocations.

import (
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"

	"datamarket/api/binary"
)

// protoVersion is the codec version advertised in the
// X-Binary-Protocol response header.
var protoVersion = strconv.Itoa(int(binary.Version))

// wireState is the per-request scratch of the hot endpoints: pooled so
// the steady-state encode/decode path allocates nothing. Everything a
// decoded request aliases lives here, so a wireState must not be
// returned to the pool before the handler is done with the request AND
// the response bytes have been written.
type wireState struct {
	body []byte         // request body read buffer
	out  []byte         // binary response encode buffer
	dec  binary.Decoder // request decode scratch
}

var wirePool = sync.Pool{New: func() any {
	return &wireState{body: make([]byte, 0, 4096), out: make([]byte, 0, 4096)}
}}

func getWire() *wireState   { return wirePool.Get().(*wireState) }
func putWire(ws *wireState) { wirePool.Put(ws) }

// isBinaryContent reports whether a Content-Type header names the
// binary codec (ignoring any media-type parameters).
func isBinaryContent(ct string) bool {
	if ct, _, ok := strings.Cut(ct, ";"); ok {
		return strings.TrimSpace(ct) == binary.ContentType
	}
	return strings.TrimSpace(ct) == binary.ContentType
}

// wantsBinary reports whether the request's Accept header asks for a
// binary response body.
func wantsBinary(r *http.Request) bool {
	return strings.Contains(r.Header.Get("Accept"), binary.ContentType)
}

// readBody reads the whole request body into the wireState's reusable
// buffer, honoring maxBodyBytes.
func (ws *wireState) readBody(w http.ResponseWriter, r *http.Request) ([]byte, error) {
	rd := http.MaxBytesReader(w, r.Body, maxBodyBytes)
	buf := ws.body[:0]
	for {
		if len(buf) == cap(buf) {
			buf = append(buf, 0)[:len(buf)]
		}
		n, err := rd.Read(buf[len(buf):cap(buf)])
		buf = buf[:len(buf)+n]
		if err == io.EOF {
			ws.body = buf
			return buf, nil
		}
		if err != nil {
			ws.body = buf[:0]
			return nil, err
		}
	}
}

// readHot decodes a hot-endpoint request body by its Content-Type:
// binary frames through the wireState's pooled decoder (the decoded dst
// aliases that scratch), everything else through the standard JSON path.
// Malformed binary frames map to the same invalid_request envelope (400,
// or 413 when oversized) as malformed JSON.
func (s *Server) readHot(ws *wireState, w http.ResponseWriter, r *http.Request, dst any) bool {
	if !isBinaryContent(r.Header.Get("Content-Type")) {
		return readJSON(w, r, dst)
	}
	body, err := ws.readBody(w, r)
	if err != nil {
		status := http.StatusBadRequest
		if _, ok := err.(*http.MaxBytesError); ok {
			status = http.StatusRequestEntityTooLarge
		}
		writeStatusError(w, status, "reading body: "+err.Error())
		return false
	}
	if err := ws.dec.DecodeInto(body, dst); err != nil {
		writeStatusError(w, http.StatusBadRequest, "decoding request: "+err.Error())
		return false
	}
	return true
}

// writeHot writes a hot-endpoint success response, binary when the
// request's Accept header asks for it (encoding into the wireState's
// pooled buffer), JSON otherwise. v must be a pointer to one of the
// codec's wire types. A binary encode failure falls back to JSON — the
// response is still correct, just not in the preferred encoding — and is
// logged like a JSON encode failure.
func (ws *wireState) writeHot(w http.ResponseWriter, r *http.Request, status int, v any) {
	if !wantsBinary(r) {
		writeJSON(w, status, v)
		return
	}
	out, err := binary.Append(ws.out[:0], v)
	if err != nil {
		logEncodeError(v, err)
		writeJSON(w, status, v)
		return
	}
	ws.out = out
	w.Header().Set("Content-Type", binary.ContentType)
	w.WriteHeader(status)
	if _, err := w.Write(out); err != nil {
		logEncodeError(v, err)
	}
}
