package server

import (
	"fmt"
	"math"
	"net/http"
	"testing"

	"datamarket/internal/randx"
)

// batchRounds builds k deterministic rounds for a dim-wide stream, with
// valuations from a fixed hidden theta.
func batchRounds(dim, k int, seed uint64) []BatchPriceRound {
	theta := randx.New(1).OnSphere(dim)
	r := randx.New(seed)
	rounds := make([]BatchPriceRound, k)
	for i := range rounds {
		x := r.OnSphere(dim)
		v := x.Dot(theta)
		rounds[i] = BatchPriceRound{Features: x, Reserve: -1e9, Valuation: &v}
	}
	return rounds
}

// TestBatchPriceMatchesSingleRounds drives the same round sequence
// through /price (one round per request) and /price/batch (chunks) on
// identically configured streams: every quote must agree and the final
// mechanism counters — including the cuts applied — must be identical.
func TestBatchPriceMatchesSingleRounds(t *testing.T) {
	const dim, total, chunk = 4, 120, 32
	_, c := newTestServer(t)
	for _, id := range []string{"eq-single", "eq-batch"} {
		c.mustDo("POST", "/v1/streams", CreateStreamRequest{ID: id, Dim: dim, Threshold: 0.05},
			nil, http.StatusCreated)
	}
	rounds := batchRounds(dim, total, 2)

	single := make([]PriceResponse, total)
	for i, rd := range rounds {
		single[i] = c.price("eq-single", rd.Features, rd.Reserve, *rd.Valuation)
	}

	var batched []BatchRoundResult
	for lo := 0; lo < total; lo += chunk {
		hi := lo + chunk
		if hi > total {
			hi = total
		}
		var resp BatchPriceResponse
		c.mustDo("POST", "/v1/streams/eq-batch/price/batch",
			BatchPriceRequest{Rounds: rounds[lo:hi]}, &resp, http.StatusOK)
		batched = append(batched, resp.Results...)
	}
	if len(batched) != total {
		t.Fatalf("got %d batched results, want %d", len(batched), total)
	}
	for i := range single {
		if batched[i].Error != "" {
			t.Fatalf("round %d errored: %s", i, batched[i].Error)
		}
		b, s := batched[i].PriceResponse, single[i]
		if b.Price != s.Price || b.Decision != s.Decision || b.Lower != s.Lower ||
			b.Upper != s.Upper || b.ReserveBinding != s.ReserveBinding {
			t.Fatalf("round %d diverged:\nbatch  %+v\nsingle %+v", i, b, s)
		}
		if (b.Accepted == nil) != (s.Accepted == nil) ||
			(b.Accepted != nil && *b.Accepted != *s.Accepted) {
			t.Fatalf("round %d acceptance diverged", i)
		}
	}

	var ss, sb StatsResponse
	c.mustDo("GET", "/v1/streams/eq-single/stats", nil, &ss, http.StatusOK)
	c.mustDo("GET", "/v1/streams/eq-batch/stats", nil, &sb, http.StatusOK)
	if ss.Counters != sb.Counters {
		t.Fatalf("counters diverged:\nsingle %+v\nbatch  %+v", ss.Counters, sb.Counters)
	}
	if ss.Regret != sb.Regret {
		t.Fatalf("regret stats diverged:\nsingle %+v\nbatch  %+v", ss.Regret, sb.Regret)
	}
}

// TestBatchPricePerItemErrors checks that invalid rounds fail alone:
// the valid rounds around them still price and the stream advances by
// exactly the valid count.
func TestBatchPricePerItemErrors(t *testing.T) {
	_, c := newTestServer(t)
	c.mustDo("POST", "/v1/streams", CreateStreamRequest{ID: "s", Dim: 2, Threshold: 0.05},
		nil, http.StatusCreated)
	v := 1.0
	rounds := []BatchPriceRound{
		{Features: []float64{1, 0}, Reserve: -1, Valuation: &v},
		{Features: []float64{1, 0, 0}, Reserve: -1, Valuation: &v}, // wrong dim
		{Features: []float64{1, 0}, Reserve: -1},                   // missing valuation
		{Features: []float64{0, 1}, Reserve: -1, Valuation: &v},
	}
	var resp BatchPriceResponse
	c.mustDo("POST", "/v1/streams/s/price/batch", BatchPriceRequest{Rounds: rounds}, &resp, http.StatusOK)
	if len(resp.Results) != len(rounds) {
		t.Fatalf("got %d results, want %d", len(resp.Results), len(rounds))
	}
	for _, i := range []int{0, 3} {
		if resp.Results[i].Error != "" {
			t.Errorf("valid round %d errored: %s", i, resp.Results[i].Error)
		}
	}
	for _, i := range []int{1, 2} {
		if resp.Results[i].Error == "" {
			t.Errorf("invalid round %d did not error", i)
		}
	}
	// Non-finite features can't even ride in as JSON; the validation
	// still guards embedded (non-HTTP) callers of the same path.
	vst, err := newStream(CreateStreamRequest{ID: "v", Dim: 2, Threshold: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if err := validateBatchRound(vst, []float64{1, math.NaN()}, -1, &v); err == nil {
		t.Error("non-finite feature passed validation")
	}
	if err := validateBatchRound(vst, []float64{1, 0}, math.Inf(1), &v); err == nil {
		t.Error("non-finite reserve passed validation")
	}
	inf := math.Inf(-1)
	if err := validateBatchRound(vst, []float64{1, 0}, -1, &inf); err == nil {
		t.Error("non-finite valuation passed validation")
	}
	var st StatsResponse
	c.mustDo("GET", "/v1/streams/s/stats", nil, &st, http.StatusOK)
	if st.Counters.Rounds != 2 {
		t.Fatalf("stream saw %d rounds, want 2", st.Counters.Rounds)
	}
}

// TestBatchPriceLimits covers the batch-level 400s: empty batches and
// batches beyond MaxBatchRounds.
func TestBatchPriceLimits(t *testing.T) {
	_, c := newTestServer(t)
	c.mustDo("POST", "/v1/streams", CreateStreamRequest{ID: "s", Dim: 1, Threshold: 0.05},
		nil, http.StatusCreated)
	c.mustDo("POST", "/v1/streams/s/price/batch", BatchPriceRequest{}, nil, http.StatusBadRequest)
	v := 1.0
	over := make([]BatchPriceRound, MaxBatchRounds+1)
	for i := range over {
		over[i] = BatchPriceRound{Features: []float64{1}, Valuation: &v}
	}
	c.mustDo("POST", "/v1/streams/s/price/batch", BatchPriceRequest{Rounds: over}, nil,
		http.StatusBadRequest)
	c.mustDo("POST", "/v1/price/batch", MultiBatchPriceRequest{}, nil, http.StatusBadRequest)
	c.mustDo("POST", "/v1/streams/missing/price/batch",
		BatchPriceRequest{Rounds: []BatchPriceRound{{Features: []float64{1}, Valuation: &v}}},
		nil, http.StatusNotFound)
}

// TestMultiBatchPrice fans rounds across streams and verifies the
// results align with per-stream single-stream batches: per-stream order
// is preserved through the shard-grouped worker pool, and rounds naming
// unknown or absent streams fail individually.
func TestMultiBatchPrice(t *testing.T) {
	const dim, perStream = 3, 40
	_, c := newTestServer(t)
	streams := []string{"m-a", "m-b", "m-c"}
	for _, id := range streams {
		c.mustDo("POST", "/v1/streams", CreateStreamRequest{ID: id, Dim: dim, Threshold: 0.05},
			nil, http.StatusCreated)
		c.mustDo("POST", "/v1/streams", CreateStreamRequest{ID: "ref-" + id, Dim: dim, Threshold: 0.05},
			nil, http.StatusCreated)
	}

	// Interleave the streams' rounds round-robin, with two broken rounds.
	perStreamRounds := make(map[string][]BatchPriceRound)
	for si, id := range streams {
		perStreamRounds[id] = batchRounds(dim, perStream, uint64(100+si))
	}
	var multi []MultiBatchRound
	for i := 0; i < perStream; i++ {
		for _, id := range streams {
			rd := perStreamRounds[id][i]
			multi = append(multi, MultiBatchRound{
				StreamID: id, Features: rd.Features, Reserve: rd.Reserve, Valuation: rd.Valuation,
			})
		}
	}
	v := 1.0
	multi = append(multi,
		MultiBatchRound{StreamID: "nope", Features: []float64{1, 0, 0}, Valuation: &v},
		MultiBatchRound{Features: []float64{1, 0, 0}, Valuation: &v}, // no stream_id
	)

	var resp BatchPriceResponse
	c.mustDo("POST", "/v1/price/batch", MultiBatchPriceRequest{Rounds: multi}, &resp, http.StatusOK)
	if len(resp.Results) != len(multi) {
		t.Fatalf("got %d results, want %d", len(resp.Results), len(multi))
	}
	if resp.Results[len(multi)-2].Error == "" || resp.Results[len(multi)-1].Error == "" {
		t.Fatal("broken rounds did not error")
	}

	// Reference: the same per-stream sequences through single-stream
	// batches on identically configured streams.
	for _, id := range streams {
		var ref BatchPriceResponse
		c.mustDo("POST", "/v1/streams/ref-"+id+"/price/batch",
			BatchPriceRequest{Rounds: perStreamRounds[id]}, &ref, http.StatusOK)
		k := 0
		for i, rd := range multi {
			if rd.StreamID != id {
				continue
			}
			got, want := resp.Results[i], ref.Results[k]
			if got.Error != "" || want.Error != "" {
				t.Fatalf("stream %s round %d errored: %q / %q", id, k, got.Error, want.Error)
			}
			if got.Price != want.Price || got.Decision != want.Decision ||
				got.Lower != want.Lower || got.Upper != want.Upper ||
				got.ReserveBinding != want.ReserveBinding ||
				(got.Accepted == nil) != (want.Accepted == nil) ||
				(got.Accepted != nil && *got.Accepted != *want.Accepted) {
				t.Fatalf("stream %s round %d diverged:\nmulti %+v\nref   %+v", id, k, got, want)
			}
			k++
		}
		if k != perStream {
			t.Fatalf("stream %s matched %d rounds, want %d", id, k, perStream)
		}
	}
}

// TestDeleteWhilePending is the regression test for the delete
// lifecycle bug: removing a stream whose two-phase round is awaiting
// feedback silently discards the buyer's decision. Delete now answers
// 409 until the round is observed — or the caller forces it.
func TestDeleteWhilePending(t *testing.T) {
	_, c := newTestServer(t)
	c.mustDo("POST", "/v1/streams", CreateStreamRequest{ID: "s", Dim: 2, Threshold: 0.05},
		nil, http.StatusCreated)
	c.mustDo("POST", "/v1/streams/s/quote", QuoteRequest{Features: []float64{1, 0}, Reserve: -1},
		nil, http.StatusOK)

	c.mustDo("DELETE", "/v1/streams/s", nil, nil, http.StatusConflict)
	// Still there, still pending: the buyer's decision can land.
	c.mustDo("POST", "/v1/streams/s/observe", ObserveRequest{Accepted: true}, nil, http.StatusOK)
	c.mustDo("DELETE", "/v1/streams/s", nil, nil, http.StatusNoContent)

	// force=true is the escape hatch for abandoning a wedged stream.
	c.mustDo("POST", "/v1/streams", CreateStreamRequest{ID: "s2", Dim: 2, Threshold: 0.05},
		nil, http.StatusCreated)
	c.mustDo("POST", "/v1/streams/s2/quote", QuoteRequest{Features: []float64{1, 0}, Reserve: -1},
		nil, http.StatusOK)
	c.mustDo("DELETE", "/v1/streams/s2?force=true", nil, nil, http.StatusNoContent)
	c.mustDo("GET", "/v1/streams/s2", nil, nil, http.StatusNotFound)
}

// TestCreateNegativeHorizon is the regression test for the silently
// ignored negative horizon: it must 400 like every other bad field.
func TestCreateNegativeHorizon(t *testing.T) {
	_, c := newTestServer(t)
	c.mustDo("POST", "/v1/streams", CreateStreamRequest{ID: "h", Dim: 2, Horizon: -1},
		nil, http.StatusBadRequest)
	c.mustDo("POST", "/v1/streams", CreateStreamRequest{ID: "h", Dim: 2, Horizon: 100},
		nil, http.StatusCreated)
}

// TestBatchPriceConcurrent hammers both batch endpoints from concurrent
// clients (meaningful under -race): totals must add up and every stream
// must stay un-pending.
func TestBatchPriceConcurrent(t *testing.T) {
	const dim, workers, perBatch, batches = 3, 6, 20, 5
	ts, c := newTestServer(t)
	streams := []string{"c-0", "c-1", "c-2", "c-3"}
	for _, id := range streams {
		c.mustDo("POST", "/v1/streams", CreateStreamRequest{ID: id, Dim: dim, Threshold: 0.05},
			nil, http.StatusCreated)
	}
	done := make(chan error, workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			cl := &client{t: t, base: ts.URL, http: ts.Client()}
			r := randx.NewStream(7, uint64(w))
			theta := randx.New(1).OnSphere(dim)
			for b := 0; b < batches; b++ {
				var multi []MultiBatchRound
				for i := 0; i < perBatch; i++ {
					x := r.OnSphere(dim)
					v := x.Dot(theta)
					multi = append(multi, MultiBatchRound{
						StreamID: streams[(w+i)%len(streams)],
						Features: x, Reserve: -1e9, Valuation: &v,
					})
				}
				var resp BatchPriceResponse
				if got := cl.do("POST", "/v1/price/batch", MultiBatchPriceRequest{Rounds: multi}, &resp); got != http.StatusOK {
					done <- fmt.Errorf("worker %d: status %d", w, got)
					return
				}
				for i, res := range resp.Results {
					if res.Error != "" {
						done <- fmt.Errorf("worker %d round %d: %s", w, i, res.Error)
						return
					}
				}
			}
			done <- nil
		}(w)
	}
	for w := 0; w < workers; w++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	var total int
	for _, id := range streams {
		var st StatsResponse
		c.mustDo("GET", "/v1/streams/"+id+"/stats", nil, &st, http.StatusOK)
		total += st.Counters.Rounds
	}
	if want := workers * perBatch * batches; total != want {
		t.Fatalf("streams saw %d rounds total, want %d", total, want)
	}
}
