// Package server hosts many independent pricing streams behind an
// HTTP/JSON edge. A stream is a family plus a model config — the linear
// ellipsoid, the nonlinear g∘φ extensions (including landmark kernels),
// or the SGD comparator — built through the pricing family factory and
// wrapped in a pricing.SyncPoster; the streams live in a registry sharded
// by FNV hash of the stream ID so hot streams do not contend on a single
// mutex.
package server

import (
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"datamarket/internal/linalg"
	"datamarket/internal/pricing"
)

// Registry errors.
var (
	ErrStreamExists   = errors.New("server: stream already exists")
	ErrStreamNotFound = errors.New("server: stream not found")
	ErrStreamPending  = errors.New("server: stream has a round pending feedback")
	// ErrPersist wraps lifecycle-observer (persistence) failures. The
	// request was valid; the server could not make the event durable —
	// a 5xx to clients, not a 4xx.
	ErrPersist = errors.New("server: persistence failed")
)

// Stream is one hosted pricing stream: a concurrency-safe poster of some
// family plus regret bookkeeping for the rounds whose valuations the
// server saw.
//
// trackMu is the stream's round lock: Price and PriceBatch hold it across
// the poster round *and* the tracker update, and Snapshot holds it while
// capturing the poster state, so a snapshot always pairs a poster state
// with exactly the regret aggregates of the rounds that state reflects.
// (Lock order is trackMu → poster; nothing holds the poster lock while
// waiting on trackMu.) Two-phase quote/observe rounds bypass the tracker
// and therefore the round lock.
type Stream struct {
	id     string
	family pricing.Family
	dim    int // input feature dimension
	poster *pricing.SyncPoster

	trackMu sync.Mutex
	tracker *pricing.Tracker
}

// MaxDim caps both the input feature dimension of a hosted stream and the
// mapped (score-space) dimension — for a landmark stream, the number of
// landmarks. The ellipsoid shape matrix is n×n over the mapped features,
// so an unbounded n would let one small create request allocate arbitrary
// memory; 1024 keeps a stream under ~8 MB of state and its snapshot
// comfortably inside maxBodyBytes.
const MaxDim = 1024

// newStream builds a stream of the requested family from a create request.
// Family-specific validation (model config, radius/threshold domains)
// lives in the pricing factory; the server only enforces its own resource
// caps.
func newStream(req CreateStreamRequest) (*Stream, error) {
	if req.ID == "" {
		return nil, fmt.Errorf("server: stream id required")
	}
	if req.Dim < 1 || req.Dim > MaxDim {
		return nil, fmt.Errorf("server: dimension %d invalid, want 1…%d", req.Dim, MaxDim)
	}
	spec := pricing.FamilySpec{
		Family:    pricing.Family(req.Family),
		Dim:       req.Dim,
		Radius:    req.Radius,
		Reserve:   req.Reserve,
		Delta:     req.Delta,
		Threshold: req.Threshold,
		Horizon:   req.Horizon,
	}
	if req.Model != nil {
		spec.Model = *req.Model
		if n := len(spec.Model.Landmarks); n > MaxDim {
			return nil, fmt.Errorf("server: %d landmarks exceed limit %d", n, MaxDim)
		}
	}
	poster, err := pricing.NewFamilyPoster(spec)
	if err != nil {
		return nil, err
	}
	return &Stream{
		id:      req.ID,
		family:  poster.Family(),
		dim:     req.Dim,
		poster:  pricing.NewSync(poster),
		tracker: pricing.NewTracker(false),
	}, nil
}

// checkEnvelopeCaps enforces the server's resource limits on a snapshot
// envelope: both the input dimension and, for landmark streams, the
// mapped (score-space) dimension are capped at MaxDim. Both the fresh-ID
// and the in-place restore paths go through it.
func checkEnvelopeCaps(env *pricing.Envelope) (int, error) {
	dim, err := env.Dim()
	if err != nil {
		return 0, err
	}
	if dim > MaxDim {
		return 0, fmt.Errorf("server: snapshot dimension %d exceeds limit %d", dim, MaxDim)
	}
	if env.Nonlinear != nil && len(env.Nonlinear.Model.Landmarks) > MaxDim {
		return 0, fmt.Errorf("server: %d landmarks exceed limit %d", len(env.Nonlinear.Model.Landmarks), MaxDim)
	}
	return dim, nil
}

// restoredTracker rebuilds the regret tracker carried by an envelope. An
// envelope without tracker state (legacy snapshots, hand-written
// envelopes) yields a zeroed tracker: regret bookkeeping restarts at the
// restore point. That reset is part of the restore contract — see the
// Envelope.Regret docs.
func restoredTracker(env *pricing.Envelope) (*pricing.Tracker, error) {
	if env.Regret == nil {
		return pricing.NewTracker(false), nil
	}
	return pricing.RestoreTracker(env.Regret)
}

// restoredStream rebuilds a stream around a family-tagged snapshot
// envelope.
func restoredStream(id string, env *pricing.Envelope) (*Stream, error) {
	if id == "" {
		return nil, fmt.Errorf("server: stream id required")
	}
	dim, err := checkEnvelopeCaps(env)
	if err != nil {
		return nil, err
	}
	tracker, err := restoredTracker(env)
	if err != nil {
		return nil, err
	}
	poster, err := pricing.RestoreEnvelope(env)
	if err != nil {
		return nil, err
	}
	return &Stream{
		id:      id,
		family:  poster.Family(),
		dim:     dim,
		poster:  pricing.NewSync(poster),
		tracker: tracker,
	}, nil
}

// ID returns the stream's identifier.
func (st *Stream) ID() string { return st.id }

// Family returns the stream's pricing family.
func (st *Stream) Family() pricing.Family { return st.family }

// Dim returns the stream's input feature dimension.
func (st *Stream) Dim() int { return st.dim }

// Price runs one full round atomically against the buyer valuation: the
// offer is accepted iff price ≤ valuation. The round is recorded in the
// stream's regret tracker.
func (st *Stream) Price(features linalg.Vector, reserve, valuation float64) (pricing.Quote, bool, error) {
	st.trackMu.Lock()
	defer st.trackMu.Unlock()
	q, accepted, err := st.poster.PriceRound(features, reserve, func(q pricing.Quote) bool {
		return pricing.Sold(q.Price, valuation)
	})
	if err != nil {
		return q, accepted, err
	}
	st.tracker.Record(valuation, reserve, q)
	return q, accepted, nil
}

// PriceBatch runs len(rounds) full rounds back to back under one
// acquisition of the stream's lock, accepting each offer iff
// price ≤ valuations[i]. Successful rounds are recorded in the regret
// tracker under one tracker-lock acquisition. valuations must align
// with rounds.
func (st *Stream) PriceBatch(rounds []pricing.BatchRound, valuations []float64) []pricing.BatchOutcome {
	st.trackMu.Lock()
	defer st.trackMu.Unlock()
	out := st.poster.PriceBatch(rounds, func(i int, q pricing.Quote) bool {
		return pricing.Sold(q.Price, valuations[i])
	})
	for i, o := range out {
		if o.Err == nil {
			st.tracker.Record(valuations[i], rounds[i].Reserve, o.Quote)
		}
	}
	return out
}

// Pending reports whether the stream's two-phase round is awaiting
// feedback. SyncPoster.Pending reads a lock-free shadow maintained
// under the pricing lock, so this never waits on an in-flight round.
func (st *Stream) Pending() bool { return st.poster.Pending() }

// Quote opens a round without resolving it (phase one of the two-phase
// protocol). The mechanism stays pending until Observe.
func (st *Stream) Quote(features linalg.Vector, reserve float64) (pricing.Quote, error) {
	return st.poster.PostPrice(features, reserve)
}

// Observe closes the pending round (phase two).
func (st *Stream) Observe(accepted bool) error {
	return st.poster.Observe(accepted)
}

// Snapshot captures the stream's state in a family-tagged envelope. The
// envelope carries the regret-tracker aggregates alongside the poster
// state, so a restore resumes both the mechanism and the stream's
// bookkeeping. Holding the round lock across both captures makes the
// pair consistent: every round in the poster counters is also in the
// regret aggregates and vice versa (two-phase rounds excepted — they
// never enter the tracker).
func (st *Stream) Snapshot() (*pricing.Envelope, error) {
	st.trackMu.Lock()
	defer st.trackMu.Unlock()
	env, err := st.poster.SnapshotEnvelope()
	if err != nil {
		return nil, err
	}
	ts := st.tracker.State()
	env.Regret = &ts
	return env, nil
}

// Revision exposes the poster's monotonic mutation counter (one atomic
// load, never waits on pricing). The background checkpointer compares it
// against the revision of the last persisted snapshot to skip streams
// that saw no traffic.
func (st *Stream) Revision() uint64 { return st.poster.Revision() }

// Restore replaces the stream's poster state in place. Cross-family
// snapshots are rejected — restoring an sgd envelope into a nonlinear
// stream would silently change the model class callers rely on — and the
// MaxDim caps apply just as on the fresh-ID restore path.
func (st *Stream) Restore(env *pricing.Envelope) error {
	dim, err := checkEnvelopeCaps(env)
	if err != nil {
		return err
	}
	if env.Family != st.family {
		return fmt.Errorf("%w: snapshot is %q, stream %q hosts %q",
			pricing.ErrFamilyMismatch, env.Family, st.id, st.family)
	}
	if dim != st.dim {
		return fmt.Errorf("server: snapshot dimension %d, stream dimension %d", dim, st.dim)
	}
	tracker, err := restoredTracker(env)
	if err != nil {
		return err
	}
	// The round lock makes the poster swap and the tracker swap one
	// atomic step relative to Price/PriceBatch/Snapshot.
	st.trackMu.Lock()
	defer st.trackMu.Unlock()
	if err := st.poster.RestoreEnvelopeSnapshot(env); err != nil {
		return err
	}
	st.tracker = tracker
	return nil
}

// Stats reports the poster counters and regret bookkeeping. HasCounters
// distinguishes a poster that keeps no counters from one whose counters
// are all zero — previously the Counters status bool was silently
// dropped and such a poster reported indistinguishable zeros.
func (st *Stream) Stats() StatsResponse {
	counters, ok := st.poster.Counters()
	st.trackMu.Lock()
	reg := RegretStats{
		Rounds:            st.tracker.Rounds(),
		CumulativeRegret:  st.tracker.CumulativeRegret(),
		CumulativeValue:   st.tracker.CumulativeValue(),
		CumulativeRevenue: st.tracker.CumulativeRevenue(),
		RegretRatio:       st.tracker.RegretRatio(),
	}
	st.trackMu.Unlock()
	return StatsResponse{
		ID: st.id, Family: string(st.family), Dim: st.dim,
		Counters: counters, HasCounters: ok, Regret: reg,
	}
}

// DefaultShards is the registry shard count used by NewRegistry(0). With
// FNV-1a placement, 32 shards keep per-shard lock hold times negligible
// well past a hundred concurrent streams.
const DefaultShards = 32

// LifecycleObserver receives the registry's stream lifecycle events.
// Persistence hangs off these hooks: brokerd attaches a Persister so
// every create, restore, and delete is journaled before (write-ahead of)
// the in-memory commit.
//
// Callbacks run while the stream's shard write lock is held, so they
// are ordered exactly like the events themselves — a create's callback
// never races the same stream's delete callback. They must not call
// back into the registry (deadlock). The cost of that ordering is that
// a slow callback (e.g. a journal fsync under -fsync always) holds the
// write lock, stalling every operation on the shard — including the
// Registry.Get at the head of each pricing request for streams hashed
// there. Lifecycle events are rare next to pricing, and 1/DefaultShards
// of streams share the stall, so the trade is deliberate; observers
// should still keep callbacks as short as durability allows.
//
// An error vetoes the event: the registry returns it to the caller and
// the in-memory commit does not happen (for in-place restores, which
// mutate an existing stream before the callback, the restore itself
// stands — see GetOrRestore).
type LifecycleObserver interface {
	// StreamCreated fires before a newly created stream becomes visible.
	StreamCreated(st *Stream) error
	// StreamRestored fires after a snapshot restore, both the fresh-ID
	// path (before the stream becomes visible) and the in-place path.
	StreamRestored(st *Stream) error
	// StreamDeleted fires before the stream is removed.
	StreamDeleted(id string) error
}

// Registry holds the live streams, sharded by FNV-1a hash of the stream
// ID. Shard locks are only held for map operations — never while a
// mechanism prices — so a hot stream slows down nobody else.
type Registry struct {
	shards []registryShard

	// obs holds the optional lifecycle observer as an obsHolder (an
	// atomic.Value needs one consistent concrete type).
	obs atomic.Value
}

// obsHolder boxes the observer interface for atomic.Value.
type obsHolder struct{ obs LifecycleObserver }

// SetObserver installs the lifecycle observer. Install it before serving
// traffic (and after boot-time recovery, so replayed streams are not
// re-journaled); events that ran before the observer was installed are
// not replayed.
func (r *Registry) SetObserver(obs LifecycleObserver) { r.obs.Store(obsHolder{obs}) }

// observer returns the installed observer, or nil.
func (r *Registry) observer() LifecycleObserver {
	if h, ok := r.obs.Load().(obsHolder); ok {
		return h.obs
	}
	return nil
}

type registryShard struct {
	mu      sync.RWMutex
	streams map[string]*Stream
}

// NewRegistry builds a registry with the given shard count (0 picks
// DefaultShards).
func NewRegistry(shards int) *Registry {
	if shards <= 0 {
		shards = DefaultShards
	}
	r := &Registry{shards: make([]registryShard, shards)}
	for i := range r.shards {
		r.shards[i].streams = make(map[string]*Stream)
	}
	return r
}

func (r *Registry) shardIndex(id string) int {
	h := fnv.New32a()
	h.Write([]byte(id))
	return int(h.Sum32() % uint32(len(r.shards)))
}

func (r *Registry) shard(id string) *registryShard {
	return &r.shards[r.shardIndex(id)]
}

// ShardIndex exposes the stream's shard placement so batch callers can
// group work by shard before fanning out.
func (r *Registry) ShardIndex(id string) int { return r.shardIndex(id) }

// Create registers a new stream; it fails if the ID is taken, or if the
// lifecycle observer refuses the event (e.g. the journal append failed —
// the stream then never becomes visible, so a client's 5xx is honest:
// nothing was created).
func (r *Registry) Create(req CreateStreamRequest) (*Stream, error) {
	st, err := newStream(req)
	if err != nil {
		return nil, err
	}
	sh := r.shard(req.ID)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if _, ok := sh.streams[req.ID]; ok {
		return nil, fmt.Errorf("%w: %q", ErrStreamExists, req.ID)
	}
	if obs := r.observer(); obs != nil {
		if err := obs.StreamCreated(st); err != nil {
			return nil, fmt.Errorf("%w: created stream %q: %v", ErrPersist, req.ID, err)
		}
	}
	sh.streams[req.ID] = st
	return st, nil
}

// Get returns the stream with the given ID.
func (r *Registry) Get(id string) (*Stream, error) {
	sh := r.shard(id)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	st, ok := sh.streams[id]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrStreamNotFound, id)
	}
	return st, nil
}

// GetOrRestore returns the existing stream after restoring the envelope
// into it, or registers a new stream rebuilt from the envelope. The
// shard lock is held across the in-place restore so a concurrent Delete
// cannot orphan the stream between lookup and restore.
//
// On the in-place path the restore is applied before the observer fires
// (the event describes the restored stream), so an observer error leaves
// the in-memory restore in place; the returned error tells the caller
// the new state may not be durable yet — the next checkpoint pass
// re-persists it.
func (r *Registry) GetOrRestore(id string, env *pricing.Envelope) (*Stream, bool, error) {
	sh := r.shard(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if st, ok := sh.streams[id]; ok {
		if err := st.Restore(env); err != nil {
			return st, false, err
		}
		if obs := r.observer(); obs != nil {
			if err := obs.StreamRestored(st); err != nil {
				return st, false, fmt.Errorf("%w: stream %q restored in memory but not journaled: %v", ErrPersist, id, err)
			}
		}
		return st, false, nil
	}
	st, err := restoredStream(id, env)
	if err != nil {
		return nil, false, err
	}
	if obs := r.observer(); obs != nil {
		if err := obs.StreamRestored(st); err != nil {
			return nil, false, fmt.Errorf("%w: restored stream %q: %v", ErrPersist, id, err)
		}
	}
	sh.streams[id] = st
	return st, true, nil
}

// Delete removes a stream. Unless force is set, it refuses to remove a
// stream whose two-phase round is pending feedback — deleting then would
// silently discard the buyer's in-flight decision, the same hazard
// RestoreSnapshot guards against.
//
// The probe reads SyncPoster's lock-free pending shadow (exact — it is
// maintained under the pricing lock), so it can run under the shard
// lock, atomically with the removal, without ever waiting on an
// in-flight pricing round. A quote concurrent with the delete can
// still open its round just after the probe and lose its feedback —
// the unavoidable case of a caller quoting through a *Stream obtained
// before the delete completed.
func (r *Registry) Delete(id string, force bool) error {
	sh := r.shard(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	st, ok := sh.streams[id]
	if !ok {
		return fmt.Errorf("%w: %q", ErrStreamNotFound, id)
	}
	if !force && st.Pending() {
		return fmt.Errorf("%w: %q", ErrStreamPending, id)
	}
	if obs := r.observer(); obs != nil {
		if err := obs.StreamDeleted(id); err != nil {
			return fmt.Errorf("%w: delete of stream %q: %v", ErrPersist, id, err)
		}
	}
	delete(sh.streams, id)
	return nil
}

// Streams snapshots the live stream set (no particular order). The
// pointers stay valid after the shard locks are released — a stream
// deleted concurrently simply stops receiving traffic — so callers like
// the checkpointer can iterate thousands of streams without holding any
// registry lock.
func (r *Registry) Streams() []*Stream {
	out := make([]*Stream, 0, 64)
	for i := range r.shards {
		sh := &r.shards[i]
		sh.mu.RLock()
		for _, st := range sh.streams {
			out = append(out, st)
		}
		sh.mu.RUnlock()
	}
	return out
}

// Visit runs f(st) for the stream with the given ID while holding its
// shard read lock. Because Delete journals and removes under the shard
// write lock, work done inside f is ordered strictly before or strictly
// after any delete of the stream — the checkpointer uses this to make
// "snapshot then persist" atomic against deletion, so a checkpoint can
// never resurrect a deleted stream in the store.
func (r *Registry) Visit(id string, f func(*Stream) error) error {
	sh := r.shard(id)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	st, ok := sh.streams[id]
	if !ok {
		return fmt.Errorf("%w: %q", ErrStreamNotFound, id)
	}
	return f(st)
}

// Len counts the hosted streams.
func (r *Registry) Len() int {
	var n int
	for i := range r.shards {
		r.shards[i].mu.RLock()
		n += len(r.shards[i].streams)
		r.shards[i].mu.RUnlock()
	}
	return n
}

// List returns stream infos sorted by ID.
func (r *Registry) List() []StreamInfo {
	var out []StreamInfo
	for i := range r.shards {
		r.shards[i].mu.RLock()
		for _, st := range r.shards[i].streams {
			out = append(out, streamInfo(st))
		}
		r.shards[i].mu.RUnlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// isFinite reports whether v is neither NaN nor ±Inf.
func isFinite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }
