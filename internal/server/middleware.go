package server

import (
	"encoding/json"
	"net/http"
	"time"

	"datamarket/api"
	"datamarket/api/binary"
)

// withAPIHeaders stamps every response with the server build and the
// wire contract version, so clients, proxies, and probes can identify
// the API without parsing a body. It also rewrites the mux's own
// plain-text 404 ("page not found") and 405 ("method not allowed")
// responses into the JSON error envelope, upholding the contract that
// every non-2xx body is machine-readable.
func withAPIHeaders(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hd := w.Header()
		hd.Set("Server", "brokerd/"+Version)
		hd.Set("X-Api-Version", api.APIVersion)
		// Advertise the binary codec so SDKs can switch the hot calls
		// off JSON; the value is the highest codec version spoken.
		hd.Set(binary.ProtoHeader, protoVersion)
		h.ServeHTTP(&envelopeWriter{ResponseWriter: w}, r)
	})
}

// envelopeWriter intercepts 404/405 responses the handlers did not
// produce themselves. The server's own error paths always set the JSON
// content type before writing the status (writeJSON), so anything else
// at those statuses is http.ServeMux speaking plain text — replace the
// body with the standard envelope and swallow the mux's text.
type envelopeWriter struct {
	http.ResponseWriter
	intercepted bool
}

func (w *envelopeWriter) WriteHeader(status int) {
	if (status == http.StatusNotFound || status == http.StatusMethodNotAllowed) &&
		w.Header().Get("Content-Type") != "application/json" {
		w.intercepted = true
		detail := api.ErrorDetail{Code: api.CodeNotFound, Message: "no such route"}
		if status == http.StatusMethodNotAllowed {
			// The mux already set the Allow header; keep it.
			detail = api.ErrorDetail{Code: api.CodeMethodNotAllowed, Message: "method not allowed"}
		}
		w.Header().Set("Content-Type", "application/json")
		w.Header().Del("X-Content-Type-Options")
		w.ResponseWriter.WriteHeader(status)
		json.NewEncoder(w.ResponseWriter).Encode(api.ErrorResponse{Error: detail})
		return
	}
	w.ResponseWriter.WriteHeader(status)
}

func (w *envelopeWriter) Write(b []byte) (int, error) {
	if w.intercepted {
		// Drop the mux's plain-text body; the envelope already went out.
		return len(b), nil
	}
	return w.ResponseWriter.Write(b)
}

// statusRecorder captures the response status for the request log.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(status int) {
	r.status = status
	r.ResponseWriter.WriteHeader(status)
}

func (r *statusRecorder) Write(b []byte) (int, error) {
	if r.status == 0 {
		r.status = http.StatusOK
	}
	return r.ResponseWriter.Write(b)
}

// WithRequestLog wraps a handler with one log line per request — method,
// path, status, latency — so recovery and checkpoint activity (and
// everything else) is observable in ops. brokerd enables it under
// -verbose; logf is log.Printf-shaped.
func WithRequestLog(h http.Handler, logf func(format string, args ...any)) http.Handler {
	// Route response-encode failures to the same logger, so a truncated
	// response is observable next to the request that produced it.
	encodeLogf.Store(logf)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rec := &statusRecorder{ResponseWriter: w}
		start := time.Now()
		h.ServeHTTP(rec, r)
		status := rec.status
		if status == 0 {
			status = http.StatusOK
		}
		logf("%s %s %d %.2fms", r.Method, r.URL.Path, status,
			float64(time.Since(start))/float64(time.Millisecond))
	})
}
