package server

import (
	"net/http"
	"time"
)

// statusRecorder captures the response status for the request log.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(status int) {
	r.status = status
	r.ResponseWriter.WriteHeader(status)
}

func (r *statusRecorder) Write(b []byte) (int, error) {
	if r.status == 0 {
		r.status = http.StatusOK
	}
	return r.ResponseWriter.Write(b)
}

// WithRequestLog wraps a handler with one log line per request — method,
// path, status, latency — so recovery and checkpoint activity (and
// everything else) is observable in ops. brokerd enables it under
// -verbose; logf is log.Printf-shaped.
func WithRequestLog(h http.Handler, logf func(format string, args ...any)) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rec := &statusRecorder{ResponseWriter: w}
		start := time.Now()
		h.ServeHTTP(rec, r)
		status := rec.status
		if status == 0 {
			status = http.StatusOK
		}
		logf("%s %s %d %.2fms", r.Method, r.URL.Path, status,
			float64(time.Since(start))/float64(time.Millisecond))
	})
}
