package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"datamarket/api"
	"datamarket/internal/pricing"
	"datamarket/internal/store"
)

// declaredErrorCodes parses the api package source and returns the
// string value of every ErrorCode constant. Discovering the set from
// source (rather than hardcoding it here) is the point: adding a code
// to api/errors.go without teaching the server to produce it fails
// this test, not a code review.
func declaredErrorCodes(t *testing.T) []api.ErrorCode {
	t.Helper()
	dir := filepath.Join("..", "..", "api")
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("reading api package dir: %v", err)
	}
	fset := token.NewFileSet()
	var codes []api.ErrorCode
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") || strings.HasSuffix(e.Name(), "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.SkipObjectResolution)
		if err != nil {
			t.Fatalf("parsing %s: %v", e.Name(), err)
		}
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.CONST {
				continue
			}
			// Track the type across specs so implicit-type
			// continuation lines in a const block still count.
			carried := false
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				if vs.Type != nil {
					id, ok := vs.Type.(*ast.Ident)
					carried = ok && id.Name == "ErrorCode"
				}
				if !carried || len(vs.Values) != len(vs.Names) {
					continue
				}
				for _, v := range vs.Values {
					lit, ok := v.(*ast.BasicLit)
					if !ok || lit.Kind != token.STRING {
						continue
					}
					s, err := strconv.Unquote(lit.Value)
					if err != nil {
						t.Fatalf("unquoting %s: %v", lit.Value, err)
					}
					codes = append(codes, api.ErrorCode(s))
				}
			}
		}
	}
	return codes
}

// TestErrorCodeRoundTrip is the inverse of TestErrorEnvelopeCodes:
// instead of driving requests and checking the codes that come out, it
// enumerates every code the api package declares and demands a
// producing path on the server side — a sentinel routed through
// errorStatus, a status routed through writeStatusError, or a mux
// fallback rewritten by envelopeWriter. A code with no producer is
// dead wire surface: clients are told to branch on a value the server
// can never send.
func TestErrorCodeRoundTrip(t *testing.T) {
	// Sentinel-backed codes: errorStatus must map each sentinel — bare
	// and wrapped — to its code.
	sentinels := map[api.ErrorCode]error{
		api.CodePersistence:    ErrPersist,
		api.CodeStreamNotFound: ErrStreamNotFound,
		api.CodeMarketNotFound: ErrMarketNotFound,
		api.CodeStreamExists:   ErrStreamExists,
		api.CodeMarketExists:   ErrMarketExists,
		api.CodeStreamPending:  ErrStreamPending,
		api.CodeUnavailable:    store.ErrClosed,
		api.CodeFamilyMismatch: pricing.ErrFamilyMismatch,
		api.CodeRoundPending:   pricing.ErrPendingRound,
		api.CodeNoRoundPending: pricing.ErrNoPendingRound,
		api.CodeInvalidRequest: errors.New("any unrecognized validation error"),
	}
	for code, err := range sentinels {
		if _, got := errorStatus(err); got != code {
			t.Errorf("errorStatus(%v) = %q, want %q", err, got, code)
		}
		wrapped := fmt.Errorf("create stream: %w", err)
		if _, got := errorStatus(wrapped); got != code {
			t.Errorf("errorStatus(wrapped %v) = %q, want %q", err, got, code)
		}
	}

	// Status-backed codes: writeStatusError's status → code table.
	statusBacked := map[api.ErrorCode]int{
		api.CodeBodyTooLarge: http.StatusRequestEntityTooLarge,
		api.CodeInternal:     http.StatusInternalServerError,
	}
	for code, status := range statusBacked {
		rec := httptest.NewRecorder()
		writeStatusError(rec, status, "boom")
		var resp api.ErrorResponse
		if err := json.NewDecoder(rec.Body).Decode(&resp); err != nil {
			t.Fatalf("decoding writeStatusError(%d) body: %v", status, err)
		}
		if resp.Error.Code != code {
			t.Errorf("writeStatusError(%d) code = %q, want %q", status, resp.Error.Code, code)
		}
	}

	// Route-backed codes: the envelopeWriter middleware rewrites the
	// mux's plain-text 404/405 into the envelope.
	routeBacked := map[api.ErrorCode]int{
		api.CodeNotFound:         http.StatusNotFound,
		api.CodeMethodNotAllowed: http.StatusMethodNotAllowed,
	}
	for code, status := range routeBacked {
		rec := httptest.NewRecorder()
		ew := &envelopeWriter{ResponseWriter: rec}
		ew.WriteHeader(status)
		var resp api.ErrorResponse
		if err := json.NewDecoder(rec.Body).Decode(&resp); err != nil {
			t.Fatalf("decoding envelopeWriter(%d) body: %v", status, err)
		}
		if resp.Error.Code != code {
			t.Errorf("envelopeWriter(%d) code = %q, want %q", status, resp.Error.Code, code)
		}
	}

	// Completeness: every declared code has exactly one of the three
	// producer kinds above.
	declared := declaredErrorCodes(t)
	if len(declared) < 10 {
		t.Fatalf("discovered only %d ErrorCode constants in the api package — the source scan is broken", len(declared))
	}
	seen := make(map[api.ErrorCode]bool, len(declared))
	for _, code := range declared {
		if seen[code] {
			t.Errorf("api declares ErrorCode %q twice", code)
		}
		seen[code] = true
		_, isSentinel := sentinels[code]
		_, isStatus := statusBacked[code]
		_, isRoute := routeBacked[code]
		if !isSentinel && !isStatus && !isRoute {
			t.Errorf("api.ErrorCode %q has no producing path in the server (no sentinel in errorStatus, no writeStatusError status, no mux rewrite) — dead wire surface", code)
		}
	}
	// And the reverse: this test's tables must not invent codes the
	// api package no longer declares.
	for code := range sentinels {
		if !seen[code] {
			t.Errorf("test maps sentinel to undeclared code %q", code)
		}
	}
	for code := range statusBacked {
		if !seen[code] {
			t.Errorf("test maps status to undeclared code %q", code)
		}
	}
	for code := range routeBacked {
		if !seen[code] {
			t.Errorf("test maps route to undeclared code %q", code)
		}
	}
}
