package server

// This file wires the registry's stream lifecycle to the persistence
// subsystem (internal/store). The paper's mechanism is stateful online
// learning — the regret guarantee depends on the cuts accumulated over
// the whole horizon — so brokerd must not forget a stream's state on
// restart. The Persister journals every lifecycle event write-ahead of
// the in-memory commit, runs a background checkpointer that re-persists
// only streams whose poster revision moved since their last persist, and
// replays the store back through Registry.GetOrRestore at boot.

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"datamarket/api"
	"datamarket/internal/pricing"
	"datamarket/internal/store"
)

// DefaultCheckpointInterval is the background checkpointer period used
// when PersistConfig.Interval is zero.
const DefaultCheckpointInterval = 5 * time.Second

// PersistConfig configures a Persister.
type PersistConfig struct {
	// Interval is the background checkpoint period; 0 picks
	// DefaultCheckpointInterval, negative disables the background loop
	// (explicit Checkpoint calls still work).
	Interval time.Duration
	// Logf, when set, receives recovery and checkpoint activity lines
	// (brokerd routes log.Printf here under -verbose).
	Logf func(format string, args ...any)
}

// CheckpointStats reports one checkpoint pass; the wire form lives in
// the public api package.
type CheckpointStats = api.CheckpointStats

// Persister connects a Registry to a Store: it is the registry's
// LifecycleObserver, the background checkpointer, and the boot-time
// recovery driver. Wire it with AttachPersistence, or manually as
//
//	p := NewPersister(reg, st, cfg)
//	n, err := p.Recover()       // replay the store into the registry
//	reg.SetObserver(p)          // then journal new lifecycle events
//	p.Start()                   // then checkpoint in the background
//	...
//	p.Shutdown()                // final checkpoint + compact + close
type Persister struct {
	reg      *Registry
	st       store.Store
	interval time.Duration
	logf     func(string, ...any)

	// passMu serializes checkpoint passes (timer vs admin endpoint vs
	// shutdown); revMu guards the revision table and last-pass stats and
	// is only held for map operations.
	passMu    sync.Mutex
	revMu     sync.Mutex
	lastRev   map[string]uint64
	lastPass  *CheckpointStats
	recovered int

	stop chan struct{}
	done chan struct{}
}

// NewPersister builds a Persister over an open store. It performs no I/O
// until Recover or the first checkpoint.
func NewPersister(reg *Registry, st store.Store, cfg PersistConfig) *Persister {
	interval := cfg.Interval
	if interval == 0 {
		interval = DefaultCheckpointInterval
	}
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	return &Persister{
		reg:      reg,
		st:       st,
		interval: interval,
		logf:     logf,
		lastRev:  make(map[string]uint64),
	}
}

// AttachPersistence performs the full wiring: recover the store into the
// registry, install the lifecycle observer, and start the background
// checkpointer. It returns the Persister and the number of recovered
// streams.
func AttachPersistence(reg *Registry, st store.Store, cfg PersistConfig) (*Persister, int, error) {
	p := NewPersister(reg, st, cfg)
	n, err := p.Recover()
	if err != nil {
		return nil, 0, err
	}
	reg.SetObserver(p)
	p.Start()
	return p, n, nil
}

// Recover replays the store's live set into the registry through
// GetOrRestore. Call it before SetObserver — replayed streams must not
// be re-journaled as fresh lifecycle events. A stream that fails to
// restore fails recovery loudly: silently dropping it would be exactly
// the state loss the subsystem exists to prevent.
//
// Replay runs in parallel, one worker per registry shard: restores
// within a shard serialize on the shard's lock anyway, while distinct
// shards rebuild their posters (the expensive part — envelope decode +
// mechanism reconstruction) concurrently. Recovery wall time therefore
// scales with the largest shard, not the total stream count.
func (p *Persister) Recover() (int, error) {
	entries, err := p.st.Load()
	if err != nil {
		return 0, fmt.Errorf("server: loading store: %w", err)
	}
	groups := make(map[int][]store.Entry)
	for _, e := range entries {
		i := p.reg.ShardIndex(e.ID)
		groups[i] = append(groups[i], e)
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > len(groups) {
		workers = len(groups)
	}
	var (
		wg    sync.WaitGroup
		sem   = make(chan struct{}, max(workers, 1))
		errMu sync.Mutex
		errs  []error
	)
	for _, group := range groups {
		wg.Add(1)
		sem <- struct{}{}
		go func(group []store.Entry) {
			defer wg.Done()
			defer func() { <-sem }()
			// Accumulate revisions locally and publish them under one
			// revMu acquisition instead of paying a lock handoff per
			// stream (and never hold revMu across GetOrRestore).
			revs := make(map[string]uint64, len(group))
			for _, e := range group {
				st, _, err := p.reg.GetOrRestore(e.ID, e.Env)
				if err != nil {
					errMu.Lock()
					errs = append(errs, fmt.Errorf("server: recovering stream %q: %w", e.ID, err))
					errMu.Unlock()
					return
				}
				revs[e.ID] = st.Revision()
			}
			p.revMu.Lock()
			for id, rev := range revs {
				p.lastRev[id] = rev
			}
			p.revMu.Unlock()
		}(group)
	}
	wg.Wait()
	if len(errs) > 0 {
		return 0, errors.Join(errs...)
	}
	p.recovered = len(entries)
	if len(entries) > 0 {
		p.logf("recovered %d stream(s) from store", len(entries))
	}
	return len(entries), nil
}

// Start launches the background checkpoint loop (a no-op for a negative
// interval).
func (p *Persister) Start() {
	if p.interval < 0 || p.stop != nil {
		return
	}
	p.stop = make(chan struct{})
	p.done = make(chan struct{})
	go p.loop()
}

func (p *Persister) loop() {
	defer close(p.done)
	t := time.NewTicker(p.interval)
	defer t.Stop()
	for {
		select {
		case <-p.stop:
			return
		case <-t.C:
			stats := p.Checkpoint()
			if stats.Persisted > 0 || stats.Errors > 0 {
				p.logf("checkpoint: %d/%d stream(s) persisted, %d clean, %d pending, %d error(s) in %.1fms",
					stats.Persisted, stats.Streams, stats.SkippedClean, stats.SkippedPending,
					stats.Errors, stats.DurationMS)
			}
		}
	}
}

// Checkpoint runs one pass over the live streams, persisting those whose
// revision moved since their last persist. Passes are serialized; the
// pass holds no registry-wide lock, only each dirty stream's shard read
// lock while that stream is snapshotted and journaled. Concurrent reads
// (pricing lookups) share that lock — but if a lifecycle write queues on
// the shard mid-journal, Go's RWMutex holds back new readers too, so
// pricing on ~1/shards of streams can stall behind one dirty stream's
// journal write (worst case an fsync, under -fsync always). That is the
// price of making persist atomic against delete; clean streams take no
// lock at all, which is what keeps idle passes microseconds.
func (p *Persister) Checkpoint() CheckpointStats {
	p.passMu.Lock()
	defer p.passMu.Unlock()
	start := time.Now()
	streams := p.reg.Streams()
	stats := CheckpointStats{Streams: len(streams)}
	pendings := make([]pendingPersist, 0, 64)
	for _, st := range streams {
		switch pp, err := p.checkpointStream(st); {
		case err == nil:
			pendings = append(pendings, pp)
		case errors.Is(err, errCheckpointClean):
			stats.SkippedClean++
		case errors.Is(err, errCheckpointPending):
			// Between-rounds snapshots only; retried next pass.
			stats.SkippedPending++
		case errors.Is(err, ErrStreamNotFound):
			// Deleted mid-pass: its tombstone is already journaled.
		default:
			stats.Errors++
			p.logf("checkpoint: stream %q: %v", st.ID(), err)
		}
	}
	// Every dirty stream's delta is enqueued; now wait for the shared
	// group commits. The whole pass costs a handful of fsyncs instead of
	// one per dirty stream, and no shard lock is held while any of them
	// run — the locks were released as soon as each delta was queued.
	for _, pp := range pendings {
		if err := pp.tkt.Wait(); err != nil {
			stats.Errors++
			p.logf("checkpoint: stream %q: %v", pp.id, err)
			// Undo the optimistic revision record so the stream is
			// re-persisted next pass — unless a newer persist of the same
			// stream already landed.
			p.revMu.Lock()
			if p.lastRev[pp.id] == pp.rev {
				delete(p.lastRev, pp.id)
			}
			p.revMu.Unlock()
			continue
		}
		stats.Persisted++
	}
	stats.DurationMS = float64(time.Since(start)) / float64(time.Millisecond)
	p.revMu.Lock()
	s := stats
	p.lastPass = &s
	ids := make([]string, 0, len(p.lastRev))
	for id := range p.lastRev {
		ids = append(ids, id)
	}
	p.revMu.Unlock()
	// Prune revision entries for streams that no longer exist:
	// checkpointStream records a revision after leaving the shard lock,
	// so it can race a concurrent delete's removal and strand an entry.
	// The store itself is correct either way (the tombstone is
	// journaled); this just keeps the map from leaking on delete-heavy
	// workloads. Membership is checked outside revMu — observer
	// callbacks take shard-then-revMu, so revMu-then-shard here would
	// deadlock. Racing a concurrent re-create can at worst drop a live
	// entry, costing one redundant persist next pass.
	for _, id := range ids {
		if _, err := p.reg.Get(id); err != nil {
			p.revMu.Lock()
			delete(p.lastRev, id)
			p.revMu.Unlock()
		}
	}
	// Auto-compaction rides the pass boundary, never an individual
	// journal append — here no registry lock is held, so rewriting the
	// whole live set stalls nothing but the next pass.
	//lint:ignore lockdiscipline passMu exists to serialize passes, and compaction riding the pass boundary under it is the design; no registry lock is held here
	switch compacted, err := p.st.MaybeCompact(); {
	case err != nil:
		p.logf("checkpoint: compacting store: %v", err)
	case compacted:
		p.logf("checkpoint: journal compacted")
	}
	return stats
}

// Sentinel outcomes of checkpointStream.
var (
	errCheckpointClean   = errors.New("checkpoint: unchanged")
	errCheckpointPending = errors.New("checkpoint: round pending")
)

// pendingPersist is one enqueued checkpoint delta awaiting its group
// commit; the pass waits on the ticket after visiting every stream.
type pendingPersist struct {
	id  string
	rev uint64
	tkt *store.Ticket
}

// checkpointStream enqueues one stream's delta if its revision moved,
// returning the commit ticket for the pass to wait on. The revision is
// read before the snapshot: a round landing in between makes the
// snapshot newer than the recorded revision, which costs one redundant
// persist next pass — never a lost one. Running inside Registry.Visit
// orders the persist strictly against any concurrent delete of the same
// stream, and the pointer-identity check guards the delete-then-recreate
// race: Visit resolves the ID fresh, and recording the old stream's
// revision against a new stream's ID would silently gate the new
// stream's checkpoints off forever.
//
// Only the enqueue happens under the shard lock (PutAsync returns
// without any file I/O); the commit itself — the write and fsync — runs
// on the store's committer goroutine after the lock is gone, so pricing
// on this shard never stalls behind the disk.
func (p *Persister) checkpointStream(st *Stream) (pendingPersist, error) {
	id := st.ID()
	rev := st.Revision()
	p.revMu.Lock()
	last, seen := p.lastRev[id]
	p.revMu.Unlock()
	if seen && last == rev {
		return pendingPersist{}, errCheckpointClean
	}
	var pp pendingPersist
	err := p.reg.Visit(id, func(cur *Stream) error {
		if cur != st {
			// The ID now names a different stream (deleted and
			// recreated mid-pass). Its create event already persisted
			// it; nothing to do for the dead one.
			return errCheckpointClean
		}
		if st.Pending() {
			return errCheckpointPending
		}
		env, err := st.Snapshot()
		if err != nil {
			// A quote can open a round between the Pending probe and the
			// snapshot (quotes take no shard lock); that is the same
			// benign retry-next-pass condition, not a persist failure.
			if errors.Is(err, pricing.ErrPendingRound) {
				return errCheckpointPending
			}
			return err
		}
		pp = pendingPersist{id: id, rev: rev, tkt: p.st.PutAsync(store.Entry{ID: id, Rev: rev, Env: env})}
		// Record the revision while the shard lock still pins identity:
		// written after Visit returns, it could overwrite the lastRev of
		// a stream deleted and recreated under this ID in the gap. The
		// record is optimistic — the delta is only enqueued — and the
		// pass deletes it again if the commit fails.
		//lint:ignore lockdiscipline documented lock order shard → revMu, same as the observer callbacks; revMu is a leaf lock that never calls out
		p.revMu.Lock()
		p.lastRev[id] = rev
		p.revMu.Unlock()
		return nil
	})
	return pp, err
}

// StreamCreated journals the new stream's initial state (write-ahead:
// the stream is not yet visible, so its poster cannot be mid-round).
func (p *Persister) StreamCreated(st *Stream) error { return p.persistStream(st) }

// StreamRestored journals the restored state.
func (p *Persister) StreamRestored(st *Stream) error { return p.persistStream(st) }

func (p *Persister) persistStream(st *Stream) error {
	rev := st.Revision()
	env, err := st.Snapshot()
	if err != nil {
		return err
	}
	if err := p.st.Put(store.Entry{ID: st.ID(), Rev: rev, Env: env}); err != nil {
		return err
	}
	p.revMu.Lock()
	p.lastRev[st.ID()] = rev
	p.revMu.Unlock()
	return nil
}

// StreamDeleted journals the tombstone (write-ahead: the stream is
// removed from the registry only if the tombstone lands).
func (p *Persister) StreamDeleted(id string) error {
	if err := p.st.Delete(id); err != nil {
		return err
	}
	//lint:ignore lockdiscipline documented lock order shard → revMu (see the Persister field docs); revMu is a leaf lock that never calls out
	p.revMu.Lock()
	delete(p.lastRev, id)
	p.revMu.Unlock()
	return nil
}

// Status reports the persistence surface for GET /v1/admin/store.
func (p *Persister) Status() StoreStatusResponse {
	p.revMu.Lock()
	last := p.lastPass
	p.revMu.Unlock()
	st := p.st.Stats()
	resp := StoreStatusResponse{
		Configured:       true,
		RecoveredStreams: p.recovered,
		Store:            &st,
		LastCheckpoint:   last,
	}
	if p.interval > 0 {
		resp.CheckpointInterval = p.interval.String()
	}
	return resp
}

// Compact folds the store's journal tail into a fresh checkpoint file.
func (p *Persister) Compact() error { return p.st.Compact() }

// Stop halts the background loop without a final pass (tests; Shutdown
// is the production path). Safe to call twice.
func (p *Persister) Stop() {
	if p.stop == nil {
		return
	}
	close(p.stop)
	<-p.done
	p.stop = nil
}

// Shutdown is the graceful exit: stop the loop, run a final checkpoint
// pass so every changed stream is durable, compact, and close the store.
// A stream still holding an unanswered two-phase quote cannot be
// snapshotted — its rounds since its last persist are not captured —
// so Shutdown reports such streams as an error rather than pretending
// the exit was loss-free.
func (p *Persister) Shutdown() error {
	p.Stop()
	stats := p.Checkpoint()
	p.logf("final checkpoint: %d/%d stream(s) persisted, %d pending, %d error(s)",
		stats.Persisted, stats.Streams, stats.SkippedPending, stats.Errors)
	var err error
	if stats.Errors > 0 {
		err = fmt.Errorf("server: final checkpoint failed for %d stream(s)", stats.Errors)
	} else if stats.SkippedPending > 0 {
		err = fmt.Errorf("server: final checkpoint could not capture %d stream(s) with a round pending feedback",
			stats.SkippedPending)
	}
	if cerr := p.st.Compact(); cerr != nil && err == nil {
		err = fmt.Errorf("server: final compaction: %w", cerr)
	}
	if cerr := p.st.Close(); cerr != nil && err == nil {
		err = cerr
	}
	return err
}

var _ LifecycleObserver = (*Persister)(nil)
