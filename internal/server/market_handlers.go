package server

import (
	"fmt"
	"net/http"
	"strconv"

	"datamarket/internal/market"
	"datamarket/internal/privacy"
)

// tradeResult renders one settled transaction in wire form.
func tradeResult(tx market.Transaction) TradeResult {
	return TradeResult{
		Round:        tx.Round,
		Reserve:      tx.Reserve,
		Posted:       tx.Posted,
		Decision:     tx.Decision.String(),
		Sold:         tx.Sold,
		Revenue:      tx.Revenue,
		Compensation: tx.Compensation,
		Profit:       tx.Profit,
		Answer:       tx.Answer,
		Regret:       tx.Regret,
	}
}

// marketQuery validates one trade request against the market and builds
// the underlying noisy linear query.
func marketQuery(m *HostedMarket, req TradeRequest) (market.Query, error) {
	if len(req.Weights) != m.owners {
		return market.Query{}, fmt.Errorf("query has %d weights, market has %d owners",
			len(req.Weights), m.owners)
	}
	if !isFinite(req.Valuation) {
		return market.Query{}, fmt.Errorf("valuation must be finite")
	}
	// The request's weight slice is private to this trade and the trade
	// finishes before the request body (or its pooled decode scratch) is
	// recycled, so the query can alias it instead of cloning: that clone
	// was the last O(owners) allocation on the serving hot path.
	q, err := privacy.NewLinearQueryShared(req.Weights, req.NoiseVariance)
	if err != nil {
		return market.Query{}, err
	}
	return market.Query{Q: q, Valuation: req.Valuation}, nil
}

func (s *Server) handleCreateMarket(w http.ResponseWriter, r *http.Request) {
	var req CreateMarketRequest
	if !readJSON(w, r, &req) {
		return
	}
	m, err := s.markets.Create(req)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, m.Info())
}

func (s *Server) handleListMarkets(w http.ResponseWriter, _ *http.Request) {
	markets := s.markets.List()
	if markets == nil {
		markets = []MarketInfo{}
	}
	writeJSON(w, http.StatusOK, ListMarketsResponse{Markets: markets})
}

func (s *Server) handleMarketInfo(w http.ResponseWriter, r *http.Request) {
	m, ok := s.market(w, r)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, m.Info())
}

func (s *Server) handleDeleteMarket(w http.ResponseWriter, r *http.Request) {
	if err := s.markets.Delete(r.PathValue("id")); err != nil {
		writeError(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleTrade(w http.ResponseWriter, r *http.Request) {
	m, ok := s.market(w, r)
	if !ok {
		return
	}
	var req TradeRequest
	if !readJSON(w, r, &req) {
		return
	}
	q, err := marketQuery(m, req)
	if err != nil {
		writeError(w, err)
		return
	}
	tx, err := m.broker.Trade(q)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, TradeResponse{TradeResult: tradeResult(tx)})
}

// handleTradeBatch settles k trades in one request. Invalid trades fail
// individually; the valid ones run the full prepare→price→settle
// pipeline, sharing one pricing-lock acquisition when the market's
// family supports batch pricing. Results align index-for-index with
// request trades.
func (s *Server) handleTradeBatch(w http.ResponseWriter, r *http.Request) {
	m, ok := s.market(w, r)
	if !ok {
		return
	}
	ws := getWire()
	defer putWire(ws)
	var req TradeBatchRequest
	if !s.readHot(ws, w, r, &req) {
		return
	}
	if !checkBatchSize(w, len(req.Trades)) {
		return
	}
	results := make([]TradeBatchResult, len(req.Trades))
	queries := make([]market.Query, 0, len(req.Trades))
	idx := make([]int, 0, len(req.Trades)) // request slot of each valid query
	for i, t := range req.Trades {
		q, err := marketQuery(m, t)
		if err != nil {
			results[i] = TradeBatchResult{Error: err.Error()}
			continue
		}
		queries = append(queries, q)
		idx = append(idx, i)
	}
	for k, o := range m.broker.TradeBatchOutcomes(queries) {
		if o.Err != nil {
			results[idx[k]] = TradeBatchResult{Error: o.Err.Error()}
			continue
		}
		results[idx[k]] = TradeBatchResult{TradeResult: tradeResult(o.Tx)}
	}
	ws.writeHot(w, r, http.StatusOK, &TradeBatchResponse{Results: results})
}

// handleLedger pages through the market's transaction ledger
// (?offset=&limit=; limit defaults to MaxBatchRounds and is capped
// there, so one response is bounded the same way one batch is).
func (s *Server) handleLedger(w http.ResponseWriter, r *http.Request) {
	m, ok := s.market(w, r)
	if !ok {
		return
	}
	offset, ok := queryInt(w, r, "offset", 0)
	if !ok {
		return
	}
	limit, ok := queryInt(w, r, "limit", MaxBatchRounds)
	if !ok {
		return
	}
	if limit <= 0 || limit > MaxBatchRounds {
		limit = MaxBatchRounds
	}
	txs, total := m.broker.LedgerSlice(offset, limit)
	entries := make([]TradeResult, len(txs))
	for i, tx := range txs {
		entries[i] = tradeResult(tx)
	}
	writeJSON(w, http.StatusOK, LedgerResponse{Offset: offset, Total: total, Entries: entries})
}

func (s *Server) handlePayouts(w http.ResponseWriter, r *http.Request) {
	m, ok := s.market(w, r)
	if !ok {
		return
	}
	payouts := m.broker.Payouts()
	writeJSON(w, http.StatusOK, PayoutsResponse{Payouts: payouts, Total: payouts.Sum()})
}

func (s *Server) handleMarketStats(w http.ResponseWriter, r *http.Request) {
	m, ok := s.market(w, r)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, m.Stats())
}

// market resolves the {id} path value, writing the error on failure.
func (s *Server) market(w http.ResponseWriter, r *http.Request) (*HostedMarket, bool) {
	m, err := s.markets.Get(r.PathValue("id"))
	if err != nil {
		writeError(w, err)
		return nil, false
	}
	return m, true
}

// queryInt parses an optional non-negative integer query parameter.
func queryInt(w http.ResponseWriter, r *http.Request, name string, def int) (int, bool) {
	raw := r.URL.Query().Get(name)
	if raw == "" {
		return def, true
	}
	v, err := strconv.Atoi(raw)
	if err != nil || v < 0 {
		writeStatusError(w, http.StatusBadRequest,
			fmt.Sprintf("query parameter %q must be a non-negative integer", name))
		return 0, false
	}
	return v, true
}
