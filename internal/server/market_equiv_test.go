package server

// HTTP-layer equivalence: trading through the hosted-market edge must
// produce bit-identical books to driving an identically-configured
// broker directly — the serving fast path (shared-weight queries, quote
// cache, batch settle) must not be observable in the results.

import (
	"net/http"
	"net/http/httptest"
	"testing"

	"datamarket/internal/market"
	"datamarket/internal/randx"
)

func TestHostedMarketMatchesLocalBroker(t *testing.T) {
	const (
		owners = 120
		rounds = 60
		batch  = 20
	)
	spec := CreateMarketRequest{
		ID: "equiv", Seed: 17, Horizon: 1000,
		Owners: make([]OwnerSpec, owners),
	}
	vals := randx.New(91).UniformVector(owners, 1, 5)
	for i := range spec.Owners {
		contract := ContractSpec{Type: "tanh", Rho: 1, Eta: 10}
		if i%4 == 0 {
			contract = ContractSpec{Type: "linear", Rho: 0.5}
		}
		spec.Owners[i] = OwnerSpec{Value: vals[i], Range: 4, Contract: contract}
	}

	srv := NewServer(nil)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	c := &client{t: t, base: ts.URL, http: ts.Client()}
	var info MarketInfo
	c.mustDo("POST", "/v1/markets", spec, &info, http.StatusCreated)

	local, err := newHostedMarket(spec)
	if err != nil {
		t.Fatal(err)
	}

	r := randx.New(92)
	mkTrade := func() TradeRequest {
		w := make([]float64, owners)
		for _, i := range r.Perm(owners)[:16] {
			w[i] = r.Normal(0, 1)
		}
		return TradeRequest{Weights: w, NoiseVariance: 1, Valuation: r.Uniform(0, 8)}
	}
	checkTx := func(round int, got TradeResult, tx market.Transaction) {
		t.Helper()
		want := tradeResult(tx)
		if got != want {
			t.Fatalf("round %d: HTTP result %+v != local %+v", round, got, want)
		}
	}

	// Interleave single trades (some repeated, so the server's quote
	// cache serves hits) with a batch, mirroring each step locally.
	repeat := mkTrade()
	for i := 0; i < rounds; i++ {
		req := repeat
		if i%3 != 0 {
			req = mkTrade()
		}
		var resp TradeResponse
		c.mustDo("POST", "/v1/markets/equiv/trade", req, &resp, http.StatusOK)
		q, err := marketQuery(local, req)
		if err != nil {
			t.Fatal(err)
		}
		tx, err := local.broker.Trade(q)
		if err != nil {
			t.Fatal(err)
		}
		checkTx(i, resp.TradeResult, tx)
	}
	trades := make([]TradeRequest, batch)
	queries := make([]market.Query, batch)
	for i := range trades {
		trades[i] = mkTrade()
		q, err := marketQuery(local, trades[i])
		if err != nil {
			t.Fatal(err)
		}
		queries[i] = q
	}
	var batchResp TradeBatchResponse
	c.mustDo("POST", "/v1/markets/equiv/trade/batch",
		TradeBatchRequest{Trades: trades}, &batchResp, http.StatusOK)
	outcomes := local.broker.TradeBatchOutcomes(queries)
	for i, res := range batchResp.Results {
		if res.Error != "" || outcomes[i].Err != nil {
			t.Fatalf("batch slot %d: HTTP err %q, local err %v", i, res.Error, outcomes[i].Err)
		}
		checkTx(rounds+i, res.TradeResult, outcomes[i].Tx)
	}

	// The full ledgers and payout vectors must agree entry for entry.
	hosted, err := srv.Markets().Get("equiv")
	if err != nil {
		t.Fatal(err)
	}
	hl, ll := hosted.broker.Ledger(), local.broker.Ledger()
	if len(hl) != len(ll) || len(hl) != rounds+batch {
		t.Fatalf("ledger lengths: hosted %d, local %d, want %d", len(hl), len(ll), rounds+batch)
	}
	for i := range hl {
		if hl[i] != ll[i] {
			t.Fatalf("ledger[%d]: hosted %+v != local %+v", i, hl[i], ll[i])
		}
	}
	hp, lp := hosted.broker.Payouts(), local.broker.Payouts()
	for i := range hp {
		if hp[i] != lp[i] {
			t.Fatalf("payout[%d]: hosted %v != local %v", i, hp[i], lp[i])
		}
	}
}
