package server

// Hosted-market serving benchmarks, mirroring cmd/servebench's market
// scenario: a 10k-owner market traded with 64-support queries, per-trade
// over JSON and batched over the binary codec.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"

	"datamarket/api/binary"
	"datamarket/internal/randx"
)

const (
	benchMarketOwners  = 10000
	benchMarketSupport = 64
)

// benchMarketServer spins up a server hosting one market with the
// headline population.
func benchMarketServer(b *testing.B) *httptest.Server {
	b.Helper()
	srv := NewServer(nil)
	owners := make([]OwnerSpec, benchMarketOwners)
	vals := randx.New(81).UniformVector(benchMarketOwners, 1, 5)
	for i := range owners {
		owners[i] = OwnerSpec{
			Value: vals[i], Range: 4,
			Contract: ContractSpec{Type: "tanh", Rho: 1, Eta: 10},
		}
	}
	if _, err := srv.Markets().Create(CreateMarketRequest{
		ID: "bench", Owners: owners, Seed: 3, Horizon: 1 << 20,
	}); err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	b.Cleanup(ts.Close)
	return ts
}

// benchMarketTrade draws a 64-support trade over the bench market.
func benchMarketTrade(r *randx.RNG) TradeRequest {
	w := make([]float64, benchMarketOwners)
	for _, i := range r.Perm(benchMarketOwners)[:benchMarketSupport] {
		w[i] = r.Normal(0, 1)
	}
	return TradeRequest{Weights: w, NoiseVariance: 1, Valuation: r.Uniform(0, 10)}
}

// BenchmarkServerHTTPTrade measures single trades through the JSON edge
// — the pre-batch hosted-market serving pattern.
func BenchmarkServerHTTPTrade(b *testing.B) {
	ts := benchMarketServer(b)
	var worker atomic.Uint64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		r := randx.NewStream(82, worker.Add(1))
		for pb.Next() {
			body, _ := json.Marshal(benchMarketTrade(r))
			resp, err := http.Post(ts.URL+"/v1/markets/bench/trade",
				"application/json", bytes.NewReader(body))
			if err != nil {
				b.Error(err)
				return
			}
			if resp.StatusCode != http.StatusOK {
				b.Errorf("status %d", resp.StatusCode)
				resp.Body.Close()
				return
			}
			var tr TradeResponse
			json.NewDecoder(resp.Body).Decode(&tr)
			resp.Body.Close()
		}
	})
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "trades/s")
}

// BenchmarkServerHTTPTradeBatchBinary measures batched trades over the
// binary codec — the headline market serving path. ns/op is per BATCH;
// trades/s is the comparable metric.
func BenchmarkServerHTTPTradeBatchBinary(b *testing.B) {
	for _, batch := range []int{16, 64} {
		b.Run(fmt.Sprintf("batch=%d", batch), func(b *testing.B) {
			ts := benchMarketServer(b)
			var worker atomic.Uint64
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				r := randx.NewStream(83, worker.Add(1))
				trades := make([]TradeRequest, batch)
				var (
					frame, scratch []byte
					dec            binary.Decoder
					tr             TradeBatchResponse
				)
				for pb.Next() {
					for k := range trades {
						trades[k] = benchMarketTrade(r)
					}
					var err error
					frame, err = binary.Append(frame[:0], &TradeBatchRequest{Trades: trades})
					if err != nil {
						b.Error(err)
						return
					}
					var ok bool
					scratch, ok = benchBinaryPost(b, http.DefaultClient,
						ts.URL+"/v1/markets/bench/trade/batch", frame, scratch, &dec, &tr)
					if !ok {
						return
					}
					if len(tr.Results) != batch {
						b.Errorf("got %d results, want %d", len(tr.Results), batch)
						return
					}
					for _, res := range tr.Results {
						if res.Error != "" {
							b.Error(res.Error)
							return
						}
					}
				}
			})
			b.StopTimer()
			b.ReportMetric(float64(b.N)*float64(batch)/b.Elapsed().Seconds(), "trades/s")
		})
	}
}
