package server

import (
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"datamarket/api"
)

// metricsBucketBoundsMS are the cumulative latency bucket bounds exposed
// by GET /v1/admin/metrics. They bracket the serving targets: the binary
// hot path sits under 0.25ms, JSON round trips near 1ms, and anything
// past 250ms is an outage-grade outlier.
var metricsBucketBoundsMS = [...]float64{0.25, 1, 4, 16, 64, 250, 1000}

// endpointCounters accumulates one route's traffic with atomics only, so
// recording on the serving path costs a handful of uncontended adds and
// scraping never blocks a request.
type endpointCounters struct {
	count    atomic.Uint64
	errors   atomic.Uint64
	sumNanos atomic.Int64
	maxNanos atomic.Int64
	buckets  [len(metricsBucketBoundsMS)]atomic.Uint64
}

func (c *endpointCounters) record(status int, elapsed time.Duration) {
	c.count.Add(1)
	if status < 200 || status > 299 {
		c.errors.Add(1)
	}
	ns := int64(elapsed)
	c.sumNanos.Add(ns)
	for {
		cur := c.maxNanos.Load()
		if ns <= cur || c.maxNanos.CompareAndSwap(cur, ns) {
			break
		}
	}
	ms := float64(ns) / float64(time.Millisecond)
	for i, bound := range metricsBucketBoundsMS {
		if ms <= bound {
			c.buckets[i].Add(1)
			break
		}
	}
}

// requestMetrics is the per-server registry of endpoint counters. The
// map is append-only and keyed by route pattern, so the read-lock fast
// path covers every request after the first one per route.
type requestMetrics struct {
	mu         sync.RWMutex
	byEndpoint map[string]*endpointCounters
}

func newRequestMetrics() *requestMetrics {
	return &requestMetrics{byEndpoint: make(map[string]*endpointCounters)}
}

func (m *requestMetrics) get(endpoint string) *endpointCounters {
	m.mu.RLock()
	c := m.byEndpoint[endpoint]
	m.mu.RUnlock()
	if c != nil {
		return c
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if c = m.byEndpoint[endpoint]; c == nil {
		c = &endpointCounters{}
		m.byEndpoint[endpoint] = c
	}
	return c
}

// snapshot renders the wire response, sorted by endpoint pattern.
func (m *requestMetrics) snapshot() api.MetricsResponse {
	m.mu.RLock()
	eps := make(map[string]*endpointCounters, len(m.byEndpoint))
	for k, v := range m.byEndpoint {
		eps[k] = v
	}
	m.mu.RUnlock()
	resp := api.MetricsResponse{Endpoints: make([]api.EndpointMetrics, 0, len(eps))}
	for name, c := range eps {
		em := api.EndpointMetrics{
			Endpoint:     name,
			Count:        c.count.Load(),
			Errors:       c.errors.Load(),
			LatencySumMS: round3(float64(c.sumNanos.Load()) / float64(time.Millisecond)),
			LatencyMaxMS: round3(float64(c.maxNanos.Load()) / float64(time.Millisecond)),
			Buckets:      make([]api.MetricsBucket, len(metricsBucketBoundsMS)),
		}
		var cum uint64
		for i, bound := range metricsBucketBoundsMS {
			cum += c.buckets[i].Load()
			em.Buckets[i] = api.MetricsBucket{LEMillis: bound, Count: cum}
		}
		resp.Endpoints = append(resp.Endpoints, em)
	}
	sort.Slice(resp.Endpoints, func(i, j int) bool {
		return resp.Endpoints[i].Endpoint < resp.Endpoints[j].Endpoint
	})
	return resp
}

func round3(v float64) float64 { return float64(int64(v*1000+0.5)) / 1000 }

// withMetrics records per-endpoint counters around the mux. The route
// pattern is resolved via mux.Handler before serving, so path wildcards
// collapse into one metric per route; requests no route accepts (the
// mux's 404/405) are pooled under "unmatched".
func withMetrics(m *requestMetrics, mux *http.ServeMux) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, pattern := mux.Handler(r)
		if pattern == "" {
			pattern = "unmatched"
		}
		rec := &statusRecorder{ResponseWriter: w}
		start := time.Now()
		mux.ServeHTTP(rec, r)
		status := rec.status
		if status == 0 {
			status = http.StatusOK
		}
		m.get(pattern).record(status, time.Since(start))
	})
}

// handleMetrics serves GET /v1/admin/metrics.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.metrics.snapshot())
}
