package server

import (
	"net/http"
	"testing"

	"datamarket/api"
)

// doErr sends a request expected to fail and returns the decoded error
// envelope alongside the status, so tests assert the stable wire code —
// the thing clients actually branch on — not just the HTTP status.
func (c *client) doErr(method, path string, body any) (int, api.ErrorDetail) {
	c.t.Helper()
	var resp api.ErrorResponse
	status := c.do(method, path, body, &resp)
	if resp.Error.Code == "" {
		c.t.Fatalf("%s %s: status %d carries no error envelope code", method, path, status)
	}
	return status, resp.Error
}

// TestErrorEnvelopeCodes walks every error path the handlers expose and
// asserts both the status and the stable machine-readable code of the
// envelope.
func TestErrorEnvelopeCodes(t *testing.T) {
	_, c := newTestServer(t)

	// Fixtures: a linear stream, an sgd stream (for family mismatch), a
	// stream with a pending two-phase round, and one market.
	c.mustDo("POST", "/v1/streams", CreateStreamRequest{ID: "lin", Dim: 2}, nil, http.StatusCreated)
	c.mustDo("POST", "/v1/streams", CreateStreamRequest{ID: "sgd", Family: "sgd", Dim: 2}, nil, http.StatusCreated)
	c.mustDo("POST", "/v1/streams", CreateStreamRequest{ID: "pend", Dim: 2}, nil, http.StatusCreated)
	c.mustDo("POST", "/v1/streams/pend/quote",
		QuoteRequest{Features: []float64{0.3, 0.4}, Reserve: -100}, nil, http.StatusOK)
	c.mustDo("POST", "/v1/markets", CreateMarketRequest{
		ID: "mkt",
		Owners: []OwnerSpec{
			{Value: 1, Range: 1, Contract: ContractSpec{Type: "tanh", Rho: 1, Eta: 5}},
		},
	}, nil, http.StatusCreated)

	var env api.Envelope
	c.mustDo("GET", "/v1/streams/sgd/snapshot", nil, &env, http.StatusOK)

	val := 1.0
	cases := []struct {
		name       string
		method     string
		path       string
		body       any
		wantStatus int
		wantCode   api.ErrorCode
	}{
		{"stream not found", "GET", "/v1/streams/nope", nil,
			http.StatusNotFound, api.CodeStreamNotFound},
		{"stream exists", "POST", "/v1/streams", CreateStreamRequest{ID: "lin", Dim: 2},
			http.StatusConflict, api.CodeStreamExists},
		{"invalid create", "POST", "/v1/streams", CreateStreamRequest{ID: "bad", Dim: 0},
			http.StatusBadRequest, api.CodeInvalidRequest},
		{"malformed body", "POST", "/v1/streams", map[string]any{"unknown_field": 1},
			http.StatusBadRequest, api.CodeInvalidRequest},
		{"bad dimension on price", "POST", "/v1/streams/lin/price",
			PriceRequest{Features: []float64{1}, Valuation: &val},
			http.StatusBadRequest, api.CodeInvalidRequest},
		{"observe without round", "POST", "/v1/streams/lin/observe", ObserveRequest{Accepted: true},
			http.StatusConflict, api.CodeNoRoundPending},
		{"second quote while pending", "POST", "/v1/streams/pend/quote",
			QuoteRequest{Features: []float64{0.1, 0.2}, Reserve: -100},
			http.StatusConflict, api.CodeRoundPending},
		{"delete while pending", "DELETE", "/v1/streams/pend", nil,
			http.StatusConflict, api.CodeStreamPending},
		{"cross-family restore", "POST", "/v1/streams/lin/restore", &env,
			http.StatusConflict, api.CodeFamilyMismatch},
		{"checkpoint unconfigured", "POST", "/v1/admin/checkpoint", nil,
			http.StatusServiceUnavailable, api.CodeUnavailable},
		{"market not found", "GET", "/v1/markets/nope", nil,
			http.StatusNotFound, api.CodeMarketNotFound},
		{"market not found on trade", "POST", "/v1/markets/nope/trade",
			TradeRequest{Weights: []float64{1}, NoiseVariance: 1, Valuation: 1},
			http.StatusNotFound, api.CodeMarketNotFound},
		{"market exists", "POST", "/v1/markets", CreateMarketRequest{
			ID: "mkt",
			Owners: []OwnerSpec{
				{Value: 1, Range: 1, Contract: ContractSpec{Type: "tanh", Rho: 1, Eta: 5}},
			},
		}, http.StatusConflict, api.CodeMarketExists},
		{"invalid market", "POST", "/v1/markets", CreateMarketRequest{ID: "empty"},
			http.StatusBadRequest, api.CodeInvalidRequest},
		{"invalid trade", "POST", "/v1/markets/mkt/trade",
			TradeRequest{Weights: []float64{1, 2}, NoiseVariance: 1, Valuation: 1},
			http.StatusBadRequest, api.CodeInvalidRequest},
		{"bad ledger paging", "GET", "/v1/markets/mkt/ledger?offset=-1", nil,
			http.StatusBadRequest, api.CodeInvalidRequest},
		// The mux's own plain-text 404/405 are rewritten into the
		// envelope by the middleware — the contract holds on every path.
		{"unknown route", "GET", "/v1/nope", nil,
			http.StatusNotFound, api.CodeNotFound},
		{"method not allowed", "PUT", "/v1/streams", nil,
			http.StatusMethodNotAllowed, api.CodeMethodNotAllowed},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			status, detail := c.doErr(tc.method, tc.path, tc.body)
			if status != tc.wantStatus {
				t.Errorf("status %d, want %d (%s)", status, tc.wantStatus, detail.Message)
			}
			if detail.Code != tc.wantCode {
				t.Errorf("code %q, want %q (%s)", detail.Code, tc.wantCode, detail.Message)
			}
			if detail.Message == "" {
				t.Error("empty error message")
			}
		})
	}
}

// TestVersionEndpoint pins the compatibility surface clients probe on
// first use: the /v1/version body and the headers every response
// carries.
func TestVersionEndpoint(t *testing.T) {
	ts, c := newTestServer(t)
	var resp VersionResponse
	c.mustDo("GET", "/v1/version", nil, &resp, http.StatusOK)
	if resp.API != api.APIVersion {
		t.Errorf("API %q, want %q", resp.API, api.APIVersion)
	}
	if resp.Server == "" || resp.GoVersion == "" {
		t.Errorf("missing build info: %+v", resp)
	}
	raw, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	raw.Body.Close()
	if got := raw.Header.Get("X-Api-Version"); got != api.APIVersion {
		t.Errorf("X-Api-Version header %q, want %q", got, api.APIVersion)
	}
	if got := raw.Header.Get("Server"); got != "brokerd/"+Version {
		t.Errorf("Server header %q, want brokerd/%s", got, Version)
	}
}

// TestTypedHealthAndObserve asserts the previously ad-hoc payloads are
// the typed api responses.
func TestTypedHealthAndObserve(t *testing.T) {
	_, c := newTestServer(t)
	c.mustDo("POST", "/v1/streams", CreateStreamRequest{ID: "s", Dim: 2}, nil, http.StatusCreated)
	c.mustDo("POST", "/v1/streams/s/quote",
		QuoteRequest{Features: []float64{0.3, 0.4}, Reserve: -100}, nil, http.StatusOK)
	var obs ObserveResponse
	c.mustDo("POST", "/v1/streams/s/observe", ObserveRequest{Accepted: true}, &obs, http.StatusOK)
	if !obs.Observed {
		t.Error("observe response not acknowledged")
	}
	var health HealthResponse
	c.mustDo("GET", "/healthz", nil, &health, http.StatusOK)
	if health.Status != "ok" || health.Streams != 1 || health.Markets != 0 {
		t.Errorf("health = %+v, want ok/1/0", health)
	}
}
