package server

import "datamarket/api"

// The HTTP contract lives in the public datamarket/api package so
// external programs (and the official client SDK) can import it; the
// aliases below keep the server's own code and tests reading naturally
// and guarantee the server speaks exactly the published types.
type (
	CreateStreamRequest    = api.CreateStreamRequest
	StreamInfo             = api.StreamInfo
	ListStreamsResponse    = api.ListStreamsResponse
	PriceRequest           = api.PriceRequest
	QuoteRequest           = api.QuoteRequest
	ObserveRequest         = api.ObserveRequest
	ObserveResponse        = api.ObserveResponse
	PriceResponse          = api.PriceResponse
	BatchPriceRound        = api.BatchPriceRound
	BatchPriceRequest      = api.BatchPriceRequest
	MultiBatchRound        = api.MultiBatchRound
	MultiBatchPriceRequest = api.MultiBatchPriceRequest
	BatchRoundResult       = api.BatchRoundResult
	BatchPriceResponse     = api.BatchPriceResponse
	RegretStats            = api.RegretStats
	StatsResponse          = api.StatsResponse
	HealthResponse         = api.HealthResponse
	VersionResponse        = api.VersionResponse
	CheckpointResponse     = api.CheckpointResponse
	StoreStatusResponse    = api.StoreStatusResponse
	MetricsResponse        = api.MetricsResponse
	EndpointMetrics        = api.EndpointMetrics
	MetricsBucket          = api.MetricsBucket
	ErrorResponse          = api.ErrorResponse

	CreateMarketRequest = api.CreateMarketRequest
	OwnerSpec           = api.OwnerSpec
	ContractSpec        = api.ContractSpec
	MarketInfo          = api.MarketInfo
	ListMarketsResponse = api.ListMarketsResponse
	TradeRequest        = api.TradeRequest
	TradeResult         = api.TradeResult
	TradeResponse       = api.TradeResponse
	TradeBatchRequest   = api.TradeBatchRequest
	TradeBatchResult    = api.TradeBatchResult
	TradeBatchResponse  = api.TradeBatchResponse
	LedgerResponse      = api.LedgerResponse
	PayoutsResponse     = api.PayoutsResponse
	MarketStatsResponse = api.MarketStatsResponse
)
