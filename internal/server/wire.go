package server

import (
	"datamarket/internal/pricing"
	"datamarket/internal/store"
)

// CreateStreamRequest configures a new pricing stream: a family plus a
// model config, not a concrete mechanism. One stream hosts one poster —
// typically one per consumer segment or query family.
type CreateStreamRequest struct {
	// ID names the stream. Required, and unique across the registry.
	ID string `json:"id"`
	// Family selects the pricing family: "linear" (default), "nonlinear",
	// or "sgd".
	Family string `json:"family,omitempty"`
	// Dim is the input feature dimension n. Required, ≥ 1.
	Dim int `json:"dim"`
	// Radius bounds ‖θ*‖ for the initial knowledge ball (ellipsoid
	// families). Defaults to 2√(mapped dim), the normalization used
	// throughout the paper's experiments.
	Radius float64 `json:"radius,omitempty"`
	// Reserve enables the reserve price constraint (all families).
	Reserve bool `json:"reserve,omitempty"`
	// Delta is the uncertainty buffer δ ≥ 0 (Algorithm 2).
	Delta float64 `json:"delta,omitempty"`
	// Threshold overrides the exploration threshold ε. When 0 and
	// Horizon > 0, the regret-optimal DefaultThreshold schedule is used;
	// when both are 0, the mechanism's horizon-free fallback applies.
	Threshold float64 `json:"threshold,omitempty"`
	// Horizon is the expected number of rounds T for the default ε.
	Horizon int `json:"horizon,omitempty"`
	// Model carries the family-specific model config: link/map/kernel/
	// landmarks for "nonlinear", eta0/margin for "sgd".
	Model *pricing.ModelConfig `json:"model,omitempty"`
}

// StreamInfo describes a hosted stream.
type StreamInfo struct {
	ID     string `json:"id"`
	Family string `json:"family"`
	Dim    int    `json:"dim"`
}

// ListStreamsResponse enumerates the hosted streams.
type ListStreamsResponse struct {
	Streams []StreamInfo `json:"streams"`
}

// PriceRequest drives pricing for one query. With Valuation set, the
// server runs one full round atomically: it posts the price, accepts iff
// price ≤ valuation (the buyer-valuation callback), and feeds the result
// back to the mechanism. Without Valuation, use the two-phase
// /quote + /observe pair instead.
type PriceRequest struct {
	Features  []float64 `json:"features"`
	Reserve   float64   `json:"reserve,omitempty"`
	Valuation *float64  `json:"valuation,omitempty"`
}

// QuoteRequest opens a round without resolving it: the caller must report
// the buyer's decision via /observe before the next quote on the stream.
type QuoteRequest struct {
	Features []float64 `json:"features"`
	Reserve  float64   `json:"reserve,omitempty"`
}

// ObserveRequest closes the round opened by the last quote.
type ObserveRequest struct {
	Accepted bool `json:"accepted"`
}

// PriceResponse reports the broker's quote for one round. Accepted is
// set only when the request carried a valuation and the round was not
// skipped.
type PriceResponse struct {
	Price          float64 `json:"price"`
	Decision       string  `json:"decision"`
	Lower          float64 `json:"lower"`
	Upper          float64 `json:"upper"`
	ReserveBinding bool    `json:"reserve_binding,omitempty"`
	Accepted       *bool   `json:"accepted,omitempty"`
}

// BatchPriceRound is one round inside a batched pricing request. The
// fields mirror PriceRequest; Valuation is required — batching exists
// for the high-throughput valuation-callback path, two-phase rounds
// cannot batch (each one blocks on external feedback).
type BatchPriceRound struct {
	Features  []float64 `json:"features"`
	Reserve   float64   `json:"reserve,omitempty"`
	Valuation *float64  `json:"valuation,omitempty"`
}

// BatchPriceRequest prices k rounds on one stream with a single JSON
// decode and a single stream-lock acquisition (POST
// /v1/streams/{id}/price/batch). Rounds run back to back in order.
type BatchPriceRequest struct {
	Rounds []BatchPriceRound `json:"rounds"`
}

// MultiBatchRound is one round inside a multi-stream batched pricing
// request: a BatchPriceRound plus the target stream.
type MultiBatchRound struct {
	StreamID  string    `json:"stream_id"`
	Features  []float64 `json:"features"`
	Reserve   float64   `json:"reserve,omitempty"`
	Valuation *float64  `json:"valuation,omitempty"`
}

// MultiBatchPriceRequest prices rounds across many streams in one
// request (POST /v1/price/batch). Rounds are grouped by stream — order
// is preserved within a stream, not across streams — and fanned out
// over a bounded worker pool, one shard's streams per worker at a time.
type MultiBatchPriceRequest struct {
	Rounds []MultiBatchRound `json:"rounds"`
}

// BatchRoundResult reports one round of a batch: the quote fields on
// success, or Error. Results align index-for-index with request rounds.
type BatchRoundResult struct {
	PriceResponse
	Error string `json:"error,omitempty"`
}

// BatchPriceResponse carries the per-round results of either batch
// endpoint.
type BatchPriceResponse struct {
	Results []BatchRoundResult `json:"results"`
}

// RegretStats summarizes the stream's regret bookkeeping. It covers only
// the rounds priced through the one-shot /price endpoint, where the
// buyer's valuation is known to the server.
type RegretStats struct {
	Rounds            int     `json:"rounds"`
	CumulativeRegret  float64 `json:"cumulative_regret"`
	CumulativeValue   float64 `json:"cumulative_value"`
	CumulativeRevenue float64 `json:"cumulative_revenue"`
	RegretRatio       float64 `json:"regret_ratio"`
}

// StatsResponse surfaces a stream's mechanism counters and regret
// bookkeeping. HasCounters reports whether the poster keeps counters at
// all; when false the Counters block is meaningless zeros rather than a
// genuinely idle stream.
type StatsResponse struct {
	ID          string           `json:"id"`
	Family      string           `json:"family"`
	Dim         int              `json:"dim"`
	Counters    pricing.Counters `json:"counters"`
	HasCounters bool             `json:"has_counters"`
	Regret      RegretStats      `json:"regret"`
}

// CheckpointResponse reports an admin-triggered checkpoint pass
// (POST /v1/admin/checkpoint), plus whether the store was compacted
// afterwards (?compact=true).
type CheckpointResponse struct {
	CheckpointStats
	Compacted bool `json:"compacted"`
}

// StoreStatusResponse is the persistence ops surface
// (GET /v1/admin/store). Configured false means brokerd runs without a
// data dir — purely in-memory, nothing survives a restart — and every
// other field is absent.
type StoreStatusResponse struct {
	Configured bool `json:"configured"`
	// CheckpointInterval is the background checkpointer period.
	CheckpointInterval string `json:"checkpoint_interval,omitempty"`
	// RecoveredStreams counts the streams replayed from the store at boot.
	RecoveredStreams int `json:"recovered_streams,omitempty"`
	// LastCheckpoint reports the most recent checkpoint pass.
	LastCheckpoint *CheckpointStats `json:"last_checkpoint,omitempty"`
	// Store is the backend's own view: journal/checkpoint sizes, LSNs,
	// fsync policy, torn-tail repair.
	Store *store.Stats `json:"store,omitempty"`
}

// ErrorResponse is the uniform error body.
type ErrorResponse struct {
	Error string `json:"error"`
}
