package privacy

import (
	"math"
	"testing"
	"testing/quick"

	"datamarket/internal/linalg"
	"datamarket/internal/randx"
)

func TestNewLinearQueryValidation(t *testing.T) {
	if _, err := NewLinearQuery(nil, 1); err == nil {
		t.Fatal("expected error for empty weights")
	}
	if _, err := NewLinearQuery(linalg.VectorOf(math.NaN()), 1); err == nil {
		t.Fatal("expected error for NaN weight")
	}
	if _, err := NewLinearQuery(linalg.VectorOf(1), 0); err == nil {
		t.Fatal("expected error for zero variance")
	}
	q, err := NewLinearQuery(linalg.VectorOf(1, -2), 8)
	if err != nil {
		t.Fatal(err)
	}
	if got := q.NoiseScale(); got != 2 {
		t.Fatalf("NoiseScale = %v, want 2 for variance 8", got)
	}
	// Weights are copied, not aliased.
	w := linalg.VectorOf(5)
	q2, _ := NewLinearQuery(w, 1)
	w[0] = 99
	if q2.Weights[0] != 5 {
		t.Fatal("query aliased caller weights")
	}
}

func TestTrueAnswerAndNoise(t *testing.T) {
	q, _ := NewLinearQuery(linalg.VectorOf(1, 2, 3), 2)
	data := linalg.VectorOf(1, 1, 1)
	ta, err := q.TrueAnswer(data)
	if err != nil {
		t.Fatal(err)
	}
	if ta != 6 {
		t.Fatalf("TrueAnswer = %v", ta)
	}
	if _, err := q.TrueAnswer(linalg.VectorOf(1)); err == nil {
		t.Fatal("expected length error")
	}
	// Noisy answers are unbiased with the requested variance.
	r := randx.New(7)
	const n = 100000
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		a, err := q.Answer(data, r)
		if err != nil {
			t.Fatal(err)
		}
		d := a - 6
		sum += d
		sumsq += d * d
	}
	if math.Abs(sum/n) > 0.02 {
		t.Errorf("noise mean %v", sum/n)
	}
	if math.Abs(sumsq/n-2)/2 > 0.05 {
		t.Errorf("noise variance %v, want ~2", sumsq/n)
	}
}

func TestLeakages(t *testing.T) {
	q, _ := NewLinearQuery(linalg.VectorOf(1, -2, 0), 2) // b = 1
	ranges := linalg.VectorOf(1, 0.5, 3)
	eps, err := q.Leakages(ranges)
	if err != nil {
		t.Fatal(err)
	}
	want := linalg.VectorOf(1, 1, 0)
	if !eps.Equal(want, 1e-12) {
		t.Fatalf("leakages = %v, want %v", eps, want)
	}
	if _, err := q.Leakages(linalg.VectorOf(1)); err == nil {
		t.Fatal("expected length error")
	}
}

// Negative-range validation is hoisted out of the Leakages hot loop:
// ValidateRanges is the construction-time gate the range-owning
// constructors (NewBroker, NewConsumerModel) call once.
func TestValidateRanges(t *testing.T) {
	if err := ValidateRanges(linalg.VectorOf(0, 1, 4.5)); err != nil {
		t.Fatalf("valid ranges rejected: %v", err)
	}
	for _, bad := range []linalg.Vector{
		linalg.VectorOf(1, -1, 1),
		linalg.VectorOf(math.NaN()),
		linalg.VectorOf(math.Inf(1)),
	} {
		if err := ValidateRanges(bad); err == nil {
			t.Fatalf("ranges %v accepted", bad)
		}
	}
}

// Leakage scales inversely with noise scale: more noise, more privacy.
func TestLeakageMonotoneInNoise(t *testing.T) {
	w := linalg.VectorOf(1, 2)
	ranges := linalg.VectorOf(1, 1)
	prev := math.Inf(1)
	for _, variance := range []float64{0.1, 1, 10, 100} {
		q, _ := NewLinearQuery(w, variance)
		eps, _ := q.Leakages(ranges)
		if eps.Sum() >= prev {
			t.Fatalf("leakage not decreasing in noise at variance %v", variance)
		}
		prev = eps.Sum()
	}
}

func TestTanhContract(t *testing.T) {
	c, err := NewTanhContract(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if c.Compensation(0) != 0 || c.Compensation(-1) != 0 {
		t.Fatal("zero/negative leakage must pay 0")
	}
	// Saturation at ρ.
	if got := c.Compensation(100); math.Abs(got-2) > 1e-9 {
		t.Fatalf("saturated compensation = %v, want 2", got)
	}
	// Small-leakage slope ≈ ρη.
	small := 1e-6
	if got := c.Compensation(small) / small; math.Abs(got-6) > 1e-3 {
		t.Fatalf("initial slope = %v, want 6", got)
	}
	if _, err := NewTanhContract(0, 1); err == nil {
		t.Fatal("expected rho error")
	}
	if _, err := NewTanhContract(1, 0); err == nil {
		t.Fatal("expected eta error")
	}
}

func TestLinearContract(t *testing.T) {
	c, err := NewLinearContract(1.5)
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Compensation(2); got != 3 {
		t.Fatalf("compensation = %v", got)
	}
	if c.Compensation(-1) != 0 {
		t.Fatal("negative leakage must pay 0")
	}
	if _, err := NewLinearContract(0); err == nil {
		t.Fatal("expected rho error")
	}
}

// Property: contracts are non-negative and non-decreasing in leakage.
func TestContractMonotoneProperty(t *testing.T) {
	tc, _ := NewTanhContract(1.3, 0.8)
	lc, _ := NewLinearContract(0.9)
	f := func(a, b float64) bool {
		x := math.Abs(math.Mod(a, 100))
		y := math.Abs(math.Mod(b, 100))
		if x > y {
			x, y = y, x
		}
		for _, c := range []Contract{tc, lc} {
			if c.Compensation(x) < 0 || c.Compensation(x) > c.Compensation(y)+1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCompensationsAndTotal(t *testing.T) {
	tc, _ := NewTanhContract(1, 1)
	lc, _ := NewLinearContract(2)
	comps, err := Compensations(linalg.VectorOf(1, 0.5), []Contract{tc, lc})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(comps[0]-math.Tanh(1)) > 1e-12 || comps[1] != 1 {
		t.Fatalf("comps = %v", comps)
	}
	if got := TotalCompensation(comps); math.Abs(got-(math.Tanh(1)+1)) > 1e-12 {
		t.Fatalf("total = %v", got)
	}
	if _, err := Compensations(linalg.VectorOf(1), []Contract{tc, lc}); err == nil {
		t.Fatal("expected length error")
	}
	if _, err := Compensations(linalg.VectorOf(1), []Contract{nil}); err == nil {
		t.Fatal("expected nil contract error")
	}
}

func TestContractNames(t *testing.T) {
	tc, _ := NewTanhContract(1, 2)
	lc, _ := NewLinearContract(3)
	if tc.Name() == "" || lc.Name() == "" {
		t.Fatal("empty contract names")
	}
}

// --- sparse support pipeline ---

func TestSupportRepresentation(t *testing.T) {
	q, err := NewLinearQuery(linalg.VectorOf(0, 2, 0, -1, 0), 1)
	if err != nil {
		t.Fatal(err)
	}
	sup := q.Support()
	if len(sup) != 2 || sup[0] != 1 || sup[1] != 3 {
		t.Fatalf("support = %v, want [1 3]", sup)
	}
	// Struct-literal queries (no constructor) still get a support, just
	// a freshly computed one per call.
	lit := &LinearQuery{Weights: linalg.VectorOf(1, 0, 3), NoiseVariance: 1}
	sup = lit.Support()
	if len(sup) != 2 || sup[0] != 0 || sup[1] != 2 {
		t.Fatalf("literal support = %v, want [0 2]", sup)
	}
	// An all-zero query has an empty, non-nil support.
	zq, err := NewLinearQuery(linalg.VectorOf(0, 0), 1)
	if err != nil {
		t.Fatal(err)
	}
	if s := zq.Support(); s == nil || len(s) != 0 {
		t.Fatalf("zero query support = %v, want empty", s)
	}
}

func TestNewLinearQuerySharedAliases(t *testing.T) {
	w := linalg.VectorOf(1, 0, 2)
	q, err := NewLinearQueryShared(w, 1)
	if err != nil {
		t.Fatal(err)
	}
	if &q.Weights[0] != &w[0] {
		t.Fatal("NewLinearQueryShared copied the weights")
	}
	if _, err := NewLinearQueryShared(linalg.VectorOf(math.Inf(1)), 1); err == nil {
		t.Fatal("expected error for Inf weight")
	}
	if _, err := NewLinearQueryShared(nil, 1); err == nil {
		t.Fatal("expected error for empty weights")
	}
	if _, err := NewLinearQueryShared(linalg.VectorOf(1), math.NaN()); err == nil {
		t.Fatal("expected error for NaN variance")
	}
}

func TestNewSparseLinearQuery(t *testing.T) {
	q, err := NewSparseLinearQuery(6, []int{1, 4}, linalg.VectorOf(2, -3), 1)
	if err != nil {
		t.Fatal(err)
	}
	if !q.Weights.Equal(linalg.VectorOf(0, 2, 0, 0, -3, 0), 0) {
		t.Fatalf("dense weights = %v", q.Weights)
	}
	sup := q.Support()
	if len(sup) != 2 || sup[0] != 1 || sup[1] != 4 {
		t.Fatalf("support = %v", sup)
	}
	// Explicit zero weights drop out of the support.
	q, err = NewSparseLinearQuery(4, []int{0, 2}, linalg.VectorOf(0, 5), 1)
	if err != nil {
		t.Fatal(err)
	}
	if sup := q.Support(); len(sup) != 1 || sup[0] != 2 {
		t.Fatalf("support = %v, want [2]", sup)
	}
	for _, tc := range []struct {
		name  string
		n     int
		idx   []int
		w     linalg.Vector
		noise float64
	}{
		{"zero owners", 0, nil, nil, 1},
		{"length mismatch", 4, []int{1}, linalg.VectorOf(1, 2), 1},
		{"NaN weight", 4, []int{1}, linalg.VectorOf(math.NaN()), 1},
		{"Inf weight", 4, []int{1}, linalg.VectorOf(math.Inf(-1)), 1},
		{"index out of range", 4, []int{4}, linalg.VectorOf(1), 1},
		{"negative index", 4, []int{-1}, linalg.VectorOf(1), 1},
		{"unsorted indices", 4, []int{2, 1}, linalg.VectorOf(1, 2), 1},
		{"duplicate indices", 4, []int{1, 1}, linalg.VectorOf(1, 2), 1},
		{"bad variance", 4, []int{1}, linalg.VectorOf(1), 0},
	} {
		if _, err := NewSparseLinearQuery(tc.n, tc.idx, tc.w, tc.noise); err == nil {
			t.Fatalf("%s: expected error", tc.name)
		}
	}
}

// TestSupportPipelineMatchesDense pins the sparse leakage/compensation
// path bit-for-bit against the dense seed pipeline: the support entries
// must be identical float64s, and every off-support dense entry must be
// exactly zero.
func TestSupportPipelineMatchesDense(t *testing.T) {
	r := randx.New(99)
	tc, _ := NewTanhContract(1.5, 2)
	lc, _ := NewLinearContract(0.5)
	for trial := 0; trial < 200; trial++ {
		n := 1 + r.Intn(40)
		weights := make(linalg.Vector, n)
		for i := range weights {
			if r.Float64() < 0.6 { // mostly sparse
				continue
			}
			weights[i] = r.Normal(0, 2)
		}
		ranges := make(linalg.Vector, n)
		contracts := make([]Contract, n)
		for i := range ranges {
			ranges[i] = r.Uniform(0, 5)
			if r.Bool() {
				contracts[i] = tc
			} else {
				contracts[i] = lc
			}
		}
		variance := math.Pow(10, float64(r.Intn(9)-4))
		q, err := NewLinearQuery(weights, variance)
		if err != nil {
			t.Fatal(err)
		}
		denseLeak, err := q.Leakages(ranges)
		if err != nil {
			t.Fatal(err)
		}
		denseComp, err := Compensations(denseLeak, contracts)
		if err != nil {
			t.Fatal(err)
		}
		sup := q.Support()
		sparseLeak, err := q.SupportLeakages(nil, ranges)
		if err != nil {
			t.Fatal(err)
		}
		sparseComp, err := SupportCompensations(nil, sup, sparseLeak, contracts)
		if err != nil {
			t.Fatal(err)
		}
		k := 0
		for i := 0; i < n; i++ {
			if k < len(sup) && sup[k] == i {
				if sparseLeak[k] != denseLeak[i] || sparseComp[k] != denseComp[i] {
					t.Fatalf("trial %d owner %d: sparse (%v, %v) != dense (%v, %v)",
						trial, i, sparseLeak[k], sparseComp[k], denseLeak[i], denseComp[i])
				}
				k++
				continue
			}
			if denseLeak[i] != 0 || denseComp[i] != 0 {
				t.Fatalf("trial %d owner %d off support but dense (%v, %v) != 0",
					trial, i, denseLeak[i], denseComp[i])
			}
		}
		if k != len(sup) {
			t.Fatalf("trial %d: consumed %d of %d support entries", trial, k, len(sup))
		}
	}
}

func TestSupportPipelineErrors(t *testing.T) {
	q, _ := NewLinearQuery(linalg.VectorOf(1, 0, 2), 1)
	if _, err := q.SupportLeakages(nil, linalg.VectorOf(1)); err == nil {
		t.Fatal("expected length error")
	}
	tc, _ := NewTanhContract(1, 1)
	if _, err := SupportCompensations(nil, []int{0, 2}, linalg.VectorOf(1), []Contract{tc, tc, tc}); err == nil {
		t.Fatal("expected alignment error")
	}
	if _, err := SupportCompensations(nil, []int{5}, linalg.VectorOf(1), []Contract{tc}); err == nil {
		t.Fatal("expected out-of-range error")
	}
	if _, err := SupportCompensations(nil, []int{0}, linalg.VectorOf(1), []Contract{nil}); err == nil {
		t.Fatal("expected nil contract error")
	}
}
