package privacy

import (
	"math"
	"testing"
	"testing/quick"

	"datamarket/internal/linalg"
	"datamarket/internal/randx"
)

func TestNewLinearQueryValidation(t *testing.T) {
	if _, err := NewLinearQuery(nil, 1); err == nil {
		t.Fatal("expected error for empty weights")
	}
	if _, err := NewLinearQuery(linalg.VectorOf(math.NaN()), 1); err == nil {
		t.Fatal("expected error for NaN weight")
	}
	if _, err := NewLinearQuery(linalg.VectorOf(1), 0); err == nil {
		t.Fatal("expected error for zero variance")
	}
	q, err := NewLinearQuery(linalg.VectorOf(1, -2), 8)
	if err != nil {
		t.Fatal(err)
	}
	if got := q.NoiseScale(); got != 2 {
		t.Fatalf("NoiseScale = %v, want 2 for variance 8", got)
	}
	// Weights are copied, not aliased.
	w := linalg.VectorOf(5)
	q2, _ := NewLinearQuery(w, 1)
	w[0] = 99
	if q2.Weights[0] != 5 {
		t.Fatal("query aliased caller weights")
	}
}

func TestTrueAnswerAndNoise(t *testing.T) {
	q, _ := NewLinearQuery(linalg.VectorOf(1, 2, 3), 2)
	data := linalg.VectorOf(1, 1, 1)
	ta, err := q.TrueAnswer(data)
	if err != nil {
		t.Fatal(err)
	}
	if ta != 6 {
		t.Fatalf("TrueAnswer = %v", ta)
	}
	if _, err := q.TrueAnswer(linalg.VectorOf(1)); err == nil {
		t.Fatal("expected length error")
	}
	// Noisy answers are unbiased with the requested variance.
	r := randx.New(7)
	const n = 100000
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		a, err := q.Answer(data, r)
		if err != nil {
			t.Fatal(err)
		}
		d := a - 6
		sum += d
		sumsq += d * d
	}
	if math.Abs(sum/n) > 0.02 {
		t.Errorf("noise mean %v", sum/n)
	}
	if math.Abs(sumsq/n-2)/2 > 0.05 {
		t.Errorf("noise variance %v, want ~2", sumsq/n)
	}
}

func TestLeakages(t *testing.T) {
	q, _ := NewLinearQuery(linalg.VectorOf(1, -2, 0), 2) // b = 1
	ranges := linalg.VectorOf(1, 0.5, 3)
	eps, err := q.Leakages(ranges)
	if err != nil {
		t.Fatal(err)
	}
	want := linalg.VectorOf(1, 1, 0)
	if !eps.Equal(want, 1e-12) {
		t.Fatalf("leakages = %v, want %v", eps, want)
	}
	if _, err := q.Leakages(linalg.VectorOf(1)); err == nil {
		t.Fatal("expected length error")
	}
	if _, err := q.Leakages(linalg.VectorOf(1, -1, 1)); err == nil {
		t.Fatal("expected negative range error")
	}
}

// Leakage scales inversely with noise scale: more noise, more privacy.
func TestLeakageMonotoneInNoise(t *testing.T) {
	w := linalg.VectorOf(1, 2)
	ranges := linalg.VectorOf(1, 1)
	prev := math.Inf(1)
	for _, variance := range []float64{0.1, 1, 10, 100} {
		q, _ := NewLinearQuery(w, variance)
		eps, _ := q.Leakages(ranges)
		if eps.Sum() >= prev {
			t.Fatalf("leakage not decreasing in noise at variance %v", variance)
		}
		prev = eps.Sum()
	}
}

func TestTanhContract(t *testing.T) {
	c, err := NewTanhContract(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if c.Compensation(0) != 0 || c.Compensation(-1) != 0 {
		t.Fatal("zero/negative leakage must pay 0")
	}
	// Saturation at ρ.
	if got := c.Compensation(100); math.Abs(got-2) > 1e-9 {
		t.Fatalf("saturated compensation = %v, want 2", got)
	}
	// Small-leakage slope ≈ ρη.
	small := 1e-6
	if got := c.Compensation(small) / small; math.Abs(got-6) > 1e-3 {
		t.Fatalf("initial slope = %v, want 6", got)
	}
	if _, err := NewTanhContract(0, 1); err == nil {
		t.Fatal("expected rho error")
	}
	if _, err := NewTanhContract(1, 0); err == nil {
		t.Fatal("expected eta error")
	}
}

func TestLinearContract(t *testing.T) {
	c, err := NewLinearContract(1.5)
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Compensation(2); got != 3 {
		t.Fatalf("compensation = %v", got)
	}
	if c.Compensation(-1) != 0 {
		t.Fatal("negative leakage must pay 0")
	}
	if _, err := NewLinearContract(0); err == nil {
		t.Fatal("expected rho error")
	}
}

// Property: contracts are non-negative and non-decreasing in leakage.
func TestContractMonotoneProperty(t *testing.T) {
	tc, _ := NewTanhContract(1.3, 0.8)
	lc, _ := NewLinearContract(0.9)
	f := func(a, b float64) bool {
		x := math.Abs(math.Mod(a, 100))
		y := math.Abs(math.Mod(b, 100))
		if x > y {
			x, y = y, x
		}
		for _, c := range []Contract{tc, lc} {
			if c.Compensation(x) < 0 || c.Compensation(x) > c.Compensation(y)+1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCompensationsAndTotal(t *testing.T) {
	tc, _ := NewTanhContract(1, 1)
	lc, _ := NewLinearContract(2)
	comps, err := Compensations(linalg.VectorOf(1, 0.5), []Contract{tc, lc})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(comps[0]-math.Tanh(1)) > 1e-12 || comps[1] != 1 {
		t.Fatalf("comps = %v", comps)
	}
	if got := TotalCompensation(comps); math.Abs(got-(math.Tanh(1)+1)) > 1e-12 {
		t.Fatalf("total = %v", got)
	}
	if _, err := Compensations(linalg.VectorOf(1), []Contract{tc, lc}); err == nil {
		t.Fatal("expected length error")
	}
	if _, err := Compensations(linalg.VectorOf(1), []Contract{nil}); err == nil {
		t.Fatal("expected nil contract error")
	}
}

func TestContractNames(t *testing.T) {
	tc, _ := NewTanhContract(1, 2)
	lc, _ := NewLinearContract(3)
	if tc.Name() == "" || lc.Name() == "" {
		t.Fatal("empty contract names")
	}
}
