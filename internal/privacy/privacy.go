// Package privacy implements the differential-privacy substrate the data
// market depends on: the Laplace mechanism for noisy linear queries, the
// per-owner privacy leakage quantification, and the bounded (tanh-based)
// compensation contracts that turn leakage into money — the construction
// the paper adopts from Li et al., "A theory of pricing private data"
// (reference [8]), in §V-A.
//
// The pipeline for one query is:
//
//	leakage εᵢ = |wᵢ|·Δᵢ / b        (Laplace mechanism, noise scale b)
//	compensation πᵢ = ρᵢ·tanh(η·εᵢ) (bounded contract)
//	reserve price  q = Σᵢ πᵢ        (total compensation)
package privacy

import (
	"fmt"
	"math"

	"datamarket/internal/linalg"
	"datamarket/internal/randx"
)

// LinearQuery is a data consumer's query: a weighted sum over the data
// owners' values with Laplace noise calibrated to the requested variance.
// The pair (weights, variance) is exactly the customization surface the
// paper gives consumers — the analysis (weights) and the accuracy (noise).
type LinearQuery struct {
	// Weights has one entry per data owner.
	Weights linalg.Vector
	// NoiseVariance is the variance of the Laplace noise added to the true
	// answer; larger variance means cheaper, more private answers.
	NoiseVariance float64

	// support caches the ascending indices of nonzero weights. Real
	// consumer queries weight a small subset of owners, and every
	// owner outside the support has exactly zero leakage and zero
	// compensation (ε = |0|·Δ/b = 0, π(0) = 0), so the broker pipeline
	// only ever needs these indices. Constructors always populate it;
	// a query built as a struct literal gets it recomputed per call.
	support []int
}

// validateQuery is the shared constructor validation: non-empty finite
// weights and a positive, finite noise variance.
func validateQuery(weights linalg.Vector, noiseVariance float64) error {
	if len(weights) == 0 {
		return fmt.Errorf("privacy: query needs at least one weight")
	}
	if !weights.IsFinite() {
		return fmt.Errorf("privacy: query weights must be finite")
	}
	if noiseVariance <= 0 || math.IsInf(noiseVariance, 0) || math.IsNaN(noiseVariance) {
		return fmt.Errorf("privacy: noise variance must be positive and finite, got %g", noiseVariance)
	}
	return nil
}

// supportOf collects the ascending indices of nonzero weights. The
// result is never nil, so constructors can distinguish "computed empty"
// from "not computed".
func supportOf(weights linalg.Vector) []int {
	nz := 0
	for _, w := range weights {
		if w != 0 {
			nz++
		}
	}
	support := make([]int, 0, nz)
	for i, w := range weights {
		if w != 0 {
			support = append(support, i)
		}
	}
	return support
}

// NewLinearQuery validates and builds a query. The weights are cloned,
// so the caller keeps ownership of its slice.
func NewLinearQuery(weights linalg.Vector, noiseVariance float64) (*LinearQuery, error) {
	if err := validateQuery(weights, noiseVariance); err != nil {
		return nil, err
	}
	w := weights.Clone()
	return &LinearQuery{Weights: w, NoiseVariance: noiseVariance, support: supportOf(w)}, nil
}

// NewLinearQueryShared is NewLinearQuery without the defensive copy:
// the query aliases the caller's weights, which must not be mutated for
// the query's lifetime. It exists for serving hot paths where the
// weights buffer is request-scoped and the per-query clone would be the
// largest allocation in the trade loop.
func NewLinearQueryShared(weights linalg.Vector, noiseVariance float64) (*LinearQuery, error) {
	if err := validateQuery(weights, noiseVariance); err != nil {
		return nil, err
	}
	return &LinearQuery{Weights: weights, NoiseVariance: noiseVariance, support: supportOf(weights)}, nil
}

// NewSparseLinearQuery builds a query over n owners from its support
// alone: indices must be strictly increasing in [0, n), weights finite
// and aligned with indices. Explicit zero weights are allowed (they
// simply drop out of the support).
func NewSparseLinearQuery(n int, indices []int, weights linalg.Vector, noiseVariance float64) (*LinearQuery, error) {
	if n <= 0 {
		return nil, fmt.Errorf("privacy: query needs at least one owner, got %d", n)
	}
	if len(indices) != len(weights) {
		return nil, fmt.Errorf("privacy: %d support indices for %d weights", len(indices), len(weights))
	}
	if !weights.IsFinite() {
		return nil, fmt.Errorf("privacy: query weights must be finite")
	}
	if noiseVariance <= 0 || math.IsInf(noiseVariance, 0) || math.IsNaN(noiseVariance) {
		return nil, fmt.Errorf("privacy: noise variance must be positive and finite, got %g", noiseVariance)
	}
	dense := make(linalg.Vector, n)
	prev := -1
	for k, i := range indices {
		if i <= prev || i >= n {
			return nil, fmt.Errorf("privacy: support indices must be strictly increasing in [0, %d), got %d at position %d", n, i, k)
		}
		prev = i
		dense[i] = weights[k]
	}
	return &LinearQuery{Weights: dense, NoiseVariance: noiseVariance, support: supportOf(dense)}, nil
}

// Support returns the ascending indices of the query's nonzero weights.
// Queries built through a constructor return the cached support; a
// struct-literal query gets a fresh scan (and allocation) per call —
// deliberately not cached here, so concurrent readers of a shared query
// never race on the lazy write.
func (q *LinearQuery) Support() []int {
	if q.support != nil {
		return q.support
	}
	return supportOf(q.Weights)
}

// NoiseScale returns the Laplace scale b = √(variance/2).
func (q *LinearQuery) NoiseScale() float64 { return math.Sqrt(q.NoiseVariance / 2) }

// TrueAnswer returns Σ wᵢ·dᵢ over the owners' data values.
func (q *LinearQuery) TrueAnswer(data linalg.Vector) (float64, error) {
	if len(data) != len(q.Weights) {
		return 0, fmt.Errorf("privacy: query over %d owners, dataset has %d", len(q.Weights), len(data))
	}
	return q.Weights.Dot(data), nil
}

// Answer returns the noisy answer: the true answer plus Laplace noise of
// the requested variance — the Laplace mechanism.
func (q *LinearQuery) Answer(data linalg.Vector, rng *randx.RNG) (float64, error) {
	t, err := q.TrueAnswer(data)
	if err != nil {
		return 0, err
	}
	return t + rng.Laplace(0, q.NoiseScale()), nil
}

// ValidateRanges rejects negative or non-finite sensitivity ranges.
// This validation used to run inside Leakages' per-owner hot loop on
// every trade; it is hoisted here so range-owning constructors
// (market.NewBroker, market.NewConsumerModel) pay it exactly once and
// the leakage functions trust their input.
func ValidateRanges(ranges linalg.Vector) error {
	for i, r := range ranges {
		if r < 0 || math.IsNaN(r) || math.IsInf(r, 0) {
			return fmt.Errorf("privacy: owner %d has invalid data range %g (must be finite and non-negative)", i, r)
		}
	}
	return nil
}

// Leakages quantifies each owner's differential privacy leakage under the
// query: εᵢ = |wᵢ|·Δᵢ/b, where Δᵢ bounds the range of owner i's value and
// b is the Laplace noise scale. This is the standard per-owner sensitivity
// analysis of the Laplace mechanism: changing owner i's value by at most
// Δᵢ shifts the true answer by at most |wᵢ|·Δᵢ.
//
// ranges must be non-negative and finite — validate once at
// construction with ValidateRanges; this hot loop trusts its input.
func (q *LinearQuery) Leakages(ranges linalg.Vector) (linalg.Vector, error) {
	if len(ranges) != len(q.Weights) {
		return nil, fmt.Errorf("privacy: %d ranges for %d owners", len(ranges), len(q.Weights))
	}
	b := q.NoiseScale()
	eps := make(linalg.Vector, len(q.Weights))
	for i, w := range q.Weights {
		eps[i] = math.Abs(w) * ranges[i] / b
	}
	return eps, nil
}

// SupportLeakages is Leakages restricted to the query's support,
// appending into dst[:0] (pass nil for a fresh slice; reusing dst makes
// the steady state allocation-free). Entry k of the result is the
// leakage of owner Support()[k]; every other owner leaks exactly zero.
// The values are bit-identical to the corresponding dense Leakages
// entries. ranges must be non-negative and finite (ValidateRanges).
func (q *LinearQuery) SupportLeakages(dst linalg.Vector, ranges linalg.Vector) (linalg.Vector, error) {
	if len(ranges) != len(q.Weights) {
		return nil, fmt.Errorf("privacy: %d ranges for %d owners", len(ranges), len(q.Weights))
	}
	b := q.NoiseScale()
	dst = dst[:0]
	for _, i := range q.Support() {
		dst = append(dst, math.Abs(q.Weights[i])*ranges[i]/b)
	}
	return dst, nil
}

// Contract is a privacy compensation contract π(ε): the payment an owner
// receives for a leakage of ε. Contracts must be non-negative,
// non-decreasing, and zero at zero leakage.
type Contract interface {
	// Compensation returns π(ε) for leakage ε ≥ 0.
	Compensation(eps float64) float64
	// Name identifies the contract for reports.
	Name() string
}

// TanhContract is the bounded contract π(ε) = ρ·tanh(η·ε): payments grow
// almost linearly (slope ρη) for small leakages and saturate at ρ, so an
// owner's total exposure is capped no matter how invasive the query. This
// is the "tanh based privacy compensation function" the paper adopts for
// the MovieLens experiment.
type TanhContract struct {
	// Rho is the saturation payment ρ > 0.
	Rho float64
	// Eta is the sensitivity η > 0 of payment to leakage.
	Eta float64
}

// NewTanhContract validates and builds a tanh contract.
func NewTanhContract(rho, eta float64) (TanhContract, error) {
	// A bare rho <= 0 guard admits NaN (every ordered comparison with
	// NaN is false), and a NaN contract poisons every compensation —
	// and through the reserve price, every trade — downstream.
	if math.IsNaN(rho) || math.IsInf(rho, 0) || math.IsNaN(eta) || math.IsInf(eta, 0) {
		return TanhContract{}, fmt.Errorf("privacy: tanh contract needs finite rho and eta, got %g, %g", rho, eta)
	}
	if rho <= 0 || eta <= 0 {
		return TanhContract{}, fmt.Errorf("privacy: tanh contract needs positive rho and eta, got %g, %g", rho, eta)
	}
	return TanhContract{Rho: rho, Eta: eta}, nil
}

// Compensation returns ρ·tanh(η·ε) (0 for ε ≤ 0).
func (c TanhContract) Compensation(eps float64) float64 {
	if eps <= 0 {
		return 0
	}
	return c.Rho * math.Tanh(c.Eta*eps)
}

// Name identifies the contract.
func (c TanhContract) Name() string {
	return fmt.Sprintf("tanh(ρ=%g,η=%g)", c.Rho, c.Eta)
}

// LinearContract is the unbounded contract π(ε) = ρ·ε, the other canonical
// family from Li et al.; useful for sensitivity ablations.
type LinearContract struct {
	// Rho is the payment per unit of leakage.
	Rho float64
}

// NewLinearContract validates and builds a linear contract.
func NewLinearContract(rho float64) (LinearContract, error) {
	if math.IsNaN(rho) || math.IsInf(rho, 0) {
		return LinearContract{}, fmt.Errorf("privacy: linear contract needs finite rho, got %g", rho)
	}
	if rho <= 0 {
		return LinearContract{}, fmt.Errorf("privacy: linear contract needs positive rho, got %g", rho)
	}
	return LinearContract{Rho: rho}, nil
}

// Compensation returns ρ·ε (0 for ε ≤ 0).
func (c LinearContract) Compensation(eps float64) float64 {
	if eps <= 0 {
		return 0
	}
	return c.Rho * eps
}

// Name identifies the contract.
func (c LinearContract) Name() string { return fmt.Sprintf("linear(ρ=%g)", c.Rho) }

// Compensations applies each owner's contract to the leakage vector.
func Compensations(leakages linalg.Vector, contracts []Contract) (linalg.Vector, error) {
	if len(leakages) != len(contracts) {
		return nil, fmt.Errorf("privacy: %d leakages for %d contracts", len(leakages), len(contracts))
	}
	out := make(linalg.Vector, len(leakages))
	for i, eps := range leakages {
		if contracts[i] == nil {
			return nil, fmt.Errorf("privacy: nil contract for owner %d", i)
		}
		out[i] = contracts[i].Compensation(eps)
	}
	return out, nil
}

// SupportCompensations applies each supported owner's contract to the
// support-aligned leakage vector, appending into dst[:0] (pass nil for
// a fresh slice). support and leakages must align entry for entry —
// the shapes SupportLeakages produces. The values are bit-identical to
// the corresponding dense Compensations entries; owners outside the
// support are owed exactly zero (π(0) = 0 by the Contract invariant).
func SupportCompensations(dst linalg.Vector, support []int, leakages linalg.Vector, contracts []Contract) (linalg.Vector, error) {
	if len(support) != len(leakages) {
		return nil, fmt.Errorf("privacy: %d support indices for %d leakages", len(support), len(leakages))
	}
	dst = dst[:0]
	for k, i := range support {
		if i < 0 || i >= len(contracts) {
			return nil, fmt.Errorf("privacy: support index %d out of range for %d contracts", i, len(contracts))
		}
		if contracts[i] == nil {
			return nil, fmt.Errorf("privacy: nil contract for owner %d", i)
		}
		dst = append(dst, contracts[i].Compensation(leakages[k]))
	}
	return dst, nil
}

// TotalCompensation returns Σπᵢ — the query's reserve price.
func TotalCompensation(comps linalg.Vector) float64 { return comps.Sum() }
