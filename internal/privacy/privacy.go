// Package privacy implements the differential-privacy substrate the data
// market depends on: the Laplace mechanism for noisy linear queries, the
// per-owner privacy leakage quantification, and the bounded (tanh-based)
// compensation contracts that turn leakage into money — the construction
// the paper adopts from Li et al., "A theory of pricing private data"
// (reference [8]), in §V-A.
//
// The pipeline for one query is:
//
//	leakage εᵢ = |wᵢ|·Δᵢ / b        (Laplace mechanism, noise scale b)
//	compensation πᵢ = ρᵢ·tanh(η·εᵢ) (bounded contract)
//	reserve price  q = Σᵢ πᵢ        (total compensation)
package privacy

import (
	"fmt"
	"math"

	"datamarket/internal/linalg"
	"datamarket/internal/randx"
)

// LinearQuery is a data consumer's query: a weighted sum over the data
// owners' values with Laplace noise calibrated to the requested variance.
// The pair (weights, variance) is exactly the customization surface the
// paper gives consumers — the analysis (weights) and the accuracy (noise).
type LinearQuery struct {
	// Weights has one entry per data owner.
	Weights linalg.Vector
	// NoiseVariance is the variance of the Laplace noise added to the true
	// answer; larger variance means cheaper, more private answers.
	NoiseVariance float64
}

// NewLinearQuery validates and builds a query.
func NewLinearQuery(weights linalg.Vector, noiseVariance float64) (*LinearQuery, error) {
	if len(weights) == 0 {
		return nil, fmt.Errorf("privacy: query needs at least one weight")
	}
	if !weights.IsFinite() {
		return nil, fmt.Errorf("privacy: query weights must be finite")
	}
	if noiseVariance <= 0 || math.IsInf(noiseVariance, 0) || math.IsNaN(noiseVariance) {
		return nil, fmt.Errorf("privacy: noise variance must be positive and finite, got %g", noiseVariance)
	}
	return &LinearQuery{Weights: weights.Clone(), NoiseVariance: noiseVariance}, nil
}

// NoiseScale returns the Laplace scale b = √(variance/2).
func (q *LinearQuery) NoiseScale() float64 { return math.Sqrt(q.NoiseVariance / 2) }

// TrueAnswer returns Σ wᵢ·dᵢ over the owners' data values.
func (q *LinearQuery) TrueAnswer(data linalg.Vector) (float64, error) {
	if len(data) != len(q.Weights) {
		return 0, fmt.Errorf("privacy: query over %d owners, dataset has %d", len(q.Weights), len(data))
	}
	return q.Weights.Dot(data), nil
}

// Answer returns the noisy answer: the true answer plus Laplace noise of
// the requested variance — the Laplace mechanism.
func (q *LinearQuery) Answer(data linalg.Vector, rng *randx.RNG) (float64, error) {
	t, err := q.TrueAnswer(data)
	if err != nil {
		return 0, err
	}
	return t + rng.Laplace(0, q.NoiseScale()), nil
}

// Leakages quantifies each owner's differential privacy leakage under the
// query: εᵢ = |wᵢ|·Δᵢ/b, where Δᵢ bounds the range of owner i's value and
// b is the Laplace noise scale. This is the standard per-owner sensitivity
// analysis of the Laplace mechanism: changing owner i's value by at most
// Δᵢ shifts the true answer by at most |wᵢ|·Δᵢ.
func (q *LinearQuery) Leakages(ranges linalg.Vector) (linalg.Vector, error) {
	if len(ranges) != len(q.Weights) {
		return nil, fmt.Errorf("privacy: %d ranges for %d owners", len(ranges), len(q.Weights))
	}
	b := q.NoiseScale()
	eps := make(linalg.Vector, len(q.Weights))
	for i, w := range q.Weights {
		if ranges[i] < 0 {
			return nil, fmt.Errorf("privacy: negative data range for owner %d", i)
		}
		eps[i] = math.Abs(w) * ranges[i] / b
	}
	return eps, nil
}

// Contract is a privacy compensation contract π(ε): the payment an owner
// receives for a leakage of ε. Contracts must be non-negative,
// non-decreasing, and zero at zero leakage.
type Contract interface {
	// Compensation returns π(ε) for leakage ε ≥ 0.
	Compensation(eps float64) float64
	// Name identifies the contract for reports.
	Name() string
}

// TanhContract is the bounded contract π(ε) = ρ·tanh(η·ε): payments grow
// almost linearly (slope ρη) for small leakages and saturate at ρ, so an
// owner's total exposure is capped no matter how invasive the query. This
// is the "tanh based privacy compensation function" the paper adopts for
// the MovieLens experiment.
type TanhContract struct {
	// Rho is the saturation payment ρ > 0.
	Rho float64
	// Eta is the sensitivity η > 0 of payment to leakage.
	Eta float64
}

// NewTanhContract validates and builds a tanh contract.
func NewTanhContract(rho, eta float64) (TanhContract, error) {
	// A bare rho <= 0 guard admits NaN (every ordered comparison with
	// NaN is false), and a NaN contract poisons every compensation —
	// and through the reserve price, every trade — downstream.
	if math.IsNaN(rho) || math.IsInf(rho, 0) || math.IsNaN(eta) || math.IsInf(eta, 0) {
		return TanhContract{}, fmt.Errorf("privacy: tanh contract needs finite rho and eta, got %g, %g", rho, eta)
	}
	if rho <= 0 || eta <= 0 {
		return TanhContract{}, fmt.Errorf("privacy: tanh contract needs positive rho and eta, got %g, %g", rho, eta)
	}
	return TanhContract{Rho: rho, Eta: eta}, nil
}

// Compensation returns ρ·tanh(η·ε) (0 for ε ≤ 0).
func (c TanhContract) Compensation(eps float64) float64 {
	if eps <= 0 {
		return 0
	}
	return c.Rho * math.Tanh(c.Eta*eps)
}

// Name identifies the contract.
func (c TanhContract) Name() string {
	return fmt.Sprintf("tanh(ρ=%g,η=%g)", c.Rho, c.Eta)
}

// LinearContract is the unbounded contract π(ε) = ρ·ε, the other canonical
// family from Li et al.; useful for sensitivity ablations.
type LinearContract struct {
	// Rho is the payment per unit of leakage.
	Rho float64
}

// NewLinearContract validates and builds a linear contract.
func NewLinearContract(rho float64) (LinearContract, error) {
	if math.IsNaN(rho) || math.IsInf(rho, 0) {
		return LinearContract{}, fmt.Errorf("privacy: linear contract needs finite rho, got %g", rho)
	}
	if rho <= 0 {
		return LinearContract{}, fmt.Errorf("privacy: linear contract needs positive rho, got %g", rho)
	}
	return LinearContract{Rho: rho}, nil
}

// Compensation returns ρ·ε (0 for ε ≤ 0).
func (c LinearContract) Compensation(eps float64) float64 {
	if eps <= 0 {
		return 0
	}
	return c.Rho * eps
}

// Name identifies the contract.
func (c LinearContract) Name() string { return fmt.Sprintf("linear(ρ=%g)", c.Rho) }

// Compensations applies each owner's contract to the leakage vector.
func Compensations(leakages linalg.Vector, contracts []Contract) (linalg.Vector, error) {
	if len(leakages) != len(contracts) {
		return nil, fmt.Errorf("privacy: %d leakages for %d contracts", len(leakages), len(contracts))
	}
	out := make(linalg.Vector, len(leakages))
	for i, eps := range leakages {
		if contracts[i] == nil {
			return nil, fmt.Errorf("privacy: nil contract for owner %d", i)
		}
		out[i] = contracts[i].Compensation(eps)
	}
	return out, nil
}

// TotalCompensation returns Σπᵢ — the query's reserve price.
func TotalCompensation(comps linalg.Vector) float64 { return comps.Sum() }
