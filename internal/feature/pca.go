package feature

import (
	"fmt"
	"sort"

	"datamarket/internal/linalg"
)

// PCA is the principal components analysis the paper suggests as the
// alternative dimensionality reduction for high-dimensional compensation
// vectors (§II-B). It is fitted on a sample of rows and then projects new
// vectors onto the top-k components.
type PCA struct {
	mean       linalg.Vector
	components *linalg.Matrix // d×k, columns are components
	variances  linalg.Vector  // explained variance per component
}

// FitPCA computes the top-k principal components of the rows via the
// eigendecomposition of the sample covariance matrix. k must satisfy
// 1 ≤ k ≤ d, and at least two rows are required.
func FitPCA(rows []linalg.Vector, k int) (*PCA, error) {
	if len(rows) < 2 {
		return nil, fmt.Errorf("feature: PCA needs at least 2 rows, got %d", len(rows))
	}
	d := len(rows[0])
	if k < 1 || k > d {
		return nil, fmt.Errorf("feature: PCA components k=%d out of range [1, %d]", k, d)
	}
	mean := make(linalg.Vector, d)
	for _, r := range rows {
		if len(r) != d {
			return nil, fmt.Errorf("feature: ragged rows (%d vs %d)", len(r), d)
		}
		mean.AddScaled(1, r)
	}
	mean.Scale(1 / float64(len(rows)))

	cov := linalg.NewMatrix(d, d)
	for _, r := range rows {
		c := r.Sub(mean)
		cov.AddRankOne(1, c, c)
	}
	cov.Scale(1 / float64(len(rows)-1))
	cov.Symmetrize()

	vals, vecs, err := linalg.EigenSym(cov)
	if err != nil {
		return nil, fmt.Errorf("feature: PCA eigendecomposition: %w", err)
	}
	comps := linalg.NewMatrix(d, k)
	variances := make(linalg.Vector, k)
	for j := 0; j < k; j++ {
		variances[j] = vals[j]
		for i := 0; i < d; i++ {
			comps.Set(i, j, vecs.At(i, j))
		}
	}
	return &PCA{mean: mean, components: comps, variances: variances}, nil
}

// K returns the number of retained components.
func (p *PCA) K() int { return p.components.Cols() }

// ExplainedVariance returns the variance captured by each component, in
// descending order.
func (p *PCA) ExplainedVariance() linalg.Vector { return p.variances.Clone() }

// Transform projects x onto the retained components.
func (p *PCA) Transform(x linalg.Vector) (linalg.Vector, error) {
	if len(x) != len(p.mean) {
		return nil, fmt.Errorf("feature: PCA transform dim %d, want %d", len(x), len(p.mean))
	}
	return p.components.MulVecT(x.Sub(p.mean)), nil
}

// TopKIndices returns the indices of the k largest values in v, in
// descending value order — a utility for sparsity analyses (e.g. selecting
// the active coordinates of an FTRL weight vector, §V-C's "dense case").
func TopKIndices(v linalg.Vector, k int) []int {
	if k > len(v) {
		k = len(v)
	}
	idx := make([]int, len(v))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return v[idx[a]] > v[idx[b]] })
	return idx[:k]
}

// NonzeroIndices returns the indices where |v[i]| > tol, preserving order.
func NonzeroIndices(v linalg.Vector, tol float64) []int {
	var out []int
	for i, x := range v {
		if x > tol || x < -tol {
			out = append(out, i)
		}
	}
	return out
}

// Project returns the subvector of x at the given indices — the "dense
// case" reduction of §V-C that keeps only features with nonzero weights.
func Project(x linalg.Vector, indices []int) (linalg.Vector, error) {
	out := make(linalg.Vector, len(indices))
	for k, i := range indices {
		if i < 0 || i >= len(x) {
			return nil, fmt.Errorf("feature: projection index %d out of range for dim %d", i, len(x))
		}
		out[k] = x[i]
	}
	return out, nil
}
