// Package feature implements the feature engineering pipeline of the
// paper's three applications:
//
//   - §II-B / §V-A: sorted-partition aggregation of per-owner privacy
//     compensations into an n-dimensional feature vector, L2-normalized;
//   - §V-B: pandas-style categorical codes and interaction features for
//     the Airbnb listings;
//   - §V-C: one-hot encoding with the hashing trick for the Avazu
//     categorical fields;
//   - §II-B: PCA as the alternative dimensionality reduction.
package feature

import (
	"fmt"
	"hash/fnv"
	"math"
	"sort"

	"datamarket/internal/linalg"
)

// PartitionAggregate implements the paper's compensation aggregation: sort
// the values, divide them evenly into n contiguous partitions, and sum each
// partition to produce one feature (§II-B). n = 1 yields the total
// compensation; n = len(values) yields the per-owner compensations
// themselves (sorted).
func PartitionAggregate(values linalg.Vector, n int) (linalg.Vector, error) {
	if n <= 0 {
		return nil, fmt.Errorf("feature: partition count must be positive, got %d", n)
	}
	if len(values) == 0 {
		return nil, fmt.Errorf("feature: no values to aggregate")
	}
	if n > len(values) {
		return nil, fmt.Errorf("feature: %d partitions for %d values", n, len(values))
	}
	sorted := values.Clone()
	sort.Float64s(sorted)
	out := make(linalg.Vector, n)
	// Distribute len(values) items over n partitions as evenly as
	// possible: the first (len mod n) partitions get one extra item.
	base := len(sorted) / n
	extra := len(sorted) % n
	idx := 0
	for p := 0; p < n; p++ {
		size := base
		if p < extra {
			size++
		}
		var s float64
		for k := 0; k < size; k++ {
			s += sorted[idx]
			idx++
		}
		out[p] = s
	}
	return out, nil
}

// PartitionAggregateSorted is the sparse fast path of
// PartitionAggregate: it aggregates an implicitly dense vector given as
// its nonzero values (already sorted ascending) plus a count of
// implicit zero entries, writing the len(dst) partition sums into dst.
// The dense sort would place the zero block between the negative and
// the non-negative values; partition sums accumulate in that same
// ascending order while skipping the zeros, and adding a zero to a
// running sum is an exact identity for the non-negative compensation
// vectors this pipeline aggregates — so the result is bit-identical to
// PartitionAggregate over the materialized dense vector, at O(nonzero)
// instead of O(total) per call.
func PartitionAggregateSorted(dst linalg.Vector, sorted linalg.Vector, zeros int) error {
	n := len(dst)
	if n <= 0 {
		return fmt.Errorf("feature: partition count must be positive, got %d", n)
	}
	if zeros < 0 {
		return fmt.Errorf("feature: negative implicit zero count %d", zeros)
	}
	total := len(sorted) + zeros
	if total == 0 {
		return fmt.Errorf("feature: no values to aggregate")
	}
	if n > total {
		return fmt.Errorf("feature: %d partitions for %d values", n, total)
	}
	// Dense ascending order: sorted[:neg], then the zero block, then
	// sorted[neg:].
	neg := sort.SearchFloat64s(sorted, 0)
	base := total / n
	extra := total % n
	start := 0 // dense index where the current partition begins
	for p := 0; p < n; p++ {
		size := base
		if p < extra {
			size++
		}
		end := start + size
		var s float64
		for d, hi := start, min(end, neg); d < hi; d++ {
			s += sorted[d]
		}
		for d := max(start, neg+zeros); d < end; d++ {
			s += sorted[d-zeros]
		}
		dst[p] = s
		start = end
	}
	return nil
}

// L2Normalized returns v scaled to unit Euclidean norm along with the
// original norm. A zero vector is returned unchanged with norm 0.
func L2Normalized(v linalg.Vector) (linalg.Vector, float64) {
	w := v.Clone()
	norm := w.Normalize()
	return w, norm
}

// CompensationFeatures runs the full §V-A pipeline: aggregate the
// compensations into n partitions and L2-normalize, returning the feature
// vector, the normalization constant, and the reserve price implied by the
// normalized features (the sum of the normalized entries, matching the
// paper's q_t = Σᵢ x_{t,i}).
func CompensationFeatures(compensations linalg.Vector, n int) (x linalg.Vector, scale, reserve float64, err error) {
	agg, err := PartitionAggregate(compensations, n)
	if err != nil {
		return nil, 0, 0, err
	}
	x, scale = L2Normalized(agg)
	return x, scale, x.Sum(), nil
}

// Categorical maps string categories to dense integer codes in first-seen
// order, mirroring pandas "categoricals" (§V-B). Missing values (empty
// strings) get the dedicated code for the missing category.
type Categorical struct {
	codes  map[string]int
	labels []string
}

// MissingLabel is the canonical label used for empty/missing values.
const MissingLabel = "<missing>"

// NewCategorical returns an empty encoder.
func NewCategorical() *Categorical {
	return &Categorical{codes: make(map[string]int)}
}

// Code returns the integer code for the value, registering it on first
// sight. Empty strings map to the missing category.
func (c *Categorical) Code(value string) int {
	if value == "" {
		value = MissingLabel
	}
	if code, ok := c.codes[value]; ok {
		return code
	}
	code := len(c.labels)
	c.codes[value] = code
	c.labels = append(c.labels, value)
	return code
}

// Lookup returns the code for a value without registering it; ok is false
// for unseen values.
func (c *Categorical) Lookup(value string) (code int, ok bool) {
	if value == "" {
		value = MissingLabel
	}
	code, ok = c.codes[value]
	return code, ok
}

// Cardinality returns the number of distinct categories seen.
func (c *Categorical) Cardinality() int { return len(c.labels) }

// Labels returns the categories in code order (a copy).
func (c *Categorical) Labels() []string {
	return append([]string(nil), c.labels...)
}

// Hasher one-hot encodes categorical field=value pairs into a fixed
// dimension via the hashing trick (§V-C): the feature index is
// FNV64(field ":" value) mod n. Collisions are accepted by design — the
// modulus n is the knob the paper turns (128 and 1024).
type Hasher struct {
	n int
}

// NewHasher builds a hashing encoder with modulus n ≥ 1.
func NewHasher(n int) (*Hasher, error) {
	if n <= 0 {
		return nil, fmt.Errorf("feature: hash dimension must be positive, got %d", n)
	}
	return &Hasher{n: n}, nil
}

// Dim returns the output dimension.
func (h *Hasher) Dim() int { return h.n }

// Index returns the feature index for a field/value pair.
func (h *Hasher) Index(field, value string) int {
	f := fnv.New64a()
	f.Write([]byte(field))
	f.Write([]byte{':'})
	f.Write([]byte(value))
	return int(f.Sum64() % uint64(h.n))
}

// Encode one-hot encodes the pairs into a dense vector: each pair sets its
// hashed index to 1 (duplicate hashes accumulate, as in standard hashing
// encoders).
func (h *Hasher) Encode(pairs map[string]string) linalg.Vector {
	v := make(linalg.Vector, h.n)
	for field, value := range pairs {
		v[h.Index(field, value)]++
	}
	return v
}

// EncodeOrdered is Encode over an ordered list of field/value pairs, for
// deterministic iteration in tests.
func (h *Hasher) EncodeOrdered(fields, values []string) (linalg.Vector, error) {
	if len(fields) != len(values) {
		return nil, fmt.Errorf("feature: %d fields for %d values", len(fields), len(values))
	}
	v := make(linalg.Vector, h.n)
	for i, f := range fields {
		v[h.Index(f, values[i])]++
	}
	return v, nil
}

// Interactions appends pairwise product features x[i]·x[j] for the given
// index pairs — the paper's "interaction features to enhance model
// capacity" in the Airbnb pipeline.
func Interactions(x linalg.Vector, pairs [][2]int) (linalg.Vector, error) {
	out := make(linalg.Vector, 0, len(x)+len(pairs))
	out = append(out, x...)
	for _, p := range pairs {
		i, j := p[0], p[1]
		if i < 0 || i >= len(x) || j < 0 || j >= len(x) {
			return nil, fmt.Errorf("feature: interaction pair (%d,%d) out of range for dim %d", i, j, len(x))
		}
		out = append(out, x[i]*x[j])
	}
	return out, nil
}

// Standardizer centers and scales columns to zero mean and unit variance,
// fitted on a sample — the usual preprocessing before regression.
type Standardizer struct {
	mean  linalg.Vector
	scale linalg.Vector
}

// FitStandardizer estimates per-column mean and standard deviation from
// rows. Columns with zero variance get scale 1 (they pass through
// centered).
func FitStandardizer(rows []linalg.Vector) (*Standardizer, error) {
	if len(rows) == 0 {
		return nil, fmt.Errorf("feature: no rows to fit")
	}
	d := len(rows[0])
	mean := make(linalg.Vector, d)
	for _, r := range rows {
		if len(r) != d {
			return nil, fmt.Errorf("feature: ragged rows (%d vs %d)", len(r), d)
		}
		for j, v := range r {
			mean[j] += v
		}
	}
	mean.Scale(1 / float64(len(rows)))
	scale := make(linalg.Vector, d)
	for _, r := range rows {
		for j, v := range r {
			dv := v - mean[j]
			scale[j] += dv * dv
		}
	}
	for j := range scale {
		scale[j] = scale[j] / float64(len(rows))
		if scale[j] > 0 {
			scale[j] = 1 / math.Sqrt(scale[j])
		} else {
			scale[j] = 1
		}
	}
	return &Standardizer{mean: mean, scale: scale}, nil
}

// Transform returns (x − mean) ⊙ scale.
func (s *Standardizer) Transform(x linalg.Vector) (linalg.Vector, error) {
	if len(x) != len(s.mean) {
		return nil, fmt.Errorf("feature: transform dim %d, want %d", len(x), len(s.mean))
	}
	out := make(linalg.Vector, len(x))
	for i, v := range x {
		out[i] = (v - s.mean[i]) * s.scale[i]
	}
	return out, nil
}
