package feature

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"datamarket/internal/linalg"
	"datamarket/internal/randx"
)

func TestPartitionAggregate(t *testing.T) {
	vals := linalg.VectorOf(5, 1, 4, 2, 3, 6) // sorted: 1 2 3 4 5 6
	got, err := PartitionAggregate(vals, 3)
	if err != nil {
		t.Fatal(err)
	}
	want := linalg.VectorOf(3, 7, 11)
	if !got.Equal(want, 1e-12) {
		t.Fatalf("aggregate = %v, want %v", got, want)
	}
	// n = 1: total.
	tot, _ := PartitionAggregate(vals, 1)
	if tot[0] != 21 {
		t.Fatalf("total = %v", tot[0])
	}
	// n = len: sorted values themselves.
	all, _ := PartitionAggregate(vals, 6)
	if !all.Equal(linalg.VectorOf(1, 2, 3, 4, 5, 6), 0) {
		t.Fatalf("identity partition = %v", all)
	}
	// Uneven split: 5 values into 2 partitions → sizes 3 and 2.
	un, _ := PartitionAggregate(linalg.VectorOf(1, 2, 3, 4, 5), 2)
	if !un.Equal(linalg.VectorOf(6, 9), 1e-12) {
		t.Fatalf("uneven = %v", un)
	}
	// Input must not be mutated.
	if vals[0] != 5 {
		t.Fatal("PartitionAggregate mutated input")
	}
}

func TestPartitionAggregateErrors(t *testing.T) {
	if _, err := PartitionAggregate(linalg.VectorOf(1), 0); err == nil {
		t.Fatal("expected error for n=0")
	}
	if _, err := PartitionAggregate(nil, 1); err == nil {
		t.Fatal("expected error for empty values")
	}
	if _, err := PartitionAggregate(linalg.VectorOf(1, 2), 3); err == nil {
		t.Fatal("expected error for n > len")
	}
}

// Property: the aggregate preserves the total mass for any partition count.
func TestPartitionPreservesSumProperty(t *testing.T) {
	f := func(raw []float64, kRaw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		vals := make(linalg.Vector, 0, len(raw))
		var sum float64
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			v = math.Mod(v, 1e6)
			vals = append(vals, v)
			sum += v
		}
		if len(vals) == 0 {
			return true
		}
		k := 1 + int(kRaw)%len(vals)
		agg, err := PartitionAggregate(vals, k)
		if err != nil {
			return false
		}
		return math.Abs(agg.Sum()-sum) <= 1e-6*math.Max(1, math.Abs(sum))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestL2NormalizedAndCompensationFeatures(t *testing.T) {
	v, norm := L2Normalized(linalg.VectorOf(3, 4))
	if math.Abs(norm-5) > 1e-12 || math.Abs(v.Norm2()-1) > 1e-12 {
		t.Fatalf("normalize: %v %v", v, norm)
	}
	z, zn := L2Normalized(linalg.VectorOf(0, 0))
	if zn != 0 || z.Norm2() != 0 {
		t.Fatal("zero vector normalization wrong")
	}
	comps := linalg.VectorOf(1, 2, 3, 4)
	x, scale, reserve, err := CompensationFeatures(comps, 2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x.Norm2()-1) > 1e-12 {
		t.Fatalf("feature norm = %v", x.Norm2())
	}
	// Aggregate is (3, 7), norm √58; reserve = (3+7)/√58.
	if math.Abs(scale-math.Sqrt(58)) > 1e-9 {
		t.Fatalf("scale = %v", scale)
	}
	if math.Abs(reserve-10/math.Sqrt(58)) > 1e-9 {
		t.Fatalf("reserve = %v", reserve)
	}
}

func TestCategorical(t *testing.T) {
	c := NewCategorical()
	if c.Code("a") != 0 || c.Code("b") != 1 || c.Code("a") != 0 {
		t.Fatal("codes not stable first-seen order")
	}
	if c.Code("") != 2 {
		t.Fatal("missing value should get its own code")
	}
	if c.Cardinality() != 3 {
		t.Fatalf("cardinality = %d", c.Cardinality())
	}
	if code, ok := c.Lookup("b"); !ok || code != 1 {
		t.Fatalf("lookup b = %d %v", code, ok)
	}
	if _, ok := c.Lookup("zzz"); ok {
		t.Fatal("lookup of unseen value succeeded")
	}
	labels := c.Labels()
	if labels[2] != MissingLabel {
		t.Fatalf("labels = %v", labels)
	}
	// Labels() returns a copy.
	labels[0] = "mutated"
	if c.Labels()[0] != "a" {
		t.Fatal("Labels aliased internal state")
	}
}

func TestHasher(t *testing.T) {
	h, err := NewHasher(64)
	if err != nil {
		t.Fatal(err)
	}
	if h.Dim() != 64 {
		t.Fatalf("Dim = %d", h.Dim())
	}
	i1 := h.Index("site", "abc")
	if i1 < 0 || i1 >= 64 {
		t.Fatalf("index out of range: %d", i1)
	}
	// Deterministic.
	if h.Index("site", "abc") != i1 {
		t.Fatal("hash index not deterministic")
	}
	// Field separation: same value under different fields should usually
	// land differently (guaranteed for this particular pair).
	if h.Index("site", "abc") == h.Index("app", "abc") &&
		h.Index("site", "xyz") == h.Index("app", "xyz") {
		t.Fatal("field name appears to be ignored by the hash")
	}
	v := h.Encode(map[string]string{"site": "abc", "app": "xyz"})
	if v.Sum() != 2 {
		t.Fatalf("encoded mass = %v, want 2", v.Sum())
	}
	vo, err := h.EncodeOrdered([]string{"site", "app"}, []string{"abc", "xyz"})
	if err != nil {
		t.Fatal(err)
	}
	if !vo.Equal(v, 0) {
		t.Fatal("ordered and map encodings disagree")
	}
	if _, err := h.EncodeOrdered([]string{"a"}, nil); err == nil {
		t.Fatal("expected length mismatch error")
	}
	if _, err := NewHasher(0); err == nil {
		t.Fatal("expected dimension error")
	}
}

func TestInteractions(t *testing.T) {
	x := linalg.VectorOf(2, 3, 5)
	out, err := Interactions(x, [][2]int{{0, 1}, {1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	want := linalg.VectorOf(2, 3, 5, 6, 15)
	if !out.Equal(want, 0) {
		t.Fatalf("interactions = %v", out)
	}
	if _, err := Interactions(x, [][2]int{{0, 9}}); err == nil {
		t.Fatal("expected range error")
	}
}

func TestStandardizer(t *testing.T) {
	rows := []linalg.Vector{
		linalg.VectorOf(1, 10, 7),
		linalg.VectorOf(3, 10, 7),
		linalg.VectorOf(5, 10, 7),
	}
	s, err := FitStandardizer(rows)
	if err != nil {
		t.Fatal(err)
	}
	out, err := s.Transform(linalg.VectorOf(3, 10, 7))
	if err != nil {
		t.Fatal(err)
	}
	// Column 0: mean 3 → 0. Constant columns pass through centered.
	if math.Abs(out[0]) > 1e-12 || math.Abs(out[1]) > 1e-12 || math.Abs(out[2]) > 1e-12 {
		t.Fatalf("transform = %v", out)
	}
	// Transformed sample has unit variance in column 0.
	var sumsq float64
	for _, r := range rows {
		tr, _ := s.Transform(r)
		sumsq += tr[0] * tr[0]
	}
	if math.Abs(sumsq/3-1) > 1e-9 {
		t.Fatalf("variance = %v", sumsq/3)
	}
	if _, err := s.Transform(linalg.VectorOf(1)); err == nil {
		t.Fatal("expected dim error")
	}
	if _, err := FitStandardizer(nil); err == nil {
		t.Fatal("expected empty error")
	}
	if _, err := FitStandardizer([]linalg.Vector{linalg.VectorOf(1), linalg.VectorOf(1, 2)}); err == nil {
		t.Fatal("expected ragged error")
	}
}

func TestPCARecoversDominantDirection(t *testing.T) {
	// Data varies mostly along (1, 1)/√2.
	r := randx.New(9)
	dir := linalg.VectorOf(1, 1)
	dir.Normalize()
	var rows []linalg.Vector
	for i := 0; i < 400; i++ {
		a := r.Normal(0, 3)
		b := r.Normal(0, 0.1)
		rows = append(rows, linalg.VectorOf(a*dir[0]-b*dir[1], a*dir[1]+b*dir[0]))
	}
	p, err := FitPCA(rows, 1)
	if err != nil {
		t.Fatal(err)
	}
	if p.K() != 1 {
		t.Fatalf("K = %d", p.K())
	}
	ev := p.ExplainedVariance()
	if ev[0] < 7 || ev[0] > 11 {
		t.Fatalf("explained variance = %v, want ≈ 9", ev[0])
	}
	// The component must align with dir: differencing two transforms
	// cancels the centering, leaving componentᵀ·dir ≈ ±1.
	tr1, err := p.Transform(dir)
	if err != nil {
		t.Fatal(err)
	}
	tr0, err := p.Transform(linalg.NewVector(2))
	if err != nil {
		t.Fatal(err)
	}
	if got := math.Abs(tr1[0] - tr0[0]); math.Abs(got-1) > 0.01 {
		t.Fatalf("|componentᵀ·dir| = %v, want ≈ 1", got)
	}
}

func TestPCAErrors(t *testing.T) {
	rows := []linalg.Vector{linalg.VectorOf(1, 2), linalg.VectorOf(3, 4)}
	if _, err := FitPCA(rows[:1], 1); err == nil {
		t.Fatal("expected too-few-rows error")
	}
	if _, err := FitPCA(rows, 0); err == nil {
		t.Fatal("expected k range error")
	}
	if _, err := FitPCA(rows, 3); err == nil {
		t.Fatal("expected k range error")
	}
	p, _ := FitPCA(rows, 1)
	if _, err := p.Transform(linalg.VectorOf(1)); err == nil {
		t.Fatal("expected dim error")
	}
}

func TestTopKAndNonzeroAndProject(t *testing.T) {
	v := linalg.VectorOf(0.1, 5, 0, -3, 2)
	top := TopKIndices(v, 2)
	if top[0] != 1 || top[1] != 4 {
		t.Fatalf("top = %v", top)
	}
	if got := TopKIndices(v, 99); len(got) != 5 {
		t.Fatalf("clamped top len = %d", len(got))
	}
	nz := NonzeroIndices(v, 0.5)
	if len(nz) != 3 || nz[0] != 1 || nz[1] != 3 || nz[2] != 4 {
		t.Fatalf("nonzero = %v", nz)
	}
	pr, err := Project(v, nz)
	if err != nil {
		t.Fatal(err)
	}
	if !pr.Equal(linalg.VectorOf(5, -3, 2), 0) {
		t.Fatalf("projected = %v", pr)
	}
	if _, err := Project(v, []int{9}); err == nil {
		t.Fatal("expected range error")
	}
}

// TestPartitionAggregateSortedMatchesDense pins the sparse aggregation
// bit-for-bit against PartitionAggregate over the materialized dense
// vector, across random mixes of negatives, zeros, and positives.
func TestPartitionAggregateSortedMatchesDense(t *testing.T) {
	r := randx.New(31)
	for trial := 0; trial < 300; trial++ {
		nonzero := r.Intn(30)
		zeros := r.Intn(50)
		total := nonzero + zeros
		if total == 0 {
			total, zeros = 1, 1
		}
		vals := make(linalg.Vector, 0, nonzero)
		for i := 0; i < nonzero; i++ {
			v := r.Normal(0, 3)
			if v == 0 {
				v = 1
			}
			vals = append(vals, v)
		}
		sorted := vals.Clone()
		sort.Float64s(sorted)
		dense := make(linalg.Vector, 0, total)
		dense = append(dense, vals...)
		for i := 0; i < zeros; i++ {
			dense = append(dense, 0)
		}
		n := 1 + r.Intn(total)
		want, err := PartitionAggregate(dense, n)
		if err != nil {
			t.Fatal(err)
		}
		got := make(linalg.Vector, n)
		if err := PartitionAggregateSorted(got, sorted, zeros); err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d (nonzero=%d zeros=%d n=%d) partition %d: sparse %v != dense %v",
					trial, nonzero, zeros, n, i, got[i], want[i])
			}
		}
	}
}

func TestPartitionAggregateSortedErrors(t *testing.T) {
	if err := PartitionAggregateSorted(nil, linalg.VectorOf(1), 0); err == nil {
		t.Fatal("expected partition count error")
	}
	if err := PartitionAggregateSorted(make(linalg.Vector, 1), linalg.VectorOf(1), -1); err == nil {
		t.Fatal("expected negative zeros error")
	}
	if err := PartitionAggregateSorted(make(linalg.Vector, 1), nil, 0); err == nil {
		t.Fatal("expected empty error")
	}
	if err := PartitionAggregateSorted(make(linalg.Vector, 3), linalg.VectorOf(1), 1); err == nil {
		t.Fatal("expected too-many-partitions error")
	}
}
