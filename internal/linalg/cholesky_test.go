package linalg

import (
	"math"
	"math/rand"
	"testing"
)

func TestCholeskyKnown(t *testing.T) {
	a := MatrixFromRows([][]float64{{4, 2}, {2, 3}})
	f, err := Cholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	// L = [[2,0],[1,sqrt(2)]].
	if !almostEq(f.L.At(0, 0), 2, 1e-12) || !almostEq(f.L.At(1, 0), 1, 1e-12) ||
		!almostEq(f.L.At(1, 1), math.Sqrt2, 1e-12) || f.L.At(0, 1) != 0 {
		t.Fatalf("L = \n%v", f.L)
	}
	// det = 4*3 - 4 = 8.
	if !almostEq(f.Det(), 8, 1e-10) {
		t.Fatalf("Det = %v", f.Det())
	}
}

func TestCholeskyReconstructAndSolve(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{1, 2, 4, 9, 20} {
		a := randomSPD(rng, n)
		f, err := Cholesky(a)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if !f.L.Mul(f.L.T()).Equal(a, 1e-8*math.Max(1, a.MaxAbs())) {
			t.Fatalf("n=%d: LLᵀ != A", n)
		}
		// Solve against a known x.
		x := make(Vector, n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		b := a.MulVec(x)
		got := f.SolveVec(b)
		if !got.Equal(x, 1e-6*math.Max(1, x.NormInf())) {
			t.Fatalf("n=%d: solve error: %v vs %v", n, got, x)
		}
	}
}

func TestCholeskyRejectsIndefinite(t *testing.T) {
	a := MatrixFromRows([][]float64{{1, 2}, {2, 1}}) // eigenvalues 3, -1
	if _, err := Cholesky(a); err == nil {
		t.Fatal("expected error for indefinite matrix")
	}
	if IsPositiveDefinite(a) {
		t.Fatal("indefinite matrix reported PD")
	}
	if !IsPositiveDefinite(Identity(3)) {
		t.Fatal("identity reported non-PD")
	}
}

func TestInverseSPD(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := randomSPD(rng, 6)
	inv, err := InverseSPD(a)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Mul(inv).Equal(Identity(6), 1e-8) {
		t.Fatalf("A·A⁻¹ != I:\n%v", a.Mul(inv))
	}
	if !inv.IsSymmetric(1e-10) {
		t.Fatal("inverse of SPD not symmetric")
	}
}

func TestSolveSPD(t *testing.T) {
	a := MatrixFromRows([][]float64{{2, 0}, {0, 4}})
	x, err := SolveSPD(a, VectorOf(2, 8))
	if err != nil {
		t.Fatal(err)
	}
	if !x.Equal(VectorOf(1, 2), 1e-12) {
		t.Fatalf("SolveSPD = %v", x)
	}
}

func TestCholeskyMulVecMapsBallToEllipsoid(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	a := randomSPD(rng, 4)
	f, err := Cholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	inv, err := InverseSPD(a)
	if err != nil {
		t.Fatal(err)
	}
	// For any unit u, x = L·u satisfies xᵀ A⁻¹ x = 1.
	for trial := 0; trial < 50; trial++ {
		u := make(Vector, 4)
		for i := range u {
			u[i] = rng.NormFloat64()
		}
		u.Normalize()
		x := f.MulVec(u)
		if q := inv.QuadForm(x); !almostEq(q, 1, 1e-8) {
			t.Fatalf("trial %d: quad form = %v, want 1", trial, q)
		}
	}
}
