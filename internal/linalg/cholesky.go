package linalg

import (
	"fmt"
	"math"
)

// CholeskyFactor is the lower-triangular factor L with a = L·Lᵀ.
type CholeskyFactor struct {
	L *Matrix
}

// Cholesky factorizes a symmetric positive definite matrix a into L·Lᵀ.
// It returns an error if a is not (numerically) positive definite.
func Cholesky(a *Matrix) (*CholeskyFactor, error) {
	n := a.Rows()
	if n != a.Cols() {
		return nil, fmt.Errorf("%w: Cholesky needs square matrix, got %dx%d", ErrDimension, a.Rows(), a.Cols())
	}
	l := NewMatrix(n, n)
	for j := 0; j < n; j++ {
		var d float64 = a.At(j, j)
		lrowj := l.Row(j)
		for k := 0; k < j; k++ {
			d -= lrowj[k] * lrowj[k]
		}
		if d <= 0 || math.IsNaN(d) {
			return nil, fmt.Errorf("linalg: matrix not positive definite at pivot %d (d=%g)", j, d)
		}
		ljj := math.Sqrt(d)
		l.Set(j, j, ljj)
		inv := 1 / ljj
		for i := j + 1; i < n; i++ {
			s := a.At(i, j)
			lrowi := l.Row(i)
			for k := 0; k < j; k++ {
				s -= lrowi[k] * lrowj[k]
			}
			l.Set(i, j, s*inv)
		}
	}
	return &CholeskyFactor{L: l}, nil
}

// SolveVec solves a·x = b given a = L·Lᵀ, via forward and back substitution.
func (c *CholeskyFactor) SolveVec(b Vector) Vector {
	n := c.L.Rows()
	if len(b) != n {
		panic("linalg: Cholesky SolveVec length mismatch")
	}
	// Forward: L y = b.
	y := make(Vector, n)
	for i := 0; i < n; i++ {
		s := b[i]
		row := c.L.Row(i)
		for k := 0; k < i; k++ {
			s -= row[k] * y[k]
		}
		y[i] = s / row[i]
	}
	// Backward: Lᵀ x = y.
	x := make(Vector, n)
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		for k := i + 1; k < n; k++ {
			s -= c.L.At(k, i) * x[k]
		}
		x[i] = s / c.L.At(i, i)
	}
	return x
}

// MulVec returns L·v, mapping the unit ball into the ellipsoid with shape
// L·Lᵀ; it is the sampling primitive used by multivariate normal draws and
// by ellipsoid rejection sampling.
func (c *CholeskyFactor) MulVec(v Vector) Vector {
	n := c.L.Rows()
	if len(v) != n {
		panic("linalg: Cholesky MulVec length mismatch")
	}
	out := make(Vector, n)
	for i := 0; i < n; i++ {
		row := c.L.Row(i)
		var s float64
		for k := 0; k <= i; k++ {
			s += row[k] * v[k]
		}
		out[i] = s
	}
	return out
}

// LogDet returns log det(a) = 2·Σ log L[i,i].
func (c *CholeskyFactor) LogDet() float64 {
	var s float64
	n := c.L.Rows()
	for i := 0; i < n; i++ {
		s += math.Log(c.L.At(i, i))
	}
	return 2 * s
}

// Det returns det(a). Prefer LogDet in high dimension.
func (c *CholeskyFactor) Det() float64 { return math.Exp(c.LogDet()) }

// InverseSPD inverts a symmetric positive definite matrix via Cholesky.
func InverseSPD(a *Matrix) (*Matrix, error) {
	f, err := Cholesky(a)
	if err != nil {
		return nil, err
	}
	n := a.Rows()
	inv := NewMatrix(n, n)
	for j := 0; j < n; j++ {
		x := f.SolveVec(Basis(n, j))
		for i := 0; i < n; i++ {
			inv.Set(i, j, x[i])
		}
	}
	inv.Symmetrize()
	return inv, nil
}

// SolveSPD solves a·x = b for a symmetric positive definite a.
func SolveSPD(a *Matrix, b Vector) (Vector, error) {
	f, err := Cholesky(a)
	if err != nil {
		return nil, err
	}
	return f.SolveVec(b), nil
}
