package linalg

import (
	"math"
	"math/rand"
	"testing"
)

// randomSPD builds a random symmetric positive definite matrix with
// condition number controlled by the diagonal shift.
func randomSPD(rng *rand.Rand, n int) *Matrix {
	b := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			b.Set(i, j, rng.NormFloat64())
		}
	}
	a := b.T().Mul(b)
	for i := 0; i < n; i++ {
		a.Set(i, i, a.At(i, i)+0.5)
	}
	a.Symmetrize()
	return a
}

func TestEigenSymDiagonal(t *testing.T) {
	a := Diagonal(VectorOf(3, 1, 2))
	vals, vecs, err := EigenSym(a)
	if err != nil {
		t.Fatal(err)
	}
	if !vals.Equal(VectorOf(3, 2, 1), 1e-12) {
		t.Fatalf("vals = %v", vals)
	}
	// Reconstruction check.
	recon := vecs.Mul(Diagonal(vals)).Mul(vecs.T())
	if !recon.Equal(a, 1e-10) {
		t.Fatalf("reconstruction failed:\n%v", recon)
	}
}

func TestEigenSymKnown2x2(t *testing.T) {
	// [[2,1],[1,2]] has eigenvalues 3 and 1.
	a := MatrixFromRows([][]float64{{2, 1}, {1, 2}})
	vals, _, err := EigenSym(a)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(vals[0], 3, 1e-12) || !almostEq(vals[1], 1, 1e-12) {
		t.Fatalf("vals = %v, want [3 1]", vals)
	}
}

func TestEigenSymRandomReconstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{1, 2, 3, 5, 10, 25} {
		a := randomSPD(rng, n)
		vals, vecs, err := EigenSym(a)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		// Eigenvalues sorted descending and positive for SPD.
		for i := 0; i < n; i++ {
			if vals[i] <= 0 {
				t.Fatalf("n=%d: non-positive eigenvalue %v", n, vals[i])
			}
			if i > 0 && vals[i] > vals[i-1]+1e-12 {
				t.Fatalf("n=%d: eigenvalues not sorted: %v", n, vals)
			}
		}
		// V·D·Vᵀ = A.
		recon := vecs.Mul(Diagonal(vals)).Mul(vecs.T())
		tol := 1e-8 * math.Max(1, a.MaxAbs())
		if !recon.Equal(a, tol) {
			t.Fatalf("n=%d: reconstruction error %v", n, maxDiff(recon, a))
		}
		// Vᵀ·V = I (orthogonality).
		if !vecs.T().Mul(vecs).Equal(Identity(n), 1e-9) {
			t.Fatalf("n=%d: eigenvectors not orthonormal", n)
		}
		// Trace equals eigenvalue sum; logdet via eigen equals via Cholesky.
		if !almostEq(a.Trace(), vals.Sum(), 1e-8*math.Max(1, a.Trace())) {
			t.Fatalf("n=%d: trace %v != eig sum %v", n, a.Trace(), vals.Sum())
		}
		ld1, err := LogDetSym(a)
		if err != nil {
			t.Fatal(err)
		}
		f, err := Cholesky(a)
		if err != nil {
			t.Fatal(err)
		}
		if !almostEq(ld1, f.LogDet(), 1e-7*math.Max(1, math.Abs(ld1))) {
			t.Fatalf("n=%d: logdet mismatch %v vs %v", n, ld1, f.LogDet())
		}
	}
}

func TestEigenSymRejectsNonSymmetric(t *testing.T) {
	a := MatrixFromRows([][]float64{{1, 2}, {0, 1}})
	if _, _, err := EigenSym(a); err == nil {
		t.Fatal("expected error for non-symmetric input")
	}
	if _, _, err := EigenSym(NewMatrix(2, 3)); err == nil {
		t.Fatal("expected error for non-square input")
	}
}

func TestSmallestEigenvalueSym(t *testing.T) {
	a := Diagonal(VectorOf(5, 0.25, 9))
	lo, err := SmallestEigenvalueSym(a)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(lo, 0.25, 1e-12) {
		t.Fatalf("smallest = %v", lo)
	}
}

func TestPowerIterationMatchesJacobi(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	a := randomSPD(rng, 8)
	vals, _, err := EigenSym(a)
	if err != nil {
		t.Fatal(err)
	}
	lam, v := PowerIteration(a, Ones(8), 500)
	if !almostEq(lam, vals[0], 1e-6*vals[0]) {
		t.Fatalf("power iteration %v vs Jacobi %v", lam, vals[0])
	}
	// Residual ‖Av − λv‖ small.
	res := a.MulVec(v).Sub(v.Scaled(lam)).Norm2()
	if res > 1e-5*vals[0] {
		t.Fatalf("power iteration residual %v", res)
	}
}

func maxDiff(a, b *Matrix) float64 {
	var m float64
	for i := 0; i < a.Rows(); i++ {
		for j := 0; j < a.Cols(); j++ {
			d := math.Abs(a.At(i, j) - b.At(i, j))
			if d > m {
				m = d
			}
		}
	}
	return m
}
