package linalg

import (
	"math"
	"math/rand"
	"testing"
)

func TestLeastSquaresExact(t *testing.T) {
	// Square full-rank system: exact solve.
	a := MatrixFromRows([][]float64{{2, 0}, {1, 3}})
	x, err := LeastSquares(a, VectorOf(4, 11))
	if err != nil {
		t.Fatal(err)
	}
	if !x.Equal(VectorOf(2, 3), 1e-10) {
		t.Fatalf("x = %v, want [2 3]", x)
	}
}

func TestLeastSquaresOverdetermined(t *testing.T) {
	// Fit y = 1 + 2x through noisy-free points: recover exactly.
	xs := []float64{0, 1, 2, 3, 4}
	a := NewMatrix(len(xs), 2)
	b := make(Vector, len(xs))
	for i, x := range xs {
		a.Set(i, 0, 1)
		a.Set(i, 1, x)
		b[i] = 1 + 2*x
	}
	coef, err := LeastSquares(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !coef.Equal(VectorOf(1, 2), 1e-10) {
		t.Fatalf("coef = %v", coef)
	}
}

func TestLeastSquaresResidualOrthogonality(t *testing.T) {
	// The LS residual must be orthogonal to the column space.
	rng := rand.New(rand.NewSource(21))
	m, n := 30, 5
	a := NewMatrix(m, n)
	b := make(Vector, m)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			a.Set(i, j, rng.NormFloat64())
		}
		b[i] = rng.NormFloat64()
	}
	x, err := LeastSquares(a, b)
	if err != nil {
		t.Fatal(err)
	}
	r := b.Sub(a.MulVec(x))
	g := a.MulVecT(r) // Aᵀr should vanish
	if g.NormInf() > 1e-9*math.Max(1, b.NormInf()) {
		t.Fatalf("normal equations violated: Aᵀr = %v", g)
	}
}

func TestQRRankDeficient(t *testing.T) {
	a := MatrixFromRows([][]float64{{1, 2}, {2, 4}, {3, 6}}) // rank 1
	f, err := QR(a)
	if err != nil {
		t.Fatal(err)
	}
	if f.IsFullRank() {
		t.Fatal("rank-1 matrix reported full rank")
	}
	if _, err := f.Solve(VectorOf(1, 2, 3)); err == nil {
		t.Fatal("expected Solve error on rank-deficient matrix")
	}
}

func TestQRShapeErrors(t *testing.T) {
	if _, err := QR(NewMatrix(2, 3)); err == nil {
		t.Fatal("expected error for wide matrix")
	}
	f, err := QR(Identity(2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Solve(VectorOf(1, 2, 3)); err == nil {
		t.Fatal("expected rhs length error")
	}
}

func TestRidgeLeastSquares(t *testing.T) {
	// Ridge with a rank-deficient design must still produce a solution,
	// and larger lambda must shrink the coefficient norm.
	a := MatrixFromRows([][]float64{{1, 1}, {1, 1}, {1, 1}})
	b := VectorOf(2, 2, 2)
	x1, err := RidgeLeastSquares(a, b, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	x2, err := RidgeLeastSquares(a, b, 10)
	if err != nil {
		t.Fatal(err)
	}
	if !(x2.Norm2() < x1.Norm2()) {
		t.Fatalf("ridge did not shrink: ‖x(0.01)‖=%v ‖x(10)‖=%v", x1.Norm2(), x2.Norm2())
	}
	if _, err := RidgeLeastSquares(a, b, -1); err == nil {
		t.Fatal("expected error for negative lambda")
	}
	// lambda = 0 equals plain least squares on a full-rank system.
	fr := MatrixFromRows([][]float64{{1, 0}, {0, 1}, {1, 1}})
	y := VectorOf(1, 2, 3)
	p1, _ := RidgeLeastSquares(fr, y, 0)
	p2, _ := LeastSquares(fr, y)
	if !p1.Equal(p2, 1e-12) {
		t.Fatalf("lambda=0 mismatch: %v vs %v", p1, p2)
	}
}

func TestRidgeShrinksTowardZeroProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	m, n := 12, 4
	a := NewMatrix(m, n)
	b := make(Vector, m)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			a.Set(i, j, rng.NormFloat64())
		}
		b[i] = rng.NormFloat64()
	}
	prev := math.Inf(1)
	for _, lam := range []float64{0, 0.1, 1, 10, 100} {
		x, err := RidgeLeastSquares(a, b, lam)
		if err != nil {
			t.Fatal(err)
		}
		if x.Norm2() > prev+1e-9 {
			t.Fatalf("norm not monotone in lambda at %v", lam)
		}
		prev = x.Norm2()
	}
}
