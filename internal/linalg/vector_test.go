package linalg

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestVectorDot(t *testing.T) {
	v := VectorOf(1, 2, 3)
	w := VectorOf(4, -5, 6)
	if got := v.Dot(w); got != 1*4-2*5+3*6 {
		t.Fatalf("Dot = %v, want 12", got)
	}
}

func TestVectorDotPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on length mismatch")
		}
	}()
	VectorOf(1, 2).Dot(VectorOf(1))
}

func TestVectorNorms(t *testing.T) {
	v := VectorOf(3, -4)
	if got := v.Norm2(); !almostEq(got, 5, 1e-12) {
		t.Errorf("Norm2 = %v, want 5", got)
	}
	if got := v.Norm1(); !almostEq(got, 7, 1e-12) {
		t.Errorf("Norm1 = %v, want 7", got)
	}
	if got := v.NormInf(); !almostEq(got, 4, 1e-12) {
		t.Errorf("NormInf = %v, want 4", got)
	}
}

func TestNorm2OverflowSafe(t *testing.T) {
	big := 1e300
	v := VectorOf(big, big)
	want := big * math.Sqrt2
	if got := v.Norm2(); math.IsInf(got, 0) || math.Abs(got-want)/want > 1e-12 {
		t.Fatalf("Norm2 overflowed: got %v, want %v", got, want)
	}
}

func TestVectorArithmetic(t *testing.T) {
	v := VectorOf(1, 2, 3)
	w := VectorOf(10, 20, 30)
	if got := v.Add(w); !got.Equal(VectorOf(11, 22, 33), 0) {
		t.Errorf("Add = %v", got)
	}
	if got := w.Sub(v); !got.Equal(VectorOf(9, 18, 27), 0) {
		t.Errorf("Sub = %v", got)
	}
	if got := v.Scaled(2); !got.Equal(VectorOf(2, 4, 6), 0) {
		t.Errorf("Scaled = %v", got)
	}
	u := v.Clone()
	u.AddScaled(3, w)
	if !u.Equal(VectorOf(31, 62, 93), 0) {
		t.Errorf("AddScaled = %v", u)
	}
	// v must be untouched by Clone-then-modify.
	if !v.Equal(VectorOf(1, 2, 3), 0) {
		t.Errorf("Clone aliased the source: %v", v)
	}
}

func TestVectorNormalize(t *testing.T) {
	v := VectorOf(3, 4)
	n := v.Normalize()
	if !almostEq(n, 5, 1e-12) {
		t.Fatalf("Normalize returned %v, want 5", n)
	}
	if !almostEq(v.Norm2(), 1, 1e-12) {
		t.Fatalf("normalized norm = %v", v.Norm2())
	}
	z := VectorOf(0, 0)
	if n := z.Normalize(); n != 0 {
		t.Fatalf("zero vector Normalize = %v, want 0", n)
	}
}

func TestVectorMinMaxSum(t *testing.T) {
	v := VectorOf(2, -7, 5)
	if v.Max() != 5 || v.Min() != -7 || v.Sum() != 0 {
		t.Fatalf("Max/Min/Sum = %v/%v/%v", v.Max(), v.Min(), v.Sum())
	}
}

func TestVectorIsFinite(t *testing.T) {
	if !VectorOf(1, 2).IsFinite() {
		t.Error("finite vector reported non-finite")
	}
	if VectorOf(1, math.NaN()).IsFinite() {
		t.Error("NaN vector reported finite")
	}
	if VectorOf(math.Inf(1)).IsFinite() {
		t.Error("Inf vector reported finite")
	}
}

func TestOuterAndBasis(t *testing.T) {
	m := Outer(VectorOf(1, 2), VectorOf(3, 4, 5))
	want := MatrixFromRows([][]float64{{3, 4, 5}, {6, 8, 10}})
	if !m.Equal(want, 0) {
		t.Fatalf("Outer = \n%v", m)
	}
	e := Basis(3, 1)
	if !e.Equal(VectorOf(0, 1, 0), 0) {
		t.Fatalf("Basis = %v", e)
	}
	if o := Ones(2); !o.Equal(VectorOf(1, 1), 0) {
		t.Fatalf("Ones = %v", o)
	}
}

// Property: Cauchy-Schwarz |v·w| ≤ ‖v‖‖w‖ for arbitrary inputs.
func TestDotCauchySchwarzProperty(t *testing.T) {
	f := func(a, b, c, d, e, g float64) bool {
		v := VectorOf(clamp(a), clamp(b), clamp(c))
		w := VectorOf(clamp(d), clamp(e), clamp(g))
		lhs := math.Abs(v.Dot(w))
		rhs := v.Norm2() * w.Norm2()
		return lhs <= rhs*(1+1e-9)+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: triangle inequality ‖v+w‖ ≤ ‖v‖+‖w‖.
func TestTriangleInequalityProperty(t *testing.T) {
	f := func(a, b, c, d float64) bool {
		v := VectorOf(clamp(a), clamp(b))
		w := VectorOf(clamp(c), clamp(d))
		return v.Add(w).Norm2() <= v.Norm2()+w.Norm2()+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// clamp squashes quick-generated values into a numerically sane range so
// properties test algebra rather than float overflow pathologies.
func clamp(x float64) float64 {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return 0
	}
	return math.Mod(x, 1e6)
}
