package linalg

import (
	"fmt"
	"math"
	"sort"
)

// EigenSym computes the full eigendecomposition of a symmetric matrix using
// the cyclic Jacobi rotation method. It returns the eigenvalues sorted in
// descending order and the matrix whose i-th column is the eigenvector for
// the i-th eigenvalue, so that a = V·diag(vals)·Vᵀ.
//
// Jacobi is O(n³) per sweep with typically 6–10 sweeps; for the moderate
// dimensions in this library (n ≤ ~1024, and usually ≤ 128 on hot paths) it
// is robust, embarrassingly simple, and accurate to near machine precision
// for symmetric input — which is all the ellipsoid machinery requires.
func EigenSym(a *Matrix) (vals Vector, vecs *Matrix, err error) {
	n := a.Rows()
	if n != a.Cols() {
		return nil, nil, fmt.Errorf("%w: EigenSym needs square matrix, got %dx%d", ErrDimension, a.Rows(), a.Cols())
	}
	if !a.IsSymmetric(1e-9 * math.Max(1, a.MaxAbs())) {
		return nil, nil, fmt.Errorf("linalg: EigenSym input is not symmetric")
	}
	// Work on a copy; accumulate rotations into v.
	w := a.Clone()
	w.Symmetrize()
	v := Identity(n)

	const maxSweeps = 64
	for sweep := 0; sweep < maxSweeps; sweep++ {
		off := offDiagNorm(w)
		if off <= 1e-14*math.Max(1, w.MaxAbs()) {
			break
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := w.At(p, q)
				if math.Abs(apq) <= 1e-300 {
					continue
				}
				app := w.At(p, p)
				aqq := w.At(q, q)
				// Compute the Jacobi rotation (c, s) annihilating w[p,q].
				theta := (aqq - app) / (2 * apq)
				var t float64
				if theta >= 0 {
					t = 1 / (theta + math.Sqrt(1+theta*theta))
				} else {
					t = -1 / (-theta + math.Sqrt(1+theta*theta))
				}
				c := 1 / math.Sqrt(1+t*t)
				s := t * c
				applyJacobi(w, v, p, q, c, s)
			}
		}
	}

	vals = make(Vector, n)
	for i := 0; i < n; i++ {
		vals[i] = w.At(i, i)
	}
	// Sort eigenpairs by descending eigenvalue.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(i, j int) bool { return vals[idx[i]] > vals[idx[j]] })
	sortedVals := make(Vector, n)
	sortedVecs := NewMatrix(n, n)
	for k, i := range idx {
		sortedVals[k] = vals[i]
		for r := 0; r < n; r++ {
			sortedVecs.Set(r, k, v.At(r, i))
		}
	}
	return sortedVals, sortedVecs, nil
}

// applyJacobi applies the rotation G(p,q,c,s) as w ← GᵀwG and v ← vG.
func applyJacobi(w, v *Matrix, p, q int, c, s float64) {
	n := w.Rows()
	for i := 0; i < n; i++ {
		wip := w.At(i, p)
		wiq := w.At(i, q)
		w.Set(i, p, c*wip-s*wiq)
		w.Set(i, q, s*wip+c*wiq)
	}
	for j := 0; j < n; j++ {
		wpj := w.At(p, j)
		wqj := w.At(q, j)
		w.Set(p, j, c*wpj-s*wqj)
		w.Set(q, j, s*wpj+c*wqj)
	}
	for i := 0; i < n; i++ {
		vip := v.At(i, p)
		viq := v.At(i, q)
		v.Set(i, p, c*vip-s*viq)
		v.Set(i, q, s*vip+c*viq)
	}
}

func offDiagNorm(m *Matrix) float64 {
	var s float64
	n := m.Rows()
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			x := m.At(i, j)
			s += 2 * x * x
		}
	}
	return math.Sqrt(s)
}

// EigenvaluesSym returns only the eigenvalues of a symmetric matrix, in
// descending order.
func EigenvaluesSym(a *Matrix) (Vector, error) {
	vals, _, err := EigenSym(a)
	return vals, err
}

// SmallestEigenvalueSym returns λ_min of a symmetric matrix.
func SmallestEigenvalueSym(a *Matrix) (float64, error) {
	vals, err := EigenvaluesSym(a)
	if err != nil {
		return 0, err
	}
	if len(vals) == 0 {
		return 0, fmt.Errorf("linalg: empty matrix has no eigenvalues")
	}
	return vals[len(vals)-1], nil
}

// LogDetSym returns log det(a) for a symmetric positive definite matrix,
// computed from its eigenvalues to avoid overflow in high dimension.
func LogDetSym(a *Matrix) (float64, error) {
	vals, err := EigenvaluesSym(a)
	if err != nil {
		return 0, err
	}
	var s float64
	for _, v := range vals {
		if v <= 0 {
			return 0, fmt.Errorf("linalg: LogDetSym matrix is not positive definite (eigenvalue %g)", v)
		}
		s += math.Log(v)
	}
	return s, nil
}

// IsPositiveDefinite reports whether the symmetric matrix a is positive
// definite, determined by attempting a Cholesky factorization.
func IsPositiveDefinite(a *Matrix) bool {
	_, err := Cholesky(a)
	return err == nil
}

// PowerIteration approximates the dominant eigenvalue/vector pair of a
// symmetric PSD matrix; it is used by tests to cross-check Jacobi and by PCA
// for quick top-component extraction. start must be non-zero; iters bounds
// the work.
func PowerIteration(a *Matrix, start Vector, iters int) (float64, Vector) {
	v := start.Clone()
	v.Normalize()
	var lambda float64
	for k := 0; k < iters; k++ {
		w := a.MulVec(v)
		nrm := w.Norm2()
		if nrm == 0 {
			return 0, v
		}
		w.Scale(1 / nrm)
		lambda = nrm
		v = w
	}
	// Rayleigh quotient for a final polish.
	av := a.MulVec(v)
	lambda = v.Dot(av)
	return lambda, v
}
