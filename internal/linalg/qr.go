package linalg

import (
	"fmt"
	"math"
)

// QRFactor holds a Householder QR factorization of an m×n matrix with
// m ≥ n: a = Q·R where Q is m×m orthogonal (stored implicitly as
// Householder reflectors) and R is n×n upper triangular.
type QRFactor struct {
	qr    *Matrix // packed reflectors below diagonal, R on/above diagonal
	rdiag Vector  // diagonal of R
}

// QR computes the Householder QR factorization of a (m ≥ n required).
func QR(a *Matrix) (*QRFactor, error) {
	m, n := a.Rows(), a.Cols()
	if m < n {
		return nil, fmt.Errorf("%w: QR requires rows >= cols, got %dx%d", ErrDimension, m, n)
	}
	qr := a.Clone()
	rdiag := make(Vector, n)
	for k := 0; k < n; k++ {
		// Norm of column k below row k.
		var nrm float64
		for i := k; i < m; i++ {
			nrm = math.Hypot(nrm, qr.At(i, k))
		}
		if nrm == 0 {
			rdiag[k] = 0
			continue
		}
		if qr.At(k, k) < 0 {
			nrm = -nrm
		}
		for i := k; i < m; i++ {
			qr.Set(i, k, qr.At(i, k)/nrm)
		}
		qr.Set(k, k, qr.At(k, k)+1)
		// Apply reflector to remaining columns.
		for j := k + 1; j < n; j++ {
			var s float64
			for i := k; i < m; i++ {
				s += qr.At(i, k) * qr.At(i, j)
			}
			s = -s / qr.At(k, k)
			for i := k; i < m; i++ {
				qr.Set(i, j, qr.At(i, j)+s*qr.At(i, k))
			}
		}
		rdiag[k] = -nrm
	}
	return &QRFactor{qr: qr, rdiag: rdiag}, nil
}

// IsFullRank reports whether R has no (numerically) zero pivot.
func (f *QRFactor) IsFullRank() bool {
	for _, d := range f.rdiag {
		if math.Abs(d) < 1e-12 {
			return false
		}
	}
	return true
}

// Solve returns the least-squares solution x minimizing ‖a·x − b‖₂.
// It returns an error if a is rank deficient.
func (f *QRFactor) Solve(b Vector) (Vector, error) {
	m, n := f.qr.Rows(), f.qr.Cols()
	if len(b) != m {
		return nil, fmt.Errorf("%w: QR Solve rhs length %d, want %d", ErrDimension, len(b), m)
	}
	if !f.IsFullRank() {
		return nil, fmt.Errorf("linalg: QR Solve on rank-deficient matrix")
	}
	y := b.Clone()
	// Apply Qᵀ to y.
	for k := 0; k < n; k++ {
		if f.qr.At(k, k) == 0 {
			continue
		}
		var s float64
		for i := k; i < m; i++ {
			s += f.qr.At(i, k) * y[i]
		}
		s = -s / f.qr.At(k, k)
		for i := k; i < m; i++ {
			y[i] += s * f.qr.At(i, k)
		}
	}
	// Back substitution with R.
	x := make(Vector, n)
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		for j := i + 1; j < n; j++ {
			s -= f.qr.At(i, j) * x[j]
		}
		x[i] = s / f.rdiag[i]
	}
	return x, nil
}

// LeastSquares solves min ‖a·x − b‖₂ in one call.
func LeastSquares(a *Matrix, b Vector) (Vector, error) {
	f, err := QR(a)
	if err != nil {
		return nil, err
	}
	return f.Solve(b)
}

// RidgeLeastSquares solves min ‖a·x − b‖² + λ‖x‖² by augmenting the system
// with √λ·I rows; λ must be non-negative. λ = 0 reduces to plain least
// squares, and any λ > 0 guarantees full rank.
func RidgeLeastSquares(a *Matrix, b Vector, lambda float64) (Vector, error) {
	if lambda < 0 {
		return nil, fmt.Errorf("linalg: negative ridge penalty %g", lambda)
	}
	if lambda == 0 {
		return LeastSquares(a, b)
	}
	m, n := a.Rows(), a.Cols()
	aug := NewMatrix(m+n, n)
	for i := 0; i < m; i++ {
		copy(aug.Row(i), a.Row(i))
	}
	s := math.Sqrt(lambda)
	for i := 0; i < n; i++ {
		aug.Set(m+i, i, s)
	}
	rhs := make(Vector, m+n)
	copy(rhs, b)
	return LeastSquares(aug, rhs)
}
