package linalg

import (
	"fmt"
	"math"
	"strings"
)

// Matrix is a dense row-major matrix.
type Matrix struct {
	rows, cols int
	data       []float64
}

// NewMatrix returns a zero r×c matrix.
func NewMatrix(r, c int) *Matrix {
	if r < 0 || c < 0 {
		panic("linalg: negative matrix dimension")
	}
	return &Matrix{rows: r, cols: c, data: make([]float64, r*c)}
}

// MatrixFromRows builds a matrix from row slices, which must all share a
// length. The data is copied.
func MatrixFromRows(rows [][]float64) *Matrix {
	r := len(rows)
	if r == 0 {
		return NewMatrix(0, 0)
	}
	c := len(rows[0])
	m := NewMatrix(r, c)
	for i, row := range rows {
		if len(row) != c {
			panic(fmt.Sprintf("linalg: ragged rows: row %d has %d cols, want %d", i, len(row), c))
		}
		copy(m.Row(i), row)
	}
	return m
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// ScaledIdentity returns a·I in dimension n.
func ScaledIdentity(n int, a float64) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, a)
	}
	return m
}

// Diagonal returns a square matrix with d on the main diagonal.
func Diagonal(d Vector) *Matrix {
	m := NewMatrix(len(d), len(d))
	for i, x := range d {
		m.Set(i, i, x)
	}
	return m
}

// Rows returns the number of rows.
func (m *Matrix) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Matrix) Cols() int { return m.cols }

// At returns m[i,j].
func (m *Matrix) At(i, j int) float64 { return m.data[i*m.cols+j] }

// Set assigns m[i,j] = v.
func (m *Matrix) Set(i, j int, v float64) { m.data[i*m.cols+j] = v }

// Row returns a mutable view of row i (no copy).
func (m *Matrix) Row(i int) []float64 { return m.data[i*m.cols : (i+1)*m.cols] }

// Col returns a copy of column j.
func (m *Matrix) Col(j int) Vector {
	v := make(Vector, m.rows)
	for i := 0; i < m.rows; i++ {
		v[i] = m.At(i, j)
	}
	return v
}

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.rows, m.cols)
	copy(c.data, m.data)
	return c
}

// CopyFrom overwrites m with src, which must have identical shape.
func (m *Matrix) CopyFrom(src *Matrix) {
	if m.rows != src.rows || m.cols != src.cols {
		panic("linalg: CopyFrom shape mismatch")
	}
	copy(m.data, src.data)
}

// T returns the transpose as a new matrix.
func (m *Matrix) T() *Matrix {
	t := NewMatrix(m.cols, m.rows)
	for i := 0; i < m.rows; i++ {
		row := m.Row(i)
		for j, x := range row {
			t.Set(j, i, x)
		}
	}
	return t
}

// MulVec returns m·v.
func (m *Matrix) MulVec(v Vector) Vector {
	if m.cols != len(v) {
		panic(fmt.Sprintf("linalg: MulVec shape mismatch %dx%d by %d", m.rows, m.cols, len(v)))
	}
	out := make(Vector, m.rows)
	for i := 0; i < m.rows; i++ {
		row := m.Row(i)
		var s float64
		for j, x := range row {
			s += x * v[j]
		}
		out[i] = s
	}
	return out
}

// MulVecTo computes m·v into dst (which must have length m.Rows()) and
// returns dst — the allocation-free variant of MulVec for hot paths
// that own a scratch vector. (The ellipsoid hot path uses the sparse-
// aware transpose form MulVecTTo; this row-major form is its dense
// counterpart, exported for parity.)
func (m *Matrix) MulVecTo(dst, v Vector) Vector {
	if m.cols != len(v) {
		panic(fmt.Sprintf("linalg: MulVecTo shape mismatch %dx%d by %d", m.rows, m.cols, len(v)))
	}
	if len(dst) != m.rows {
		panic(fmt.Sprintf("linalg: MulVecTo dst length %d, want %d", len(dst), m.rows))
	}
	for i := 0; i < m.rows; i++ {
		row := m.Row(i)
		var s float64
		for j, x := range row {
			s += x * v[j]
		}
		dst[i] = s
	}
	return dst
}

// MulVecT returns mᵀ·v without forming the transpose.
func (m *Matrix) MulVecT(v Vector) Vector {
	if m.rows != len(v) {
		panic(fmt.Sprintf("linalg: MulVecT shape mismatch %dx%d by %d", m.rows, m.cols, len(v)))
	}
	out := make(Vector, m.cols)
	for i := 0; i < m.rows; i++ {
		row := m.Row(i)
		vi := v[i]
		if vi == 0 {
			continue
		}
		for j, x := range row {
			out[j] += x * vi
		}
	}
	return out
}

// MulVecTTo computes mᵀ·v into dst (which must have length m.Cols()) and
// returns dst, without forming the transpose or allocating. Zero entries
// of v skip whole rows, so the cost is O(k·n) for a k-sparse v — for a
// symmetric m this is the fastest way to form m·v from a sparse probe.
func (m *Matrix) MulVecTTo(dst, v Vector) Vector {
	if m.rows != len(v) {
		panic(fmt.Sprintf("linalg: MulVecTTo shape mismatch %dx%d by %d", m.rows, m.cols, len(v)))
	}
	if len(dst) != m.cols {
		panic(fmt.Sprintf("linalg: MulVecTTo dst length %d, want %d", len(dst), m.cols))
	}
	for j := range dst {
		dst[j] = 0
	}
	for i := 0; i < m.rows; i++ {
		vi := v[i]
		if vi == 0 {
			continue
		}
		row := m.Row(i)
		for j, x := range row {
			dst[j] += x * vi
		}
	}
	return dst
}

// Mul returns m·b.
func (m *Matrix) Mul(b *Matrix) *Matrix {
	if m.cols != b.rows {
		panic(fmt.Sprintf("linalg: Mul shape mismatch %dx%d by %dx%d", m.rows, m.cols, b.rows, b.cols))
	}
	out := NewMatrix(m.rows, b.cols)
	for i := 0; i < m.rows; i++ {
		arow := m.Row(i)
		orow := out.Row(i)
		for k, aik := range arow {
			if aik == 0 {
				continue
			}
			brow := b.Row(k)
			for j, bkj := range brow {
				orow[j] += aik * bkj
			}
		}
	}
	return out
}

// AddScaled performs m += a·b in place, shapes must match.
func (m *Matrix) AddScaled(a float64, b *Matrix) *Matrix {
	if m.rows != b.rows || m.cols != b.cols {
		panic("linalg: AddScaled shape mismatch")
	}
	for i := range m.data {
		m.data[i] += a * b.data[i]
	}
	return m
}

// Scale multiplies every entry by a in place and returns m.
func (m *Matrix) Scale(a float64) *Matrix {
	for i := range m.data {
		m.data[i] *= a
	}
	return m
}

// AddRankOne performs m += a·v wᵀ in place (rank-one update).
func (m *Matrix) AddRankOne(a float64, v, w Vector) *Matrix {
	if m.rows != len(v) || m.cols != len(w) {
		panic("linalg: AddRankOne shape mismatch")
	}
	for i, vi := range v {
		if vi == 0 {
			continue
		}
		row := m.Row(i)
		avi := a * vi
		for j, wj := range w {
			row[j] += avi * wj
		}
	}
	return m
}

// Symmetrize overwrites m with (m + mᵀ)/2. m must be square. It returns m.
func (m *Matrix) Symmetrize() *Matrix {
	if m.rows != m.cols {
		panic("linalg: Symmetrize on non-square matrix")
	}
	for i := 0; i < m.rows; i++ {
		for j := i + 1; j < m.cols; j++ {
			a := (m.At(i, j) + m.At(j, i)) / 2
			m.Set(i, j, a)
			m.Set(j, i, a)
		}
	}
	return m
}

// IsSymmetric reports whether |m[i,j]−m[j,i]| ≤ tol for all i,j.
func (m *Matrix) IsSymmetric(tol float64) bool {
	if m.rows != m.cols {
		return false
	}
	for i := 0; i < m.rows; i++ {
		for j := i + 1; j < m.cols; j++ {
			if math.Abs(m.At(i, j)-m.At(j, i)) > tol {
				return false
			}
		}
	}
	return true
}

// IsFinite reports whether every entry is finite.
func (m *Matrix) IsFinite() bool {
	for _, x := range m.data {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return false
		}
	}
	return true
}

// Trace returns the sum of diagonal entries of a square matrix.
func (m *Matrix) Trace() float64 {
	if m.rows != m.cols {
		panic("linalg: Trace on non-square matrix")
	}
	var s float64
	for i := 0; i < m.rows; i++ {
		s += m.At(i, i)
	}
	return s
}

// QuadForm returns xᵀ m x for a square m. Zero entries of x are skipped,
// so the cost is O(k²) for a k-sparse x — the hot path of the hashed
// one-hot pricing experiments (§V-C), where k ≈ 13 and n = 1024.
func (m *Matrix) QuadForm(x Vector) float64 {
	if m.rows != m.cols || m.rows != len(x) {
		panic("linalg: QuadForm shape mismatch")
	}
	var s float64
	for i, xi := range x {
		if xi == 0 {
			continue
		}
		row := m.Row(i)
		var ri float64
		for j, xj := range x {
			if xj == 0 {
				continue
			}
			ri += row[j] * xj
		}
		s += xi * ri
	}
	return s
}

// MaxAbs returns the largest absolute entry.
func (m *Matrix) MaxAbs() float64 {
	var mx float64
	for _, x := range m.data {
		if a := math.Abs(x); a > mx {
			mx = a
		}
	}
	return mx
}

// Equal reports entrywise agreement within absolute tolerance tol.
func (m *Matrix) Equal(b *Matrix, tol float64) bool {
	if m.rows != b.rows || m.cols != b.cols {
		return false
	}
	for i, x := range m.data {
		if math.Abs(x-b.data[i]) > tol {
			return false
		}
	}
	return true
}

// String renders the matrix for debugging.
func (m *Matrix) String() string {
	var sb strings.Builder
	for i := 0; i < m.rows; i++ {
		row := m.Row(i)
		sb.WriteString("[")
		for j, x := range row {
			if j > 0 {
				sb.WriteString(" ")
			}
			fmt.Fprintf(&sb, "%.6g", x)
		}
		sb.WriteString("]\n")
	}
	return sb.String()
}
