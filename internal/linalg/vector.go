// Package linalg provides the dense linear algebra kernels used throughout
// the pricing library: vectors, row-major matrices, Householder QR least
// squares, Jacobi eigendecomposition of symmetric matrices, and Cholesky
// factorization. It is deliberately small, allocation-conscious, and
// stdlib-only; the ellipsoid pricing mechanism needs nothing more than
// matrix-vector products, rank-one updates, and occasional factorizations.
package linalg

import (
	"errors"
	"fmt"
	"math"
)

// ErrDimension is returned (or wrapped) when operand shapes do not conform.
var ErrDimension = errors.New("linalg: dimension mismatch")

// Vector is a dense column vector backed by a []float64.
type Vector []float64

// NewVector returns a zero vector of length n.
func NewVector(n int) Vector { return make(Vector, n) }

// VectorOf copies the given values into a new Vector.
func VectorOf(vals ...float64) Vector {
	v := make(Vector, len(vals))
	copy(v, vals)
	return v
}

// Clone returns a deep copy of v.
func (v Vector) Clone() Vector {
	w := make(Vector, len(v))
	copy(w, v)
	return w
}

// Len returns the number of entries.
func (v Vector) Len() int { return len(v) }

// Dot returns the inner product vᵀw.
func (v Vector) Dot(w Vector) float64 {
	if len(v) != len(w) {
		panic(fmt.Sprintf("linalg: Dot length mismatch %d vs %d", len(v), len(w)))
	}
	var s float64
	for i, x := range v {
		s += x * w[i]
	}
	return s
}

// Norm2 returns the Euclidean norm ‖v‖₂, computed with scaling to avoid
// overflow for large entries.
func (v Vector) Norm2() float64 {
	var scale, ssq float64 = 0, 1
	for _, x := range v {
		if x == 0 {
			continue
		}
		a := math.Abs(x)
		if scale < a {
			r := scale / a
			ssq = 1 + ssq*r*r
			scale = a
		} else {
			r := a / scale
			ssq += r * r
		}
	}
	return scale * math.Sqrt(ssq)
}

// Norm1 returns the ℓ₁ norm Σ|vᵢ|.
func (v Vector) Norm1() float64 {
	var s float64
	for _, x := range v {
		s += math.Abs(x)
	}
	return s
}

// NormInf returns the ℓ∞ norm maxᵢ|vᵢ|.
func (v Vector) NormInf() float64 {
	var m float64
	for _, x := range v {
		if a := math.Abs(x); a > m {
			m = a
		}
	}
	return m
}

// Sum returns Σvᵢ.
func (v Vector) Sum() float64 {
	var s float64
	for _, x := range v {
		s += x
	}
	return s
}

// Scale multiplies every entry by a in place and returns v.
func (v Vector) Scale(a float64) Vector {
	for i := range v {
		v[i] *= a
	}
	return v
}

// Scaled returns a·v as a new vector.
func (v Vector) Scaled(a float64) Vector {
	w := make(Vector, len(v))
	for i, x := range v {
		w[i] = a * x
	}
	return w
}

// AddScaled performs v += a·w in place and returns v.
func (v Vector) AddScaled(a float64, w Vector) Vector {
	if len(v) != len(w) {
		panic(fmt.Sprintf("linalg: AddScaled length mismatch %d vs %d", len(v), len(w)))
	}
	for i := range v {
		v[i] += a * w[i]
	}
	return v
}

// Add returns v + w as a new vector.
func (v Vector) Add(w Vector) Vector {
	if len(v) != len(w) {
		panic(fmt.Sprintf("linalg: Add length mismatch %d vs %d", len(v), len(w)))
	}
	u := make(Vector, len(v))
	for i := range v {
		u[i] = v[i] + w[i]
	}
	return u
}

// Sub returns v − w as a new vector.
func (v Vector) Sub(w Vector) Vector {
	if len(v) != len(w) {
		panic(fmt.Sprintf("linalg: Sub length mismatch %d vs %d", len(v), len(w)))
	}
	u := make(Vector, len(v))
	for i := range v {
		u[i] = v[i] - w[i]
	}
	return u
}

// Normalize rescales v in place to unit Euclidean norm and returns the
// original norm. A zero vector is left untouched and 0 is returned.
func (v Vector) Normalize() float64 {
	n := v.Norm2()
	if n == 0 {
		return 0
	}
	inv := 1 / n
	for i := range v {
		v[i] *= inv
	}
	return n
}

// Max returns the largest entry, or -Inf for an empty vector.
func (v Vector) Max() float64 {
	m := math.Inf(-1)
	for _, x := range v {
		if x > m {
			m = x
		}
	}
	return m
}

// Min returns the smallest entry, or +Inf for an empty vector.
func (v Vector) Min() float64 {
	m := math.Inf(1)
	for _, x := range v {
		if x < m {
			m = x
		}
	}
	return m
}

// Equal reports whether v and w have the same length and agree entrywise
// within absolute tolerance tol.
func (v Vector) Equal(w Vector, tol float64) bool {
	if len(v) != len(w) {
		return false
	}
	for i := range v {
		if math.Abs(v[i]-w[i]) > tol {
			return false
		}
	}
	return true
}

// IsFinite reports whether every entry is finite (no NaN or ±Inf).
func (v Vector) IsFinite() bool {
	for _, x := range v {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return false
		}
	}
	return true
}

// Apply maps f over the entries of v into a new vector.
func (v Vector) Apply(f func(float64) float64) Vector {
	w := make(Vector, len(v))
	for i, x := range v {
		w[i] = f(x)
	}
	return w
}

// Outer returns the rank-one matrix v wᵀ.
func Outer(v, w Vector) *Matrix {
	m := NewMatrix(len(v), len(w))
	for i, x := range v {
		row := m.Row(i)
		for j, y := range w {
			row[j] = x * y
		}
	}
	return m
}

// Ones returns the all-ones vector of length n.
func Ones(n int) Vector {
	v := make(Vector, n)
	for i := range v {
		v[i] = 1
	}
	return v
}

// Basis returns the i-th standard basis vector in dimension n.
func Basis(n, i int) Vector {
	v := make(Vector, n)
	v[i] = 1
	return v
}
