package linalg

import (
	"math"
	"testing"
)

func TestMatrixBasics(t *testing.T) {
	m := NewMatrix(2, 3)
	m.Set(0, 0, 1)
	m.Set(1, 2, 7)
	if m.Rows() != 2 || m.Cols() != 3 {
		t.Fatalf("shape = %dx%d", m.Rows(), m.Cols())
	}
	if m.At(1, 2) != 7 || m.At(0, 1) != 0 {
		t.Fatalf("At wrong: %v %v", m.At(1, 2), m.At(0, 1))
	}
	if c := m.Col(2); !c.Equal(VectorOf(0, 7), 0) {
		t.Fatalf("Col = %v", c)
	}
}

func TestIdentityDiagonal(t *testing.T) {
	i3 := Identity(3)
	for r := 0; r < 3; r++ {
		for c := 0; c < 3; c++ {
			want := 0.0
			if r == c {
				want = 1
			}
			if i3.At(r, c) != want {
				t.Fatalf("Identity[%d,%d] = %v", r, c, i3.At(r, c))
			}
		}
	}
	d := Diagonal(VectorOf(2, 5))
	if d.At(0, 0) != 2 || d.At(1, 1) != 5 || d.At(0, 1) != 0 {
		t.Fatal("Diagonal wrong")
	}
	s := ScaledIdentity(2, 9)
	if s.At(0, 0) != 9 || s.At(1, 0) != 0 {
		t.Fatal("ScaledIdentity wrong")
	}
}

func TestMulVec(t *testing.T) {
	m := MatrixFromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	v := VectorOf(1, -1)
	if got := m.MulVec(v); !got.Equal(VectorOf(-1, -1, -1), 1e-15) {
		t.Fatalf("MulVec = %v", got)
	}
	w := VectorOf(1, 1, 1)
	if got := m.MulVecT(w); !got.Equal(VectorOf(9, 12), 1e-15) {
		t.Fatalf("MulVecT = %v", got)
	}
	// MulVecT must match T().MulVec.
	if got, want := m.MulVecT(w), m.T().MulVec(w); !got.Equal(want, 1e-12) {
		t.Fatalf("MulVecT disagreement: %v vs %v", got, want)
	}
}

func TestMatrixMul(t *testing.T) {
	a := MatrixFromRows([][]float64{{1, 2}, {3, 4}})
	b := MatrixFromRows([][]float64{{0, 1}, {1, 0}})
	got := a.Mul(b)
	want := MatrixFromRows([][]float64{{2, 1}, {4, 3}})
	if !got.Equal(want, 0) {
		t.Fatalf("Mul = \n%v", got)
	}
	// Identity is neutral.
	if !a.Mul(Identity(2)).Equal(a, 0) || !Identity(2).Mul(a).Equal(a, 0) {
		t.Fatal("identity not neutral under Mul")
	}
}

func TestTranspose(t *testing.T) {
	a := MatrixFromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	at := a.T()
	if at.Rows() != 3 || at.Cols() != 2 {
		t.Fatalf("T shape = %dx%d", at.Rows(), at.Cols())
	}
	if !at.T().Equal(a, 0) {
		t.Fatal("double transpose is not identity")
	}
}

func TestAddRankOneMatchesOuter(t *testing.T) {
	a := Identity(3)
	v := VectorOf(1, 2, 3)
	w := VectorOf(-1, 0, 2)
	got := a.Clone().AddRankOne(2.5, v, w)
	want := a.Clone().AddScaled(2.5, Outer(v, w))
	if !got.Equal(want, 1e-12) {
		t.Fatalf("AddRankOne mismatch:\n%v\nvs\n%v", got, want)
	}
}

func TestSymmetrize(t *testing.T) {
	a := MatrixFromRows([][]float64{{1, 2}, {4, 3}})
	a.Symmetrize()
	if !a.IsSymmetric(0) {
		t.Fatal("Symmetrize did not symmetrize")
	}
	if a.At(0, 1) != 3 || a.At(1, 0) != 3 {
		t.Fatalf("off-diagonal = %v", a.At(0, 1))
	}
}

func TestQuadForm(t *testing.T) {
	a := MatrixFromRows([][]float64{{2, 1}, {1, 3}})
	x := VectorOf(1, -1)
	// xᵀAx = 2 - 1 - 1 + 3 = 3.
	if got := a.QuadForm(x); !almostEq(got, 3, 1e-12) {
		t.Fatalf("QuadForm = %v, want 3", got)
	}
	// Must agree with explicit computation.
	if got, want := a.QuadForm(x), x.Dot(a.MulVec(x)); !almostEq(got, want, 1e-12) {
		t.Fatalf("QuadForm disagreement: %v vs %v", got, want)
	}
}

func TestTraceAndMaxAbs(t *testing.T) {
	a := MatrixFromRows([][]float64{{1, -9}, {2, 5}})
	if a.Trace() != 6 {
		t.Fatalf("Trace = %v", a.Trace())
	}
	if a.MaxAbs() != 9 {
		t.Fatalf("MaxAbs = %v", a.MaxAbs())
	}
}

func TestMatrixIsFinite(t *testing.T) {
	a := Identity(2)
	if !a.IsFinite() {
		t.Error("identity reported non-finite")
	}
	a.Set(0, 1, math.NaN())
	if a.IsFinite() {
		t.Error("NaN matrix reported finite")
	}
}

func TestMatrixCopyFromAndClone(t *testing.T) {
	a := Identity(2)
	b := a.Clone()
	b.Set(0, 0, 42)
	if a.At(0, 0) != 1 {
		t.Fatal("Clone aliased the source")
	}
	c := NewMatrix(2, 2)
	c.CopyFrom(b)
	if c.At(0, 0) != 42 {
		t.Fatal("CopyFrom did not copy")
	}
}

func TestRaggedRowsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on ragged rows")
		}
	}()
	MatrixFromRows([][]float64{{1, 2}, {3}})
}

func TestMulVecToMatchesMulVec(t *testing.T) {
	m := MatrixFromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	v := VectorOf(1, -1, 2)
	dst := NewVector(2)
	got := m.MulVecTo(dst, v)
	if &got[0] != &dst[0] {
		t.Fatal("MulVecTo did not return dst")
	}
	if !got.Equal(m.MulVec(v), 0) {
		t.Fatalf("MulVecTo = %v, MulVec = %v", got, m.MulVec(v))
	}
	// dst is fully overwritten, not accumulated.
	dst[0], dst[1] = 99, 99
	if !m.MulVecTo(dst, v).Equal(m.MulVec(v), 0) {
		t.Fatal("MulVecTo accumulated into stale dst")
	}
}

func TestMulVecTToMatchesMulVecT(t *testing.T) {
	m := MatrixFromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	v := VectorOf(2, -3)
	dst := Vector{7, 7, 7} // stale values must be cleared
	if !m.MulVecTTo(dst, v).Equal(m.MulVecT(v), 0) {
		t.Fatalf("MulVecTTo = %v, MulVecT = %v", dst, m.MulVecT(v))
	}
	// Sparse input exercises the row-skip path.
	sparse := VectorOf(0, 5)
	if !m.MulVecTTo(dst, sparse).Equal(m.MulVecT(sparse), 0) {
		t.Fatalf("sparse MulVecTTo = %v, want %v", dst, m.MulVecT(sparse))
	}
}

func TestMulVecToShapePanics(t *testing.T) {
	m := MatrixFromRows([][]float64{{1, 2}, {3, 4}})
	for name, f := range map[string]func(){
		"MulVecTo bad v":    func() { m.MulVecTo(NewVector(2), NewVector(3)) },
		"MulVecTo bad dst":  func() { m.MulVecTo(NewVector(3), NewVector(2)) },
		"MulVecTTo bad v":   func() { m.MulVecTTo(NewVector(2), NewVector(3)) },
		"MulVecTTo bad dst": func() { m.MulVecTTo(NewVector(3), NewVector(2)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}
