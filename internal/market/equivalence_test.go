package market

// Equivalence suite for the sparse/pooled/cached fast path: every result
// the optimized pipeline produces must be bit-identical to the dense seed
// pipeline (privacy.Leakages → privacy.Compensations →
// feature.CompensationFeatures), not merely close.

import (
	"sync"
	"testing"

	"datamarket/internal/feature"
	"datamarket/internal/linalg"
	"datamarket/internal/pricing"
	"datamarket/internal/privacy"
	"datamarket/internal/randx"
)

// densePrepare is the seed pipeline, kept verbatim as the reference:
// dense leakages over every owner, dense compensations, clone-and-sort
// partition aggregation.
func densePrepare(t *testing.T, b *Broker, q *privacy.LinearQuery) (leak, comps, x linalg.Vector, scale, reserve float64) {
	t.Helper()
	leak, err := q.Leakages(b.ranges)
	if err != nil {
		t.Fatal(err)
	}
	comps, err = privacy.Compensations(leak, b.contracts)
	if err != nil {
		t.Fatal(err)
	}
	x, scale, reserve, err = feature.CompensationFeatures(comps, b.featureDim)
	if err != nil {
		t.Fatal(err)
	}
	return leak, comps, x, scale, reserve
}

// sparseTestQuery draws a query whose support is a random subset of the
// owners (sometimes all, sometimes a handful, sometimes empty weights on
// explicit indices).
func sparseTestQuery(t *testing.T, r *randx.RNG, owners int) *privacy.LinearQuery {
	t.Helper()
	weights := make(linalg.Vector, owners)
	supportFrac := r.Float64()
	for i := range weights {
		if r.Float64() < supportFrac {
			weights[i] = r.Normal(0, 2)
		}
	}
	variance := []float64{0.01, 0.1, 1, 10, 100}[r.Intn(5)]
	q, err := privacy.NewLinearQuery(weights, variance)
	if err != nil {
		t.Fatal(err)
	}
	return q
}

// TestPrepareMatchesDenseSeedPipeline pins PrepareInto bit-for-bit
// against the dense reference: identical features, scale, and reserve,
// and support-aligned leakages/compensations that densify to the dense
// vectors exactly.
func TestPrepareMatchesDenseSeedPipeline(t *testing.T) {
	const owners = 200
	pop := testOwners(t, owners, 11)
	lc, err := privacy.NewLinearContract(0.7)
	if err != nil {
		t.Fatal(err)
	}
	for i := range pop {
		if i%3 == 0 {
			pop[i].Contract = lc
		}
		if i%7 == 0 {
			pop[i].Range = 0 // zero-sensitivity owners leak nothing
		}
	}
	b, err := NewBroker(Config{Owners: pop, Mechanism: testMechanism(t, 6, 100), FeatureDim: 6})
	if err != nil {
		t.Fatal(err)
	}
	r := randx.New(12)
	ctx := new(QuoteContext) // reused across trials to exercise scratch reuse
	for trial := 0; trial < 100; trial++ {
		q := sparseTestQuery(t, r, owners)
		leak, comps, x, scale, reserve := densePrepare(t, b, q)
		if err := b.PrepareInto(ctx, q); err != nil {
			t.Fatal(err)
		}
		if ctx.Scale != scale || ctx.Reserve != reserve {
			t.Fatalf("trial %d: scale/reserve (%v, %v) != dense (%v, %v)",
				trial, ctx.Scale, ctx.Reserve, scale, reserve)
		}
		for i := range x {
			if ctx.Features[i] != x[i] {
				t.Fatalf("trial %d feature %d: %v != dense %v", trial, i, ctx.Features[i], x[i])
			}
		}
		// Densify the support-aligned leakages/compensations and compare.
		k := 0
		for i := 0; i < owners; i++ {
			var sl, sc float64
			if k < len(ctx.Support) && ctx.Support[k] == i {
				sl, sc = ctx.Leakages[k], ctx.Compensations[k]
				k++
			}
			if sl != leak[i] || sc != comps[i] {
				t.Fatalf("trial %d owner %d: sparse (%v, %v) != dense (%v, %v)",
					trial, i, sl, sc, leak[i], comps[i])
			}
		}
	}
}

// TestQuoteCacheEquivalence checks that a cache hit serves the very same
// context a fresh prepare would, that trades through a cached broker and
// a cache-disabled twin produce identical ledgers, and that the LRU
// honors its capacity.
func TestQuoteCacheEquivalence(t *testing.T) {
	const (
		owners = 60
		T      = 200
	)
	pop := testOwners(t, owners, 21)
	mkBroker := func(cacheSize int) *Broker {
		b, err := NewBroker(Config{
			Owners: pop, Mechanism: pricing.NewSync(testMechanism(t, 4, T)),
			FeatureDim: 4, Seed: 9, KeepRecords: true, QuoteCacheSize: cacheSize,
		})
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	cached := mkBroker(16)
	uncached := mkBroker(-1)
	if uncached.cache != nil {
		t.Fatal("negative QuoteCacheSize must disable the cache")
	}

	// A repeated query must come back as the same shared context.
	r := randx.New(22)
	q := sparseTestQuery(t, r, owners)
	c1, pooled1, err := cached.quoteFor(q)
	if err != nil {
		t.Fatal(err)
	}
	c2, pooled2, err := cached.quoteFor(q)
	if err != nil {
		t.Fatal(err)
	}
	if pooled1 || pooled2 {
		t.Fatal("cacheable contexts must not come from the pool")
	}
	if c1 != c2 {
		t.Fatal("second quoteFor for an identical query missed the cache")
	}

	// Same query stream (with heavy repetition, so the cache actually
	// serves hits) through both brokers: ledgers must match exactly.
	distinct := make([]*privacy.LinearQuery, 8)
	for i := range distinct {
		distinct[i] = sparseTestQuery(t, r, owners)
	}
	for round := 0; round < T; round++ {
		query := Query{Q: distinct[r.Intn(len(distinct))], Valuation: r.Uniform(0, 8)}
		tx1, err1 := cached.Trade(query)
		tx2, err2 := uncached.Trade(query)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("round %d: cached err %v, uncached err %v", round, err1, err2)
		}
		if tx1 != tx2 {
			t.Fatalf("round %d: cached tx %+v != uncached tx %+v", round, tx1, tx2)
		}
	}
	l1, l2 := cached.Ledger(), uncached.Ledger()
	if len(l1) != len(l2) {
		t.Fatalf("ledger lengths %d != %d", len(l1), len(l2))
	}
	for i := range l1 {
		if l1[i] != l2[i] {
			t.Fatalf("ledger[%d]: %+v != %+v", i, l1[i], l2[i])
		}
	}
	p1, p2 := cached.Payouts(), uncached.Payouts()
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatalf("payout[%d]: %v != %v", i, p1[i], p2[i])
		}
	}

	// LRU bound: flooding with distinct queries never exceeds capacity.
	for i := 0; i < 100; i++ {
		qq := sparseTestQuery(t, r, owners)
		if _, _, err := cached.quoteFor(qq); err != nil {
			t.Fatal(err)
		}
	}
	if n := cached.cache.len(); n > 16 {
		t.Fatalf("cache holds %d entries, cap 16", n)
	}
}

// TestLedgerReturnsDefensiveCopy pins the Ledger() footgun fix: mutating
// the returned slice must not corrupt the broker's books.
func TestLedgerReturnsDefensiveCopy(t *testing.T) {
	pop := testOwners(t, 10, 31)
	b, err := NewBroker(Config{
		Owners: pop, Mechanism: pricing.NewSync(testMechanism(t, 3, 50)),
		FeatureDim: 3, KeepRecords: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	r := randx.New(32)
	for i := 0; i < 5; i++ {
		if _, err := b.Trade(Query{Q: sparseTestQuery(t, r, 10), Valuation: 5}); err != nil {
			t.Fatal(err)
		}
	}
	got := b.Ledger()
	want := got[2]
	got[2] = Transaction{Round: -1}
	if again := b.Ledger(); again[2] != want {
		t.Fatalf("mutating Ledger() result corrupted the books: %+v", again[2])
	}
}

// TestConcurrentBatchesKeepBooksConsistent hammers TradeBatchOutcomes
// from several goroutines (run under -race) and checks the invariants
// that survive nondeterministic interleaving: every round lands in the
// ledger exactly once with a unique round number, totals reconcile, and
// the reserve constraint holds.
func TestConcurrentBatchesKeepBooksConsistent(t *testing.T) {
	const (
		owners  = 80
		batches = 6
		perB    = 40
	)
	pop := testOwners(t, owners, 41)
	b, err := NewBroker(Config{
		Owners: pop, Mechanism: pricing.NewSync(testMechanism(t, 4, batches*perB)),
		FeatureDim: 4, Seed: 3, KeepRecords: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < batches; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			r := randx.NewStream(42, uint64(g))
			queries := make([]Query, perB)
			for i := range queries {
				queries[i] = Query{Q: sparseTestQuery(t, r, owners), Valuation: r.Uniform(0, 10)}
			}
			for _, o := range b.TradeBatchOutcomes(queries) {
				if o.Err != nil {
					t.Error(o.Err)
				}
			}
		}(g)
	}
	wg.Wait()
	ledger := b.Ledger()
	if len(ledger) != batches*perB {
		t.Fatalf("ledger has %d rounds, want %d", len(ledger), batches*perB)
	}
	seen := make(map[int]bool, len(ledger))
	var revenue, comp float64
	for _, tx := range ledger {
		if seen[tx.Round] {
			t.Fatalf("duplicate round %d", tx.Round)
		}
		seen[tx.Round] = true
		if tx.Sold {
			revenue += tx.Revenue
			comp += tx.Compensation
			if tx.Profit < -1e-9 {
				t.Fatalf("reserve constraint violated: %+v", tx)
			}
		}
	}
	st := b.Stats()
	if st.Revenue != revenue || st.Compensation != comp {
		t.Fatalf("totals (%v, %v) disagree with ledger (%v, %v)",
			st.Revenue, st.Compensation, revenue, comp)
	}
	var paid float64
	for _, p := range b.Payouts() {
		paid += p
	}
	if diff := paid - comp; diff > 1e-6 || diff < -1e-6 {
		t.Fatalf("owner payouts %v != total compensation %v", paid, comp)
	}
}
